// Storage budget: partial sideways cracking under a hard auxiliary-storage
// threshold (paper Section 4). The workload alternates between query
// families; the engine materializes only the chunks each family needs,
// evicts the least-used ones when the budget binds, and recreates them on
// demand — no query ever fails, results stay exact.
//
//   ./examples/storage_budget [--smoke]

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/workload.h"
#include "common/rng.h"
#include "engine/partial_engine.h"
#include "engine/plain_engine.h"
#include "engine/query.h"
#include "storage/catalog.h"

using namespace crackdb;

int main(int argc, char** argv) {
  Catalog catalog;
  Rng rng(11);
  const size_t rows = bench::SmokeRequested(argc, argv) ? 30'000 : 300'000;
  Relation& rel = bench::CreateUniformRelation(&catalog, "events", 8, rows,
                                               1'000'000, &rng);

  // Budget: a quarter of one full map — partial maps must stay frugal.
  PartialConfig config;
  config.storage_budget_tuples = rows / 4;
  config.enable_head_drop = true;
  PartialSidewaysEngine cracking(rel, config);
  PlainEngine reference(rel);

  std::printf("rows=%zu budget=%zu tuples (a full map would need %zu)\n\n",
              rows, config.storage_budget_tuples, rows);
  std::printf("%5s %-10s %16s %12s %10s\n", "query", "family",
              "chunk storage", "evictions", "rows");

  for (int q = 0; q < 40; ++q) {
    // Two interleaved families with different hot ranges and attributes.
    const bool family_a = (q / 5) % 2 == 0;
    const Value lo = family_a ? rng.Uniform(1, 200'000)
                              : rng.Uniform(600'000, 800'000);
    const QuerySpec query =
        QueryBuilder()
            .Where(bench::AttrName(1), lo, lo + 50'000)
            .Where(bench::AttrName(family_a ? 2 : 3), 1, 500'000)
            .Project(bench::AttrName(family_a ? 4 : 5))
            .Spec();

    const QueryResult got = cracking.Run(query);
    const QueryResult expected = reference.Run(query);
    if (got.num_rows != expected.num_rows) {
      std::printf("MISMATCH at query %d\n", q);
      return 1;
    }
    std::printf("%5d %-10s %10zu tuples %12zu %10zu\n", q + 1,
                family_a ? "A" : "B", cracking.ChunkStorageTuples(),
                cracking.storage().eviction_count(), got.num_rows);
  }
  std::printf("\nthe budget held throughout; chunks of the idle family were\n"
              "evicted and transparently recreated when it returned.\n");
  return 0;
}
