// Quickstart: load a relation, serve it through the thread-safe Database
// facade with the fluent query API, and watch the system get faster on
// its own — no index creation, no presorting, no workload knowledge.
// Consumption modes let each query declare how its result is consumed, so
// a count never reconstructs a tuple and an aggregate folds values where
// they live.
//
//   ./examples/quickstart [--smoke]

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/workload.h"
#include "common/rng.h"
#include "common/timer.h"
#include "engine/database.h"
#include "engine/plain_engine.h"
#include "storage/catalog.h"

using namespace crackdb;

int main(int argc, char** argv) {
  const int rows = bench::SmokeRequested(argc, argv) ? 20'000 : 500'000;
  // 1. A catalog owns relations; load one with three integer attributes.
  Catalog catalog;
  Rng rng(7);
  Relation& sensors = catalog.CreateRelation("sensors");
  sensors.AddColumn("temperature");  // millidegrees
  sensors.AddColumn("pressure");
  sensors.AddColumn("device_id");
  for (int i = 0; i < rows; ++i) {
    const Value row[] = {rng.Uniform(-20'000, 120'000),
                         rng.Uniform(90'000, 110'000),
                         rng.Uniform(1, 5'000)};
    sensors.BulkLoadRow(row);
  }
  std::printf("loaded %zu rows\n", sensors.num_rows());

  // 2. Serve it: partial sideways cracking (the paper's contribution),
  //    range-sharded on temperature. A plain scanning engine is the
  //    oracle everything is verified against.
  Database db;
  PartitionSpec shard;
  shard.kind = PartitionSpec::Kind::kRange;
  shard.num_partitions = 4;
  shard.column = "temperature";
  shard.domain_lo = -20'000;
  shard.domain_hi = 120'000;
  db.RegisterSharded("sensors", sensors, shard, "partial");
  PlainEngine plain(sensors);

  // 3. The same query template, repeatedly, with shifting ranges — the
  //    kind of exploratory session the paper targets. Each round asks the
  //    same question three ways: materialized rows, a pushed-down count
  //    (zero reconstruction), and a pushed-down max.
  std::printf("%5s %12s %12s %12s %8s\n", "query", "rows (us)", "count (us)",
              "max (us)", "rows");
  for (int q = 0; q < 15; ++q) {
    const Value lo = rng.Uniform(-20'000, 100'000);
    auto bounded = [&] {
      return db.From("sensors")
          .Where("temperature", lo, lo + 10'000)
          .Where("pressure", 95'000, 105'000);
    };

    Timer t_rows;
    auto materialized = bounded().Project("device_id").Execute();
    const double rows_us = t_rows.ElapsedMicros();

    Timer t_count;
    auto count = bounded().Count().Execute();
    const double count_us = t_count.ElapsedMicros();

    Timer t_max;
    auto max_device =
        bounded().Aggregate(AggregateOp::kMax, "device_id").Execute();
    const double max_us = t_max.ElapsedMicros();

    if (!materialized.ok() || !count.ok() || !max_device.ok()) {
      std::printf("ERROR: %s\n", (!materialized.ok() ? materialized.error()
                                  : !count.ok()      ? count.error()
                                                     : max_device.error())
                                     .c_str());
      return 1;
    }
    // Verify against the plain-scan oracle (and the modes against each
    // other) before trusting anything.
    const QuerySpec oracle_spec = QueryBuilder()
                                      .Where("temperature", lo, lo + 10'000)
                                      .Where("pressure", 95'000, 105'000)
                                      .Project("device_id")
                                      .Spec();
    const QueryResult oracle = plain.Run(oracle_spec);
    Value oracle_max = 0;
    bool oracle_any = false;
    for (const Value v : oracle.columns[0]) {
      FoldValue(AggregateOp::kMax, v, &oracle_max, &oracle_any);
    }
    if (materialized->rows.num_rows != oracle.num_rows ||
        count->count != oracle.num_rows ||
        max_device->aggregate_valid != oracle_any ||
        (oracle_any && max_device->aggregate != oracle_max)) {
      std::printf("MISMATCH at query %d\n", q);
      return 1;
    }
    // The pushed-down modes never reconstruct a tuple.
    if (count->cost.reconstruct_micros != 0 ||
        max_device->cost.reconstruct_micros != 0) {
      std::printf("UNEXPECTED reconstruction cost at query %d\n", q);
      return 1;
    }
    std::printf("%5d %12.0f %12.0f %12.0f %8zu\n", q + 1, rows_us, count_us,
                max_us, count->count);
  }
  std::printf(
      "\ncracking reorganizes data as a side effect of the queries\n"
      "themselves; counts and aggregates additionally skip tuple\n"
      "reconstruction entirely (reconstruct_micros == 0).\n");
  return 0;
}
