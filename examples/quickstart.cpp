// Quickstart: load a relation, run multi-attribute range queries through
// partial sideways cracking, and watch the system get faster on its own —
// no index creation, no presorting, no workload knowledge.
//
//   ./examples/quickstart [--smoke]

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/workload.h"
#include "common/rng.h"
#include "common/timer.h"
#include "engine/partial_engine.h"
#include "engine/plain_engine.h"
#include "storage/catalog.h"

using namespace crackdb;

int main(int argc, char** argv) {
  const int rows = bench::SmokeRequested(argc, argv) ? 20'000 : 500'000;
  // 1. A catalog owns relations; load one with three integer attributes.
  Catalog catalog;
  Rng rng(7);
  Relation& sensors = catalog.CreateRelation("sensors");
  sensors.AddColumn("temperature");  // millidegrees
  sensors.AddColumn("pressure");
  sensors.AddColumn("device_id");
  for (int i = 0; i < rows; ++i) {
    const Value row[] = {rng.Uniform(-20'000, 120'000),
                         rng.Uniform(90'000, 110'000),
                         rng.Uniform(1, 5'000)};
    sensors.BulkLoadRow(row);
  }
  std::printf("loaded %zu rows\n", sensors.num_rows());

  // 2. Two engines over the same data: a plain scanning column-store and
  //    partial sideways cracking (the paper's contribution).
  PlainEngine plain(sensors);
  PartialSidewaysEngine cracking(sensors);

  // 3. The same query template, repeatedly, with shifting ranges — the
  //    kind of exploratory session the paper targets.
  std::printf("%5s %14s %14s\n", "query", "plain (us)", "cracking (us)");
  for (int q = 0; q < 15; ++q) {
    QuerySpec query;
    const Value lo = rng.Uniform(-20'000, 100'000);
    query.selections = {
        {"temperature", RangePredicate::Closed(lo, lo + 10'000)},
        {"pressure", RangePredicate::Closed(95'000, 105'000)},
    };
    query.projections = {"device_id"};

    Timer t_plain;
    const QueryResult r_plain = plain.Run(query);
    const double plain_us = t_plain.ElapsedMicros();

    Timer t_crack;
    const QueryResult r_crack = cracking.Run(query);
    const double crack_us = t_crack.ElapsedMicros();

    if (r_plain.num_rows != r_crack.num_rows) {
      std::printf("MISMATCH at query %d\n", q);
      return 1;
    }
    std::printf("%5d %14.0f %14.0f   (%zu rows)\n", q + 1, plain_us, crack_us,
                r_crack.num_rows);
  }
  std::printf("\ncracking reorganizes data as a side effect of the queries\n"
              "themselves; later queries touch only relevant pieces.\n");
  return 0;
}
