// Adaptive analytics: an exploratory session over a TPC-H-like sales
// history whose focus drifts (this quarter -> that quarter -> a specific
// discount band). Demonstrates the paper's Section 5 scenario: sideways
// cracking approaches presorted performance on the workload's hot set
// without ever paying a presort, and keeps adapting when the focus moves.
//
//   ./examples/adaptive_analytics [--smoke]

#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "common/timer.h"
#include "engine/operators.h"
#include "engine/presorted_engine.h"
#include "engine/query.h"
#include "engine/sideways_engine.h"
#include "tpch/queries.h"

using namespace crackdb;
using namespace crackdb::tpch;

namespace {

double RunRevenueQuery(Engine* engine, Value date_lo, Value date_hi,
                       Value disc_lo, Value disc_hi, Value* revenue_out) {
  // The revenue fold consumes rows as they stream by (ForEach): the
  // product of two attributes is beyond a single-attribute Aggregate(),
  // but the materialized result is still never built.
  Value revenue = 0;
  QueryBuilder query;
  query.Where("l_shipdate", RangePredicate::HalfOpen(date_lo, date_hi))
      .Where("l_discount", disc_lo, disc_hi)
      .Project("l_extendedprice", "l_discount")
      .ForEach([&revenue](std::span<const Value> row) {
        revenue += row[0] * row[1] / 100;
      });
  const Query compiled = query.Build();
  if (!compiled.error.empty()) {
    std::fprintf(stderr, "invalid query: %s\n", compiled.error.c_str());
    std::exit(1);
  }
  Timer timer;
  const ExecuteResult r = engine->Execute(compiled.spec, compiled.consume);
  const double elapsed = timer.ElapsedMicros();
  (void)r;
  *revenue_out = revenue;
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = crackdb::bench::SmokeRequested(argc, argv) ? 0.01 : 0.05;
  TpchDatabase db(sf);
  const Relation& lineitem = db.relation("lineitem");
  std::printf("lineitem: %zu rows (SF %.2f)\n", lineitem.num_rows(), sf);

  SidewaysEngine sideways(lineitem);
  PresortedEngine presorted(lineitem);

  // The analyst sweeps quarters of 1994, then drills into discounts of Q2.
  struct Step {
    const char* label;
    int month;
    Value disc_lo, disc_hi;
  };
  const Step session[] = {
      {"Q1'94 revenue, any discount", 1, 0, 10},
      {"Q2'94 revenue, any discount", 4, 0, 10},
      {"Q3'94 revenue, any discount", 7, 0, 10},
      {"Q4'94 revenue, any discount", 10, 0, 10},
      {"Q2'94 again, discounts 5-7%", 4, 5, 7},
      {"Q2'94 again, discounts 2-4%", 4, 2, 4},
      {"Q2'94 once more (hot set)", 4, 5, 7},
  };

  std::printf("%-34s %14s %16s\n", "analyst step", "sideways (us)",
              "presorted (us)");
  for (const Step& step : session) {
    const Value lo = DateToDays(1994, step.month, 1);
    const Value hi = DateToDays(1994, step.month + 2, 28);
    Value rev_side = 0;
    Value rev_pre = 0;
    const double us_side = RunRevenueQuery(&sideways, lo, hi, step.disc_lo,
                                           step.disc_hi, &rev_side);
    const double us_pre = RunRevenueQuery(&presorted, lo, hi, step.disc_lo,
                                          step.disc_hi, &rev_pre);
    if (rev_side != rev_pre) {
      std::printf("MISMATCH: %lld vs %lld\n",
                  static_cast<long long>(rev_side),
                  static_cast<long long>(rev_pre));
      return 1;
    }
    std::printf("%-34s %14.0f %16.0f   revenue=%.2f\n", step.label, us_side,
                us_pre, static_cast<double>(rev_side) / 100.0);
  }
  std::printf("\npresorted paid %.1f ms of preparation up front; sideways\n"
              "cracking paid nothing and converged on the session's hot "
              "set.\n",
              presorted.cost().prepare_micros / 1000.0);
  return 0;
}
