// Live updates: a stream of inserts and deletes interleaved with range
// queries (paper Section 3.5 / Exp6). Updates are queued as pending work
// and merged into the cracked structures by the Ripple algorithm only when
// a query actually needs the affected value range — the maps never lose
// the knowledge accumulated by earlier cracking.
//
//   ./examples/live_updates [--smoke]

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/workload.h"
#include "common/rng.h"
#include "engine/plain_engine.h"
#include "engine/query.h"
#include "engine/sideways_engine.h"
#include "storage/catalog.h"

using namespace crackdb;

int main(int argc, char** argv) {
  const int rows = bench::SmokeRequested(argc, argv) ? 20'000 : 200'000;
  Catalog catalog;
  Rng rng(23);
  const Value domain = 1'000'000;
  Relation& orders = catalog.CreateRelation("orders");
  orders.AddColumn("amount");
  orders.AddColumn("customer");
  orders.AddColumn("region");
  for (int i = 0; i < rows; ++i) {
    const Value row[] = {rng.Uniform(1, domain), rng.Uniform(1, 50'000),
                         rng.Uniform(1, 100)};
    orders.BulkLoadRow(row);
  }

  SidewaysEngine cracking(orders);
  PlainEngine reference(orders);

  std::printf("%5s %9s %9s %9s %7s\n", "round", "inserts", "deletes",
              "rows", "match");
  size_t inserts = 0;
  size_t deletes = 0;
  for (int round = 0; round < 20; ++round) {
    // A burst of updates...
    for (int u = 0; u < 500; ++u) {
      if (rng.Bernoulli(0.6)) {
        const Value row[] = {rng.Uniform(1, domain), rng.Uniform(1, 50'000),
                             rng.Uniform(1, 100)};
        orders.AppendRow(row);
        ++inserts;
      } else {
        const Key k = static_cast<Key>(
            rng.Uniform(0, static_cast<Value>(orders.num_rows()) - 1));
        if (!orders.IsDeleted(k)) {
          orders.DeleteRow(k);
          ++deletes;
        }
      }
    }
    // ...then queries over a moving window.
    const Value lo = rng.Uniform(1, domain - 100'000);
    const QuerySpec query = QueryBuilder()
                                .Where("amount", lo, lo + 100'000)
                                .Project("customer", "region")
                                .Spec();
    const QueryResult got = cracking.Run(query);
    const QueryResult expected = reference.Run(query);
    const bool match = got.num_rows == expected.num_rows;
    std::printf("%5d %9zu %9zu %9zu %7s\n", round + 1, inserts, deletes,
                got.num_rows, match ? "yes" : "NO");
    if (!match) return 1;
  }
  std::printf("\nall answers stayed exact while %zu inserts and %zu deletes\n"
              "were merged on demand into the cracked maps.\n",
              inserts, deletes);
  return 0;
}
