// Concurrent serving through the Database facade: N client threads of
// mixed queries and updates against sharded cracking engines, checked two
// ways — (a) a read-only storm where every concurrent answer must equal a
// plain-scan reference, and (b) a mixed read/write storm whose final state
// must equal a serial replay of the recorded operations. Runs under TSan
// in CI (the `concurrency` label), where any lock-discipline violation in
// the crack-on-read paths becomes a hard failure.

#include "engine/database.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "engine/plain_engine.h"
#include "obs/metrics.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;

constexpr Value kDomain = 2'500;
constexpr size_t kRows = 2'500;
constexpr size_t kThreads = 4;

using bench::ZipRows;

QuerySpec RandomQuery(Rng* rng) {
  QueryBuilder builder;
  builder.Where(AttrName(1), bench::RandomRange(rng, 1, kDomain, 0.2))
      .Where(AttrName(2), bench::RandomRange(rng, 1, kDomain, 0.6))
      .Project(AttrName(3), AttrName(4));
  return builder.Spec();
}

class ConcurrencyStressTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    Rng rng(4242);
    source_ = &bench::CreateUniformRelation(&catalog_, "R", 4, kRows, kDomain,
                                            &rng);
    DatabaseOptions options;
    options.pool_threads = 2;  // fan-out pool shared by all client threads
    db_ = std::make_unique<Database>(options);

    PartitionSpec spec;
    spec.kind = PartitionSpec::Kind::kRange;
    spec.num_partitions = 5;
    spec.column = AttrName(1);
    spec.domain_lo = 1;
    spec.domain_hi = kDomain;
    db_->RegisterSharded("R", *source_, spec, GetParam());
  }

  Catalog catalog_;
  Relation* source_ = nullptr;
  std::unique_ptr<Database> db_;
};

TEST_P(ConcurrencyStressTest, ConcurrentReadersMatchPlainReference) {
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kThreads);
  for (size_t tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([this, tid, &failures] {
      Rng rng(1000 + tid);
      PlainEngine reference(*source_);  // source is immutable in this phase
      for (int q = 0; q < 20; ++q) {
        const QuerySpec spec = RandomQuery(&rng);
        if (ZipRows(db_->Query("R", spec)) != ZipRows(reference.Run(spec))) {
          failures[tid] = "thread " + std::to_string(tid) + " query " +
                          std::to_string(q) + " diverged";
          return;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
}

TEST_P(ConcurrencyStressTest, MixedStormEqualsSerialReplay) {
  struct RecordedInsert {
    std::vector<Value> values;
    bool deleted = false;
  };
  std::vector<std::vector<RecordedInsert>> recorded(kThreads);
  std::vector<std::string> failures(kThreads);

  std::vector<std::thread> clients;
  for (size_t tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([this, tid, &recorded, &failures] {
      Rng rng(9000 + tid);
      std::vector<std::pair<Key, size_t>> own_live;  // global key, slot
      for (int op = 0; op < 40; ++op) {
        const double dice = rng.NextDouble();
        if (dice < 0.55) {
          const QuerySpec spec = RandomQuery(&rng);
          const QueryResult result = db_->Query("R", spec);
          for (const auto& col : result.columns) {
            if (col.size() != result.num_rows) {
              failures[tid] = "ragged result in thread " + std::to_string(tid);
              return;
            }
          }
        } else if (dice < 0.85 || own_live.empty()) {
          std::vector<Value> row(source_->num_columns());
          for (Value& v : row) v = rng.Uniform(1, kDomain);
          const Key key = db_->Insert("R", row);
          own_live.push_back({key, recorded[tid].size()});
          recorded[tid].push_back({std::move(row), false});
        } else {
          // Threads delete only rows they inserted themselves, so the
          // final state is independent of the interleaving and a serial
          // replay is a valid oracle.
          const size_t pick = static_cast<size_t>(
              rng.Uniform(0, static_cast<Value>(own_live.size()) - 1));
          const auto [key, slot] = own_live[pick];
          if (!db_->Delete("R", key)) {
            failures[tid] = "delete of own live key failed in thread " +
                            std::to_string(tid);
            return;
          }
          recorded[tid][slot].deleted = true;
          own_live.erase(own_live.begin() + static_cast<long>(pick));
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (const std::string& failure : failures) {
    ASSERT_TRUE(failure.empty()) << failure;
  }

  // Serial replay: apply every recorded insert/delete to the source
  // relation, then the sharded table must answer exactly like a plain
  // scan of the replayed source — for a full scan and for range queries.
  size_t inserts = 0, deletes = 0;
  for (const auto& thread_log : recorded) {
    for (const RecordedInsert& rec : thread_log) {
      const Key key = source_->AppendRow(rec.values);
      ++inserts;
      if (rec.deleted) {
        source_->DeleteRow(key);
        ++deletes;
      }
    }
  }

  PlainEngine reference(*source_);
  QuerySpec full_scan;
  full_scan.projections = {AttrName(1), AttrName(2), AttrName(3), AttrName(4)};
  ASSERT_EQ(ZipRows(db_->Query("R", full_scan)),
            ZipRows(reference.Run(full_scan)));

  Rng rng(31);
  for (int q = 0; q < 5; ++q) {
    const QuerySpec spec = RandomQuery(&rng);
    ASSERT_EQ(ZipRows(db_->Query("R", spec)), ZipRows(reference.Run(spec)))
        << "replayed range query " << q;
  }

  const TableStats stats = db_->Stats("R");
  EXPECT_EQ(stats.partitions, 5u);
  EXPECT_EQ(stats.rows, kRows + inserts);
  EXPECT_EQ(stats.inserts, inserts);
  EXPECT_EQ(stats.deletes, deletes);
  EXPECT_EQ(stats.live_rows, source_->num_live_rows());
  EXPECT_GE(stats.queries, 6u);  // at least the replay-check queries
}

// The batch/async surface under the same 4-thread storm: every thread
// pushes its traffic through QueryBatch / QueryAsync / ApplyBatch instead
// of the one-op loop, and the final state must still equal a serial
// replay of the recorded writes. Runs under TSan in CI like the rest of
// the suite.
TEST_P(ConcurrencyStressTest, BatchedAsyncStormEqualsSerialReplay) {
  struct RecordedInsert {
    std::vector<Value> values;
    bool deleted = false;
  };
  std::vector<std::vector<RecordedInsert>> recorded(kThreads);
  std::vector<std::string> failures(kThreads);

  std::vector<std::thread> clients;
  for (size_t tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([this, tid, &recorded, &failures] {
      Rng rng(7700 + tid);
      std::vector<std::pair<Key, size_t>> own_live;  // global key, slot
      for (int round = 0; round < 12; ++round) {
        // A query batch, with one extra query in flight asynchronously.
        std::vector<QuerySpec> specs;
        for (int q = 0; q < 3; ++q) specs.push_back(RandomQuery(&rng));
        std::future<QueryResult> async_result =
            db_->QueryAsync("R", RandomQuery(&rng));
        const std::vector<QueryResult> results = db_->QueryBatch("R", specs);
        for (const QueryResult& result : results) {
          for (const auto& col : result.columns) {
            if (col.size() != result.num_rows) {
              failures[tid] = "ragged batch result in thread " +
                              std::to_string(tid);
              return;
            }
          }
        }
        (void)async_result.get();

        // A mixed write batch: a few inserts plus a delete of one of our
        // own earlier rows (own keys only, so serial replay stays a valid
        // oracle under any interleaving).
        std::vector<WriteOp> ops;
        std::vector<size_t> insert_slots;
        const size_t inserts = 1 + static_cast<size_t>(rng.Uniform(0, 2));
        for (size_t i = 0; i < inserts; ++i) {
          std::vector<Value> row(source_->num_columns());
          for (Value& v : row) v = rng.Uniform(1, kDomain);
          insert_slots.push_back(recorded[tid].size());
          recorded[tid].push_back({row, false});
          ops.push_back(WriteOp::MakeInsert(std::move(row)));
        }
        size_t deleted_slot = recorded[tid].size();
        if (own_live.size() >= 2 && rng.Bernoulli(0.6)) {
          const size_t pick = static_cast<size_t>(
              rng.Uniform(0, static_cast<Value>(own_live.size()) - 1));
          const auto [key, slot] = own_live[pick];
          deleted_slot = slot;
          ops.push_back(WriteOp::MakeDelete(key));
          own_live.erase(own_live.begin() + static_cast<long>(pick));
        }
        const std::vector<WriteOutcome> outcomes = db_->ApplyBatch("R", ops);
        for (size_t i = 0; i < ops.size(); ++i) {
          if (!outcomes[i].ok) {
            failures[tid] = "batched write failed in thread " +
                            std::to_string(tid);
            return;
          }
          if (ops[i].kind == WriteOp::Kind::kInsert) {
            own_live.push_back({outcomes[i].key, insert_slots.front()});
            insert_slots.erase(insert_slots.begin());
          } else {
            recorded[tid][deleted_slot].deleted = true;
          }
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (const std::string& failure : failures) {
    ASSERT_TRUE(failure.empty()) << failure;
  }

  // Serial replay oracle, as in MixedStormEqualsSerialReplay.
  for (const auto& thread_log : recorded) {
    for (const RecordedInsert& rec : thread_log) {
      const Key key = source_->AppendRow(rec.values);
      if (rec.deleted) source_->DeleteRow(key);
    }
  }
  PlainEngine reference(*source_);
  QuerySpec full_scan;
  full_scan.projections = {AttrName(1), AttrName(2), AttrName(3), AttrName(4)};
  ASSERT_EQ(ZipRows(db_->Query("R", full_scan)),
            ZipRows(reference.Run(full_scan)));
  Rng rng(63);
  for (int q = 0; q < 5; ++q) {
    const QuerySpec spec = RandomQuery(&rng);
    ASSERT_EQ(ZipRows(db_->QueryBatch("R", {&spec, 1}).front()),
              ZipRows(reference.Run(spec)))
        << "replayed batched query " << q;
  }
  EXPECT_EQ(db_->Stats("R").live_rows, source_->num_live_rows());
}

// The grouped-aggregation storm: 4 client threads hammer the same sharded
// table with randomized GroupBy queries — per-partition hash aggregation
// under the partition locks, partial-table merges on each client thread —
// while the crackers reorganize underneath. The source is immutable in
// this phase, so every concurrent answer must equal a per-thread std::map
// oracle folded from a plain reference scan. Runs under TSan in CI.
TEST_P(ConcurrencyStressTest, ConcurrentGroupedQueriesMatchOracle) {
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kThreads);
  for (size_t tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([this, tid, &failures] {
      Rng rng(3100 + tid);
      PlainEngine reference(*source_);  // source is immutable in this phase
      for (int q = 0; q < 20; ++q) {
        const RangePredicate pred =
            bench::RandomRange(&rng, 1, kDomain, 0.25);
        // Map oracle over the reference's materialized rows.
        QuerySpec ref_spec;
        ref_spec.selections = {{AttrName(1), pred}};
        ref_spec.projections = {AttrName(3), AttrName(4)};
        const QueryResult ref = reference.Run(ref_spec);
        std::map<Value, std::pair<uint64_t, Value>> oracle;  // count, sum
        for (size_t r = 0; r < ref.num_rows; ++r) {
          auto& slot = oracle[ref.columns[0][r]];
          slot.first += 1;
          slot.second = static_cast<Value>(
              static_cast<uint64_t>(slot.second) +
              static_cast<uint64_t>(ref.columns[1][r]));
        }

        auto got = db_->From("R")
                       .Where(AttrName(1), pred)
                       .GroupBy(AttrName(3))
                       .Aggregate(AggregateOp::kSum, AttrName(4))
                       .Aggregate(AggregateOp::kCount, AttrName(4))
                       .Execute();
        if (!got.ok()) {
          failures[tid] = "thread " + std::to_string(tid) + " query " +
                          std::to_string(q) + " failed: " + got.error();
          return;
        }
        bool match = got->groups.num_groups() == oracle.size() &&
                     got->cost.reconstruct_micros == 0;
        size_t gi = 0;
        for (const auto& [key, cs] : oracle) {
          if (!match) break;
          match = got->groups.keys[gi] == key &&
                  got->groups.counts[gi] == cs.first &&
                  got->groups.aggregates[0][gi] == cs.second &&
                  got->groups.aggregates[1][gi] ==
                      static_cast<Value>(cs.first);
          ++gi;
        }
        if (!match) {
          failures[tid] = "thread " + std::to_string(tid) + " grouped query " +
                          std::to_string(q) + " diverged from the map oracle";
          return;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (const std::string& failure : failures) {
    EXPECT_TRUE(failure.empty()) << failure;
  }
}

TEST_P(ConcurrencyStressTest, SnapshotsRunConcurrentlyWithTraffic) {
  std::vector<std::thread> clients;
  for (size_t tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([this, tid] {
      Rng rng(500 + tid);
      for (int op = 0; op < 15; ++op) {
        if (tid % 2 == 0) {
          (void)db_->Query("R", RandomQuery(&rng));
        } else {
          const TableStats stats = db_->Stats("R");
          // rows only grows; live_rows never exceeds it.
          EXPECT_GE(stats.rows, kRows);
          EXPECT_LE(stats.live_rows, stats.rows);
        }
        if (op % 5 == 4) {
          std::vector<Value> row(source_->num_columns());
          for (Value& v : row) v = rng.Uniform(1, kDomain);
          (void)db_->Insert("R", row);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
}

// The adaptive-repartitioning storm: clients hammer a *hot range* with
// mixed reads and writes while splits and merges execute underneath them,
// both from background trigger ticks (every 64 ops) and from a dedicated
// thread spamming manual MaybeRepartition. Every mid-storm answer is
// structurally checked, the final state must equal a serial replay, and a
// deterministic post-storm phase proves the split machinery actually
// fired. Under TSan this exercises the map-gate swap protocol end to end.
TEST_P(ConcurrencyStressTest, RepartitionStormEqualsSerialReplay) {
  struct RecordedInsert {
    std::vector<Value> values;
    bool deleted = false;
  };
  // A separate database: the storm needs its own adaptive registration
  // (shard relation names derive from the source name, so it also gets
  // its own catalog and source mirror).
  Catalog catalog;
  Rng data_rng(777);
  Relation& mirror =
      bench::CreateUniformRelation(&catalog, "R", 4, kRows, kDomain,
                                   &data_rng);
  DatabaseOptions options;
  options.pool_threads = 2;
  Database db(options);
  PartitionSpec spec;
  spec.kind = PartitionSpec::Kind::kRange;
  spec.num_partitions = 5;
  spec.column = AttrName(1);
  spec.domain_lo = 1;
  spec.domain_hi = kDomain;
  AdaptiveConfig adaptive;
  adaptive.enabled = true;
  adaptive.trigger_interval = 64;
  adaptive.min_accesses = 16;
  adaptive.hot_share = 0.30;
  adaptive.cold_share = 0.05;
  adaptive.min_partition_rows = 64;
  adaptive.max_partitions = 12;
  adaptive.cooldown_ticks = 0;
  adaptive.sketch_capacity = 32;
  db.RegisterSharded("R", mirror, spec, GetParam(), adaptive);

  std::vector<std::vector<RecordedInsert>> recorded(kThreads);
  std::vector<std::string> failures(kThreads);
  std::atomic<bool> storming{true};

  // Hot traffic: most ranges inside the low fifth of the domain, so the
  // histogram concentrates and splits fire while the storm runs.
  auto hot_query = [](Rng* rng) {
    QueryBuilder builder;
    builder.Where(AttrName(1), bench::RandomRange(rng, 1, kDomain / 5, 0.2))
        .Where(AttrName(2), bench::RandomRange(rng, 1, kDomain, 0.6))
        .Project(AttrName(3), AttrName(4));
    return builder.Spec();
  };

  std::vector<std::thread> clients;
  for (size_t tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([&, tid] {
      Rng rng(5500 + tid);
      std::vector<std::pair<Key, size_t>> own_live;  // global key, slot
      for (int op = 0; op < 60; ++op) {
        const double dice = rng.NextDouble();
        if (dice < 0.6) {
          const QueryResult result = db.Query("R", hot_query(&rng));
          for (const auto& col : result.columns) {
            if (col.size() != result.num_rows) {
              failures[tid] = "ragged result in thread " + std::to_string(tid);
              return;
            }
          }
        } else if (dice < 0.85 || own_live.empty()) {
          std::vector<Value> row(mirror.num_columns());
          for (Value& v : row) v = rng.Uniform(1, kDomain);
          const Key key = db.Insert("R", row);
          own_live.push_back({key, recorded[tid].size()});
          recorded[tid].push_back({std::move(row), false});
        } else {
          // Own keys only, so serial replay stays a valid oracle; the
          // keys cross live splits/merges, so the rewritten router is
          // what resolves them.
          const size_t pick = static_cast<size_t>(
              rng.Uniform(0, static_cast<Value>(own_live.size()) - 1));
          const auto [key, slot] = own_live[pick];
          if (!db.Delete("R", key)) {
            failures[tid] = "delete of own live key failed in thread " +
                            std::to_string(tid);
            return;
          }
          recorded[tid][slot].deleted = true;
          own_live.erase(own_live.begin() + static_cast<long>(pick));
        }
      }
    });
  }
  // A dedicated ticker thread on top of the background trigger: manual
  // and automatic ticks contend for the same in-flight slot.
  std::thread ticker([&] {
    while (storming.load(std::memory_order_acquire)) {
      (void)db.MaybeRepartition("R");
      std::this_thread::yield();
    }
  });
  for (std::thread& c : clients) c.join();
  storming.store(false, std::memory_order_release);
  ticker.join();
  for (const std::string& failure : failures) {
    ASSERT_TRUE(failure.empty()) << failure;
  }

  // Serial replay oracle over the mirror.
  for (const auto& thread_log : recorded) {
    for (const RecordedInsert& rec : thread_log) {
      const Key key = mirror.AppendRow(rec.values);
      if (rec.deleted) mirror.DeleteRow(key);
    }
  }
  PlainEngine reference(mirror);
  QuerySpec full_scan;
  full_scan.projections = {AttrName(1), AttrName(2), AttrName(3), AttrName(4)};
  ASSERT_EQ(ZipRows(db.Query("R", full_scan)),
            ZipRows(reference.Run(full_scan)));
  Rng rng(99);
  for (int q = 0; q < 5; ++q) {
    const QuerySpec spec = RandomQuery(&rng);
    ASSERT_EQ(ZipRows(db.Query("R", spec)), ZipRows(reference.Run(spec)))
        << "replayed range query " << q;
  }
  EXPECT_EQ(db.Stats("R").live_rows, mirror.num_live_rows());

  // Deterministic post-storm phase: concentrated traffic plus manual
  // ticks must execute at least one action (the storm itself may or may
  // not have, depending on timing).
  Rng hot_rng(123);
  for (int round = 0;
       round < 40 && db.Stats("R").splits + db.Stats("R").merges == 0;
       ++round) {
    for (int q = 0; q < 8; ++q) (void)db.Query("R", hot_query(&hot_rng));
    (void)db.MaybeRepartition("R");
  }
  const TableStats stats = db.Stats("R");
  EXPECT_GT(stats.splits + stats.merges, 0u);
  ASSERT_EQ(ZipRows(db.Query("R", full_scan)),
            ZipRows(reference.Run(full_scan)));
}

// The observability storm: four client threads of mixed single and
// batched scalar queries, with every per-query CostBreakdown summed on
// the side. At the documented sync points the global registry must agree
// exactly with what the queries themselves reported — the deferred-flush
// pipeline (batched under the engine's cost mutex, drained every N
// batches and at CostSnapshot) loses nothing under contention. Runs
// under TSan via the `concurrency` label like the rest of this suite.
TEST_P(ConcurrencyStressTest, MetricsStormMatchesSummedQueryCosts) {
  obs::SetMetricsEnabled(true);
  auto metric = [](const char* name) {
    for (const obs::MetricSample& s :
         obs::MetricsRegistry::Global().Snapshot()) {
      if (s.name == name) return s.value;
    }
    return 0.0;
  };
  // Make both the registry and the per-Database query counter exact
  // before taking baselines: CostSnapshot drains the engine's pending
  // tallies, the system.metrics query reconciles db_queries_total.
  ASSERT_TRUE(db_->From("system.metrics").Count().Execute().ok());
  (void)db_->engine("R").CostSnapshot();
  const double base_sub = metric("engine_subqueries_total");
  const double base_pruned = metric("engine_partitions_pruned_total");
  const double base_select = metric("engine_select_micros_total");
  const double base_queries = metric("db_queries_total");

  struct ThreadTally {
    size_t queries = 0;
    size_t touched = 0;
    size_t pruned = 0;
    double select_micros = 0.0;
  };
  std::vector<ThreadTally> tallies(kThreads);
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> clients;
  for (size_t tid = 0; tid < kThreads; ++tid) {
    clients.emplace_back([this, tid, &tallies, &failures] {
      Rng rng(6100 + tid);
      ThreadTally& tally = tallies[tid];
      auto record = [&tally](const ExecuteResult& r) {
        ++tally.queries;
        tally.touched += r.partitions_touched;
        tally.pruned += r.partitions_pruned;
        tally.select_micros += r.cost.select_micros;
      };
      for (int round = 0; round < 12; ++round) {
        const Value lo = rng.Uniform(1, kDomain - 300);
        if (round % 3 == 0) {
          // A batch: three predicates answered under one fan-out.
          std::vector<Query> queries;
          for (int i = 0; i < 3; ++i) {
            queries.push_back(db_->From("R")
                                  .Where(AttrName(1), lo + i * 40,
                                         lo + 300 + i * 40)
                                  .Count()
                                  .Build());
          }
          auto results = db_->ExecuteBatch(queries);
          for (const auto& r : results) {
            if (!r.ok()) {
              failures[tid] = "batch error: " + r.error();
              return;
            }
            record(*r);
          }
        } else {
          auto r = db_->From("R")
                       .Where(AttrName(1), lo, lo + 300)
                       .Aggregate(AggregateOp::kSum, AttrName(2))
                       .Execute();
          if (!r.ok()) {
            failures[tid] = "query error: " + r.error();
            return;
          }
          record(*r);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (const std::string& failure : failures) {
    ASSERT_TRUE(failure.empty()) << failure;
  }

  ThreadTally total;
  for (const ThreadTally& t : tallies) {
    total.queries += t.queries;
    total.touched += t.touched;
    total.pruned += t.pruned;
    total.select_micros += t.select_micros;
  }
  // Sync, then compare. The final system.metrics query reconciles the
  // sampled query counter, so the delta includes it plus the baseline
  // reconciliation query itself having already landed.
  (void)db_->engine("R").CostSnapshot();
  ASSERT_TRUE(db_->From("system.metrics").Count().Execute().ok());
  EXPECT_EQ(metric("engine_subqueries_total") - base_sub,
            static_cast<double>(total.touched)) << GetParam();
  EXPECT_EQ(metric("engine_partitions_pruned_total") - base_pruned,
            static_cast<double>(total.pruned)) << GetParam();
  // Micros are double sums accumulated in different orders on the two
  // sides; agreement is to rounding, not bit-exact.
  EXPECT_NEAR(metric("engine_select_micros_total") - base_select,
              total.select_micros, 0.5) << GetParam();
  EXPECT_EQ(metric("db_queries_total") - base_queries,
            static_cast<double>(total.queries + 1)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CrackingKinds, ConcurrencyStressTest,
                         ::testing::Values("selection-cracking", "sideways",
                                           "partial"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace crackdb
