#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/relation.h"

namespace crackdb {
namespace {

TEST(ColumnTest, SelectReturnsAscendingKeys) {
  Column c("A");
  for (Value v : {5, 1, 7, 3, 7, 2}) c.Append(v);
  const std::vector<Key> keys = c.Select(RangePredicate::Closed(3, 7));
  EXPECT_EQ(keys, (std::vector<Key>{0, 2, 3, 4}));
}

TEST(ColumnTest, SelectRespectsBoundInclusivity) {
  Column c("A");
  for (Value v : {1, 2, 3, 4, 5}) c.Append(v);
  EXPECT_EQ(c.Select(RangePredicate::Open(2, 4)).size(), 1u);       // {3}
  EXPECT_EQ(c.Select(RangePredicate::HalfOpen(2, 4)).size(), 2u);   // {2,3}
  EXPECT_EQ(c.Select(RangePredicate::Closed(2, 4)).size(), 3u);
  EXPECT_EQ(c.Select(RangePredicate::Point(3)).size(), 1u);
}

TEST(ColumnTest, SelectSkipsTombstones) {
  Column c("A");
  for (Value v : {5, 6, 7}) c.Append(v);
  std::vector<bool> deleted = {false, true, false};
  const std::vector<Key> keys = c.Select(RangePredicate{}, &deleted);
  EXPECT_EQ(keys, (std::vector<Key>{0, 2}));
}

TEST(ColumnTest, ReconstructGathersPositions) {
  Column c("A");
  for (Value v : {10, 20, 30, 40}) c.Append(v);
  const std::vector<Key> pos = {3, 0, 2};
  EXPECT_EQ(c.Reconstruct(pos), (std::vector<Value>{40, 10, 30}));
}

TEST(RelationTest, AppendAndColumnAccess) {
  Relation rel("R");
  rel.AddColumn("A");
  rel.AddColumn("B");
  const Value r0[] = {1, 10};
  const Value r1[] = {2, 20};
  EXPECT_EQ(rel.BulkLoadRow(r0), 0u);
  EXPECT_EQ(rel.BulkLoadRow(r1), 1u);
  EXPECT_EQ(rel.num_rows(), 2u);
  EXPECT_EQ(rel.column("B")[1], 20);
  EXPECT_EQ(rel.ColumnOrdinal("B"), 1u);
  EXPECT_TRUE(rel.HasColumn("A"));
  EXPECT_FALSE(rel.HasColumn("C"));
}

TEST(RelationTest, BulkLoadDoesNotLog) {
  Relation rel("R");
  rel.AddColumn("A");
  const Value row[] = {1};
  rel.BulkLoadRow(row);
  EXPECT_EQ(rel.log_version(), 0u);
}

TEST(RelationTest, AppendRowLogsInsertEvent) {
  Relation rel("R");
  rel.AddColumn("A");
  const Value row[] = {1};
  const Key k = rel.AppendRow(row);
  ASSERT_EQ(rel.log_version(), 1u);
  EXPECT_EQ(rel.log_entry(0).kind, UpdateEvent::Kind::kInsert);
  EXPECT_EQ(rel.log_entry(0).key, k);
}

TEST(RelationTest, DeleteRowTombstonesAndLogs) {
  Relation rel("R");
  rel.AddColumn("A");
  const Value row[] = {1};
  const Key k = rel.AppendRow(row);
  rel.DeleteRow(k);
  EXPECT_TRUE(rel.IsDeleted(k));
  EXPECT_EQ(rel.num_live_rows(), 0u);
  EXPECT_EQ(rel.num_rows(), 1u);
  ASSERT_EQ(rel.log_version(), 2u);
  EXPECT_EQ(rel.log_entry(1).kind, UpdateEvent::Kind::kDelete);
  // Idempotent: a second delete does not log again.
  rel.DeleteRow(k);
  EXPECT_EQ(rel.log_version(), 2u);
}

TEST(CatalogTest, CreateAndLookup) {
  Catalog catalog;
  Relation& r = catalog.CreateRelation("R");
  r.AddColumn("A");
  EXPECT_TRUE(catalog.HasRelation("R"));
  EXPECT_FALSE(catalog.HasRelation("S"));
  EXPECT_EQ(&catalog.relation("R"), &r);
  EXPECT_EQ(catalog.relation_names().size(), 1u);
}

TEST(DictionaryTest, EncodeDecodeRoundTrip) {
  Dictionary dict;
  const Value a = dict.Encode("apple");
  const Value b = dict.Encode("banana");
  EXPECT_EQ(dict.Encode("apple"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Decode(a), "apple");
  EXPECT_EQ(dict.CodeOf("banana"), b);
  EXPECT_TRUE(dict.Contains("apple"));
  EXPECT_FALSE(dict.Contains("cherry"));
}

TEST(DictionaryTest, RegisterSortedAssignsLexicographicCodes) {
  Dictionary dict;
  dict.RegisterSorted({"pear", "apple", "mango", "apple"});
  EXPECT_EQ(dict.size(), 3u);  // deduplicated
  EXPECT_EQ(dict.CodeOf("apple"), 0);
  EXPECT_EQ(dict.CodeOf("mango"), 1);
  EXPECT_EQ(dict.CodeOf("pear"), 2);
}

TEST(RangePredicateTest, ToStringFormats) {
  EXPECT_EQ(RangePredicate::Open(1, 5).ToString(), "(1, 5)");
  EXPECT_EQ(RangePredicate::Closed(1, 5).ToString(), "[1, 5]");
  EXPECT_EQ(RangePredicate{}.ToString(), "[-inf, +inf]");
}

}  // namespace
}  // namespace crackdb
