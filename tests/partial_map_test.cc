#include "core/partial_map.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

Relation& BuildRelation(Catalog* catalog, size_t rows, Value domain,
                        uint64_t seed) {
  Relation& rel = catalog->CreateRelation("R");
  rel.AddColumn("A");
  rel.AddColumn("B");
  rel.AddColumn("C");
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    const Value row[] = {rng.Uniform(1, domain), rng.Uniform(1, domain),
                         rng.Uniform(1, domain)};
    rel.BulkLoadRow(row);
  }
  return rel;
}

/// Fixture: a chunk map with one resolved area and the matching partial
/// map M_AB.
class PartialMapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rel_ = &BuildRelation(&catalog_, 2000, 1000, 42);
    cm_ = std::make_unique<ChunkMap>(*rel_, "A");
    map_ = std::make_unique<PartialMap>(*rel_, "A", "B");
  }

  ChunkMapArea& ResolveOne(Value lo, Value hi) {
    auto cover = cm_->ResolveAreas(RangePredicate::Closed(lo, hi));
    EXPECT_EQ(cover.size(), 1u);
    return *cover[0].area;
  }

  Catalog catalog_;
  Relation* rel_ = nullptr;
  std::unique_ptr<ChunkMap> cm_;
  std::unique_ptr<PartialMap> map_;
};

TEST_F(PartialMapTest, CreateChunkCopiesAreaWithTailValues) {
  ChunkMapArea& area = ResolveOne(100, 300);
  cm_->FetchArea(area);
  MapChunk& chunk = map_->CreateChunk(area);
  ASSERT_EQ(chunk.size(), area.size());
  const Column& b = rel_->column("B");
  for (size_t i = 0; i < chunk.size(); ++i) {
    EXPECT_EQ(chunk.store.head[i], area.store.head[i]);
    EXPECT_EQ(chunk.store.tail[i],
              b[static_cast<Key>(area.store.tail[i])]);
  }
  EXPECT_EQ(chunk.cursor, area.tape.size());
  EXPECT_TRUE(map_->HasChunk(area.start));
}

TEST_F(PartialMapTest, SiblingChunksAlignAfterCracks) {
  PartialMap map_c(*rel_, "A", "C");
  ChunkMapArea& area = ResolveOne(100, 500);
  cm_->FetchArea(area);
  MapChunk& cb = map_->CreateChunk(area);
  // Crack via the tape; the B chunk replays first.
  area.tape.AppendCrackBound(Bound{250, true});
  map_->AlignChunk(cb, area, area.tape.size());
  // The C chunk is created later from the (lagging) H store, then aligned.
  cm_->FetchArea(area);
  MapChunk& cc = map_c.CreateChunk(area);
  map_c.AlignChunk(cc, area, area.tape.size());
  map_->AlignChunk(cb, area, area.tape.size());
  ASSERT_EQ(cb.store.head, cc.store.head);
  EXPECT_TRUE(CheckCrackInvariant(cb.store, cb.index));
  EXPECT_TRUE(CheckCrackInvariant(cc.store, cc.index));
}

TEST_F(PartialMapTest, PartialAlignmentStopsAtTarget) {
  ChunkMapArea& area = ResolveOne(100, 500);
  cm_->FetchArea(area);
  MapChunk& chunk = map_->CreateChunk(area);
  area.tape.AppendCrackBound(Bound{200, true});
  area.tape.AppendCrackBound(Bound{300, true});
  area.tape.AppendCrackBound(Bound{400, true});
  map_->AlignChunk(chunk, area, 2);
  EXPECT_EQ(chunk.cursor, 2u);
  EXPECT_TRUE(chunk.index.FindSplit(Bound{200, true}).has_value());
  EXPECT_TRUE(chunk.index.FindSplit(Bound{300, true}).has_value());
  EXPECT_FALSE(chunk.index.FindSplit(Bound{400, true}).has_value());
  map_->AlignChunk(chunk, area, area.tape.size());
  EXPECT_TRUE(chunk.index.FindSplit(Bound{400, true}).has_value());
}

TEST_F(PartialMapTest, HeadDropHalvesStorageAndRecovers) {
  ChunkMapArea& area = ResolveOne(100, 400);
  cm_->FetchArea(area);
  MapChunk& chunk = map_->CreateChunk(area);
  area.tape.AppendCrackBound(Bound{250, true});
  map_->AlignChunk(chunk, area, area.tape.size());
  const std::vector<Value> head_before = chunk.store.head;
  const size_t full_cost = chunk.StorageHalfTuples();
  map_->DropHead(chunk);
  EXPECT_TRUE(chunk.store.head_dropped);
  EXPECT_EQ(chunk.StorageHalfTuples(), full_cost / 2);
  map_->RecoverHead(chunk, area);
  EXPECT_FALSE(chunk.store.head_dropped);
  EXPECT_EQ(chunk.store.head, head_before);
}

TEST_F(PartialMapTest, HeadRecoveryViaScratchReplayWhenHLags) {
  ChunkMapArea& area = ResolveOne(100, 400);
  cm_->FetchArea(area);
  MapChunk& chunk = map_->CreateChunk(area);
  // Chunk replays a crack; H's store stays behind (h_cursor lags).
  area.tape.AppendCrackBound(Bound{250, true});
  map_->AlignChunk(chunk, area, area.tape.size());
  ASSERT_LT(area.h_cursor, chunk.cursor);
  const std::vector<Value> head_before = chunk.store.head;
  map_->DropHead(chunk);
  map_->RecoverHead(chunk, area);
  EXPECT_EQ(chunk.store.head, head_before);
}

TEST_F(PartialMapTest, HeadRecoveryRebuildsWhenHIsAhead) {
  ChunkMapArea& area = ResolveOne(100, 400);
  cm_->FetchArea(area);
  MapChunk& chunk = map_->CreateChunk(area);
  map_->DropHead(chunk);
  // H races ahead of the chunk.
  area.tape.AppendCrackBound(Bound{250, true});
  cm_->AlignArea(area);
  ASSERT_GT(area.h_cursor, chunk.cursor);
  map_->RecoverHead(chunk, area);
  EXPECT_FALSE(chunk.store.head_dropped);
  EXPECT_EQ(chunk.cursor, area.h_cursor);
  EXPECT_EQ(chunk.store.head, area.store.head);
  // Tail values refetched from base stay row-aligned with the head.
  const Column& b = rel_->column("B");
  for (size_t i = 0; i < chunk.size(); ++i) {
    EXPECT_EQ(chunk.store.tail[i], b[static_cast<Key>(area.store.tail[i])]);
  }
}

TEST_F(PartialMapTest, AlignRecoversDroppedHeadAutomatically) {
  ChunkMapArea& area = ResolveOne(100, 400);
  cm_->FetchArea(area);
  MapChunk& chunk = map_->CreateChunk(area);
  map_->DropHead(chunk);
  area.tape.AppendCrackBound(Bound{300, false});
  map_->AlignChunk(chunk, area, area.tape.size());
  EXPECT_FALSE(chunk.store.head_dropped);
  EXPECT_TRUE(chunk.index.FindSplit(Bound{300, false}).has_value());
  EXPECT_TRUE(CheckCrackInvariant(chunk.store, chunk.index));
}

TEST_F(PartialMapTest, InsertReplayFetchesTailFromBase) {
  ChunkMapArea& area = ResolveOne(100, 400);
  cm_->FetchArea(area);
  MapChunk& chunk = map_->CreateChunk(area);
  const Value row[] = {222, 31337, 1};
  const Key k = rel_->AppendRow(row);
  cm_->PullUpdates(RangePredicate::Closed(100, 400));
  ASSERT_EQ(area.tape.size(), 1u);
  map_->AlignChunk(chunk, area, area.tape.size());
  bool found = false;
  for (size_t i = 0; i < chunk.size(); ++i) {
    if (chunk.store.head[i] == 222 && chunk.store.tail[i] == 31337) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  (void)k;
}

TEST_F(PartialMapTest, DropChunkForgetsChunkOnly) {
  ChunkMapArea& area = ResolveOne(100, 400);
  cm_->FetchArea(area);
  map_->CreateChunk(area);
  EXPECT_EQ(map_->StorageHalfTuples(), 2 * area.size());
  map_->DropChunk(area.start);
  EXPECT_FALSE(map_->HasChunk(area.start));
  EXPECT_EQ(map_->StorageHalfTuples(), 0u);
}

}  // namespace
}  // namespace crackdb
