#include "core/chunk_map.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

Relation& BuildRelation(Catalog* catalog, size_t rows, Value domain,
                        uint64_t seed) {
  Relation& rel = catalog->CreateRelation("R");
  rel.AddColumn("A");
  rel.AddColumn("B");
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    const Value row[] = {rng.Uniform(1, domain), rng.Uniform(1, domain)};
    rel.BulkLoadRow(row);
  }
  return rel;
}

size_t TotalAreaRows(const ChunkMap& cm) {
  size_t n = 0;
  for (const ChunkMapArea* a : cm.Areas()) n += a->size();
  return n;
}

TEST(ChunkMapTest, StartsWithOneUnfetchedArea) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 1000, 500, 1);
  ChunkMap cm(rel, "A");
  ASSERT_EQ(cm.Areas().size(), 1u);
  EXPECT_FALSE(cm.Areas()[0]->fetched);
  EXPECT_EQ(cm.Areas()[0]->size(), 1000u);
  EXPECT_FALSE(cm.Areas()[0]->start.has_value());
}

TEST(ChunkMapTest, ResolveSplitsUnfetchedBoundaries) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 1000, 500, 2);
  ChunkMap cm(rel, "A");
  const RangePredicate pred = RangePredicate::Closed(100, 200);
  const auto cover = cm.ResolveAreas(pred);
  // The unfetched initial area is cut at both predicate bounds: the cover
  // is exactly one area [100, 200]-ish with no chunk-level cracking left.
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_FALSE(cover[0].crack_low);
  EXPECT_FALSE(cover[0].crack_high);
  EXPECT_EQ(cm.Areas().size(), 3u);
  // Every tuple in the covered area matches the predicate.
  for (Value v : cover[0].area->store.head) EXPECT_TRUE(pred.Matches(v));
  EXPECT_EQ(TotalAreaRows(cm), 1000u);
}

TEST(ChunkMapTest, FetchedAreasAreNotReCut) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 1000, 500, 3);
  ChunkMap cm(rel, "A");
  auto cover = cm.ResolveAreas(RangePredicate::Closed(100, 200));
  ASSERT_EQ(cover.size(), 1u);
  cm.FetchArea(*cover[0].area);
  // A narrower predicate hits the fetched area: it must come back whole,
  // flagged for chunk-level cracking instead of being cut.
  auto cover2 = cm.ResolveAreas(RangePredicate::Closed(120, 180));
  ASSERT_EQ(cover2.size(), 1u);
  EXPECT_EQ(cover2[0].area, cover[0].area);
  EXPECT_TRUE(cover2[0].crack_low);
  EXPECT_TRUE(cover2[0].crack_high);
  EXPECT_EQ(cm.Areas().size(), 3u);  // unchanged
}

TEST(ChunkMapTest, CoverSpansMultipleAreas) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 2000, 1000, 4);
  ChunkMap cm(rel, "A");
  cm.ResolveAreas(RangePredicate::Closed(200, 400));
  cm.ResolveAreas(RangePredicate::Closed(600, 800));
  // Predicate spanning across the already-cut areas.
  const auto cover = cm.ResolveAreas(RangePredicate::Closed(300, 700));
  ASSERT_GE(cover.size(), 3u);
  // Areas come back in value order and tile the predicate.
  size_t total = 0;
  for (const auto& ra : cover) total += ra.area->size();
  size_t expected = 0;
  const RangePredicate wide = RangePredicate::Closed(200, 800);
  // Every covered tuple lies within the union of covering areas (which may
  // exceed the predicate only at chunk-crack boundaries).
  for (const auto& ra : cover) {
    for (Value v : ra.area->store.head) EXPECT_TRUE(wide.Matches(v));
  }
  (void)expected;
  (void)total;
}

TEST(ChunkMapTest, ReleaseLastChunkUnfetchesAndDrainsTape) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 1000, 500, 5);
  ChunkMap cm(rel, "A");
  auto cover = cm.ResolveAreas(RangePredicate::Closed(100, 300));
  ChunkMapArea& area = *cover[0].area;
  cm.FetchArea(area);
  area.tape.AppendCrackBound(Bound{200, true});
  cm.ReleaseArea(area);
  EXPECT_FALSE(area.fetched);
  EXPECT_TRUE(area.tape.empty());
  EXPECT_EQ(area.h_cursor, 0u);
  // The drained crack persists as an interior split (retained knowledge).
  EXPECT_TRUE(area.index.FindSplit(Bound{200, true}).has_value());
  EXPECT_TRUE(CheckCrackInvariant(area.store, area.index));
}

TEST(ChunkMapTest, UpdatesRoutedToUnfetchedAreaApplyPhysically) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 500, 100, 6);
  ChunkMap cm(rel, "A");
  cm.ResolveAreas(RangePredicate::Closed(40, 60));
  const size_t rows_before = TotalAreaRows(cm);
  const Value row[] = {50, 999};
  rel.AppendRow(row);
  cm.PullUpdates(RangePredicate::Closed(40, 60));
  EXPECT_EQ(TotalAreaRows(cm), rows_before + 1);
  ChunkMapArea& area = cm.AreaContaining(50);
  EXPECT_TRUE(area.tape.empty());  // unfetched: applied physically
  bool found = false;
  for (size_t i = 0; i < area.size(); ++i) {
    if (area.store.head[i] == 50 &&
        area.store.tail[i] == static_cast<Value>(rel.num_rows() - 1)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ChunkMapTest, UpdatesOnFetchedAreaGoThroughTape) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 500, 100, 7);
  ChunkMap cm(rel, "A");
  auto cover = cm.ResolveAreas(RangePredicate::Closed(40, 60));
  ChunkMapArea& area = *cover[0].area;
  cm.FetchArea(area);
  const Value row[] = {50, 999};
  rel.AppendRow(row);
  cm.PullUpdates(RangePredicate::Closed(40, 60));
  ASSERT_EQ(area.tape.size(), 1u);
  EXPECT_EQ(area.tape.at(0).kind, TapeEntry::Kind::kInsert);
  EXPECT_EQ(area.h_cursor, 1u);  // H applied it immediately
}

TEST(ChunkMapTest, DeleteOnFetchedAreaLogsPosition) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 500, 100, 8);
  ChunkMap cm(rel, "A");
  auto cover = cm.ResolveAreas(RangePredicate::Closed(40, 60));
  ChunkMapArea& area = *cover[0].area;
  cm.FetchArea(area);
  // Find a key inside the area and delete it.
  const Key victim = static_cast<Key>(area.store.tail[0]);
  const size_t size_before = area.size();
  rel.DeleteRow(victim);
  cm.PullUpdates(RangePredicate::Closed(40, 60));
  ASSERT_EQ(area.tape.size(), 1u);
  EXPECT_EQ(area.tape.at(0).kind, TapeEntry::Kind::kDelete);
  EXPECT_EQ(area.size(), size_before - 1);
}

TEST(ChunkMapTest, EstimateBoundsTruth) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 4000, 1000, 9);
  ChunkMap cm(rel, "A");
  cm.ResolveAreas(RangePredicate::Closed(100, 300));
  cm.ResolveAreas(RangePredicate::Closed(500, 700));
  Rng rng(10);
  for (int q = 0; q < 20; ++q) {
    const Value lo = rng.Uniform(1, 800);
    const RangePredicate pred = RangePredicate::Closed(lo, lo + 150);
    const auto est = cm.EstimateMatches(pred);
    const size_t truth = rel.column("A").CountMatches(pred);
    EXPECT_LE(est.lower_bound, truth) << pred.ToString();
    EXPECT_GE(est.upper_bound, truth) << pred.ToString();
  }
}

TEST(ChunkMapTest, RepeatedResolvesPreserveAllRows) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 3000, 2000, 11);
  ChunkMap cm(rel, "A");
  Rng rng(12);
  for (int q = 0; q < 50; ++q) {
    const Value lo = rng.Uniform(1, 1800);
    cm.ResolveAreas(RangePredicate::Closed(lo, lo + 200));
    ASSERT_EQ(TotalAreaRows(cm), 3000u) << "query " << q;
  }
  // Areas tile the domain in order.
  const auto areas = cm.Areas();
  for (size_t i = 1; i < areas.size(); ++i) {
    ASSERT_TRUE(areas[i]->start.has_value());
    for (Value v : areas[i]->store.head) {
      EXPECT_TRUE(SatisfiesBound(*areas[i]->start, v));
    }
  }
}

}  // namespace
}  // namespace crackdb
