// Codec-layer contract (storage/codec.h): ChooseCodec picks by the
// documented stats thresholds; every codec round-trips bit-for-bit
// (including wrapping INT64_MIN-based FOR frames); and the encoded-domain
// query entry points (count/select/fold/filtered-fold/gather-fold) agree
// with a direct oracle over the raw values for every predicate shape.

#include "storage/codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace crackdb {
namespace {

using kernels::FoldOp;

/// A config with a low row floor so small test columns are eligible.
CompressionConfig TestConfig() {
  CompressionConfig config;
  config.enabled = true;
  config.min_rows = 8;
  return config;
}

std::vector<Value> Uniform(Rng* rng, size_t n, Value lo, Value hi) {
  std::vector<Value> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng->Uniform(lo, hi);
  return v;
}

/// `distinct` values drawn uniformly — dictionary-shaped when distinct is
/// far below n, with values spread wide so FOR would need many bits.
std::vector<Value> LowCardinality(Rng* rng, size_t n, size_t distinct) {
  std::vector<Value> alphabet(distinct);
  for (size_t i = 0; i < distinct; ++i) {
    alphabet[i] = static_cast<Value>(i) * 1'000'000'007;
  }
  std::vector<Value> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = alphabet[static_cast<size_t>(
        rng->Uniform(0, static_cast<Value>(distinct) - 1))];
  }
  return v;
}

/// Long runs (average length ~len) over a small domain.
std::vector<Value> Runs(Rng* rng, size_t n, size_t len, Value domain) {
  std::vector<Value> v(n);
  Value level = rng->Uniform(1, domain);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(1.0 / static_cast<double>(len))) {
      level = rng->Uniform(1, domain);
    }
    v[i] = level;
  }
  return v;
}

/// Predicate shapes mirrored from kernel_test's oracle matrix.
std::vector<RangePredicate> Predicates(Value lo, Value hi) {
  const Value third = lo + (hi - lo) / 3;
  const Value two_thirds = lo + 2 * ((hi - lo) / 3);
  return {
      RangePredicate::Closed(third, two_thirds),
      RangePredicate::Open(third, two_thirds),
      RangePredicate::HalfOpen(third, two_thirds),
      RangePredicate::Point(third),
      RangePredicate{},                    // everything
      RangePredicate::Open(third, third),  // empty interval
      RangePredicate{kMinValue, third, true, true},
      RangePredicate{third, kMaxValue, true, true},
      RangePredicate{kMinValue, kMaxValue, false, false},
  };
}

struct OracleResult {
  size_t count = 0;
  std::vector<Key> keys;
  Value sum = 0;  // wrapping mod 2^64, like the kernels
  Value min = 0;
  Value max = 0;
  bool valid = false;
};

OracleResult Oracle(const std::vector<Value>& values,
                    const RangePredicate& pred, Key base) {
  OracleResult r;
  uint64_t sum = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!pred.Matches(values[i])) continue;
    ++r.count;
    r.keys.push_back(base + static_cast<Key>(i));
    sum += static_cast<uint64_t>(values[i]);
    if (!r.valid) {
      r.min = r.max = values[i];
      r.valid = true;
    } else {
      r.min = std::min(r.min, values[i]);
      r.max = std::max(r.max, values[i]);
    }
  }
  r.sum = static_cast<Value>(sum);
  return r;
}

/// Encodes with `kind` (asserting success) and checks the full encoded
/// query surface against the raw oracle.
void CheckEncodedAgainstOracle(const std::vector<Value>& values,
                               CodecKind kind) {
  EncodedColumn enc;
  ASSERT_TRUE(EncodeColumn(values, kind, &enc)) << CodecName(kind);
  ASSERT_EQ(enc.kind, kind);
  ASSERT_EQ(enc.n, values.size());

  // Round trip, bulk and random access.
  EXPECT_EQ(DecodeColumn(enc), values) << CodecName(kind);
  Rng rng(13);
  for (int probe = 0; probe < 64 && !values.empty(); ++probe) {
    const size_t i = static_cast<size_t>(
        rng.Uniform(0, static_cast<Value>(values.size()) - 1));
    ASSERT_EQ(DecodeAt(enc, i), values[i]) << CodecName(kind) << " i=" << i;
  }

  const auto [lo_it, hi_it] =
      std::minmax_element(values.begin(), values.end());
  const Value lo = values.empty() ? 0 : *lo_it;
  const Value hi = values.empty() ? 0 : *hi_it;
  for (const RangePredicate& pred : Predicates(lo, hi)) {
    const OracleResult want = Oracle(values, pred, 100);
    EXPECT_EQ(EncodedCount(enc, pred), want.count) << CodecName(kind);

    std::vector<Key> keys;
    EncodedSelect(enc, pred, 100, &keys);
    EXPECT_EQ(keys, want.keys) << CodecName(kind);

    const struct {
      FoldOp op;
      Value expected;
    } folds[] = {{FoldOp::kSum, want.sum},
                 {FoldOp::kMin, want.min},
                 {FoldOp::kMax, want.max}};
    for (const auto& fold : folds) {
      Value acc = 123;
      bool valid = false;
      const size_t matched =
          EncodedFoldFiltered(enc, pred, fold.op, &acc, &valid);
      EXPECT_EQ(matched, want.count) << CodecName(kind);
      EXPECT_EQ(valid, want.valid) << CodecName(kind);
      if (want.valid) {
        EXPECT_EQ(acc, fold.expected)
            << CodecName(kind) << " op=" << static_cast<int>(fold.op);
      } else {
        EXPECT_EQ(acc, 123);  // untouched when nothing matches
      }
    }

    // Gather-fold over the oracle's selection vector (rebased to 0).
    std::vector<Key> positions = want.keys;
    for (Key& k : positions) k -= 100;
    Value acc = 123;
    bool valid = false;
    EncodedGatherFold(enc, positions, FoldOp::kSum, &acc, &valid);
    EXPECT_EQ(valid, want.valid) << CodecName(kind);
    if (want.valid) {
      EXPECT_EQ(acc, want.sum) << CodecName(kind);
    }
  }

  // Unfiltered fold equals the everything-predicate fold.
  const OracleResult all = Oracle(values, RangePredicate{}, 0);
  Value acc = 123;
  bool valid = false;
  EncodedFold(enc, FoldOp::kSum, &acc, &valid);
  EXPECT_EQ(valid, all.valid);
  if (all.valid) {
    EXPECT_EQ(acc, all.sum);
  }
}

// ---------------------------------------------------------------------------
// ChooseCodec: the stats thresholds
// ---------------------------------------------------------------------------

TEST(ChooseCodecTest, SmallColumnsStayRaw) {
  Rng rng(5);
  CompressionConfig config;  // default min_rows = 1024
  const std::vector<Value> v = Uniform(&rng, 1023, 1, 100);
  EXPECT_EQ(ChooseCodec(v, config), CodecKind::kRaw);
}

TEST(ChooseCodecTest, LongRunsPickRle) {
  Rng rng(6);
  const std::vector<Value> v = Runs(&rng, 4096, 64, 1'000'000);
  EXPECT_EQ(ChooseCodec(v, TestConfig()), CodecKind::kRle);
}

TEST(ChooseCodecTest, LowCardinalityPicksDict) {
  Rng rng(7);
  // 16 distinct values spread over a >32-bit range: dict, never FOR, and
  // shuffled so runs are short.
  const std::vector<Value> v = LowCardinality(&rng, 4096, 16);
  EXPECT_EQ(ChooseCodec(v, TestConfig()), CodecKind::kDict);
}

TEST(ChooseCodecTest, NarrowRangePicksFor) {
  Rng rng(8);
  // High cardinality (beats the dict bound) but a range under 32 bits.
  const std::vector<Value> v = Uniform(&rng, 8192, 500'000, 16'000'000);
  EXPECT_EQ(ChooseCodec(v, TestConfig()), CodecKind::kFor);
}

TEST(ChooseCodecTest, WideHighCardinalityStaysRaw) {
  Rng rng(9);
  // Range needs > 32 bits and cardinality exceeds the dict bound.
  const std::vector<Value> v = Uniform(&rng, 8192, 1, Value{1} << 40);
  EXPECT_EQ(ChooseCodec(v, TestConfig()), CodecKind::kRaw);
}

// ---------------------------------------------------------------------------
// Round trips + encoded queries vs the raw oracle
// ---------------------------------------------------------------------------

TEST(CodecRoundTripTest, ForMatchesOracle) {
  Rng rng(17);
  for (size_t n : {size_t{1}, size_t{63}, size_t{64}, size_t{1000}}) {
    CheckEncodedAgainstOracle(Uniform(&rng, n, -500, 12'345), CodecKind::kFor);
  }
}

TEST(CodecRoundTripTest, DictMatchesOracle) {
  Rng rng(19);
  for (size_t n : {size_t{1}, size_t{64}, size_t{1000}}) {
    CheckEncodedAgainstOracle(LowCardinality(&rng, n, 16), CodecKind::kDict);
  }
}

TEST(CodecRoundTripTest, RleMatchesOracle) {
  Rng rng(23);
  for (size_t n : {size_t{1}, size_t{64}, size_t{1000}}) {
    CheckEncodedAgainstOracle(Runs(&rng, n, 8, 300), CodecKind::kRle);
  }
}

TEST(CodecRoundTripTest, AllEqualColumnEncodesUnderEveryCodec) {
  const std::vector<Value> v(256, 42);
  for (CodecKind kind :
       {CodecKind::kFor, CodecKind::kRle, CodecKind::kDict}) {
    CheckEncodedAgainstOracle(v, kind);
  }
}

TEST(CodecRoundTripTest, ExtremeValueFramesRoundTrip) {
  // FOR decodes as wrapping uint64 base + code, so INT64_MIN-based frames
  // must round-trip exactly.
  std::vector<Value> low = {kMinValue, kMinValue + 5, kMinValue + 100,
                            kMinValue, kMinValue + 63};
  CheckEncodedAgainstOracle(low, CodecKind::kFor);
  CheckEncodedAgainstOracle(low, CodecKind::kDict);
  std::vector<Value> high = {kMaxValue, kMaxValue - 3, kMaxValue - 1,
                             kMaxValue};
  CheckEncodedAgainstOracle(high, CodecKind::kFor);
  CheckEncodedAgainstOracle(high, CodecKind::kRle);
}

TEST(CodecRoundTripTest, ForRefusesFullDomainRange) {
  // kMinValue..kMaxValue spans 2^64 - 1: no 63-bit code frame fits, so the
  // encoder must refuse rather than truncate.
  const std::vector<Value> v = {kMinValue, kMaxValue, 0, -1};
  EncodedColumn enc;
  EXPECT_FALSE(EncodeColumn(v, CodecKind::kFor, &enc));
  // Dictionary has no range limit: same data encodes fine.
  CheckEncodedAgainstOracle(v, CodecKind::kDict);
}

TEST(CodecRoundTripTest, RawKindRefusesToEncode) {
  const std::vector<Value> v(64, 1);
  EncodedColumn enc;
  EXPECT_FALSE(EncodeColumn(v, CodecKind::kRaw, &enc));
}

TEST(CodecBytesTest, EncodedBytesBeatRawOnCompressibleShapes) {
  Rng rng(29);
  const size_t n = 8192;
  const struct {
    std::vector<Value> values;
    CodecKind kind;
  } cases[] = {
      {Uniform(&rng, n, 1, 65'000), CodecKind::kFor},    // 16-17 bit codes
      {LowCardinality(&rng, n, 16), CodecKind::kDict},   // 4-bit codes
      {Runs(&rng, n, 64, 1'000'000), CodecKind::kRle},   // ~n/64 runs
  };
  for (const auto& c : cases) {
    EncodedColumn enc;
    ASSERT_TRUE(EncodeColumn(c.values, c.kind, &enc));
    const size_t raw = c.values.size() * sizeof(Value);
    EXPECT_LT(EncodedBytes(enc) * 2, raw)
        << CodecName(c.kind) << ": expected at least 2x reduction";
  }
}

TEST(CodecBytesTest, CodecNamesAreStable) {
  EXPECT_STREQ(CodecName(CodecKind::kRaw), "raw");
  EXPECT_STREQ(CodecName(CodecKind::kFor), "for");
  EXPECT_STREQ(CodecName(CodecKind::kRle), "rle");
  EXPECT_STREQ(CodecName(CodecKind::kDict), "dict");
}

TEST(CodecRandomizedTest, RandomShapesRoundTripUnderChosenCodec) {
  Rng rng(31);
  CompressionConfig config = TestConfig();
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n =
        static_cast<size_t>(rng.Uniform(8, 2048));
    std::vector<Value> v;
    switch (trial % 3) {
      case 0:
        v = Uniform(&rng, n, -10'000, 10'000);
        break;
      case 1:
        v = LowCardinality(&rng, n, 1 + trial);
        break;
      default:
        v = Runs(&rng, n, 16, 500);
        break;
    }
    const CodecKind kind = ChooseCodec(v, config);
    if (kind == CodecKind::kRaw) continue;
    CheckEncodedAgainstOracle(v, kind);
  }
}

}  // namespace
}  // namespace crackdb
