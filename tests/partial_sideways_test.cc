#include "core/partial_sideways.h"

#include <gtest/gtest.h>

#include <set>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

Relation& BuildRelation(Catalog* catalog, size_t rows, Value domain,
                        uint64_t seed, size_t attrs = 4) {
  Relation& rel = catalog->CreateRelation("R");
  for (size_t a = 1; a <= attrs; ++a) {
    rel.AddColumn(bench::AttrName(a));
  }
  Rng rng(seed);
  std::vector<Value> row(attrs);
  for (size_t i = 0; i < rows; ++i) {
    for (auto& v : row) v = rng.Uniform(1, domain);
    rel.BulkLoadRow(row);
  }
  return rel;
}

std::multiset<std::vector<Value>> ScanRows(
    const Relation& rel, const PartialQueryRequest& req,
    const std::string& head_attr) {
  std::multiset<std::vector<Value>> out;
  const Column& head = rel.column(head_attr);
  for (size_t i = 0; i < head.size(); ++i) {
    if (rel.IsDeleted(static_cast<Key>(i))) continue;
    if (!req.head_pred.Matches(head[i])) continue;
    bool ok = true;
    for (const auto& [attr, pred] : req.tail_selections) {
      if (!pred.Matches(rel.column(attr)[i])) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    std::vector<Value> row;
    for (const std::string& p : req.projections) row.push_back(rel.column(p)[i]);
    out.insert(row);
  }
  return out;
}

std::multiset<std::vector<Value>> ZipRows(const PartialQueryResult& r) {
  std::multiset<std::vector<Value>> out;
  for (size_t i = 0; i < r.num_rows; ++i) {
    std::vector<Value> row;
    for (const auto& col : r.columns) row.push_back(col[i]);
    out.insert(row);
  }
  return out;
}

TEST(PartialSidewaysTest, SimpleSelectionProjection) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 3000, 1000, 1);
  StorageManager sm(0);
  PartialConfig config;
  PartialMapSet set(rel, "A1", &sm, &config);
  PartialQueryRequest req;
  req.head_pred = RangePredicate::Closed(100, 300);
  req.projections = {"A2"};
  const PartialQueryResult r = set.Execute(req);
  EXPECT_EQ(ZipRows(r), ScanRows(rel, req, "A1"));
}

TEST(PartialSidewaysTest, TwoSelectionQueryShape) {
  // The paper's Qi shape: select Ci where A in range and Bi in range.
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 3000, 1000, 2);
  StorageManager sm(0);
  PartialConfig config;
  PartialMapSet set(rel, "A1", &sm, &config);
  PartialQueryRequest req;
  req.head_pred = RangePredicate::Closed(200, 600);
  req.tail_selections = {{"A2", RangePredicate::Closed(100, 500)}};
  req.projections = {"A3"};
  const PartialQueryResult r = set.Execute(req);
  EXPECT_EQ(ZipRows(r), ScanRows(rel, req, "A1"));
}

TEST(PartialSidewaysTest, HeadOnlyQueryUsesChunkMapDirectly) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 2000, 500, 3);
  StorageManager sm(0);
  PartialConfig config;
  PartialMapSet set(rel, "A1", &sm, &config);
  PartialQueryRequest req;
  req.head_pred = RangePredicate::Closed(100, 200);
  req.projections = {"A1"};
  const PartialQueryResult r = set.Execute(req);
  EXPECT_EQ(ZipRows(r), ScanRows(rel, req, "A1"));
  // No chunks were materialized: the (A,key) areas answered it.
  EXPECT_EQ(sm.used_half_tuples(), 0u);
}

TEST(PartialSidewaysTest, OnlyRequestedRangesMaterialize) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 10000, 10000, 4);
  StorageManager sm(0);
  PartialConfig config;
  PartialMapSet set(rel, "A1", &sm, &config);
  PartialQueryRequest req;
  req.head_pred = RangePredicate::Closed(1000, 1500);  // ~5% of the domain
  req.projections = {"A2"};
  set.Execute(req);
  // Chunk storage stays close to the selected fraction (2 half-tuples per
  // selected row), far below full materialization (20000 half-tuples).
  EXPECT_LT(sm.used_half_tuples(), 4000u);
  EXPECT_GT(sm.used_half_tuples(), 0u);
}

TEST(PartialSidewaysTest, BudgetEnforcedAfterQueries) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 8000, 8000, 5, 6);
  const size_t budget_tuples = 3000;
  StorageManager sm(budget_tuples * 2);
  PartialConfig config;
  config.storage_budget_tuples = budget_tuples;
  PartialMapSet set(rel, "A1", &sm, &config);
  Rng rng(6);
  for (int q = 0; q < 30; ++q) {
    PartialQueryRequest req;
    const Value lo = rng.Uniform(1, 7000);
    req.head_pred = RangePredicate::Closed(lo, lo + 800);
    const std::string tail = bench::AttrName(2 + (q % 5));
    req.tail_selections = {{tail, RangePredicate::Closed(1, 4000)}};
    req.projections = {tail};
    const PartialQueryResult r = set.Execute(req);
    ASSERT_EQ(ZipRows(r), ScanRows(rel, req, "A1")) << "query " << q;
    ASSERT_LE(sm.used_half_tuples(), budget_tuples * 2) << "query " << q;
  }
  EXPECT_GT(sm.eviction_count(), 0u);
}

TEST(PartialSidewaysTest, EvictedChunksRecreateCorrectly) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 4000, 4000, 7, 6);
  // Budget fits roughly one query's chunks, forcing steady eviction.
  StorageManager sm(2 * 1200);
  PartialConfig config;
  config.storage_budget_tuples = 1200;
  PartialMapSet set(rel, "A1", &sm, &config);
  PartialQueryRequest req1;
  req1.head_pred = RangePredicate::Closed(100, 900);
  req1.projections = {"A2"};
  PartialQueryRequest req2;
  req2.head_pred = RangePredicate::Closed(2000, 2800);
  req2.projections = {"A3"};
  for (int round = 0; round < 4; ++round) {
    const PartialQueryResult r1 = set.Execute(req1);
    ASSERT_EQ(ZipRows(r1), ScanRows(rel, req1, "A1")) << "round " << round;
    const PartialQueryResult r2 = set.Execute(req2);
    ASSERT_EQ(ZipRows(r2), ScanRows(rel, req2, "A1")) << "round " << round;
  }
}

TEST(PartialSidewaysTest, HeadDropPoliciesKeepResultsExact) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 3000, 2000, 8);
  StorageManager sm(0);
  PartialConfig config;
  config.enable_head_drop = true;
  config.sort_piece_threshold = 64;
  config.head_drop_idle_accesses = 2;
  PartialMapSet set(rel, "A1", &sm, &config);
  Rng rng(9);
  for (int q = 0; q < 60; ++q) {
    PartialQueryRequest req;
    const Value lo = rng.Uniform(1, 1500);
    req.head_pred = RangePredicate::Closed(lo, lo + 300);
    req.tail_selections = {{"A2", RangePredicate::Closed(500, 1500)}};
    req.projections = {"A3", "A1"};
    const PartialQueryResult r = set.Execute(req);
    ASSERT_EQ(ZipRows(r), ScanRows(rel, req, "A1")) << "query " << q;
  }
  // At least one chunk must have exercised a head drop.
  size_t dropped = 0;
  for (const auto& attr : {"A2", "A3"}) {
    if (!set.HasMap(attr)) continue;
    for (const auto& [start, chunk] : set.GetOrCreateMap(attr).chunks()) {
      if (chunk.store.head_dropped) ++dropped;
    }
  }
  EXPECT_GT(dropped, 0u);
}

TEST(PartialSidewaysTest, UpdatesVisibleThroughChunks) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 2000, 1000, 10);
  StorageManager sm(0);
  PartialConfig config;
  PartialMapSet set(rel, "A1", &sm, &config);
  PartialQueryRequest req;
  req.head_pred = RangePredicate::Closed(200, 400);
  req.tail_selections = {{"A2", RangePredicate::Closed(1, 1000)}};
  req.projections = {"A3"};
  set.Execute(req);
  // New row matches both predicates; its projected A3 value is a marker.
  const Value row[] = {300, 500, 55555, 1};
  rel.AppendRow(row);
  const PartialQueryResult r = set.Execute(req);
  EXPECT_EQ(ZipRows(r), ScanRows(rel, req, "A1"));
  bool found = false;
  for (Value v : r.columns[0]) found |= (v == 55555);
  EXPECT_TRUE(found);
}

TEST(PartialSidewaysTest, DeleteRemovedFromChunks) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 2000, 1000, 11);
  StorageManager sm(0);
  PartialConfig config;
  PartialMapSet set(rel, "A1", &sm, &config);
  PartialQueryRequest req;
  req.head_pred = RangePredicate::Closed(200, 400);
  req.projections = {"A2"};
  set.Execute(req);
  // Delete some matching row.
  const Column& a = rel.column("A1");
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= 200 && a[i] <= 400) {
      rel.DeleteRow(static_cast<Key>(i));
      break;
    }
  }
  const PartialQueryResult r = set.Execute(req);
  EXPECT_EQ(ZipRows(r), ScanRows(rel, req, "A1"));
}

/// Property sweep: partial sideways equals a plain scan for random
/// workloads across budgets, including the head-drop configuration.
struct PartialSweepParam {
  uint64_t seed;
  size_t budget_tuples;  // 0 = unlimited
  bool head_drop;
};

class PartialSweep : public ::testing::TestWithParam<PartialSweepParam> {};

TEST_P(PartialSweep, MatchesScan) {
  const PartialSweepParam p = GetParam();
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 4000, 3000, p.seed, 5);
  StorageManager sm(p.budget_tuples * 2);
  PartialConfig config;
  config.storage_budget_tuples = p.budget_tuples;
  config.enable_head_drop = p.head_drop;
  config.sort_piece_threshold = 128;
  config.head_drop_idle_accesses = 3;
  PartialMapSet set(rel, "A1", &sm, &config);
  Rng rng(p.seed * 7 + 1);
  size_t max_working_set = 0;
  for (int q = 0; q < 50; ++q) {
    PartialQueryRequest req;
    const Value lo = rng.Uniform(1, 2500);
    req.head_pred = RangePredicate::Closed(lo, lo + rng.Uniform(10, 500));
    if (rng.Bernoulli(0.7)) {
      const Value blo = rng.Uniform(1, 2500);
      req.tail_selections = {
          {bench::AttrName(2 + (q % 2)),
           RangePredicate::Closed(blo, blo + 800)}};
    }
    req.projections = {"A4", "A5"};
    const PartialQueryResult r = set.Execute(req);
    ASSERT_EQ(ZipRows(r), ScanRows(rel, req, "A1"))
        << "query " << q << " pred " << req.head_pred.ToString();
    if (p.budget_tuples != 0) {
      // Mid-query the pinned working set may exceed T, but the engine
      // re-enforces the budget before returning (invariant 5).
      ASSERT_LE(sm.used_half_tuples(), p.budget_tuples * 2) << "query " << q;
    }
    max_working_set = std::max(max_working_set, sm.used_half_tuples());
  }
  (void)max_working_set;
  if (p.budget_tuples != 0) {
    EXPECT_GT(sm.eviction_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartialSweep,
    ::testing::Values(PartialSweepParam{1, 0, false},
                      PartialSweepParam{2, 0, true},
                      PartialSweepParam{3, 2500, false},
                      PartialSweepParam{4, 2500, true},
                      PartialSweepParam{5, 800, false},
                      PartialSweepParam{6, 800, true}));

}  // namespace
}  // namespace crackdb
