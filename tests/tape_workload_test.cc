#include <gtest/gtest.h>

#include <cstring>

#include "bench_util/runner.h"
#include "bench_util/workload.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/tape.h"
#include "engine/plain_engine.h"
#include "engine/sideways_engine.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

TEST(CrackerTapeTest, AppendAndReadBack) {
  CrackerTape tape;
  EXPECT_TRUE(tape.empty());
  tape.AppendCrack(RangePredicate::Closed(1, 5));
  tape.AppendCrackBound(Bound{7, false});
  tape.AppendInsert(42, 99);
  tape.AppendDelete(3, 43, 100);
  tape.AppendSort(Bound{2, true});
  tape.AppendSort(std::nullopt);
  ASSERT_EQ(tape.size(), 6u);
  EXPECT_EQ(tape.at(0).kind, TapeEntry::Kind::kCrack);
  EXPECT_EQ(tape.at(0).pred, RangePredicate::Closed(1, 5));
  EXPECT_EQ(tape.at(1).kind, TapeEntry::Kind::kCrackBound);
  EXPECT_EQ(tape.at(1).bound, (Bound{7, false}));
  EXPECT_EQ(tape.at(2).kind, TapeEntry::Kind::kInsert);
  EXPECT_EQ(tape.at(2).key, 42u);
  EXPECT_EQ(tape.at(2).head_value, 99);
  EXPECT_EQ(tape.at(3).kind, TapeEntry::Kind::kDelete);
  EXPECT_EQ(tape.at(3).pos, 3u);
  ASSERT_TRUE(tape.at(4).piece_lower.has_value());
  EXPECT_FALSE(tape.at(5).piece_lower.has_value());
  tape.Clear();
  EXPECT_TRUE(tape.empty());
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
    const Value v = a.Uniform(10, 20);
    b.Uniform(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
    const double d = a.NextDouble();
    b.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  Rng c(124);
  EXPECT_NE(a.Next(), c.Next());
}

TEST(StatsTest, SummarizeBasics) {
  const SeriesSummary s = Summarize({3, 1, 2, 5, 4});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.total, 15);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_EQ(Summarize({}).count, 0u);
}

TEST(WorkloadTest, UniformRelationShape) {
  Catalog catalog;
  Rng rng(9);
  Relation& rel =
      bench::CreateUniformRelation(&catalog, "R", 4, 1000, 500, &rng);
  EXPECT_EQ(rel.num_columns(), 4u);
  EXPECT_EQ(rel.num_rows(), 1000u);
  EXPECT_EQ(bench::AttrName(3), "A3");
  for (size_t c = 0; c < 4; ++c) {
    for (size_t r = 0; r < 1000; r += 97) {
      EXPECT_GE(rel.column(c)[r], 1);
      EXPECT_LE(rel.column(c)[r], 500);
    }
  }
}

TEST(WorkloadTest, RandomRangeSelectivity) {
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    const RangePredicate pred = bench::RandomRange(&rng, 1, 10000, 0.2);
    EXPECT_GE(pred.low, 1);
    EXPECT_LE(pred.high, 10000);
    // Width ~ 20% of the domain.
    EXPECT_NEAR(static_cast<double>(pred.high - pred.low), 2000.0, 10.0);
  }
  const RangePredicate point = bench::RandomRange(&rng, 1, 100, 0.0);
  EXPECT_EQ(point.low, point.high);
}

TEST(WorkloadTest, SkewedGeneratorHitsHotRegion) {
  Rng rng(11);
  bench::SkewedRangeGen gen;
  gen.domain_lo = 1;
  gen.domain_hi = 10000;
  gen.hot_fraction = 0.5;
  gen.hot_probability = 0.9;
  gen.selectivity = 0.01;
  int hot = 0;
  const int trials = 1000;
  for (int i = 0; i < trials; ++i) {
    const RangePredicate pred = gen.Next(&rng);
    if (pred.low <= 5000) ++hot;
  }
  EXPECT_GT(hot, trials * 8 / 10);
  EXPECT_LT(hot, trials);
}

TEST(WorkloadTest, RandomUpdatesAlternateInsertDelete) {
  Catalog catalog;
  Rng rng(12);
  Relation& rel =
      bench::CreateUniformRelation(&catalog, "R", 2, 200, 100, &rng);
  const size_t applied = bench::ApplyRandomUpdates(&rel, 100, 10, &rng);
  EXPECT_EQ(applied, 10u);
  EXPECT_EQ(rel.num_rows(), 205u);   // 5 inserts
  EXPECT_EQ(rel.num_deleted(), 5u);  // 5 deletes
  EXPECT_EQ(rel.log_version(), 10u);
}

TEST(RunnerTest, BenchArgsParse) {
  const char* argv[] = {"prog", "--rows=1234", "--queries=56", "--seed=7",
                        "--paper-scale", "--sf=0.5"};
  const auto args = bench::BenchArgs::Parse(6, const_cast<char**>(argv));
  EXPECT_EQ(args.rows, 1234u);
  EXPECT_EQ(args.queries, 56u);
  EXPECT_EQ(args.seed, 7u);
  EXPECT_TRUE(args.paper_scale);
  EXPECT_DOUBLE_EQ(args.scale_factor, 0.5);
}

TEST(RunnerTest, RunTimedReportsCostsAndMax) {
  Catalog catalog;
  Rng rng(13);
  Relation& rel =
      bench::CreateUniformRelation(&catalog, "R", 3, 2000, 1000, &rng);
  PlainEngine engine(rel);
  QuerySpec spec;
  spec.selections = {{"A1", RangePredicate::Closed(100, 500)}};
  spec.projections = {"A2"};
  const auto outcome = bench::RunTimed(&engine, spec, /*keep_result=*/true);
  EXPECT_GT(outcome.timing.total_micros, 0);
  ASSERT_EQ(outcome.column_max.size(), 1u);
  Value expected = kMinValue;
  for (Value v : outcome.result.columns[0]) expected = std::max(expected, v);
  EXPECT_EQ(outcome.column_max[0], expected);
}

TEST(RunnerTest, RunTimedExcludesPrepareCost) {
  // The presorted engine's copy creation must not count as query time.
  Catalog catalog;
  Rng rng(14);
  Relation& rel =
      bench::CreateUniformRelation(&catalog, "R", 3, 50'000, 10'000, &rng);
  SidewaysEngine sideways(rel);  // no prepare cost: sanity baseline
  QuerySpec spec;
  spec.selections = {{"A1", RangePredicate::Closed(100, 5000)}};
  spec.projections = {"A2"};
  const auto first = bench::RunTimed(&sideways, spec);
  EXPECT_GE(first.timing.total_micros, 0);
}

}  // namespace
}  // namespace crackdb
