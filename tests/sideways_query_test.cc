#include "core/sideways.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

Relation& BuildRelation(Catalog* catalog, size_t rows, Value domain,
                        uint64_t seed) {
  Relation& rel = catalog->CreateRelation("R");
  for (const char* name : {"A", "B", "C", "D"}) rel.AddColumn(name);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    const Value row[] = {rng.Uniform(1, domain), rng.Uniform(1, domain),
                         rng.Uniform(1, domain), rng.Uniform(1, domain)};
    rel.BulkLoadRow(row);
  }
  return rel;
}

/// Ground-truth rows (as sorted tuples) for a conjunctive/disjunctive query
/// with head pred on A and tail preds, projecting the given columns.
std::multiset<std::vector<Value>> ScanRows(
    const Relation& rel, const RangePredicate& pred_a,
    const std::vector<std::pair<std::string, RangePredicate>>& tails,
    bool disjunctive, const std::vector<std::string>& projections) {
  std::multiset<std::vector<Value>> out;
  const Column& a = rel.column("A");
  for (size_t i = 0; i < a.size(); ++i) {
    bool match;
    if (disjunctive) {
      match = pred_a.Matches(a[i]);
      for (const auto& [attr, pred] : tails) {
        match = match || pred.Matches(rel.column(attr)[i]);
      }
    } else {
      match = pred_a.Matches(a[i]);
      for (const auto& [attr, pred] : tails) {
        match = match && pred.Matches(rel.column(attr)[i]);
      }
    }
    if (!match) continue;
    std::vector<Value> row;
    for (const std::string& p : projections) row.push_back(rel.column(p)[i]);
    out.insert(row);
  }
  return out;
}

std::multiset<std::vector<Value>> ZipRows(
    const std::vector<std::vector<Value>>& columns) {
  std::multiset<std::vector<Value>> out;
  if (columns.empty()) return out;
  for (size_t i = 0; i < columns[0].size(); ++i) {
    std::vector<Value> row;
    row.reserve(columns.size());
    for (const auto& col : columns) row.push_back(col[i]);
    out.insert(row);
  }
  return out;
}

TEST(SidewaysQueryTest, MultiProjectionSingleSelection) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 2000, 500, 1);
  MapSet set(rel, "A");
  const RangePredicate pred = RangePredicate::Closed(100, 200);
  SidewaysQuery q(set, pred);
  const std::vector<Value> b = q.FetchTail("B");
  const std::vector<Value> c = q.FetchTail("C");
  EXPECT_EQ(ZipRows({b, c}), ScanRows(rel, pred, {}, false, {"B", "C"}));
}

TEST(SidewaysQueryTest, HeadProjection) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 1000, 500, 2);
  MapSet set(rel, "A");
  const RangePredicate pred = RangePredicate::Closed(50, 99);
  SidewaysQuery q(set, pred);
  const std::vector<Value> b = q.FetchTail("B");
  const std::vector<Value> a = q.FetchHead();
  ASSERT_EQ(a.size(), b.size());
  for (Value v : a) EXPECT_TRUE(pred.Matches(v));
  EXPECT_EQ(ZipRows({a, b}), ScanRows(rel, pred, {}, false, {"A", "B"}));
}

TEST(SidewaysQueryTest, ConjunctiveBitVectorPipeline) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 3000, 500, 3);
  MapSet set(rel, "A");
  const RangePredicate pa = RangePredicate::Closed(100, 300);
  const RangePredicate pb = RangePredicate::Closed(50, 250);
  const RangePredicate pc = RangePredicate::Closed(200, 400);
  SidewaysQuery q(set, pa);
  q.AddTailSelection("B", pb);
  q.AddTailSelection("C", pc);
  const std::vector<Value> d = q.FetchTail("D");
  EXPECT_EQ(ZipRows({d}),
            ScanRows(rel, pa, {{"B", pb}, {"C", pc}}, false, {"D"}));
  EXPECT_EQ(q.NumQualifying(), d.size());
}

TEST(SidewaysQueryTest, DisjunctiveQueryScansOutsideArea) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 3000, 500, 4);
  MapSet set(rel, "A");
  const RangePredicate pa = RangePredicate::Closed(100, 300);
  const RangePredicate pb = RangePredicate::Closed(450, 500);
  SidewaysQuery q(set, pa, /*disjunctive=*/true);
  q.AddTailSelection("B", pb);
  const std::vector<Value> d = q.FetchTail("D");
  EXPECT_EQ(ZipRows({d}), ScanRows(rel, pa, {{"B", pb}}, true, {"D"}));
}

TEST(SidewaysQueryTest, FetchAtReturnsOrdinalRows) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 2000, 500, 5);
  MapSet set(rel, "A");
  const RangePredicate pred = RangePredicate::Closed(100, 400);
  SidewaysQuery q(set, pred);
  const std::vector<Value> b = q.FetchTail("B");
  ASSERT_GT(b.size(), 10u);
  const std::vector<uint32_t> ordinals = {0, 5, 9, 5};
  const std::vector<Value> picked = q.FetchTailAt("B", ordinals);
  ASSERT_EQ(picked.size(), 4u);
  EXPECT_EQ(picked[0], b[0]);
  EXPECT_EQ(picked[1], b[5]);
  EXPECT_EQ(picked[2], b[9]);
  EXPECT_EQ(picked[3], b[5]);
  // Head values at the same ordinals belong to the same tuples.
  const std::vector<Value> heads = q.FetchHeadAt(ordinals);
  const std::vector<Value> all_heads = q.FetchHead();
  EXPECT_EQ(heads[2], all_heads[9]);
}

TEST(SidewaysQueryTest, EmptyResultRange) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 500, 100, 6);
  MapSet set(rel, "A");
  SidewaysQuery q(set, RangePredicate::Closed(5000, 6000));
  EXPECT_TRUE(q.FetchTail("B").empty());
  EXPECT_EQ(q.NumQualifying(), 0u);
}

class SidewaysQuerySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SidewaysQuerySweep, RandomConjunctionsMatchScan) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 2500, 600, GetParam());
  MapSet set(rel, "A");
  Rng rng(GetParam() * 13);
  for (int step = 0; step < 40; ++step) {
    const Value alo = rng.Uniform(1, 500);
    const Value blo = rng.Uniform(1, 500);
    const RangePredicate pa = RangePredicate::Closed(alo, alo + 100);
    const RangePredicate pb = RangePredicate::Closed(blo, blo + 200);
    const bool disjunctive = rng.Bernoulli(0.3);
    SidewaysQuery q(set, pa, disjunctive);
    q.AddTailSelection("B", pb);
    const std::vector<Value> c = q.FetchTail("C");
    const std::vector<Value> d = q.FetchTail("D");
    ASSERT_EQ(ZipRows({c, d}),
              ScanRows(rel, pa, {{"B", pb}}, disjunctive, {"C", "D"}))
        << "step " << step << " disjunctive=" << disjunctive;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SidewaysQuerySweep,
                         ::testing::Values(7, 14, 21, 28));

}  // namespace
}  // namespace crackdb
