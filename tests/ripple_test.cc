#include "updates/ripple.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace crackdb {
namespace {

CrackPairs RandomStore(Rng* rng, size_t n, Value domain) {
  CrackPairs store;
  for (size_t i = 0; i < n; ++i) {
    store.PushBack(rng->Uniform(1, domain), static_cast<Value>(i));
  }
  return store;
}

std::multiset<std::pair<Value, Value>> Contents(const CrackPairs& s) {
  std::multiset<std::pair<Value, Value>> out;
  for (size_t i = 0; i < s.size(); ++i) out.insert({s.head[i], s.tail[i]});
  return out;
}

TEST(RippleInsertTest, InsertIntoUncrackedStore) {
  CrackPairs store;
  CrackerIndex index;
  RippleInsert(store, index, 5, 100);
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.head[0], 5);
  EXPECT_EQ(store.tail[0], 100);
}

TEST(RippleInsertTest, InsertLandsInCorrectPiece) {
  Rng rng(3);
  CrackPairs store = RandomStore(&rng, 200, 100);
  CrackerIndex index;
  CrackOnPredicate(store, index, RangePredicate::Closed(30, 60));
  for (Value v : {1, 30, 45, 60, 61, 99}) {
    RippleInsert(store, index, v, 9000 + v);
    EXPECT_TRUE(CheckCrackInvariant(store, index)) << "inserting " << v;
    const auto pos = FindEntry(store, index, v, 9000 + v);
    ASSERT_TRUE(pos.has_value()) << "inserting " << v;
    EXPECT_EQ(store.head[*pos], v);
  }
}

TEST(RippleInsertTest, PieceBoundariesShiftCorrectly) {
  CrackPairs store;
  for (Value v : {1, 2, 8, 9, 5, 4}) store.PushBack(v, v * 10);
  CrackerIndex index;
  CrackOnPredicate(store, index, RangePredicate::Closed(4, 5));
  const PositionRange before = index.FindArea(RangePredicate::Closed(4, 5), 6);
  RippleInsert(store, index, 3, 30);  // below the area: shifts it right
  const PositionRange after = index.FindArea(RangePredicate::Closed(4, 5), 7);
  EXPECT_EQ(after.begin, before.begin + 1);
  EXPECT_EQ(after.end, before.end + 1);
  EXPECT_TRUE(CheckCrackInvariant(store, index));
}

TEST(RippleDeleteTest, DeleteMaintainsInvariant) {
  Rng rng(5);
  CrackPairs store = RandomStore(&rng, 200, 100);
  CrackerIndex index;
  CrackOnPredicate(store, index, RangePredicate::Closed(20, 40));
  CrackOnPredicate(store, index, RangePredicate::Closed(60, 80));
  while (store.size() > 150) {
    const size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<Value>(store.size()) - 1));
    const Value head = store.head[pos];
    const Value tail = store.tail[pos];
    RippleDeleteAt(store, index, pos);
    ASSERT_TRUE(CheckCrackInvariant(store, index));
    EXPECT_EQ(Contents(store).count({head, tail}), 0u);
  }
}

TEST(RippleDeleteTest, DeleteLastEntry) {
  CrackPairs store;
  store.PushBack(5, 50);
  CrackerIndex index;
  RippleDeleteAt(store, index, 0);
  EXPECT_EQ(store.size(), 0u);
}

TEST(FindEntryTest, FindsOnlyWithinPiece) {
  CrackPairs store;
  for (Value v : {1, 2, 8, 9, 5, 4}) store.PushBack(v, v * 10);
  CrackerIndex index;
  CrackOnPredicate(store, index, RangePredicate::Closed(4, 5));
  EXPECT_TRUE(FindEntry(store, index, 5, 50).has_value());
  EXPECT_TRUE(FindEntry(store, index, 9, 90).has_value());
  EXPECT_FALSE(FindEntry(store, index, 5, 51).has_value());
  EXPECT_FALSE(FindEntry(store, index, 7, 70).has_value());
}

/// Property: interleaved cracks, inserts and deletes preserve content and
/// the crack invariant, and two identical histories stay byte-identical
/// (the update-replay determinism the tapes depend on).
class RipplePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RipplePropertyTest, InterleavedOperationsStayConsistent) {
  Rng rng(GetParam());
  const Value domain = 1000;
  CrackPairs store = RandomStore(&rng, 500, domain);
  CrackPairs twin;
  twin.head = store.head;
  twin.tail = store.tail;
  CrackerIndex index;
  CrackerIndex twin_index;
  auto expected = Contents(store);
  Value next_tail = 100000;

  for (int step = 0; step < 400; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.4) {
      const Value lo = rng.Uniform(1, domain - 50);
      const RangePredicate pred = RangePredicate::Closed(lo, lo + 50);
      CrackOnPredicate(store, index, pred);
      CrackOnPredicate(twin, twin_index, pred);
    } else if (dice < 0.75) {
      const Value v = rng.Uniform(1, domain);
      const Value t = next_tail++;
      RippleInsert(store, index, v, t);
      RippleInsert(twin, twin_index, v, t);
      expected.insert({v, t});
    } else if (!store.empty()) {
      const size_t pos = static_cast<size_t>(
          rng.Uniform(0, static_cast<Value>(store.size()) - 1));
      expected.erase(expected.find({store.head[pos], store.tail[pos]}));
      RippleDeleteAt(store, index, pos);
      // Twin deletes the same logical position.
      RippleDeleteAt(twin, twin_index, pos);
    }
    ASSERT_TRUE(CheckCrackInvariant(store, index)) << "step " << step;
    ASSERT_EQ(store.head, twin.head) << "step " << step;
    ASSERT_EQ(store.tail, twin.tail) << "step " << step;
  }
  EXPECT_EQ(Contents(store), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RipplePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace crackdb
