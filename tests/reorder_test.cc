#include "engine/reorder.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace crackdb {
namespace {

Column MakeColumn(size_t n) {
  Column c("A");
  for (size_t i = 0; i < n; ++i) c.Append(static_cast<Value>(i * 7 % 1000));
  return c;
}

std::vector<Key> ShuffledKeys(Rng* rng, size_t n, size_t count) {
  std::vector<Key> keys;
  for (size_t i = 0; i < count; ++i) {
    keys.push_back(static_cast<Key>(rng->Uniform(0, static_cast<Value>(n) - 1)));
  }
  return keys;
}

TEST(ReorderTest, UnorderedMatchesDirectLookup) {
  Rng rng(1);
  const Column base = MakeColumn(5000);
  const std::vector<Key> keys = ShuffledKeys(&rng, 5000, 700);
  const std::vector<Value> got = ReconstructUnordered(base, keys);
  ASSERT_EQ(got.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(got[i], base[keys[i]]);
}

TEST(ReorderTest, SortPathReturnsSameMultiset) {
  Rng rng(2);
  const Column base = MakeColumn(5000);
  std::vector<Key> keys = ShuffledKeys(&rng, 5000, 700);
  std::vector<Value> expected = ReconstructUnordered(base, keys);
  std::sort(expected.begin(), expected.end());
  std::vector<Value> got = ReconstructViaSort(base, &keys);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(RadixClusterTest, KeysClusteredByRegion) {
  Rng rng(3);
  std::vector<Key> keys = ShuffledKeys(&rng, 1 << 16, 5000);
  const std::vector<Key> original = keys;
  const unsigned region_bits = 10;
  RadixClusterKeys(&keys, region_bits, 1 << 16);
  // Same multiset.
  std::vector<Key> a = keys;
  std::vector<Key> b = original;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  // Region ids must be non-decreasing.
  for (size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LE(keys[i - 1] >> region_bits, keys[i] >> region_bits);
  }
}

TEST(RadixClusterTest, StableWithinRegion) {
  std::vector<Key> keys = {5, 1030, 7, 2060, 6, 1025};
  RadixClusterKeys(&keys, 10, 4096);
  EXPECT_EQ(keys, (std::vector<Key>{5, 7, 6, 1030, 1025, 2060}));
}

TEST(RadixClusterTest, SingleRegionIsNoop) {
  std::vector<Key> keys = {9, 3, 7};
  const std::vector<Key> original = keys;
  RadixClusterKeys(&keys, 20, 1000);  // whole domain fits one region
  EXPECT_EQ(keys, original);
}

TEST(ReorderTest, RadixPathReturnsSameMultiset) {
  Rng rng(4);
  const Column base = MakeColumn(1 << 15);
  std::vector<Key> keys = ShuffledKeys(&rng, 1 << 15, 3000);
  std::vector<Value> expected = ReconstructUnordered(base, keys);
  std::sort(expected.begin(), expected.end());
  std::vector<Value> got = ReconstructViaRadixCluster(base, &keys, 8);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace crackdb
