#include "engine/operators.h"

#include <gtest/gtest.h>

namespace crackdb {
namespace {

TEST(HashJoinTest, MatchesAllPairs) {
  const std::vector<Value> left = {1, 2, 3, 2};
  const std::vector<Value> right = {2, 4, 2};
  const JoinPairs jp = HashJoin(left, right);
  // left ordinals 1 and 3 each match right ordinals 0 and 2: 4 pairs.
  EXPECT_EQ(jp.size(), 4u);
  for (size_t i = 0; i < jp.size(); ++i) {
    EXPECT_EQ(left[jp.left[i]], right[jp.right[i]]);
  }
}

TEST(HashJoinTest, EmptyInputs) {
  EXPECT_EQ(HashJoin({}, {}).size(), 0u);
  const std::vector<Value> some = {1, 2};
  EXPECT_EQ(HashJoin(some, {}).size(), 0u);
  EXPECT_EQ(HashJoin({}, some).size(), 0u);
}

TEST(SemiAntiJoinTest, PartitionLeftSide) {
  const std::vector<Value> left = {1, 2, 3, 4};
  const std::vector<Value> right = {2, 4, 9};
  EXPECT_EQ(SemiJoin(left, right), (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(AntiJoin(left, right), (std::vector<uint32_t>{0, 2}));
}

TEST(GroupByTest, SingleColumn) {
  const std::vector<std::vector<Value>> keys = {{7, 8, 7, 9, 8}};
  const Groups g = GroupBy(keys);
  EXPECT_EQ(g.num_groups(), 3u);
  EXPECT_EQ(g.group_of_row[0], g.group_of_row[2]);
  EXPECT_EQ(g.group_of_row[1], g.group_of_row[4]);
  EXPECT_NE(g.group_of_row[0], g.group_of_row[3]);
  EXPECT_EQ(g.keys[0][0], 7);  // first-seen order
}

TEST(GroupByTest, MultiColumnKeys) {
  const std::vector<std::vector<Value>> keys = {{1, 1, 2, 1}, {5, 6, 5, 5}};
  const Groups g = GroupBy(keys);
  EXPECT_EQ(g.num_groups(), 3u);
  EXPECT_EQ(g.group_of_row[0], g.group_of_row[3]);
}

TEST(GroupedAggregatesTest, SumCountMinMax) {
  const std::vector<std::vector<Value>> keys = {{1, 2, 1, 2}};
  const Groups g = GroupBy(keys);
  const std::vector<Value> values = {10, 20, 30, 40};
  EXPECT_EQ(GroupedSum(g, values), (std::vector<Value>{40, 60}));
  EXPECT_EQ(GroupedCount(g), (std::vector<Value>{2, 2}));
  EXPECT_EQ(GroupedMin(g, values), (std::vector<Value>{10, 20}));
  EXPECT_EQ(GroupedMax(g, values), (std::vector<Value>{30, 40}));
}

TEST(AggregateTest, WholeColumn) {
  const std::vector<Value> values = {3, -1, 7, 0};
  EXPECT_EQ(MaxOf(values), 7);
  EXPECT_EQ(MinOf(values), -1);
  EXPECT_EQ(SumOf(values), 9);
  EXPECT_EQ(MaxOf({}), kMinValue);
  EXPECT_EQ(MinOf({}), kMaxValue);
}

TEST(SortRowsTest, MultiColumnMixedDirections) {
  const std::vector<std::vector<Value>> cols = {{2, 1, 2, 1}, {9, 8, 7, 6}};
  const std::vector<bool> asc = {true, false};
  const std::vector<uint32_t> order = SortRows(cols, asc);
  // col0 asc, col1 desc: (1,8) < (1,6)? no: (1,8) then (1,6), then (2,9),(2,7)
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 3, 0, 2}));
}

TEST(TopKRowsTest, TruncatesAfterSort) {
  const std::vector<std::vector<Value>> cols = {{5, 3, 9, 1}};
  const std::vector<bool> asc = {true};
  EXPECT_EQ(TopKRows(cols, asc, 2), (std::vector<uint32_t>{3, 1}));
  EXPECT_EQ(TopKRows(cols, asc, 10).size(), 4u);
}

}  // namespace
}  // namespace crackdb
