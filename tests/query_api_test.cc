// The fluent query API and its pushed-down consumption modes:
//  - builder-compiled specs are row-for-row identical to raw QuerySpecs
//    across every engine kind, sharded and unsharded;
//  - Count()/Aggregate() equal a materialize-then-fold oracle and report
//    exactly zero reconstruction cost;
//  - ForEach() streams precisely the rows Materialize() would return;
//  - every validation failure (unknown table/attribute, inverted range,
//    projection-less materialize, mixed connectives) surfaces as a clear
//    Expected error instead of asserting inside an engine;
//  - the modes stay consistent under a concurrent write storm (the
//    `concurrency` label runs this under TSan in CI).

#include "engine/query.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "engine/database.h"
#include "engine/engine_factory.h"
#include "engine/plain_engine.h"
#include "obs/trace.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;
using bench::ZipRows;

constexpr Value kDomain = 2'000;
constexpr size_t kRows = 2'000;

struct Fold {
  size_t count = 0;
  Value sum = 0;
  Value min = 0;
  Value max = 0;
  bool any = false;
};

Fold FoldColumn(const std::vector<Value>& column) {
  Fold f;
  f.count = column.size();
  bool sum_any = false, min_any = false, max_any = false;
  for (const Value v : column) {
    FoldValue(AggregateOp::kSum, v, &f.sum, &sum_any);
    FoldValue(AggregateOp::kMin, v, &f.min, &min_any);
    FoldValue(AggregateOp::kMax, v, &f.max, &max_any);
  }
  f.any = sum_any;
  return f;
}

PartitionSpec RangeShards(size_t partitions) {
  PartitionSpec spec;
  spec.kind = PartitionSpec::Kind::kRange;
  spec.num_partitions = partitions;
  spec.column = AttrName(1);
  spec.domain_lo = 1;
  spec.domain_hi = kDomain;
  return spec;
}

class QueryApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1234);
    source_ =
        &bench::CreateUniformRelation(&catalog_, "R", 4, kRows, kDomain, &rng);
  }

  std::unique_ptr<Database> MakeDb(const std::string& kind) {
    DatabaseOptions options;
    options.pool_threads = 2;
    auto db = std::make_unique<Database>(options);
    db->RegisterSharded("R", *source_, RangeShards(4), kind);
    return db;
  }

  Catalog catalog_;
  Relation* source_ = nullptr;
};

// ---------------------------------------------------------------------------
// Builder compilation
// ---------------------------------------------------------------------------

TEST_F(QueryApiTest, BuilderCompilesExactlyToRawSpec) {
  QuerySpec raw;
  raw.selections = {{AttrName(1), RangePredicate::Closed(10, 500)},
                    {AttrName(2), RangePredicate::Open(3, 900)}};
  raw.projections = {AttrName(3), AttrName(4)};

  QueryBuilder builder("R");
  builder.Where(AttrName(1), 10, 500)
      .Where(AttrName(2), RangePredicate::Open(3, 900))
      .Project(AttrName(3), AttrName(4));
  const Query compiled = builder.Build();
  EXPECT_TRUE(compiled.error.empty()) << compiled.error;
  EXPECT_EQ(compiled.table, "R");
  EXPECT_EQ(compiled.consume.kind, ConsumeKind::kMaterialize);
  ASSERT_EQ(compiled.spec.selections.size(), raw.selections.size());
  for (size_t i = 0; i < raw.selections.size(); ++i) {
    EXPECT_EQ(compiled.spec.selections[i].attr, raw.selections[i].attr);
    EXPECT_EQ(compiled.spec.selections[i].pred, raw.selections[i].pred);
  }
  EXPECT_EQ(compiled.spec.projections, raw.projections);
  EXPECT_FALSE(compiled.spec.disjunctive);
}

TEST_F(QueryApiTest, OrWhereCompilesDisjunctive) {
  QueryBuilder builder;
  builder.Where(AttrName(1), 1, 100)
      .OrWhere(AttrName(2), 500, 600)
      .Project(AttrName(3));
  const Query compiled = builder.Build();
  EXPECT_TRUE(compiled.error.empty()) << compiled.error;
  EXPECT_TRUE(compiled.spec.disjunctive);
  EXPECT_EQ(compiled.spec.selections.size(), 2u);
}

TEST_F(QueryApiTest, CountCompilesToProjectionFreeSpec) {
  QueryBuilder builder;
  builder.Where(AttrName(1), 1, 100).Project(AttrName(3)).Count();
  const Query compiled = builder.Build();
  EXPECT_TRUE(compiled.error.empty());
  // The pushdown: a count declares no projections at all, so chunk-wise
  // engines materialize nothing.
  EXPECT_TRUE(compiled.spec.projections.empty());
  EXPECT_EQ(compiled.consume.kind, ConsumeKind::kCount);
}

TEST_F(QueryApiTest, AggregateCompilesToSingleProjection) {
  QueryBuilder builder;
  builder.Where(AttrName(1), 1, 100)
      .Project(AttrName(3), AttrName(4))
      .Aggregate(AggregateOp::kMin, AttrName(2));
  const Query compiled = builder.Build();
  EXPECT_TRUE(compiled.error.empty());
  // Exactly the folded attribute is declared — nothing else will ever be
  // materialized by engines with binding projection declarations.
  EXPECT_EQ(compiled.spec.projections,
            std::vector<std::string>{AttrName(2)});
}

// ---------------------------------------------------------------------------
// Validation hardening: every failure mode is a clear error, not a crash.
// ---------------------------------------------------------------------------

TEST_F(QueryApiTest, InvertedRangeIsAnError) {
  auto db = MakeDb("plain");
  auto result =
      db->From("R").Where(AttrName(1), 500, 10).Project(AttrName(2)).Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("inverted range"), std::string::npos)
      << result.error();
  // The builder records it immediately, too.
  QueryBuilder builder;
  builder.Where(AttrName(1), RangePredicate::Closed(500, 10));
  EXPECT_FALSE(builder.error().empty());
}

TEST_F(QueryApiTest, UnknownTableIsAnError) {
  auto db = MakeDb("plain");
  auto result =
      db->From("nope").Where(AttrName(1), 1, 10).Count().Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("unknown table 'nope'"), std::string::npos)
      << result.error();
}

TEST_F(QueryApiTest, UnknownAttributeIsAnError) {
  auto db = MakeDb("plain");
  // In a selection.
  auto sel = db->From("R").Where("bogus", 1, 10).Count().Execute();
  ASSERT_FALSE(sel.ok());
  EXPECT_NE(sel.error().find("unknown attribute 'bogus'"), std::string::npos);
  // In a projection.
  auto proj =
      db->From("R").Where(AttrName(1), 1, 10).Project("ghost").Execute();
  ASSERT_FALSE(proj.ok());
  EXPECT_NE(proj.error().find("unknown attribute 'ghost'"),
            std::string::npos);
  // In an aggregate.
  auto agg = db->From("R")
                 .Where(AttrName(1), 1, 10)
                 .Aggregate(AggregateOp::kSum, "phantom")
                 .Execute();
  ASSERT_FALSE(agg.ok());
  EXPECT_NE(agg.error().find("unknown attribute 'phantom'"),
            std::string::npos);
}

TEST_F(QueryApiTest, MaterializeWithoutProjectionIsAnError) {
  auto db = MakeDb("plain");
  auto result = db->From("R").Where(AttrName(1), 1, 10).Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("Materialize()"), std::string::npos)
      << result.error();
}

TEST_F(QueryApiTest, MixedConnectivesIsAnError) {
  QueryBuilder builder;
  builder.Where(AttrName(1), 1, 10)
      .Where(AttrName(2), 1, 10)
      .OrWhere(AttrName(3), 1, 10);
  EXPECT_NE(builder.error().find("cannot mix"), std::string::npos)
      << builder.error();
}

TEST_F(QueryApiTest, UnboundExecuteIsAnError) {
  QueryBuilder builder;
  builder.Where(AttrName(1), 1, 10).Count();
  auto result = builder.Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("unbound"), std::string::npos);
}

TEST_F(QueryApiTest, ForEachWithoutVisitorOrProjectionIsAnError) {
  QueryBuilder no_visitor;
  no_visitor.Where(AttrName(1), 1, 10).Project(AttrName(2));
  no_visitor.ForEach(nullptr);
  EXPECT_FALSE(no_visitor.Build().error.empty());

  QueryBuilder no_projection;
  no_projection.Where(AttrName(1), 1, 10)
      .ForEach([](std::span<const Value>) {});
  EXPECT_FALSE(no_projection.Build().error.empty());
}

// The grouped-terminal validation matrix. Regression coverage for the
// latent gap the GroupBy terminal closed: the builder must reject an
// aggregate attribute that duplicates the group key, and an explicit
// Project() list that conflicts with the grouped pushdown (the grouped
// result only ever carries the key and aggregate columns, so the
// projection's attrs would be silently cleared).
TEST_F(QueryApiTest, GroupByAggregateOfGroupKeyIsAnError) {
  QueryBuilder builder;
  builder.Where(AttrName(1), 1, 100)
      .GroupBy(AttrName(2))
      .Aggregate(AggregateOp::kSum, AttrName(2));
  const Query compiled = builder.Build();
  EXPECT_NE(compiled.error.find("duplicates the group key"),
            std::string::npos)
      << compiled.error;

  // The same rejection through the Database path (hand-built queries get
  // identical validation).
  auto db = MakeDb("plain");
  auto result = db->From("R")
                    .Where(AttrName(1), 1, 100)
                    .GroupBy(AttrName(2))
                    .Aggregate(AggregateOp::kCount, AttrName(2))
                    .Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("duplicates the group key"),
            std::string::npos)
      << result.error();
}

TEST_F(QueryApiTest, GroupByProjectConflictIsAnError) {
  QueryBuilder builder;
  builder.Where(AttrName(1), 1, 100)
      .Project(AttrName(4))
      .GroupBy(AttrName(2))
      .Aggregate(AggregateOp::kSum, AttrName(3));
  const Query compiled = builder.Build();
  EXPECT_NE(compiled.error.find("conflicts with GroupBy()"),
            std::string::npos)
      << compiled.error;
}

TEST_F(QueryApiTest, GroupByWithoutKeyOrAggregatesIsAnError) {
  QueryBuilder no_aggs;
  no_aggs.Where(AttrName(1), 1, 100).GroupBy(AttrName(2));
  EXPECT_NE(no_aggs.Build().error.find("at least one Aggregate()"),
            std::string::npos);

  QueryBuilder no_key;
  no_key.Where(AttrName(1), 1, 100)
      .GroupBy("")
      .Aggregate(AggregateOp::kSum, AttrName(2));
  EXPECT_FALSE(no_key.Build().error.empty());
}

TEST_F(QueryApiTest, ScalarKCountAggregateIsAnError) {
  // kCount only makes sense per group; the scalar cardinality terminal is
  // Count().
  QueryBuilder builder;
  builder.Where(AttrName(1), 1, 100)
      .Aggregate(AggregateOp::kCount, AttrName(2));
  const Query compiled = builder.Build();
  EXPECT_NE(compiled.error.find("grouped-only"), std::string::npos)
      << compiled.error;
}

TEST_F(QueryApiTest, GroupByUnknownAttributesAreErrors) {
  auto db = MakeDb("plain");
  auto bad_key = db->From("R")
                     .Where(AttrName(1), 1, 100)
                     .GroupBy("ghost")
                     .Aggregate(AggregateOp::kSum, AttrName(2))
                     .Execute();
  ASSERT_FALSE(bad_key.ok());
  EXPECT_NE(bad_key.error().find("unknown attribute 'ghost'"),
            std::string::npos);

  auto bad_agg = db->From("R")
                     .Where(AttrName(1), 1, 100)
                     .GroupBy(AttrName(2))
                     .Aggregate(AggregateOp::kMax, "phantom")
                     .Execute();
  ASSERT_FALSE(bad_agg.ok());
  EXPECT_NE(bad_agg.error().find("unknown attribute 'phantom'"),
            std::string::npos);
}

TEST_F(QueryApiTest, GroupByCompilesToDedupedPushdownProjection) {
  QueryBuilder builder;
  builder.Where(AttrName(1), 1, 100)
      .GroupBy(AttrName(2))
      .Aggregate(AggregateOp::kSum, AttrName(3))
      .Aggregate(AggregateOp::kMin, AttrName(3))
      .Aggregate(AggregateOp::kCount, AttrName(4));
  const Query compiled = builder.Build();
  EXPECT_TRUE(compiled.error.empty()) << compiled.error;
  EXPECT_EQ(compiled.consume.kind, ConsumeKind::kGroupBy);
  // The key once, each folded attribute once; the kCount placeholder attr
  // is never fetched so it is not declared.
  EXPECT_EQ(compiled.spec.projections,
            (std::vector<std::string>{AttrName(2), AttrName(3)}));
}

TEST_F(QueryApiTest, HandBuiltQueriesGetTheSameValidationAsBuilt) {
  // Query is a public aggregate; Execute must re-apply the builder's
  // terminal compile step so a hand-assembled query can never reach an
  // engine in a state Build() would have rejected or normalized.
  auto db = MakeDb("partial");
  crackdb::Query foreach_no_visitor;
  foreach_no_visitor.table = "R";
  foreach_no_visitor.spec.selections = {
      {AttrName(1), RangePredicate::Closed(1, 100)}};
  foreach_no_visitor.spec.projections = {AttrName(2)};
  foreach_no_visitor.consume.kind = ConsumeKind::kForEach;  // null visitor
  auto fe = db->Execute(foreach_no_visitor);
  ASSERT_FALSE(fe.ok());
  EXPECT_NE(fe.error().find("visitor"), std::string::npos);

  crackdb::Query materialize_no_projection;
  materialize_no_projection.table = "R";
  materialize_no_projection.spec.selections = {
      {AttrName(1), RangePredicate::Closed(1, 100)}};
  auto mat = db->Execute(materialize_no_projection);
  ASSERT_FALSE(mat.ok());
  EXPECT_NE(mat.error().find("Materialize()"), std::string::npos);

  // An aggregate whose spec never declared the folded attribute: the
  // normalization injects it (chunk-wise engines' declarations are
  // binding), so this runs instead of asserting inside the engine.
  crackdb::Query undeclared_aggregate;
  undeclared_aggregate.table = "R";
  undeclared_aggregate.spec.selections = {
      {AttrName(1), RangePredicate::Closed(1, 500)}};
  undeclared_aggregate.consume =
      ConsumeSpec::Aggregate(AggregateOp::kMax, AttrName(2));
  auto agg = db->Execute(undeclared_aggregate);
  ASSERT_TRUE(agg.ok()) << agg.error();
  EXPECT_TRUE(agg->aggregate_valid);
}

TEST_F(QueryApiTest, BatchKeepsPerQueryErrorsIsolated) {
  auto db = MakeDb("sideways");
  std::vector<Query> queries;
  queries.push_back(
      db->From("R").Where(AttrName(1), 1, 500).Count().Build());
  queries.push_back(db->From("R").Where("bogus", 1, 10).Count().Build());
  queries.push_back(db->From("R")
                        .Where(AttrName(1), 1, 500)
                        .Project(AttrName(2))
                        .Build());
  std::vector<Expected<ExecuteResult>> results = db->ExecuteBatch(queries);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  ASSERT_TRUE(results[2].ok());
  EXPECT_EQ(results[0]->count, results[2]->rows.num_rows);
}

// ---------------------------------------------------------------------------
// Builder == raw spec, every engine kind, sharded and unsharded. Cracking
// engines evolve state per query, so each arm gets its own engine fed the
// identical sequence.
// ---------------------------------------------------------------------------

TEST_F(QueryApiTest, BuilderMatchesRawSpecAcrossKinds) {
  for (const EngineKindEntry& kind : kEngineKinds) {
    std::unique_ptr<Engine> raw_engine = MakeEngine(kind.name, *source_);
    std::unique_ptr<Engine> built_engine = MakeEngine(kind.name, *source_);
    auto raw_db = MakeDb(kind.name);
    auto built_db = MakeDb(kind.name);
    Rng rng(99);
    for (int q = 0; q < 8; ++q) {
      const Value lo = rng.Uniform(1, kDomain - 100);
      QuerySpec raw;
      raw.selections = {{AttrName(1), RangePredicate::Closed(lo, lo + 100)},
                        {AttrName(2), RangePredicate::Closed(1, kDomain / 2)}};
      raw.projections = {AttrName(3), AttrName(4)};

      QueryBuilder builder;
      builder.Where(AttrName(1), lo, lo + 100)
          .Where(AttrName(2), 1, kDomain / 2)
          .Project(AttrName(3), AttrName(4));
      const QuerySpec built = builder.Spec();

      ASSERT_EQ(ZipRows(raw_engine->Run(raw)),
                ZipRows(built_engine->Run(built)))
          << kind.name << " unsharded diverged at query " << q;

      auto executed = built_db->From("R")
                          .Where(AttrName(1), lo, lo + 100)
                          .Where(AttrName(2), 1, kDomain / 2)
                          .Project(AttrName(3), AttrName(4))
                          .Execute();
      ASSERT_TRUE(executed.ok()) << executed.error();
      ASSERT_EQ(ZipRows(raw_db->Query("R", raw)), ZipRows(executed->rows))
          << kind.name << " sharded diverged at query " << q;
    }
  }
}

// ---------------------------------------------------------------------------
// Count/Aggregate == materialize-then-fold oracle, every kind, both layers.
// ---------------------------------------------------------------------------

TEST_F(QueryApiTest, CountAndAggregatesEqualOracleAcrossKinds) {
  PlainEngine oracle(*source_);
  for (const EngineKindEntry& kind : kEngineKinds) {
    std::unique_ptr<Engine> engine = MakeEngine(kind.name, *source_);
    auto db = MakeDb(kind.name);
    Rng rng(4242);
    for (int q = 0; q < 6; ++q) {
      const Value lo = rng.Uniform(1, kDomain - 200);
      const Value hi = lo + 200;
      const QuerySpec oracle_spec = QueryBuilder()
                                        .Where(AttrName(1), lo, hi)
                                        .Project(AttrName(2))
                                        .Spec();
      const Fold expect = FoldColumn(oracle.Run(oracle_spec).columns[0]);

      // Unsharded engine-level Execute.
      {
        const Query count = QueryBuilder().Where(AttrName(1), lo, hi)
                                .Count().Build();
        const ExecuteResult n = engine->Execute(count.spec, count.consume);
        EXPECT_EQ(n.count, expect.count) << kind.name << " count, q" << q;

        const Query sum = QueryBuilder()
                              .Where(AttrName(1), lo, hi)
                              .Aggregate(AggregateOp::kSum, AttrName(2))
                              .Build();
        const ExecuteResult s = engine->Execute(sum.spec, sum.consume);
        EXPECT_EQ(s.aggregate_valid, expect.any) << kind.name;
        if (expect.any) {
          EXPECT_EQ(s.aggregate, expect.sum) << kind.name << " sum, q" << q;
        }
      }
      // Sharded Database-level Execute, all three ops.
      {
        auto n = db->From("R").Where(AttrName(1), lo, hi).Count().Execute();
        ASSERT_TRUE(n.ok()) << n.error();
        EXPECT_EQ(n->count, expect.count) << kind.name << " db count";
        struct OpCase {
          AggregateOp op;
          Value expected;
        };
        const OpCase cases[] = {{AggregateOp::kSum, expect.sum},
                                {AggregateOp::kMin, expect.min},
                                {AggregateOp::kMax, expect.max}};
        for (const OpCase& c : cases) {
          auto agg = db->From("R")
                         .Where(AttrName(1), lo, hi)
                         .Aggregate(c.op, AttrName(2))
                         .Execute();
          ASSERT_TRUE(agg.ok()) << agg.error();
          EXPECT_EQ(agg->count, expect.count) << kind.name;
          EXPECT_EQ(agg->aggregate_valid, expect.any) << kind.name;
          if (expect.any) {
            EXPECT_EQ(agg->aggregate, c.expected)
                << kind.name << " op " << static_cast<int>(c.op);
          }
        }
      }
    }
  }
}

TEST_F(QueryApiTest, EmptySelectionAggregatesReportInvalid) {
  auto db = MakeDb("sideways");
  // A range below the whole domain: zero qualifying rows.
  auto count = db->From("R")
                   .Where(AttrName(1), RangePredicate::Closed(-500, -100))
                   .Count()
                   .Execute();
  ASSERT_TRUE(count.ok()) << count.error();
  EXPECT_EQ(count->count, 0u);
  auto sum = db->From("R")
                 .Where(AttrName(1), RangePredicate::Closed(-500, -100))
                 .Aggregate(AggregateOp::kSum, AttrName(2))
                 .Execute();
  ASSERT_TRUE(sum.ok()) << sum.error();
  EXPECT_EQ(sum->count, 0u);
  EXPECT_FALSE(sum->aggregate_valid);
  EXPECT_EQ(sum->aggregate, 0);
}

// ---------------------------------------------------------------------------
// ForEach streams exactly the rows Materialize would return.
// ---------------------------------------------------------------------------

TEST_F(QueryApiTest, ForEachStreamsExactlyTheMaterializedRows) {
  for (const char* kind : {"plain", "sideways", "partial"}) {
    std::unique_ptr<Engine> engine = MakeEngine(kind, *source_);
    auto db = MakeDb(kind);
    Rng rng(777);
    for (int q = 0; q < 4; ++q) {
      const Value lo = rng.Uniform(1, kDomain - 300);
      auto materialized = db->From("R")
                              .Where(AttrName(1), lo, lo + 300)
                              .Project(AttrName(2), AttrName(3))
                              .Execute();
      ASSERT_TRUE(materialized.ok()) << materialized.error();

      std::multiset<std::vector<Value>> streamed;
      auto visited = db->From("R")
                         .Where(AttrName(1), lo, lo + 300)
                         .Project(AttrName(2), AttrName(3))
                         .ForEach([&streamed](std::span<const Value> row) {
                           streamed.insert({row.begin(), row.end()});
                         })
                         .Execute();
      ASSERT_TRUE(visited.ok()) << visited.error();
      EXPECT_EQ(visited->count, materialized->rows.num_rows) << kind;
      EXPECT_EQ(streamed, ZipRows(materialized->rows)) << kind;

      // Unsharded engine-level ForEach agrees too.
      std::multiset<std::vector<Value>> unsharded;
      QueryBuilder builder;
      builder.Where(AttrName(1), lo, lo + 300)
          .Project(AttrName(2), AttrName(3))
          .ForEach([&unsharded](std::span<const Value> row) {
            unsharded.insert({row.begin(), row.end()});
          });
      const Query compiled = builder.Build();
      const ExecuteResult r = engine->Execute(compiled.spec, compiled.consume);
      EXPECT_EQ(r.count, materialized->rows.num_rows) << kind;
      EXPECT_EQ(unsharded, streamed) << kind;
    }
  }
}

// ---------------------------------------------------------------------------
// Cost attribution: scalar modes reconstruct nothing, anywhere.
// ---------------------------------------------------------------------------

TEST_F(QueryApiTest, ScalarModesReportZeroReconstruction) {
  for (const char* kind : {"plain", "selection-cracking", "sideways",
                           "partial", "row"}) {
    auto db = MakeDb(kind);
    Rng rng(31);
    for (int q = 0; q < 5; ++q) {
      const Value lo = rng.Uniform(1, kDomain - 150);
      auto count =
          db->From("R").Where(AttrName(1), lo, lo + 150).Count().Execute();
      ASSERT_TRUE(count.ok()) << count.error();
      EXPECT_EQ(count->cost.reconstruct_micros, 0.0) << kind;
      EXPECT_GT(count->count, 0u) << kind;  // selective but non-empty

      auto sum = db->From("R")
                     .Where(AttrName(1), lo, lo + 150)
                     .Aggregate(AggregateOp::kSum, AttrName(2))
                     .Trace()
                     .Execute();
      ASSERT_TRUE(sum.ok()) << sum.error();
      EXPECT_EQ(sum->cost.reconstruct_micros, 0.0) << kind;
      // Re-asserted through the span timeline: a scalar fold records no
      // tuple-reconstruction ("fetch") span in any partition.
      ASSERT_NE(sum->trace, nullptr) << kind;
      for (const obs::TraceSpan& s : sum->trace->Spans()) {
        EXPECT_NE(s.name, "fetch") << kind;
      }
    }
    // The engine's cumulative breakdown agrees: nothing but scalar modes
    // ran on this database, so total reconstruction is exactly zero.
    EXPECT_EQ(db->engine("R").CostSnapshot().reconstruct_micros, 0.0) << kind;
    // A materialized control query does charge reconstruction.
    auto rows =
        db->From("R").Where(AttrName(1), 1, kDomain).Project(AttrName(2))
            .Execute();
    ASSERT_TRUE(rows.ok());
    EXPECT_GT(rows->cost.reconstruct_micros, 0.0) << kind;
  }
}

// ---------------------------------------------------------------------------
// The storm: consumption modes under concurrent writes (TSan in CI).
// Within one ExecuteBatch, every partition serves the whole batch under a
// single lock acquisition, so a count, a sum, and a materialize of the
// same predicate in one batch must agree exactly even mid-storm.
// ---------------------------------------------------------------------------

TEST_F(QueryApiTest, ConsumptionModesAgreeUnderConcurrentWrites) {
  for (const char* kind : {"selection-cracking", "sideways", "partial"}) {
    Catalog catalog;
    Rng data_rng(555);
    Relation& mirror =
        bench::CreateUniformRelation(&catalog, "R", 4, kRows, kDomain,
                                     &data_rng);
    DatabaseOptions options;
    options.pool_threads = 2;
    Database db(options);
    db.RegisterSharded("R", mirror, RangeShards(5), kind);

    constexpr size_t kThreads = 4;
    struct RecordedInsert {
      std::vector<Value> values;
      bool deleted = false;
    };
    std::vector<std::vector<RecordedInsert>> recorded(kThreads);
    std::vector<std::string> failures(kThreads);

    std::vector<std::thread> clients;
    for (size_t tid = 0; tid < kThreads; ++tid) {
      clients.emplace_back([&, tid] {
        Rng rng(8800 + tid);
        std::vector<std::pair<Key, size_t>> own_live;
        for (int round = 0; round < 15; ++round) {
          const Value lo = rng.Uniform(1, kDomain - 200);
          const Value hi = lo + 200;
          // One batch, three modes, one predicate: partition-consistent.
          std::vector<Query> queries;
          queries.push_back(
              db.From("R").Where(AttrName(1), lo, hi).Count().Build());
          queries.push_back(db.From("R")
                                .Where(AttrName(1), lo, hi)
                                .Aggregate(AggregateOp::kSum, AttrName(2))
                                .Build());
          queries.push_back(db.From("R")
                                .Where(AttrName(1), lo, hi)
                                .Project(AttrName(2))
                                .Build());
          std::vector<Expected<ExecuteResult>> results =
              db.ExecuteBatch(queries);
          if (!results[0].ok() || !results[1].ok() || !results[2].ok()) {
            failures[tid] = "batch error in thread " + std::to_string(tid);
            return;
          }
          const Fold fold = FoldColumn(results[2]->rows.columns[0]);
          if (results[0]->count != fold.count ||
              results[1]->count != fold.count ||
              results[1]->aggregate_valid != fold.any ||
              (fold.any && results[1]->aggregate != fold.sum) ||
              results[0]->cost.reconstruct_micros != 0 ||
              results[1]->cost.reconstruct_micros != 0) {
            failures[tid] =
                "modes diverged mid-storm in thread " + std::to_string(tid);
            return;
          }
          // A streaming query: the visitor must fire exactly count times.
          size_t visited = 0;
          auto foreach_result =
              db.From("R")
                  .Where(AttrName(1), lo, hi)
                  .Project(AttrName(3))
                  .ForEach([&visited](std::span<const Value>) { ++visited; })
                  .Execute();
          if (!foreach_result.ok() || foreach_result->count != visited) {
            failures[tid] =
                "visitor count diverged in thread " + std::to_string(tid);
            return;
          }
          // Mixed writes: inserts plus deletes of own earlier rows only,
          // so a serial replay stays a valid oracle.
          const double dice = rng.NextDouble();
          if (dice < 0.7 || own_live.empty()) {
            std::vector<Value> row(mirror.num_columns());
            for (Value& v : row) v = rng.Uniform(1, kDomain);
            const Key key = db.Insert("R", row);
            own_live.push_back({key, recorded[tid].size()});
            recorded[tid].push_back({std::move(row), false});
          } else {
            const size_t pick = static_cast<size_t>(
                rng.Uniform(0, static_cast<Value>(own_live.size()) - 1));
            const auto [key, slot] = own_live[pick];
            if (!db.Delete("R", key)) {
              failures[tid] =
                  "delete of own key failed in thread " + std::to_string(tid);
              return;
            }
            recorded[tid][slot].deleted = true;
            own_live.erase(own_live.begin() + static_cast<long>(pick));
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
    for (const std::string& failure : failures) {
      ASSERT_TRUE(failure.empty()) << kind << ": " << failure;
    }

    // Serial replay oracle: final counts/sums equal a plain scan of the
    // replayed source.
    for (const auto& thread_log : recorded) {
      for (const RecordedInsert& rec : thread_log) {
        const Key key = mirror.AppendRow(rec.values);
        if (rec.deleted) mirror.DeleteRow(key);
      }
    }
    PlainEngine reference(mirror);
    const QuerySpec oracle_spec = QueryBuilder()
                                      .Where(AttrName(1), 1, kDomain)
                                      .Project(AttrName(2))
                                      .Spec();
    const Fold expect = FoldColumn(reference.Run(oracle_spec).columns[0]);
    auto final_count =
        db.From("R").Where(AttrName(1), 1, kDomain).Count().Execute();
    ASSERT_TRUE(final_count.ok());
    EXPECT_EQ(final_count->count, expect.count) << kind;
    auto final_sum = db.From("R")
                         .Where(AttrName(1), 1, kDomain)
                         .Aggregate(AggregateOp::kSum, AttrName(2))
                         .Execute();
    ASSERT_TRUE(final_sum.ok());
    EXPECT_EQ(final_sum->aggregate, expect.sum) << kind;
  }
}

}  // namespace
}  // namespace crackdb
