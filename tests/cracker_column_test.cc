#include "cracking/cracker_column.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

Relation& BuildRelation(Catalog* catalog, size_t rows, Value domain,
                        uint64_t seed) {
  Relation& rel = catalog->CreateRelation("R");
  rel.AddColumn("A");
  rel.AddColumn("B");
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    const Value row[] = {rng.Uniform(1, domain), rng.Uniform(1, domain)};
    rel.BulkLoadRow(row);
  }
  return rel;
}

std::set<Key> ScanKeys(const Relation& rel, const RangePredicate& pred) {
  std::set<Key> keys;
  const Column& a = rel.column("A");
  for (size_t i = 0; i < a.size(); ++i) {
    if (!rel.IsDeleted(static_cast<Key>(i)) && pred.Matches(a[i])) {
      keys.insert(static_cast<Key>(i));
    }
  }
  return keys;
}

TEST(CrackerColumnTest, SelectMatchesScanAcrossSequence) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 5000, 10000, 17);
  CrackerColumn cracker(rel, "A");
  Rng rng(18);
  for (int q = 0; q < 50; ++q) {
    const Value lo = rng.Uniform(1, 9000);
    const RangePredicate pred = RangePredicate::Closed(lo, lo + 1000);
    const std::span<const Value> keys = cracker.SelectKeys(pred);
    std::set<Key> got;
    for (Value k : keys) got.insert(static_cast<Key>(k));
    EXPECT_EQ(got, ScanKeys(rel, pred)) << "query " << q;
    EXPECT_TRUE(CheckCrackInvariant(cracker.pairs(), cracker.index()));
  }
}

TEST(CrackerColumnTest, IndexGrowsWithQueries) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 1000, 10000, 19);
  CrackerColumn cracker(rel, "A");
  EXPECT_TRUE(cracker.index().empty());
  cracker.Select(RangePredicate::Closed(100, 200));
  const size_t after_one = cracker.index().num_splits();
  EXPECT_GE(after_one, 1u);
  cracker.Select(RangePredicate::Closed(5000, 6000));
  EXPECT_GT(cracker.index().num_splits(), after_one);
}

TEST(CrackerColumnTest, ExcludesRowsDeletedBeforeCreation) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 100, 50, 20);
  rel.DeleteRow(3);
  rel.DeleteRow(7);
  CrackerColumn cracker(rel, "A");
  EXPECT_EQ(cracker.size(), 98u);
  const std::span<const Value> keys = cracker.SelectKeys(RangePredicate{});
  for (Value k : keys) {
    EXPECT_NE(k, 3);
    EXPECT_NE(k, 7);
  }
}

TEST(CrackerColumnTest, MergesPendingInsertMatchingQuery) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 100, 50, 21);
  CrackerColumn cracker(rel, "A");
  cracker.Select(RangePredicate::Closed(10, 20));
  const Value row[] = {15, 99};
  const Key k = rel.AppendRow(row);
  const std::span<const Value> keys =
      cracker.SelectKeys(RangePredicate::Closed(10, 20));
  EXPECT_NE(std::find(keys.begin(), keys.end(), static_cast<Value>(k)),
            keys.end());
  EXPECT_TRUE(CheckCrackInvariant(cracker.pairs(), cracker.index()));
}

TEST(CrackerColumnTest, NonMatchingUpdatesStayPending) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 100, 50, 22);
  CrackerColumn cracker(rel, "A");
  const Value row[] = {45, 99};
  rel.AppendRow(row);
  cracker.Select(RangePredicate::Closed(1, 10));  // does not cover 45
  EXPECT_EQ(cracker.pending_count(), 1u);
  cracker.Select(RangePredicate::Closed(40, 50));  // covers it
  EXPECT_EQ(cracker.pending_count(), 0u);
}

TEST(CrackerColumnTest, MergesPendingDelete) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 200, 50, 23);
  CrackerColumn cracker(rel, "A");
  cracker.Select(RangePredicate::Closed(10, 30));
  // Delete a row whose value is inside a later query's range.
  const Column& a = rel.column("A");
  Key victim = kInvalidKey;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= 10 && a[i] <= 30) {
      victim = static_cast<Key>(i);
      break;
    }
  }
  ASSERT_NE(victim, kInvalidKey);
  rel.DeleteRow(victim);
  const RangePredicate pred = RangePredicate::Closed(10, 30);
  const std::span<const Value> keys = cracker.SelectKeys(pred);
  EXPECT_EQ(std::find(keys.begin(), keys.end(), static_cast<Value>(victim)),
            keys.end());
  std::set<Key> got;
  for (Value k : keys) got.insert(static_cast<Key>(k));
  EXPECT_EQ(got, ScanKeys(rel, pred));
}

TEST(CrackerColumnTest, InsertThenDeleteSameRowWhilePending) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 100, 50, 24);
  CrackerColumn cracker(rel, "A");
  cracker.Select(RangePredicate::Closed(1, 50));
  const Value row[] = {25, 99};
  const Key k = rel.AppendRow(row);
  rel.DeleteRow(k);
  const std::span<const Value> keys =
      cracker.SelectKeys(RangePredicate::Closed(20, 30));
  EXPECT_EQ(std::find(keys.begin(), keys.end(), static_cast<Value>(k)),
            keys.end());
}

class CrackerColumnUpdateSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrackerColumnUpdateSweep, RandomQueriesAndUpdatesMatchScan) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 2000, 5000, GetParam());
  CrackerColumn cracker(rel, "A");
  Rng rng(GetParam() * 31 + 7);
  for (int step = 0; step < 120; ++step) {
    if (rng.Bernoulli(0.3)) {
      if (rng.Bernoulli(0.5)) {
        const Value row[] = {rng.Uniform(1, 5000), rng.Uniform(1, 5000)};
        rel.AppendRow(row);
      } else {
        const Key k = static_cast<Key>(
            rng.Uniform(0, static_cast<Value>(rel.num_rows()) - 1));
        rel.DeleteRow(k);
      }
    }
    const Value lo = rng.Uniform(1, 4500);
    const RangePredicate pred = RangePredicate::Closed(lo, lo + 500);
    std::set<Key> got;
    for (Value k : cracker.SelectKeys(pred)) got.insert(static_cast<Key>(k));
    ASSERT_EQ(got, ScanKeys(rel, pred)) << "step " << step;
    ASSERT_TRUE(CheckCrackInvariant(cracker.pairs(), cracker.index()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrackerColumnUpdateSweep,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace crackdb
