#include "engine/cracker_join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace crackdb {
namespace {

CrackPairs RandomStore(Rng* rng, size_t n, Value domain) {
  CrackPairs store;
  store.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    store.PushBack(rng->Uniform(1, domain), static_cast<Value>(i));
  }
  return store;
}

std::multiset<std::pair<Value, Value>> PairValues(const CrackPairs& l,
                                                  const CrackPairs& r,
                                                  const JoinPairs& jp) {
  std::multiset<std::pair<Value, Value>> out;
  for (size_t i = 0; i < jp.size(); ++i) {
    out.insert({l.head[jp.left[i]], r.head[jp.right[i]]});
  }
  return out;
}

TEST(CrackerHeadJoinTest, UncrackedInputsEqualFlatHashJoin) {
  Rng rng(1);
  const CrackPairs left = RandomStore(&rng, 500, 80);
  const CrackPairs right = RandomStore(&rng, 400, 80);
  CrackerIndex li, ri;
  const JoinPairs expected = HashJoin(left.head, right.head);
  const JoinPairs got = CrackerHeadJoin(left, li, right, ri);
  EXPECT_EQ(got.size(), expected.size());
  EXPECT_EQ(PairValues(left, right, got), PairValues(left, right, expected));
}

TEST(CrackerHeadJoinTest, CrackedInputsSameResult) {
  Rng rng(2);
  CrackPairs left = RandomStore(&rng, 2000, 300);
  CrackPairs right = RandomStore(&rng, 1500, 300);
  CrackerIndex li, ri;
  // Crack both sides with unrelated query histories.
  for (int q = 0; q < 20; ++q) {
    const Value lo = rng.Uniform(1, 250);
    CrackOnPredicate(left, li, RangePredicate::Closed(lo, lo + 40));
    const Value lo2 = rng.Uniform(1, 250);
    CrackOnPredicate(right, ri, RangePredicate::Closed(lo2, lo2 + 25));
  }
  const JoinPairs expected = HashJoin(left.head, right.head);
  const JoinPairs got = CrackerHeadJoin(left, li, right, ri);
  EXPECT_EQ(got.size(), expected.size());
  EXPECT_EQ(PairValues(left, right, got), PairValues(left, right, expected));
  // Positions must pair equal values.
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(left.head[got.left[i]], right.head[got.right[i]]);
  }
}

TEST(CrackerHeadJoinTest, DisjointDomainsYieldEmpty) {
  Rng rng(3);
  CrackPairs left = RandomStore(&rng, 200, 50);
  CrackPairs right;
  for (int i = 0; i < 100; ++i) right.PushBack(1000 + i, i);
  CrackerIndex li, ri;
  CrackOnPredicate(left, li, RangePredicate::Closed(10, 20));
  EXPECT_EQ(CrackerHeadJoin(left, li, right, ri).size(), 0u);
}

TEST(CrackerHeadJoinTest, OneSidedCrackingStillExact) {
  Rng rng(4);
  CrackPairs left = RandomStore(&rng, 1000, 100);
  CrackPairs right = RandomStore(&rng, 1000, 100);
  CrackerIndex li, ri;
  for (int q = 0; q < 10; ++q) {
    const Value lo = rng.Uniform(1, 80);
    CrackOnPredicate(left, li, RangePredicate::Closed(lo, lo + 10));
  }
  const JoinPairs expected = HashJoin(left.head, right.head);
  const JoinPairs got = CrackerHeadJoin(left, li, right, ri);
  EXPECT_EQ(PairValues(left, right, got), PairValues(left, right, expected));
}

TEST(PieceAggregateTest, MaxMatchesScan) {
  Rng rng(5);
  CrackPairs store = RandomStore(&rng, 3000, 10000);
  CrackerIndex index;
  for (int q = 0; q < 15; ++q) {
    const Value lo = rng.Uniform(1, 9000);
    CrackOnPredicate(store, index, RangePredicate::Closed(lo, lo + 700));
  }
  for (int q = 0; q < 30; ++q) {
    const Value lo = rng.Uniform(1, 9000);
    const RangePredicate pred = RangePredicate::Closed(lo, lo + 700);
    CrackOnPredicate(store, index, pred);
    Value expected = kMinValue;
    for (Value v : store.head) {
      if (pred.Matches(v)) expected = std::max(expected, v);
    }
    EXPECT_EQ(HeadMaxInArea(store, index, pred), expected) << q;
  }
}

TEST(PieceAggregateTest, MinMatchesScan) {
  Rng rng(6);
  CrackPairs store = RandomStore(&rng, 3000, 10000);
  CrackerIndex index;
  for (int q = 0; q < 30; ++q) {
    const Value lo = rng.Uniform(1, 9000);
    const RangePredicate pred = RangePredicate::Closed(lo, lo + 500);
    CrackOnPredicate(store, index, pred);
    Value expected = kMaxValue;
    for (Value v : store.head) {
      if (pred.Matches(v)) expected = std::min(expected, v);
    }
    EXPECT_EQ(HeadMinInArea(store, index, pred), expected) << q;
  }
}

TEST(PieceAggregateTest, EmptyAreaReturnsSentinels) {
  Rng rng(7);
  CrackPairs store = RandomStore(&rng, 100, 50);
  CrackerIndex index;
  const RangePredicate pred = RangePredicate::Closed(500, 600);
  CrackOnPredicate(store, index, pred);
  EXPECT_EQ(HeadMaxInArea(store, index, pred), kMinValue);
  EXPECT_EQ(HeadMinInArea(store, index, pred), kMaxValue);
}

TEST(PieceAggregateTest, TouchesOnlyExtremePieces) {
  // Construct a well-cracked store and verify max equals the last piece's
  // max without the helper ever needing lower pieces: we poison lower
  // pieces after recording the answer and recompute.
  Rng rng(8);
  CrackPairs store = RandomStore(&rng, 2000, 1000);
  CrackerIndex index;
  for (Value b = 100; b <= 900; b += 100) {
    CrackOnPredicate(store, index, RangePredicate::HalfOpen(1, b));
  }
  const RangePredicate pred = RangePredicate::HalfOpen(1, 900);
  const Value expected = HeadMaxInArea(store, index, pred);
  // Poison everything below position of the last area piece.
  const PositionRange area = index.FindArea(pred, store.size());
  const auto pieces = index.Pieces(store.size());
  size_t last_begin = area.begin;
  for (const auto& p : pieces) {
    if (p.end <= area.end && p.begin >= area.begin && p.begin < p.end) {
      last_begin = p.begin;
    }
  }
  CrackPairs poisoned;
  poisoned.head = store.head;
  poisoned.tail = store.tail;
  for (size_t i = area.begin; i < last_begin; ++i) poisoned.head[i] = -1;
  EXPECT_EQ(HeadMaxInArea(poisoned, index, pred), expected);
}

}  // namespace
}  // namespace crackdb
