// The adaptive repartitioning subsystem, bottom to top: the RwGate's
// fairness policy, the WorkloadHistogram sensor, the RepartitionPolicy's
// decisions and hysteresis (no-thrash), and — against a plain-scan oracle
// across engine kinds — the online split/merge protocol itself: answers,
// global keys, and writes must be indistinguishable from never having
// repartitioned.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "adaptive/repartition_policy.h"
#include "adaptive/workload_histogram.h"
#include "bench_util/workload.h"
#include "common/rng.h"
#include "common/rw_gate.h"
#include "engine/database.h"
#include "engine/plain_engine.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;
using bench::ZipRows;

// ---------------------------------------------------------------------------
// RwGate
// ---------------------------------------------------------------------------

TEST(RwGateTest, ExclusiveExcludesSharedAndViceVersa) {
  RwGate gate;
  gate.EnterShared();
  std::atomic<bool> writer_in{false};
  std::thread writer([&] {
    gate.EnterExclusive();
    writer_in.store(true);
    gate.ExitExclusive();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_in.load());  // blocked behind the shared holder
  gate.ExitShared();
  writer.join();
  EXPECT_TRUE(writer_in.load());
  // And afterwards the gate is free again.
  gate.EnterShared();
  gate.ExitShared();
}

TEST(RwGateTest, UrgentReaderPassesPendingWriterOrdinaryWaits) {
  RwGate gate;
  gate.EnterShared();  // keeps the writer pending
  std::atomic<bool> writer_in{false};
  std::thread writer([&] {
    gate.EnterExclusive();
    writer_in.store(true);
    gate.ExitExclusive();
  });
  // Wait until the writer is registered as pending.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_FALSE(writer_in.load());

  // Urgent shared entry must succeed immediately despite the pending
  // writer (this is what keeps pool workers deadlock-free).
  gate.EnterShared(/*urgent=*/true);
  gate.ExitShared();

  // An ordinary reader parks behind the pending writer.
  std::atomic<bool> ordinary_in{false};
  std::thread ordinary([&] {
    gate.EnterShared(/*urgent=*/false);
    ordinary_in.store(true);
    gate.ExitShared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(ordinary_in.load());

  gate.ExitShared();  // writer turn, then the ordinary reader
  writer.join();
  ordinary.join();
  EXPECT_TRUE(writer_in.load());
  EXPECT_TRUE(ordinary_in.load());
}

// ---------------------------------------------------------------------------
// WorkloadHistogram
// ---------------------------------------------------------------------------

TEST(WorkloadHistogramTest, RecordsSnapshotsDecaysAndResets) {
  WorkloadHistogram hist(3, /*sketch_capacity=*/4);
  hist.RecordAccess(0, 4, 100.0);
  hist.RecordAccess(0, 2, 50.0);
  hist.RecordAccess(2, 1, 10.0);
  hist.RecordAccess(99, 1, 1.0);  // out of range: ignored

  WorkloadHistogram::Snapshot snap = hist.Snap();
  ASSERT_EQ(snap.partitions.size(), 3u);
  EXPECT_EQ(snap.total_accesses, 7u);
  EXPECT_EQ(snap.partitions[0].accesses, 6u);
  EXPECT_DOUBLE_EQ(snap.partitions[0].micros, 150.0);
  EXPECT_EQ(snap.partitions[1].accesses, 0u);
  EXPECT_EQ(snap.partitions[2].accesses, 1u);

  hist.Decay(0.5);
  snap = hist.Snap();
  EXPECT_EQ(snap.partitions[0].accesses, 3u);
  EXPECT_EQ(snap.partitions[2].accesses, 0u);  // 1 * 0.5 truncates

  hist.Reset(5);
  snap = hist.Snap();
  EXPECT_EQ(snap.partitions.size(), 5u);
  EXPECT_EQ(snap.total_accesses, 0u);
}

TEST(WorkloadHistogramTest, BoundarySketchIsBoundedNewestWins) {
  WorkloadHistogram hist(1, /*sketch_capacity=*/4);
  for (Value v = 1; v <= 100; ++v) hist.RecordBoundary(0, v);
  const WorkloadHistogram::Snapshot snap = hist.Snap();
  ASSERT_EQ(snap.partitions[0].boundaries.size(), 4u);
  for (Value v : snap.partitions[0].boundaries) EXPECT_GT(v, 96);
}

// ---------------------------------------------------------------------------
// RepartitionPolicy
// ---------------------------------------------------------------------------

AdaptiveConfig TestConfig() {
  AdaptiveConfig cfg;
  cfg.enabled = true;
  cfg.min_accesses = 10;
  cfg.hot_share = 0.45;
  cfg.cold_share = 0.05;
  cfg.min_partition_rows = 100;
  cfg.max_partitions = 8;
  cfg.min_partitions = 2;
  cfg.cooldown_ticks = 2;
  return cfg;
}

RepartitionPolicy::PartitionInput Input(uint64_t accesses, size_t rows,
                                        Value lo, Value hi,
                                        std::vector<Value> candidates = {}) {
  RepartitionPolicy::PartitionInput in;
  in.accesses = accesses;
  in.live_rows = rows;
  in.cover_lo = lo;
  in.cover_hi = hi;
  in.split_candidates = std::move(candidates);
  return in;
}

TEST(RepartitionPolicyTest, BelowMinAccessesDoesNothing) {
  RepartitionPolicy policy(TestConfig());
  std::vector<RepartitionPolicy::PartitionInput> in = {
      Input(5, 1000, 1, 500), Input(0, 1000, 501, 1000)};
  EXPECT_EQ(policy.Tick(in).kind, RepartitionDecision::Kind::kNone);
}

TEST(RepartitionPolicyTest, HotSplitAtMedianOfObservedBoundaries) {
  RepartitionPolicy policy(TestConfig());
  std::vector<RepartitionPolicy::PartitionInput> in = {
      Input(90, 1000, 1, 500, {200, 250, 300, 9999 /* outside: ignored */}),
      Input(10, 1000, 501, 1000)};
  const RepartitionDecision d = policy.Tick(in);
  ASSERT_EQ(d.kind, RepartitionDecision::Kind::kSplit);
  EXPECT_EQ(d.partition, 0u);
  EXPECT_EQ(d.split_value, 250);
}

TEST(RepartitionPolicyTest, HotSplitFallsBackToMidpoint) {
  RepartitionPolicy policy(TestConfig());
  std::vector<RepartitionPolicy::PartitionInput> in = {
      Input(90, 1000, 1, 500), Input(10, 1000, 501, 1000)};
  const RepartitionDecision d = policy.Tick(in);
  ASSERT_EQ(d.kind, RepartitionDecision::Kind::kSplit);
  EXPECT_EQ(d.partition, 0u);
  EXPECT_EQ(d.split_value, 251);  // 1 + 500/2
  EXPECT_GT(d.split_value, in[0].cover_lo);
  EXPECT_LE(d.split_value, in[0].cover_hi);
}

TEST(RepartitionPolicyTest, RespectsMinPartitionRowsAndSliceWidth) {
  RepartitionPolicy policy(TestConfig());
  // Hot but tiny: not splittable.
  std::vector<RepartitionPolicy::PartitionInput> in = {
      Input(90, 50, 1, 500), Input(10, 1000, 501, 1000)};
  EXPECT_EQ(policy.Tick(in).kind, RepartitionDecision::Kind::kNone);
  // Hot but the slice covers a single value: nothing to cut.
  in = {Input(90, 1000, 7, 7), Input(10, 1000, 8, 1000)};
  EXPECT_EQ(policy.Tick(in).kind, RepartitionDecision::Kind::kNone);
}

TEST(RepartitionPolicyTest, RespectsMaxPartitions) {
  AdaptiveConfig cfg = TestConfig();
  cfg.max_partitions = 2;
  RepartitionPolicy policy(cfg);
  std::vector<RepartitionPolicy::PartitionInput> in = {
      Input(90, 1000, 1, 500), Input(10, 1000, 501, 1000)};
  EXPECT_EQ(policy.Tick(in).kind, RepartitionDecision::Kind::kNone);
}

TEST(RepartitionPolicyTest, ColdMergePicksColdestAdjacentPair) {
  AdaptiveConfig cfg = TestConfig();
  cfg.cold_share = 0.10;
  RepartitionPolicy policy(cfg);
  // No partition is hot enough to split (max share 24% < 45%); the
  // coldest adjacent pair is (2,3) with 3/83 of the traffic.
  std::vector<RepartitionPolicy::PartitionInput> in = {
      Input(20, 1000, 1, 150),   Input(20, 1000, 151, 300),
      Input(2, 1000, 301, 450),  Input(1, 1000, 451, 600),
      Input(20, 1000, 601, 750), Input(20, 1000, 751, 1000)};
  const RepartitionDecision d = policy.Tick(in);
  ASSERT_EQ(d.kind, RepartitionDecision::Kind::kMerge);
  EXPECT_EQ(d.partition, 2u);
}

TEST(RepartitionPolicyTest, MergeRespectsMinPartitions) {
  AdaptiveConfig cfg = TestConfig();
  cfg.min_partitions = 2;
  cfg.cold_share = 0.5;
  RepartitionPolicy policy(cfg);
  // Both partitions are below min_partition_rows, so no split either:
  // at n == min_partitions the cold pair must survive.
  std::vector<RepartitionPolicy::PartitionInput> in = {
      Input(20, 50, 1, 500), Input(1, 50, 501, 1000)};
  EXPECT_EQ(policy.Tick(in).kind, RepartitionDecision::Kind::kNone);
}

TEST(RepartitionPolicyTest, CooldownBlocksFollowupActions) {
  RepartitionPolicy policy(TestConfig());  // cooldown_ticks = 2
  std::vector<RepartitionPolicy::PartitionInput> in = {
      Input(90, 1000, 1, 500), Input(10, 1000, 501, 1000)};
  const RepartitionDecision d = policy.Tick(in);
  ASSERT_EQ(d.kind, RepartitionDecision::Kind::kSplit);
  policy.NoteExecuted(d);
  EXPECT_EQ(policy.Tick(in).kind, RepartitionDecision::Kind::kNone);
  EXPECT_EQ(policy.Tick(in).kind, RepartitionDecision::Kind::kNone);
  // Cooldown served; the (still hot) input fires again.
  EXPECT_EQ(policy.Tick(in).kind, RepartitionDecision::Kind::kSplit);
}

TEST(RepartitionPolicyTest, NoThrashAfterSplitOrMerge) {
  RepartitionPolicy policy(TestConfig());  // hot 0.45, cold 0.05
  // Post-split shape: the hot partition's traffic divided over its two
  // halves. Neither half re-splits (below hot_share) and the pair is far
  // too warm to re-merge: the map is stable.
  std::vector<RepartitionPolicy::PartitionInput> post_split = {
      Input(30, 600, 1, 250), Input(30, 600, 251, 500),
      Input(40, 1000, 501, 1000)};
  for (int tick = 0; tick < 10; ++tick) {
    EXPECT_EQ(policy.Tick(post_split).kind, RepartitionDecision::Kind::kNone);
  }
  // Post-merge shape: the merged cold pair stays one partition — its
  // share is far below hot_share, so it cannot immediately re-split.
  std::vector<RepartitionPolicy::PartitionInput> post_merge = {
      Input(45, 1000, 1, 400), Input(10, 2000, 401, 600),
      Input(45, 1000, 601, 1000)};
  for (int tick = 0; tick < 10; ++tick) {
    EXPECT_EQ(policy.Tick(post_merge).kind, RepartitionDecision::Kind::kNone);
  }
}

// ---------------------------------------------------------------------------
// End to end: online splits/merges vs a static oracle, per engine kind
// ---------------------------------------------------------------------------

constexpr Value kDomain = 4'000;
constexpr size_t kRows = 4'000;

class AdaptiveRepartitionTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    Rng rng(2026);
    source_ = &bench::CreateUniformRelation(&catalog_, "R", 4, kRows, kDomain,
                                            &rng);
  }

  PartitionSpec RangeSpec(size_t partitions) const {
    PartitionSpec spec;
    spec.kind = PartitionSpec::Kind::kRange;
    spec.num_partitions = partitions;
    spec.column = AttrName(1);
    spec.domain_lo = 1;
    spec.domain_hi = kDomain;
    return spec;
  }

  /// Aggressive knobs so a handful of queries suffices to trigger actions.
  AdaptiveConfig Aggressive() const {
    AdaptiveConfig cfg;
    cfg.enabled = true;
    cfg.min_accesses = 8;
    cfg.hot_share = 0.30;
    cfg.cold_share = 0.02;  // effectively merge-free unless raised
    cfg.min_partition_rows = 32;
    cfg.max_partitions = 16;
    cfg.min_partitions = 2;
    cfg.cooldown_ticks = 0;
    cfg.sketch_capacity = 32;
    return cfg;
  }

  /// db answers == plain scan of the mirror, for the given spec.
  void ExpectMatches(Database* db, const QuerySpec& spec,
                     const std::string& context) {
    PlainEngine reference(*source_);
    ASSERT_EQ(ZipRows(db->Query("R", spec)), ZipRows(reference.Run(spec)))
        << context;
  }

  QuerySpec HotQuery(Rng* rng, Value lo, Value hi) const {
    QuerySpec spec;
    spec.selections = {
        {AttrName(1), bench::RandomRange(rng, lo, hi, 0.05)},
        {AttrName(2), bench::RandomRange(rng, 1, kDomain, 0.6)}};
    spec.projections = {AttrName(3), AttrName(4)};
    return spec;
  }

  Catalog catalog_;
  Relation* source_ = nullptr;
};

TEST_P(AdaptiveRepartitionTest, HotSplitsPreserveAnswersKeysAndWrites) {
  Database db;
  db.RegisterSharded("R", *source_, RangeSpec(4), GetParam(), Aggressive());

  Rng rng(7);
  std::vector<Key> inserted_keys;
  size_t ticks_acted = 0;
  for (int round = 0; round < 12; ++round) {
    // Hot traffic on the low domain quarter (partition 0's slice).
    for (int q = 0; q < 6; ++q) {
      ExpectMatches(&db, HotQuery(&rng, 1, kDomain / 4),
                    "round " + std::to_string(round));
    }
    // Mixed writes, mirrored into the oracle relation: global keys equal
    // mirror keys because both sides apply the same ops in order.
    std::vector<Value> row(4);
    for (Value& v : row) v = rng.Uniform(1, kDomain / 3);
    const Key key = db.Insert("R", row);
    ASSERT_EQ(key, source_->AppendRow(row));
    inserted_keys.push_back(key);
    if (round % 3 == 2) {
      // Delete a row inserted *before* earlier splits: the rewritten
      // global-key router must still resolve it.
      const Key victim = inserted_keys.front();
      inserted_keys.erase(inserted_keys.begin());
      ASSERT_TRUE(db.Delete("R", victim)) << "round " << round;
      source_->DeleteRow(victim);
      EXPECT_FALSE(db.Delete("R", victim));  // already dead
    }
    if (db.MaybeRepartition("R")) ++ticks_acted;
  }

  const TableStats stats = db.Stats("R");
  EXPECT_GT(stats.splits, 0u);
  EXPECT_GT(stats.partitions, 4u);
  EXPECT_GT(ticks_acted, 0u);
  EXPECT_EQ(stats.rows, source_->num_rows());
  EXPECT_EQ(stats.live_rows, source_->num_live_rows());
  ASSERT_EQ(stats.per_partition.size(), stats.partitions);
  size_t per_partition_rows = 0;
  for (const PartitionStats& ps : stats.per_partition) {
    per_partition_rows += ps.rows;
  }
  EXPECT_EQ(per_partition_rows, stats.rows);

  // Full-table answer still identical after all the surgery.
  QuerySpec full_scan;
  full_scan.projections = {AttrName(1), AttrName(2), AttrName(3), AttrName(4)};
  ExpectMatches(&db, full_scan, "final full scan");
}

TEST_P(AdaptiveRepartitionTest, ColdMergesPreserveAnswers) {
  AdaptiveConfig cfg = Aggressive();
  cfg.hot_share = 2.0;    // splits can never fire
  cfg.cold_share = 0.25;  // cold pairs merge readily
  cfg.min_partitions = 2;
  Database db;
  db.RegisterSharded("R", *source_, RangeSpec(8), GetParam(), cfg);

  Rng rng(11);
  size_t merges_fired = 0;
  for (int round = 0; round < 10; ++round) {
    // All traffic on the top slice; the other seven partitions are cold.
    for (int q = 0; q < 6; ++q) {
      ExpectMatches(&db, HotQuery(&rng, kDomain - kDomain / 8, kDomain),
                    "merge round " + std::to_string(round));
    }
    if (db.MaybeRepartition("R")) ++merges_fired;
  }
  const TableStats stats = db.Stats("R");
  EXPECT_GT(stats.merges, 0u);
  EXPECT_GT(merges_fired, 0u);
  EXPECT_LT(stats.partitions, 8u);
  EXPECT_GE(stats.partitions, cfg.min_partitions);

  QuerySpec full_scan;
  full_scan.projections = {AttrName(1), AttrName(2), AttrName(3), AttrName(4)};
  ExpectMatches(&db, full_scan, "final full scan after merges");
}

TEST_P(AdaptiveRepartitionTest, BackgroundTriggerRepartitions) {
  AdaptiveConfig cfg = Aggressive();
  cfg.trigger_interval = 16;  // automatic ticks from the serving paths
  DatabaseOptions options;
  options.pool_threads = 2;
  Database db(options);
  db.RegisterSharded("R", *source_, RangeSpec(4), GetParam(), cfg);

  Rng rng(23);
  for (int q = 0; q < 400; ++q) {
    ExpectMatches(&db, HotQuery(&rng, 1, kDomain / 4),
                  "background q " + std::to_string(q));
    if (db.Stats("R").splits > 0) break;
  }
  // The background thread may still be mid-tick; one manual tick bounds
  // the wait (it no-ops if one is in flight, so loop briefly).
  for (int i = 0; i < 50 && db.Stats("R").splits == 0; ++i) {
    (void)db.MaybeRepartition("R");
    for (int q = 0; q < 8; ++q) {
      (void)db.Query("R", HotQuery(&rng, 1, kDomain / 4));
    }
  }
  EXPECT_GT(db.Stats("R").splits, 0u);
}

TEST_P(AdaptiveRepartitionTest, DegenerateTinyDomainNeverAborts) {
  // More partitions than domain values: the load-time map contains
  // zero-width and beyond-domain slices (a geometry PartitionOf and
  // MayContain support). The policy's cold-merge will pick exactly those
  // slices; the repartitioner must decline inexecutable decisions
  // gracefully instead of dying in the splice validation.
  Catalog tiny_catalog;
  Rng rng(5);
  Relation& tiny = bench::CreateUniformRelation(&tiny_catalog, "T", 2, 300,
                                                /*domain=*/4, &rng);
  PartitionSpec spec;
  spec.kind = PartitionSpec::Kind::kRange;
  spec.num_partitions = 8;
  spec.column = AttrName(1);
  spec.domain_lo = 1;
  spec.domain_hi = 4;
  AdaptiveConfig cfg = Aggressive();
  cfg.cold_share = 0.5;  // aim the policy straight at the empty slices
  cfg.min_partition_rows = 8;
  Database db;
  db.RegisterSharded("T", tiny, spec, GetParam(), cfg);

  PlainEngine reference(tiny);
  for (int round = 0; round < 8; ++round) {
    QuerySpec spec_q;
    spec_q.selections = {{AttrName(1), RangePredicate::Point(1 + round % 4)}};
    spec_q.projections = {AttrName(2)};
    for (int q = 0; q < 4; ++q) {
      ASSERT_EQ(ZipRows(db.Query("T", spec_q)),
                ZipRows(reference.Run(spec_q)))
          << "tiny domain round " << round;
    }
    (void)db.MaybeRepartition("T");  // must never abort
  }
  const TableStats stats = db.Stats("T");
  EXPECT_GE(stats.partitions, 2u);
}

TEST_P(AdaptiveRepartitionTest, HashShardingAndDisabledAreNoOps) {
  // Separate Databases: each shards the same source, and the shard
  // relations' names derive from the source name.
  // Hash sharding: adaptivity requested but structurally inapplicable.
  PartitionSpec hash;
  hash.kind = PartitionSpec::Kind::kHash;
  hash.num_partitions = 4;
  hash.column = AttrName(1);
  Database hashed_db;
  hashed_db.RegisterSharded("R", *source_, hash, GetParam(), Aggressive());
  // Disabled: the default config.
  Database static_db;
  static_db.RegisterSharded("R", *source_, RangeSpec(4), GetParam());

  Rng rng(3);
  for (int q = 0; q < 30; ++q) {
    (void)hashed_db.Query("R", HotQuery(&rng, 1, kDomain / 4));
    (void)static_db.Query("R", HotQuery(&rng, 1, kDomain / 4));
  }
  EXPECT_FALSE(hashed_db.MaybeRepartition("R"));
  EXPECT_FALSE(static_db.MaybeRepartition("R"));
  EXPECT_EQ(hashed_db.Stats("R").partitions, 4u);
  EXPECT_EQ(hashed_db.Stats("R").splits, 0u);
  EXPECT_EQ(static_db.Stats("R").partitions, 4u);
  EXPECT_EQ(static_db.Stats("R").splits, 0u);
}

INSTANTIATE_TEST_SUITE_P(EngineKinds, AdaptiveRepartitionTest,
                         ::testing::Values("plain", "presorted",
                                           "selection-cracking", "sideways",
                                           "partial"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace crackdb
