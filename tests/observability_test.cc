// The observability layer end to end:
//  - Trace() yields a span tree with the documented shape (root "query",
//    per-partition children with queue_wait/lock_wait/select/fold leaves,
//    a merge span), children nested strictly within their parents;
//  - the tree accounts for >= 95% of the measured wall time when the
//    partitions run inline (pool_threads = 0);
//  - scalar consumption modes show zero reconstruction *through the
//    trace*, not just through the CostBreakdown;
//  - system.tables / system.partitions / system.metrics /
//    system.query_log answer through the normal fluent path, with the
//    same validated-attribute Expected errors as user tables;
//  - the registry agrees with the engine's own CostBreakdown at the
//    documented sync points (flush-on-snapshot semantics);
//  - RenderMetricsText emits Prometheus-style exposition;
//  - the metrics kill switch really silences the per-query epilogue.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "common/timer.h"
#include "engine/database.h"
#include "engine/query.h"
#include "obs/trace.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;

constexpr Value kDomain = 100'000;
constexpr size_t kRows = 50'000;
constexpr size_t kPartitions = 4;

PartitionSpec RangeShards(size_t partitions) {
  PartitionSpec spec;
  spec.kind = PartitionSpec::Kind::kRange;
  spec.num_partitions = partitions;
  spec.column = AttrName(1);
  spec.domain_lo = 1;
  spec.domain_hi = kDomain;
  return spec;
}

// Value of a counter/gauge in the global registry snapshot, 0 if absent.
double MetricValue(const std::string& name) {
  for (const obs::MetricSample& s : obs::MetricsRegistry::Global().Snapshot()) {
    if (s.name == name) return s.value;
  }
  return 0.0;
}

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetMetricsEnabled(true);
    Rng rng(20090629);  // the paper's publication date, why not
    source_ =
        &bench::CreateUniformRelation(&catalog_, "R", 4, kRows, kDomain, &rng);
  }

  void TearDown() override { obs::SetMetricsEnabled(true); }

  // Partitions run inline on the caller (pool_threads = 0): traces are
  // deterministic and queue_wait is structurally near zero, which the
  // wall-coverage test depends on.
  std::unique_ptr<Database> MakeDb(const std::string& kind = "sideways") {
    DatabaseOptions options;
    options.pool_threads = 0;
    auto db = std::make_unique<Database>(options);
    db->RegisterSharded("R", *source_, RangeShards(kPartitions), kind);
    return db;
  }

  Catalog catalog_;
  Relation* source_ = nullptr;
};

// ---------------------------------------------------------------------------
// Span trees
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, TracedQueryYieldsTheDocumentedSpanShape) {
  auto db = MakeDb();
  auto result = db->From("R")
                    .Where(AttrName(1), 1, kDomain / 2)
                    .Count()
                    .Trace()
                    .Execute();
  ASSERT_TRUE(result.ok()) << result.error();
  ASSERT_NE(result->trace, nullptr);
  const std::vector<obs::TraceSpan> spans = result->trace->Spans();
  ASSERT_FALSE(spans.empty());

  // Root: id 0, named "query", no parent.
  EXPECT_EQ(spans[0].id, obs::QueryTrace::kRootSpan);
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].parent, obs::TraceSpan::kNoParent);
  EXPECT_GT(spans[0].duration_micros, 0.0);

  size_t partition_spans = 0, merge_spans = 0, select_spans = 0;
  for (const obs::TraceSpan& s : spans) {
    if (s.id == obs::QueryTrace::kRootSpan) continue;
    if (s.parent == obs::QueryTrace::kRootSpan) {
      if (s.name == "merge") {
        ++merge_spans;
      } else if (s.name != "admission") {
        // Direct children of the root other than the admission and merge
        // bookends are partition spans and carry their partition index.
        ++partition_spans;
        EXPECT_EQ(s.name, "partition");
        EXPECT_GE(s.partition, 0) << s.name;
      }
    }
    if (s.name.rfind("select", 0) == 0) ++select_spans;
  }
  // The half-domain predicate touches at least two of the four range
  // partitions; each ran a select kernel.
  EXPECT_GE(partition_spans, 2u);
  EXPECT_GE(select_spans, 2u);
  EXPECT_EQ(merge_spans, 1u);

  // Explain() renders the same tree.
  const std::string rendered = result->Explain();
  EXPECT_NE(rendered.find("query"), std::string::npos);
  EXPECT_NE(rendered.find("partition"), std::string::npos);

  // An untraced run points the caller at Trace() instead.
  auto untraced =
      db->From("R").Where(AttrName(1), 1, kDomain / 2).Count().Execute();
  ASSERT_TRUE(untraced.ok());
  EXPECT_EQ(untraced->trace, nullptr);
  EXPECT_NE(untraced->Explain().find("Trace()"), std::string::npos);
}

TEST_F(ObservabilityTest, ChildSpansNestWithinTheirParents) {
  auto db = MakeDb();
  auto result = db->From("R")
                    .Where(AttrName(1), 1, kDomain)
                    .Project(AttrName(2), AttrName(3))
                    .Trace()
                    .Execute();
  ASSERT_TRUE(result.ok()) << result.error();
  ASSERT_NE(result->trace, nullptr);
  const std::vector<obs::TraceSpan> spans = result->trace->Spans();

  std::map<uint32_t, const obs::TraceSpan*> by_id;
  for (const obs::TraceSpan& s : spans) by_id[s.id] = &s;
  std::map<uint32_t, double> child_micros;  // summed durations per parent

  // Inline execution is sequential, so nesting is exact: every span
  // starts no earlier than its parent and the children of one parent
  // cannot overlap, hence their durations sum to within the parent's.
  // (A small epsilon absorbs clock-read granularity at span edges.)
  constexpr double kEdgeEps = 1.0;
  for (const obs::TraceSpan& s : spans) {
    EXPECT_GE(s.duration_micros, 0.0) << s.name;
    if (s.parent == obs::TraceSpan::kNoParent) continue;
    ASSERT_TRUE(by_id.count(s.parent)) << s.name << " has unknown parent";
    const obs::TraceSpan& parent = *by_id[s.parent];
    EXPECT_GE(s.start_micros, parent.start_micros - kEdgeEps)
        << s.name << " starts before its parent " << parent.name;
    EXPECT_LE(s.start_micros + s.duration_micros,
              parent.start_micros + parent.duration_micros + kEdgeEps)
        << s.name << " ends after its parent " << parent.name;
    child_micros[s.parent] += s.duration_micros;
  }
  for (const auto& [parent_id, total] : child_micros) {
    const obs::TraceSpan& parent = *by_id[parent_id];
    // Durations sum within the parent only where children are sequential
    // by construction — inside one partition's affine task. The root's
    // children deliberately overlap (each partition span opens at
    // fan-out), so only interval containment holds there.
    if (parent.partition >= 0) {
      EXPECT_LE(total, parent.duration_micros + kEdgeEps)
          << "children of partition " << parent.partition
          << " overflow the parent";
      // A partition span is not an empty shell: its kernels account for
      // real time within it.
      EXPECT_GT(total, 0.0) << "partition " << parent.partition;
    }
  }
}

TEST_F(ObservabilityTest, SpanTreeAccountsForTheMeasuredWallTime) {
  auto db = MakeDb();
  // Warm once so the first-touch cracking cost does not dominate.
  (void)db->From("R").Where(AttrName(1), 1, kDomain).Count().Execute();

  // A materialize over the whole domain: enough kernel work that the
  // fixed per-query bookkeeping outside the spans is well under 5%. The
  // box is noisy, so take the best coverage over a few attempts — noise
  // only ever lengthens the wall clock relative to the spans.
  double best_coverage = 0.0;
  for (int attempt = 0; attempt < 5 && best_coverage < 0.95; ++attempt) {
    Timer wall;
    auto result = db->From("R")
                      .Where(AttrName(1), 1, kDomain)
                      .Project(AttrName(2), AttrName(3))
                      .Trace()
                      .Execute();
    const double wall_micros = wall.ElapsedMicros();
    ASSERT_TRUE(result.ok()) << result.error();
    ASSERT_NE(result->trace, nullptr);
    // Direct children of the root (partitions + merge) against the wall
    // time measured around the whole Execute call.
    best_coverage =
        std::max(best_coverage, result->trace->ChildMicros() / wall_micros);
  }
  EXPECT_GE(best_coverage, 0.95);
}

TEST_F(ObservabilityTest, ScalarModesShowZeroReconstructionThroughTheTrace) {
  for (const char* kind : {"sideways", "partial", "selection-cracking"}) {
    auto db = MakeDb(kind);
    auto count = db->From("R")
                     .Where(AttrName(1), 1, kDomain / 3)
                     .Count()
                     .Trace()
                     .Execute();
    ASSERT_TRUE(count.ok()) << count.error();
    auto sum = db->From("R")
                   .Where(AttrName(1), 1, kDomain / 3)
                   .Aggregate(AggregateOp::kSum, AttrName(2))
                   .Trace()
                   .Execute();
    ASSERT_TRUE(sum.ok()) << sum.error();
    for (const auto* result : {&*count, &*sum}) {
      EXPECT_EQ(result->cost.reconstruct_micros, 0.0) << kind;
      ASSERT_NE(result->trace, nullptr);
      // The trace agrees with the CostBreakdown: folds happen in place,
      // so no span in the tree is a tuple-reconstruction ("fetch") span.
      for (const obs::TraceSpan& s : result->trace->Spans()) {
        EXPECT_NE(s.name, "fetch") << kind;
      }
    }
    // The control: a materialize does reconstruct, and says so.
    auto rows = db->From("R")
                    .Where(AttrName(1), 1, kDomain / 3)
                    .Project(AttrName(2))
                    .Trace()
                    .Execute();
    ASSERT_TRUE(rows.ok()) << rows.error();
    EXPECT_GT(rows->cost.reconstruct_micros, 0.0) << kind;
    const std::vector<obs::TraceSpan> spans = rows->trace->Spans();
    EXPECT_TRUE(std::any_of(spans.begin(), spans.end(),
                            [](const obs::TraceSpan& s) {
                              return s.name == "fetch";
                            }))
        << kind;
  }
}

// ---------------------------------------------------------------------------
// system.* virtual tables through the fluent path
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, SystemTablesDescribeTheRegisteredTables) {
  auto db = MakeDb();
  (void)db->From("R").Where(AttrName(1), 1, kDomain / 2).Count().Execute();

  auto tables = db->From("system.tables")
                    .Where("rows", 1, static_cast<Value>(kRows))
                    .Project("name", "partitions", "rows", "queries")
                    .Execute();
  ASSERT_TRUE(tables.ok()) << tables.error();
  ASSERT_EQ(tables->rows.num_rows, 1u);
  EXPECT_EQ(db->SystemName(tables->rows.columns[0][0]), "R");
  EXPECT_EQ(tables->rows.columns[1][0], static_cast<Value>(kPartitions));
  EXPECT_EQ(tables->rows.columns[2][0], static_cast<Value>(kRows));
  EXPECT_GE(tables->rows.columns[3][0], 1);

  // system.partitions: one row per shard; their tuples sum to the table.
  auto parts = db->From("system.partitions")
                   .Where("partition", 0, static_cast<Value>(kPartitions))
                   .Project("table", "partition", "rows")
                   .Execute();
  ASSERT_TRUE(parts.ok()) << parts.error();
  ASSERT_EQ(parts->rows.num_rows, kPartitions);
  Value tuple_sum = 0;
  for (size_t i = 0; i < parts->rows.num_rows; ++i) {
    EXPECT_EQ(db->SystemName(parts->rows.columns[0][i]), "R");
    tuple_sum += parts->rows.columns[2][i];
  }
  EXPECT_EQ(tuple_sum, static_cast<Value>(kRows));
}

TEST_F(ObservabilityTest, SystemMetricsReflectsTheWorkDone) {
  auto db = MakeDb();
  constexpr int kQueries = 8;
  size_t touched = 0;
  for (int q = 0; q < kQueries; ++q) {
    auto r = db->From("R")
                 .Where(AttrName(1), 1 + q * 100, kDomain / 2)
                 .Count()
                 .Execute();
    ASSERT_TRUE(r.ok());
    touched += r->partitions_touched;
  }
  // The fluent read: every row of system.metrics, name + value. The fill
  // itself is the documented flush point, so the engine's batched tallies
  // are all visible by the time the snapshot materializes.
  auto metrics = db->From("system.metrics")
                     .Where("value", std::numeric_limits<Value>::min(),
                            std::numeric_limits<Value>::max())
                     .Project("name", "value")
                     .Execute();
  ASSERT_TRUE(metrics.ok()) << metrics.error();
  ASSERT_GT(metrics->rows.num_rows, 0u);
  std::map<std::string, Value> by_name;
  for (size_t i = 0; i < metrics->rows.num_rows; ++i) {
    by_name[db->SystemName(metrics->rows.columns[0][i])] =
        metrics->rows.columns[1][i];
  }
  // The registry is process-global and other suites in this binary run
  // first, so assert lower bounds, not equalities.
  EXPECT_GE(by_name["engine_batches_total"], kQueries);
  EXPECT_GE(by_name["engine_subqueries_total"],
            static_cast<Value>(touched));
  EXPECT_GE(by_name["db_queries_total"], kQueries);
  EXPECT_GT(by_name["engine_select_micros_total"], 0);
}

TEST_F(ObservabilityTest, SystemQueryLogRecordsTracedQueries) {
  auto db = MakeDb();
  auto traced = db->From("R")
                    .Where(AttrName(1), 1, kDomain / 4)
                    .Count()
                    .Trace()
                    .Execute();
  ASSERT_TRUE(traced.ok()) << traced.error();

  // Traced queries bypass the log sampling, so the entry is guaranteed.
  auto log = db->From("system.query_log")
                 .Where("traced", 1, 1)
                 .Project("table", "rows", "engine_micros",
                          "partitions_touched")
                 .Execute();
  ASSERT_TRUE(log.ok()) << log.error();
  ASSERT_GE(log->rows.num_rows, 1u);
  const size_t last = log->rows.num_rows - 1;
  EXPECT_EQ(db->SystemName(log->rows.columns[0][last]), "R");
  EXPECT_EQ(log->rows.columns[1][last],
            static_cast<Value>(traced->count));
  EXPECT_EQ(log->rows.columns[3][last],
            static_cast<Value>(traced->partitions_touched));

  // The engine-attributed micros column matches the CostBreakdown the
  // caller saw (the log is clock-free by design).
  const double engine_micros = traced->cost.select_micros +
                               traced->cost.reconstruct_micros +
                               traced->cost.prepare_micros;
  EXPECT_NEAR(static_cast<double>(log->rows.columns[2][last]), engine_micros,
              1.0);
}

TEST_F(ObservabilityTest, SystemTablesValidateLikeUserTables) {
  auto db = MakeDb();
  // Unknown system table.
  auto unknown = db->From("system.nope").Count().Execute();
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().find("unknown system table"), std::string::npos)
      << unknown.error();
  // Unknown attribute in a selection, against the virtual schema.
  auto bad_sel = db->From("system.metrics").Where("bogus", 1, 2).Count()
                     .Execute();
  ASSERT_FALSE(bad_sel.ok());
  EXPECT_NE(bad_sel.error().find("unknown attribute 'bogus'"),
            std::string::npos)
      << bad_sel.error();
  // Unknown attribute in a projection.
  auto bad_proj = db->From("system.tables")
                      .Where("rows", 0, std::numeric_limits<Value>::max())
                      .Project("ghost")
                      .Execute();
  ASSERT_FALSE(bad_proj.ok());
  EXPECT_NE(bad_proj.error().find("unknown attribute 'ghost'"),
            std::string::npos)
      << bad_proj.error();
  // Terminal validation applies too: materialize needs a projection.
  auto no_proj = db->From("system.metrics")
                     .Where("value", 0, std::numeric_limits<Value>::max())
                     .Execute();
  ASSERT_FALSE(no_proj.ok());
  EXPECT_NE(no_proj.error().find("Materialize()"), std::string::npos)
      << no_proj.error();
  // The schemas are discoverable through the normal catalog surface.
  const std::vector<std::string>& schema =
      db->catalog().relation("system.metrics").column_names();
  EXPECT_NE(std::find(schema.begin(), schema.end(), "value"), schema.end());
}

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, RegistryAgreesWithTheEngineCostSnapshot) {
  auto db = MakeDb();
  // Deltas, not absolutes: the registry is process-global.
  const double base_sub = MetricValue("engine_subqueries_total");
  const double base_select = MetricValue("engine_select_micros_total");
  const CostBreakdown base_cost = db->engine("R").CostSnapshot();

  size_t touched = 0;
  Rng rng(77);
  for (int q = 0; q < 24; ++q) {
    const Value lo = rng.Uniform(1, kDomain - 500);
    auto r = db->From("R").Where(AttrName(1), lo, lo + 500).Count().Execute();
    ASSERT_TRUE(r.ok());
    touched += r->partitions_touched;
  }
  // CostSnapshot is a documented flush point: after it returns, every
  // batched registry increment from this engine has landed.
  const CostBreakdown cost = db->engine("R").CostSnapshot();
  EXPECT_EQ(MetricValue("engine_subqueries_total") - base_sub,
            static_cast<double>(touched));
  EXPECT_NEAR(MetricValue("engine_select_micros_total") - base_select,
              cost.select_micros - base_cost.select_micros, 0.5);
}

TEST_F(ObservabilityTest, DisablingMetricsSilencesTheEpilogue) {
  auto db = MakeDb();
  // Flush whatever registration traffic left behind, then freeze.
  (void)db->Stats("R");
  obs::SetMetricsEnabled(false);
  const double base_sub = MetricValue("engine_subqueries_total");
  const double base_queries = MetricValue("db_queries_total");
  for (int q = 0; q < 16; ++q) {
    auto r =
        db->From("R").Where(AttrName(1), 1, kDomain / 2).Count().Execute();
    ASSERT_TRUE(r.ok());
    // The per-query cost surface still works — it predates the registry.
    EXPECT_GT(r->cost.select_micros, 0.0);
  }
  (void)db->Stats("R");  // would flush, if anything had accumulated
  EXPECT_EQ(MetricValue("engine_subqueries_total"), base_sub);
  EXPECT_EQ(MetricValue("db_queries_total"), base_queries);
  obs::SetMetricsEnabled(true);
}

TEST_F(ObservabilityTest, RenderMetricsTextSpeaksPrometheus) {
  auto db = MakeDb();
  (void)db->From("R").Where(AttrName(1), 1, kDomain).Count().Execute();
  (void)db->Stats("R");  // flush so the families below are present
  const std::string text = obs::RenderMetricsText();
  EXPECT_NE(text.find("# TYPE engine_subqueries_total counter"),
            std::string::npos)
      << text.substr(0, 400);
  EXPECT_NE(text.find("engine_partition_subqueries_total{table=\"R\""),
            std::string::npos);
  EXPECT_NE(text.find("db_query_micros_count"), std::string::npos);
  // Histogram exposition carries cumulative buckets with an +Inf bound.
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

}  // namespace
}  // namespace crackdb
