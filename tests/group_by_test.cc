// GROUP BY differential property matrix: the GroupBy(...).Aggregate(...)
// pushdown must equal a std::map-based scalar oracle computed over
// materialized rows, for every engine kind, unsharded and sharded, inline
// and pooled. The oracle is deliberately the dumbest possible
// implementation — sorted associative map, one row at a time — so any
// divergence in the hash tables, the per-partition partial folds, the
// shard merge, or the sort-by-key finalize shows up as a failed case, not
// a silently different answer. Also covered: empty results, single-group
// and all-distinct-key shapes, several aggregates folding the same
// attribute, per-group counts via kCount, and the zero-reconstruction
// cost contract. The `concurrency` label runs the sharded cases under
// TSan in CI.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "engine/database.h"
#include "engine/engine_factory.h"
#include "engine/plain_engine.h"
#include "engine/query.h"
#include "obs/trace.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;

constexpr Value kDomain = 2'000;
constexpr size_t kRows = 2'000;

/// The scalar oracle's per-group state: folded one row at a time, no
/// kernels, no hashing, no partials.
struct OracleGroup {
  uint64_t count = 0;
  Value sum = 0;
  Value min = kMaxValue;
  Value max = kMinValue;
};

using Oracle = std::map<Value, OracleGroup>;

/// Folds the materialized (group, value) rows of a plain full-scan into a
/// sorted map — the specification the pushdown is tested against.
Oracle BuildOracle(const Relation& source, const std::string& sel_attr,
                   const RangePredicate& pred, const std::string& group_attr,
                   const std::string& value_attr) {
  PlainEngine plain(source);
  QuerySpec spec;
  spec.selections = {{sel_attr, pred}};
  spec.projections = {group_attr, value_attr};
  const QueryResult rows = plain.Run(spec);
  Oracle oracle;
  for (size_t r = 0; r < rows.num_rows; ++r) {
    OracleGroup& g = oracle[rows.columns[0][r]];
    const Value v = rows.columns[1][r];
    g.count += 1;
    g.sum = static_cast<Value>(static_cast<uint64_t>(g.sum) +
                               static_cast<uint64_t>(v));
    g.min = std::min(g.min, v);
    g.max = std::max(g.max, v);
  }
  return oracle;
}

/// The grouped result must match the oracle exactly: same keys in
/// ascending order, same counts, and — because several aggregates fold
/// the same value attribute — same sum/min/max/kCount columns.
void ExpectMatchesOracle(const GroupedTable& groups, const Oracle& oracle,
                         const std::string& context) {
  ASSERT_EQ(groups.num_groups(), oracle.size()) << context;
  size_t gi = 0;
  for (const auto& [key, og] : oracle) {
    ASSERT_EQ(groups.keys[gi], key) << context << " group " << gi;
    EXPECT_EQ(groups.counts[gi], og.count) << context << " key " << key;
    EXPECT_EQ(groups.aggregates[0][gi], og.sum) << context << " key " << key;
    EXPECT_EQ(groups.aggregates[1][gi], og.min) << context << " key " << key;
    EXPECT_EQ(groups.aggregates[2][gi], og.max) << context << " key " << key;
    EXPECT_EQ(groups.aggregates[3][gi], static_cast<Value>(og.count))
        << context << " key " << key;
    ++gi;
  }
}

/// The canonical grouped query of the matrix: four aggregates, three of
/// which fold the same attribute (the duplicate-aggregate-attr case) plus
/// a per-group count with a placeholder attribute.
Query BuildGroupedQuery(const std::string& sel_attr,
                        const RangePredicate& pred,
                        const std::string& group_attr,
                        const std::string& value_attr) {
  QueryBuilder builder;
  builder.Where(sel_attr, pred)
      .GroupBy(group_attr)
      .Aggregate(AggregateOp::kSum, value_attr)
      .Aggregate(AggregateOp::kMin, value_attr)
      .Aggregate(AggregateOp::kMax, value_attr)
      .Aggregate(AggregateOp::kCount, value_attr);
  Query q = builder.Build();
  EXPECT_TRUE(q.error.empty()) << q.error;
  return q;
}

PartitionSpec RangeShards(size_t partitions) {
  PartitionSpec spec;
  spec.kind = PartitionSpec::Kind::kRange;
  spec.num_partitions = partitions;
  spec.column = AttrName(1);
  spec.domain_lo = 1;
  spec.domain_hi = kDomain;
  return spec;
}

/// Relation shape: A1 selection/sharding attr and A2 folded value are
/// uniform over the full domain; A3 is an 8-value group key (every group
/// heavily populated); A4 is the row ordinal (every key distinct).
class GroupByTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    Rng rng(20090629);
    source_ = &catalog_.CreateRelation("R");
    for (size_t a = 1; a <= 4; ++a) source_->AddColumn(AttrName(a));
    std::vector<Value> row(4);
    for (size_t r = 0; r < kRows; ++r) {
      row[0] = rng.Uniform(1, kDomain);
      row[1] = rng.Uniform(1, kDomain);
      row[2] = rng.Uniform(1, 8);
      row[3] = static_cast<Value>(r) + 1;
      source_->BulkLoadRow(row);
    }
  }

  std::unique_ptr<Database> MakeDb(size_t pool_threads) {
    DatabaseOptions options;
    options.pool_threads = pool_threads;
    auto db = std::make_unique<Database>(options);
    db->RegisterSharded("R", *source_, RangeShards(4), GetParam());
    return db;
  }

  /// One differential check through the unsharded engine (raw
  /// Execute(spec, consume) on a fresh engine instance) and through the
  /// sharded database at the given pool size (the fluent path).
  void CheckAllPaths(const RangePredicate& pred,
                     const std::string& group_attr) {
    const Oracle oracle =
        BuildOracle(*source_, AttrName(1), pred, group_attr, AttrName(2));
    const Query q =
        BuildGroupedQuery(AttrName(1), pred, group_attr, AttrName(2));

    // Unsharded: the engine's own Consume path (in-place override or the
    // default FetchView fold).
    std::unique_ptr<Engine> engine = MakeEngine(GetParam(), *source_);
    ASSERT_NE(engine, nullptr);
    const ExecuteResult direct = engine->Execute(q.spec, q.consume);
    ExpectMatchesOracle(direct.groups, oracle,
                        std::string(GetParam()) + "/unsharded");
    EXPECT_EQ(direct.cost.reconstruct_micros, 0u);

    // Sharded, inline and pooled: per-partition partial tables merged on
    // the caller thread.
    for (const size_t pool : {size_t{0}, size_t{2}}) {
      auto db = MakeDb(pool);
      auto r = db->From("R")
                   .Where(AttrName(1), pred)
                   .GroupBy(group_attr)
                   .Aggregate(AggregateOp::kSum, AttrName(2))
                   .Aggregate(AggregateOp::kMin, AttrName(2))
                   .Aggregate(AggregateOp::kMax, AttrName(2))
                   .Aggregate(AggregateOp::kCount, AttrName(2))
                   .Trace()
                   .Execute();
      ASSERT_TRUE(r.ok()) << r.error();
      ExpectMatchesOracle(r->groups, oracle,
                          std::string(GetParam()) + "/sharded/pool=" +
                              std::to_string(pool));
      EXPECT_EQ(r->cost.reconstruct_micros, 0u);
      // The span timeline agrees with the CostBreakdown: the grouped
      // pushdown folds in place, so no partition recorded a tuple-
      // reconstruction ("fetch") span.
      ASSERT_NE(r->trace, nullptr);
      for (const obs::TraceSpan& s : r->trace->Spans()) {
        EXPECT_NE(s.name, "fetch") << GetParam();
      }
    }
  }

  Catalog catalog_;
  Relation* source_ = nullptr;
};

TEST_P(GroupByTest, SelectiveRangeMatchesScalarOracle) {
  CheckAllPaths(RangePredicate::Closed(200, 700), AttrName(3));
}

TEST_P(GroupByTest, FullScanMatchesScalarOracle) {
  CheckAllPaths(RangePredicate::Closed(1, kDomain), AttrName(3));
}

TEST_P(GroupByTest, EmptySelectionYieldsZeroGroups) {
  // The domain is [1, kDomain]; nothing qualifies above it.
  CheckAllPaths(RangePredicate::Closed(kDomain + 1, kDomain + 100),
                AttrName(3));
}

TEST_P(GroupByTest, SingleGroupWhenOneRowQualifies) {
  // A4 is the distinct row ordinal, so a point predicate on A1 narrows to
  // however few rows share that value — and grouping the narrowest
  // predicate by the 8-value key still matches the oracle.
  CheckAllPaths(RangePredicate::Point(kDomain / 2), AttrName(3));
}

TEST_P(GroupByTest, AllDistinctKeysMatchesScalarOracle) {
  // Group by the row ordinal: every qualifying row is its own group, the
  // hash tables grow to the result size, and the sorted finalize must
  // still agree with the map oracle.
  CheckAllPaths(RangePredicate::Closed(500, 900), AttrName(4));
}

TEST_P(GroupByTest, RepeatedQueriesStayCorrectWhileCracking) {
  // Self-organizing engines reorganize on every query; the answers must
  // not drift as the cracker structures converge.
  Rng rng(77);
  for (int i = 0; i < 5; ++i) {
    const Value lo = rng.Uniform(1, kDomain - 100);
    CheckAllPaths(RangePredicate::Closed(lo, lo + 100), AttrName(3));
  }
}

INSTANTIATE_TEST_SUITE_P(
    EngineKinds, GroupByTest,
    ::testing::Values("plain", "presorted", "selection-cracking", "sideways",
                      "partial", "row", "row-presorted"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace crackdb
