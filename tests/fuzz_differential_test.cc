// Long-horizon differential fuzzing: every engine against the plain scan
// reference over randomized mixed workloads — conjunctions, disjunctions,
// point queries, empty ranges, full-domain scans, projections of selection
// attributes, grouped aggregations, inserts, deletes — in one interleaved
// stream. This is the broadest single check of DESIGN.md invariant 3 and
// exists to catch cross-feature interactions the focused suites miss.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "engine/partial_engine.h"
#include "engine/plain_engine.h"
#include "engine/query.h"
#include "engine/presorted_engine.h"
#include "engine/row_engine.h"
#include "engine/selection_cracking_engine.h"
#include "engine/sideways_engine.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;

using bench::ZipRows;

struct FuzzParam {
  uint64_t seed;
  bool with_updates;
  size_t budget_tuples;  // partial/sideways budget, 0 = unlimited
};

class FuzzDifferentialTest : public ::testing::TestWithParam<FuzzParam> {};

QuerySpec RandomSpec(Rng* rng, Value domain, size_t num_attrs,
                     bool allow_disjunctive) {
  QuerySpec spec;
  const double shape = rng->NextDouble();
  size_t num_sel;
  if (shape < 0.15) {
    num_sel = 0;  // selection-free projection
  } else if (shape < 0.6) {
    num_sel = 1;
  } else {
    num_sel = 2 + static_cast<size_t>(rng->Uniform(0, 1));
  }
  // Distinct attributes for selections, drawn from the front.
  for (size_t s = 0; s < num_sel; ++s) {
    RangePredicate pred;
    const double kind = rng->NextDouble();
    if (kind < 0.1) {
      pred = RangePredicate::Point(rng->Uniform(1, domain));
    } else if (kind < 0.15) {
      pred = RangePredicate::Closed(domain + 10, domain + 20);  // empty
    } else if (kind < 0.2) {
      pred = RangePredicate{};  // full domain
    } else {
      pred = bench::RandomRange(rng, 1, domain,
                                rng->NextDouble() * 0.4 + 0.01);
    }
    spec.selections.push_back({AttrName(s + 1), pred});
  }
  spec.disjunctive =
      allow_disjunctive && num_sel > 1 && rng->Bernoulli(0.3);
  // Projections may include selection attributes.
  spec.projections = {AttrName(1 + rng->Uniform(0, 1) % num_attrs)};
  spec.projections.push_back(
      AttrName(1 + static_cast<size_t>(
                       rng->Uniform(0, static_cast<Value>(num_attrs) - 1))));
  return spec;
}

/// Folds the reference engine's materialized (group, value) rows into a
/// sorted map and checks an engine's GroupBy pushdown against it: same
/// keys ascending, same counts, same sum/min columns.
void CheckGroupedAgainstOracle(Engine* engine, const char* name,
                               PlainEngine* reference, QuerySpec spec,
                               const std::string& group_attr,
                               const std::string& value_attr, int step) {
  spec.projections = {group_attr, value_attr};
  const ConsumeSpec consume = ConsumeSpec::GroupBy(
      group_attr, {{AggregateOp::kSum, value_attr},
                   {AggregateOp::kMin, value_attr},
                   {AggregateOp::kCount, value_attr}});
  struct OracleGroup {
    uint64_t count = 0;
    Value sum = 0;
    Value min = kMaxValue;
  };
  const QueryResult ref = reference->Run(spec);
  std::map<Value, OracleGroup> oracle;
  for (size_t r = 0; r < ref.num_rows; ++r) {
    OracleGroup& g = oracle[ref.columns[0][r]];
    const Value v = ref.columns[1][r];
    g.count += 1;
    g.sum = static_cast<Value>(static_cast<uint64_t>(g.sum) +
                               static_cast<uint64_t>(v));
    g.min = std::min(g.min, v);
  }

  const ExecuteResult got = engine->Execute(spec, consume);
  ASSERT_EQ(got.groups.num_groups(), oracle.size())
      << name << " step " << step;
  size_t gi = 0;
  for (const auto& [key, og] : oracle) {
    ASSERT_EQ(got.groups.keys[gi], key) << name << " step " << step;
    ASSERT_EQ(got.groups.counts[gi], og.count)
        << name << " step " << step << " key " << key;
    ASSERT_EQ(got.groups.aggregates[0][gi], og.sum)
        << name << " step " << step << " key " << key;
    ASSERT_EQ(got.groups.aggregates[1][gi], og.min)
        << name << " step " << step << " key " << key;
    ASSERT_EQ(got.groups.aggregates[2][gi], static_cast<Value>(og.count))
        << name << " step " << step << " key " << key;
    ++gi;
  }
}

TEST_P(FuzzDifferentialTest, AllEnginesAgreeOverMixedStream) {
  const FuzzParam p = GetParam();
  Catalog catalog;
  Rng data_rng(p.seed);
  const Value domain = 4000;
  const size_t num_attrs = 5;
  Relation& rel = bench::CreateUniformRelation(&catalog, "R", num_attrs,
                                               3000, domain, &data_rng);
  PlainEngine reference(rel);
  PresortedEngine presorted(rel);
  SelectionCrackingEngine cracking(rel);
  SidewaysEngine sideways(rel, p.budget_tuples);
  PartialConfig config;
  config.storage_budget_tuples = p.budget_tuples;
  config.enable_head_drop = true;
  config.sort_piece_threshold = 64;
  config.head_drop_idle_accesses = 4;
  PartialSidewaysEngine partial(rel, config);
  RowEngine row(rel, false);

  Rng rng(p.seed * 1000003 + 17);
  for (int step = 0; step < 120; ++step) {
    if (p.with_updates && rng.Bernoulli(0.3)) {
      bench::ApplyRandomUpdates(&rel, domain, 1 + (step % 7), &rng);
    }
    const QuerySpec spec = RandomSpec(&rng, domain, num_attrs, true);
    const auto expected = ZipRows(reference.Run(spec));
    ASSERT_EQ(ZipRows(presorted.Run(spec)), expected)
        << "presorted step " << step;
    ASSERT_EQ(ZipRows(cracking.Run(spec)), expected)
        << "selection-cracking step " << step;
    ASSERT_EQ(ZipRows(sideways.Run(spec)), expected)
        << "sideways step " << step;
    if (!spec.disjunctive) {
      ASSERT_EQ(ZipRows(partial.Run(spec)), expected)
          << "partial step " << step;
    }
    ASSERT_EQ(ZipRows(row.Run(spec)), expected) << "row step " << step;

    // Every third step, the same predicate shape runs as a randomized
    // grouped aggregation: a GroupBy pushdown on every engine against the
    // std::map oracle folded from the reference scan.
    if (step % 3 == 0) {
      const size_t g_attr =
          1 + static_cast<size_t>(
                  rng.Uniform(0, static_cast<Value>(num_attrs) - 1));
      const size_t v_attr = g_attr == num_attrs ? 1 : g_attr + 1;
      const std::string group_attr = AttrName(g_attr);
      const std::string value_attr = AttrName(v_attr);
      CheckGroupedAgainstOracle(&presorted, "presorted", &reference, spec,
                                group_attr, value_attr, step);
      CheckGroupedAgainstOracle(&cracking, "selection-cracking", &reference,
                                spec, group_attr, value_attr, step);
      CheckGroupedAgainstOracle(&sideways, "sideways", &reference, spec,
                                group_attr, value_attr, step);
      if (!spec.disjunctive) {
        CheckGroupedAgainstOracle(&partial, "partial", &reference, spec,
                                  group_attr, value_attr, step);
      }
      CheckGroupedAgainstOracle(&row, "row", &reference, spec, group_attr,
                                value_attr, step);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, FuzzDifferentialTest,
    ::testing::Values(FuzzParam{1, false, 0}, FuzzParam{2, true, 0},
                      FuzzParam{3, false, 4000}, FuzzParam{4, true, 4000},
                      FuzzParam{5, true, 1500}, FuzzParam{6, false, 1500},
                      FuzzParam{7, true, 0}, FuzzParam{8, true, 2500}),
    [](const ::testing::TestParamInfo<FuzzParam>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.with_updates ? "_upd" : "_ro") + "_T" +
             std::to_string(info.param.budget_tuples);
    });

}  // namespace
}  // namespace crackdb
