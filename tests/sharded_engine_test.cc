// Sharded execution correctness: for every engine kind, a ShardedEngine
// over a hash- or range-partitioned relation must answer exactly like the
// unsharded engine over the source relation — across conjunctions,
// disjunctions, point and empty predicates, partition pruning, and
// mirrored update streams. Single-threaded here; the multi-client paths
// are exercised by concurrency_stress_test.

#include "engine/sharded_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/engine_factory.h"
#include "engine/plain_engine.h"
#include "storage/catalog.h"
#include "storage/partitioner.h"

namespace crackdb {
namespace {

using bench::AttrName;

constexpr Value kDomain = 10'000;
constexpr size_t kRows = 3'000;

using bench::ZipRows;

struct ShardParam {
  std::string kind;
  PartitionSpec::Kind partitioning;
  size_t pool_threads;
};

std::string ParamName(const ::testing::TestParamInfo<ShardParam>& info) {
  std::string name = info.param.kind;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  name += info.param.partitioning == PartitionSpec::Kind::kRange ? "_range"
                                                                 : "_hash";
  name += info.param.pool_threads > 0 ? "_pool" : "_inline";
  return name;
}

std::vector<ShardParam> AllParams() {
  std::vector<ShardParam> params;
  for (const EngineKindEntry& entry : kEngineKinds) {
    params.push_back({entry.name, PartitionSpec::Kind::kRange, 2});
    params.push_back({entry.name, PartitionSpec::Kind::kHash, 0});
  }
  // Both partitioning kinds x both execution modes for the paper's
  // headline engine.
  params.push_back({"sideways", PartitionSpec::Kind::kRange, 0});
  params.push_back({"sideways", PartitionSpec::Kind::kHash, 2});
  return params;
}

PartitionSpec SpecFor(PartitionSpec::Kind kind) {
  PartitionSpec spec;
  spec.kind = kind;
  // Odd counts exercise the uneven range-slice remainder.
  spec.num_partitions = kind == PartitionSpec::Kind::kRange ? 7 : 5;
  spec.column = AttrName(1);
  spec.domain_lo = 1;
  spec.domain_hi = kDomain;
  return spec;
}

class ShardedEngineTest : public ::testing::TestWithParam<ShardParam> {
 protected:
  void SetUp() override {
    Rng rng(1234);
    source_ = &bench::CreateUniformRelation(&catalog_, "R", 5, kRows, kDomain,
                                            &rng);
    // Pre-partition updates so tombstone replication is on the test path.
    bench::ApplyRandomUpdates(source_, kDomain, 200, &rng);

    parts_ = std::make_unique<PartitionedRelation>(Partitioner::Partition(
        &catalog_, *source_, SpecFor(GetParam().partitioning)));
    if (GetParam().pool_threads > 0) {
      pool_ = std::make_unique<ThreadPool>(GetParam().pool_threads);
    }
    sharded_ = std::make_unique<ShardedEngine>(
        *parts_, MakeEngineFactory(GetParam().kind), pool_.get());
    unsharded_ = MakeEngine(GetParam().kind, *source_);
    ASSERT_NE(unsharded_, nullptr);
  }

  void ExpectSameAnswer(const QuerySpec& spec, const std::string& context) {
    PlainEngine plain(*source_);
    const auto expected = ZipRows(plain.Run(spec));
    ASSERT_EQ(ZipRows(unsharded_->Run(spec)), expected)
        << context << " (unsharded reference disagrees with plain)";
    ASSERT_EQ(ZipRows(sharded_->Run(spec)), expected) << context;
  }

  Catalog catalog_;
  Relation* source_ = nullptr;
  std::unique_ptr<PartitionedRelation> parts_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ShardedEngine> sharded_;
  std::unique_ptr<Engine> unsharded_;
};

TEST_P(ShardedEngineTest, MatchesUnshardedAcrossQueryShapes) {
  Rng rng(99);
  for (int q = 0; q < 10; ++q) {
    QuerySpec spec;
    spec.selections = {
        {AttrName(1), bench::RandomRange(&rng, 1, kDomain, 0.2)},
        {AttrName(2), bench::RandomRange(&rng, 1, kDomain, 0.5)}};
    spec.projections = {AttrName(3), AttrName(4)};
    ExpectSameAnswer(spec, "conjunctive query " + std::to_string(q));
  }

  QuerySpec disjunctive;
  disjunctive.disjunctive = true;
  disjunctive.selections = {{AttrName(1), RangePredicate::Closed(1, 800)},
                            {AttrName(2), RangePredicate::Closed(100, 2'000)}};
  disjunctive.projections = {AttrName(5)};
  ExpectSameAnswer(disjunctive, "disjunctive query");

  QuerySpec point;
  point.selections = {{AttrName(1), RangePredicate::Point(kDomain / 2)}};
  point.projections = {AttrName(2)};
  ExpectSameAnswer(point, "point query on the organizing attribute");

  QuerySpec empty;
  empty.selections = {
      {AttrName(1), RangePredicate::Open(kDomain + 10, kDomain + 20)}};
  empty.projections = {AttrName(2)};
  ExpectSameAnswer(empty, "empty range beyond the domain");

  QuerySpec scan_all;
  scan_all.projections = {AttrName(1), AttrName(5)};
  ExpectSameAnswer(scan_all, "selection-free scan");
}

TEST_P(ShardedEngineTest, TracksMirroredUpdates) {
  Rng rng(7);
  // Warm the cracked structures first so updates land on organized state.
  QuerySpec warm;
  warm.selections = {{AttrName(1), RangePredicate::Closed(1, kDomain / 3)}};
  warm.projections = {AttrName(2)};
  ExpectSameAnswer(warm, "warm-up");

  for (int batch = 0; batch < 6; ++batch) {
    // Global keys equal source keys, so the same update stream can be
    // mirrored 1:1 into the partitioned relation.
    for (int i = 0; i < 15; ++i) {
      std::vector<Value> row(source_->num_columns());
      for (Value& v : row) v = rng.Uniform(1, kDomain);
      const Key source_key = source_->AppendRow(row);
      const Key global_key = parts_->Append(row);
      ASSERT_EQ(source_key, global_key);
    }
    for (int i = 0; i < 8; ++i) {
      const Key victim = static_cast<Key>(
          rng.Uniform(0, static_cast<Value>(source_->num_rows()) - 1));
      const bool was_live = !source_->IsDeleted(victim);
      source_->DeleteRow(victim);
      ASSERT_EQ(parts_->Delete(victim), was_live);
    }
    QuerySpec spec;
    spec.selections = {
        {AttrName(1), bench::RandomRange(&rng, 1, kDomain, 0.25)},
        {AttrName(3), bench::RandomRange(&rng, 1, kDomain, 0.6)}};
    spec.projections = {AttrName(2), AttrName(4)};
    ExpectSameAnswer(spec, "post-update batch " + std::to_string(batch));
  }
}

TEST_P(ShardedEngineTest, HandleFetchAtMatchesFetch) {
  QuerySpec spec;
  spec.selections = {{AttrName(1), RangePredicate::Closed(1, kDomain / 2)}};
  spec.projections = {AttrName(2), AttrName(3)};
  std::unique_ptr<SelectionHandle> handle = sharded_->Select(spec);
  const std::vector<Value> all = handle->Fetch(AttrName(3));
  ASSERT_EQ(all.size(), handle->NumRows());

  // Reversed ordinals: FetchAt must address the merged row space.
  std::vector<uint32_t> ordinals;
  ordinals.reserve(all.size());
  for (size_t i = all.size(); i > 0; --i) {
    ordinals.push_back(static_cast<uint32_t>(i - 1));
  }
  const std::vector<Value> reversed = handle->FetchAt(AttrName(3), ordinals);
  ASSERT_EQ(reversed.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(reversed[i], all[all.size() - 1 - i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ShardedEngineTest,
                         ::testing::ValuesIn(AllParams()), ParamName);

TEST(PartitionerTest, RangeRoutingClampsAndCoversDomain) {
  Catalog catalog;
  Rng rng(5);
  Relation& source =
      bench::CreateUniformRelation(&catalog, "S", 2, 500, 1'000, &rng);
  PartitionSpec spec;
  spec.kind = PartitionSpec::Kind::kRange;
  spec.num_partitions = 4;
  spec.column = AttrName(1);
  spec.domain_lo = 1;
  spec.domain_hi = 1'000;
  PartitionedRelation parts = Partitioner::Partition(&catalog, source, spec);

  EXPECT_EQ(parts.PartitionOf(kMinValue), 0u);  // clamped below
  EXPECT_EQ(parts.PartitionOf(kMaxValue), 3u);  // clamped above
  size_t last = 0;
  for (Value v = 1; v <= 1'000; ++v) {
    const size_t p = parts.PartitionOf(v);
    ASSERT_GE(p, last) << "range routing must be monotone, value " << v;
    last = p;
  }
  EXPECT_EQ(last, 3u);

  // Slice bounds: a predicate inside one slice targets only it; the edge
  // partitions absorb out-of-domain ranges.
  EXPECT_TRUE(parts.MayContain(0, RangePredicate::Closed(-50, -10)));
  EXPECT_FALSE(parts.MayContain(1, RangePredicate::Closed(-50, -10)));
  EXPECT_TRUE(parts.MayContain(3, RangePredicate::Closed(5'000, 6'000)));
  EXPECT_FALSE(parts.MayContain(2, RangePredicate::Closed(5'000, 6'000)));
  int holders = 0;
  for (size_t i = 0; i < parts.num_partitions(); ++i) {
    if (parts.MayContain(i, RangePredicate::Point(500))) ++holders;
  }
  EXPECT_EQ(holders, 1);

  // Empty predicates match nowhere.
  for (size_t i = 0; i < parts.num_partitions(); ++i) {
    EXPECT_FALSE(parts.MayContain(i, RangePredicate::Open(10, 11)));
    EXPECT_FALSE(parts.MayContain(i, RangePredicate{20, 10, true, true}));
  }
}

TEST(PartitionerTest, MorePartitionsThanDomainValuesStaysCorrect) {
  // Degenerate range spec: an 8-way split of a 4-value domain leaves
  // trailing zero-width slices that no clamped value can route into; the
  // +inf widening must follow the slice holding domain_hi, not index n-1.
  Catalog catalog;
  Relation& source = catalog.CreateRelation("D");
  source.AddColumn(AttrName(1));
  source.AddColumn(AttrName(2));
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    // Organizing values straddle the domain on both sides.
    const Value row[] = {rng.Uniform(-10, 210), rng.Uniform(1, 1'000)};
    source.BulkLoadRow(row);
  }
  PartitionSpec spec;
  spec.kind = PartitionSpec::Kind::kRange;
  spec.num_partitions = 8;
  spec.column = AttrName(1);
  spec.domain_lo = 1;
  spec.domain_hi = 4;
  PartitionedRelation parts = Partitioner::Partition(&catalog, source, spec);

  // Every routable value must land in a partition MayContain admits.
  for (Value v = -10; v <= 210; ++v) {
    const size_t p = parts.PartitionOf(v);
    EXPECT_TRUE(parts.MayContain(p, RangePredicate::Point(v))) << v;
  }

  ShardedEngine sharded(parts, MakeEngineFactory("sideways"), nullptr);
  PlainEngine plain(source);
  const RangePredicate probes[] = {
      RangePredicate::Closed(50, 200),  // entirely above the domain
      RangePredicate::Closed(-5, 0),    // entirely below
      RangePredicate::Closed(2, 3),     // inside
      RangePredicate::Closed(-5, 210),  // spanning everything
  };
  for (const RangePredicate& pred : probes) {
    QuerySpec spec2;
    spec2.selections = {{AttrName(1), pred}};
    spec2.projections = {AttrName(2)};
    EXPECT_EQ(ZipRows(sharded.Run(spec2)), ZipRows(plain.Run(spec2)))
        << pred.ToString();
  }
}

TEST(PartitionerTest, HashRoutingPrunesPointsAndBalances) {
  Catalog catalog;
  Rng rng(6);
  Relation& source =
      bench::CreateUniformRelation(&catalog, "H", 2, 2'000, 100'000, &rng);
  PartitionSpec spec;
  spec.kind = PartitionSpec::Kind::kHash;
  spec.num_partitions = 8;
  spec.column = AttrName(1);
  PartitionedRelation parts = Partitioner::Partition(&catalog, source, spec);

  size_t total = 0;
  for (size_t i = 0; i < parts.num_partitions(); ++i) {
    const size_t rows = parts.partition(i).num_rows();
    total += rows;
    // Mixed hashing over 2000 uniform rows: no partition should be
    // starved or hold the majority.
    EXPECT_GT(rows, 2'000u / 8 / 4) << "partition " << i;
    EXPECT_LT(rows, 2'000u / 2) << "partition " << i;
  }
  EXPECT_EQ(total, source.num_rows());

  int holders = 0;
  for (size_t i = 0; i < parts.num_partitions(); ++i) {
    if (parts.MayContain(i, RangePredicate::Point(777))) ++holders;
  }
  EXPECT_EQ(holders, 1);
  EXPECT_TRUE(parts.MayContain(0, RangePredicate::Closed(1, 10)));
}

TEST(ShardedPruningTest, RangeShardsPruneOrganizingSelections) {
  Catalog catalog;
  Rng rng(11);
  Relation& source =
      bench::CreateUniformRelation(&catalog, "P", 3, 2'000, 1'000, &rng);
  PartitionSpec spec;
  spec.kind = PartitionSpec::Kind::kRange;
  spec.num_partitions = 10;
  spec.column = AttrName(1);
  spec.domain_lo = 1;
  spec.domain_hi = 1'000;
  PartitionedRelation parts = Partitioner::Partition(&catalog, source, spec);
  ShardedEngine sharded(parts, MakeEngineFactory("sideways"), nullptr);

  QuerySpec narrow;
  narrow.selections = {{AttrName(1), RangePredicate::Closed(120, 180)},
                       {AttrName(2), RangePredicate::Closed(1, 900)}};
  narrow.projections = {AttrName(3)};
  const std::vector<size_t> targets = sharded.TargetPartitions(narrow);
  EXPECT_LE(targets.size(), 2u) << "a 60-value range spans at most 2 slices";

  // Selections on non-organizing attributes cannot prune.
  QuerySpec other;
  other.selections = {{AttrName(2), RangePredicate::Closed(120, 180)}};
  other.projections = {AttrName(3)};
  EXPECT_EQ(sharded.TargetPartitions(other).size(), parts.num_partitions());

  // Disjunctions prune only when every disjunct is on the organizing
  // attribute.
  QuerySpec disj;
  disj.disjunctive = true;
  disj.selections = {{AttrName(1), RangePredicate::Closed(1, 50)},
                     {AttrName(1), RangePredicate::Closed(900, 1'000)}};
  disj.projections = {AttrName(3)};
  EXPECT_LT(sharded.TargetPartitions(disj).size(), parts.num_partitions());

  PlainEngine plain(source);
  EXPECT_EQ(ZipRows(sharded.Run(narrow)), ZipRows(plain.Run(narrow)));
  EXPECT_EQ(ZipRows(sharded.Run(disj)), ZipRows(plain.Run(disj)));
}

// The ThreadPool's own behavior (affinity routing, stealing, the nested-
// blocking guard) is pinned down in thread_pool_test.cc.

}  // namespace
}  // namespace crackdb
