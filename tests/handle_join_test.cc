#include <gtest/gtest.h>

#include <set>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "engine/operators.h"
#include "engine/plain_engine.h"
#include "engine/presorted_engine.h"
#include "engine/row_engine.h"
#include "engine/selection_cracking_engine.h"
#include "engine/sideways_engine.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;

/// Join-shaped access (the paper's Exp4 / q2): select on both relations,
/// fetch join keys (pre-join reconstruction), hash-join, then FetchAt the
/// remaining attributes (post-join reconstruction). Every engine must
/// deliver the same join result.
std::multiset<std::vector<Value>> RunJoin(Engine* r_engine, Engine* s_engine,
                                          const QuerySpec& r_spec,
                                          const QuerySpec& s_spec,
                                          const std::string& join_attr,
                                          const std::string& r_payload,
                                          const std::string& s_payload) {
  auto hr = r_engine->Select(r_spec);
  auto hs = s_engine->Select(s_spec);
  const std::vector<Value> r_keys = hr->Fetch(join_attr);
  const std::vector<Value> s_keys = hs->Fetch(join_attr);
  const JoinPairs jp = HashJoin(r_keys, s_keys);
  const std::vector<Value> r_vals = hr->FetchAt(r_payload, jp.left);
  const std::vector<Value> s_vals = hs->FetchAt(s_payload, jp.right);
  std::multiset<std::vector<Value>> rows;
  for (size_t i = 0; i < jp.size(); ++i) {
    rows.insert({r_keys[jp.left[i]], r_vals[i], s_vals[i]});
  }
  return rows;
}

class JoinEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(7);
    // Two relations sharing a join-key domain (A3 plays R7/S7).
    r_ = &bench::CreateUniformRelation(&catalog_, "R", 4, 2000, 500, &rng);
    s_ = &bench::CreateUniformRelation(&catalog_, "S", 4, 1500, 500, &rng);
    r_spec_.selections = {{AttrName(1), RangePredicate::Closed(100, 350)}};
    r_spec_.projections = {AttrName(3), AttrName(4)};
    s_spec_.selections = {{AttrName(2), RangePredicate::Closed(50, 400)}};
    s_spec_.projections = {AttrName(3), AttrName(4)};
  }

  std::multiset<std::vector<Value>> RunWith(Engine* re, Engine* se) {
    return RunJoin(re, se, r_spec_, s_spec_, AttrName(3), AttrName(4),
                   AttrName(4));
  }

  Catalog catalog_;
  Relation* r_ = nullptr;
  Relation* s_ = nullptr;
  QuerySpec r_spec_;
  QuerySpec s_spec_;
};

TEST_F(JoinEquivalenceTest, AllEnginesAgreeOnJoinResult) {
  PlainEngine plain_r(*r_);
  PlainEngine plain_s(*s_);
  const auto expected = RunWith(&plain_r, &plain_s);
  ASSERT_GT(expected.size(), 0u);

  PresortedEngine pres_r(*r_);
  PresortedEngine pres_s(*s_);
  EXPECT_EQ(RunWith(&pres_r, &pres_s), expected);

  SelectionCrackingEngine crack_r(*r_);
  SelectionCrackingEngine crack_s(*s_);
  EXPECT_EQ(RunWith(&crack_r, &crack_s), expected);

  SidewaysEngine side_r(*r_);
  SidewaysEngine side_s(*s_);
  EXPECT_EQ(RunWith(&side_r, &side_s), expected);

  RowEngine row_r(*r_, false);
  RowEngine row_s(*s_, false);
  EXPECT_EQ(RunWith(&row_r, &row_s), expected);
}

TEST_F(JoinEquivalenceTest, RepeatedJoinsStaysStableWhileCracking) {
  PlainEngine plain_r(*r_);
  PlainEngine plain_s(*s_);
  SidewaysEngine side_r(*r_);
  SidewaysEngine side_s(*s_);
  Rng rng(9);
  for (int q = 0; q < 15; ++q) {
    const Value lo = rng.Uniform(1, 300);
    r_spec_.selections[0].pred = RangePredicate::Closed(lo, lo + 150);
    s_spec_.selections[0].pred = RangePredicate::Closed(lo / 2, lo / 2 + 200);
    ASSERT_EQ(RunWith(&side_r, &side_s), RunWith(&plain_r, &plain_s))
        << "query " << q;
  }
}

TEST_F(JoinEquivalenceTest, MultiSelectionLegsAgree) {
  r_spec_.selections.push_back(
      {AttrName(2), RangePredicate::Closed(100, 450)});
  PlainEngine plain_r(*r_);
  PlainEngine plain_s(*s_);
  SidewaysEngine side_r(*r_);
  SidewaysEngine side_s(*s_);
  // Sideways runs the second predicate through its bit-vector pipeline.
  EXPECT_EQ(RunWith(&side_r, &side_s), RunWith(&plain_r, &plain_s));
}

TEST_F(JoinEquivalenceTest, FetchAtWithDuplicatedOrdinals) {
  SidewaysEngine side_r(*r_);
  auto h = side_r.Select(r_spec_);
  const std::vector<Value> all = h->Fetch(AttrName(4));
  ASSERT_GT(all.size(), 3u);
  const std::vector<uint32_t> ordinals = {2, 2, 0,
                                          static_cast<uint32_t>(all.size() - 1)};
  const std::vector<Value> picked = h->FetchAt(AttrName(4), ordinals);
  EXPECT_EQ(picked[0], all[2]);
  EXPECT_EQ(picked[1], all[2]);
  EXPECT_EQ(picked[2], all[0]);
  EXPECT_EQ(picked[3], all.back());
}

}  // namespace
}  // namespace crackdb
