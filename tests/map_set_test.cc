#include "core/map_set.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

Relation& BuildRelation(Catalog* catalog, size_t rows, Value domain,
                        uint64_t seed) {
  Relation& rel = catalog->CreateRelation("R");
  rel.AddColumn("A");
  rel.AddColumn("B");
  rel.AddColumn("C");
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    const Value row[] = {rng.Uniform(1, domain), rng.Uniform(1, domain),
                         rng.Uniform(1, domain)};
    rel.BulkLoadRow(row);
  }
  return rel;
}

/// Ground truth: multiset of B values whose row's A matches pred.
std::multiset<Value> ScanTails(const Relation& rel, const std::string& tail,
                               const RangePredicate& pred) {
  std::multiset<Value> out;
  const Column& a = rel.column("A");
  const Column& t = rel.column(tail);
  for (size_t i = 0; i < a.size(); ++i) {
    if (!rel.IsDeleted(static_cast<Key>(i)) && pred.Matches(a[i])) {
      out.insert(t[i]);
    }
  }
  return out;
}

TEST(MapSetTest, SidewaysSelectReturnsCorrectTails) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 3000, 1000, 1);
  MapSet set(rel, "A");
  CrackerMap& mab = set.GetOrCreateMap("B");
  Rng rng(2);
  for (int q = 0; q < 40; ++q) {
    const Value lo = rng.Uniform(1, 900);
    const RangePredicate pred = RangePredicate::Closed(lo, lo + 100);
    const PositionRange area = set.SidewaysSelect(mab, pred);
    std::multiset<Value> got(mab.store().tail.begin() + area.begin,
                             mab.store().tail.begin() + area.end);
    EXPECT_EQ(got, ScanTails(rel, "B", pred)) << "query " << q;
  }
}

TEST(MapSetTest, MapsOfOneSetStayAligned) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 2000, 500, 3);
  MapSet set(rel, "A");
  CrackerMap& mab = set.GetOrCreateMap("B");
  CrackerMap& mac = set.GetOrCreateMap("C");
  Rng rng(4);
  for (int q = 0; q < 30; ++q) {
    const Value lo = rng.Uniform(1, 450);
    const RangePredicate pred = RangePredicate::Closed(lo, lo + 50);
    // Alternate which map runs first; both must agree afterwards.
    if (q % 2 == 0) {
      set.SidewaysSelect(mab, pred);
      set.SidewaysSelect(mac, pred);
    } else {
      set.SidewaysSelect(mac, pred);
      set.SidewaysSelect(mab, pred);
    }
    ASSERT_EQ(mab.store().head, mac.store().head) << "query " << q;
    ASSERT_EQ(mab.cursor(), mac.cursor());
  }
}

TEST(MapSetTest, LateCreatedMapAlignsByFullReplay) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 2000, 500, 5);
  MapSet set(rel, "A");
  CrackerMap& mab = set.GetOrCreateMap("B");
  Rng rng(6);
  for (int q = 0; q < 20; ++q) {
    const Value lo = rng.Uniform(1, 400);
    set.SidewaysSelect(mab, RangePredicate::Closed(lo, lo + 100));
  }
  // The C map is created now and must catch up with the whole history.
  CrackerMap& mac = set.GetOrCreateMap("C");
  EXPECT_EQ(mac.cursor(), 0u);
  const RangePredicate pred = RangePredicate::Closed(100, 200);
  set.SidewaysSelect(mac, pred);
  set.SidewaysSelect(mab, pred);
  EXPECT_EQ(mab.store().head, mac.store().head);
}

TEST(MapSetTest, CrackOnlyLoggedWhenReorganizing) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 1000, 500, 7);
  MapSet set(rel, "A");
  CrackerMap& mab = set.GetOrCreateMap("B");
  const RangePredicate pred = RangePredicate::Closed(100, 200);
  set.SidewaysSelect(mab, pred);
  const size_t tape_after_first = set.tape().size();
  EXPECT_GE(tape_after_first, 1u);
  set.SidewaysSelect(mab, pred);  // same bounds: no physical work
  EXPECT_EQ(set.tape().size(), tape_after_first);
}

TEST(MapSetTest, DropAndRecreateRelearnsFromTape) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 2000, 500, 8);
  MapSet set(rel, "A");
  CrackerMap& mab = set.GetOrCreateMap("B");
  CrackerMap& mac = set.GetOrCreateMap("C");
  Rng rng(9);
  for (int q = 0; q < 15; ++q) {
    const Value lo = rng.Uniform(1, 400);
    const RangePredicate pred = RangePredicate::Closed(lo, lo + 100);
    set.SidewaysSelect(mab, pred);
    set.SidewaysSelect(mac, pred);
  }
  set.DropMap("B");
  EXPECT_FALSE(set.HasMap("B"));
  CrackerMap& mab2 = set.GetOrCreateMap("B");
  const RangePredicate pred = RangePredicate::Closed(50, 150);
  set.SidewaysSelect(mab2, pred);
  set.SidewaysSelect(mac, pred);
  EXPECT_EQ(mab2.store().head, mac.store().head);
}

TEST(MapSetTest, InsValuesFlowThroughTape) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 500, 100, 10);
  MapSet set(rel, "A");
  CrackerMap& mab = set.GetOrCreateMap("B");
  CrackerMap& mac = set.GetOrCreateMap("C");
  set.SidewaysSelect(mab, RangePredicate::Closed(10, 50));
  const Value row[] = {30, 7777, 8888};
  rel.AppendRow(row);
  const RangePredicate pred = RangePredicate::Closed(20, 40);
  const PositionRange area_b = set.SidewaysSelect(mab, pred);
  std::multiset<Value> got_b(mab.store().tail.begin() + area_b.begin,
                             mab.store().tail.begin() + area_b.end);
  EXPECT_EQ(got_b.count(7777), 1u);
  EXPECT_EQ(got_b, ScanTails(rel, "B", pred));
  const PositionRange area_c = set.SidewaysSelect(mac, pred);
  std::multiset<Value> got_c(mac.store().tail.begin() + area_c.begin,
                             mac.store().tail.begin() + area_c.end);
  EXPECT_EQ(got_c.count(8888), 1u);
  EXPECT_EQ(mab.store().head, mac.store().head);
}

TEST(MapSetTest, DeletesResolveThroughKeyMap) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 500, 100, 11);
  MapSet set(rel, "A");
  CrackerMap& mab = set.GetOrCreateMap("B");
  set.SidewaysSelect(mab, RangePredicate::Closed(1, 100));
  // Delete two rows inside the future query range.
  const Column& a = rel.column("A");
  int deleted = 0;
  for (size_t i = 0; i < a.size() && deleted < 2; ++i) {
    if (a[i] >= 40 && a[i] <= 60) {
      rel.DeleteRow(static_cast<Key>(i));
      ++deleted;
    }
  }
  ASSERT_EQ(deleted, 2);
  const RangePredicate pred = RangePredicate::Closed(40, 60);
  const PositionRange area = set.SidewaysSelect(mab, pred);
  std::multiset<Value> got(mab.store().tail.begin() + area.begin,
                           mab.store().tail.begin() + area.end);
  EXPECT_EQ(got, ScanTails(rel, "B", pred));
}

TEST(MapSetTest, EstimatesBoundTruth) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 5000, 1000, 12);
  MapSet set(rel, "A");
  CrackerMap& mab = set.GetOrCreateMap("B");
  Rng rng(13);
  for (int q = 0; q < 10; ++q) {
    const Value lo = rng.Uniform(1, 800);
    set.SidewaysSelect(mab, RangePredicate::Closed(lo, lo + 150));
  }
  for (int q = 0; q < 20; ++q) {
    const Value lo = rng.Uniform(1, 800);
    const RangePredicate pred = RangePredicate::Closed(lo, lo + 150);
    const auto est = set.EstimateMatches(pred);
    const size_t truth = ScanTails(rel, "B", pred).size();
    EXPECT_LE(est.lower_bound, truth);
    EXPECT_GE(est.upper_bound, truth);
  }
}

/// Property: under a random mix of queries (alternating maps), inserts and
/// deletes, both maps return scan-exact results and stay mutually aligned.
class MapSetUpdateSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MapSetUpdateSweep, AlignedUnderUpdates) {
  Catalog catalog;
  Relation& rel = BuildRelation(&catalog, 1500, 800, GetParam());
  MapSet set(rel, "A");
  CrackerMap& mab = set.GetOrCreateMap("B");
  CrackerMap& mac = set.GetOrCreateMap("C");
  Rng rng(GetParam() + 99);
  for (int step = 0; step < 80; ++step) {
    if (rng.Bernoulli(0.35)) {
      if (rng.Bernoulli(0.5)) {
        const Value row[] = {rng.Uniform(1, 800), rng.Uniform(1, 800),
                             rng.Uniform(1, 800)};
        rel.AppendRow(row);
      } else {
        rel.DeleteRow(static_cast<Key>(
            rng.Uniform(0, static_cast<Value>(rel.num_rows()) - 1)));
      }
    }
    const Value lo = rng.Uniform(1, 700);
    const RangePredicate pred = RangePredicate::Closed(lo, lo + 100);
    CrackerMap& first = rng.Bernoulli(0.5) ? mab : mac;
    CrackerMap& second = (&first == &mab) ? mac : mab;
    const PositionRange a1 = set.SidewaysSelect(first, pred);
    const PositionRange a2 = set.SidewaysSelect(second, pred);
    ASSERT_EQ(a1.begin, a2.begin);
    ASSERT_EQ(a1.end, a2.end);
    ASSERT_EQ(mab.store().head, mac.store().head) << "step " << step;
    std::multiset<Value> got(mab.store().tail.begin() + a1.begin,
                             mab.store().tail.begin() + a1.end);
    ASSERT_EQ(got, ScanTails(rel, "B", pred)) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapSetUpdateSweep,
                         ::testing::Values(21, 42, 63, 84));

}  // namespace
}  // namespace crackdb
