#include "tpch/generator.h"

#include <gtest/gtest.h>

#include "tpch/schema.h"

namespace crackdb::tpch {
namespace {

TEST(DateTest, RoundTripsKnownDates) {
  const Value d = DateToDays(1995, 6, 17);
  int y, m, day;
  DaysToDate(d, &y, &m, &day);
  EXPECT_EQ(y, 1995);
  EXPECT_EQ(m, 6);
  EXPECT_EQ(day, 17);
  EXPECT_EQ(DateToDays(1970, 1, 1), 0);
  EXPECT_EQ(DateToDays(1970, 1, 2), 1);
  EXPECT_LT(kStartDate, kCurrentDate);
  EXPECT_LT(kCurrentDate, kEndDate);
}

TEST(DateTest, MonthBoundaries) {
  EXPECT_EQ(DateToDays(1992, 3, 1) - DateToDays(1992, 2, 1), 29);  // leap
  EXPECT_EQ(DateToDays(1993, 3, 1) - DateToDays(1993, 2, 1), 28);
  EXPECT_EQ(DateToDays(1993, 1, 1) - DateToDays(1992, 1, 1), 366);
}

class TpchGeneratorTest : public ::testing::Test {
 protected:
  static TpchDatabase& Db() {
    static TpchDatabase* db = new TpchDatabase(0.01);
    return *db;
  }
};

TEST_F(TpchGeneratorTest, CardinalitiesMatchScaleFactor) {
  TpchDatabase& db = Db();
  EXPECT_EQ(db.relation("region").num_rows(), 5u);
  EXPECT_EQ(db.relation("nation").num_rows(), 25u);
  EXPECT_EQ(db.relation("supplier").num_rows(), 100u);
  EXPECT_EQ(db.relation("part").num_rows(), 2000u);
  EXPECT_EQ(db.relation("partsupp").num_rows(), 8000u);
  EXPECT_EQ(db.relation("customer").num_rows(), 1500u);
  EXPECT_EQ(db.relation("orders").num_rows(), 15000u);
  const size_t lines = db.relation("lineitem").num_rows();
  EXPECT_GT(lines, 15000u * 2);  // ~4 lines per order
  EXPECT_LT(lines, 15000u * 8);
}

TEST_F(TpchGeneratorTest, LineitemDateOrderings) {
  TpchDatabase& db = Db();
  const Relation& li = db.relation("lineitem");
  const Column& ship = li.column("l_shipdate");
  const Column& receipt = li.column("l_receiptdate");
  for (size_t i = 0; i < li.num_rows(); i += 97) {
    EXPECT_LT(ship[i], receipt[i]);
    EXPECT_GE(ship[i], kStartDate);
    EXPECT_LE(receipt[i], kEndDate + 151);
  }
}

TEST_F(TpchGeneratorTest, ReturnFlagFollowsReceiptDateRule) {
  TpchDatabase& db = Db();
  const Relation& li = db.relation("lineitem");
  const Value flag_n = db.Code("lineitem.l_returnflag", "N");
  const Column& flag = li.column("l_returnflag");
  const Column& receipt = li.column("l_receiptdate");
  for (size_t i = 0; i < li.num_rows(); i += 53) {
    if (receipt[i] > kCurrentDate) {
      EXPECT_EQ(flag[i], flag_n) << "row " << i;
    } else {
      EXPECT_NE(flag[i], flag_n) << "row " << i;
    }
  }
}

TEST_F(TpchGeneratorTest, RetailPriceFormula) {
  TpchDatabase& db = Db();
  const Relation& part = db.relation("part");
  const Column& price = part.column("p_retailprice");
  const Column& key = part.column("p_partkey");
  for (size_t i = 0; i < part.num_rows(); i += 31) {
    const Value k = key[i];
    EXPECT_EQ(price[i], 90000 + (k / 10) % 20001 + 100 * (k % 1000));
  }
}

TEST_F(TpchGeneratorTest, DictionaryDomains) {
  TpchDatabase& db = Db();
  Catalog& catalog = db.catalog();
  EXPECT_EQ(catalog.dictionary("lineitem.l_shipmode").size(), 7u);
  EXPECT_EQ(catalog.dictionary("orders.o_orderpriority").size(), 5u);
  EXPECT_EQ(catalog.dictionary("part.p_type").size(), 150u);
  EXPECT_EQ(catalog.dictionary("part.p_container").size(), 40u);
  EXPECT_EQ(catalog.dictionary("part.p_brand").size(), 25u);
  // PROMO types form a contiguous sorted-code range.
  const Dictionary& types = catalog.dictionary("part.p_type");
  Value promo_count = 0;
  for (size_t c = 0; c < types.size(); ++c) {
    if (types.Decode(static_cast<Value>(c)).rfind("PROMO", 0) == 0) {
      ++promo_count;
    }
  }
  EXPECT_EQ(promo_count, 25);  // 5 x 5 second/third syllables
}

TEST_F(TpchGeneratorTest, ForeignKeysInRange) {
  TpchDatabase& db = Db();
  const Relation& li = db.relation("lineitem");
  const size_t parts = db.relation("part").num_rows();
  const size_t supps = db.relation("supplier").num_rows();
  const Column& pk = li.column("l_partkey");
  const Column& sk = li.column("l_suppkey");
  for (size_t i = 0; i < li.num_rows(); i += 71) {
    EXPECT_GE(pk[i], 1);
    EXPECT_LE(pk[i], static_cast<Value>(parts));
    EXPECT_GE(sk[i], 1);
    EXPECT_LE(sk[i], static_cast<Value>(supps));
  }
}

TEST_F(TpchGeneratorTest, DeterministicUnderSeed) {
  TpchDatabase a(0.001, 7);
  TpchDatabase b(0.001, 7);
  const Column& ca = a.relation("lineitem").column("l_extendedprice");
  const Column& cb = b.relation("lineitem").column("l_extendedprice");
  ASSERT_EQ(ca.size(), cb.size());
  EXPECT_EQ(ca.values(), cb.values());
  TpchDatabase c(0.001, 8);
  EXPECT_NE(c.relation("lineitem").column("l_extendedprice").values(),
            ca.values());
}

TEST_F(TpchGeneratorTest, OrderStatusConsistentWithLineStatus) {
  TpchDatabase& db = Db();
  const Relation& orders = db.relation("orders");
  const Value status_f = db.Code("orders.o_orderstatus", "F");
  const Value status_o = db.Code("orders.o_orderstatus", "O");
  const Column& status = orders.column("o_orderstatus");
  size_t f = 0, o = 0, p = 0;
  for (size_t i = 0; i < orders.num_rows(); ++i) {
    if (status[i] == status_f) {
      ++f;
    } else if (status[i] == status_o) {
      ++o;
    } else {
      ++p;
    }
  }
  // Roughly half the timeline is before the current date: all three states
  // must occur, F and O dominating.
  EXPECT_GT(f, orders.num_rows() / 10);
  EXPECT_GT(o, orders.num_rows() / 10);
  EXPECT_GT(p, 0u);
}

}  // namespace
}  // namespace crackdb::tpch
