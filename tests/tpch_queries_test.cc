#include "tpch/queries.h"

#include <gtest/gtest.h>

#include "engine/partial_engine.h"
#include "engine/plain_engine.h"
#include "engine/presorted_engine.h"
#include "engine/row_engine.h"
#include "engine/query.h"
#include "engine/selection_cracking_engine.h"
#include "engine/sideways_engine.h"
#include "tpch/schema.h"

namespace crackdb::tpch {
namespace {

TpchDatabase& Db() {
  static TpchDatabase* db = new TpchDatabase(0.01);
  return *db;
}

EngineSet MakeSet(const std::string& kind) {
  if (kind == "plain") {
    return EngineSet(Db(), kind, [](const Relation& r) {
      return std::make_unique<PlainEngine>(r);
    });
  }
  if (kind == "presorted") {
    return EngineSet(Db(), kind, [](const Relation& r) {
      return std::make_unique<PresortedEngine>(r);
    });
  }
  if (kind == "selection-cracking") {
    return EngineSet(Db(), kind, [](const Relation& r) {
      return std::make_unique<SelectionCrackingEngine>(r);
    });
  }
  if (kind == "sideways") {
    return EngineSet(Db(), kind, [](const Relation& r) {
      return std::make_unique<SidewaysEngine>(r);
    });
  }
  if (kind == "row-presorted") {
    return EngineSet(Db(), kind, [](const Relation& r) {
      return std::make_unique<RowEngine>(r, true);
    });
  }
  ADD_FAILURE() << "unknown engine kind " << kind;
  return EngineSet(Db(), kind, nullptr);
}

TEST(TpchQueriesTest, RegistryHoldsTheTwelveEvaluatedQueries) {
  const auto& queries = AllQueries();
  ASSERT_EQ(queries.size(), 12u);
  const int expected[] = {1, 3, 4, 6, 7, 8, 10, 12, 14, 15, 19, 20};
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].number, expected[i]);
  }
  EXPECT_EQ(QueryByNumber(6).name, "forecast-revenue");
}

/// Cross-engine agreement per query: the headline correctness property for
/// the TPC-H harness (paper Section 5 compares response times of systems
/// answering identically).
class TpchQueryAgreement : public ::testing::TestWithParam<int> {};

TEST_P(TpchQueryAgreement, EnginesReturnIdenticalResults) {
  const TpchQueryDef& query = QueryByNumber(GetParam());
  EngineSet plain = MakeSet("plain");
  EngineSet presorted = MakeSet("presorted");
  EngineSet cracking = MakeSet("selection-cracking");
  EngineSet sideways = MakeSet("sideways");
  EngineSet row = MakeSet("row-presorted");

  Rng rng(1000 + GetParam());
  for (int variation = 0; variation < 3; ++variation) {
    const QueryParams params = query.randomize(Db(), rng);
    const TpchResult expected = query.run(Db(), plain, params);
    EXPECT_EQ(query.run(Db(), presorted, params), expected)
        << "presorted, variation " << variation;
    EXPECT_EQ(query.run(Db(), cracking, params), expected)
        << "selection-cracking, variation " << variation;
    EXPECT_EQ(query.run(Db(), sideways, params), expected)
        << "sideways, variation " << variation;
    EXPECT_EQ(query.run(Db(), row, params), expected)
        << "row-presorted, variation " << variation;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, TpchQueryAgreement,
                         ::testing::Values(1, 3, 4, 6, 7, 8, 10, 12, 14, 15,
                                           19, 20),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string name("Q");
                           name += std::to_string(info.param);
                           return name;
                         });

TEST(TpchQueriesTest, Q1ProducesTheFourFlagStatusGroups) {
  EngineSet plain = MakeSet("plain");
  Rng rng(5);
  const TpchQueryDef& q1 = QueryByNumber(1);
  const TpchResult r = q1.run(Db(), plain, q1.randomize(Db(), rng));
  // A/F, N/F, N/O, R/F.
  EXPECT_EQ(r.size(), 4u);
  for (const auto& row : r) {
    ASSERT_EQ(row.size(), 7u);
    EXPECT_GT(row[6], 0);                // count
    EXPECT_GE(row[3], row[4]);           // base >= discounted
  }
}

// The Q1-shaped grouped pushdown against a precomputed fixture: the SF
// 0.01 generator is deterministic (seed 19920101), so the three
// l_returnflag groups under shipdate <= 1998-09-02 have known quantities,
// prices, and counts. Checked through the fluent path (RunQ1Grouped
// compiles a GroupBy terminal) and through a hand-built raw
// QuerySpec/ConsumeSpec on the engine directly — both must hit the
// fixture exactly, on a scan engine and on a self-organizing one.
TEST(TpchQueriesTest, Q1GroupedMatchesPrecomputedFixture) {
  QueryParams p;
  p.date1 = DateToDays(1998, 9, 2);
  // {l_returnflag, sum(l_quantity), sum(l_extendedprice), count(*)}.
  const TpchResult fixture = {
      {0, 385947, 53870512803, 15114},
      {1, 752119, 105502414636, 29478},
      {2, 375170, 52476530501, 14753},
  };

  for (const char* kind : {"plain", "sideways"}) {
    // Fluent path.
    EngineSet es = MakeSet(kind);
    EXPECT_EQ(RunQ1Grouped(Db(), es, p), fixture) << kind << " fluent";

    // Raw QuerySpec path on the same (already cracked) engine.
    QuerySpec spec;
    spec.selections = {
        {"l_shipdate", RangePredicate{kMinValue, p.date1, true, true}}};
    spec.projections = {"l_returnflag", "l_quantity", "l_extendedprice"};
    const ConsumeSpec consume = ConsumeSpec::GroupBy(
        "l_returnflag", {{AggregateOp::kSum, "l_quantity"},
                         {AggregateOp::kSum, "l_extendedprice"},
                         {AggregateOp::kCount, "l_quantity"}});
    const ExecuteResult raw = es.For("lineitem").Execute(spec, consume);
    TpchResult raw_rows;
    for (size_t g = 0; g < raw.groups.num_groups(); ++g) {
      raw_rows.push_back({raw.groups.keys[g], raw.groups.aggregates[0][g],
                          raw.groups.aggregates[1][g],
                          raw.groups.aggregates[2][g]});
    }
    EXPECT_EQ(raw_rows, fixture) << kind << " raw spec";
    EXPECT_EQ(raw.cost.reconstruct_micros, 0u) << kind;
  }
}

TEST(TpchQueriesTest, Q6RevenuePositiveAndStableAcrossRepeats) {
  EngineSet sideways = MakeSet("sideways");
  Rng rng(6);
  const TpchQueryDef& q6 = QueryByNumber(6);
  const QueryParams params = q6.randomize(Db(), rng);
  const TpchResult first = q6.run(Db(), sideways, params);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_GT(first[0][0], 0);
  // Cracking continues across repeats; the answer must not drift.
  for (int rep = 0; rep < 4; ++rep) {
    EXPECT_EQ(q6.run(Db(), sideways, params), first) << "repeat " << rep;
  }
}

TEST(TpchQueriesTest, Q3TopTenOrderedByRevenue) {
  EngineSet plain = MakeSet("plain");
  Rng rng(7);
  const TpchQueryDef& q3 = QueryByNumber(3);
  const TpchResult r = q3.run(Db(), plain, q3.randomize(Db(), rng));
  EXPECT_LE(r.size(), 10u);
  for (size_t i = 1; i < r.size(); ++i) {
    EXPECT_GE(r[i - 1][1], r[i][1]);  // revenue descending
  }
}

TEST(TpchQueriesTest, Q19HandlesEmptyBranches) {
  EngineSet plain = MakeSet("plain");
  const TpchQueryDef& q19 = QueryByNumber(19);
  // Extreme quantities make branches empty; the query must return 0, not
  // fail.
  QueryParams p;
  p.code1 = p.code2 = p.code3 = 0;
  p.int1 = p.int2 = p.int3 = 1000;
  const TpchResult r = q19.run(Db(), plain, p);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0][0], 0);
}

}  // namespace
}  // namespace crackdb::tpch
