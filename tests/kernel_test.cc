// The kernel contract (docs/KERNELS.md): the scalar reference arm is the
// spec, every other arm must agree with it —
//  - bit-identically for the scan, fold, and gather families, over
//    randomized sizes, misaligned base pointers, ragged tails, empty
//    inputs, and all-equal columns;
//  - for the crack family: identical split positions and identical
//    per-side (head, tail) multisets (intra-piece order is arm-specific),
//    plus the crack invariant itself;
//  - dispatch resolution (ResolveIsa) is a pure, testable rule;
//  - whole engines give identical answers under ForceIsa(kScalar) and
//    ForceIsa(DetectedIsa()) across the oracle query matrix.

#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "cracking/cracker_index.h"
#include "engine/database.h"
#include "engine/engine_factory.h"
#include "engine/query.h"
#include "kernels/cpu_dispatch.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;
using bench::ZipRows;
using kernels::BitmapMode;
using kernels::FoldOp;
using kernels::Isa;
using kernels::KernelTable;
using kernels::Table;

/// Restores the dispatched arm on scope exit, whatever a test forced.
class IsaGuard {
 public:
  IsaGuard() : saved_(kernels::ActiveIsa()) {}
  ~IsaGuard() { kernels::ForceIsa(saved_); }

 private:
  Isa saved_;
};

/// The arms tested against the scalar reference. On machines without
/// AVX2, Table(kAvx2) aliases the portable arm — the comparison still
/// runs, it is just not independent.
std::vector<Isa> SimdArms() { return {Isa::kSse2, Isa::kAvx2}; }

/// Sizes covering empty, sub-vector, exact-vector, vector+tail, word
/// boundaries (63/64/65 for the bitmap kernels), and large-with-ragged-end.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31,
                         33, 63, 64, 65, 100, 127, 128, 255, 1000, 4097};

std::vector<Value> RandomValues(Rng* rng, size_t n, Value domain) {
  std::vector<Value> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng->Uniform(1, domain);
  return v;
}

/// Predicates covering every bound shape: closed/open/half-open, point,
/// everything, nothing, and the kMinValue/kMaxValue saturation edges.
std::vector<RangePredicate> OraclePredicates(Value domain) {
  const Value third = domain / 3;
  return {
      RangePredicate::Closed(third, 2 * third),
      RangePredicate::Open(third, 2 * third),
      RangePredicate::HalfOpen(third, 2 * third),
      RangePredicate::Point(third),
      RangePredicate{},                              // matches everything
      RangePredicate::Open(third, third),            // empty interval
      RangePredicate::Closed(domain + 1, domain * 2),  // above all values
      RangePredicate{kMinValue, third, true, true},
      RangePredicate{kMinValue, third, false, true},  // excluded kMinValue
      RangePredicate{third, kMaxValue, true, true},
      RangePredicate{third, kMaxValue, true, false},  // excluded kMaxValue
      RangePredicate{kMinValue, kMaxValue, false, false},
  };
}

std::vector<Bound> OracleBounds(Value domain) {
  return {
      {domain / 2, true},  {domain / 2, false}, {1, true},
      {1, false},          {domain, true},      {domain + 1, false},
      {kMinValue, true},   {kMinValue, false},  {kMaxValue, true},
      {kMaxValue, false},
  };
}

using PairMultiset = std::multiset<std::pair<Value, Value>>;

PairMultiset PairsOf(const std::vector<Value>& head,
                     const std::vector<Value>& tail, size_t begin,
                     size_t end) {
  PairMultiset out;
  for (size_t i = begin; i < end; ++i) out.insert({head[i], tail[i]});
  return out;
}

// ---------------------------------------------------------------------------
// Dispatch resolution
// ---------------------------------------------------------------------------

TEST(CpuDispatchTest, ResolveIsaRules) {
  using kernels::ResolveIsa;
  // Unset env: the detected arm.
  EXPECT_EQ(ResolveIsa(nullptr, Isa::kAvx2), Isa::kAvx2);
  EXPECT_EQ(ResolveIsa("", Isa::kSse2), Isa::kSse2);
  // Narrowing overrides are honored.
  EXPECT_EQ(ResolveIsa("scalar", Isa::kAvx2), Isa::kScalar);
  EXPECT_EQ(ResolveIsa("sse2", Isa::kAvx2), Isa::kSse2);
  EXPECT_EQ(ResolveIsa("avx2", Isa::kAvx2), Isa::kAvx2);
  // Widening past the CPU clamps to the detected arm, never crashes.
  EXPECT_EQ(ResolveIsa("avx2", Isa::kSse2), Isa::kSse2);
  EXPECT_EQ(ResolveIsa("avx2", Isa::kScalar), Isa::kScalar);
  // Unknown spellings fall back to the detected arm.
  EXPECT_EQ(ResolveIsa("turbo", Isa::kAvx2), Isa::kAvx2);
  EXPECT_EQ(ResolveIsa("AVX2", Isa::kSse2), Isa::kSse2);  // case-sensitive
}

TEST(CpuDispatchTest, ParseAndNameRoundTrip) {
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    Isa parsed = Isa::kScalar;
    ASSERT_TRUE(kernels::ParseIsa(kernels::IsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  Isa parsed = Isa::kScalar;
  EXPECT_TRUE(kernels::ParseIsa("auto", &parsed));
  EXPECT_EQ(parsed, kernels::DetectedIsa());
  EXPECT_FALSE(kernels::ParseIsa("neon", &parsed));
  EXPECT_FALSE(kernels::ParseIsa(nullptr, &parsed));
}

TEST(CpuDispatchTest, ForceIsaClampsToDetected) {
  IsaGuard guard;
  const Isa detected = kernels::DetectedIsa();
  EXPECT_EQ(kernels::ForceIsa(Isa::kScalar), Isa::kScalar);
  EXPECT_EQ(kernels::ActiveIsa(), Isa::kScalar);
  const Isa widest = kernels::ForceIsa(Isa::kAvx2);
  EXPECT_EQ(widest, std::min(Isa::kAvx2, detected));
  EXPECT_EQ(kernels::ActiveIsa(), widest);
}

// ---------------------------------------------------------------------------
// Crack family: split + per-side multisets + invariant vs the scalar arm
// ---------------------------------------------------------------------------

TEST(KernelCrackTest, CrackInTwoMatchesScalarReference) {
  Rng rng(7);
  const Value domain = 500;  // small domain: plenty of duplicates
  for (Isa arm : SimdArms()) {
    const KernelTable& table = Table(arm);
    for (size_t n : kSizes) {
      const std::vector<Value> head0 = RandomValues(&rng, n, domain);
      const std::vector<Value> tail0 = RandomValues(&rng, n, domain);
      for (const Bound& bound : OracleBounds(domain)) {
        std::vector<Value> sh = head0, st = tail0;
        std::vector<Value> ah = head0, at = tail0;
        const size_t split_s =
            Table(Isa::kScalar).crack_in_two(sh.data(), st.data(), n, bound);
        const size_t split_a =
            table.crack_in_two(ah.data(), at.data(), n, bound);
        ASSERT_EQ(split_a, split_s)
            << kernels::IsaName(arm) << " n=" << n << " bound=" << bound.value
            << (bound.inclusive ? " incl" : " excl");
        // Same side contents (order within a side is arm-specific).
        EXPECT_EQ(PairsOf(ah, at, 0, split_a), PairsOf(sh, st, 0, split_s));
        EXPECT_EQ(PairsOf(ah, at, split_a, n), PairsOf(sh, st, split_s, n));
        // And the crack invariant itself.
        for (size_t i = 0; i < split_a; ++i) {
          ASSERT_FALSE(SatisfiesBound(bound, ah[i]));
        }
        for (size_t i = split_a; i < n; ++i) {
          ASSERT_TRUE(SatisfiesBound(bound, ah[i]));
        }
      }
    }
  }
}

TEST(KernelCrackTest, CrackInTwoAllEqualColumn) {
  for (Isa arm : SimdArms()) {
    for (size_t n : {size_t{5}, size_t{64}, size_t{101}}) {
      std::vector<Value> head(n, 42), tail(n, 7);
      for (const Bound bound :
           {Bound{42, true}, Bound{42, false}, Bound{41, false}}) {
        std::vector<Value> h = head, t = tail;
        const size_t split =
            Table(arm).crack_in_two(h.data(), t.data(), n, bound);
        EXPECT_EQ(split, SatisfiesBound(bound, 42) ? 0u : n);
        EXPECT_EQ(h, head);
        EXPECT_EQ(t, tail);
      }
    }
  }
}

TEST(KernelCrackTest, CrackInThreeMatchesScalarReference) {
  Rng rng(11);
  const Value domain = 500;
  const std::vector<std::pair<Bound, Bound>> bound_pairs = {
      {{100, true}, {300, false}},  {{100, false}, {300, true}},
      {{1, true}, {domain, false}}, {{250, true}, {250, false}},
      {{kMinValue, true}, {200, true}}, {{200, true}, {kMaxValue, false}},
      {{kMinValue, true}, {kMaxValue, false}},
  };
  for (Isa arm : SimdArms()) {
    const KernelTable& table = Table(arm);
    for (size_t n : kSizes) {
      const std::vector<Value> head0 = RandomValues(&rng, n, domain);
      const std::vector<Value> tail0 = RandomValues(&rng, n, domain);
      for (const auto& [lo, hi] : bound_pairs) {
        std::vector<Value> sh = head0, st = tail0;
        std::vector<Value> ah = head0, at = tail0;
        size_t smid = 0, shi = 0, amid = 0, ahi = 0;
        Table(Isa::kScalar)
            .crack_in_three(sh.data(), st.data(), n, lo, hi, &smid, &shi);
        table.crack_in_three(ah.data(), at.data(), n, lo, hi, &amid, &ahi);
        ASSERT_EQ(amid, smid) << kernels::IsaName(arm) << " n=" << n;
        ASSERT_EQ(ahi, shi) << kernels::IsaName(arm) << " n=" << n;
        EXPECT_EQ(PairsOf(ah, at, 0, amid), PairsOf(sh, st, 0, smid));
        EXPECT_EQ(PairsOf(ah, at, amid, ahi), PairsOf(sh, st, smid, shi));
        EXPECT_EQ(PairsOf(ah, at, ahi, n), PairsOf(sh, st, shi, n));
        for (size_t i = 0; i < amid; ++i) {
          ASSERT_FALSE(SatisfiesBound(lo, ah[i]));
        }
        for (size_t i = amid; i < ahi; ++i) {
          ASSERT_TRUE(SatisfiesBound(lo, ah[i]) &&
                      !SatisfiesBound(hi, ah[i]));
        }
        for (size_t i = ahi; i < n; ++i) {
          ASSERT_TRUE(SatisfiesBound(hi, ah[i]));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Scan / fold / gather families: bit-identical vs the scalar arm
// ---------------------------------------------------------------------------

TEST(KernelScanTest, CountSelectFilterMatchScalarReference) {
  Rng rng(23);
  const Value domain = 300;
  for (Isa arm : SimdArms()) {
    const KernelTable& table = Table(arm);
    for (size_t n : kSizes) {
      // +3 backing slots so the same data can be scanned at misaligned
      // base pointers (offsets 0..2).
      const std::vector<Value> backing = RandomValues(&rng, n + 3, domain);
      for (size_t off : {size_t{0}, size_t{1}, size_t{2}}) {
        const Value* values = backing.data() + off;
        for (const RangePredicate& pred : OraclePredicates(domain)) {
          EXPECT_EQ(table.count_range(values, n, pred),
                    Table(Isa::kScalar).count_range(values, n, pred));
          std::vector<Key> got{9999}, want{9999};  // pre-seeded: appends only
          Table(Isa::kScalar).select_range(values, n, pred, 100, &want);
          table.select_range(values, n, pred, 100, &got);
          EXPECT_EQ(got, want) << kernels::IsaName(arm) << " n=" << n;
        }
      }
      // filter_keys: a shuffled key list over the backing column.
      std::vector<Key> keys(n);
      for (size_t i = 0; i < n; ++i) keys[i] = static_cast<Key>(i);
      for (size_t i = n; i > 1; --i) {
        std::swap(keys[i - 1],
                  keys[rng.Uniform(0, static_cast<Value>(i - 1))]);
      }
      for (const RangePredicate& pred : OraclePredicates(domain)) {
        std::vector<Key> got, want;
        Table(Isa::kScalar)
            .filter_keys(backing.data(), keys.data(), n, pred, &want);
        table.filter_keys(backing.data(), keys.data(), n, pred, &got);
        EXPECT_EQ(got, want) << kernels::IsaName(arm) << " n=" << n;
      }
    }
  }
}

TEST(KernelScanTest, MatchBitmapMatchesScalarReference) {
  Rng rng(31);
  const Value domain = 300;
  for (Isa arm : SimdArms()) {
    const KernelTable& table = Table(arm);
    for (size_t n : kSizes) {
      const std::vector<Value> values = RandomValues(&rng, n, domain);
      const size_t words = (n + 63) / 64 + 1;  // +1: guard word stays put
      // Unaligned [begin, end) slices inside [0, n).
      const std::vector<std::pair<size_t, size_t>> slices = {
          {0, n}, {std::min<size_t>(1, n), n}, {n / 3, n - n / 3},
          {std::min<size_t>(63, n), n}, {0, 0}};
      for (const auto& [begin, end] : slices) {
        if (begin > end) continue;
        for (BitmapMode mode :
             {BitmapMode::kAssign, BitmapMode::kAnd, BitmapMode::kOr}) {
          for (const RangePredicate& pred : OraclePredicates(domain)) {
            // Random pre-existing words: combine semantics must agree too.
            std::vector<uint64_t> want(words), got(words);
            for (size_t w = 0; w < words; ++w) {
              want[w] = rng.Next();
              got[w] = want[w];
            }
            Table(Isa::kScalar)
                .match_bitmap(values.data(), begin, end, pred, want.data(),
                              mode);
            table.match_bitmap(values.data(), begin, end, pred, got.data(),
                               mode);
            EXPECT_EQ(got, want)
                << kernels::IsaName(arm) << " n=" << n << " [" << begin
                << "," << end << ") mode=" << static_cast<int>(mode);
          }
        }
      }
    }
  }
}

TEST(KernelFoldTest, FoldsMatchScalarReference) {
  Rng rng(43);
  const Value domain = 1'000'000;
  for (Isa arm : SimdArms()) {
    const KernelTable& table = Table(arm);
    for (size_t n : kSizes) {
      const std::vector<Value> backing = RandomValues(&rng, n + 3, domain);
      std::vector<Key> keys(n);
      for (size_t i = 0; i < n; ++i) keys[i] = static_cast<Key>(i);
      for (size_t i = n; i > 1; --i) {
        std::swap(keys[i - 1],
                  keys[rng.Uniform(0, static_cast<Value>(i - 1))]);
      }
      for (FoldOp op : {FoldOp::kSum, FoldOp::kMin, FoldOp::kMax}) {
        for (size_t off : {size_t{0}, size_t{1}}) {
          // Fresh accumulator.
          Value acc_s = 0, acc_a = 0;
          bool valid_s = false, valid_a = false;
          Table(Isa::kScalar)
              .fold_span(op, backing.data() + off, n, &acc_s, &valid_s);
          table.fold_span(op, backing.data() + off, n, &acc_a, &valid_a);
          EXPECT_EQ(acc_a, acc_s) << kernels::IsaName(arm) << " n=" << n;
          EXPECT_EQ(valid_a, valid_s);
          // Pre-seeded accumulator: merge semantics must agree.
          acc_s = acc_a = -17;
          valid_s = valid_a = true;
          Table(Isa::kScalar)
              .fold_span(op, backing.data() + off, n, &acc_s, &valid_s);
          table.fold_span(op, backing.data() + off, n, &acc_a, &valid_a);
          EXPECT_EQ(acc_a, acc_s);
          EXPECT_TRUE(valid_a && valid_s);
        }
        Value acc_s = 0, acc_a = 0;
        bool valid_s = false, valid_a = false;
        Table(Isa::kScalar)
            .fold_gather(op, backing.data(), keys.data(), n, &acc_s,
                         &valid_s);
        table.fold_gather(op, backing.data(), keys.data(), n, &acc_a,
                          &valid_a);
        EXPECT_EQ(acc_a, acc_s) << kernels::IsaName(arm) << " n=" << n;
        EXPECT_EQ(valid_a, valid_s);
      }
    }
  }
}

TEST(KernelFoldTest, SumWrapsModulo64AcrossArms) {
  // Sums are defined to wrap modulo 2^64 so every arm (and sanitizer run)
  // agrees even on overflowing inputs.
  const std::vector<Value> big(9, kMaxValue);
  Value want = 0;
  bool want_valid = false;
  Table(Isa::kScalar)
      .fold_span(FoldOp::kSum, big.data(), big.size(), &want, &want_valid);
  for (Isa arm : SimdArms()) {
    Value got = 0;
    bool got_valid = false;
    Table(arm).fold_span(FoldOp::kSum, big.data(), big.size(), &got,
                         &got_valid);
    EXPECT_EQ(got, want) << kernels::IsaName(arm);
    EXPECT_TRUE(got_valid);
  }
}

TEST(KernelFoldTest, EmptyFoldLeavesAccumulatorUntouched) {
  for (Isa arm : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    for (FoldOp op : {FoldOp::kSum, FoldOp::kMin, FoldOp::kMax}) {
      Value acc = 123;
      bool valid = false;
      Table(arm).fold_span(op, nullptr, 0, &acc, &valid);
      EXPECT_EQ(acc, 123);
      EXPECT_FALSE(valid);
      Table(arm).fold_gather(op, nullptr, nullptr, 0, &acc, &valid);
      EXPECT_EQ(acc, 123);
      EXPECT_FALSE(valid);
    }
  }
}

// ---------------------------------------------------------------------------
// fold_group: the grouped-fold kernel, scalar arm as the spec
// ---------------------------------------------------------------------------

Value InitAcc(FoldOp op) {
  switch (op) {
    case FoldOp::kSum:
      return 0;
    case FoldOp::kMin:
      return kMaxValue;
    case FoldOp::kMax:
      return kMinValue;
  }
  return 0;
}

TEST(KernelFoldGroupTest, FoldGroupMatchesScalarReference) {
  Rng rng(67);
  const Value domain = 1'000'000;
  // Group counts from one-group (maximum accumulator contention, the shape
  // that breaks conflict-unsafe SIMD scatters) to more groups than rows.
  const size_t group_counts[] = {1, 2, 3, 16, 257, 5000};
  for (Isa arm : SimdArms()) {
    const KernelTable& table = Table(arm);
    for (size_t n : kSizes) {
      const std::vector<Value> values = RandomValues(&rng, n + 3, domain);
      std::vector<Key> keys(n);
      for (size_t i = 0; i < n; ++i) keys[i] = static_cast<Key>(i);
      for (size_t i = n; i > 1; --i) {
        std::swap(keys[i - 1],
                  keys[rng.Uniform(0, static_cast<Value>(i - 1))]);
      }
      for (size_t groups : group_counts) {
        std::vector<uint32_t> group_of(n);
        for (size_t i = 0; i < n; ++i) {
          group_of[i] = static_cast<uint32_t>(
              rng.Uniform(0, static_cast<Value>(groups) - 1));
        }
        for (FoldOp op : {FoldOp::kSum, FoldOp::kMin, FoldOp::kMax}) {
          // Gathered (keys != nullptr) variant, fresh accumulators.
          std::vector<Value> want(groups, InitAcc(op));
          std::vector<Value> got = want;
          Table(Isa::kScalar)
              .fold_group(op, values.data(), keys.data(), group_of.data(), n,
                          want.data());
          table.fold_group(op, values.data(), keys.data(), group_of.data(),
                           n, got.data());
          EXPECT_EQ(got, want) << kernels::IsaName(arm) << " n=" << n
                               << " groups=" << groups
                               << " op=" << static_cast<int>(op);
          // Contiguous (keys == nullptr) variant, pre-seeded accumulators:
          // continuing a previous chunk's partials must agree too.
          Table(Isa::kScalar)
              .fold_group(op, values.data(), nullptr, group_of.data(), n,
                          want.data());
          table.fold_group(op, values.data(), nullptr, group_of.data(), n,
                           got.data());
          EXPECT_EQ(got, want) << kernels::IsaName(arm) << " n=" << n
                               << " groups=" << groups << " contiguous";
        }
      }
    }
  }
}

TEST(KernelFoldGroupTest, GroupedSumWrapsModulo64AcrossArms) {
  // Grouped sums wrap modulo 2^64, like the scalar folds, so every arm
  // agrees bit-for-bit even when a group's accumulator saturates.
  const std::vector<Value> big(13, kMaxValue);
  std::vector<Key> keys(big.size());
  for (size_t i = 0; i < big.size(); ++i) keys[i] = static_cast<Key>(i);
  std::vector<uint32_t> group_of(big.size());
  for (size_t i = 0; i < big.size(); ++i) {
    group_of[i] = static_cast<uint32_t>(i % 2);
  }
  std::vector<Value> want(2, 0);
  Table(Isa::kScalar)
      .fold_group(FoldOp::kSum, big.data(), keys.data(), group_of.data(),
                  big.size(), want.data());
  for (Isa arm : SimdArms()) {
    std::vector<Value> got(2, 0);
    Table(arm).fold_group(FoldOp::kSum, big.data(), keys.data(),
                          group_of.data(), big.size(), got.data());
    EXPECT_EQ(got, want) << kernels::IsaName(arm);
  }
}

TEST(KernelFoldGroupTest, EmptyFoldGroupLeavesAccumulatorsUntouched) {
  for (Isa arm : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    for (FoldOp op : {FoldOp::kSum, FoldOp::kMin, FoldOp::kMax}) {
      std::vector<Value> accs = {11, 22, 33};
      Table(arm).fold_group(op, nullptr, nullptr, nullptr, 0, accs.data());
      EXPECT_EQ(accs, (std::vector<Value>{11, 22, 33}))
          << kernels::IsaName(arm);
    }
  }
}

TEST(KernelGatherTest, GatherMatchesScalarReference) {
  Rng rng(59);
  for (Isa arm : SimdArms()) {
    for (size_t n : kSizes) {
      const std::vector<Value> values = RandomValues(&rng, n + 1, 1'000);
      std::vector<Key> keys(n);
      for (size_t i = 0; i < n; ++i) {
        keys[i] = static_cast<Key>(rng.Uniform(0, static_cast<Value>(n)));
      }
      std::vector<Value> want(n), got(n);
      Table(Isa::kScalar).gather(values.data(), keys.data(), n, want.data());
      Table(arm).gather(values.data(), keys.data(), n, got.data());
      EXPECT_EQ(got, want) << kernels::IsaName(arm) << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Encoded-domain kernels: packed + RLE entries vs the scalar arm
// ---------------------------------------------------------------------------

/// Packs `codes` (each < 2^bits) into the shared bit-packed layout.
std::vector<uint64_t> PackCodes(const std::vector<uint64_t>& codes,
                                unsigned bits) {
  std::vector<uint64_t> words(kernels::PackedWordCount(bits, codes.size()),
                              0);
  if (bits == 0) return words;  // all codes are 0; words stay zero
  for (size_t i = 0; i < codes.size(); ++i) {
    kernels::PackedSet(words.data(), bits, i, codes[i]);
  }
  return words;
}

/// Code-domain intervals covering full range, interior, point, and the
/// single-code edge cases for a given bit width.
std::vector<std::pair<uint64_t, uint64_t>> CodeRanges(unsigned bits) {
  const uint64_t max =
      bits == 0 ? 0 : (bits == 63 ? (uint64_t{1} << 63) - 1
                                  : (uint64_t{1} << bits) - 1);
  std::vector<std::pair<uint64_t, uint64_t>> ranges = {
      {0, max}, {0, 0}, {max, max}, {max / 2, max / 2}};
  if (max >= 2) {
    ranges.push_back({max / 3, (2 * (max / 3))});
    ranges.push_back({1, max - 1});
  }
  return ranges;
}

TEST(KernelPackedTest, PackedKernelsMatchScalarReference) {
  Rng rng(71);
  const unsigned kBits[] = {0, 1, 7, 8, 31, 32, 63};
  for (Isa arm : SimdArms()) {
    const KernelTable& table = Table(arm);
    for (size_t n : kSizes) {
      for (unsigned bits : kBits) {
        std::vector<uint64_t> codes(n, 0);
        if (bits > 0) {
          const uint64_t mask = bits == 63 ? (uint64_t{1} << 63) - 1
                                           : (uint64_t{1} << bits) - 1;
          for (size_t i = 0; i < n; ++i) codes[i] = rng.Next() & mask;
        }
        const std::vector<uint64_t> words = PackCodes(codes, bits);
        for (const auto& [lo, hi] : CodeRanges(bits)) {
          // Local oracle: the scalar arm must itself agree with a direct
          // loop over the unpacked codes.
          size_t oracle = 0;
          for (size_t i = 0; i < n; ++i) {
            if (codes[i] >= lo && codes[i] <= hi) ++oracle;
          }
          const size_t want =
              Table(Isa::kScalar).count_packed(words.data(), bits, n, lo, hi);
          ASSERT_EQ(want, oracle) << "scalar vs oracle n=" << n
                                  << " bits=" << bits;
          EXPECT_EQ(table.count_packed(words.data(), bits, n, lo, hi), want)
              << kernels::IsaName(arm) << " n=" << n << " bits=" << bits;

          std::vector<Key> got{777}, want_keys{777};  // appends only
          Table(Isa::kScalar)
              .select_packed(words.data(), bits, n, lo, hi, 100, &want_keys);
          table.select_packed(words.data(), bits, n, lo, hi, 100, &got);
          EXPECT_EQ(got, want_keys)
              << kernels::IsaName(arm) << " n=" << n << " bits=" << bits;

          // Fold with a negative base and with a wrapping (INT64_MIN)
          // frame base; untouched-when-empty and merge semantics both.
          for (Value base : {Value{0}, Value{-1'000'000}, kMinValue}) {
            for (FoldOp op : {FoldOp::kSum, FoldOp::kMin, FoldOp::kMax}) {
              Value acc_s = 123, acc_a = 123;
              bool valid_s = false, valid_a = false;
              Table(Isa::kScalar)
                  .fold_packed(op, words.data(), bits, n, base, lo, hi,
                               &acc_s, &valid_s);
              table.fold_packed(op, words.data(), bits, n, base, lo, hi,
                                &acc_a, &valid_a);
              EXPECT_EQ(acc_a, acc_s)
                  << kernels::IsaName(arm) << " n=" << n << " bits=" << bits
                  << " base=" << base << " op=" << static_cast<int>(op);
              EXPECT_EQ(valid_a, valid_s);
              if (!valid_s) {
                EXPECT_EQ(acc_s, 123);  // untouched when empty
              }
            }
          }
        }
      }
    }
  }
}

struct RleRuns {
  std::vector<Value> values;
  std::vector<uint32_t> starts;
};

/// Random RLE shape: `num_runs` runs over a small value domain, with some
/// zero-length runs mixed in (legal: run_starts is merely non-decreasing).
RleRuns MakeRuns(Rng* rng, size_t num_runs, Value domain) {
  RleRuns r;
  r.starts.push_back(0);
  uint32_t pos = 0;
  for (size_t i = 0; i < num_runs; ++i) {
    r.values.push_back(rng->Uniform(1, domain));
    const uint32_t len =
        rng->Bernoulli(0.1)
            ? 0
            : static_cast<uint32_t>(rng->Uniform(1, 40));
    pos += len;
    r.starts.push_back(pos);
  }
  return r;
}

TEST(KernelRleTest, RleKernelsMatchScalarReference) {
  Rng rng(83);
  const Value domain = 300;
  const size_t run_counts[] = {0, 1, 2, 3, 8, 17, 64, 255, 1000};
  for (Isa arm : SimdArms()) {
    const KernelTable& table = Table(arm);
    for (size_t num_runs : run_counts) {
      const RleRuns r = MakeRuns(&rng, num_runs, domain);
      for (const RangePredicate& pred : OraclePredicates(domain)) {
        // Local oracle for the scalar arm.
        size_t oracle = 0;
        for (size_t i = 0; i < num_runs; ++i) {
          if (pred.Matches(r.values[i])) {
            oracle += r.starts[i + 1] - r.starts[i];
          }
        }
        const size_t want = Table(Isa::kScalar)
                                .count_rle(r.values.data(), r.starts.data(),
                                           num_runs, pred);
        ASSERT_EQ(want, oracle) << "scalar vs oracle runs=" << num_runs;
        EXPECT_EQ(table.count_rle(r.values.data(), r.starts.data(), num_runs,
                                  pred),
                  want)
            << kernels::IsaName(arm) << " runs=" << num_runs;

        std::vector<Key> got{777}, want_keys{777};
        Table(Isa::kScalar)
            .select_rle(r.values.data(), r.starts.data(), num_runs, pred,
                        50, &want_keys);
        table.select_rle(r.values.data(), r.starts.data(), num_runs, pred,
                         50, &got);
        EXPECT_EQ(got, want_keys)
            << kernels::IsaName(arm) << " runs=" << num_runs;

        for (FoldOp op : {FoldOp::kSum, FoldOp::kMin, FoldOp::kMax}) {
          Value acc_s = 123, acc_a = 123;
          bool valid_s = false, valid_a = false;
          Table(Isa::kScalar)
              .fold_rle(op, r.values.data(), r.starts.data(), num_runs, pred,
                        &acc_s, &valid_s);
          table.fold_rle(op, r.values.data(), r.starts.data(), num_runs,
                         pred, &acc_a, &valid_a);
          EXPECT_EQ(acc_a, acc_s) << kernels::IsaName(arm)
                                  << " runs=" << num_runs
                                  << " op=" << static_cast<int>(op);
          EXPECT_EQ(valid_a, valid_s);
          if (!valid_s) {
            EXPECT_EQ(acc_s, 123);
          }
        }
      }
    }
  }
}

TEST(KernelRleTest, RleSumWrapsModulo64AcrossArms) {
  // A kMaxValue run long enough to overflow: sums add value * run_length
  // wrapping mod 2^64, so every arm agrees bit-for-bit.
  const std::vector<Value> values = {kMaxValue, 1};
  const std::vector<uint32_t> starts = {0, 1000, 1001};
  Value want = 0;
  bool want_valid = false;
  Table(Isa::kScalar)
      .fold_rle(FoldOp::kSum, values.data(), starts.data(), 2,
                RangePredicate{}, &want, &want_valid);
  for (Isa arm : SimdArms()) {
    Value got = 0;
    bool got_valid = false;
    Table(arm).fold_rle(FoldOp::kSum, values.data(), starts.data(), 2,
                        RangePredicate{}, &got, &got_valid);
    EXPECT_EQ(got, want) << kernels::IsaName(arm);
    EXPECT_TRUE(got_valid);
  }
}

// ---------------------------------------------------------------------------
// Engine equality: whole queries answer identically on every arm
// ---------------------------------------------------------------------------

class KernelEngineEqualityTest : public ::testing::Test {
 protected:
  static constexpr Value kDomain = 1'000;
  static constexpr size_t kRows = 3'000;

  void SetUp() override {
    Rng rng(4321);
    source_ =
        &bench::CreateUniformRelation(&catalog_, "R", 3, kRows, kDomain, &rng);
  }

  struct Answers {
    std::vector<std::multiset<std::vector<Value>>> rows;
    std::vector<size_t> counts;
    std::vector<Value> aggregates;
    /// One flattened {key, count, sum, kCount} sequence per grouped query;
    /// the finalize contract (keys ascending) makes them comparable as-is.
    std::vector<std::vector<Value>> groups;
  };

  /// The oracle matrix: materializing, counting, and aggregating query
  /// shapes, conjunctive and disjunctive, cold-started per arm so cracking
  /// happens entirely under the forced kernel arm.
  Answers RunMatrix(const std::string& kind) {
    DatabaseOptions options;
    options.pool_threads = 2;
    Database db(options);
    PartitionSpec spec;
    spec.kind = PartitionSpec::Kind::kRange;
    spec.num_partitions = 3;
    spec.column = AttrName(1);
    spec.domain_lo = 1;
    spec.domain_hi = kDomain;
    db.RegisterSharded("R", *source_, spec, kind);

    Answers a;
    const std::vector<std::pair<Value, Value>> ranges = {
        {10, 500}, {1, kDomain}, {400, 420}, {700, 300 /*empty*/}};
    for (const auto& [lo, hi] : ranges) {
      if (lo > hi) continue;
      auto rows = db.From("R")
                      .Where(AttrName(1), lo, hi)
                      .Project(AttrName(2), AttrName(3))
                      .Execute();
      EXPECT_TRUE(rows.ok()) << rows.error();
      a.rows.push_back(ZipRows(rows->rows));
      auto both = db.From("R")
                      .Where(AttrName(1), lo, hi)
                      .Where(AttrName(2), 100, 800)
                      .Project(AttrName(3))
                      .Execute();
      EXPECT_TRUE(both.ok()) << both.error();
      a.rows.push_back(ZipRows(both->rows));
      auto either = db.From("R")
                        .OrWhere(AttrName(1), lo, hi)
                        .OrWhere(AttrName(2), 900, kDomain)
                        .Project(AttrName(1))
                        .Execute();
      EXPECT_TRUE(either.ok()) << either.error();
      a.rows.push_back(ZipRows(either->rows));
      auto count =
          db.From("R").Where(AttrName(1), lo, hi).Count().Execute();
      EXPECT_TRUE(count.ok()) << count.error();
      a.counts.push_back(count->count);
      for (AggregateOp op :
           {AggregateOp::kSum, AggregateOp::kMin, AggregateOp::kMax}) {
        auto agg = db.From("R")
                       .Where(AttrName(1), lo, hi)
                       .Aggregate(op, AttrName(2))
                       .Execute();
        EXPECT_TRUE(agg.ok()) << agg.error();
        a.aggregates.push_back(agg->aggregate_valid ? agg->aggregate : -1);
      }
      auto grouped = db.From("R")
                         .Where(AttrName(1), lo, hi)
                         .GroupBy(AttrName(3))
                         .Aggregate(AggregateOp::kSum, AttrName(2))
                         .Aggregate(AggregateOp::kCount, AttrName(2))
                         .Execute();
      EXPECT_TRUE(grouped.ok()) << grouped.error();
      std::vector<Value> flat;
      flat.reserve(grouped->groups.num_groups() * 4);
      for (size_t g = 0; g < grouped->groups.num_groups(); ++g) {
        flat.push_back(grouped->groups.keys[g]);
        flat.push_back(static_cast<Value>(grouped->groups.counts[g]));
        flat.push_back(grouped->groups.aggregates[0][g]);
        flat.push_back(grouped->groups.aggregates[1][g]);
      }
      a.groups.push_back(std::move(flat));
    }
    return a;
  }

  Catalog catalog_;
  Relation* source_ = nullptr;
};

TEST_F(KernelEngineEqualityTest, AllEnginesAnswerIdenticallyOnEveryArm) {
  IsaGuard guard;
  for (const EngineKindEntry& entry : kEngineKinds) {
    kernels::ForceIsa(Isa::kScalar);
    Answers scalar = RunMatrix(entry.name);
    kernels::ForceIsa(kernels::DetectedIsa());
    Answers active = RunMatrix(entry.name);
    ASSERT_EQ(scalar.rows.size(), active.rows.size());
    for (size_t i = 0; i < scalar.rows.size(); ++i) {
      EXPECT_EQ(scalar.rows[i], active.rows[i])
          << entry.name << " query " << i << " diverges between scalar and "
          << kernels::IsaName(kernels::DetectedIsa());
    }
    EXPECT_EQ(scalar.counts, active.counts) << entry.name;
    EXPECT_EQ(scalar.aggregates, active.aggregates) << entry.name;
    EXPECT_EQ(scalar.groups, active.groups) << entry.name;
  }
}

}  // namespace
}  // namespace crackdb
