#include "cracking/cracker_index.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace crackdb {
namespace {

TEST(BoundTest, CutOrder) {
  // (v, inclusive) cuts just below v, (v, exclusive) just above it.
  EXPECT_TRUE(BoundLess(Bound{5, true}, Bound{5, false}));
  EXPECT_FALSE(BoundLess(Bound{5, false}, Bound{5, true}));
  EXPECT_TRUE(BoundLess(Bound{4, false}, Bound{5, true}));
  EXPECT_FALSE(BoundLess(Bound{5, true}, Bound{5, true}));
}

TEST(BoundTest, SatisfiesBound) {
  EXPECT_TRUE(SatisfiesBound(Bound{5, true}, 5));
  EXPECT_FALSE(SatisfiesBound(Bound{5, false}, 5));
  EXPECT_TRUE(SatisfiesBound(Bound{5, false}, 6));
  EXPECT_FALSE(SatisfiesBound(Bound{5, true}, 4));
}

TEST(CrackerIndexTest, EmptyIndex) {
  CrackerIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.num_splits(), 0u);
  const auto piece = index.FindPiece(Bound{10, true}, 100);
  EXPECT_EQ(piece.begin, 0u);
  EXPECT_EQ(piece.end, 100u);
  EXPECT_FALSE(piece.has_lower);
  EXPECT_FALSE(piece.has_upper);
  const auto pieces = index.Pieces(100);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].begin, 0u);
  EXPECT_EQ(pieces[0].end, 100u);
}

TEST(CrackerIndexTest, AddAndFindSplit) {
  CrackerIndex index;
  index.AddSplit(Bound{10, true}, 40);
  index.AddSplit(Bound{20, false}, 70);
  EXPECT_EQ(index.num_splits(), 2u);
  EXPECT_EQ(index.FindSplit(Bound{10, true}).value(), 40u);
  EXPECT_EQ(index.FindSplit(Bound{20, false}).value(), 70u);
  EXPECT_FALSE(index.FindSplit(Bound{10, false}).has_value());
  EXPECT_FALSE(index.FindSplit(Bound{15, true}).has_value());
}

TEST(CrackerIndexTest, FindPieceBetweenSplits) {
  CrackerIndex index;
  index.AddSplit(Bound{10, true}, 40);
  index.AddSplit(Bound{20, true}, 70);
  const auto piece = index.FindPiece(Bound{15, true}, 100);
  EXPECT_EQ(piece.begin, 40u);
  EXPECT_EQ(piece.end, 70u);
  ASSERT_TRUE(piece.has_lower);
  ASSERT_TRUE(piece.has_upper);
  EXPECT_EQ(piece.lower.value, 10);
  EXPECT_EQ(piece.upper.value, 20);
}

TEST(CrackerIndexTest, FindPieceAtExactSplit) {
  CrackerIndex index;
  index.AddSplit(Bound{10, true}, 40);
  // The cut (10, true) is itself a split: floor is that split, the piece
  // starts there.
  const auto piece = index.FindPiece(Bound{10, true}, 100);
  EXPECT_EQ(piece.begin, 40u);
  EXPECT_EQ(piece.end, 100u);
}

TEST(CrackerIndexTest, PiecesEnumeration) {
  CrackerIndex index;
  index.AddSplit(Bound{10, true}, 30);
  index.AddSplit(Bound{20, false}, 60);
  index.AddSplit(Bound{30, true}, 80);
  const auto pieces = index.Pieces(100);
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0].begin, 0u);
  EXPECT_EQ(pieces[0].end, 30u);
  EXPECT_EQ(pieces[1].begin, 30u);
  EXPECT_EQ(pieces[1].end, 60u);
  EXPECT_EQ(pieces[2].begin, 60u);
  EXPECT_EQ(pieces[2].end, 80u);
  EXPECT_EQ(pieces[3].begin, 80u);
  EXPECT_EQ(pieces[3].end, 100u);
  EXPECT_FALSE(pieces[0].has_lower);
  EXPECT_TRUE(pieces[3].has_lower);
  EXPECT_FALSE(pieces[3].has_upper);
}

TEST(CrackerIndexTest, FindAreaCoversPredicate) {
  CrackerIndex index;
  index.AddSplit(Bound{10, true}, 30);
  index.AddSplit(Bound{20, false}, 60);
  // Predicate [10, 20] matches splits exactly: area = [30, 60).
  const PositionRange area =
      index.FindArea(RangePredicate::Closed(10, 20), 100);
  EXPECT_EQ(area.begin, 30u);
  EXPECT_EQ(area.end, 60u);
  // Wider predicate extends into neighbouring pieces.
  const PositionRange wide = index.FindArea(RangePredicate::Closed(5, 25), 100);
  EXPECT_EQ(wide.begin, 0u);
  EXPECT_EQ(wide.end, 100u);
}

TEST(CrackerIndexTest, ShiftPositions) {
  CrackerIndex index;
  index.AddSplit(Bound{10, true}, 30);
  index.AddSplit(Bound{20, true}, 60);
  index.ShiftPositions(60, +2);
  EXPECT_EQ(index.FindSplit(Bound{10, true}).value(), 30u);
  EXPECT_EQ(index.FindSplit(Bound{20, true}).value(), 62u);
  index.ShiftPositions(0, -1);
  EXPECT_EQ(index.FindSplit(Bound{10, true}).value(), 29u);
}

TEST(CrackerIndexTest, LazyDeletionAndRevival) {
  CrackerIndex index;
  index.AddSplit(Bound{10, true}, 30);
  index.AddSplit(Bound{20, true}, 60);
  index.MarkAllDeleted();
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.num_nodes(), 2u);
  EXPECT_FALSE(index.FindSplit(Bound{10, true}).has_value());
  // Deleted splits are invisible to piece queries.
  const auto piece = index.FindPiece(Bound{15, true}, 100);
  EXPECT_EQ(piece.begin, 0u);
  EXPECT_EQ(piece.end, 100u);
  // Re-adding revives in place without allocating.
  index.AddSplit(Bound{10, true}, 35);
  EXPECT_EQ(index.num_nodes(), 2u);
  EXPECT_EQ(index.num_splits(), 1u);
  EXPECT_EQ(index.FindSplit(Bound{10, true}).value(), 35u);
}

TEST(CrackerIndexTest, LiveSplitsAndClone) {
  CrackerIndex index;
  index.AddSplit(Bound{20, false}, 60);
  index.AddSplit(Bound{10, true}, 30);
  const auto splits = index.LiveSplits();
  ASSERT_EQ(splits.size(), 2u);
  EXPECT_EQ(splits[0].first.value, 10);
  EXPECT_EQ(splits[1].first.value, 20);
  const CrackerIndex clone = index.CloneLive();
  EXPECT_EQ(clone.num_splits(), 2u);
  EXPECT_EQ(clone.FindSplit(Bound{20, false}).value(), 60u);
}

TEST(CrackerIndexTest, EstimateExactOnBoundaryMatch) {
  CrackerIndex index;
  index.AddSplit(Bound{10, true}, 30);
  index.AddSplit(Bound{20, false}, 60);
  const auto est = index.EstimateMatches(RangePredicate::Closed(10, 20), 100);
  EXPECT_EQ(est.lower_bound, 30u);
  EXPECT_EQ(est.upper_bound, 30u);
  EXPECT_DOUBLE_EQ(est.interpolated, 30.0);
}

TEST(CrackerIndexTest, EstimateBoundsBoundaryPieces) {
  CrackerIndex index;
  index.AddSplit(Bound{10, true}, 30);
  index.AddSplit(Bound{20, true}, 60);
  index.AddSplit(Bound{30, true}, 80);
  // Predicate [15, 25]: middle piece [10,20)@[30,60) and piece [20,30)@
  // [60,80) are boundary pieces; nothing is fully inside.
  const auto est = index.EstimateMatches(RangePredicate::Closed(15, 25), 100);
  EXPECT_EQ(est.lower_bound, 0u);
  EXPECT_EQ(est.upper_bound, 50u);
  EXPECT_GT(est.interpolated, 0.0);
  EXPECT_LT(est.interpolated, 50.0);
}

/// Property: the AVL index agrees with a std::map reference under random
/// insertion orders; structural queries match on every prefix.
class CrackerIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrackerIndexPropertyTest, MatchesOrderedMapReference) {
  Rng rng(GetParam());
  CrackerIndex index;
  auto cmp = [](const Bound& a, const Bound& b) { return BoundLess(a, b); };
  std::map<Bound, size_t, decltype(cmp)> reference(cmp);
  const size_t store_size = 10000;

  for (int step = 0; step < 300; ++step) {
    const Bound b{rng.Uniform(0, 1000), rng.Bernoulli(0.5)};
    const size_t pos = static_cast<size_t>(rng.Uniform(0, 9999));
    index.AddSplit(b, pos);
    reference[b] = pos;

    EXPECT_EQ(index.num_splits(), reference.size());
    // Probe a random bound.
    const Bound probe{rng.Uniform(0, 1000), rng.Bernoulli(0.5)};
    auto it = reference.find(probe);
    const auto found = index.FindSplit(probe);
    EXPECT_EQ(found.has_value(), it != reference.end());
    if (found.has_value()) {
      EXPECT_EQ(*found, it->second);
    }

    // Piece around the probe must match floor/ceil of the reference.
    const auto piece = index.FindPiece(probe, store_size);
    auto ub = reference.upper_bound(probe);
    if (ub == reference.end()) {
      EXPECT_FALSE(piece.has_upper);
      EXPECT_EQ(piece.end, store_size);
    } else {
      ASSERT_TRUE(piece.has_upper);
      EXPECT_EQ(piece.end, ub->second);
      EXPECT_EQ(piece.upper, ub->first);
    }
    if (ub == reference.begin()) {
      EXPECT_FALSE(piece.has_lower);
      EXPECT_EQ(piece.begin, 0u);
    } else {
      ASSERT_TRUE(piece.has_lower);
      --ub;
      EXPECT_EQ(piece.begin, ub->second);
      EXPECT_EQ(piece.lower, ub->first);
    }
  }
  // The in-order split dump must match the reference exactly.
  const auto splits = index.LiveSplits();
  ASSERT_EQ(splits.size(), reference.size());
  size_t i = 0;
  for (const auto& [bound, pos] : reference) {
    EXPECT_EQ(splits[i].first, bound);
    EXPECT_EQ(splits[i].second, pos);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrackerIndexPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

}  // namespace
}  // namespace crackdb
