// Batch/async equivalence: QueryBatch, QueryAsync, and ApplyBatch must
// return row-for-row identical results — and leave identical end states —
// compared with the synchronous one-op-at-a-time loop. Each check runs two
// twin databases from the same seed state, drives one through the batch
// pipeline and one through the loop, and demands exact equality (not just
// multiset equality: each partition sees the same sub-query sequence
// either way, so even the crack-order-dependent row order must match).

#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "engine/database.h"
#include "engine/plain_engine.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;

constexpr Value kDomain = 2'000;
constexpr size_t kRows = 2'000;
constexpr size_t kPartitions = 5;

QuerySpec RandomQuery(Rng* rng) {
  QuerySpec spec;
  if (rng->Bernoulli(0.3)) {
    spec.selections = {
        {AttrName(1), RangePredicate::Point(rng->Uniform(1, kDomain))}};
  } else {
    spec.selections = {{AttrName(1), bench::RandomRange(rng, 1, kDomain, 0.2)},
                       {AttrName(2), bench::RandomRange(rng, 1, kDomain, 0.6)}};
  }
  spec.projections = {AttrName(3), AttrName(4)};
  return spec;
}

using bench::ZipRows;

class BatchAsyncTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    Rng rng(1234);
    source_ = &bench::CreateUniformRelation(&catalog_, "R", 4, kRows, kDomain,
                                            &rng);
  }

  /// A fresh database over the (current) source relation. Twins made
  /// before any write start from identical states.
  std::unique_ptr<Database> MakeDb(size_t pool_threads = 0) {
    DatabaseOptions options;
    options.pool_threads = pool_threads;
    auto db = std::make_unique<Database>(options);
    PartitionSpec spec;
    spec.kind = PartitionSpec::Kind::kRange;
    spec.num_partitions = kPartitions;
    spec.column = AttrName(1);
    spec.domain_lo = 1;
    spec.domain_hi = kDomain;
    db->RegisterSharded("R", *source_, spec, GetParam());
    return db;
  }

  Catalog catalog_;
  Relation* source_ = nullptr;
};

TEST_P(BatchAsyncTest, QueryBatchRowForRowEqualsSequentialLoop) {
  for (const size_t pool : {size_t{0}, size_t{2}}) {
    const std::unique_ptr<Database> batch_db = MakeDb(pool);
    const std::unique_ptr<Database> loop_db = MakeDb(pool);
    Rng rng(77);
    std::vector<QuerySpec> specs;
    for (int q = 0; q < 24; ++q) specs.push_back(RandomQuery(&rng));

    const std::vector<QueryResult> batched = batch_db->QueryBatch("R", specs);
    ASSERT_EQ(batched.size(), specs.size());
    for (size_t q = 0; q < specs.size(); ++q) {
      const QueryResult looped = loop_db->Query("R", specs[q]);
      EXPECT_EQ(batched[q].num_rows, looped.num_rows) << "query " << q;
      EXPECT_EQ(batched[q].columns, looped.columns)
          << "row-for-row divergence at query " << q << " (pool=" << pool
          << ")";
    }

    // Identical end states: both crackers saw the same per-partition
    // sub-query sequence, so even a full scan must agree exactly.
    QuerySpec full_scan;
    full_scan.projections = {AttrName(1), AttrName(2), AttrName(3),
                             AttrName(4)};
    EXPECT_EQ(batch_db->Query("R", full_scan).columns,
              loop_db->Query("R", full_scan).columns);
    const TableStats batch_stats = batch_db->Stats("R");
    const TableStats loop_stats = loop_db->Stats("R");
    EXPECT_EQ(batch_stats.queries, loop_stats.queries);
    EXPECT_EQ(batch_stats.rows, loop_stats.rows);
  }
}

TEST_P(BatchAsyncTest, QueryBatchHandlesEmptyAndSingleton) {
  const std::unique_ptr<Database> db = MakeDb();
  EXPECT_TRUE(db->QueryBatch("R", {}).empty());

  Rng rng(5);
  const QuerySpec spec = RandomQuery(&rng);
  const std::unique_ptr<Database> twin = MakeDb();
  const std::vector<QueryResult> batched = db->QueryBatch("R", {&spec, 1});
  ASSERT_EQ(batched.size(), 1u);
  EXPECT_EQ(batched[0].columns, twin->Query("R", spec).columns);
}

TEST_P(BatchAsyncTest, QueryAsyncEqualsSync) {
  for (const size_t pool : {size_t{0}, size_t{2}}) {
    const std::unique_ptr<Database> async_db = MakeDb(pool);
    const std::unique_ptr<Database> sync_db = MakeDb(pool);
    Rng rng(99);
    for (int q = 0; q < 16; ++q) {
      const QuerySpec spec = RandomQuery(&rng);
      // Awaited one at a time, the async pipeline must be deterministic:
      // same sub-query order, same rows in the same order.
      QueryResult async_result = async_db->QueryAsync("R", spec).get();
      EXPECT_EQ(async_result.columns, sync_db->Query("R", spec).columns)
          << "query " << q << " (pool=" << pool << ")";
    }
    EXPECT_EQ(async_db->Stats("R").queries, sync_db->Stats("R").queries);
  }
}

TEST_P(BatchAsyncTest, ConcurrentAsyncWaveMatchesPlainReference) {
  const std::unique_ptr<Database> db = MakeDb(3);
  PlainEngine reference(*source_);  // read-only phase: source is immutable
  Rng rng(41);
  std::vector<QuerySpec> specs;
  std::vector<std::future<QueryResult>> futures;
  for (int q = 0; q < 20; ++q) {
    specs.push_back(RandomQuery(&rng));
    futures.push_back(db->QueryAsync("R", specs.back()));
  }
  // In-flight queries interleave, so row order is scheduling-dependent —
  // but every answer must still be the exact multiset a plain scan gives.
  for (size_t q = 0; q < futures.size(); ++q) {
    EXPECT_EQ(ZipRows(futures[q].get()), ZipRows(reference.Run(specs[q])))
        << "async query " << q;
  }
}

TEST_P(BatchAsyncTest, ApplyBatchEqualsSequentialLoop) {
  const std::unique_ptr<Database> batch_db = MakeDb();
  const std::unique_ptr<Database> loop_db = MakeDb();
  Rng rng(314);

  // A mixed batch: inserts across partitions, deletes of pre-existing
  // keys, a delete of an unknown key, and a double delete in the same
  // batch (the second must fail in both pipelines).
  std::vector<WriteOp> ops;
  for (int i = 0; i < 30; ++i) {
    std::vector<Value> row(4);
    for (Value& v : row) v = rng.Uniform(1, kDomain);
    ops.push_back(WriteOp::MakeInsert(std::move(row)));
  }
  ops.push_back(WriteOp::MakeDelete(Key{3}));
  ops.push_back(WriteOp::MakeDelete(Key{kRows - 1}));
  ops.push_back(WriteOp::MakeDelete(Key{3}));  // already dead: must fail
  ops.push_back(WriteOp::MakeDelete(Key{1'000'000}));  // unknown: must fail
  for (int i = 0; i < 10; ++i) {
    std::vector<Value> row(4);
    for (Value& v : row) v = rng.Uniform(1, kDomain);
    ops.push_back(WriteOp::MakeInsert(std::move(row)));
  }

  const std::vector<WriteOutcome> batched = batch_db->ApplyBatch("R", ops);

  std::vector<WriteOutcome> looped(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == WriteOp::Kind::kInsert) {
      looped[i] = {true, loop_db->Insert("R", ops[i].values)};
    } else {
      looped[i] = {loop_db->Delete("R", ops[i].key), ops[i].key};
      if (!looped[i].ok) looped[i].key = kInvalidKey;
    }
  }

  ASSERT_EQ(batched.size(), looped.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(batched[i].ok, looped[i].ok) << "op " << i;
    // Order-preserving group commit: the keys must match the loop's.
    EXPECT_EQ(batched[i].key, looped[i].key) << "op " << i;
  }

  // Identical end states, checked exactly.
  QuerySpec full_scan;
  full_scan.projections = {AttrName(1), AttrName(2), AttrName(3), AttrName(4)};
  EXPECT_EQ(batch_db->Query("R", full_scan).columns,
            loop_db->Query("R", full_scan).columns);
  const TableStats batch_stats = batch_db->Stats("R");
  const TableStats loop_stats = loop_db->Stats("R");
  EXPECT_EQ(batch_stats.rows, loop_stats.rows);
  EXPECT_EQ(batch_stats.live_rows, loop_stats.live_rows);
  EXPECT_EQ(batch_stats.deleted, loop_stats.deleted);
  EXPECT_EQ(batch_stats.inserts, loop_stats.inserts);
  EXPECT_EQ(batch_stats.deletes, loop_stats.deletes);
}

TEST_P(BatchAsyncTest, ApplyBatchThenQueryBatchRoundTrip) {
  const std::unique_ptr<Database> db = MakeDb();
  // Keys from one batch are immediately deletable in the next.
  std::vector<WriteOp> inserts;
  for (int i = 0; i < 12; ++i) {
    inserts.push_back(WriteOp::MakeInsert({Value(1 + i * 7), 2, 3, 4}));
  }
  const std::vector<WriteOutcome> outcomes = db->ApplyBatch("R", inserts);
  std::vector<WriteOp> deletes;
  for (size_t i = 0; i < outcomes.size(); i += 2) {
    ASSERT_TRUE(outcomes[i].ok);
    deletes.push_back(WriteOp::MakeDelete(outcomes[i].key));
  }
  for (const WriteOutcome& outcome : db->ApplyBatch("R", deletes)) {
    EXPECT_TRUE(outcome.ok);
  }
  const TableStats stats = db->Stats("R");
  EXPECT_EQ(stats.rows, kRows + inserts.size());
  EXPECT_EQ(stats.live_rows, kRows + inserts.size() - deletes.size());
}

INSTANTIATE_TEST_SUITE_P(EngineKinds, BatchAsyncTest,
                         ::testing::Values("selection-cracking", "sideways",
                                           "partial", "plain"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace crackdb
