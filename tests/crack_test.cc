#include "cracking/crack.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace crackdb {
namespace {

CrackPairs MakeStore(const std::vector<Value>& heads) {
  CrackPairs store;
  for (size_t i = 0; i < heads.size(); ++i) {
    store.PushBack(heads[i], static_cast<Value>(1000 + i));
  }
  return store;
}

CrackPairs RandomStore(Rng* rng, size_t n, Value domain) {
  CrackPairs store;
  store.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    store.PushBack(rng->Uniform(1, domain), static_cast<Value>(i));
  }
  return store;
}

std::multiset<std::pair<Value, Value>> Contents(const CrackPairs& s) {
  std::multiset<std::pair<Value, Value>> out;
  for (size_t i = 0; i < s.size(); ++i) out.insert({s.head[i], s.tail[i]});
  return out;
}

TEST(CrackInTwoTest, PartitionsAroundBound) {
  CrackPairs store = MakeStore({5, 1, 9, 3, 7, 2, 8});
  const size_t split = CrackInTwo(store, 0, store.size(), Bound{5, true});
  EXPECT_EQ(split, 3u);  // 1, 3, 2 below
  for (size_t i = 0; i < split; ++i) EXPECT_LT(store.head[i], 5);
  for (size_t i = split; i < store.size(); ++i) EXPECT_GE(store.head[i], 5);
}

TEST(CrackInTwoTest, ExclusiveBoundKeepsEqualValuesLow) {
  CrackPairs store = MakeStore({5, 5, 6, 4, 5});
  const size_t split = CrackInTwo(store, 0, store.size(), Bound{5, false});
  EXPECT_EQ(split, 4u);  // all the 5s and the 4 stay below
  for (size_t i = 0; i < split; ++i) EXPECT_LE(store.head[i], 5);
  for (size_t i = split; i < store.size(); ++i) EXPECT_GT(store.head[i], 5);
}

TEST(CrackInTwoTest, EmptyAndSingleRanges) {
  CrackPairs store = MakeStore({3});
  EXPECT_EQ(CrackInTwo(store, 0, 0, Bound{5, true}), 0u);
  EXPECT_EQ(CrackInTwo(store, 0, 1, Bound{5, true}), 1u);  // 3 < 5
  EXPECT_EQ(CrackInTwo(store, 0, 1, Bound{2, true}), 0u);  // 3 >= 2
}

TEST(CrackInTwoTest, PayloadTravelsWithHead) {
  CrackPairs store = MakeStore({9, 1});
  CrackInTwo(store, 0, 2, Bound{5, true});
  EXPECT_EQ(store.head[0], 1);
  EXPECT_EQ(store.tail[0], 1001);
  EXPECT_EQ(store.head[1], 9);
  EXPECT_EQ(store.tail[1], 1000);
}

TEST(CrackInThreeTest, ThreeWayPartition) {
  CrackPairs store = MakeStore({5, 1, 9, 3, 7, 2, 8, 5});
  auto [mid, hi] =
      CrackInThree(store, 0, store.size(), Bound{3, true}, Bound{7, false});
  for (size_t i = 0; i < mid; ++i) EXPECT_LT(store.head[i], 3);
  for (size_t i = mid; i < hi; ++i) {
    EXPECT_GE(store.head[i], 3);
    EXPECT_LE(store.head[i], 7);
  }
  for (size_t i = hi; i < store.size(); ++i) EXPECT_GT(store.head[i], 7);
}

TEST(CrackOnPredicateTest, AreaContainsExactlyMatches) {
  Rng rng(7);
  CrackPairs store = RandomStore(&rng, 500, 100);
  CrackerIndex index;
  const RangePredicate pred = RangePredicate::Open(20, 60);
  const size_t expected = static_cast<size_t>(
      std::count_if(store.head.begin(), store.head.end(),
                    [&](Value v) { return pred.Matches(v); }));
  const CrackResult r = CrackOnPredicate(store, index, pred);
  EXPECT_TRUE(r.reorganized);
  EXPECT_EQ(r.area.size(), expected);
  for (size_t i = r.area.begin; i < r.area.end; ++i) {
    EXPECT_TRUE(pred.Matches(store.head[i]));
  }
  EXPECT_TRUE(CheckCrackInvariant(store, index));
}

TEST(CrackOnPredicateTest, SecondIdenticalQueryDoesNotReorganize) {
  Rng rng(8);
  CrackPairs store = RandomStore(&rng, 500, 100);
  CrackerIndex index;
  const RangePredicate pred = RangePredicate::Closed(10, 30);
  EXPECT_TRUE(CrackOnPredicate(store, index, pred).reorganized);
  const CrackResult again = CrackOnPredicate(store, index, pred);
  EXPECT_FALSE(again.reorganized);
}

TEST(CrackOnPredicateTest, FullDomainPredicate) {
  Rng rng(9);
  CrackPairs store = RandomStore(&rng, 100, 50);
  CrackerIndex index;
  const CrackResult r = CrackOnPredicate(store, index, RangePredicate{});
  EXPECT_FALSE(r.reorganized);
  EXPECT_EQ(r.area.begin, 0u);
  EXPECT_EQ(r.area.end, 100u);
}

TEST(CrackOnPredicateTest, DegenerateEmptyPredicate) {
  Rng rng(10);
  CrackPairs store = RandomStore(&rng, 100, 50);
  CrackerIndex index;
  // Open interval (25, 25) is empty but must still behave
  // deterministically.
  const CrackResult r = CrackOnPredicate(store, index, RangePredicate::Open(25, 25));
  EXPECT_EQ(r.area.size(), 0u);
  EXPECT_TRUE(CheckCrackInvariant(store, index));
}

TEST(CrackOnPredicateTest, PointQuery) {
  Rng rng(11);
  CrackPairs store = RandomStore(&rng, 1000, 50);
  CrackerIndex index;
  const RangePredicate pred = RangePredicate::Point(25);
  const size_t expected = static_cast<size_t>(
      std::count(store.head.begin(), store.head.end(), 25));
  const CrackResult r = CrackOnPredicate(store, index, pred);
  EXPECT_EQ(r.area.size(), expected);
  for (size_t i = r.area.begin; i < r.area.end; ++i) {
    EXPECT_EQ(store.head[i], 25);
  }
}

TEST(SortPieceTest, SortsOnePieceOnly) {
  CrackPairs store = MakeStore({9, 1, 5, 3, 7, 2, 8, 4});
  CrackerIndex index;
  CrackOnPredicate(store, index, RangePredicate::Closed(4, 6));
  const auto piece_before = index.FindPiece(Bound{4, true}, store.size());
  SortPiece(store, index, Bound{4, true});
  // Sorted within; invariant still holds.
  for (size_t i = piece_before.begin + 1; i < piece_before.end; ++i) {
    EXPECT_LE(store.head[i - 1], store.head[i]);
  }
  EXPECT_TRUE(CheckCrackInvariant(store, index));
}

/// Property sweep: random query sequences preserve content, the crack
/// invariant, and exact areas; two stores with identical initial content
/// and history end byte-identical (the alignment determinism guarantee).
struct CrackSweepParam {
  uint64_t seed;
  size_t rows;
  Value domain;
  double selectivity;
};

class CrackPropertyTest : public ::testing::TestWithParam<CrackSweepParam> {};

TEST_P(CrackPropertyTest, InvariantContentAreaAndDeterminism) {
  const CrackSweepParam p = GetParam();
  Rng rng(p.seed);
  CrackPairs store = RandomStore(&rng, p.rows, p.domain);
  CrackPairs twin;
  twin.head = store.head;
  twin.tail = store.tail;
  const auto original = Contents(store);
  CrackerIndex index;
  CrackerIndex twin_index;

  std::vector<Value> sorted_heads = store.head;
  std::sort(sorted_heads.begin(), sorted_heads.end());

  for (int q = 0; q < 60; ++q) {
    const Value width = std::max<Value>(
        1, static_cast<Value>(p.selectivity * static_cast<double>(p.domain)));
    const Value lo = rng.Uniform(1, p.domain - width + 1);
    const RangePredicate pred = RangePredicate::HalfOpen(lo, lo + width);

    const CrackResult r = CrackOnPredicate(store, index, pred);
    const CrackResult rt = CrackOnPredicate(twin, twin_index, pred);

    // Exact area: matches ground truth count from sorted data.
    const auto first = std::lower_bound(sorted_heads.begin(),
                                        sorted_heads.end(), lo);
    const auto last = std::lower_bound(sorted_heads.begin(),
                                       sorted_heads.end(), lo + width);
    ASSERT_EQ(r.area.size(), static_cast<size_t>(last - first))
        << "query " << q;
    for (size_t i = r.area.begin; i < r.area.end; ++i) {
      ASSERT_TRUE(pred.Matches(store.head[i]));
    }
    ASSERT_TRUE(CheckCrackInvariant(store, index));

    // Determinism: identical history => identical layout.
    ASSERT_EQ(r.area.begin, rt.area.begin);
    ASSERT_EQ(store.head, twin.head) << "divergence at query " << q;
    ASSERT_EQ(store.tail, twin.tail);
  }
  EXPECT_EQ(Contents(store), original);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrackPropertyTest,
    ::testing::Values(CrackSweepParam{1, 2000, 10000, 0.01},
                      CrackSweepParam{2, 2000, 10000, 0.2},
                      CrackSweepParam{3, 2000, 10000, 0.9},
                      CrackSweepParam{4, 2000, 50, 0.2},    // heavy duplicates
                      CrackSweepParam{5, 17, 10, 0.5},      // tiny store
                      CrackSweepParam{6, 5000, 1000000, 0.05}));

}  // namespace
}  // namespace crackdb
