#include "core/storage_manager.h"

#include <gtest/gtest.h>

#include <vector>

namespace crackdb {
namespace {

TEST(StorageManagerTest, UnlimitedNeverEvicts) {
  StorageManager sm(0);
  EXPECT_TRUE(sm.unlimited());
  int drops = 0;
  sm.Register(1000000, [&] { ++drops; });
  EXPECT_TRUE(sm.EnsureRoom(1000000000));
  EXPECT_EQ(drops, 0);
}

TEST(StorageManagerTest, AccountingTracksRegisterUpdateUnregister) {
  StorageManager sm(100);
  const uint64_t id = sm.Register(30, nullptr);
  EXPECT_EQ(sm.used_half_tuples(), 30u);
  sm.UpdateCost(id, 50);
  EXPECT_EQ(sm.used_half_tuples(), 50u);
  sm.Unregister(id);
  EXPECT_EQ(sm.used_half_tuples(), 0u);
  EXPECT_EQ(sm.num_entries(), 0u);
}

TEST(StorageManagerTest, EvictsLeastFrequentlyAccessed) {
  StorageManager sm(100);
  std::vector<int> dropped(3, 0);
  const uint64_t a = sm.Register(40, [&] { ++dropped[0]; });
  const uint64_t b = sm.Register(40, [&] { ++dropped[1]; });
  sm.RecordAccess(a);
  sm.RecordAccess(a);
  sm.RecordAccess(b);
  // Need 40 more: must evict exactly one — the least accessed is b.
  EXPECT_TRUE(sm.EnsureRoom(40));
  EXPECT_EQ(dropped[1], 1);
  EXPECT_EQ(dropped[0], 0);
  EXPECT_EQ(sm.used_half_tuples(), 40u);
  EXPECT_EQ(sm.eviction_count(), 1u);
}

TEST(StorageManagerTest, PinnedEntriesSurviveEviction) {
  StorageManager sm(100);
  int a_drops = 0;
  int b_drops = 0;
  const uint64_t a = sm.Register(60, [&] { ++a_drops; });
  sm.Register(40, [&] { ++b_drops; });
  sm.Pin(a);
  // Asking for 60 more: only the unpinned 40 can go; reclamation falls
  // short and EnsureRoom reports it.
  EXPECT_FALSE(sm.EnsureRoom(60));
  EXPECT_EQ(a_drops, 0);
  EXPECT_EQ(b_drops, 1);
  sm.UnpinAll();
  EXPECT_TRUE(sm.EnsureRoom(100));
  EXPECT_EQ(a_drops, 1);
}

TEST(StorageManagerTest, EvictsMultipleUntilRoom) {
  StorageManager sm(100);
  int drops = 0;
  for (int i = 0; i < 5; ++i) sm.Register(20, [&] { ++drops; });
  EXPECT_EQ(sm.used_half_tuples(), 100u);
  EXPECT_TRUE(sm.EnsureRoom(60));
  EXPECT_EQ(drops, 3);
  EXPECT_EQ(sm.used_half_tuples(), 40u);
}

TEST(StorageManagerTest, DropperRunsExactlyOnce) {
  StorageManager sm(10);
  int drops = 0;
  sm.Register(10, [&] { ++drops; });
  EXPECT_TRUE(sm.EnsureRoom(10));
  EXPECT_TRUE(sm.EnsureRoom(10));
  EXPECT_EQ(drops, 1);
}

}  // namespace
}  // namespace crackdb
