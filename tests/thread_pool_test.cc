// The affine ThreadPool: per-worker queues keyed by affinity, work
// stealing as the fallback, inline degradation with zero workers, and the
// guard that turns "blocking on the pool from inside the pool" from a
// deadlock into an immediate abort.

#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CRACKDB_SANITIZER_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CRACKDB_SANITIZER_BUILD 1
#endif
#endif

namespace crackdb {
namespace {

TEST(ThreadPoolTest, SubmitRunsEveryTaskAndFuturesComplete) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&ran] { ++ran; }));
  }
  for (std::future<void>& future : futures) future.get();
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, AffineSubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (size_t i = 0; i < 64; ++i) {
    // Affinity keys deliberately exceed the worker count: routing is
    // modulo, and every task must still run exactly once.
    futures.push_back(pool.Submit(i * 13, [&ran] { ++ran; }));
  }
  for (std::future<void>& future : futures) future.get();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, IdleWorkersStealFromALoadedHomeQueue) {
  // Every task targets worker 0's queue, but each blocks until two of
  // them run concurrently — only possible if another worker steals. A
  // bounded wait turns a stealing regression into a failure, not a hang.
  ThreadPool pool(3);
  std::mutex mu;
  std::condition_variable cv;
  int running = 0;
  bool overlapped = false;
  auto task = [&] {
    std::unique_lock<std::mutex> lock(mu);
    if (++running >= 2) {
      overlapped = true;
      cv.notify_all();
    } else {
      cv.wait_for(lock, std::chrono::seconds(30),
                  [&] { return overlapped; });
    }
    --running;
  };
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(pool.Submit(0, task));
  for (std::future<void>& future : futures) future.get();
  EXPECT_TRUE(overlapped) << "no two affinity-0 tasks ever overlapped: "
                             "stealing is broken";
}

TEST(ThreadPoolTest, NonAffineModeStillRunsEverything) {
  ThreadPool pool(2, /*affine=*/false);
  EXPECT_FALSE(pool.affine());
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (size_t i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit(7, [&ran] { ++ran; }));
  }
  for (std::future<void>& future : futures) future.get();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, ZeroWorkersRunInlineIncludingAffineSubmit) {
  ThreadPool pool(0);
  int ran = 0;
  pool.Submit([&ran] { ++ran; }).get();
  pool.Submit(5, [&ran] { ++ran; }).get();
  pool.ParallelFor(5, [&ran](size_t) { ++ran; });
  EXPECT_EQ(ran, 7);
  EXPECT_FALSE(pool.InWorkerThread());
}

TEST(ThreadPoolTest, InWorkerThreadDistinguishesPoolsAndClients) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.InWorkerThread());
  bool inside_own = false, inside_other = true;
  pool.Submit([&] {
        inside_own = pool.InWorkerThread();
        inside_other = other.InWorkerThread();
      })
      .get();
  EXPECT_TRUE(inside_own);
  EXPECT_FALSE(inside_other);
}

TEST(ThreadPoolTest, NestedFireAndForgetSubmitIsAllowed) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::promise<void> inner_done;
  pool.Submit([&] {
        // Enqueueing from a worker must not deadlock or abort — only
        // *blocking* on the pool is forbidden.
        pool.Submit([&] {
          ++ran;
          inner_done.set_value();
        });
        ++ran;
      })
      .get();
  inner_done.get_future().wait();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  std::future<void> future =
      pool.Submit(1, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexOnceWithAffinity) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(101);
  for (auto& c : counts) c = 0;
  pool.ParallelFor(101, [&](size_t i) { ++counts[i]; });
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

// The nested-blocking guard. Death tests re-exec the binary, which is
// incompatible with sanitizer runtimes that object to forking
// multithreaded processes, so the check is asserted in plain builds only.
#ifndef CRACKDB_SANITIZER_BUILD
TEST(ThreadPoolDeathTest, ParallelForFromWorkerAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.Submit([&pool] {
              pool.ParallelFor(4, [](size_t) {});
            })
            .get();
      },
      "ParallelFor called from a worker");
}
#endif

}  // namespace
}  // namespace crackdb
