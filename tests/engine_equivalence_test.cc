#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "engine/partial_engine.h"
#include "engine/plain_engine.h"
#include "engine/presorted_engine.h"
#include "engine/row_engine.h"
#include "engine/selection_cracking_engine.h"
#include "engine/sideways_engine.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;
using bench::CreateUniformRelation;

using bench::ZipRows;

/// Every engine must produce the same multiset of result tuples as the
/// plain scan engine — the paper's core correctness claim across physical
/// designs (invariant 3 of DESIGN.md).
struct EquivParam {
  const char* engine;
  bool disjunctive;
  double selectivity;
};

class EngineEquivalenceTest : public ::testing::TestWithParam<EquivParam> {
 protected:
  static std::unique_ptr<Engine> MakeEngine(const std::string& name,
                                            const Relation& rel) {
    if (name == "plain") return std::make_unique<PlainEngine>(rel);
    if (name == "presorted") return std::make_unique<PresortedEngine>(rel);
    if (name == "selection-cracking") {
      return std::make_unique<SelectionCrackingEngine>(rel);
    }
    if (name == "sideways") return std::make_unique<SidewaysEngine>(rel);
    if (name == "partial") return std::make_unique<PartialSidewaysEngine>(rel);
    if (name == "row") return std::make_unique<RowEngine>(rel, false);
    if (name == "row-presorted") return std::make_unique<RowEngine>(rel, true);
    ADD_FAILURE() << "unknown engine " << name;
    return nullptr;
  }
};

TEST_P(EngineEquivalenceTest, MatchesPlainOnRandomWorkload) {
  const EquivParam p = GetParam();
  Catalog catalog;
  Rng data_rng(1234);
  const Value domain = 5000;
  Relation& rel =
      CreateUniformRelation(&catalog, "R", 5, 4000, domain, &data_rng);
  PlainEngine reference(rel);
  std::unique_ptr<Engine> engine = MakeEngine(p.engine, rel);
  ASSERT_NE(engine, nullptr);

  Rng rng(99);
  for (int q = 0; q < 40; ++q) {
    QuerySpec spec;
    spec.disjunctive = p.disjunctive;
    const size_t num_sel = 1 + static_cast<size_t>(rng.Uniform(0, 2));
    for (size_t s = 0; s < num_sel; ++s) {
      spec.selections.push_back(
          {AttrName(s + 1),
           bench::RandomRange(&rng, 1, domain, p.selectivity)});
    }
    spec.projections = {AttrName(4), AttrName(5)};
    const QueryResult expected = reference.Run(spec);
    const QueryResult got = engine->Run(spec);
    ASSERT_EQ(got.num_rows, expected.num_rows)
        << p.engine << " query " << q;
    ASSERT_EQ(ZipRows(got), ZipRows(expected)) << p.engine << " query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineEquivalenceTest,
    ::testing::Values(
        EquivParam{"presorted", false, 0.1},
        EquivParam{"presorted", true, 0.1},
        EquivParam{"selection-cracking", false, 0.1},
        EquivParam{"selection-cracking", true, 0.1},
        EquivParam{"sideways", false, 0.1},
        EquivParam{"sideways", true, 0.1},
        EquivParam{"partial", false, 0.1},
        EquivParam{"row", false, 0.1},
        EquivParam{"row", true, 0.1},
        EquivParam{"row-presorted", false, 0.1},
        EquivParam{"sideways", false, 0.01},
        EquivParam{"sideways", false, 0.6},
        EquivParam{"partial", false, 0.01},
        EquivParam{"partial", false, 0.6},
        EquivParam{"selection-cracking", false, 0.6}),
    [](const ::testing::TestParamInfo<EquivParam>& info) {
      std::string name = info.param.engine;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      name += info.param.disjunctive ? "_disj" : "_conj";
      name += "_sel" + std::to_string(
                           static_cast<int>(info.param.selectivity * 100));
      return name;
    });

TEST(EngineEquivalenceTest, PointQueriesAgree) {
  Catalog catalog;
  Rng data_rng(55);
  Relation& rel = CreateUniformRelation(&catalog, "R", 3, 2000, 200,
                                        &data_rng);
  PlainEngine reference(rel);
  SidewaysEngine sideways(rel);
  SelectionCrackingEngine cracking(rel);
  Rng rng(56);
  for (int q = 0; q < 30; ++q) {
    QuerySpec spec;
    spec.selections = {{AttrName(1), RangePredicate::Point(rng.Uniform(1, 200))}};
    spec.projections = {AttrName(2)};
    const auto expected = ZipRows(reference.Run(spec));
    EXPECT_EQ(ZipRows(sideways.Run(spec)), expected);
    EXPECT_EQ(ZipRows(cracking.Run(spec)), expected);
  }
}

TEST(EngineEquivalenceTest, EmptyResultAgrees) {
  Catalog catalog;
  Rng data_rng(57);
  Relation& rel = CreateUniformRelation(&catalog, "R", 3, 500, 100, &data_rng);
  SidewaysEngine sideways(rel);
  PartialSidewaysEngine partial(rel);
  QuerySpec spec;
  spec.selections = {{AttrName(1), RangePredicate::Closed(500, 600)}};
  spec.projections = {AttrName(2)};
  EXPECT_EQ(sideways.Run(spec).num_rows, 0u);
  EXPECT_EQ(partial.Run(spec).num_rows, 0u);
}

TEST(EngineEquivalenceTest, SelectionFreeProjection) {
  Catalog catalog;
  Rng data_rng(58);
  Relation& rel = CreateUniformRelation(&catalog, "R", 2, 300, 100, &data_rng);
  PlainEngine reference(rel);
  SidewaysEngine sideways(rel);
  PresortedEngine presorted(rel);
  QuerySpec spec;
  spec.projections = {AttrName(1), AttrName(2)};
  const auto expected = ZipRows(reference.Run(spec));
  EXPECT_EQ(ZipRows(sideways.Run(spec)), expected);
  EXPECT_EQ(ZipRows(presorted.Run(spec)), expected);
}

TEST(EngineEquivalenceTest, SidewaysStorageBudgetPreservesResults) {
  Catalog catalog;
  Rng data_rng(59);
  const Value domain = 2000;
  Relation& rel = CreateUniformRelation(&catalog, "R", 6, 3000, domain,
                                        &data_rng);
  PlainEngine reference(rel);
  // Budget for about two full maps: forces continuous drop/recreate.
  SidewaysEngine sideways(rel, 2 * 3000 + 500);
  Rng rng(60);
  for (int q = 0; q < 30; ++q) {
    QuerySpec spec;
    spec.selections = {
        {AttrName(1), bench::RandomRange(&rng, 1, domain, 0.1)}};
    const std::string proj = AttrName(2 + (q % 5));
    spec.projections = {proj};
    ASSERT_EQ(ZipRows(sideways.Run(spec)), ZipRows(reference.Run(spec)))
        << "query " << q;
  }
}

}  // namespace
}  // namespace crackdb
