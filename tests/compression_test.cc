// The compression layer end to end (docs/ARCHITECTURE.md, "Compression &
// layouts"): a compress-on-load database answers every query shape
// bit-for-bit like its raw twin across all engine kinds; encoded-servable
// queries stay in the encoded domain while tuple reconstruction and
// writes crack-on-touch (decompress the touched partition only); and the
// adaptive layout loop compresses cold partitions and decompresses hot
// ones through the regular tick machinery. Stats must expose all of it.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "engine/database.h"
#include "engine/engine_factory.h"
#include "engine/query.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;
using bench::ZipRows;

class CompressionTest : public ::testing::Test {
 protected:
  static constexpr Value kDomain = 1'000;
  static constexpr size_t kRows = 6'000;
  static constexpr size_t kPartitions = 3;

  void SetUp() override {
    Rng rng(997);
    source_ =
        &bench::CreateUniformRelation(&catalog_, "R", 3, kRows, kDomain, &rng);
  }

  PartitionSpec RangeSpec() const {
    PartitionSpec spec;
    spec.kind = PartitionSpec::Kind::kRange;
    spec.num_partitions = kPartitions;
    spec.column = AttrName(1);
    spec.domain_lo = 1;
    spec.domain_hi = kDomain;
    return spec;
  }

  /// Compression on, with the adaptive layout loop off (no background
  /// ticks, no histogram) — the compress-on-load configuration.
  static AdaptiveConfig CompressOnLoad() {
    AdaptiveConfig adaptive;
    adaptive.compression.enabled = true;
    adaptive.compression.compress_on_load = true;
    return adaptive;
  }

  std::unique_ptr<Database> MakeDb(const std::string& kind,
                                   const PartitionSpec& spec,
                                   const AdaptiveConfig& adaptive) {
    DatabaseOptions options;
    options.pool_threads = 2;
    auto db = std::make_unique<Database>(options);
    db->RegisterSharded("R", *source_, spec, kind, adaptive);
    return db;
  }

  Catalog catalog_;
  Relation* source_ = nullptr;
};

/// Flattened answers of the oracle query matrix: encoded-servable shapes
/// (counts, same-column and cross-column aggregates, unfiltered folds)
/// plus materializations, which force crack-on-touch on compressed arms.
struct Answers {
  std::vector<size_t> counts;
  std::vector<Value> aggregates;
  std::vector<std::multiset<std::vector<Value>>> rows;
};

/// Runs the matrix into *a (void so ASSERT_* can abort on query errors).
void RunMatrix(Database* db, Answers* a) {
  const std::vector<std::pair<Value, Value>> ranges = {
      {1, 1'000}, {10, 500}, {400, 420}, {900, 1'000}};
  for (const auto& [lo, hi] : ranges) {
    auto count = db->From("R").Where(AttrName(1), lo, hi).Count().Execute();
    ASSERT_TRUE(count.ok()) << count.error();
    a->counts.push_back(count->count);
    for (AggregateOp op :
         {AggregateOp::kSum, AggregateOp::kMin, AggregateOp::kMax}) {
      // Same-column filter (the EncodedFoldFiltered path) ...
      auto same = db->From("R")
                      .Where(AttrName(1), lo, hi)
                      .Aggregate(op, AttrName(1))
                      .Execute();
      ASSERT_TRUE(same.ok()) << same.error();
      a->aggregates.push_back(same->aggregate_valid ? same->aggregate : -1);
      // ... and cross-column (EncodedSelect + gather-fold).
      auto cross = db->From("R")
                       .Where(AttrName(1), lo, hi)
                       .Aggregate(op, AttrName(2))
                       .Execute();
      ASSERT_TRUE(cross.ok()) << cross.error();
      a->aggregates.push_back(cross->aggregate_valid ? cross->aggregate : -1);
    }
  }
  // Unfiltered shapes: whole-table count and fold.
  auto all = db->From("R").Count().Execute();
  ASSERT_TRUE(all.ok()) << all.error();
  a->counts.push_back(all->count);
  auto max = db->From("R").Aggregate(AggregateOp::kMax, AttrName(3)).Execute();
  ASSERT_TRUE(max.ok()) << max.error();
  a->aggregates.push_back(max->aggregate_valid ? max->aggregate : -1);
  // Materializations last: on a compressed arm these crack-on-touch.
  for (const auto& [lo, hi] : ranges) {
    auto rows = db->From("R")
                    .Where(AttrName(1), lo, hi)
                    .Project(AttrName(2), AttrName(3))
                    .Execute();
    ASSERT_TRUE(rows.ok()) << rows.error();
    a->rows.push_back(ZipRows(rows->rows));
  }
}

TEST_F(CompressionTest, CompressedEqualsRawAcrossAllEngineKinds) {
  for (const EngineKindEntry& entry : kEngineKinds) {
    auto raw = MakeDb(entry.name, RangeSpec(), {});
    auto compressed = MakeDb(entry.name, RangeSpec(), CompressOnLoad());

    const TableStats before = compressed->Stats("R");
    EXPECT_EQ(before.compressed_partitions, kPartitions) << entry.name;
    EXPECT_GT(before.compressions, 0u) << entry.name;

    Answers want, got;
    ASSERT_NO_FATAL_FAILURE(RunMatrix(raw.get(), &want)) << entry.name;
    ASSERT_NO_FATAL_FAILURE(RunMatrix(compressed.get(), &got)) << entry.name;
    EXPECT_EQ(got.counts, want.counts) << entry.name;
    EXPECT_EQ(got.aggregates, want.aggregates) << entry.name;
    ASSERT_EQ(got.rows.size(), want.rows.size()) << entry.name;
    for (size_t i = 0; i < want.rows.size(); ++i) {
      EXPECT_EQ(got.rows[i], want.rows[i]) << entry.name << " query " << i;
    }

    const TableStats after = compressed->Stats("R");
    EXPECT_GT(after.encoded_queries, 0u) << entry.name;
    // The materializations cracked-on-touch every partition open.
    EXPECT_GT(after.decompressions, 0u) << entry.name;
    EXPECT_EQ(after.compressed_partitions, 0u) << entry.name;
  }
}

TEST_F(CompressionTest, EncodedQueriesDoNotDecompress) {
  auto db = MakeDb("selection-cracking", RangeSpec(), CompressOnLoad());
  for (int q = 0; q < 10; ++q) {
    auto count = db->From("R")
                     .Where(AttrName(1), 1 + q * 50, 400 + q * 50)
                     .Count()
                     .Execute();
    ASSERT_TRUE(count.ok()) << count.error();
    auto sum = db->From("R")
                   .Where(AttrName(1), 1 + q * 50, 400 + q * 50)
                   .Aggregate(AggregateOp::kSum, AttrName(2))
                   .Execute();
    ASSERT_TRUE(sum.ok()) << sum.error();
  }
  const TableStats stats = db->Stats("R");
  EXPECT_EQ(stats.compressed_partitions, kPartitions);
  EXPECT_EQ(stats.decompressions, 0u);
  EXPECT_GT(stats.encoded_queries, 0u);
  for (const PartitionStats& ps : stats.per_partition) {
    EXPECT_NE(ps.codec, "raw");
    EXPECT_FALSE(ps.engine.empty());
  }
}

TEST_F(CompressionTest, MaterializationCracksOnlyTouchedPartitions) {
  auto db = MakeDb("selection-cracking", RangeSpec(), CompressOnLoad());
  // A range inside partition 0's cover: range pruning sends the sub-query
  // only there, so only that partition decompresses.
  auto rows = db->From("R")
                  .Where(AttrName(1), 1, 50)
                  .Project(AttrName(2))
                  .Execute();
  ASSERT_TRUE(rows.ok()) << rows.error();
  const TableStats stats = db->Stats("R");
  EXPECT_EQ(stats.compressed_partitions, kPartitions - 1);
  EXPECT_EQ(stats.decompressions, 1u);
  EXPECT_EQ(stats.per_partition[0].codec, "raw");
  EXPECT_NE(stats.per_partition[kPartitions - 1].codec, "raw");
}

TEST_F(CompressionTest, WritesDecompressTheTargetPartition) {
  auto db = MakeDb("selection-cracking", RangeSpec(), CompressOnLoad());
  ASSERT_EQ(db->Stats("R").compressed_partitions, kPartitions);

  // Tombstoning an original row needs the raw layout: exactly its home
  // partition decompresses.
  EXPECT_TRUE(db->Delete("R", 0));
  TableStats stats = db->Stats("R");
  EXPECT_EQ(stats.compressed_partitions, kPartitions - 1);
  EXPECT_GT(stats.decompressions, 0u);

  // Inserts route by the organizing value (10 -> partition 0) and
  // decompress their target the same way.
  const Key key = db->Insert("R", std::vector<Value>{10, 7, 7});
  EXPECT_NE(key, kInvalidKey);
  stats = db->Stats("R");
  EXPECT_EQ(stats.per_partition[0].codec, "raw");
  EXPECT_GE(stats.decompressions, 1u);

  // The inserted row is queryable immediately, and deletable again.
  auto count = db->From("R").Where(AttrName(1), 10, 10).Count().Execute();
  ASSERT_TRUE(count.ok()) << count.error();
  EXPECT_GT(count->count, 0u);
  EXPECT_TRUE(db->Delete("R", key));
  auto after = db->From("R").Where(AttrName(1), 10, 10).Count().Execute();
  ASSERT_TRUE(after.ok()) << after.error();
  EXPECT_EQ(after->count, count->count - 1);
}

TEST_F(CompressionTest, AdaptiveTickCompressesColdAndDecompressesHot) {
  AdaptiveConfig adaptive;
  adaptive.enabled = true;
  adaptive.compression.enabled = true;
  adaptive.min_accesses = 8;
  adaptive.cooldown_ticks = 0;
  // Neutralize split/merge so the layout actions are the only candidates.
  adaptive.hot_share = 1.1;
  adaptive.cold_share = 0.0;
  adaptive.compression.min_rows = 256;
  auto db = MakeDb("selection-cracking", RangeSpec(), adaptive);
  ASSERT_EQ(db->Stats("R").compressed_partitions, 0u);

  // Hammer partition 0; the untouched partitions turn cold. Each tick
  // executes at most one action, so loop until the layout settles.
  for (int round = 0; round < 6 && db->Stats("R").compressed_partitions < 1;
       ++round) {
    for (int q = 0; q < 32; ++q) {
      auto count = db->From("R").Where(AttrName(1), 1, 300).Count().Execute();
      ASSERT_TRUE(count.ok()) << count.error();
    }
    (void)db->MaybeRepartition("R");
  }
  TableStats stats = db->Stats("R");
  EXPECT_GT(stats.compressions, 0u);
  ASSERT_GT(stats.compressed_partitions, 0u);

  // Find a compressed partition and hammer its cover range: its access
  // share crosses hot_decompress_share and a tick restores the raw (and
  // crackable) layout.
  size_t target = stats.per_partition.size();
  for (size_t i = 0; i < stats.per_partition.size(); ++i) {
    if (stats.per_partition[i].codec != "raw") {
      target = i;
      break;
    }
  }
  ASSERT_LT(target, stats.per_partition.size());
  const Value lo = stats.per_partition[target].cover_lo;
  const Value hi = stats.per_partition[target].cover_hi;
  bool decompressed = false;
  for (int round = 0; round < 6 && !decompressed; ++round) {
    for (int q = 0; q < 32; ++q) {
      auto count = db->From("R").Where(AttrName(1), lo, hi).Count().Execute();
      ASSERT_TRUE(count.ok()) << count.error();
    }
    (void)db->MaybeRepartition("R");
    decompressed = db->Stats("R").per_partition[target].codec == "raw";
  }
  EXPECT_TRUE(decompressed);
  EXPECT_GT(db->Stats("R").decompressions, 0u);
}

TEST_F(CompressionTest, HashShardedTablesCompressOnLoadOnly) {
  PartitionSpec spec;
  spec.kind = PartitionSpec::Kind::kHash;
  spec.num_partitions = kPartitions;
  spec.column = AttrName(1);
  AdaptiveConfig adaptive = CompressOnLoad();
  adaptive.enabled = true;  // requested, but hash sharding cannot adapt
  auto db = MakeDb("selection-cracking", spec, adaptive);

  const TableStats before = db->Stats("R");
  EXPECT_EQ(before.compressed_partitions, kPartitions);
  EXPECT_FALSE(db->MaybeRepartition("R"));

  // Encoded counts agree with a raw twin; crack-on-touch still works.
  auto raw = MakeDb("selection-cracking", spec, {});
  for (const auto& [lo, hi] : std::vector<std::pair<Value, Value>>{
           {1, kDomain}, {100, 400}, {700, 710}}) {
    auto got = db->From("R").Where(AttrName(1), lo, hi).Count().Execute();
    auto want = raw->From("R").Where(AttrName(1), lo, hi).Count().Execute();
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(got->count, want->count);
    auto grows = db->From("R")
                     .Where(AttrName(1), lo, hi)
                     .Project(AttrName(2))
                     .Execute();
    auto wrows = raw->From("R")
                     .Where(AttrName(1), lo, hi)
                     .Project(AttrName(2))
                     .Execute();
    ASSERT_TRUE(grows.ok() && wrows.ok());
    EXPECT_EQ(ZipRows(grows->rows), ZipRows(wrows->rows));
  }
  EXPECT_GT(db->Stats("R").decompressions, 0u);
}

TEST_F(CompressionTest, StatsReportFootprintAndLayout) {
  auto raw = MakeDb("selection-cracking", RangeSpec(), {});
  auto compressed =
      MakeDb("selection-cracking", RangeSpec(), CompressOnLoad());
  const TableStats r = raw->Stats("R");
  const TableStats c = compressed->Stats("R");

  // Raw layout: 3 columns of 8 bytes per row slot.
  EXPECT_EQ(r.resident_column_bytes, kRows * 3 * sizeof(Value));
  EXPECT_DOUBLE_EQ(r.bytes_per_row, 24.0);
  EXPECT_EQ(r.compressed_partitions, 0u);
  for (const PartitionStats& ps : r.per_partition) {
    EXPECT_EQ(ps.codec, "raw");
    EXPECT_EQ(ps.resident_bytes, ps.rows * 3 * sizeof(Value));
  }

  // Compressed: the narrow uniform domain packs into far fewer bits.
  EXPECT_LT(c.resident_column_bytes * 2, r.resident_column_bytes)
      << "expected at least 2x footprint reduction";
  EXPECT_LT(c.bytes_per_row, r.bytes_per_row / 2);
  size_t rollup = 0;
  for (const PartitionStats& ps : c.per_partition) {
    EXPECT_NE(ps.codec, "raw");
    rollup += ps.resident_bytes;
  }
  EXPECT_EQ(rollup, c.resident_column_bytes);
}

}  // namespace
}  // namespace crackdb
