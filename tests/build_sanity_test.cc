// Build-level sanity: every engine kind the bench factory knows must
// construct and answer the same range query with identical rows. Guards the
// bench/ <-> src/ seam the figure binaries stand on.

#include "bench_common.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "storage/catalog.h"

namespace crackdb::bench {
namespace {

class BuildSanityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1234);
    relation_ = &CreateUniformRelation(&catalog_, "R", 5, 2'000, 100'000,
                                       &rng);
  }

  Catalog catalog_;
  Relation* relation_ = nullptr;
};

TEST_F(BuildSanityTest, EveryKindConstructs) {
  for (const EngineKindEntry& entry : kEngineKinds) {
    std::unique_ptr<Engine> engine = MakeEngine(entry.name, *relation_);
    ASSERT_NE(engine, nullptr) << entry.name;
    EXPECT_FALSE(engine->name().empty()) << entry.name;
  }
}

TEST_F(BuildSanityTest, UnknownKindReturnsNull) {
  EXPECT_EQ(MakeEngine("no-such-engine", *relation_), nullptr);
}

TEST_F(BuildSanityTest, EveryKindAnswersIdentically) {
  QuerySpec spec;
  spec.selections = {{AttrName(1), RangePredicate::Closed(20'000, 60'000)},
                     {AttrName(2), RangePredicate::Closed(1, 80'000)}};
  spec.projections = {AttrName(3), AttrName(4)};

  // Engines may return qualifying tuples in different physical orders, so
  // compare whole rows as a sorted multiset: zipping the columns preserves
  // the cross-column pairing, which catches tuple-misalignment bugs that
  // per-column comparison would miss.
  auto sorted_rows = [&](Engine* engine) {
    const QueryResult result = engine->Run(spec);
    std::vector<std::vector<Value>> rows(result.num_rows);
    for (size_t r = 0; r < result.num_rows; ++r) {
      rows[r].reserve(result.columns.size());
      for (const std::vector<Value>& col : result.columns) {
        rows[r].push_back(col[r]);
      }
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  std::unique_ptr<Engine> plain = MakeEngine("plain", *relation_);
  ASSERT_NE(plain, nullptr);
  const std::vector<std::vector<Value>> expected = sorted_rows(plain.get());
  ASSERT_GT(expected.size(), 0u) << "selection selected nothing; the "
                                    "comparison would be vacuous";

  for (const EngineKindEntry& entry : kEngineKinds) {
    std::unique_ptr<Engine> engine = MakeEngine(entry.name, *relation_);
    ASSERT_NE(engine, nullptr) << entry.name;
    EXPECT_EQ(sorted_rows(engine.get()), expected) << entry.name;
  }
}

}  // namespace
}  // namespace crackdb::bench
