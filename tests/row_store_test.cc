#include "storage/row_store.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace crackdb {
namespace {

RowStore MakeStore() {
  RowStore store({"a", "b"});
  const Value rows[][2] = {{5, 50}, {1, 10}, {3, 30}, {5, 51}, {2, 20}};
  for (const auto& r : rows) store.AppendRow(r);
  return store;
}

TEST(RowStoreTest, AppendAndAccess) {
  RowStore store = MakeStore();
  EXPECT_EQ(store.num_rows(), 5u);
  EXPECT_EQ(store.num_columns(), 2u);
  EXPECT_EQ(store.At(2, 0), 3);
  EXPECT_EQ(store.At(2, 1), 30);
  EXPECT_EQ(store.Row(0)[1], 50);
  EXPECT_EQ(store.ColumnOrdinal("b"), 1u);
}

TEST(RowStoreTest, SortByClusters) {
  RowStore store = MakeStore();
  store.SortBy(0);
  EXPECT_EQ(store.sorted_by(), 0u);
  for (size_t r = 1; r < store.num_rows(); ++r) {
    EXPECT_LE(store.At(r - 1, 0), store.At(r, 0));
  }
  // Stability: the two a=5 rows keep their relative order.
  EXPECT_EQ(store.At(3, 1), 50);
  EXPECT_EQ(store.At(4, 1), 51);
}

TEST(RowStoreTest, EqualRangeOnSorted) {
  RowStore store = MakeStore();
  store.SortBy(0);
  const PositionRange r = store.EqualRange(RangePredicate::Closed(2, 3));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(store.At(r.begin, 0), 2);
  EXPECT_EQ(store.At(r.end - 1, 0), 3);
  const PositionRange all = store.EqualRange(RangePredicate{});
  EXPECT_EQ(all.size(), store.num_rows());
  const PositionRange none = store.EqualRange(RangePredicate::Closed(6, 9));
  EXPECT_TRUE(none.empty());
}

TEST(RowStoreTest, EqualRangeHonoursInclusivity) {
  RowStore store({"a"});
  for (Value v : {1, 2, 2, 3, 4}) {
    const Value row[] = {v};
    store.AppendRow(row);
  }
  store.SortBy(0);
  EXPECT_EQ(store.EqualRange(RangePredicate::Open(1, 3)).size(), 2u);
  EXPECT_EQ(store.EqualRange(RangePredicate::Closed(2, 2)).size(), 2u);
  EXPECT_EQ(store.EqualRange(RangePredicate::HalfOpen(2, 4)).size(), 3u);
}

TEST(RowStoreTest, ScanVisitsEveryRow) {
  RowStore store = MakeStore();
  size_t count = 0;
  Value sum = 0;
  store.Scan([&](size_t r, std::span<const Value> row) {
    EXPECT_EQ(row.size(), 2u);
    EXPECT_EQ(r, count);
    ++count;
    sum += row[0];
  });
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(sum, 16);
}

TEST(RowStoreTest, EqualRangeMatchesScanOnRandomData) {
  Rng rng(99);
  RowStore store({"a"});
  for (int i = 0; i < 2000; ++i) {
    const Value row[] = {rng.Uniform(0, 500)};
    store.AppendRow(row);
  }
  store.SortBy(0);
  for (int q = 0; q < 50; ++q) {
    const Value lo = rng.Uniform(0, 500);
    const Value hi = rng.Uniform(lo, 500);
    const RangePredicate pred = RangePredicate::Closed(lo, hi);
    const PositionRange r = store.EqualRange(pred);
    size_t expected = 0;
    store.Scan([&](size_t, std::span<const Value> row) {
      if (pred.Matches(row[0])) ++expected;
    });
    EXPECT_EQ(r.size(), expected);
  }
}

}  // namespace
}  // namespace crackdb
