#include "common/bitvector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace crackdb {
namespace {

TEST(BitVectorTest, EmptyVector) {
  BitVector bv;
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_TRUE(bv.empty());
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, ConstructAllClear) {
  BitVector bv(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(bv.Get(i));
}

TEST(BitVectorTest, ConstructAllSetKeepsTailClear) {
  // 70 bits spans two words; the unused high bits of the last word must
  // stay clear so Count() is exact.
  BitVector bv(70, true);
  EXPECT_EQ(bv.Count(), 70u);
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(bv.Get(i));
}

TEST(BitVectorTest, SetClearAssign) {
  BitVector bv(130);
  bv.Set(0);
  bv.Set(64);
  bv.Set(129);
  EXPECT_EQ(bv.Count(), 3u);
  EXPECT_TRUE(bv.Get(64));
  bv.Clear(64);
  EXPECT_FALSE(bv.Get(64));
  EXPECT_EQ(bv.Count(), 2u);
  bv.Assign(5, true);
  EXPECT_TRUE(bv.Get(5));
  bv.Assign(5, false);
  EXPECT_FALSE(bv.Get(5));
}

TEST(BitVectorTest, FillTrueThenFalse) {
  BitVector bv(100);
  bv.Fill(true);
  EXPECT_EQ(bv.Count(), 100u);
  bv.Fill(false);
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, AndOr) {
  BitVector a(128);
  BitVector b(128);
  a.Set(1);
  a.Set(80);
  b.Set(80);
  b.Set(100);
  BitVector both = a;
  both.And(b);
  EXPECT_EQ(both.Count(), 1u);
  EXPECT_TRUE(both.Get(80));
  BitVector either = a;
  either.Or(b);
  EXPECT_EQ(either.Count(), 3u);
  EXPECT_TRUE(either.Get(1));
  EXPECT_TRUE(either.Get(100));
}

TEST(BitVectorTest, AppendSetPositionsWithBase) {
  BitVector bv(70);
  bv.Set(0);
  bv.Set(65);
  std::vector<uint32_t> positions;
  bv.AppendSetPositions(&positions, 1000);
  ASSERT_EQ(positions.size(), 2u);
  EXPECT_EQ(positions[0], 1000u);
  EXPECT_EQ(positions[1], 1065u);
}

TEST(BitVectorTest, Equality) {
  BitVector a(10);
  BitVector b(10);
  EXPECT_TRUE(a == b);
  a.Set(3);
  EXPECT_FALSE(a == b);
  b.Set(3);
  EXPECT_TRUE(a == b);
}

class BitVectorRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitVectorRandomTest, CountMatchesReference) {
  const size_t n = GetParam();
  Rng rng(n * 7919 + 1);
  BitVector bv(n);
  std::vector<bool> reference(n, false);
  for (size_t step = 0; step < 3 * n; ++step) {
    const size_t i = static_cast<size_t>(
        rng.Uniform(0, static_cast<Value>(n) - 1));
    const bool set = rng.Bernoulli(0.5);
    bv.Assign(i, set);
    reference[i] = set;
  }
  size_t expected = 0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(bv.Get(i), reference[i]) << "bit " << i;
    expected += reference[i] ? 1 : 0;
  }
  EXPECT_EQ(bv.Count(), expected);
  std::vector<uint32_t> positions;
  bv.AppendSetPositions(&positions);
  EXPECT_EQ(positions.size(), expected);
  for (uint32_t p : positions) EXPECT_TRUE(reference[p]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorRandomTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000));

}  // namespace
}  // namespace crackdb
