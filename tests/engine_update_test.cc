#include <gtest/gtest.h>

#include <set>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "engine/partial_engine.h"
#include "engine/plain_engine.h"
#include "engine/selection_cracking_engine.h"
#include "engine/sideways_engine.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;

using bench::ZipRows;

/// Invariant 3 under updates: the self-organizing engines keep answering
/// exactly like a fresh scan while inserts and deletes stream in — the
/// paper's Exp6 correctness requirement.
struct UpdateParam {
  uint64_t seed;
  size_t updates_per_batch;
  size_t queries_per_batch;
};

class EngineUpdateTest : public ::testing::TestWithParam<UpdateParam> {};

TEST_P(EngineUpdateTest, CrackingEnginesTrackUpdates) {
  const UpdateParam p = GetParam();
  Catalog catalog;
  Rng data_rng(p.seed);
  const Value domain = 3000;
  Relation& rel = bench::CreateUniformRelation(&catalog, "R", 4, 3000,
                                               domain, &data_rng);
  PlainEngine reference(rel);
  SelectionCrackingEngine cracking(rel);
  SidewaysEngine sideways(rel);
  PartialSidewaysEngine partial(rel);

  Rng rng(p.seed + 1);
  for (int batch = 0; batch < 12; ++batch) {
    bench::ApplyRandomUpdates(&rel, domain, p.updates_per_batch, &rng);
    for (size_t q = 0; q < p.queries_per_batch; ++q) {
      QuerySpec spec;
      spec.selections = {
          {AttrName(1), bench::RandomRange(&rng, 1, domain, 0.15)}};
      spec.projections = {AttrName(2), AttrName(3)};
      const auto expected = ZipRows(reference.Run(spec));
      ASSERT_EQ(ZipRows(cracking.Run(spec)), expected)
          << "selection-cracking batch " << batch << " query " << q;
      ASSERT_EQ(ZipRows(sideways.Run(spec)), expected)
          << "sideways batch " << batch << " query " << q;
      ASSERT_EQ(ZipRows(partial.Run(spec)), expected)
          << "partial batch " << batch << " query " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, EngineUpdateTest,
    ::testing::Values(UpdateParam{1, 10, 10},   // HFLV-like
                      UpdateParam{2, 100, 3},   // LFHV-like
                      UpdateParam{3, 1, 1},     // singleton interleave
                      UpdateParam{4, 50, 5}));

TEST(EngineUpdateTest, MultiSelectionUnderUpdates) {
  Catalog catalog;
  Rng data_rng(77);
  const Value domain = 2000;
  Relation& rel = bench::CreateUniformRelation(&catalog, "R", 4, 2000,
                                               domain, &data_rng);
  PlainEngine reference(rel);
  SidewaysEngine sideways(rel);
  Rng rng(78);
  for (int step = 0; step < 40; ++step) {
    bench::ApplyRandomUpdates(&rel, domain, 5, &rng);
    QuerySpec spec;
    spec.selections = {
        {AttrName(1), bench::RandomRange(&rng, 1, domain, 0.2)},
        {AttrName(2), bench::RandomRange(&rng, 1, domain, 0.5)}};
    spec.projections = {AttrName(3), AttrName(4)};
    ASSERT_EQ(ZipRows(sideways.Run(spec)), ZipRows(reference.Run(spec)))
        << "step " << step;
  }
}

TEST(EngineUpdateTest, DeleteEverythingInRange) {
  Catalog catalog;
  Rng data_rng(88);
  Relation& rel = bench::CreateUniformRelation(&catalog, "R", 2, 500, 100,
                                               &data_rng);
  SidewaysEngine sideways(rel);
  QuerySpec spec;
  spec.selections = {{AttrName(1), RangePredicate::Closed(40, 60)}};
  spec.projections = {AttrName(2)};
  sideways.Run(spec);  // maps exist and are cracked
  // Tombstone every matching row.
  const Column& a = rel.column(AttrName(1));
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= 40 && a[i] <= 60) rel.DeleteRow(static_cast<Key>(i));
  }
  EXPECT_EQ(sideways.Run(spec).num_rows, 0u);
}

TEST(EngineUpdateTest, InsertVisibleToLateCreatedMap) {
  Catalog catalog;
  Rng data_rng(89);
  Relation& rel = bench::CreateUniformRelation(&catalog, "R", 3, 500, 100,
                                               &data_rng);
  PlainEngine reference(rel);
  SidewaysEngine sideways(rel);
  QuerySpec spec_b;
  spec_b.selections = {{AttrName(1), RangePredicate::Closed(20, 80)}};
  spec_b.projections = {AttrName(2)};
  sideways.Run(spec_b);  // set and M_{A1,A2} exist
  const Value row[] = {50, 7777, 8888};
  rel.AppendRow(row);
  sideways.Run(spec_b);  // update flows through the tape
  // Now a *new* map is created after the update was tape-logged.
  QuerySpec spec_c = spec_b;
  spec_c.projections = {AttrName(3)};
  ASSERT_EQ(ZipRows(sideways.Run(spec_c)), ZipRows(reference.Run(spec_c)));
}

}  // namespace
}  // namespace crackdb
