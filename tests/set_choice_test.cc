// Section 3.3 "Map Set Choice: Self-organizing Histograms": conjunctive
// queries must run over the map set of the *most selective* predicate
// (minimal bit vector), disjunctive queries over the *least selective*
// one — decided from the cracker indices, not from true cardinalities.

#include <gtest/gtest.h>

#include "bench_util/workload.h"
#include "common/rng.h"
#include "engine/sideways_engine.h"
#include "storage/catalog.h"

namespace crackdb {
namespace {

using bench::AttrName;

class SetChoiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(31);
    rel_ = &bench::CreateUniformRelation(&catalog_, "R", 4, 5000, 10000,
                                         &rng);
  }

  Catalog catalog_;
  Relation* rel_ = nullptr;
};

TEST_F(SetChoiceTest, ColdStartTrustsCallerOrdering) {
  SidewaysEngine engine(*rel_);
  QuerySpec spec;
  spec.selections = {
      {AttrName(1), RangePredicate::Closed(1, 100)},     // most selective
      {AttrName(2), RangePredicate::Closed(1, 9000)},
  };
  spec.projections = {AttrName(3)};
  engine.Run(spec);
  // With no histogram knowledge, the head is the first (most selective by
  // caller convention) selection: set A1 exists, set A2 does not.
  EXPECT_TRUE(engine.HasSet(AttrName(1)));
  EXPECT_FALSE(engine.HasSet(AttrName(2)));
}

TEST_F(SetChoiceTest, HistogramsOverrideCallerOrdering) {
  SidewaysEngine engine(*rel_);
  // Warm both candidate sets so estimates exist.
  for (const char* attr : {"A1", "A2"}) {
    QuerySpec warm;
    warm.selections = {{attr, RangePredicate::Closed(1, 5000)}};
    warm.projections = {AttrName(3)};
    engine.Run(warm);
  }
  const size_t a2_maps_before =
      engine.GetOrCreateSet(AttrName(2)).MapNames().size();
  // Caller lists the WIDE predicate first; the histogram must still pick
  // A2 (narrow) as the head set for the bit-vector pipeline, which makes
  // the A2 set grow a map for A4.
  QuerySpec spec;
  spec.selections = {
      {AttrName(1), RangePredicate::Closed(1, 9500)},   // ~95%
      {AttrName(2), RangePredicate::Closed(1, 200)},    // ~2%
  };
  spec.projections = {AttrName(4)};
  engine.Run(spec);
  EXPECT_GT(engine.GetOrCreateSet(AttrName(2)).MapNames().size(),
            a2_maps_before);
  EXPECT_TRUE(engine.GetOrCreateSet(AttrName(2)).HasMap(AttrName(4)));
}

TEST_F(SetChoiceTest, DisjunctionPicksLeastSelective) {
  SidewaysEngine engine(*rel_);
  for (const char* attr : {"A1", "A2"}) {
    QuerySpec warm;
    warm.selections = {{attr, RangePredicate::Closed(1, 5000)}};
    warm.projections = {AttrName(3)};
    engine.Run(warm);
  }
  QuerySpec spec;
  spec.disjunctive = true;
  spec.selections = {
      {AttrName(2), RangePredicate::Closed(1, 200)},    // narrow
      {AttrName(1), RangePredicate::Closed(1, 9500)},   // wide -> head
  };
  spec.projections = {AttrName(4)};
  engine.Run(spec);
  // The wide predicate's set hosts the query: it gains the A4 map.
  EXPECT_TRUE(engine.GetOrCreateSet(AttrName(1)).HasMap(AttrName(4)));
  EXPECT_FALSE(engine.GetOrCreateSet(AttrName(2)).HasMap(AttrName(4)));
}

TEST_F(SetChoiceTest, EstimateAccuracyImprovesWithCracking) {
  MapSet set(*rel_, AttrName(1));
  CrackerMap& map = set.GetOrCreateMap(AttrName(2));
  const RangePredicate probe = RangePredicate::Closed(2000, 3000);
  const auto before = set.EstimateMatches(probe);
  const size_t truth = rel_->column(AttrName(1)).CountMatches(probe);
  // Cold: bounds are trivial (whole relation).
  EXPECT_EQ(before.lower_bound, 0u);
  EXPECT_EQ(before.upper_bound, rel_->num_rows());
  Rng rng(32);
  for (int q = 0; q < 40; ++q) {
    const Value lo = rng.Uniform(1, 9000);
    set.SidewaysSelect(map, RangePredicate::Closed(lo, lo + 500));
  }
  const auto after = set.EstimateMatches(probe);
  EXPECT_LE(after.lower_bound, truth);
  EXPECT_GE(after.upper_bound, truth);
  // The bracket must have tightened substantially.
  EXPECT_LT(after.upper_bound - after.lower_bound, rel_->num_rows() / 4);
}

}  // namespace
}  // namespace crackdb
