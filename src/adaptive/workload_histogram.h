#ifndef CRACKDB_ADAPTIVE_WORKLOAD_HISTOGRAM_H_
#define CRACKDB_ADAPTIVE_WORKLOAD_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace crackdb {

/// Per-partition view of the workload the serving layer has actually seen:
/// access and latency counters plus a bounded ring of predicate boundaries
/// on the organizing attribute — the split-point candidates the
/// RepartitionPolicy chooses from. This is the "self-organizing" sensor of
/// the adaptive subsystem: it is fed from ShardedEngine::ExecuteBatch (one
/// RecordAccess per partition group, one RecordBoundary per organizing
/// selection), so the cost per query is a couple of relaxed atomic adds.
///
/// Concurrency contract: RecordAccess/RecordBoundary are called by query
/// threads holding the partition map gate *shared*; Reset (which resizes
/// the per-partition cells) is called only under the gate held
/// *exclusively*, i.e. with no recorder in flight. Snapshot and Decay are
/// called from the single repartition tick thread and tolerate concurrent
/// recorders (counters are atomics, the sketch ring has its own mutex).
class WorkloadHistogram {
 public:
  explicit WorkloadHistogram(size_t num_partitions,
                             size_t sketch_capacity = 64);

  size_t num_partitions() const { return cells_.size(); }

  /// Charges `sub_queries` accesses and `micros` of partition-local work
  /// to partition `p`.
  void RecordAccess(size_t p, size_t sub_queries, double micros);

  /// Records `boundary` (the first value of a would-be right slice) as a
  /// split-point candidate for partition `p`. Bounded: the newest
  /// `sketch_capacity` samples survive.
  void RecordBoundary(size_t p, Value boundary);

  struct PartitionSnapshot {
    uint64_t accesses = 0;
    double micros = 0;
    std::vector<Value> boundaries;  // unordered recent sample
  };
  struct Snapshot {
    uint64_t total_accesses = 0;
    std::vector<PartitionSnapshot> partitions;
  };
  /// `with_boundaries = false` skips the sketch-ring copies (and their
  /// per-cell mutexes) — for counter-only consumers like Stats.
  Snapshot Snap(bool with_boundaries = true) const;

  /// Ages the access/latency counters by `factor` in [0, 1] (recency
  /// weighting between ticks). Boundary samples are kept — they are
  /// already bounded and newest-wins.
  void Decay(double factor);

  /// Rebuilds the histogram for a new partition count (after a split or
  /// merge). Caller holds the partition map gate exclusively.
  void Reset(size_t num_partitions);

 private:
  /// One partition's counters. Boxed: atomics are neither movable nor
  /// copyable, and Reset rebuilds the vector.
  struct Cell {
    std::atomic<uint64_t> accesses{0};
    std::atomic<uint64_t> micros{0};  // accumulated whole microseconds
    std::mutex sketch_mu;
    std::vector<Value> ring;
    size_t ring_next = 0;
  };

  size_t sketch_capacity_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

}  // namespace crackdb

#endif  // CRACKDB_ADAPTIVE_WORKLOAD_HISTOGRAM_H_
