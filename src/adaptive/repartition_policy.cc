#include "adaptive/repartition_policy.h"

#include <algorithm>

namespace crackdb {

RepartitionPolicy::RepartitionPolicy(const AdaptiveConfig& config)
    : config_(config) {}

RepartitionDecision RepartitionPolicy::Tick(
    std::span<const PartitionInput> partitions) {
  RepartitionDecision none;
  if (cooldown_ > 0) {
    --cooldown_;
    return none;
  }
  const size_t n = partitions.size();
  if (n == 0) return none;

  uint64_t total = 0;
  for (const PartitionInput& p : partitions) total += p.accesses;
  if (total < config_.min_accesses) return none;
  const double total_d = static_cast<double>(total);

  // Hot split first: the hottest partition whose share exceeds the
  // threshold, if it is still splittable (big enough, cover wider than one
  // value, headroom under max_partitions).
  if (n < config_.max_partitions) {
    size_t hottest = n;
    uint64_t hottest_accesses = 0;
    for (size_t i = 0; i < n; ++i) {
      const PartitionInput& p = partitions[i];
      if (p.accesses <= hottest_accesses) continue;
      if (p.live_rows < config_.min_partition_rows) continue;
      if (p.cover_lo >= p.cover_hi) continue;  // one value: nothing to cut
      hottest = i;
      hottest_accesses = p.accesses;
    }
    if (hottest < n &&
        static_cast<double>(hottest_accesses) / total_d > config_.hot_share) {
      const PartitionInput& hot = partitions[hottest];
      // Split at the median of the observed predicate boundaries inside
      // the slice — the workload's own notion of where the action is —
      // falling back to the midpoint when no boundary landed inside.
      std::vector<Value> inside;
      inside.reserve(hot.split_candidates.size());
      for (Value v : hot.split_candidates) {
        if (v > hot.cover_lo && v <= hot.cover_hi) inside.push_back(v);
      }
      Value split;
      if (!inside.empty()) {
        const size_t mid = inside.size() / 2;
        std::nth_element(inside.begin(), inside.begin() + mid, inside.end());
        split = inside[mid];
      } else {
        // Unsigned midpoint arithmetic sidesteps signed overflow on wide
        // covers; cover_lo < cover_hi guarantees split > cover_lo.
        split = static_cast<Value>(
            static_cast<uint64_t>(hot.cover_lo) +
            (static_cast<uint64_t>(hot.cover_hi) -
             static_cast<uint64_t>(hot.cover_lo) + 1) /
                2);
      }
      RepartitionDecision d;
      d.kind = RepartitionDecision::Kind::kSplit;
      d.partition = hottest;
      d.split_value = split;
      return d;
    }
  }

  // Cold merge: the coldest adjacent pair, if its combined share is below
  // the threshold.
  if (n > config_.min_partitions) {
    size_t best = n;
    uint64_t best_accesses = 0;
    for (size_t i = 0; i + 1 < n; ++i) {
      const uint64_t pair =
          partitions[i].accesses + partitions[i + 1].accesses;
      if (best == n || pair < best_accesses) {
        best = i;
        best_accesses = pair;
      }
    }
    if (best < n &&
        static_cast<double>(best_accesses) / total_d < config_.cold_share) {
      RepartitionDecision d;
      d.kind = RepartitionDecision::Kind::kMerge;
      d.partition = best;
      return d;
    }
  }

  // Layout actions, only with compression enabled. Decompress-hot first:
  // a compressed partition drawing real traffic pays an encoded linear
  // scan (or a crack-on-touch decompression) per query, while raw
  // partitions converge to cracked-index lookups — recovering that
  // partition's query performance outranks saving bytes elsewhere. Then
  // compress-cold: the coldest compressible partition at or below the
  // share threshold.
  if (config_.compression.enabled) {
    size_t hottest = n;
    uint64_t hottest_accesses = 0;
    for (size_t i = 0; i < n; ++i) {
      const PartitionInput& p = partitions[i];
      if (!p.compressed) continue;
      if (hottest != n && p.accesses <= hottest_accesses) continue;
      hottest = i;
      hottest_accesses = p.accesses;
    }
    if (hottest < n && static_cast<double>(hottest_accesses) / total_d >=
                           config_.compression.hot_decompress_share) {
      RepartitionDecision d;
      d.kind = RepartitionDecision::Kind::kDecompress;
      d.partition = hottest;
      return d;
    }

    size_t coldest = n;
    uint64_t coldest_accesses = 0;
    for (size_t i = 0; i < n; ++i) {
      const PartitionInput& p = partitions[i];
      if (!p.compressible) continue;
      if (p.live_rows < config_.compression.min_rows) continue;
      if (coldest != n && p.accesses >= coldest_accesses) continue;
      coldest = i;
      coldest_accesses = p.accesses;
    }
    if (coldest < n && static_cast<double>(coldest_accesses) / total_d <=
                           config_.compression.cold_compress_share) {
      RepartitionDecision d;
      d.kind = RepartitionDecision::Kind::kCompress;
      d.partition = coldest;
      return d;
    }
  }
  return none;
}

void RepartitionPolicy::NoteExecuted(const RepartitionDecision& decision) {
  if (decision.kind != RepartitionDecision::Kind::kNone) {
    cooldown_ = config_.cooldown_ticks;
  }
}

}  // namespace crackdb
