#include "adaptive/repartitioner.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <shared_mutex>
#include <utility>

namespace crackdb {

namespace {

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "repartitioner: %s: %s\n", what, detail.c_str());
  std::abort();
}

}  // namespace

Repartitioner::Repartitioner(Hooks hooks) : hooks_(std::move(hooks)) {
  if (hooks_.relation == nullptr || hooks_.engine == nullptr ||
      !hooks_.create_relation) {
    Die("incomplete hooks", "relation/engine/create_relation are required");
  }
}

bool Repartitioner::Execute(const RepartitionDecision& decision) {
  switch (decision.kind) {
    case RepartitionDecision::Kind::kSplit:
      return ExecuteSplit(decision.partition, decision.split_value);
    case RepartitionDecision::Kind::kMerge:
      return ExecuteMerge(decision.partition);
    case RepartitionDecision::Kind::kCompress:
      return ExecuteCompress(decision.partition);
    case RepartitionDecision::Kind::kDecompress:
      return ExecuteDecompress(decision.partition);
    case RepartitionDecision::Kind::kNone:
      return false;
  }
  return false;
}

bool Repartitioner::ExecuteCompress(size_t partition) {
  PartitionedRelation& relation = *hooks_.relation;
  RwGate::SharedGuard map_guard(relation.map_gate());
  if (partition >= relation.num_partitions()) return false;
  std::unique_lock<std::shared_mutex> lock(relation.partition_mutex(partition));
  const Relation& shard = relation.partition(partition);
  if (shard.compressed() || shard.num_deleted() != 0) return false;
  // Dry-run the codec choice before touching the engine: resetting it and
  // then failing to compress would drop cracked state for nothing.
  bool any = false;
  for (size_t c = 0; c < shard.num_columns() && !any; ++c) {
    any = ChooseCodec(shard.column(c).values(), hooks_.compression) !=
          CodecKind::kRaw;
  }
  if (!any) return false;
  // Fresh engine first, while the relation is still raw (see header).
  hooks_.engine->ResetPartitionEngine(partition);
  return relation.partition(partition).Compress(hooks_.compression) > 0;
}

bool Repartitioner::ExecuteDecompress(size_t partition) {
  PartitionedRelation& relation = *hooks_.relation;
  RwGate::SharedGuard map_guard(relation.map_gate());
  if (partition >= relation.num_partitions()) return false;
  std::unique_lock<std::shared_mutex> lock(relation.partition_mutex(partition));
  const Relation& shard = relation.partition(partition);
  if (!shard.compressed()) return false;
  shard.Decompress();
  return true;
}

Repartitioner::ShardSnapshot Repartitioner::SnapshotShard(size_t partition) {
  PartitionedRelation& relation = *hooks_.relation;
  const Relation& shard = relation.partition(partition);
  ShardSnapshot snap;
  snap.old_relation = &shard;
  snap.old_name = shard.name();
  // A compressed shard decompresses first (under the exclusive lock): the
  // column copy below reads the raw vectors, and split/merge result
  // shards are always born raw. Rare — the policy targets hot (raw)
  // partitions for splits and compressed ones are cold by construction.
  {
    std::shared_lock<std::shared_mutex> peek(
        relation.partition_mutex(partition));
    const bool compressed = shard.compressed();
    peek.unlock();
    if (compressed) {
      std::unique_lock<std::shared_mutex> exclusive(
          relation.partition_mutex(partition));
      shard.Decompress();  // idempotent if raced
    }
  }
  // Shared: excludes writers and cracking queries on this one partition
  // for the duration of a column copy; everything else proceeds.
  std::shared_lock<std::shared_mutex> lock(
      relation.partition_mutex(partition));
  snap.rows = shard.num_rows();
  snap.log_version = shard.log_version();
  snap.deleted = shard.deleted();
  snap.columns.reserve(shard.num_columns());
  for (size_t c = 0; c < shard.num_columns(); ++c) {
    snap.columns.push_back(shard.column(c).values());
  }
  return snap;
}

Relation& Repartitioner::CreateShard(
    const std::vector<std::string>& column_names) {
  const size_t id = hooks_.relation->AllocatePartitionId();
  Relation& shard = hooks_.create_relation(hooks_.relation->name() + "#p" +
                                           std::to_string(id));
  for (const std::string& name : column_names) shard.AddColumn(name);
  return shard;
}

std::vector<std::unique_ptr<Engine>> Repartitioner::BuildEngines(
    const std::vector<Relation*>& shards, size_t first_index) {
  const EngineFactory& factory = hooks_.engine->factory();
  std::vector<std::unique_ptr<Engine>> engines(shards.size());
  auto build = [&](size_t j) {
    engines[j] = factory(*shards[j]);
    if (engines[j] == nullptr) Die("factory returned null", shards[j]->name());
  };
  // Construct each engine on its future home worker (the affinity key the
  // sharded scheduler will use), so presort/index state is born
  // core-local. Inline without a pool; never block on the pool from
  // inside it.
  if (hooks_.pool != nullptr && !hooks_.pool->InWorkerThread()) {
    std::vector<std::future<void>> futures;
    futures.reserve(shards.size());
    for (size_t j = 0; j < shards.size(); ++j) {
      futures.push_back(hooks_.pool->Submit(first_index + j,
                                            [&build, j] { build(j); }));
    }
    for (std::future<void>& future : futures) future.get();
  } else {
    for (size_t j = 0; j < shards.size(); ++j) build(j);
  }
  return engines;
}

namespace {

/// Replays `snap`'s update-log suffix (writes that landed between the
/// snapshot and the swap) into the new shards: inserts re-route by
/// organizing value, deletes follow the remap. Extends `remap` so it
/// covers every row the old shard ever held. Caller holds the map gate
/// exclusively, so the old shard is quiescent.
void ReplayDelta(const Repartitioner::Hooks& hooks, const Relation& old_shard,
                 size_t from_version, const std::vector<Relation*>& shards,
                 const std::function<uint32_t(Value)>& route,
                 std::vector<PartitionedRelation::Location>* remap) {
  const size_t organizing = hooks.relation->organizing_ordinal();
  std::vector<Value> row(old_shard.num_columns());
  for (size_t e = from_version; e < old_shard.log_version(); ++e) {
    const UpdateEvent& event = old_shard.log_entry(e);
    if (event.kind == UpdateEvent::Kind::kInsert) {
      const Key key = event.key;
      for (size_t c = 0; c < row.size(); ++c) {
        row[c] = old_shard.column(c)[key];
      }
      const uint32_t j = route(row[organizing]);
      // AppendRow (not BulkLoadRow): the new shard's engines were built
      // before the swap, so they absorb these rows through their normal
      // pending/ripple watermarks, exactly like any live insert.
      const Key local = shards[j]->AppendRow(row);
      if (key >= remap->size()) {
        remap->resize(key + 1, {0, kInvalidKey});
      }
      (*remap)[key] = {j, local};
    } else {
      const PartitionedRelation::Location& to = (*remap)[event.key];
      shards[to.partition]->DeleteRow(to.local_key);
    }
  }
}

}  // namespace

bool Repartitioner::ExecuteSplit(size_t partition, Value split_value) {
  PartitionedRelation& relation = *hooks_.relation;

  Value slice_start = 0;
  ShardSnapshot snap;
  {
    RwGate::SharedGuard gate(relation.map_gate());
    if (relation.spec().kind != PartitionSpec::Kind::kRange) return false;
    if (partition >= relation.num_partitions()) return false;
    if (split_value <= relation.SliceCoverLo(partition) ||
        split_value > relation.SliceCoverHi(partition)) {
      return false;
    }
    slice_start = relation.SliceCoverLo(partition);
    snap = SnapshotShard(partition);
  }

  // Build phase — no locks. Only this (single in-flight) repartition
  // mutates the map, so the validated geometry cannot go stale.
  const Value domain_lo = relation.spec().domain_lo;
  const Value domain_hi = relation.spec().domain_hi;
  auto route = [domain_lo, domain_hi, split_value](Value v) -> uint32_t {
    return std::clamp(v, domain_lo, domain_hi) < split_value ? 0u : 1u;
  };
  const std::vector<std::string>& column_names =
      snap.old_relation->column_names();
  std::vector<Relation*> shards{&CreateShard(column_names),
                                &CreateShard(column_names)};
  const size_t organizing = relation.organizing_ordinal();
  // Built in SpliceRange's parameter shape up front, so nothing is copied
  // inside the stop-the-world swap window below.
  std::vector<std::vector<PartitionedRelation::Location>> remaps(1);
  std::vector<PartitionedRelation::Location>& remap = remaps[0];
  remap.resize(snap.rows);
  std::vector<Value> row(column_names.size());
  for (size_t k = 0; k < snap.rows; ++k) {
    for (size_t c = 0; c < row.size(); ++c) row[c] = snap.columns[c][k];
    const uint32_t j = route(row[organizing]);
    const Key local = shards[j]->BulkLoadRow(row);
    remap[k] = {j, local};
    if (snap.deleted[k]) shards[j]->DeleteRow(local);
  }
  std::vector<std::unique_ptr<Engine>> engines =
      BuildEngines(shards, partition);

  {
    RwGate::ExclusiveGuard gate(relation.map_gate());
    ReplayDelta(hooks_, *snap.old_relation, snap.log_version, shards, route,
                &remap);
    relation.SpliceRange(partition, 1, shards, {slice_start, split_value},
                         remaps);
    hooks_.engine->SpliceEngines(partition, 1, std::move(engines));
    if (hooks_.histogram != nullptr) {
      hooks_.histogram->Reset(relation.num_partitions());
    }
  }
  if (hooks_.drop_relation) hooks_.drop_relation(snap.old_name);
  return true;
}

bool Repartitioner::ExecuteMerge(size_t left) {
  PartitionedRelation& relation = *hooks_.relation;

  Value slice_start = 0;
  ShardSnapshot snap_left;
  ShardSnapshot snap_right;
  {
    RwGate::SharedGuard gate(relation.map_gate());
    if (relation.spec().kind != PartitionSpec::Kind::kRange) return false;
    if (left + 1 >= relation.num_partitions()) return false;
    slice_start = relation.SliceCoverLo(left);
    // Degenerate geometries (more load-time partitions than domain
    // values) have zero-width or beyond-domain slices; a merge whose
    // result would be unreachable or would collide with the next
    // surviving slice start is not executable — decline, don't die.
    if (slice_start > relation.spec().domain_hi) return false;
    if (left + 2 < relation.num_partitions() &&
        relation.SliceCoverLo(left + 2) <= slice_start) {
      return false;
    }
    // One shard lock at a time; the two snapshots carry independent log
    // watermarks and the replay reconciles each on its own.
    snap_left = SnapshotShard(left);
    snap_right = SnapshotShard(left + 1);
  }

  const std::vector<std::string>& column_names =
      snap_left.old_relation->column_names();
  std::vector<Relation*> shards{&CreateShard(column_names)};
  auto route = [](Value) -> uint32_t { return 0; };
  std::vector<Value> row(column_names.size());
  std::vector<std::vector<PartitionedRelation::Location>> remaps(2);
  const ShardSnapshot* snaps[2] = {&snap_left, &snap_right};
  for (size_t side = 0; side < 2; ++side) {
    const ShardSnapshot& snap = *snaps[side];
    remaps[side].resize(snap.rows);
    for (size_t k = 0; k < snap.rows; ++k) {
      for (size_t c = 0; c < row.size(); ++c) row[c] = snap.columns[c][k];
      const Key local = shards[0]->BulkLoadRow(row);
      remaps[side][k] = {0, local};
      if (snap.deleted[k]) shards[0]->DeleteRow(local);
    }
  }
  std::vector<std::unique_ptr<Engine>> engines = BuildEngines(shards, left);

  {
    RwGate::ExclusiveGuard gate(relation.map_gate());
    ReplayDelta(hooks_, *snap_left.old_relation, snap_left.log_version,
                shards, route, &remaps[0]);
    ReplayDelta(hooks_, *snap_right.old_relation, snap_right.log_version,
                shards, route, &remaps[1]);
    relation.SpliceRange(left, 2, shards, {slice_start}, remaps);
    hooks_.engine->SpliceEngines(left, 2, std::move(engines));
    if (hooks_.histogram != nullptr) {
      hooks_.histogram->Reset(relation.num_partitions());
    }
  }
  if (hooks_.drop_relation) {
    hooks_.drop_relation(snap_left.old_name);
    hooks_.drop_relation(snap_right.old_name);
  }
  return true;
}

}  // namespace crackdb
