#include "adaptive/workload_histogram.h"

#include <algorithm>

namespace crackdb {

WorkloadHistogram::WorkloadHistogram(size_t num_partitions,
                                     size_t sketch_capacity)
    : sketch_capacity_(std::max<size_t>(1, sketch_capacity)) {
  Reset(num_partitions);
}

void WorkloadHistogram::RecordAccess(size_t p, size_t sub_queries,
                                     double micros) {
  if (p >= cells_.size()) return;
  Cell& cell = *cells_[p];
  cell.accesses.fetch_add(sub_queries, std::memory_order_relaxed);
  cell.micros.fetch_add(static_cast<uint64_t>(std::max(0.0, micros)),
                        std::memory_order_relaxed);
}

void WorkloadHistogram::RecordBoundary(size_t p, Value boundary) {
  if (p >= cells_.size()) return;
  Cell& cell = *cells_[p];
  std::lock_guard<std::mutex> lock(cell.sketch_mu);
  if (cell.ring.size() < sketch_capacity_) {
    cell.ring.push_back(boundary);
  } else {
    cell.ring[cell.ring_next] = boundary;
  }
  cell.ring_next = (cell.ring_next + 1) % sketch_capacity_;
}

WorkloadHistogram::Snapshot WorkloadHistogram::Snap(
    bool with_boundaries) const {
  Snapshot snap;
  snap.partitions.resize(cells_.size());
  for (size_t p = 0; p < cells_.size(); ++p) {
    Cell& cell = *cells_[p];
    PartitionSnapshot& out = snap.partitions[p];
    out.accesses = cell.accesses.load(std::memory_order_relaxed);
    out.micros =
        static_cast<double>(cell.micros.load(std::memory_order_relaxed));
    if (with_boundaries) {
      std::lock_guard<std::mutex> lock(cell.sketch_mu);
      out.boundaries = cell.ring;
    }
    snap.total_accesses += out.accesses;
  }
  return snap;
}

void WorkloadHistogram::Decay(double factor) {
  factor = std::clamp(factor, 0.0, 1.0);
  for (const auto& cell : cells_) {
    // Load-scale-store is approximate under concurrent recorders; the
    // policy only needs shares, not exact counts.
    const uint64_t a = cell->accesses.load(std::memory_order_relaxed);
    cell->accesses.store(static_cast<uint64_t>(static_cast<double>(a) * factor),
                         std::memory_order_relaxed);
    const uint64_t m = cell->micros.load(std::memory_order_relaxed);
    cell->micros.store(static_cast<uint64_t>(static_cast<double>(m) * factor),
                       std::memory_order_relaxed);
  }
}

void WorkloadHistogram::Reset(size_t num_partitions) {
  cells_.clear();
  cells_.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    cells_.push_back(std::make_unique<Cell>());
    cells_.back()->ring.reserve(sketch_capacity_);
  }
}

}  // namespace crackdb
