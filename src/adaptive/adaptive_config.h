#ifndef CRACKDB_ADAPTIVE_ADAPTIVE_CONFIG_H_
#define CRACKDB_ADAPTIVE_ADAPTIVE_CONFIG_H_

#include <cstddef>

#include "storage/codec.h"

namespace crackdb {

/// Knobs of the adaptive-repartitioning subsystem (src/adaptive): when the
/// workload histogram is consulted, what counts as a hot or cold
/// partition, and the hysteresis that keeps the partition map from
/// thrashing. Off by default; enable per table in
/// Database::RegisterSharded. Only range-partitioned tables adapt — hash
/// sharding is balanced by construction, so ticks on hash tables are
/// no-ops.
///
/// The no-thrash invariant the defaults encode: `hot_share` must be well
/// above `cold_share`, so the two halves of a fresh split (each carrying
/// roughly half the hot traffic) can neither re-split immediately nor be
/// merged straight back. `cooldown_ticks` plus the histogram reset after
/// every executed action add time-based hysteresis on top; see
/// RepartitionPolicy.
struct AdaptiveConfig {
  /// Master switch. When false the table keeps its load-time partition map
  /// and MaybeRepartition is a no-op (the control arm of
  /// bench_adaptive_repartition).
  bool enabled = false;

  /// Ops (queries + writes) between automatic background ticks. 0 = no
  /// background trigger; repartitioning then happens only on manual
  /// Database::MaybeRepartition calls.
  size_t trigger_interval = 0;

  /// Minimum observed accesses (histogram total) before any decision.
  size_t min_accesses = 64;

  /// Split a partition when its share of all observed accesses exceeds
  /// this.
  double hot_share = 0.40;

  /// Merge an adjacent partition pair when their *combined* access share
  /// is below this.
  double cold_share = 0.05;

  /// Never split a partition holding fewer live rows than this.
  size_t min_partition_rows = 2048;

  /// Bounds on the partition count the policy may reach.
  size_t max_partitions = 64;
  size_t min_partitions = 2;

  /// Ticks to sit out after an executed split/merge (hysteresis).
  size_t cooldown_ticks = 2;

  /// Per-tick decay factor applied to the access counters, so the
  /// histogram tracks the recent workload instead of its full history.
  double decay = 0.5;

  /// Bounded per-partition sample of predicate boundaries (split-point
  /// candidates) kept by the workload histogram.
  size_t sketch_capacity = 64;

  /// Hot/cold layout adaptation (storage/codec.h): when
  /// `compression.enabled`, ticks may also compress a cold partition's
  /// columns (share of observed accesses at or below
  /// `compression.cold_compress_share`) or decompress a compressed
  /// partition that turned hot (share at or above
  /// `compression.hot_decompress_share`). Rides the same histogram,
  /// cooldown, and min_accesses hysteresis as split/merge — and therefore
  /// the same range-sharding requirement for *adaptive* layout changes;
  /// hash-sharded tables still get `compress_on_load` and the query-driven
  /// crack-on-touch decompression.
  CompressionConfig compression;
};

}  // namespace crackdb

#endif  // CRACKDB_ADAPTIVE_ADAPTIVE_CONFIG_H_
