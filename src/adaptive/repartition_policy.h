#ifndef CRACKDB_ADAPTIVE_REPARTITION_POLICY_H_
#define CRACKDB_ADAPTIVE_REPARTITION_POLICY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "adaptive/adaptive_config.h"
#include "common/types.h"

namespace crackdb {

/// One action the policy asks the Repartitioner to execute. kSplit cuts
/// partition `partition` in two: the left half keeps the old slice start,
/// the right half starts at `split_value`. kMerge fuses adjacent
/// partitions `partition` and `partition + 1` into one slice. kCompress
/// and kDecompress change partition `partition`'s physical layout in
/// place (storage/codec.h) — no rows move and the map is unchanged.
struct RepartitionDecision {
  enum class Kind { kNone, kSplit, kMerge, kCompress, kDecompress };

  Kind kind = Kind::kNone;
  size_t partition = 0;
  Value split_value = 0;  // kSplit only: first value of the right slice
};

/// Pure decision logic of the adaptive subsystem — no locks, no storage
/// references, unit-testable in isolation. Each Tick inspects a
/// per-partition view of the workload histogram and proposes at most one
/// action: a hot-split, a cold-merge, or (with compression enabled) a
/// hot-decompress or cold-compress.
///
/// Hysteresis, so the map never thrashes:
///  - nothing fires below `min_accesses` observed accesses;
///  - an executed action starts a `cooldown_ticks` sit-out (call
///    NoteExecuted), and the caller resets the histogram after every
///    executed action, so the next decision is based purely on
///    post-reorganization traffic;
///  - `hot_share >> cold_share` keeps a fresh split's halves (each
///    carrying about half the hot traffic) from re-splitting or
///    re-merging — the no-thrash property pinned down in
///    adaptive_repartition_test.
class RepartitionPolicy {
 public:
  explicit RepartitionPolicy(const AdaptiveConfig& config);

  /// One partition's input: recent accesses, current size, the value
  /// cover of its slice (clamped to the domain), and the histogram's
  /// split-point candidates (each the first value of a would-be right
  /// slice).
  struct PartitionInput {
    uint64_t accesses = 0;
    size_t live_rows = 0;
    Value cover_lo = 0;
    Value cover_hi = 0;
    std::vector<Value> split_candidates;
    /// Layout inputs for the compression decisions: whether the partition
    /// is currently compressed, and whether it could be (raw, no
    /// tombstones). Both false when compression is disabled.
    bool compressed = false;
    bool compressible = false;
  };

  /// Evaluates one tick. Never mutates hysteresis state except for the
  /// cooldown countdown; call NoteExecuted when the returned decision was
  /// actually applied.
  RepartitionDecision Tick(std::span<const PartitionInput> partitions);

  /// Informs the policy its last decision was executed: starts the
  /// cooldown.
  void NoteExecuted(const RepartitionDecision& decision);

  const AdaptiveConfig& config() const { return config_; }

 private:
  AdaptiveConfig config_;
  size_t cooldown_ = 0;
};

}  // namespace crackdb

#endif  // CRACKDB_ADAPTIVE_REPARTITION_POLICY_H_
