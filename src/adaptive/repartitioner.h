#ifndef CRACKDB_ADAPTIVE_REPARTITIONER_H_
#define CRACKDB_ADAPTIVE_REPARTITIONER_H_

#include <functional>
#include <string>
#include <vector>

#include "adaptive/repartition_policy.h"
#include "adaptive/workload_histogram.h"
#include "common/thread_pool.h"
#include "engine/sharded_engine.h"
#include "storage/partitioner.h"
#include "storage/relation.h"

namespace crackdb {

/// Executes one RepartitionDecision as an *online* operation against a
/// live table. The protocol keeps the expensive work off the serving
/// critical path:
///
///  1. **Snapshot** (map gate shared + partition lock shared): copy the
///     replaced shard's rows, tombstones, and log watermark. Queries on
///     other partitions are untouched; queries on the replaced shard wait
///     only for a column memcpy, not for the rebuild.
///  2. **Build** (no locks): route the snapshot into fresh shard
///     relations (created in the catalog through a hook), replicate
///     tombstones, and construct the new per-shard engines — on the
///     affine ThreadPool when one is available, with the target partition
///     index as the affinity key, so each new shard's structures are born
///     on their future home worker.
///  3. **Swap** (map gate exclusive): replay the shard's update-log
///     suffix (writes that landed during the build) into the new
///     relations — their engines absorb these lazily through the normal
///     pending/ripple watermarks — then splice relations, slice starts,
///     mutexes, the global-key router, and the engines, and reset the
///     workload histogram to the new partition count. Pure in-memory
///     surgery: the swap never blocks on the pool, which is what makes
///     the RwGate protocol deadlock-free.
///
/// Afterwards the retired shard relations are dropped from the catalog
/// (nothing can reference them once the swap completed). Results are
/// row-for-row identical to never having repartitioned: global keys are
/// stable, tombstones travel with their rows, and the log replay makes
/// the new shards hold exactly the rows the old one held at swap time.
///
/// One Execute runs at a time per table (the Database's in-flight flag);
/// never call it from a pool worker of the same pool (the build phase
/// blocks on engine-construction futures).
class Repartitioner {
 public:
  /// Everything the repartitioner is allowed to touch, handed down by the
  /// Database so the subsystem needs no friend access to the facade.
  struct Hooks {
    PartitionedRelation* relation = nullptr;
    ShardedEngine* engine = nullptr;
    WorkloadHistogram* histogram = nullptr;  // may be null
    ThreadPool* pool = nullptr;              // may be null
    /// Creates an empty relation in the owning catalog (the Database
    /// takes its tables lock inside). Called with no other lock held.
    std::function<Relation&(const std::string&)> create_relation;
    /// Drops a retired shard relation; called after the swap, with no
    /// lock held. May be empty (retired shards then leak until teardown).
    std::function<void(const std::string&)> drop_relation;
    /// Codec selection knobs for kCompress decisions.
    CompressionConfig compression;
  };

  explicit Repartitioner(Hooks hooks);

  /// Executes one decision — split, merge, compress, or decompress.
  /// Returns false, leaving the table untouched, when the decision does
  /// not match the table's state — wrong kind, out-of-range index, split
  /// value outside the slice cover, compress of an already-compressed (or
  /// incompressible) partition, decompress of a raw one.
  bool Execute(const RepartitionDecision& decision);

 private:
  /// One replaced shard's state captured in the snapshot phase.
  struct ShardSnapshot {
    const Relation* old_relation = nullptr;
    std::string old_name;
    size_t rows = 0;         // rows at snapshot time
    size_t log_version = 0;  // watermark the swap replays from
    std::vector<std::vector<Value>> columns;  // [ordinal][local key]
    std::vector<bool> deleted;
  };

  bool ExecuteSplit(size_t partition, Value split_value);
  bool ExecuteMerge(size_t left);

  /// Layout changes, in place under the partition's exclusive lock (map
  /// gate shared — the map itself is untouched). Compress stamps a fresh
  /// partition engine *first*, while the relation is still raw: the old
  /// engine's auxiliary copies of a cold partition are exactly the bytes
  /// being reclaimed, and eager engine kinds read the base columns at
  /// construction. Decompress keeps the engine — it was stamped fresh at
  /// compress time and no write landed since (writes decompress first).
  bool ExecuteCompress(size_t partition);
  bool ExecuteDecompress(size_t partition);

  ShardSnapshot SnapshotShard(size_t partition);
  Relation& CreateShard(const std::vector<std::string>& column_names);
  std::vector<std::unique_ptr<Engine>> BuildEngines(
      const std::vector<Relation*>& shards, size_t first_index);

  Hooks hooks_;
};

}  // namespace crackdb

#endif  // CRACKDB_ADAPTIVE_REPARTITIONER_H_
