// Per-query span recorder. A QueryTrace is created at admission (span 0,
// "query"), carried by pointer through the batch pipeline, and filled in
// by whichever thread runs each per-partition affine task:
//
//   query                                   (root, id 0)
//   ├─ admission                            (validation + spec compile)
//   ├─ partition p                          (one per partition touched,
//   │                                        opened at fan-out so the
//   │                                        queue wait nests inside it)
//   │  ├─ queue_wait                        (fan-out -> task start)
//   │  ├─ lock_wait                         (partition mutex acquisition)
//   │  ├─ decompress | encoded_fold         (codec layer, when taken)
//   │  ├─ select                            (cracking / scan kernel time)
//   │  └─ fold | fetch | visit              (consume-mode kernel time)
//   └─ merge                                (shard-merge on the caller)
//
// All timestamps are micros relative to the trace's own steady-clock
// epoch (captured at construction), so spans from different worker
// threads land on one consistent timeline. AddSpan/SetDuration take a
// mutex — tracing is opt-in per query (QueryBuilder::Trace()) and the
// contention is one uncontended lock per span, not per row.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace crackdb::obs {

struct TraceSpan {
  static constexpr uint32_t kNoParent = 0xffffffffu;

  uint32_t id = 0;
  uint32_t parent = kNoParent;
  int32_t partition = -1;        // -1: not partition-scoped
  std::string name;
  double start_micros = 0.0;     // relative to the trace epoch
  double duration_micros = 0.0;
};

class QueryTrace {
 public:
  // Creates the root span (id 0, "query") at relative time 0. Callers
  // close it with SetDuration(kRootSpan, NowMicros()) when the query
  // finishes.
  QueryTrace();

  static constexpr uint32_t kRootSpan = 0;

  // Micros since this trace's epoch.
  double NowMicros() const;

  // Records a span and returns its id. Thread-safe.
  uint32_t AddSpan(uint32_t parent, int32_t partition, std::string name,
                   double start_micros, double duration_micros);

  // Re-stamps a span's duration (used to close parent spans whose
  // children were recorded first). Thread-safe.
  void SetDuration(uint32_t id, double duration_micros);

  std::vector<TraceSpan> Spans() const;

  // Indented tree, children ordered by start time:
  //   query                          1234.5us
  //     partition 3                   610.2us
  //       lock_wait                     1.1us
  //       ...
  std::string Format() const;

  // Micros covered by the union of the root's direct-child intervals
  // (children overlap: partition spans open at fan-out) — used by tests
  // to check the tree accounts for the measured wall time.
  double ChildMicros() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

}  // namespace crackdb::obs
