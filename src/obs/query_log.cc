#include "obs/query_log.h"

namespace crackdb::obs {

uint64_t QueryLog::Append(QueryLogEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.query_id = next_id_++;
  const uint64_t id = entry.query_id;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[head_] = std::move(entry);
    head_ = (head_ + 1) % capacity_;
  }
  return id;
}

std::vector<QueryLogEntry> QueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryLogEntry> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

}  // namespace crackdb::obs
