// Process-wide metrics registry: named counters, gauges, and log-bucketed
// histograms on relaxed atomics. The hot-path contract is one relaxed
// atomic add per event (plus one relaxed bool load for the global enable
// flag); name lookup happens once per call site, which caches the returned
// pointer in a function-local static. Metric objects are never destroyed
// or moved once created, so cached pointers stay valid for the process
// lifetime.
//
// Families (per-partition, per-worker, ...) are just label-suffixed names:
// `WithLabel("pool_tasks_total", "worker", 3)` yields
// `pool_tasks_total{worker="3"}`. Callers that need a dense family cache a
// vector of pointers at construction time (see ThreadPool).
//
// docs/OBSERVABILITY.md carries the full metric inventory and the
// overhead contract; bench_observability enforces the latter.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace crackdb::obs {

// Relaxed add for atomic<double> without relying on C++20 floating-point
// fetch_add support across toolchains.
inline void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

// Relaxed max for atomic<double>.
inline void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Global kill switch. Off means every Add/Set/Observe is a single relaxed
// load and return — the "pre-observability" execution path used as the
// baseline arm in bench_observability. Defaults to on.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

// Monotone counter. Add() tolerates fractional increments (micros).
class Counter {
 public:
  void Add(double v = 1.0) {
    if (!MetricsEnabled()) return;
    AtomicAdd(value_, v);
  }
  // Ungated add, for deferred-flush call sites (ShardedEngine accumulates
  // under a lock it already holds and drains periodically): increments
  // that were gathered while metrics were enabled must land even if the
  // flag has been toggled off by flush time.
  void AddAlways(double v) { AtomicAdd(value_, v); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Last-write-wins gauge.
class Gauge {
 public:
  void Set(double v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(double v) {
    if (!MetricsEnabled()) return;
    AtomicAdd(value_, v);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Histogram over power-of-two buckets: bucket i counts observations
// <= 2^i (micros-scale by convention), with a +Inf tail, plus exact
// count/sum/max. Good to ~2x relative error on quantiles, which is all a
// latency histogram needs; the exact sum keeps mean and totals precise.
class Histogram {
 public:
  static constexpr size_t kBuckets = 28;  // 2^27 us ≈ 134 s tail start

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  // Cumulative count of observations <= UpperBound(i).
  uint64_t CumulativeCount(size_t bucket) const;
  static double UpperBound(size_t bucket);  // +Inf for the last bucket

 private:
  std::atomic<uint64_t> buckets_[kBuckets + 1] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

// One row of a registry snapshot (system.metrics / text exposition).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;    // counter/gauge value; histogram sum
  uint64_t count = 0;    // histogram observation count, 0 otherwise
  double max = 0.0;      // histogram max, 0 otherwise
};

// Named metric store. Creation takes a mutex; the returned references are
// stable forever (node-based storage). Names are unique across kinds —
// asking for an existing name with a different kind aborts (it is a
// programming error, caught in tests long before production).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Stable-ordered (sorted by name) snapshot of every metric.
  std::vector<MetricSample> Snapshot() const;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  struct Impl;
  Impl& impl() const;
};

// `base{key="value"}` — Prometheus-style label suffix for metric families.
std::string WithLabel(const std::string& base, const std::string& key,
                      const std::string& value);
std::string WithLabel(const std::string& base, const std::string& key,
                      int64_t value);

// Prometheus text exposition of the global registry: `# TYPE` lines,
// counter/gauge samples, histogram `_bucket{le=...}`/`_sum`/`_count`.
std::string RenderMetricsText();

}  // namespace crackdb::obs
