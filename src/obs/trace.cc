#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace crackdb::obs {

QueryTrace::QueryTrace() : epoch_(std::chrono::steady_clock::now()) {
  spans_.push_back(TraceSpan{/*id=*/0, TraceSpan::kNoParent, /*partition=*/-1,
                             "query", /*start=*/0.0, /*duration=*/0.0});
}

double QueryTrace::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

uint32_t QueryTrace::AddSpan(uint32_t parent, int32_t partition,
                             std::string name, double start_micros,
                             double duration_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = static_cast<uint32_t>(spans_.size());
  spans_.push_back(TraceSpan{id, parent, partition, std::move(name),
                             start_micros, duration_micros});
  return id;
}

void QueryTrace::SetDuration(uint32_t id, double duration_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < spans_.size()) spans_[id].duration_micros = duration_micros;
}

std::vector<TraceSpan> QueryTrace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

double QueryTrace::ChildMicros() const {
  // Union, not sum: the root's children overlap by construction — every
  // partition span opens at fan-out so its queue wait nests inside it,
  // which means concurrent (or concurrently-waiting) partitions cover
  // the same stretch of the timeline. The covered-interval union is the
  // honest "time the tree accounts for".
  std::vector<std::pair<double, double>> intervals;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TraceSpan& s : spans_) {
      if (s.parent != kRootSpan) continue;
      intervals.emplace_back(s.start_micros,
                             s.start_micros + s.duration_micros);
    }
  }
  std::sort(intervals.begin(), intervals.end());
  double total = 0.0;
  double covered_to = -1.0;
  for (const auto& [start, end] : intervals) {
    const double from = std::max(start, covered_to);
    if (end > from) total += end - from;
    covered_to = std::max(covered_to, end);
  }
  return total;
}

namespace {

void FormatNode(const std::vector<TraceSpan>& spans,
                const std::vector<std::vector<uint32_t>>& children,
                uint32_t id, int depth, std::string* out) {
  const TraceSpan& s = spans[id];
  char line[160];
  std::string label = s.name;
  if (s.partition >= 0) {
    label.push_back(' ');
    label += std::to_string(s.partition);
  }
  std::snprintf(line, sizeof(line), "%*s%-*s %10.1fus  @%.1f\n", depth * 2,
                "", 32 - depth * 2, label.c_str(), s.duration_micros,
                s.start_micros);
  *out += line;
  for (uint32_t child : children[id]) {
    FormatNode(spans, children, child, depth + 1, out);
  }
}

}  // namespace

std::string QueryTrace::Format() const {
  const std::vector<TraceSpan> spans = Spans();
  std::vector<std::vector<uint32_t>> children(spans.size());
  for (const TraceSpan& s : spans) {
    if (s.parent != TraceSpan::kNoParent && s.parent < spans.size()) {
      children[s.parent].push_back(s.id);
    }
  }
  for (auto& kids : children) {
    std::sort(kids.begin(), kids.end(), [&](uint32_t a, uint32_t b) {
      return spans[a].start_micros < spans[b].start_micros;
    });
  }
  std::string out;
  if (!spans.empty()) FormatNode(spans, children, 0, 0, &out);
  return out;
}

}  // namespace crackdb::obs
