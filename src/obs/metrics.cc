#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <map>
#include <mutex>

namespace crackdb::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void Histogram::Observe(double v) {
  if (!MetricsEnabled()) return;
  size_t b = 0;
  double bound = 1.0;
  while (b < kBuckets && v > bound) {
    bound *= 2.0;
    ++b;
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMax(max_, v);
}

uint64_t Histogram::CumulativeCount(size_t bucket) const {
  uint64_t total = 0;
  for (size_t b = 0; b <= bucket && b <= kBuckets; ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::UpperBound(size_t bucket) {
  if (bucket >= kBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(bucket));  // 2^bucket
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  // Node-based containers: references handed out stay valid forever.
  std::map<std::string, MetricKind> kinds;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*> counter_by_name;
  std::map<std::string, Gauge*> gauge_by_name;
  std::map<std::string, Histogram*> histogram_by_name;

  void CheckKind(const std::string& name, MetricKind want) {
    auto it = kinds.find(name);
    if (it != kinds.end() && it->second != want) {
      std::fprintf(stderr,
                   "MetricsRegistry: metric '%s' re-requested with a "
                   "different kind\n",
                   name.c_str());
      std::abort();
    }
  }
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();  // leaked: outlives all static callers
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.CheckKind(name, MetricKind::kCounter);
  auto it = im.counter_by_name.find(name);
  if (it != im.counter_by_name.end()) return *it->second;
  im.counters.emplace_back();
  Counter* c = &im.counters.back();
  im.counter_by_name.emplace(name, c);
  im.kinds.emplace(name, MetricKind::kCounter);
  return *c;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.CheckKind(name, MetricKind::kGauge);
  auto it = im.gauge_by_name.find(name);
  if (it != im.gauge_by_name.end()) return *it->second;
  im.gauges.emplace_back();
  Gauge* g = &im.gauges.back();
  im.gauge_by_name.emplace(name, g);
  im.kinds.emplace(name, MetricKind::kGauge);
  return *g;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.CheckKind(name, MetricKind::kHistogram);
  auto it = im.histogram_by_name.find(name);
  if (it != im.histogram_by_name.end()) return *it->second;
  im.histograms.emplace_back();
  Histogram* h = &im.histograms.back();
  im.histogram_by_name.emplace(name, h);
  im.kinds.emplace(name, MetricKind::kHistogram);
  return *h;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<MetricSample> out;
  out.reserve(im.kinds.size());
  for (const auto& [name, kind] : im.kinds) {
    MetricSample s;
    s.name = name;
    s.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        s.value = im.counter_by_name.at(name)->value();
        break;
      case MetricKind::kGauge:
        s.value = im.gauge_by_name.at(name)->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram* h = im.histogram_by_name.at(name);
        s.value = h->sum();
        s.count = h->count();
        s.max = h->max();
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already name-sorted
}

std::string WithLabel(const std::string& base, const std::string& key,
                      const std::string& value) {
  // Compose onto an already-labelled base: a{x="1"} + (y,2) -> a{x="1",y="2"}
  std::string out;
  const size_t brace = base.find('{');
  if (brace == std::string::npos) {
    out = base + "{" + key + "=\"" + value + "\"}";
  } else {
    out = base.substr(0, base.size() - 1) + "," + key + "=\"" + value + "\"}";
  }
  return out;
}

std::string WithLabel(const std::string& base, const std::string& key,
                      int64_t value) {
  return WithLabel(base, key, std::to_string(value));
}

namespace {

// Split `base{labels}` into base and the inner label list (may be empty).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace + 1, name.size() - brace - 2);
  }
}

void AppendNumber(std::string* out, double v) {
  if (std::isinf(v)) {
    *out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[64];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  *out += buf;
}

}  // namespace

std::string RenderMetricsText() {
  const std::vector<MetricSample> samples =
      MetricsRegistry::Global().Snapshot();
  std::string out;
  out.reserve(samples.size() * 64);
  std::string last_typed_base;
  for (const MetricSample& s : samples) {
    std::string base, labels;
    SplitLabels(s.name, &base, &labels);
    if (base != last_typed_base) {
      out += "# TYPE " + base + " ";
      out += s.kind == MetricKind::kCounter   ? "counter"
             : s.kind == MetricKind::kGauge   ? "gauge"
                                              : "histogram";
      out += "\n";
      last_typed_base = base;
    }
    if (s.kind != MetricKind::kHistogram) {
      out += s.name + " ";
      AppendNumber(&out, s.value);
      out += "\n";
      continue;
    }
    const Histogram& h = MetricsRegistry::Global().GetHistogram(s.name);
    for (size_t b = 0; b <= Histogram::kBuckets; ++b) {
      out += base + "_bucket{";
      if (!labels.empty()) out += labels + ",";
      out += "le=\"";
      AppendNumber(&out, Histogram::UpperBound(b));
      out += "\"} ";
      AppendNumber(&out, static_cast<double>(h.CumulativeCount(b)));
      out += "\n";
    }
    out += base + "_sum";
    if (!labels.empty()) out += "{" + labels + "}";
    out += " ";
    AppendNumber(&out, s.value);
    out += "\n";
    out += base + "_count";
    if (!labels.empty()) out += "{" + labels + "}";
    out += " ";
    AppendNumber(&out, static_cast<double>(s.count));
    out += "\n";
  }
  return out;
}

}  // namespace crackdb::obs
