// Fixed-capacity ring buffer of recently finished queries. The Database
// owns one and appends entries from the fluent Execute path: every traced
// and every system.* query, plus a 1-in-64 sample of the untraced rest
// (system.* queries therefore see themselves in system.query_log on the
// *next* read — the snapshot is taken before the append). Sampling keeps
// the overhead contract: an append is a mutex acquisition plus a string
// copy, far over the per-query budget bench_observability enforces.
// Appends are skipped entirely when obs::MetricsEnabled() is off, keeping
// the disabled arm byte-identical to the pre-observability path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace crackdb::obs {

struct QueryLogEntry {
  uint64_t query_id = 0;          // monotone per Database
  std::string table;
  int32_t kind = 0;               // ConsumeKind as int
  uint64_t rows = 0;              // result count
  // Engine-attributed execution micros (select + reconstruct + prepare):
  // derived from the result's CostBreakdown, so logging stays clock-free.
  // Wall time, when it matters, lives in the trace.
  double engine_micros = 0.0;
  double select_micros = 0.0;
  double reconstruct_micros = 0.0;
  uint32_t partitions_touched = 0;
  uint32_t partitions_pruned = 0;
  bool traced = false;
  std::shared_ptr<const QueryTrace> trace;  // null unless traced
};

class QueryLog {
 public:
  explicit QueryLog(size_t capacity = 256) : capacity_(capacity) {}

  // Stamps entry.query_id and appends; evicts the oldest entry at
  // capacity. Returns the assigned id.
  uint64_t Append(QueryLogEntry entry);

  // Oldest-first snapshot of the retained window.
  std::vector<QueryLogEntry> Snapshot() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 0;
  size_t head_ = 0;               // index of the oldest entry
  std::vector<QueryLogEntry> ring_;
};

}  // namespace crackdb::obs
