#include "common/stats.h"

#include <algorithm>
#include <cstdio>

namespace crackdb {

SeriesSummary Summarize(std::vector<double> values) {
  SeriesSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  for (double v : values) s.total += v;
  s.mean = s.total / static_cast<double>(s.count);
  s.min = values.front();
  s.max = values.back();
  s.median = values[s.count / 2];
  s.p95 = values[static_cast<size_t>(static_cast<double>(s.count - 1) * 0.95)];
  return s;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace crackdb
