#include "common/stats.h"

#include <algorithm>
#include <cstdio>

namespace crackdb {

SeriesSummary Summarize(std::vector<double> values) {
  SeriesSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  for (double v : values) s.total += v;
  s.mean = s.total / static_cast<double>(s.count);
  s.min = values.front();
  s.max = values.back();
  s.median = values[s.count / 2];
  // Nearest-rank percentiles: the smallest sample with at least pct of
  // the mass at or below it.
  const auto nearest_rank = [&values](double pct) {
    size_t rank = static_cast<size_t>(
        pct * static_cast<double>(values.size()) + 0.5);
    if (rank == 0) rank = 1;
    if (rank > values.size()) rank = values.size();
    return values[rank - 1];
  };
  s.p95 = nearest_rank(0.95);
  s.p99 = nearest_rank(0.99);
  return s;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace crackdb
