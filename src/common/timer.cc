#include "common/timer.h"

// Timer and CostAccumulator are header-only; this translation unit exists so
// the build exposes a stable object for the module.
