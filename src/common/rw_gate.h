#ifndef CRACKDB_COMMON_RW_GATE_H_
#define CRACKDB_COMMON_RW_GATE_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace crackdb {

/// A reader/writer gate with an explicit fairness policy, built for the
/// adaptive-repartitioning swap protocol (docs/ARCHITECTURE.md, "Adaptive
/// repartitioning"). std::shared_mutex leaves reader-vs-writer preference
/// to the implementation, which makes the one scenario we must exclude —
/// a client thread that holds the gate shared while it waits for pool
/// workers whose next task would itself block on the gate — depend on the
/// platform. This gate pins the policy down:
///
///  - a *pending* writer blocks new ordinary readers (so the writer is not
///    starved by an unbroken stream of queries), but
///  - *urgent* readers (pool workers running an already-admitted query's
///    tasks) pass a pending writer, so work a shared holder is waiting on
///    can always drain and the writer's turn always comes;
///  - an *active* writer excludes every reader, urgent or not. A writer is
///    only active when the reader count is zero, so no thread can be both
///    holding the gate shared and waiting on the writer's work.
///
/// Writers must never block on work scheduled behind the gate (the swap
/// protocol is pure in-memory surgery), which closes the cycle: readers
/// drain -> writer runs -> readers resume.
class RwGate {
 public:
  RwGate() = default;
  RwGate(const RwGate&) = delete;
  RwGate& operator=(const RwGate&) = delete;

  /// Acquires shared. `urgent` readers ignore pending (not active)
  /// writers; pass true from pool workers so queued query tasks can never
  /// deadlock against a waiting swap.
  void EnterShared(bool urgent = false);
  void ExitShared();

  /// Acquires exclusive: waits for active readers to drain while blocking
  /// new ordinary readers.
  void EnterExclusive();
  void ExitExclusive();

  /// RAII shared hold.
  class SharedGuard {
   public:
    explicit SharedGuard(RwGate& gate, bool urgent = false) : gate_(gate) {
      gate_.EnterShared(urgent);
    }
    ~SharedGuard() { gate_.ExitShared(); }
    SharedGuard(const SharedGuard&) = delete;
    SharedGuard& operator=(const SharedGuard&) = delete;

   private:
    RwGate& gate_;
  };

  /// RAII exclusive hold.
  class ExclusiveGuard {
   public:
    explicit ExclusiveGuard(RwGate& gate) : gate_(gate) {
      gate_.EnterExclusive();
    }
    ~ExclusiveGuard() { gate_.ExitExclusive(); }
    ExclusiveGuard(const ExclusiveGuard&) = delete;
    ExclusiveGuard& operator=(const ExclusiveGuard&) = delete;

   private:
    RwGate& gate_;
  };

 private:
  std::mutex mu_;
  std::condition_variable readers_cv_;
  std::condition_variable writer_cv_;
  size_t active_readers_ = 0;
  size_t waiting_writers_ = 0;
  bool writer_active_ = false;
};

}  // namespace crackdb

#endif  // CRACKDB_COMMON_RW_GATE_H_
