#include "common/rw_gate.h"

namespace crackdb {

void RwGate::EnterShared(bool urgent) {
  std::unique_lock<std::mutex> lock(mu_);
  readers_cv_.wait(lock, [&] {
    return !writer_active_ && (urgent || waiting_writers_ == 0);
  });
  ++active_readers_;
}

void RwGate::ExitShared() {
  std::unique_lock<std::mutex> lock(mu_);
  --active_readers_;
  if (active_readers_ == 0 && waiting_writers_ > 0) {
    writer_cv_.notify_one();
  }
}

void RwGate::EnterExclusive() {
  std::unique_lock<std::mutex> lock(mu_);
  ++waiting_writers_;
  writer_cv_.wait(lock, [&] { return !writer_active_ && active_readers_ == 0; });
  --waiting_writers_;
  writer_active_ = true;
}

void RwGate::ExitExclusive() {
  std::unique_lock<std::mutex> lock(mu_);
  writer_active_ = false;
  // Wake everyone: the next holder may be either side, and readers blocked
  // on a formerly-pending writer must re-evaluate.
  writer_cv_.notify_one();
  readers_cv_.notify_all();
}

}  // namespace crackdb
