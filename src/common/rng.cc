#include "common/rng.h"

namespace crackdb {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  s0_ = SplitMix64(&sm);
  s1_ = SplitMix64(&sm);
  if (s0_ == 0 && s1_ == 0) s0_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

Value Rng::Uniform(Value lo, Value hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<Value>(Next());  // full 64-bit range
  return lo + static_cast<Value>(Next() % span);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

}  // namespace crackdb
