#ifndef CRACKDB_COMMON_THREAD_POOL_H_
#define CRACKDB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace crackdb {

/// A fixed-size worker pool with *per-worker task queues* and an affinity
/// key: `Submit(affinity, fn)` enqueues onto worker `affinity % n`, so all
/// tasks sharing an affinity key (the sharded layer uses the partition
/// index) run on the same worker whenever it keeps up — a partition's
/// cracked structures stay core-/cache-local across queries. Idle workers
/// steal from the back of other queues as a fallback, so a hot key never
/// serializes the whole pool; under load affinity degrades gracefully
/// into plain work sharing.
///
/// Tasks must not *block* on the pool themselves: with all workers waiting,
/// nobody would be left to run the nested work. Enqueueing from a worker
/// (fire-and-forget Submit) is fine; the blocking entry point ParallelFor
/// enforces the rule with a thread-local "in worker" check and aborts with
/// a clear message instead of deadlocking. (The check is one thread_local
/// compare, so it is kept in all build types, not just debug.) The
/// Database facade only blocks from client threads.
class ThreadPool {
 public:
  /// Affinity value meaning "any worker": the task is spread round-robin.
  static constexpr size_t kNoAffinity = static_cast<size_t>(-1);

  /// Spawns `num_threads` workers. 0 is allowed and means "no workers":
  /// Submit still works (the task runs inline in the calling thread), which
  /// gives single-threaded builds and tests one code path. `affine` = false
  /// disables affinity routing (every Submit spreads round-robin) — the
  /// control arm for the affinity on/off bench comparison.
  explicit ThreadPool(size_t num_threads, bool affine = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }
  bool affine() const { return affine_; }

  /// Enqueues `fn` on no particular worker; the future becomes ready when
  /// it has run. Exceptions propagate through the future.
  std::future<void> Submit(std::function<void()> fn);

  /// Enqueues `fn` on worker `affinity % num_threads()` (its *home*
  /// worker). The home worker drains its queue FIFO; other workers steal
  /// the newest task from the back only when their own queues are empty.
  std::future<void> Submit(size_t affinity, std::function<void()> fn);

  /// Runs fn(0..n-1), distributing across the workers with affinity i; the
  /// calling thread executes the first chunk itself so a saturated pool
  /// degrades to inline execution instead of deadlocking the caller.
  /// Returns when all n are done. Calling this from a worker of the same
  /// pool aborts (see class comment).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// True when the calling thread is one of this pool's workers. Blocking
  /// callers (the sharded batch scheduler) use this to fall back to inline
  /// execution instead of waiting on the pool from inside it.
  bool InWorkerThread() const;

 private:
  /// A queued task plus its enqueue timestamp, so the worker that runs it
  /// can publish queue-wait time to the metrics registry.
  struct QueuedTask {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop(size_t worker_index);

  const bool affine_;
  std::mutex mu_;
  std::condition_variable cv_;
  /// queues_[i] is worker i's queue; all guarded by mu_. pending_ counts
  /// tasks across every queue so workers have one wait predicate.
  std::vector<std::deque<QueuedTask>> queues_;
  size_t pending_ = 0;
  std::atomic<size_t> round_robin_{0};
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  /// Per-worker `pool_worker_tasks_total{worker="i"}` family, resolved
  /// once at construction so the hot path is one relaxed add.
  std::vector<obs::Counter*> worker_tasks_;
};

}  // namespace crackdb

#endif  // CRACKDB_COMMON_THREAD_POOL_H_
