#ifndef CRACKDB_COMMON_THREAD_POOL_H_
#define CRACKDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace crackdb {

/// A fixed-size worker pool for fanning partition-local work out across
/// cores. Deliberately minimal: FIFO queue, no work stealing, no priorities
/// — the sharded execution layer submits one task per partition and joins,
/// so queue depth stays near (clients × partitions) and fairness falls out
/// of FIFO order.
///
/// Tasks must not block on the pool themselves (no nested ParallelFor from
/// a worker thread): with all workers waiting, nobody would be left to run
/// the nested tasks. The Database facade only submits from client threads.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 is allowed and means "no workers":
  /// Submit still works (the task runs inline in the calling thread), which
  /// gives single-threaded builds and tests one code path.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn`; the future becomes ready when it has run. Exceptions
  /// propagate through the future.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(0..n-1), distributing across the workers; the calling thread
  /// executes the first chunk itself so a saturated pool degrades to inline
  /// execution instead of deadlocking the caller. Returns when all n are
  /// done. Must not be called from a pool worker.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace crackdb

#endif  // CRACKDB_COMMON_THREAD_POOL_H_
