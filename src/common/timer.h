#ifndef CRACKDB_COMMON_TIMER_H_
#define CRACKDB_COMMON_TIMER_H_

#include <chrono>

namespace crackdb {

/// Wall-clock stopwatch with microsecond reporting, used by the experiment
/// harness to reproduce the paper's per-query response-time series.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed microseconds since construction or the last Restart().
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across disjoint intervals; engines use one per cost
/// component (selection vs tuple reconstruction) to reproduce the paper's
/// cost-breakdown tables.
class CostAccumulator {
 public:
  void Add(double micros) { total_micros_ += micros; }
  void Reset() { total_micros_ = 0; }
  double TotalMicros() const { return total_micros_; }
  double TotalMillis() const { return total_micros_ / 1000.0; }

 private:
  double total_micros_ = 0;
};

/// RAII helper adding a scope's duration into a CostAccumulator.
class ScopedCost {
 public:
  explicit ScopedCost(CostAccumulator* acc) : acc_(acc) {}
  ~ScopedCost() {
    if (acc_ != nullptr) acc_->Add(timer_.ElapsedMicros());
  }

  ScopedCost(const ScopedCost&) = delete;
  ScopedCost& operator=(const ScopedCost&) = delete;

 private:
  CostAccumulator* acc_;
  Timer timer_;
};

}  // namespace crackdb

#endif  // CRACKDB_COMMON_TIMER_H_
