#include "common/bitvector.h"

#include <bit>
#include <cassert>

namespace crackdb {

BitVector::BitVector(size_t n, bool value) : size_(n) {
  words_.assign((n + 63) / 64, value ? ~uint64_t{0} : 0);
  if (value && (n & 63) != 0) {
    // Keep bits past `size_` clear so Count() stays exact.
    words_.back() &= (uint64_t{1} << (n & 63)) - 1;
  }
}

void BitVector::Fill(bool value) {
  for (auto& w : words_) w = value ? ~uint64_t{0} : 0;
  if (value && (size_ & 63) != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (size_ & 63)) - 1;
  }
}

size_t BitVector::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

void BitVector::And(const BitVector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::Or(const BitVector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::AppendSetPositions(std::vector<uint32_t>* out,
                                   uint32_t base) const {
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t bits = words_[w];
    while (bits != 0) {
      int b = std::countr_zero(bits);
      out->push_back(base + static_cast<uint32_t>(w * 64 + b));
      bits &= bits - 1;
    }
  }
}

bool operator==(const BitVector& a, const BitVector& b) {
  return a.size_ == b.size_ && a.words_ == b.words_;
}

}  // namespace crackdb
