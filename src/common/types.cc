#include "common/types.h"

namespace crackdb {

std::string RangePredicate::ToString() const {
  std::string s;
  s += low_inclusive ? "[" : "(";
  s += (low == kMinValue) ? "-inf" : std::to_string(low);
  s += ", ";
  s += (high == kMaxValue) ? "+inf" : std::to_string(high);
  s += high_inclusive ? "]" : ")";
  return s;
}

}  // namespace crackdb
