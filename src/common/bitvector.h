#ifndef CRACKDB_COMMON_BITVECTOR_H_
#define CRACKDB_COMMON_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace crackdb {

/// Dense bit vector used by the sideways-cracking multi-selection operators
/// (`select_create_bv` / `select_refine_bv` / `reconstruct`) to filter the
/// aligned candidate area of a map set (paper Section 3.3).
///
/// Word-at-a-time AND/OR and popcount are provided because refinement steps
/// touch every bit of the candidate area once per additional predicate.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `n` bits, all initialized to `value`.
  explicit BitVector(size_t n, bool value = false);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  void Assign(size_t i, bool v) {
    if (v) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Sets all bits to `value`.
  void Fill(bool value);

  /// Number of set bits.
  size_t Count() const;

  /// this &= other. Both vectors must have equal size.
  void And(const BitVector& other);

  /// this |= other. Both vectors must have equal size.
  void Or(const BitVector& other);

  /// Appends positions of set bits (offset by `base`) to `out`.
  void AppendSetPositions(std::vector<uint32_t>* out, uint32_t base = 0) const;

  /// Raw word storage: bit i lives at word_data()[i >> 6], bit (i & 63).
  /// Used by the kernel-layer bitmap builders (kernels::MatchBitmap);
  /// writers must leave bits at positions >= size() clear (Count relies
  /// on the tail words staying zero).
  uint64_t* word_data() { return words_.data(); }
  const uint64_t* word_data() const { return words_.data(); }

  friend bool operator==(const BitVector&, const BitVector&);

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace crackdb

#endif  // CRACKDB_COMMON_BITVECTOR_H_
