#ifndef CRACKDB_COMMON_TYPES_H_
#define CRACKDB_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace crackdb {

/// Attribute value type. The paper's experiments use integer attributes in
/// [1, 10^7]; TPC-H dates and decimals are encoded into int64 as well
/// (days-since-epoch and fixed-point cents respectively), and strings are
/// dictionary codes.
using Value = int64_t;

/// Tuple identity: the position of a tuple in the insertion order of its
/// relation. MonetDB calls this the (virtual) "key" column of a BAT.
using Key = uint32_t;

inline constexpr Value kMinValue = std::numeric_limits<Value>::min();
inline constexpr Value kMaxValue = std::numeric_limits<Value>::max();
inline constexpr Key kInvalidKey = std::numeric_limits<Key>::max();

/// A one-sided bound on an attribute: `value` together with whether the
/// bound itself is included. Used both in predicates and in cracker-index
/// nodes.
struct Bound {
  Value value = 0;
  bool inclusive = false;

  friend bool operator==(const Bound&, const Bound&) = default;
};

/// A range predicate `low OP_l A OP_h high` on a single attribute.
/// The default-constructed predicate matches everything.
struct RangePredicate {
  Value low = kMinValue;
  Value high = kMaxValue;
  bool low_inclusive = true;
  bool high_inclusive = true;

  /// Returns true iff `v` satisfies the predicate.
  bool Matches(Value v) const {
    if (v < low || (v == low && !low_inclusive)) return false;
    if (v > high || (v == high && !high_inclusive)) return false;
    return true;
  }

  /// A predicate selecting exactly one value.
  static RangePredicate Point(Value v) { return {v, v, true, true}; }

  /// Open interval (low, high), the paper's `v1 < A < v2` form.
  static RangePredicate Open(Value low, Value high) {
    return {low, high, false, false};
  }

  /// Half-open interval [low, high).
  static RangePredicate HalfOpen(Value low, Value high) {
    return {low, high, true, false};
  }

  /// Closed interval [low, high].
  static RangePredicate Closed(Value low, Value high) {
    return {low, high, true, true};
  }

  std::string ToString() const;

  friend bool operator==(const RangePredicate&, const RangePredicate&) = default;
};

/// A contiguous index range [begin, end) into a column or map.
struct PositionRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }

  friend bool operator==(const PositionRange&, const PositionRange&) = default;
};

}  // namespace crackdb

#endif  // CRACKDB_COMMON_TYPES_H_
