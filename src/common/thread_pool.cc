#include "common/thread_pool.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace crackdb {

namespace {

/// Set for the duration of a worker's life, so blocking entry points can
/// tell "called from inside this pool" apart from client threads (and from
/// workers of *other* pools, which are safe to block on).
thread_local const ThreadPool* tls_worker_pool = nullptr;

/// Registry handles resolved once per process (docs/OBSERVABILITY.md).
struct PoolMetrics {
  obs::Counter& tasks =
      obs::MetricsRegistry::Global().GetCounter("pool_tasks_total");
  obs::Counter& steals =
      obs::MetricsRegistry::Global().GetCounter("pool_steals_total");
  obs::Counter& inline_tasks =
      obs::MetricsRegistry::Global().GetCounter("pool_inline_tasks_total");
  obs::Gauge& queue_depth =
      obs::MetricsRegistry::Global().GetGauge("pool_queue_depth");
  obs::Histogram& task_wait =
      obs::MetricsRegistry::Global().GetHistogram("pool_task_wait_micros");
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = new PoolMetrics();
  return *metrics;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, bool affine)
    : affine_(affine), queues_(num_threads) {
  workers_.reserve(num_threads);
  worker_tasks_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    worker_tasks_.push_back(&obs::MetricsRegistry::Global().GetCounter(
        obs::WithLabel("pool_worker_tasks_total", "worker",
                       static_cast<int64_t>(i))));
  }
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InWorkerThread() const { return tls_worker_pool == this; }

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  return Submit(kNoAffinity, std::move(fn));
}

std::future<void> ThreadPool::Submit(size_t affinity,
                                     std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    Metrics().inline_tasks.Add();
    task();  // no workers: degrade to inline execution
    return future;
  }
  const size_t home =
      (affine_ && affinity != kNoAffinity)
          ? affinity % workers_.size()
          : round_robin_.fetch_add(1, std::memory_order_relaxed) %
                workers_.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[home].push_back(
        QueuedTask{std::move(task), std::chrono::steady_clock::now()});
    ++pending_;
    Metrics().queue_depth.Set(static_cast<double>(pending_));
  }
  // Any waiting worker may take it: the home worker FIFO, anyone else by
  // stealing — so one wakeup suffices for progress.
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (InWorkerThread()) {
    std::fprintf(stderr,
                 "ThreadPool::ParallelFor called from a worker of the same "
                 "pool; nested blocking would deadlock once every worker "
                 "waits. Submit fire-and-forget tasks instead, or run the "
                 "loop inline.\n");
    std::abort();
  }
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n - 1);
  for (size_t i = 1; i < n; ++i) {
    futures.push_back(Submit(i, [&fn, i] { fn(i); }));
  }
  // The caller contributes a core instead of idling on the join. Every
  // future is drained before any exception propagates: queued tasks hold
  // references to fn and the caller's frame, so unwinding early would
  // leave workers invoking dangling state.
  std::exception_ptr first_error;
  try {
    fn(0);
  } catch (...) {
    first_error = std::current_exception();
  }
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_pool = this;
  const size_t n = queues_.size();
  for (;;) {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
    bool stolen = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || pending_ > 0; });
      if (pending_ == 0) return;  // stopping_ and every queue drained
      std::deque<QueuedTask>& own = queues_[worker_index];
      if (!own.empty()) {
        // Home queue drains FIFO: oldest affine task first.
        task = std::move(own.front().task);
        enqueued = own.front().enqueued;
        own.pop_front();
      } else {
        // Steal the *newest* task from the first non-empty victim: the
        // victim keeps its oldest (likely already cache-resident) work.
        for (size_t k = 1; k < n; ++k) {
          std::deque<QueuedTask>& victim = queues_[(worker_index + k) % n];
          if (!victim.empty()) {
            task = std::move(victim.back().task);
            enqueued = victim.back().enqueued;
            victim.pop_back();
            stolen = true;
            break;
          }
        }
      }
      --pending_;
      Metrics().queue_depth.Set(static_cast<double>(pending_));
    }
    if (obs::MetricsEnabled()) {
      Metrics().tasks.Add();
      if (stolen) Metrics().steals.Add();
      worker_tasks_[worker_index]->Add();
      Metrics().task_wait.Observe(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - enqueued)
              .count());
    }
    task();
  }
}

}  // namespace crackdb
