#include "common/thread_pool.h"

#include <utility>

namespace crackdb {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    task();  // no workers: degrade to inline execution
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n - 1);
  for (size_t i = 1; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  // The caller contributes a core instead of idling on the join. Every
  // future is drained before any exception propagates: queued tasks hold
  // references to fn and the caller's frame, so unwinding early would
  // leave workers invoking dangling state.
  std::exception_ptr first_error;
  try {
    fn(0);
  } catch (...) {
    first_error = std::current_exception();
  }
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace crackdb
