#ifndef CRACKDB_COMMON_RNG_H_
#define CRACKDB_COMMON_RNG_H_

#include <cstdint>

#include "common/types.h"

namespace crackdb {

/// Deterministic xorshift128+ generator. All workload generators in the
/// repository draw from this so experiments are reproducible across runs
/// and platforms (std::mt19937 distributions are not portable across
/// standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit word.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  Value Uniform(Value lo, Value hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace crackdb

#endif  // CRACKDB_COMMON_RNG_H_
