#ifndef CRACKDB_COMMON_STATS_H_
#define CRACKDB_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace crackdb {

/// Summary statistics over a series of measurements (per-query response
/// times in the experiments, per-op latency samples in the benches).
/// Percentiles are nearest-rank over the sorted series: the smallest
/// sample with at least that share of the mass at or below it.
struct SeriesSummary {
  size_t count = 0;
  double total = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double median = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Computes summary statistics; `values` is copied because percentile
/// computation sorts. The one latency summarizer in the repo — the bench
/// binaries print their percentile rows from this.
SeriesSummary Summarize(std::vector<double> values);

/// Formats a double with fixed precision; helper for the report tables.
std::string FormatDouble(double v, int precision = 2);

}  // namespace crackdb

#endif  // CRACKDB_COMMON_STATS_H_
