#ifndef CRACKDB_COMMON_STATS_H_
#define CRACKDB_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace crackdb {

/// Summary statistics over a series of measurements (per-query response
/// times in the experiments).
struct SeriesSummary {
  size_t count = 0;
  double total = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double median = 0;
  double p95 = 0;
};

/// Computes summary statistics; `values` is copied because percentile
/// computation sorts.
SeriesSummary Summarize(std::vector<double> values);

/// Formats a double with fixed precision; helper for the report tables.
std::string FormatDouble(double v, int precision = 2);

}  // namespace crackdb

#endif  // CRACKDB_COMMON_STATS_H_
