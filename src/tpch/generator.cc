#include "tpch/generator.h"

#include <array>
#include <vector>

namespace crackdb::tpch {

TpchDatabase::TpchDatabase(double sf, uint64_t seed) : sf_(sf) {
  CreateSchema(&catalog_);
  Generate(seed);
}

Value TpchDatabase::Code(const std::string& qualified_column,
                         const std::string& str) const {
  return const_cast<Catalog&>(catalog_).dictionary(qualified_column).CodeOf(
      str);
}

void TpchDatabase::Generate(uint64_t seed) {
  Rng rng(seed);
  const Cardinalities n = CardinalitiesFor(sf_);

  // region / nation -----------------------------------------------------
  {
    Relation& region = catalog_.relation("region");
    for (size_t r = 0; r < kRegions.size(); ++r) {
      const Value row[] = {static_cast<Value>(r),
                           catalog_.dictionary("region.r_name")
                               .CodeOf(kRegions[r])};
      region.BulkLoadRow(row);
    }
    Relation& nation = catalog_.relation("nation");
    for (size_t i = 0; i < kNations.size(); ++i) {
      const Value row[] = {static_cast<Value>(i),
                           catalog_.dictionary("nation.n_name")
                               .CodeOf(kNations[i]),
                           static_cast<Value>(kNationRegion[i])};
      nation.BulkLoadRow(row);
    }
  }

  // supplier -------------------------------------------------------------
  {
    Relation& supplier = catalog_.relation("supplier");
    for (size_t i = 1; i <= n.supplier; ++i) {
      const Value row[] = {
          static_cast<Value>(i),                    // s_suppkey
          static_cast<Value>(i),                    // s_name (Supplier#i)
          rng.Uniform(0, 24),                       // s_nationkey
          rng.Uniform(-99999, 999999),              // s_acctbal (cents)
      };
      supplier.BulkLoadRow(row);
    }
  }

  // part -----------------------------------------------------------------
  std::vector<Value> retail_price(n.part + 1, 0);
  {
    Relation& part = catalog_.relation("part");
    const Dictionary& names = catalog_.dictionary("part.p_name");
    for (size_t i = 1; i <= n.part; ++i) {
      // dbgen retail price formula, in cents.
      const Value price = 90000 + ((static_cast<Value>(i) / 10) % 20001) +
                          100 * (static_cast<Value>(i) % 1000);
      retail_price[i] = price;
      const Value row[] = {
          static_cast<Value>(i),                                 // p_partkey
          rng.Uniform(0, static_cast<Value>(names.size()) - 1),  // p_name
          rng.Uniform(0, 4),                                     // p_mfgr
          rng.Uniform(0, 24),                                    // p_brand
          rng.Uniform(0, 149),                                   // p_type
          rng.Uniform(1, 50),                                    // p_size
          rng.Uniform(0, 39),                                    // p_container
          price,                                                 // p_retail
      };
      part.BulkLoadRow(row);
    }
  }

  // partsupp ---------------------------------------------------------------
  {
    Relation& partsupp = catalog_.relation("partsupp");
    for (size_t p = 1; p <= n.part; ++p) {
      for (int s = 0; s < 4; ++s) {
        // dbgen's supplier spreading for a (part, copy) pair.
        const size_t suppkey =
            (p + s * ((n.supplier / 4) + (p - 1) / n.supplier)) % n.supplier +
            1;
        const Value row[] = {
            static_cast<Value>(p),
            static_cast<Value>(suppkey),
            rng.Uniform(1, 9999),        // ps_availqty
            rng.Uniform(100, 100000),    // ps_supplycost (cents)
        };
        partsupp.BulkLoadRow(row);
      }
    }
  }

  // customer ---------------------------------------------------------------
  {
    Relation& customer = catalog_.relation("customer");
    for (size_t i = 1; i <= n.customer; ++i) {
      const Value row[] = {
          static_cast<Value>(i),        // c_custkey
          static_cast<Value>(i),        // c_name (Customer#i)
          rng.Uniform(0, 24),           // c_nationkey
          rng.Uniform(-99999, 999999),  // c_acctbal
          rng.Uniform(0, 4),            // c_mktsegment
      };
      customer.BulkLoadRow(row);
    }
  }

  // orders + lineitem --------------------------------------------------------
  {
    Relation& orders = catalog_.relation("orders");
    Relation& lineitem = catalog_.relation("lineitem");
    const Value returnflag_a = Code("lineitem.l_returnflag", "A");
    const Value returnflag_n = Code("lineitem.l_returnflag", "N");
    const Value returnflag_r = Code("lineitem.l_returnflag", "R");
    const Value linestatus_f = Code("lineitem.l_linestatus", "F");
    const Value linestatus_o = Code("lineitem.l_linestatus", "O");
    const Value status_f = Code("orders.o_orderstatus", "F");
    const Value status_o = Code("orders.o_orderstatus", "O");
    const Value status_p = Code("orders.o_orderstatus", "P");

    for (size_t i = 1; i <= n.orders; ++i) {
      // dbgen leaves gaps in the orderkey space; keep keys dense * 4 to
      // preserve the "sparse keys" flavour without the bookkeeping.
      const Value orderkey = static_cast<Value>(i) * 4 - 3;
      const Value custkey =
          rng.Uniform(1, static_cast<Value>(n.customer));
      const Value orderdate = rng.Uniform(kStartDate, kEndDate - 151);
      const int num_lines = static_cast<int>(rng.Uniform(1, 7));
      Value total = 0;
      int f_count = 0;
      for (int l = 1; l <= num_lines; ++l) {
        const Value partkey = rng.Uniform(1, static_cast<Value>(n.part));
        const Value suppkey = rng.Uniform(1, static_cast<Value>(n.supplier));
        const Value quantity = rng.Uniform(1, 50);
        const Value extended = quantity * retail_price[partkey];
        const Value discount = rng.Uniform(0, 10);  // hundredths
        const Value tax = rng.Uniform(0, 8);
        const Value shipdate = orderdate + rng.Uniform(1, 121);
        const Value commitdate = orderdate + rng.Uniform(30, 90);
        const Value receiptdate = shipdate + rng.Uniform(1, 30);
        Value returnflag;
        if (receiptdate <= kCurrentDate) {
          returnflag = rng.Bernoulli(0.5) ? returnflag_r : returnflag_a;
        } else {
          returnflag = returnflag_n;
        }
        const Value linestatus =
            shipdate > kCurrentDate ? linestatus_o : linestatus_f;
        if (linestatus == linestatus_f) ++f_count;
        total += extended * (100 - discount) * (100 + tax) / 10000;
        const Value line[] = {
            orderkey,   partkey,    suppkey,    static_cast<Value>(l),
            quantity,   extended,   discount,   tax,
            returnflag, linestatus, shipdate,   commitdate,
            receiptdate,
            rng.Uniform(0, 3),  // l_shipinstruct
            rng.Uniform(0, 6),  // l_shipmode
        };
        lineitem.BulkLoadRow(line);
      }
      Value status = status_p;
      if (f_count == num_lines) {
        status = status_f;
      } else if (f_count == 0) {
        status = status_o;
      }
      const Value order_row[] = {
          orderkey,
          custkey,
          status,
          total,
          orderdate,
          rng.Uniform(0, 4),  // o_orderpriority
          0,                  // o_shippriority
      };
      orders.BulkLoadRow(order_row);
    }
  }
}

}  // namespace crackdb::tpch
