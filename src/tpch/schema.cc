#include "tpch/schema.h"

namespace crackdb::tpch {

Value DateToDays(int year, int month, int day) {
  // Howard Hinnant's days_from_civil.
  const int y = year - (month <= 2 ? 1 : 0);
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<Value>(era) * 146097 + static_cast<Value>(doe) - 719468;
}

void DaysToDate(Value days, int* year, int* month, int* day) {
  Value z = days + 719468;
  const Value era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const Value y = static_cast<Value>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *year = static_cast<int>(y + (*month <= 2 ? 1 : 0));
}

const std::vector<std::string> kRegions = {"AFRICA", "AMERICA", "ASIA",
                                           "EUROPE", "MIDDLE EAST"};

const std::vector<std::string> kNations = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",         "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",          "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",         "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",          "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

const std::vector<int> kNationRegion = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                                        4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const std::vector<std::string> kSegments = {"AUTOMOBILE", "BUILDING",
                                            "FURNITURE", "MACHINERY",
                                            "HOUSEHOLD"};

const std::vector<std::string> kPriorities = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                              "4-NOT SPECIFIED", "5-LOW"};

const std::vector<std::string> kShipModes = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                             "TRUCK",   "MAIL", "FOB"};

const std::vector<std::string> kShipInstructs = {
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"};

const std::vector<std::string> kTypeSyllable1 = {"STANDARD", "SMALL", "MEDIUM",
                                                 "LARGE", "ECONOMY", "PROMO"};
const std::vector<std::string> kTypeSyllable2 = {"ANODIZED", "BURNISHED",
                                                 "PLATED", "POLISHED",
                                                 "BRUSHED"};
const std::vector<std::string> kTypeSyllable3 = {"TIN", "NICKEL", "BRASS",
                                                 "STEEL", "COPPER"};

const std::vector<std::string> kContainerSyllable1 = {"SM", "LG", "MED",
                                                      "JUMBO", "WRAP"};
const std::vector<std::string> kContainerSyllable2 = {"CASE", "BOX", "BAG",
                                                      "JAR",  "PKG", "PACK",
                                                      "CAN",  "DRUM"};

const std::vector<std::string> kNameWords = {
    "almond",    "antique",   "aquamarine", "azure",     "beige",
    "bisque",    "black",     "blanched",   "blue",      "blush",
    "brown",     "burlywood", "burnished",  "chartreuse", "chiffon",
    "chocolate", "coral",     "cornflower", "cornsilk",  "cream",
    "cyan",      "dark",      "deep",       "dim",       "dodger",
    "drab",      "firebrick", "floral",     "forest",    "frosted",
    "gainsboro", "ghost",     "goldenrod",  "green",     "grey",
    "honeydew",  "hot",       "hotpink",    "indian",    "ivory",
    "khaki",     "lace",      "lavender",   "lawn",      "lemon",
    "light",     "lime",      "linen",      "magenta",   "maroon",
    "medium",    "metallic",  "midnight",   "mint",      "misty",
    "moccasin",  "navajo",    "navy",       "olive",     "orange",
    "orchid",    "pale",      "papaya",     "peach",     "peru",
    "pink",      "plum",      "powder",     "puff",      "purple",
    "red",       "rose",      "rosy",       "royal",     "saddle",
    "salmon",    "sandy",     "seashell",   "sienna",    "sky",
    "slate",     "smoke",     "snow",       "spring",    "steel",
    "tan",       "thistle",   "tomato",     "turquoise", "violet",
    "wheat",     "white",     "yellow"};

Cardinalities CardinalitiesFor(double sf) {
  Cardinalities c;
  c.supplier = static_cast<size_t>(10000 * sf);
  c.part = static_cast<size_t>(200000 * sf);
  c.partsupp = c.part * 4;
  c.customer = static_cast<size_t>(150000 * sf);
  c.orders = static_cast<size_t>(1500000 * sf);
  if (c.supplier == 0) c.supplier = 1;
  if (c.part == 0) c.part = 1;
  if (c.customer == 0) c.customer = 1;
  if (c.orders == 0) c.orders = 1;
  return c;
}

namespace {

void RegisterDict(Catalog* catalog, const std::string& qualified,
                  std::vector<std::string> domain) {
  catalog->dictionary(qualified).RegisterSorted(std::move(domain));
}

std::vector<std::string> CrossJoinStrings(
    const std::vector<std::string>& a, const std::vector<std::string>& b) {
  std::vector<std::string> out;
  out.reserve(a.size() * b.size());
  for (const std::string& x : a) {
    for (const std::string& y : b) out.push_back(x + " " + y);
  }
  return out;
}

}  // namespace

void CreateSchema(Catalog* catalog) {
  Relation& region = catalog->CreateRelation("region");
  region.AddColumn("r_regionkey");
  region.AddColumn("r_name");

  Relation& nation = catalog->CreateRelation("nation");
  nation.AddColumn("n_nationkey");
  nation.AddColumn("n_name");
  nation.AddColumn("n_regionkey");

  Relation& supplier = catalog->CreateRelation("supplier");
  supplier.AddColumn("s_suppkey");
  supplier.AddColumn("s_name");
  supplier.AddColumn("s_nationkey");
  supplier.AddColumn("s_acctbal");

  Relation& part = catalog->CreateRelation("part");
  part.AddColumn("p_partkey");
  part.AddColumn("p_name");  // code of the first name word (LIKE 'w%' target)
  part.AddColumn("p_mfgr");
  part.AddColumn("p_brand");
  part.AddColumn("p_type");
  part.AddColumn("p_size");
  part.AddColumn("p_container");
  part.AddColumn("p_retailprice");

  Relation& partsupp = catalog->CreateRelation("partsupp");
  partsupp.AddColumn("ps_partkey");
  partsupp.AddColumn("ps_suppkey");
  partsupp.AddColumn("ps_availqty");
  partsupp.AddColumn("ps_supplycost");

  Relation& customer = catalog->CreateRelation("customer");
  customer.AddColumn("c_custkey");
  customer.AddColumn("c_name");
  customer.AddColumn("c_nationkey");
  customer.AddColumn("c_acctbal");
  customer.AddColumn("c_mktsegment");

  Relation& orders = catalog->CreateRelation("orders");
  orders.AddColumn("o_orderkey");
  orders.AddColumn("o_custkey");
  orders.AddColumn("o_orderstatus");
  orders.AddColumn("o_totalprice");
  orders.AddColumn("o_orderdate");
  orders.AddColumn("o_orderpriority");
  orders.AddColumn("o_shippriority");

  Relation& lineitem = catalog->CreateRelation("lineitem");
  lineitem.AddColumn("l_orderkey");
  lineitem.AddColumn("l_partkey");
  lineitem.AddColumn("l_suppkey");
  lineitem.AddColumn("l_linenumber");
  lineitem.AddColumn("l_quantity");
  lineitem.AddColumn("l_extendedprice");
  lineitem.AddColumn("l_discount");
  lineitem.AddColumn("l_tax");
  lineitem.AddColumn("l_returnflag");
  lineitem.AddColumn("l_linestatus");
  lineitem.AddColumn("l_shipdate");
  lineitem.AddColumn("l_commitdate");
  lineitem.AddColumn("l_receiptdate");
  lineitem.AddColumn("l_shipinstruct");
  lineitem.AddColumn("l_shipmode");

  RegisterDict(catalog, "region.r_name", kRegions);
  RegisterDict(catalog, "nation.n_name", kNations);
  RegisterDict(catalog, "customer.c_mktsegment", kSegments);
  RegisterDict(catalog, "orders.o_orderpriority", kPriorities);
  RegisterDict(catalog, "lineitem.l_shipmode", kShipModes);
  RegisterDict(catalog, "lineitem.l_shipinstruct", kShipInstructs);
  RegisterDict(catalog, "lineitem.l_returnflag", {"A", "N", "R"});
  RegisterDict(catalog, "lineitem.l_linestatus", {"F", "O"});
  RegisterDict(catalog, "orders.o_orderstatus", {"F", "O", "P"});
  RegisterDict(catalog, "part.p_name", kNameWords);
  {
    std::vector<std::string> brands;
    for (int m = 1; m <= 5; ++m) {
      for (int n = 1; n <= 5; ++n) {
        brands.push_back("Brand#" + std::to_string(m) + std::to_string(n));
      }
    }
    RegisterDict(catalog, "part.p_brand", brands);
    std::vector<std::string> mfgrs;
    for (int m = 1; m <= 5; ++m) mfgrs.push_back("Manufacturer#" +
                                                 std::to_string(m));
    RegisterDict(catalog, "part.p_mfgr", mfgrs);
  }
  RegisterDict(catalog, "part.p_type",
               CrossJoinStrings(CrossJoinStrings(kTypeSyllable1,
                                                 kTypeSyllable2),
                                kTypeSyllable3));
  RegisterDict(catalog, "part.p_container",
               CrossJoinStrings(kContainerSyllable1, kContainerSyllable2));
}

}  // namespace crackdb::tpch
