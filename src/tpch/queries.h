#ifndef CRACKDB_TPCH_QUERIES_H_
#define CRACKDB_TPCH_QUERIES_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "tpch/generator.h"

namespace crackdb::tpch {

/// One engine instance per relation for one system type (plain, presorted,
/// selection cracking, sideways, row-store...). Engines persist across the
/// 30-query parameter sequences, which is what lets the self-organizing
/// systems learn (paper Section 5).
class EngineSet {
 public:
  using Factory =
      std::function<std::unique_ptr<Engine>(const Relation& relation)>;

  EngineSet(TpchDatabase& db, std::string name, Factory factory)
      : db_(&db), name_(std::move(name)), factory_(std::move(factory)) {}

  Engine& For(const std::string& relation_name);

  const std::string& name() const { return name_; }

  /// Total one-off preparation cost (presorting copies) accumulated across
  /// the set's engines; the paper reports this separately from query time.
  double TotalPrepareMicros() const;

 private:
  TpchDatabase* db_;
  std::string name_;
  Factory factory_;
  std::unordered_map<std::string, std::unique_ptr<Engine>> engines_;
};

/// Materialized result rows (aggregates decoded as raw Values; dictionary
/// codes are kept as codes so results compare across engines).
using TpchResult = std::vector<std::vector<Value>>;

/// Parameter bag shared by all queries; Randomize* fills the fields each
/// query uses (TPC-H's substitution-parameter rules, simplified).
struct QueryParams {
  Value date1 = 0;
  Value date2 = 0;
  Value code1 = 0;
  Value code2 = 0;
  Value code3 = 0;
  Value int1 = 0;
  Value int2 = 0;
  Value int3 = 0;
};

struct TpchQueryDef {
  int number;
  std::string name;
  std::function<TpchResult(TpchDatabase&, EngineSet&, const QueryParams&)> run;
  std::function<QueryParams(TpchDatabase&, Rng&)> randomize;
};

/// The twelve queries the paper evaluates (at least one selection on a
/// non-string attribute): 1, 3, 4, 6, 7, 8, 10, 12, 14, 15, 19, 20.
const std::vector<TpchQueryDef>& AllQueries();

/// Q1-shaped grouped pushdown: GROUP BY l_returnflag under Q1's shipdate
/// predicate with sum(l_quantity), sum(l_extendedprice) and a per-group
/// count, compiled through the fluent GroupBy terminal and executed as a
/// hash-aggregation pushdown (Engine::Execute) — the whole result is built
/// without a single tuple reconstruction. Returns {flag, sum_qty,
/// sum_base, count} rows sorted by flag. Deliberately NOT in AllQueries():
/// the evaluated registry stays the paper's twelve.
TpchResult RunQ1Grouped(TpchDatabase& db, EngineSet& es,
                        const QueryParams& p);

/// Lookup by query number; dies if the query is not in the evaluated set.
const TpchQueryDef& QueryByNumber(int number);

}  // namespace crackdb::tpch

#endif  // CRACKDB_TPCH_QUERIES_H_
