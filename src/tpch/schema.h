#ifndef CRACKDB_TPCH_SCHEMA_H_
#define CRACKDB_TPCH_SCHEMA_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "storage/catalog.h"

namespace crackdb::tpch {

/// All values are int64 Values: dates as days since 1970-01-01, monetary
/// amounts in cents (fixed point, two decimals), percentages (discount,
/// tax) in hundredths, and strings as dictionary codes. This mirrors how a
/// column-store would physically encode TPC-H and keeps every attribute
/// crackable.

/// Days since 1970-01-01 for a proleptic Gregorian civil date.
Value DateToDays(int year, int month, int day);

/// Inverse of DateToDays.
void DaysToDate(Value days, int* year, int* month, int* day);

/// TPC-H reference dates.
inline const Value kStartDate = DateToDays(1992, 1, 1);
inline const Value kCurrentDate = DateToDays(1995, 6, 17);
inline const Value kEndDate = DateToDays(1998, 12, 31);

/// Standard TPC-H enumerations (dbgen's distributions).
extern const std::vector<std::string> kRegions;
extern const std::vector<std::string> kNations;
/// region ordinal for each nation (aligned with kNations).
extern const std::vector<int> kNationRegion;
extern const std::vector<std::string> kSegments;
extern const std::vector<std::string> kPriorities;
extern const std::vector<std::string> kShipModes;
extern const std::vector<std::string> kShipInstructs;
extern const std::vector<std::string> kTypeSyllable1;
extern const std::vector<std::string> kTypeSyllable2;
extern const std::vector<std::string> kTypeSyllable3;
extern const std::vector<std::string> kContainerSyllable1;
extern const std::vector<std::string> kContainerSyllable2;
extern const std::vector<std::string> kNameWords;  // p_name word pool

/// Creates the eight TPC-H relations (empty) in `catalog` and registers
/// the sorted string dictionaries for every enumerated attribute.
void CreateSchema(Catalog* catalog);

/// Row counts at scale factor `sf` (dbgen's scaling rules; lineitem is
/// approximate, orders average ~4 lineitems each).
struct Cardinalities {
  size_t supplier;
  size_t part;
  size_t partsupp;
  size_t customer;
  size_t orders;
};
Cardinalities CardinalitiesFor(double sf);

}  // namespace crackdb::tpch

#endif  // CRACKDB_TPCH_SCHEMA_H_
