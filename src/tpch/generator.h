#ifndef CRACKDB_TPCH_GENERATOR_H_
#define CRACKDB_TPCH_GENERATOR_H_

#include <string>

#include "common/rng.h"
#include "storage/catalog.h"
#include "tpch/schema.h"

namespace crackdb::tpch {

/// A generated TPC-H database instance plus encoding helpers the query
/// plans use.
class TpchDatabase {
 public:
  /// Generates all eight relations at scale factor `sf` (dbgen-style
  /// value distributions, deterministic under `seed`).
  explicit TpchDatabase(double sf, uint64_t seed = 19920101);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  double scale_factor() const { return sf_; }

  Relation& relation(const std::string& name) {
    return catalog_.relation(name);
  }

  /// Dictionary code of `str` in `relation.column` (dies if absent).
  Value Code(const std::string& qualified_column,
             const std::string& str) const;

 private:
  void Generate(uint64_t seed);

  double sf_;
  Catalog catalog_;
};

}  // namespace crackdb::tpch

#endif  // CRACKDB_TPCH_GENERATOR_H_
