#include "tpch/queries.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "engine/operators.h"
#include "engine/query.h"

namespace crackdb::tpch {

Engine& EngineSet::For(const std::string& relation_name) {
  auto it = engines_.find(relation_name);
  if (it == engines_.end()) {
    it = engines_
             .emplace(relation_name,
                      factory_(db_->relation(relation_name)))
             .first;
  }
  return *it->second;
}

double EngineSet::TotalPrepareMicros() const {
  double total = 0;
  for (const auto& [name, engine] : engines_) {
    total += engine->cost().prepare_micros;
  }
  return total;
}

namespace {

using Col = std::vector<Value>;

RangePredicate Le(Value v) { return {kMinValue, v, true, true}; }
RangePredicate Lt(Value v) { return {kMinValue, v, true, false}; }
[[maybe_unused]] RangePredicate Ge(Value v) {
  return {v, kMaxValue, true, true};
}
RangePredicate Gt(Value v) { return {v, kMaxValue, false, true}; }
RangePredicate Between(Value lo, Value hi) { return {lo, hi, true, true}; }
RangePredicate Point(Value v) { return RangePredicate::Point(v); }

Col Gather(std::span<const Value> values, std::span<const uint32_t> ordinals) {
  Col out;
  out.reserve(ordinals.size());
  for (uint32_t o : ordinals) out.push_back(values[o]);
  return out;
}

/// A fetched column that is a zero-copy view when the engine supports it
/// (sideways maps, presorted copies) and owns materialized storage
/// otherwise — the handle-level realization of the paper's
/// non-materialized result views.
struct ViewCol {
  std::vector<Value> storage;
  std::span<const Value> view;

  ViewCol(SelectionHandle* handle, const std::string& attr) {
    view = handle->FetchView(attr, &storage);
  }
  Value operator[](size_t i) const { return view[i]; }
  size_t size() const { return view.size(); }
  operator std::span<const Value>() const { return view; }  // NOLINT
};

/// disc_price = extendedprice * (100 - discount) / 100, in cents.
Value DiscPrice(Value extended, Value discount) {
  return extended * (100 - discount) / 100;
}

/// Rows sorted lexicographically (canonical result order for comparison).
void SortRowsInPlace(TpchResult* rows) {
  std::sort(rows->begin(), rows->end());
}

// ---------------------------------------------------------------------------
// Q1: pricing summary report.
// ---------------------------------------------------------------------------

TpchResult RunQ1(TpchDatabase& db, EngineSet& es, const QueryParams& p) {
  (void)db;
  QuerySpec spec;
  spec.selections = {{"l_shipdate", Le(p.date1)}};
  spec.projections = {"l_returnflag",    "l_linestatus", "l_quantity",
                      "l_extendedprice", "l_discount",   "l_tax"};
  auto handle = es.For("lineitem").Select(spec);
  const ViewCol flag(handle.get(), "l_returnflag");
  const ViewCol status(handle.get(), "l_linestatus");
  const ViewCol qty(handle.get(), "l_quantity");
  const ViewCol ext(handle.get(), "l_extendedprice");
  const ViewCol disc(handle.get(), "l_discount");
  const ViewCol tax(handle.get(), "l_tax");
  const size_t num_rows = flag.size();

  const std::vector<std::span<const Value>> keys = {flag, status};
  const Groups g = GroupBySpans(keys);
  Col disc_price(num_rows);
  Col charge(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    disc_price[i] = DiscPrice(ext[i], disc[i]);
    charge[i] = disc_price[i] * (100 + tax[i]) / 100;
  }
  const Col sum_qty = GroupedSum(g, qty);
  const Col sum_base = GroupedSum(g, ext);
  const Col sum_disc = GroupedSum(g, disc_price);
  const Col sum_charge = GroupedSum(g, charge);
  const Col counts = GroupedCount(g);

  TpchResult rows;
  for (size_t gi = 0; gi < g.num_groups(); ++gi) {
    rows.push_back({g.keys[gi][0], g.keys[gi][1], sum_qty[gi], sum_base[gi],
                    sum_disc[gi], sum_charge[gi], counts[gi]});
  }
  SortRowsInPlace(&rows);
  return rows;
}

// ---------------------------------------------------------------------------
// Q3: shipping priority.
// ---------------------------------------------------------------------------

TpchResult RunQ3(TpchDatabase& db, EngineSet& es, const QueryParams& p) {
  (void)db;
  // customer leg: segment point selection.
  QuerySpec cspec;
  cspec.selections = {{"c_mktsegment", Point(p.code1)}};
  cspec.projections = {"c_custkey"};
  const QueryResult cust = es.For("customer").Run(cspec);

  // orders leg.
  QuerySpec ospec;
  ospec.selections = {{"o_orderdate", Lt(p.date1)}};
  ospec.projections = {"o_orderkey", "o_custkey", "o_orderdate"};
  auto ho = es.For("orders").Select(ospec);
  const ViewCol o_orderkey(ho.get(), "o_orderkey");
  const ViewCol o_custkey(ho.get(), "o_custkey");

  const std::vector<uint32_t> o_keep = SemiJoin(o_custkey, cust.columns[0]);
  const Col o_orderkey_kept = Gather(o_orderkey, o_keep);

  // lineitem leg.
  QuerySpec lspec;
  lspec.selections = {{"l_shipdate", Gt(p.date1)}};
  lspec.projections = {"l_orderkey", "l_extendedprice", "l_discount"};
  auto hl = es.For("lineitem").Select(lspec);
  const ViewCol l_orderkey(hl.get(), "l_orderkey");

  const JoinPairs jp = HashJoin(l_orderkey, o_orderkey_kept);

  // Post-join tuple reconstructions: scattered access, the Figure 5(c)
  // pattern.
  const Col l_ext = hl->FetchAt("l_extendedprice", jp.left);
  const Col l_disc = hl->FetchAt("l_discount", jp.left);
  std::vector<uint32_t> o_ordinals;
  o_ordinals.reserve(jp.right.size());
  for (uint32_t r : jp.right) o_ordinals.push_back(o_keep[r]);
  const Col o_date = ho->FetchAt("o_orderdate", o_ordinals);
  const Col o_key = Gather(o_orderkey_kept, jp.right);

  Col revenue(jp.size());
  for (size_t i = 0; i < jp.size(); ++i) {
    revenue[i] = DiscPrice(l_ext[i], l_disc[i]);
  }
  const std::vector<Col> keys = {o_key, o_date};
  const Groups g = GroupBy(keys);
  const Col rev = GroupedSum(g, revenue);

  // top 10 by revenue desc, orderdate asc.
  Col group_rev = rev;
  Col group_date(g.num_groups());
  for (size_t i = 0; i < g.num_groups(); ++i) group_date[i] = g.keys[i][1];
  const std::vector<Col> order_cols = {group_rev, group_date};
  const std::vector<bool> asc = {false, true};
  const std::vector<uint32_t> top = TopKRows(order_cols, asc, 10);

  TpchResult rows;
  for (uint32_t t : top) {
    rows.push_back({g.keys[t][0], rev[t], g.keys[t][1]});
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Q4: order priority checking.
// ---------------------------------------------------------------------------

TpchResult RunQ4(TpchDatabase& db, EngineSet& es, const QueryParams& p) {
  (void)db;
  QuerySpec ospec;
  ospec.selections = {{"o_orderdate", {p.date1, p.date2, true, false}}};
  ospec.projections = {"o_orderkey", "o_orderpriority"};
  const QueryResult orders = es.For("orders").Run(ospec);

  // Late lineitems: commitdate < receiptdate (a column-column comparison —
  // full positional scan of both date columns, identical work for every
  // engine).
  QuerySpec lspec;
  lspec.projections = {"l_orderkey", "l_commitdate", "l_receiptdate"};
  auto hl = es.For("lineitem").Select(lspec);
  const ViewCol l_orderkey(hl.get(), "l_orderkey");
  const ViewCol l_commit(hl.get(), "l_commitdate");
  const ViewCol l_receipt(hl.get(), "l_receiptdate");
  Col late_orderkeys;
  for (size_t i = 0; i < l_orderkey.size(); ++i) {
    if (l_commit[i] < l_receipt[i]) {
      late_orderkeys.push_back(l_orderkey[i]);
    }
  }

  const std::vector<uint32_t> keep = SemiJoin(orders.columns[0],
                                              late_orderkeys);
  const Col priorities = Gather(orders.columns[1], keep);
  const std::vector<Col> keys = {priorities};
  const Groups g = GroupBy(keys);
  const Col counts = GroupedCount(g);
  TpchResult rows;
  for (size_t i = 0; i < g.num_groups(); ++i) {
    rows.push_back({g.keys[i][0], counts[i]});
  }
  SortRowsInPlace(&rows);
  return rows;
}

// ---------------------------------------------------------------------------
// Q6: forecasting revenue change.
// ---------------------------------------------------------------------------

TpchResult RunQ6(TpchDatabase& db, EngineSet& es, const QueryParams& p) {
  (void)db;
  QuerySpec spec;
  spec.selections = {
      {"l_shipdate", {p.date1, p.date2, true, false}},
      {"l_discount", Between(p.int1 - 1, p.int1 + 1)},
      {"l_quantity", Lt(p.int2)},
  };
  spec.projections = {"l_extendedprice", "l_discount"};
  auto handle = es.For("lineitem").Select(spec);
  const ViewCol ext(handle.get(), "l_extendedprice");
  const ViewCol disc(handle.get(), "l_discount");
  Value revenue = 0;
  for (size_t i = 0; i < ext.size(); ++i) {
    revenue += ext[i] * disc[i] / 100;
  }
  return {{revenue}};
}

// ---------------------------------------------------------------------------
// Q7: volume shipping between two nations.
// ---------------------------------------------------------------------------

TpchResult RunQ7(TpchDatabase& db, EngineSet& es, const QueryParams& p) {
  (void)db;
  const Value nation1 = p.code1;
  const Value nation2 = p.code2;

  // Dimension legs (tiny): full fetches, filtered in the plan.
  QuerySpec sspec;
  sspec.projections = {"s_suppkey", "s_nationkey"};
  const QueryResult supp = es.For("supplier").Run(sspec);
  std::unordered_map<Value, Value> supp_nation;
  for (size_t i = 0; i < supp.num_rows; ++i) {
    const Value nk = supp.columns[1][i];
    if (nk == nation1 || nk == nation2) {
      supp_nation[supp.columns[0][i]] = nk;
    }
  }

  QuerySpec cspec;
  cspec.projections = {"c_custkey", "c_nationkey"};
  const QueryResult cust = es.For("customer").Run(cspec);
  std::unordered_map<Value, Value> cust_nation;
  for (size_t i = 0; i < cust.num_rows; ++i) {
    const Value nk = cust.columns[1][i];
    if (nk == nation1 || nk == nation2) {
      cust_nation[cust.columns[0][i]] = nk;
    }
  }

  QuerySpec ospec;
  ospec.projections = {"o_orderkey", "o_custkey"};
  const QueryResult orders = es.For("orders").Run(ospec);
  std::unordered_map<Value, Value> order_cust_nation;
  order_cust_nation.reserve(orders.num_rows / 4);
  for (size_t i = 0; i < orders.num_rows; ++i) {
    auto it = cust_nation.find(orders.columns[1][i]);
    if (it != cust_nation.end()) {
      order_cust_nation[orders.columns[0][i]] = it->second;
    }
  }

  // Fact leg: shipdate range selection drives the cracking.
  QuerySpec lspec;
  lspec.selections = {{"l_shipdate", Between(p.date1, p.date2)}};
  lspec.projections = {"l_suppkey", "l_orderkey", "l_extendedprice",
                       "l_discount", "l_shipdate"};
  auto hl = es.For("lineitem").Select(lspec);
  const ViewCol l_suppkey(hl.get(), "l_suppkey");
  const ViewCol l_orderkey(hl.get(), "l_orderkey");

  std::vector<uint32_t> match;
  Col supp_nations;
  Col cust_nations;
  for (uint32_t i = 0; i < l_suppkey.size(); ++i) {
    auto sit = supp_nation.find(l_suppkey[i]);
    if (sit == supp_nation.end()) continue;
    auto oit = order_cust_nation.find(l_orderkey[i]);
    if (oit == order_cust_nation.end()) continue;
    // cross-nation pairs only
    if (sit->second == oit->second) continue;
    match.push_back(i);
    supp_nations.push_back(sit->second);
    cust_nations.push_back(oit->second);
  }
  const Col l_ext = hl->FetchAt("l_extendedprice", match);
  const Col l_disc = hl->FetchAt("l_discount", match);
  const Col l_ship = hl->FetchAt("l_shipdate", match);

  Col years(match.size());
  Col volume(match.size());
  for (size_t i = 0; i < match.size(); ++i) {
    int y, m, d;
    DaysToDate(l_ship[i], &y, &m, &d);
    years[i] = y;
    volume[i] = DiscPrice(l_ext[i], l_disc[i]);
  }
  const std::vector<Col> keys = {supp_nations, cust_nations, years};
  const Groups g = GroupBy(keys);
  const Col rev = GroupedSum(g, volume);
  TpchResult rows;
  for (size_t i = 0; i < g.num_groups(); ++i) {
    rows.push_back({g.keys[i][0], g.keys[i][1], g.keys[i][2], rev[i]});
  }
  SortRowsInPlace(&rows);
  return rows;
}

// ---------------------------------------------------------------------------
// Q8: national market share.
// ---------------------------------------------------------------------------

TpchResult RunQ8(TpchDatabase& db, EngineSet& es, const QueryParams& p) {
  const Value target_nation = p.code1;
  const Value region = p.code2;
  const Value type_code = p.code3;

  // part leg: point selection on p_type (the engine-side selection).
  QuerySpec pspec;
  pspec.selections = {{"p_type", Point(type_code)}};
  pspec.projections = {"p_partkey"};
  const QueryResult part = es.For("part").Run(pspec);
  std::unordered_set<Value> partkeys(part.columns[0].begin(),
                                     part.columns[0].end());

  // customers of the region (via nation).
  const Relation& nation = db.relation("nation");
  std::unordered_set<Value> region_nations;
  for (size_t i = 0; i < nation.num_rows(); ++i) {
    if (nation.column("n_regionkey")[i] == region) {
      region_nations.insert(nation.column("n_nationkey")[i]);
    }
  }
  QuerySpec cspec;
  cspec.projections = {"c_custkey", "c_nationkey"};
  const QueryResult cust = es.For("customer").Run(cspec);
  std::unordered_set<Value> region_custkeys;
  for (size_t i = 0; i < cust.num_rows; ++i) {
    if (region_nations.count(cust.columns[1][i]) != 0) {
      region_custkeys.insert(cust.columns[0][i]);
    }
  }

  // orders leg: date range selection.
  QuerySpec ospec;
  ospec.selections = {{"o_orderdate", Between(p.date1, p.date2)}};
  ospec.projections = {"o_orderkey", "o_custkey", "o_orderdate"};
  auto ho = es.For("orders").Select(ospec);
  const ViewCol o_orderkey(ho.get(), "o_orderkey");
  const ViewCol o_custkey(ho.get(), "o_custkey");
  std::unordered_map<Value, uint32_t> order_ordinal;
  order_ordinal.reserve(o_orderkey.size());
  for (uint32_t i = 0; i < o_orderkey.size(); ++i) {
    if (region_custkeys.count(o_custkey[i]) != 0) {
      order_ordinal[o_orderkey[i]] = i;
    }
  }

  // supplier nations.
  QuerySpec sspec;
  sspec.projections = {"s_suppkey", "s_nationkey"};
  const QueryResult supp = es.For("supplier").Run(sspec);
  std::unordered_map<Value, Value> supp_nation;
  for (size_t i = 0; i < supp.num_rows; ++i) {
    supp_nation[supp.columns[0][i]] = supp.columns[1][i];
  }

  // lineitem leg: no constant selection (joins filter); full fetches.
  QuerySpec lspec;
  lspec.projections = {"l_partkey", "l_orderkey", "l_suppkey",
                       "l_extendedprice", "l_discount"};
  auto hl = es.For("lineitem").Select(lspec);
  const ViewCol l_partkey(hl.get(), "l_partkey");
  const ViewCol l_orderkey(hl.get(), "l_orderkey");

  std::vector<uint32_t> match;
  std::vector<uint32_t> o_ordinals;
  for (uint32_t i = 0; i < l_partkey.size(); ++i) {
    if (partkeys.count(l_partkey[i]) == 0) continue;
    auto oit = order_ordinal.find(l_orderkey[i]);
    if (oit == order_ordinal.end()) continue;
    match.push_back(i);
    o_ordinals.push_back(oit->second);
  }
  const Col l_supp = hl->FetchAt("l_suppkey", match);
  const Col l_ext = hl->FetchAt("l_extendedprice", match);
  const Col l_disc = hl->FetchAt("l_discount", match);
  const Col o_date = ho->FetchAt("o_orderdate", o_ordinals);

  // market share of target nation per order year.
  std::unordered_map<Value, std::pair<Value, Value>> by_year;  // year -> (target, total)
  for (size_t i = 0; i < match.size(); ++i) {
    int y, m, d;
    DaysToDate(o_date[i], &y, &m, &d);
    const Value vol = DiscPrice(l_ext[i], l_disc[i]);
    auto& slot = by_year[y];
    slot.second += vol;
    if (supp_nation[l_supp[i]] == target_nation) slot.first += vol;
  }
  TpchResult rows;
  for (const auto& [year, vols] : by_year) {
    const Value share_bp =
        vols.second == 0 ? 0 : vols.first * 10000 / vols.second;
    rows.push_back({year, share_bp});
  }
  SortRowsInPlace(&rows);
  return rows;
}

// ---------------------------------------------------------------------------
// Q10: returned item reporting.
// ---------------------------------------------------------------------------

TpchResult RunQ10(TpchDatabase& db, EngineSet& es, const QueryParams& p) {
  (void)db;
  QuerySpec ospec;
  ospec.selections = {{"o_orderdate", {p.date1, p.date2, true, false}}};
  ospec.projections = {"o_orderkey", "o_custkey"};
  auto ho = es.For("orders").Select(ospec);
  const ViewCol o_orderkey(ho.get(), "o_orderkey");

  QuerySpec lspec;
  lspec.selections = {{"l_returnflag", Point(p.code1)}};
  lspec.projections = {"l_orderkey", "l_extendedprice", "l_discount"};
  auto hl = es.For("lineitem").Select(lspec);
  const ViewCol l_orderkey(hl.get(), "l_orderkey");

  const JoinPairs jp = HashJoin(l_orderkey, o_orderkey);
  const Col l_ext = hl->FetchAt("l_extendedprice", jp.left);
  const Col l_disc = hl->FetchAt("l_discount", jp.left);
  const Col o_cust = ho->FetchAt("o_custkey", jp.right);

  Col revenue(jp.size());
  for (size_t i = 0; i < jp.size(); ++i) {
    revenue[i] = DiscPrice(l_ext[i], l_disc[i]);
  }
  const std::vector<Col> keys = {o_cust};
  const Groups g = GroupBy(keys);
  const Col rev = GroupedSum(g, revenue);

  Col group_rev = rev;
  const std::vector<Col> order_cols = {group_rev};
  const std::vector<bool> asc = {false};
  const std::vector<uint32_t> top = TopKRows(order_cols, asc, 20);
  TpchResult rows;
  for (uint32_t t : top) rows.push_back({g.keys[t][0], rev[t]});
  return rows;
}

// ---------------------------------------------------------------------------
// Q12: shipping modes and order priority.
// ---------------------------------------------------------------------------

TpchResult RunQ12(TpchDatabase& db, EngineSet& es, const QueryParams& p) {
  QuerySpec lspec;
  lspec.selections = {{"l_receiptdate", {p.date1, p.date2, true, false}}};
  lspec.projections = {"l_orderkey", "l_shipmode", "l_shipdate",
                       "l_commitdate", "l_receiptdate"};
  auto hl = es.For("lineitem").Select(lspec);
  const ViewCol l_orderkey(hl.get(), "l_orderkey");
  const ViewCol l_mode(hl.get(), "l_shipmode");
  const ViewCol l_ship(hl.get(), "l_shipdate");
  const ViewCol l_commit(hl.get(), "l_commitdate");
  const ViewCol l_receipt(hl.get(), "l_receiptdate");

  std::vector<uint32_t> keep;
  for (uint32_t i = 0; i < l_orderkey.size(); ++i) {
    if ((l_mode[i] == p.code1 || l_mode[i] == p.code2) &&
        l_commit[i] < l_receipt[i] && l_ship[i] < l_commit[i]) {
      keep.push_back(i);
    }
  }

  QuerySpec ospec;
  ospec.projections = {"o_orderkey", "o_orderpriority"};
  auto ho = es.For("orders").Select(ospec);
  const ViewCol o_orderkey(ho.get(), "o_orderkey");
  std::unordered_map<Value, uint32_t> order_ordinal;
  order_ordinal.reserve(o_orderkey.size());
  for (uint32_t i = 0; i < o_orderkey.size(); ++i) {
    order_ordinal[o_orderkey[i]] = i;
  }
  std::vector<uint32_t> o_ordinals;
  Col modes;
  for (uint32_t k : keep) {
    auto it = order_ordinal.find(l_orderkey[k]);
    if (it == order_ordinal.end()) continue;
    o_ordinals.push_back(it->second);
    modes.push_back(l_mode[k]);
  }
  const Col prios = ho->FetchAt("o_orderpriority", o_ordinals);

  const Value urgent = db.Code("orders.o_orderpriority", "1-URGENT");
  const Value high = db.Code("orders.o_orderpriority", "2-HIGH");
  std::unordered_map<Value, std::pair<Value, Value>> per_mode;
  for (size_t i = 0; i < prios.size(); ++i) {
    auto& slot = per_mode[modes[i]];
    if (prios[i] == urgent || prios[i] == high) {
      ++slot.first;
    } else {
      ++slot.second;
    }
  }
  TpchResult rows;
  for (const auto& [mode, counts] : per_mode) {
    rows.push_back({mode, counts.first, counts.second});
  }
  SortRowsInPlace(&rows);
  return rows;
}

// ---------------------------------------------------------------------------
// Q14: promotion effect.
// ---------------------------------------------------------------------------

TpchResult RunQ14(TpchDatabase& db, EngineSet& es, const QueryParams& p) {
  QuerySpec lspec;
  lspec.selections = {{"l_shipdate", {p.date1, p.date2, true, false}}};
  lspec.projections = {"l_partkey", "l_extendedprice", "l_discount"};
  auto hl = es.For("lineitem").Select(lspec);
  const ViewCol li_partkey(hl.get(), "l_partkey");
  const ViewCol li_ext(hl.get(), "l_extendedprice");
  const ViewCol li_disc(hl.get(), "l_discount");

  QuerySpec pspec;
  pspec.projections = {"p_partkey", "p_type"};
  const QueryResult part = es.For("part").Run(pspec);
  std::unordered_map<Value, Value> part_type;
  part_type.reserve(part.num_rows);
  for (size_t i = 0; i < part.num_rows; ++i) {
    part_type[part.columns[0][i]] = part.columns[1][i];
  }

  // PROMO type codes: p_type starts with "PROMO" — the dictionary is
  // sorted, so the PROMO* types form one contiguous code range.
  const Dictionary& types =
      const_cast<Catalog&>(db.catalog()).dictionary("part.p_type");
  Value promo_lo = kMaxValue, promo_hi = kMinValue;
  for (size_t c = 0; c < types.size(); ++c) {
    if (types.Decode(static_cast<Value>(c)).rfind("PROMO", 0) == 0) {
      promo_lo = std::min(promo_lo, static_cast<Value>(c));
      promo_hi = std::max(promo_hi, static_cast<Value>(c));
    }
  }

  Value promo = 0;
  Value total = 0;
  for (size_t i = 0; i < li_partkey.size(); ++i) {
    const Value vol = DiscPrice(li_ext[i], li_disc[i]);
    total += vol;
    auto it = part_type.find(li_partkey[i]);
    if (it != part_type.end() && it->second >= promo_lo &&
        it->second <= promo_hi) {
      promo += vol;
    }
  }
  const Value promo_bp = total == 0 ? 0 : promo * 10000 / total;
  return {{promo_bp}};
}

// ---------------------------------------------------------------------------
// Q15: top supplier.
// ---------------------------------------------------------------------------

TpchResult RunQ15(TpchDatabase& db, EngineSet& es, const QueryParams& p) {
  (void)db;
  QuerySpec lspec;
  lspec.selections = {{"l_shipdate", {p.date1, p.date2, true, false}}};
  lspec.projections = {"l_suppkey", "l_extendedprice", "l_discount"};
  auto hl = es.For("lineitem").Select(lspec);
  const ViewCol li_suppkey(hl.get(), "l_suppkey");
  const ViewCol li_ext(hl.get(), "l_extendedprice");
  const ViewCol li_disc(hl.get(), "l_discount");

  Col revenue(li_suppkey.size());
  for (size_t i = 0; i < li_suppkey.size(); ++i) {
    revenue[i] = DiscPrice(li_ext[i], li_disc[i]);
  }
  const std::vector<std::span<const Value>> keys = {li_suppkey};
  const Groups g = GroupBySpans(keys);
  const Col rev = GroupedSum(g, revenue);
  const Value max_rev = MaxOf(rev);

  TpchResult rows;
  for (size_t i = 0; i < g.num_groups(); ++i) {
    if (rev[i] == max_rev) rows.push_back({g.keys[i][0], rev[i]});
  }
  SortRowsInPlace(&rows);
  return rows;
}

// ---------------------------------------------------------------------------
// Q19: discounted revenue (disjunctive multi-branch predicate).
// ---------------------------------------------------------------------------

TpchResult RunQ19(TpchDatabase& db, EngineSet& es, const QueryParams& p) {
  // Three (brand, container-class, quantity-range) branches. The
  // column-store reconstructs lineitem attributes once per branch — the
  // reconstruction-heavy pattern the paper highlights; the row engine
  // evaluates all branches in its single pass per leg.
  struct Branch {
    Value brand;
    std::vector<Value> containers;
    Value qty_lo;
    Value qty_hi;
    Value size_hi;
  };
  auto container_codes = [&](const std::vector<std::string>& names) {
    std::vector<Value> codes;
    for (const std::string& s : names) {
      codes.push_back(db.Code("part.p_container", s));
    }
    return codes;
  };
  const Branch branches[3] = {
      {p.code1,
       container_codes({"SM CASE", "SM BOX", "SM PACK", "SM PKG"}),
       p.int1, p.int1 + 10, 5},
      {p.code2,
       container_codes({"MED BAG", "MED BOX", "MED PKG", "MED PACK"}),
       p.int2, p.int2 + 10, 10},
      {p.code3,
       container_codes({"LG CASE", "LG BOX", "LG PACK", "LG PKG"}),
       p.int3, p.int3 + 10, 15},
  };

  const Value instruct =
      db.Code("lineitem.l_shipinstruct", "DELIVER IN PERSON");
  const Value air = db.Code("lineitem.l_shipmode", "AIR");
  const Value reg_air = db.Code("lineitem.l_shipmode", "REG AIR");

  Value revenue = 0;
  for (const Branch& b : branches) {
    // part side: brand point selection (engine), container/size filters.
    QuerySpec pspec;
    pspec.selections = {{"p_brand", Point(b.brand)}};
    pspec.projections = {"p_partkey", "p_container", "p_size"};
    const QueryResult part = es.For("part").Run(pspec);
    std::unordered_set<Value> partkeys;
    for (size_t i = 0; i < part.num_rows; ++i) {
      const Value c = part.columns[1][i];
      const Value sz = part.columns[2][i];
      if (sz < 1 || sz > b.size_hi) continue;
      if (std::find(b.containers.begin(), b.containers.end(), c) ==
          b.containers.end()) {
        continue;
      }
      partkeys.insert(part.columns[0][i]);
    }

    // lineitem side: quantity range selection (engine), rest filtered.
    QuerySpec lspec;
    lspec.selections = {{"l_quantity", Between(b.qty_lo, b.qty_hi)}};
    lspec.projections = {"l_partkey", "l_extendedprice", "l_discount",
                         "l_shipinstruct", "l_shipmode"};
    auto hl = es.For("lineitem").Select(lspec);
    const ViewCol li_partkey(hl.get(), "l_partkey");
    const ViewCol li_ext(hl.get(), "l_extendedprice");
    const ViewCol li_disc(hl.get(), "l_discount");
    const ViewCol li_instruct(hl.get(), "l_shipinstruct");
    const ViewCol li_mode(hl.get(), "l_shipmode");
    for (size_t i = 0; i < li_partkey.size(); ++i) {
      if (li_instruct[i] != instruct) continue;
      const Value mode = li_mode[i];
      if (mode != air && mode != reg_air) continue;
      if (partkeys.count(li_partkey[i]) == 0) continue;
      revenue += DiscPrice(li_ext[i], li_disc[i]);
    }
  }
  return {{revenue}};
}

// ---------------------------------------------------------------------------
// Q20: potential part promotion.
// ---------------------------------------------------------------------------

TpchResult RunQ20(TpchDatabase& db, EngineSet& es, const QueryParams& p) {
  (void)db;
  // parts named like 'word%': the p_name column stores the first-word
  // code, so the LIKE prefix is a point selection.
  QuerySpec pspec;
  pspec.selections = {{"p_name", Point(p.code1)}};
  pspec.projections = {"p_partkey"};
  const QueryResult part = es.For("part").Run(pspec);
  std::unordered_set<Value> partkeys(part.columns[0].begin(),
                                     part.columns[0].end());

  // lineitem shipped within the year: sum quantity per (part, supp).
  QuerySpec lspec;
  lspec.selections = {{"l_shipdate", {p.date1, p.date2, true, false}}};
  lspec.projections = {"l_partkey", "l_suppkey", "l_quantity"};
  auto hl = es.For("lineitem").Select(lspec);
  const ViewCol li_partkey(hl.get(), "l_partkey");
  const ViewCol li_suppkey(hl.get(), "l_suppkey");
  const ViewCol li_qty(hl.get(), "l_quantity");
  std::unordered_map<Value, Value> shipped;  // (part,supp) packed -> qty
  for (size_t i = 0; i < li_partkey.size(); ++i) {
    const Value pk = li_partkey[i];
    if (partkeys.count(pk) == 0) continue;
    shipped[pk * (1ll << 32) + li_suppkey[i]] += li_qty[i];
  }

  // partsupp: availqty > 0.5 * shipped.
  QuerySpec psspec;
  psspec.projections = {"ps_partkey", "ps_suppkey", "ps_availqty"};
  const QueryResult ps = es.For("partsupp").Run(psspec);
  std::unordered_set<Value> suppkeys;
  for (size_t i = 0; i < ps.num_rows; ++i) {
    const Value pk = ps.columns[0][i];
    if (partkeys.count(pk) == 0) continue;
    auto it = shipped.find(pk * (1ll << 32) + ps.columns[1][i]);
    if (it == shipped.end()) continue;
    if (ps.columns[2][i] * 2 > it->second) suppkeys.insert(ps.columns[1][i]);
  }

  // suppliers of the nation.
  QuerySpec sspec;
  sspec.projections = {"s_suppkey", "s_name", "s_nationkey"};
  const QueryResult supp = es.For("supplier").Run(sspec);
  TpchResult rows;
  for (size_t i = 0; i < supp.num_rows; ++i) {
    if (supp.columns[2][i] != p.code2) continue;
    if (suppkeys.count(supp.columns[0][i]) == 0) continue;
    rows.push_back({supp.columns[0][i], supp.columns[1][i]});
  }
  SortRowsInPlace(&rows);
  return rows;
}

// ---------------------------------------------------------------------------
// Parameter randomizers (TPC-H substitution rules, simplified).
// ---------------------------------------------------------------------------

QueryParams RandQ1(TpchDatabase&, Rng& rng) {
  QueryParams p;
  p.date1 = DateToDays(1998, 12, 1) - rng.Uniform(60, 120);
  return p;
}

QueryParams RandQ3(TpchDatabase& db, Rng& rng) {
  QueryParams p;
  p.code1 = db.Code("customer.c_mktsegment",
                    kSegments[static_cast<size_t>(rng.Uniform(0, 4))]);
  p.date1 = DateToDays(1995, 3, static_cast<int>(rng.Uniform(1, 31)));
  return p;
}

QueryParams RandQ4(TpchDatabase&, Rng& rng) {
  QueryParams p;
  const int year = static_cast<int>(rng.Uniform(1993, 1997));
  const int month = static_cast<int>(rng.Uniform(0, 3)) * 3 + 1;
  p.date1 = DateToDays(year, month, 1);
  p.date2 = p.date1 + 92;
  return p;
}

QueryParams RandQ6(TpchDatabase&, Rng& rng) {
  QueryParams p;
  const int year = static_cast<int>(rng.Uniform(1993, 1997));
  p.date1 = DateToDays(year, 1, 1);
  p.date2 = DateToDays(year + 1, 1, 1);
  p.int1 = rng.Uniform(2, 9);   // discount (hundredths)
  p.int2 = rng.Uniform(24, 25);  // quantity
  return p;
}

QueryParams RandQ7(TpchDatabase& db, Rng& rng) {
  QueryParams p;
  const Value n1 = rng.Uniform(0, 24);
  Value n2 = rng.Uniform(0, 23);
  if (n2 >= n1) ++n2;
  p.code1 = n1;
  p.code2 = n2;
  p.date1 = DateToDays(1995, 1, 1);
  p.date2 = DateToDays(1996, 12, 31);
  (void)db;
  return p;
}

QueryParams RandQ8(TpchDatabase& db, Rng& rng) {
  QueryParams p;
  const size_t nation = static_cast<size_t>(rng.Uniform(0, 24));
  p.code1 = static_cast<Value>(nation);
  p.code2 = static_cast<Value>(kNationRegion[nation]);
  p.code3 = rng.Uniform(0, 149);  // p_type code
  p.date1 = DateToDays(1995, 1, 1);
  p.date2 = DateToDays(1996, 12, 31);
  (void)db;
  return p;
}

QueryParams RandQ10(TpchDatabase& db, Rng& rng) {
  QueryParams p;
  const int year = static_cast<int>(rng.Uniform(1993, 1994));
  const int month = static_cast<int>(rng.Uniform(0, 3)) * 3 + 1;
  p.date1 = DateToDays(year, month, 1);
  p.date2 = p.date1 + 92;
  p.code1 = db.Code("lineitem.l_returnflag", "R");
  return p;
}

QueryParams RandQ12(TpchDatabase& db, Rng& rng) {
  QueryParams p;
  const Value m1 = rng.Uniform(0, 6);
  Value m2 = rng.Uniform(0, 5);
  if (m2 >= m1) ++m2;
  p.code1 = m1;
  p.code2 = m2;
  const int year = static_cast<int>(rng.Uniform(1993, 1997));
  p.date1 = DateToDays(year, 1, 1);
  p.date2 = DateToDays(year + 1, 1, 1);
  (void)db;
  return p;
}

QueryParams RandQ14(TpchDatabase&, Rng& rng) {
  QueryParams p;
  const int year = static_cast<int>(rng.Uniform(1993, 1997));
  const int month = static_cast<int>(rng.Uniform(1, 12));
  p.date1 = DateToDays(year, month, 1);
  p.date2 = month == 12 ? DateToDays(year + 1, 1, 1)
                        : DateToDays(year, month + 1, 1);
  return p;
}

QueryParams RandQ15(TpchDatabase&, Rng& rng) {
  QueryParams p;
  const int year = static_cast<int>(rng.Uniform(1993, 1997));
  const int month = static_cast<int>(rng.Uniform(1, 10));
  p.date1 = DateToDays(year, month, 1);
  p.date2 = p.date1 + 92;
  return p;
}

QueryParams RandQ19(TpchDatabase& db, Rng& rng) {
  QueryParams p;
  auto brand = [&]() {
    const int m = static_cast<int>(rng.Uniform(1, 5));
    const int n = static_cast<int>(rng.Uniform(1, 5));
    return db.Code("part.p_brand",
                   "Brand#" + std::to_string(m) + std::to_string(n));
  };
  p.code1 = brand();
  p.code2 = brand();
  p.code3 = brand();
  p.int1 = rng.Uniform(1, 10);
  p.int2 = rng.Uniform(10, 20);
  p.int3 = rng.Uniform(20, 30);
  return p;
}

QueryParams RandQ20(TpchDatabase& db, Rng& rng) {
  QueryParams p;
  p.code1 = db.Code(
      "part.p_name",
      kNameWords[static_cast<size_t>(rng.Uniform(
          0, static_cast<Value>(kNameWords.size()) - 1))]);
  const int year = static_cast<int>(rng.Uniform(1993, 1997));
  p.date1 = DateToDays(year, 1, 1);
  p.date2 = DateToDays(year + 1, 1, 1);
  p.code2 = rng.Uniform(0, 24);  // nation key
  return p;
}

}  // namespace

TpchResult RunQ1Grouped(TpchDatabase& db, EngineSet& es,
                        const QueryParams& p) {
  (void)db;
  QueryBuilder builder;
  builder.Where("l_shipdate", Le(p.date1))
      .GroupBy("l_returnflag")
      .Aggregate(AggregateOp::kSum, "l_quantity")
      .Aggregate(AggregateOp::kSum, "l_extendedprice")
      .Aggregate(AggregateOp::kCount, "l_quantity");
  Query q = builder.Build();
  if (!q.error.empty()) {
    std::fprintf(stderr, "crackdb: Q1-grouped failed to compile: %s\n",
                 q.error.c_str());
    std::abort();
  }
  const ExecuteResult result = es.For("lineitem").Execute(q.spec, q.consume);
  TpchResult rows;
  rows.reserve(result.groups.num_groups());
  for (size_t g = 0; g < result.groups.num_groups(); ++g) {
    rows.push_back({result.groups.keys[g], result.groups.aggregates[0][g],
                    result.groups.aggregates[1][g],
                    result.groups.aggregates[2][g]});
  }
  return rows;  // already sorted by group key (the finalize contract)
}

const std::vector<TpchQueryDef>& AllQueries() {
  static const std::vector<TpchQueryDef>* kQueries = new std::vector<
      TpchQueryDef>{
      {1, "pricing-summary", RunQ1, RandQ1},
      {3, "shipping-priority", RunQ3, RandQ3},
      {4, "order-priority", RunQ4, RandQ4},
      {6, "forecast-revenue", RunQ6, RandQ6},
      {7, "volume-shipping", RunQ7, RandQ7},
      {8, "market-share", RunQ8, RandQ8},
      {10, "returned-items", RunQ10, RandQ10},
      {12, "ship-modes", RunQ12, RandQ12},
      {14, "promotion-effect", RunQ14, RandQ14},
      {15, "top-supplier", RunQ15, RandQ15},
      {19, "discounted-revenue", RunQ19, RandQ19},
      {20, "part-promotion", RunQ20, RandQ20},
  };
  return *kQueries;
}

const TpchQueryDef& QueryByNumber(int number) {
  for (const TpchQueryDef& q : AllQueries()) {
    if (q.number == number) return q;
  }
  std::fprintf(stderr, "crackdb: TPC-H query %d not in the evaluated set\n",
               number);
  std::abort();
}

}  // namespace crackdb::tpch
