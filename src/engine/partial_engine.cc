#include "engine/partial_engine.h"

#include <cassert>
#include <limits>

#include "engine/plain_engine.h"

namespace crackdb {

namespace {

/// Partial queries execute chunk-wise inside Select (the whole working set
/// of attributes is declared in spec.projections), so the handle serves
/// pre-materialized columns.
class PartialHandle : public SelectionHandle {
 public:
  PartialHandle(std::vector<std::string> projections,
                PartialQueryResult result)
      : projections_(std::move(projections)), result_(std::move(result)) {}

  size_t NumRows() override { return result_.num_rows; }

  std::vector<Value> Fetch(const std::string& attr) override {
    return *ColumnOf(attr);
  }

  std::vector<Value> FetchAt(const std::string& attr,
                             std::span<const uint32_t> ordinals) override {
    const std::vector<Value>* column = ColumnOf(attr);
    std::vector<Value> out;
    out.reserve(ordinals.size());
    for (uint32_t ord : ordinals) out.push_back((*column)[ord]);
    return out;
  }

  std::span<const Value> FetchView(const std::string& attr,
                                   std::vector<Value>* storage) override {
    // Chunk-wise execution already materialized the columns; view them.
    (void)storage;
    const std::vector<Value>* column = ColumnOf(attr);
    return {column->data(), column->size()};
  }

 private:
  const std::vector<Value>* ColumnOf(const std::string& attr) {
    for (size_t i = 0; i < projections_.size(); ++i) {
      if (projections_[i] == attr) return &result_.columns[i];
    }
    assert(false && "attribute was not declared in spec.projections");
    static const std::vector<Value> kEmpty;
    return &kEmpty;
  }

  std::vector<std::string> projections_;
  PartialQueryResult result_;
};

}  // namespace

PartialSidewaysEngine::PartialSidewaysEngine(const Relation& relation,
                                             PartialConfig config)
    : relation_(&relation),
      config_(config),
      storage_(config.storage_budget_tuples * 2) {}

PartialMapSet& PartialSidewaysEngine::GetOrCreateSet(
    const std::string& head_attr) {
  auto it = sets_.find(head_attr);
  if (it == sets_.end()) {
    it = sets_
             .emplace(head_attr,
                      std::make_unique<PartialMapSet>(*relation_, head_attr,
                                                      &storage_, &config_))
             .first;
  }
  return *it->second;
}

bool PartialSidewaysEngine::HasSet(const std::string& head_attr) const {
  return sets_.count(head_attr) != 0;
}

size_t PartialSidewaysEngine::ChooseHeadSelection(const QuerySpec& spec) {
  if (spec.selections.size() <= 1) return 0;
  size_t best = std::numeric_limits<size_t>::max();
  double best_est = 0;
  for (size_t i = 0; i < spec.selections.size(); ++i) {
    auto it = sets_.find(spec.selections[i].attr);
    if (it == sets_.end()) continue;
    const double est =
        it->second->EstimateMatches(spec.selections[i].pred).interpolated;
    if (best == std::numeric_limits<size_t>::max() || est < best_est) {
      best = i;
      best_est = est;
    }
  }
  return best == std::numeric_limits<size_t>::max() ? 0 : best;
}

std::unique_ptr<SelectionHandle> PartialSidewaysEngine::Select(
    const QuerySpec& spec) {
  if (spec.disjunctive && spec.selections.size() > 1) {
    // No single head range to chunk on (see the header's scope note):
    // answer from the base columns. A release build used to silently
    // return the *conjunction* here, which the sharded facade's
    // route-anything contract turned from a latent trap into a live bug.
    PlainEngine fallback(*relation_);
    return fallback.Select(spec);
  }
  PartialQueryRequest request;
  std::string head_attr;
  if (spec.selections.empty()) {
    head_attr = spec.projections.empty() ? relation_->column_names()[0]
                                         : spec.projections[0];
    request.head_pred = RangePredicate{};
  } else {
    const size_t head_idx = ChooseHeadSelection(spec);
    head_attr = spec.selections[head_idx].attr;
    request.head_pred = spec.selections[head_idx].pred;
    for (size_t i = 0; i < spec.selections.size(); ++i) {
      if (i == head_idx) continue;
      request.tail_selections.emplace_back(spec.selections[i].attr,
                                           spec.selections[i].pred);
    }
  }
  request.projections = spec.projections;
  PartialMapSet& set = GetOrCreateSet(head_attr);
  PartialQueryResult result = set.Execute(request);
  return std::make_unique<PartialHandle>(spec.projections, std::move(result));
}

}  // namespace crackdb
