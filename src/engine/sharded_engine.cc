#include "engine/sharded_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <shared_mutex>

#include "common/timer.h"

namespace crackdb {

namespace {

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "sharded engine: %s: %s\n", what, detail.c_str());
  std::abort();
}

/// Merged result handle: per-shard materialized projection columns plus
/// prefix sums for ordinal addressing. Owns every value it hands out, so
/// it outlives the partition locks (which ExecuteShards released before
/// this handle was built).
class ShardedHandle : public SelectionHandle {
 public:
  ShardedHandle(std::vector<std::string> projections,
                std::vector<std::vector<std::vector<Value>>> shard_columns,
                std::vector<size_t> shard_rows)
      : projections_(std::move(projections)),
        shard_columns_(std::move(shard_columns)) {
    prefix_.reserve(shard_rows.size() + 1);
    prefix_.push_back(0);
    for (size_t rows : shard_rows) prefix_.push_back(prefix_.back() + rows);
  }

  size_t NumRows() override { return prefix_.back(); }

  std::vector<Value> Fetch(const std::string& attr) override {
    const size_t slot = ProjectionSlot(attr);
    std::vector<Value> merged;
    merged.reserve(NumRows());
    for (const std::vector<std::vector<Value>>& shard : shard_columns_) {
      merged.insert(merged.end(), shard[slot].begin(), shard[slot].end());
    }
    return merged;
  }

  std::vector<Value> FetchAt(const std::string& attr,
                             std::span<const uint32_t> ordinals) override {
    const size_t slot = ProjectionSlot(attr);
    std::vector<Value> out;
    out.reserve(ordinals.size());
    for (uint32_t ord : ordinals) {
      const size_t shard =
          static_cast<size_t>(std::upper_bound(prefix_.begin(), prefix_.end(),
                                               static_cast<size_t>(ord)) -
                              prefix_.begin()) -
          1;
      out.push_back(shard_columns_[shard][slot][ord - prefix_[shard]]);
    }
    return out;
  }

 private:
  size_t ProjectionSlot(const std::string& attr) const {
    for (size_t i = 0; i < projections_.size(); ++i) {
      if (projections_[i] == attr) return i;
    }
    // The projections declaration is binding for sharded execution: only
    // declared attributes were materialized inside the partition locks.
    Die("fetch of undeclared projection", attr);
  }

  std::vector<std::string> projections_;
  // shard_columns_[shard][projection_slot] -> values
  std::vector<std::vector<std::vector<Value>>> shard_columns_;
  std::vector<size_t> prefix_;
};

}  // namespace

ShardedEngine::ShardedEngine(const PartitionedRelation& relation,
                             EngineFactory factory, ThreadPool* pool)
    : relation_(&relation), pool_(pool) {
  if (!factory) Die("null engine factory", relation.name());
  engines_.reserve(relation.num_partitions());
  for (size_t i = 0; i < relation.num_partitions(); ++i) {
    engines_.push_back(factory(relation.partition(i)));
    if (engines_.back() == nullptr) {
      Die("factory returned null", relation.name());
    }
  }
}

std::string ShardedEngine::name() const {
  return "sharded<" + engines_[0]->name() + ">";
}

std::vector<size_t> ShardedEngine::TargetPartitions(
    const QuerySpec& spec) const {
  const size_t n = engines_.size();
  const std::string& organizing = relation_->spec().column;
  std::vector<size_t> targets;
  targets.reserve(n);

  // Disjunctions can only prune when *every* disjunct is on the organizing
  // attribute (any other attribute may qualify rows anywhere).
  bool disjunctive_prunable = spec.disjunctive && !spec.selections.empty();
  if (disjunctive_prunable) {
    for (const QuerySpec::Selection& sel : spec.selections) {
      if (sel.attr != organizing) {
        disjunctive_prunable = false;
        break;
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    bool keep = true;
    if (!spec.disjunctive) {
      for (const QuerySpec::Selection& sel : spec.selections) {
        if (sel.attr == organizing && !relation_->MayContain(i, sel.pred)) {
          keep = false;
          break;
        }
      }
    } else if (disjunctive_prunable) {
      keep = false;
      for (const QuerySpec::Selection& sel : spec.selections) {
        if (relation_->MayContain(i, sel.pred)) {
          keep = true;
          break;
        }
      }
    }
    if (keep) targets.push_back(i);
  }
  return targets;
}

std::vector<ShardedEngine::ShardResult> ShardedEngine::ExecuteShards(
    const QuerySpec& spec) {
  const std::vector<size_t> targets = TargetPartitions(spec);
  std::vector<ShardResult> results(targets.size());
  std::vector<CostBreakdown> deltas(targets.size());

  auto run_shard = [&](size_t t) {
    const size_t p = targets[t];
    Engine& child = *engines_[p];
    // Exclusive: the sub-query cracks the partition's auxiliary
    // structures. Everything the caller may touch later is materialized
    // before the lock is released.
    std::unique_lock<std::shared_mutex> lock(relation_->partition_mutex(p));
    const CostBreakdown before = child.cost();
    Timer select_timer;
    std::unique_ptr<SelectionHandle> handle = child.Select(spec);
    const double select_elapsed = select_timer.ElapsedMicros();

    Timer fetch_timer;
    ShardResult& shard = results[t];
    shard.columns.reserve(spec.projections.size());
    for (const std::string& attr : spec.projections) {
      shard.columns.push_back(handle->Fetch(attr));
    }
    shard.num_rows = handle->NumRows();

    // Charge the child's own attribution where it keeps one (prepare);
    // select/reconstruct use our wall timers so engines whose Select does
    // lazy work in Fetch are still accounted consistently.
    CostBreakdown& delta = deltas[t];
    delta.prepare_micros = child.cost().prepare_micros - before.prepare_micros;
    delta.select_micros = select_elapsed - delta.prepare_micros;
    delta.reconstruct_micros = fetch_timer.ElapsedMicros();
  };

  if (pool_ != nullptr && targets.size() > 1) {
    pool_->ParallelFor(targets.size(), run_shard);
  } else {
    for (size_t t = 0; t < targets.size(); ++t) run_shard(t);
  }

  CostBreakdown sum;
  for (const CostBreakdown& delta : deltas) {
    sum.select_micros += delta.select_micros;
    sum.reconstruct_micros += delta.reconstruct_micros;
    sum.prepare_micros += delta.prepare_micros;
  }
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    cost_.select_micros += sum.select_micros;
    cost_.reconstruct_micros += sum.reconstruct_micros;
    cost_.prepare_micros += sum.prepare_micros;
  }
  return results;
}

std::unique_ptr<SelectionHandle> ShardedEngine::Select(const QuerySpec& spec) {
  std::vector<ShardResult> shards = ExecuteShards(spec);
  std::vector<std::vector<std::vector<Value>>> columns;
  std::vector<size_t> rows;
  columns.reserve(shards.size());
  rows.reserve(shards.size());
  for (ShardResult& shard : shards) {
    columns.push_back(std::move(shard.columns));
    rows.push_back(shard.num_rows);
  }
  return std::make_unique<ShardedHandle>(spec.projections, std::move(columns),
                                         std::move(rows));
}

QueryResult ShardedEngine::Run(const QuerySpec& spec) {
  const std::vector<ShardResult> shards = ExecuteShards(spec);

  // Merge outside every partition lock: concatenate the per-shard
  // materializations per projection.
  Timer merge_timer;
  QueryResult result;
  result.columns.resize(spec.projections.size());
  size_t total_rows = 0;
  for (const ShardResult& shard : shards) total_rows += shard.num_rows;
  for (size_t c = 0; c < spec.projections.size(); ++c) {
    result.columns[c].reserve(total_rows);
    for (const ShardResult& shard : shards) {
      result.columns[c].insert(result.columns[c].end(),
                               shard.columns[c].begin(),
                               shard.columns[c].end());
    }
  }
  result.num_rows = total_rows;
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    cost_.reconstruct_micros += merge_timer.ElapsedMicros();
  }
  return result;
}

CostBreakdown ShardedEngine::CostSnapshot() const {
  std::lock_guard<std::mutex> lock(cost_mu_);
  return cost_;
}

}  // namespace crackdb
