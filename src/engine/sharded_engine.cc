#include "engine/sharded_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <shared_mutex>

#include "common/timer.h"
#include "engine/group_table.h"
#include "kernels/kernels.h"
#include "storage/codec.h"

namespace crackdb {

namespace {

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "sharded engine: %s: %s\n", what, detail.c_str());
  std::abort();
}

/// Registry handles resolved once per process. The micros totals mirror
/// the per-query CostBreakdown attribution exactly (the concurrency storm
/// test checks registry deltas against summed per-query costs), so
/// whatever lands in a result's cost also lands here — including the
/// grouped merge (select-side) and the materialize/visit merges
/// (reconstruct-side). Hot-path updates are *batched*: they accumulate as
/// plain fields (PendingMetrics) under cost_mu_, which the batch epilogue
/// takes anyway, and drain every kMetricsFlushBatches batches (or at any
/// CostSnapshot/FlushMetrics sync point) — the per-batch hot-path price
/// of the whole engine family is a handful of non-atomic adds under an
/// already-held lock. docs/OBSERVABILITY.md has the inventory.
struct EngineMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& batches = reg.GetCounter("engine_batches_total");
  obs::Counter& subqueries = reg.GetCounter("engine_subqueries_total");
  obs::Counter& groups = reg.GetCounter("engine_partition_groups_total");
  obs::Counter& pruned = reg.GetCounter("engine_partitions_pruned_total");
  obs::Counter& lock_wait =
      reg.GetCounter("engine_lock_wait_micros_total");
  obs::Counter& select_micros =
      reg.GetCounter("engine_select_micros_total");
  obs::Counter& reconstruct_micros =
      reg.GetCounter("engine_reconstruct_micros_total");
  obs::Counter& prepare_micros =
      reg.GetCounter("engine_prepare_micros_total");
  obs::Counter& merge_micros = reg.GetCounter("engine_merge_micros_total");
  obs::Counter& encoded = reg.GetCounter("engine_encoded_subqueries_total");
  obs::Counter& decompress =
      reg.GetCounter("engine_crack_decompress_total");
  obs::Histogram& group_micros = reg.GetHistogram("engine_group_micros");
};

EngineMetrics& Metrics() {
  static EngineMetrics* metrics = new EngineMetrics();
  return *metrics;
}

/// Pending registry increments drain every this-many batches. Large
/// enough that the drain's atomic adds amortize to noise, small enough
/// that `system.metrics` under steady traffic lags by well under a
/// second.
constexpr uint64_t kMetricsFlushBatches = 64;

/// Sampling mask for the group-latency histogram: the groups of one
/// batch in 64 pay the clock read and the histogram update. The
/// distribution shape and mean survive uniform sampling; the exact
/// population count lives in engine_partition_groups_total.
constexpr uint64_t kGroupSampleMask = 63;

/// Merged result handle: per-shard materialized projection columns plus
/// prefix sums for ordinal addressing. Owns every value it hands out, so
/// it outlives the partition locks (which ExecuteShards released before
/// this handle was built).
class ShardedHandle : public SelectionHandle {
 public:
  ShardedHandle(std::vector<std::string> projections,
                std::vector<std::vector<std::vector<Value>>> shard_columns,
                std::vector<size_t> shard_rows)
      : projections_(std::move(projections)),
        shard_columns_(std::move(shard_columns)) {
    prefix_.reserve(shard_rows.size() + 1);
    prefix_.push_back(0);
    for (size_t rows : shard_rows) prefix_.push_back(prefix_.back() + rows);
  }

  size_t NumRows() override { return prefix_.back(); }

  std::vector<Value> Fetch(const std::string& attr) override {
    const size_t slot = ProjectionSlot(attr);
    std::vector<Value> merged;
    merged.reserve(NumRows());
    for (const std::vector<std::vector<Value>>& shard : shard_columns_) {
      merged.insert(merged.end(), shard[slot].begin(), shard[slot].end());
    }
    return merged;
  }

  std::vector<Value> FetchAt(const std::string& attr,
                             std::span<const uint32_t> ordinals) override {
    const size_t slot = ProjectionSlot(attr);
    std::vector<Value> out;
    out.reserve(ordinals.size());
    for (uint32_t ord : ordinals) {
      const size_t shard =
          static_cast<size_t>(std::upper_bound(prefix_.begin(), prefix_.end(),
                                               static_cast<size_t>(ord)) -
                              prefix_.begin()) -
          1;
      out.push_back(shard_columns_[shard][slot][ord - prefix_[shard]]);
    }
    return out;
  }

  ConsumeOutcome Consume(const ConsumeSpec& consume,
                         std::span<const std::string> projections) override {
    // Fast paths over the per-shard materializations: fold or visit them
    // shard by shard instead of concatenating into one merged column (the
    // default Consume would go through Fetch, which concatenates).
    ConsumeOutcome out;
    if (consume.kind == ConsumeKind::kAggregate) {
      const size_t slot = ProjectionSlot(consume.attr);
      out.count = prefix_.back();
      for (const std::vector<std::vector<Value>>& shard : shard_columns_) {
        FoldSpan(consume.op, shard[slot], &out.aggregate,
                 &out.aggregate_valid);
      }
      return out;
    }
    if (consume.kind == ConsumeKind::kGroupBy) {
      const size_t gslot = ProjectionSlot(consume.group_attr);
      std::vector<size_t> agg_slots(consume.group_aggs.size(), 0);
      for (size_t a = 0; a < consume.group_aggs.size(); ++a) {
        if (consume.group_aggs[a].op == AggregateOp::kCount) continue;
        agg_slots[a] = ProjectionSlot(consume.group_aggs[a].attr);
      }
      GroupAccumulator acc(consume);
      std::vector<const Value*> columns(consume.group_aggs.size(), nullptr);
      for (const std::vector<std::vector<Value>>& shard : shard_columns_) {
        for (size_t a = 0; a < consume.group_aggs.size(); ++a) {
          columns[a] = consume.group_aggs[a].op == AggregateOp::kCount
                           ? nullptr
                           : shard[agg_slots[a]].data();
        }
        acc.AddChunk(shard[gslot].data(), nullptr, shard[gslot].size(),
                     columns);
      }
      out.count = prefix_.back();
      out.groups = acc.Take();
      return out;
    }
    if (consume.kind == ConsumeKind::kForEach) {
      out.count = prefix_.back();
      if (projections.empty()) return out;
      std::vector<size_t> slots;
      slots.reserve(projections.size());
      for (const std::string& attr : projections) {
        slots.push_back(ProjectionSlot(attr));
      }
      std::vector<Value> row(projections.size());
      for (const std::vector<std::vector<Value>>& shard : shard_columns_) {
        const size_t rows = shard[slots[0]].size();
        for (size_t r = 0; r < rows; ++r) {
          for (size_t c = 0; c < slots.size(); ++c) {
            row[c] = shard[slots[c]][r];
          }
          consume.visitor(row);
        }
      }
      return out;
    }
    return SelectionHandle::Consume(consume, projections);
  }

 private:
  size_t ProjectionSlot(const std::string& attr) const {
    for (size_t i = 0; i < projections_.size(); ++i) {
      if (projections_[i] == attr) return i;
    }
    // The projections declaration is binding for sharded execution: only
    // declared attributes were materialized inside the partition locks.
    Die("fetch of undeclared projection", attr);
  }

  std::vector<std::string> projections_;
  // shard_columns_[shard][projection_slot] -> values
  std::vector<std::vector<std::vector<Value>>> shard_columns_;
  std::vector<size_t> prefix_;
};

/// True when a sub-query can be answered in a compressed partition's
/// encoded domain, without touching (or building) any cracked structure:
/// scalar consumption (Count, or an Aggregate other than COUNT — plain
/// COUNT arrives as ConsumeKind::kCount), at most one selection, and no
/// tombstones (the encoded scans are tombstone-blind; Relation::Compress
/// enforces the same invariant, so this check is defensive).
bool EncodedServable(const Relation& part, const QuerySpec& spec,
                     const ConsumeSpec* consume) {
  if (consume == nullptr) return false;
  if (consume->kind == ConsumeKind::kAggregate) {
    if (consume->op == AggregateOp::kCount) return false;
  } else if (consume->kind != ConsumeKind::kCount) {
    return false;
  }
  return spec.selections.size() <= 1 && part.num_deleted() == 0;
}

/// Answers one encoded-servable sub-query straight off the partition's
/// current layout. Individual columns may still be raw (ChooseCodec keeps
/// incompressible ones raw): raw columns go through the regular dispatched
/// kernels over their value vectors, encoded ones through the codec's
/// encoded-domain kernels. Either way the partition's layout is unchanged
/// and the fold order matches the raw path position-for-position, so sums
/// (mod 2^64) and min/max land bit-identical to the decompressed answer.
void ServeEncoded(const Relation& part, const QuerySpec& spec,
                  const ConsumeSpec& consume, size_t* num_rows,
                  Value* aggregate, bool* aggregate_valid) {
  const QuerySpec::Selection* sel =
      spec.selections.empty() ? nullptr : &spec.selections[0];
  const Column* sel_col = sel == nullptr ? nullptr : &part.column(sel->attr);
  if (consume.kind == ConsumeKind::kCount) {
    if (sel == nullptr) {
      *num_rows = part.num_rows();
    } else if (sel_col->compressed()) {
      *num_rows = EncodedCount(*sel_col->encoded(), sel->pred);
    } else {
      *num_rows = kernels::CountRange(sel_col->values().data(),
                                      sel_col->size(), sel->pred);
    }
    return;
  }
  const Column& agg = part.column(consume.attr);
  const kernels::FoldOp op = ToFoldOp(consume.op);
  if (sel == nullptr) {
    *num_rows = part.num_rows();
    if (agg.compressed()) {
      EncodedFold(*agg.encoded(), op, aggregate, aggregate_valid);
    } else {
      kernels::FoldSpan(op, agg.values().data(), agg.size(), aggregate,
                        aggregate_valid);
    }
    return;
  }
  if (sel->attr == consume.attr && agg.compressed()) {
    // Filter and fold in one encoded pass over the same column.
    *num_rows = EncodedFoldFiltered(*agg.encoded(), sel->pred, op, aggregate,
                                    aggregate_valid);
    return;
  }
  // Two-column (or raw-selection) shape: matching positions off the
  // selection column, then fold the aggregate column at those positions.
  std::vector<Key> keys;
  if (sel_col->compressed()) {
    EncodedSelect(*sel_col->encoded(), sel->pred, 0, &keys);
  } else {
    kernels::SelectRange(sel_col->values().data(), sel_col->size(), sel->pred,
                         0, &keys);
  }
  *num_rows = keys.size();
  if (keys.empty()) return;
  if (agg.compressed()) {
    EncodedGatherFold(*agg.encoded(), keys, op, aggregate, aggregate_valid);
  } else {
    kernels::FoldGather(op, agg.values().data(), keys.data(), keys.size(),
                        aggregate, aggregate_valid);
  }
}

}  // namespace

ShardedEngine::ShardedEngine(const PartitionedRelation& relation,
                             EngineFactory factory, ThreadPool* pool)
    : relation_(&relation), factory_(std::move(factory)), pool_(pool) {
  if (!factory_) Die("null engine factory", relation.name());
  engines_.reserve(relation.num_partitions());
  for (size_t i = 0; i < relation.num_partitions(); ++i) {
    engines_.push_back(factory_(relation.partition(i)));
    if (engines_.back() == nullptr) {
      Die("factory returned null", relation.name());
    }
  }
  RefreshPartitionCounters();
}

ShardedEngine::~ShardedEngine() { FlushMetrics(); }

void ShardedEngine::FlushMetrics() const {
  std::lock_guard<std::mutex> lock(cost_mu_);
  FlushMetricsLocked();
}

void ShardedEngine::FlushMetricsLocked() const {
  if (!pending_.dirty) return;
  // AddAlways: these increments were gathered while metrics were enabled;
  // a toggle since then must not drop them.
  EngineMetrics& m = Metrics();
  m.batches.AddAlways(static_cast<double>(pending_.batches));
  m.subqueries.AddAlways(static_cast<double>(pending_.subqueries));
  m.groups.AddAlways(static_cast<double>(pending_.groups));
  m.pruned.AddAlways(static_cast<double>(pending_.pruned));
  m.select_micros.AddAlways(pending_.select_micros);
  m.reconstruct_micros.AddAlways(pending_.reconstruct_micros);
  m.prepare_micros.AddAlways(pending_.prepare_micros);
  m.merge_micros.AddAlways(pending_.merge_micros);
  for (size_t p = 0;
       p < pending_.per_partition.size() && p < partition_counters_.size();
       ++p) {
    if (pending_.per_partition[p] > 0) {
      partition_counters_[p]->AddAlways(
          static_cast<double>(pending_.per_partition[p]));
    }
  }
  pending_ = PendingMetrics{};
}

void ShardedEngine::RefreshPartitionCounters() {
  partition_counters_.clear();
  partition_counters_.reserve(engines_.size());
  const std::string family =
      obs::WithLabel("engine_partition_subqueries_total", "table",
                     relation_->name());
  for (size_t i = 0; i < engines_.size(); ++i) {
    partition_counters_.push_back(&obs::MetricsRegistry::Global().GetCounter(
        obs::WithLabel(family, "partition", static_cast<int64_t>(i))));
  }
}

std::string ShardedEngine::name() const {
  return "sharded<" + engines_[0]->name() + ">";
}

std::vector<size_t> ShardedEngine::TargetPartitions(
    const QuerySpec& spec) const {
  const size_t n = engines_.size();
  const std::string& organizing = relation_->spec().column;
  std::vector<size_t> targets;
  targets.reserve(n);

  // Disjunctions can only prune when *every* disjunct is on the organizing
  // attribute (any other attribute may qualify rows anywhere).
  bool disjunctive_prunable = spec.disjunctive && !spec.selections.empty();
  if (disjunctive_prunable) {
    for (const QuerySpec::Selection& sel : spec.selections) {
      if (sel.attr != organizing) {
        disjunctive_prunable = false;
        break;
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    bool keep = true;
    if (!spec.disjunctive) {
      for (const QuerySpec::Selection& sel : spec.selections) {
        if (sel.attr == organizing && !relation_->MayContain(i, sel.pred)) {
          keep = false;
          break;
        }
      }
    } else if (disjunctive_prunable) {
      keep = false;
      for (const QuerySpec::Selection& sel : spec.selections) {
        if (relation_->MayContain(i, sel.pred)) {
          keep = true;
          break;
        }
      }
    }
    if (keep) targets.push_back(i);
  }
  return targets;
}

size_t ShardedEngine::HomePartition(const QuerySpec& spec) const {
  // Separate gate acquisition from the later ExecuteBatch one: affinity is
  // a hint, staleness across a repartition in between is harmless.
  RwGate::SharedGuard map_guard(relation_->map_gate(),
                                pool_ != nullptr && pool_->InWorkerThread());
  const std::vector<size_t> targets = TargetPartitions(spec);
  return targets.empty() ? 0 : targets.front();
}

void ShardedEngine::SpliceEngines(size_t first, size_t removed,
                                  std::vector<std::unique_ptr<Engine>> added) {
  if (removed == 0 || first + removed > engines_.size() || added.empty()) {
    Die("engine splice out of bounds", relation_->name());
  }
  // Partition indexes are about to shift: drain the per-partition pending
  // tallies against the *old* keying before the counter family is rebuilt.
  FlushMetrics();
  const auto begin = static_cast<std::ptrdiff_t>(first);
  const auto end = static_cast<std::ptrdiff_t>(first + removed);
  // The replaced engines are destroyed here: the caller holds the map gate
  // exclusively, so no query can still reference them.
  engines_.erase(engines_.begin() + begin, engines_.begin() + end);
  engines_.insert(engines_.begin() + begin,
                  std::make_move_iterator(added.begin()),
                  std::make_move_iterator(added.end()));
  // Partition indexes shifted: re-key the per-partition counter family.
  // Safe here — the exclusively-held map gate excludes every run_group.
  RefreshPartitionCounters();
}

void ShardedEngine::ResetPartitionEngine(size_t p) {
  if (p >= engines_.size()) {
    Die("engine reset out of bounds", relation_->name());
  }
  // Element replacement only — the vector itself is stable, so groups
  // running on other partitions (map gate held shared by everyone) are
  // unaffected. The caller's exclusive hold of partition p's lock excludes
  // every reader of this slot.
  engines_[p] = factory_(relation_->partition(p));
  if (engines_[p] == nullptr) Die("factory returned null", relation_->name());
}

ShardedEngine::BatchOutput ShardedEngine::ExecuteBatch(
    std::span<const QuerySpec> specs, std::span<const ConsumeSpec> consumes,
    std::span<obs::QueryTrace* const> traces) {
  // The partition map is stable for the whole batch: shared hold of the
  // gate spans grouping, fan-out, and the cost roll-up. Pool workers
  // (async queries' own tasks) enter urgently so they can never deadlock
  // behind a waiting repartition swap — see RwGate.
  RwGate::SharedGuard map_guard(relation_->map_gate(),
                                pool_ != nullptr && pool_->InWorkerThread());
  // A sub-query is one (spec, target partition) pair; `slot` is the
  // partition's position within that spec's (partition-ordered) target
  // list, i.e. where the materialization lands in results[spec].
  struct SubQuery {
    size_t spec_index;
    size_t slot;
  };
  std::vector<std::vector<ShardResult>> results(specs.size());
  std::vector<std::vector<SubQuery>> groups(engines_.size());
  size_t total_subqueries = 0;
  for (size_t s = 0; s < specs.size(); ++s) {
    const std::vector<size_t> targets = TargetPartitions(specs[s]);
    results[s].resize(targets.size());
    total_subqueries += targets.size();
    for (size_t t = 0; t < targets.size(); ++t) {
      groups[targets[t]].push_back({s, t});
    }
  }
  std::vector<size_t> active;  // partitions with at least one sub-query
  active.reserve(groups.size());
  for (size_t p = 0; p < groups.size(); ++p) {
    if (!groups[p].empty()) active.push_back(p);
  }
  // Group-latency sampling is decided once per batch (one relaxed
  // increment), not per group: 1 in 64 batches observes all of its
  // groups into engine_group_micros.
  const bool sample_groups =
      obs::MetricsEnabled() &&
      (group_seq_.fetch_add(1, std::memory_order_relaxed) &
       kGroupSampleMask) == 0;

  // Fan-out timestamps for traced specs: each partition task's queue_wait
  // span starts here (for inline execution the wait is ~0 by design).
  auto trace_for = [&traces](size_t s) -> obs::QueryTrace* {
    return traces.empty() ? nullptr : traces[s];
  };
  std::vector<double> dispatched(traces.empty() ? 0 : specs.size(), 0.0);
  for (size_t s = 0; s < dispatched.size(); ++s) {
    if (obs::QueryTrace* tr = trace_for(s)) dispatched[s] = tr->NowMicros();
  }

  auto run_group = [&](size_t a) {
    const size_t p = active[a];
    Timer group_timer;
    // Open one partition span per traced spec in this group before the
    // lock: it parents the queue_wait / lock_wait / kernel child spans
    // and is closed (duration re-stamped) when the group finishes.
    struct SubTrace {
      obs::QueryTrace* trace = nullptr;
      uint32_t span = 0;
      double span_start = 0.0;  // fan-out time: the span covers the wait
      double task_start = 0.0;  // when the affine task actually began
    };
    std::vector<SubTrace> sub_traces;
    if (!traces.empty()) {
      sub_traces.resize(groups[p].size());
      for (size_t i = 0; i < groups[p].size(); ++i) {
        obs::QueryTrace* tr = trace_for(groups[p][i].spec_index);
        if (tr == nullptr) continue;
        const double now = tr->NowMicros();
        // The partition span opens at fan-out, not at task start, so the
        // queue_wait child nests strictly inside it — span trees keep the
        // parent-covers-children invariant tests lean on.
        const double dispatch = dispatched[groups[p][i].spec_index];
        const uint32_t span =
            tr->AddSpan(obs::QueryTrace::kRootSpan, static_cast<int32_t>(p),
                        "partition", dispatch, 0.0);
        tr->AddSpan(span, static_cast<int32_t>(p), "queue_wait", dispatch,
                    now - dispatch);
        sub_traces[i] = SubTrace{tr, span, dispatch, now};
      }
    }
    // One exclusive acquisition serves the whole group: the sub-queries
    // crack the partition's auxiliary structures back to back (batch
    // order, so state evolution matches the one-by-one loop), and every
    // declared projection is materialized — or, for scalar consumption,
    // folded into a partial — before the lock is released.
    // Uncontended acquisitions (the overwhelming case) pay zero clock
    // reads: only an actual wait is timed and charged.
    std::unique_lock<std::shared_mutex> lock(relation_->partition_mutex(p),
                                             std::try_to_lock);
    double lock_elapsed = 0.0;
    if (!lock.owns_lock()) {
      Timer lock_timer;
      lock.lock();
      lock_elapsed = lock_timer.ElapsedMicros();
      if (obs::MetricsEnabled()) Metrics().lock_wait.Add(lock_elapsed);
    }
    for (const SubTrace& st : sub_traces) {
      if (st.trace != nullptr) {
        st.trace->AddSpan(st.span, static_cast<int32_t>(p), "lock_wait",
                          st.task_start, lock_elapsed);
      }
    }
    // The engine reference is resolved under the lock: the compression
    // layer stamps fresh partition engines (ResetPartitionEngine) under
    // this same lock held exclusively.
    Engine& child = *engines_[p];
    const Relation& part = relation_->partition(p);
    for (size_t i = 0; i < groups[p].size(); ++i) {
      const SubQuery& sub = groups[p][i];
      const QuerySpec& spec = specs[sub.spec_index];
      const ConsumeSpec* consume =
          consumes.empty() ? nullptr : &consumes[sub.spec_index];
      const ConsumeKind kind =
          consume == nullptr ? ConsumeKind::kMaterialize : consume->kind;
      ShardResult& shard = results[sub.spec_index][sub.slot];
      obs::QueryTrace* tr =
          sub_traces.empty() ? nullptr : sub_traces[i].trace;
      const uint32_t part_span = tr == nullptr ? 0 : sub_traces[i].span;

      if (part.compressed()) {
        if (EncodedServable(part, spec, consume)) {
          // Scalar sub-query over a compressed partition: answer it in
          // the encoded domain. No decompression, and no cracked
          // structure is built or advanced — cold partitions stay cold.
          const double t0 = tr == nullptr ? 0.0 : tr->NowMicros();
          Timer encoded_timer;
          ServeEncoded(part, spec, *consume, &shard.num_rows,
                       &shard.aggregate, &shard.aggregate_valid);
          shard.cost.select_micros = encoded_timer.ElapsedMicros();
          encoded_queries_.fetch_add(1, std::memory_order_relaxed);
          Metrics().encoded.Add();
          if (tr != nullptr) {
            tr->AddSpan(part_span, static_cast<int32_t>(p), "encoded_fold",
                        t0, shard.cost.select_micros);
          }
          continue;
        }
        // Crack-on-touch: the first sub-query the encoded domain cannot
        // serve materializes this partition (only) back to raw, then
        // proceeds through its engine as usual. The engine stayed valid
        // across the compressed phase — it was stamped fresh at compress
        // time and no write has landed since (writes decompress first).
        const double t0 = tr == nullptr ? 0.0 : tr->NowMicros();
        Timer decompress_timer;
        part.Decompress();
        crack_decompressions_.fetch_add(1, std::memory_order_relaxed);
        Metrics().decompress.Add();
        if (tr != nullptr) {
          tr->AddSpan(part_span, static_cast<int32_t>(p), "decompress", t0,
                      decompress_timer.ElapsedMicros());
        }
      }

      const CostBreakdown before = child.cost();
      const double select_t0 = tr == nullptr ? 0.0 : tr->NowMicros();
      Timer select_timer;
      std::unique_ptr<SelectionHandle> handle = child.Select(spec);
      const double select_elapsed = select_timer.ElapsedMicros();
      if (tr != nullptr) {
        // "select[<engine>]": the cracking/scan kernel time, named by the
        // per-partition engine (table entry) that served it.
        tr->AddSpan(part_span, static_cast<int32_t>(p),
                    "select[" + child.name() + "]", select_t0,
                    select_elapsed);
      }

      // Charge the child's own attribution where it keeps one (prepare);
      // select/reconstruct use our wall timers so engines whose Select
      // does lazy work in Fetch are still accounted consistently.
      const double prepare =
          child.cost().prepare_micros - before.prepare_micros;
      shard.cost.prepare_micros = prepare;
      shard.cost.select_micros = select_elapsed - prepare;

      switch (kind) {
        case ConsumeKind::kCount:
          // The pushdown at its purest: the partition contributes one
          // integer. No attribute is fetched, no reconstruction happens.
          shard.num_rows = handle->NumRows();
          break;
        case ConsumeKind::kAggregate:
        case ConsumeKind::kGroupBy: {
          // Partition-local fold under the partition's own lock; the
          // merge will combine scalars (kAggregate) or partial hash
          // tables (kGroupBy). Either fold is selection-side work
          // (reconstruct stays 0 — no tuple reaches the caller).
          const double t0 = tr == nullptr ? 0.0 : tr->NowMicros();
          Timer fold_timer;
          ConsumeOutcome out =
              handle->Consume(consumes[sub.spec_index], spec.projections);
          shard.num_rows = out.count;
          shard.aggregate = out.aggregate;
          shard.aggregate_valid = out.aggregate_valid;
          shard.groups = std::move(out.groups);
          const double fold_elapsed = fold_timer.ElapsedMicros();
          shard.cost.select_micros += fold_elapsed;
          if (tr != nullptr) {
            tr->AddSpan(part_span, static_cast<int32_t>(p), "fold", t0,
                        fold_elapsed);
          }
          break;
        }
        case ConsumeKind::kMaterialize:
        case ConsumeKind::kForEach: {
          // Both materialize per partition inside the lock (the sharded
          // lifetime contract); they differ at merge time — ForEach
          // visits the per-partition columns instead of concatenating.
          const double t0 = tr == nullptr ? 0.0 : tr->NowMicros();
          Timer fetch_timer;
          shard.columns.reserve(spec.projections.size());
          for (const std::string& attr : spec.projections) {
            shard.columns.push_back(handle->Fetch(attr));
          }
          shard.num_rows = handle->NumRows();
          shard.cost.reconstruct_micros = fetch_timer.ElapsedMicros();
          if (tr != nullptr) {
            tr->AddSpan(part_span, static_cast<int32_t>(p), "fetch", t0,
                        shard.cost.reconstruct_micros);
          }
          break;
        }
      }
    }
    // Feed the adaptive subsystem's sensor *outside* the partition's
    // exclusive lock — recording needs only the map gate (still held
    // shared by our caller), and the hot partition's critical section is
    // exactly what this subsystem exists to shorten.
    lock.unlock();
    for (const SubTrace& st : sub_traces) {
      if (st.trace != nullptr) {
        st.trace->SetDuration(st.span,
                              st.trace->NowMicros() - st.span_start);
      }
    }
    // One shared clock read serves both consumers of the group latency —
    // the sampled registry histogram and the adaptive sensor.
    if (sample_groups || histogram_ != nullptr) {
      const double group_elapsed = group_timer.ElapsedMicros();
      if (sample_groups) Metrics().group_micros.Observe(group_elapsed);
      if (histogram_ != nullptr) {
        histogram_->RecordAccess(p, groups[p].size(), group_elapsed);
      }
    }
    if (histogram_ != nullptr) {
      const std::string& organizing = relation_->spec().column;
      for (const SubQuery& sub : groups[p]) {
        for (const QuerySpec::Selection& sel :
             specs[sub.spec_index].selections) {
          if (sel.attr != organizing) continue;
          // Normalize to closed form; each boundary is the first value of
          // a would-be right slice. kMin/kMax edges carry no information.
          const RangePredicate& pred = sel.pred;
          if (pred.low != kMinValue &&
              !(pred.low == kMaxValue && !pred.low_inclusive)) {
            histogram_->RecordBoundary(
                p, pred.low_inclusive ? pred.low : pred.low + 1);
          }
          if (pred.high != kMaxValue) {
            histogram_->RecordBoundary(
                p, pred.high_inclusive ? pred.high + 1 : pred.high);
          }
        }
      }
    }
  };

  // Fan the partition groups out with the partition index as the affinity
  // key, so a partition's group lands on the worker whose cache already
  // holds its cracked structures. Inline when there is nothing to overlap
  // — or when *we* are running inside a pool worker (an async query's
  // task): blocking on the pool from a worker could deadlock it.
  if (pool_ != nullptr && active.size() > 1 && !pool_->InWorkerThread()) {
    std::vector<std::future<void>> futures;
    futures.reserve(active.size() - 1);
    for (size_t a = 1; a < active.size(); ++a) {
      futures.push_back(
          pool_->Submit(active[a], [&run_group, a] { run_group(a); }));
    }
    // The caller contributes a core (running the first group) instead of
    // idling on the join, as ParallelFor does. Every future is drained
    // before any exception propagates: queued groups reference this
    // frame. Keep only the first exception.
    std::exception_ptr first_error;
    try {
      run_group(0);
    } catch (...) {
      first_error = std::current_exception();
    }
    for (std::future<void>& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  } else {
    for (size_t a = 0; a < active.size(); ++a) run_group(a);
  }

  CostBreakdown sum;
  for (const std::vector<ShardResult>& spec_shards : results) {
    for (const ShardResult& shard : spec_shards) {
      sum.select_micros += shard.cost.select_micros;
      sum.reconstruct_micros += shard.cost.reconstruct_micros;
      sum.prepare_micros += shard.cost.prepare_micros;
    }
  }
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    cost_.select_micros += sum.select_micros;
    cost_.reconstruct_micros += sum.reconstruct_micros;
    cost_.prepare_micros += sum.prepare_micros;
    if (obs::MetricsEnabled()) {
      // Registry increments piggyback on this (already-held) lock as
      // plain adds; FlushMetricsLocked drains them in bulk.
      pending_.dirty = true;
      pending_.batches += 1;
      pending_.subqueries += total_subqueries;
      pending_.groups += active.size();
      pending_.pruned += specs.size() * engines_.size() - total_subqueries;
      pending_.select_micros += sum.select_micros;
      pending_.reconstruct_micros += sum.reconstruct_micros;
      pending_.prepare_micros += sum.prepare_micros;
      if (pending_.per_partition.size() != engines_.size()) {
        pending_.per_partition.assign(engines_.size(), 0);
      }
      for (size_t p : active) pending_.per_partition[p] += groups[p].size();
      if (pending_.batches >= kMetricsFlushBatches) FlushMetricsLocked();
    }
  }
  return BatchOutput{std::move(results), engines_.size()};
}

std::vector<ShardedEngine::ShardResult> ShardedEngine::ExecuteShards(
    const QuerySpec& spec) {
  return std::move(ExecuteBatch({&spec, 1}, {}).results.front());
}

std::unique_ptr<SelectionHandle> ShardedEngine::Select(const QuerySpec& spec) {
  std::vector<ShardResult> shards = ExecuteShards(spec);
  std::vector<std::vector<std::vector<Value>>> columns;
  std::vector<size_t> rows;
  columns.reserve(shards.size());
  rows.reserve(shards.size());
  for (ShardResult& shard : shards) {
    columns.push_back(std::move(shard.columns));
    rows.push_back(shard.num_rows);
  }
  return std::make_unique<ShardedHandle>(spec.projections, std::move(columns),
                                         std::move(rows));
}

QueryResult ShardedEngine::MergeShards(const QuerySpec& spec,
                                       std::vector<ShardResult> shards) {
  // Merge outside every partition lock: concatenate the per-shard
  // materializations per projection, in partition order.
  Timer merge_timer;
  QueryResult result;
  result.columns.resize(spec.projections.size());
  size_t total_rows = 0;
  for (const ShardResult& shard : shards) total_rows += shard.num_rows;
  for (size_t c = 0; c < spec.projections.size(); ++c) {
    result.columns[c].reserve(total_rows);
    for (const ShardResult& shard : shards) {
      result.columns[c].insert(result.columns[c].end(),
                               shard.columns[c].begin(),
                               shard.columns[c].end());
    }
  }
  result.num_rows = total_rows;
  {
    std::lock_guard<std::mutex> lock(cost_mu_);
    cost_.reconstruct_micros += merge_timer.ElapsedMicros();
  }
  return result;
}

ExecuteResult ShardedEngine::MergeExecute(const QuerySpec& spec,
                                          const ConsumeSpec& consume,
                                          std::vector<ShardResult> shards,
                                          obs::QueryTrace* trace,
                                          size_t num_partitions) {
  const double merge_t0 = trace == nullptr ? 0.0 : trace->NowMicros();
  ExecuteResult result;
  result.kind = consume.kind;
  result.partitions_touched = shards.size();
  result.partitions_pruned =
      num_partitions >= shards.size() ? num_partitions - shards.size() : 0;
  for (const ShardResult& shard : shards) {
    result.cost.select_micros += shard.cost.select_micros;
    result.cost.reconstruct_micros += shard.cost.reconstruct_micros;
    result.cost.prepare_micros += shard.cost.prepare_micros;
  }
  switch (consume.kind) {
    case ConsumeKind::kCount:
      for (const ShardResult& shard : shards) result.count += shard.num_rows;
      break;
    case ConsumeKind::kAggregate:
      // Scalar merge: partial sums add, partial mins/maxes fold — exactly
      // one FoldValue per partition, zero tuple data moved.
      for (const ShardResult& shard : shards) {
        result.count += shard.num_rows;
        if (shard.aggregate_valid) {
          FoldValue(consume.op, shard.aggregate, &result.aggregate,
                    &result.aggregate_valid);
        }
      }
      break;
    case ConsumeKind::kGroupBy: {
      // The two-level merge: combine the per-partition partial tables on
      // the calling thread, outside every lock, then finalize (sort by
      // group key, fill kCount columns). Like the scalar merge this is
      // selection-side work — no tuple reconstruction crosses the merge,
      // so reconstruct_micros stays exactly 0.
      Timer merge_timer;
      GroupAccumulator acc(consume);
      for (const ShardResult& shard : shards) {
        result.count += shard.num_rows;
        acc.Merge(shard.groups);
      }
      result.groups = FinalizeGrouped(consume, acc.Take());
      const double merge_elapsed = merge_timer.ElapsedMicros();
      result.cost.select_micros += merge_elapsed;
      {
        std::lock_guard<std::mutex> lock(cost_mu_);
        cost_.select_micros += merge_elapsed;
        if (obs::MetricsEnabled()) {
          // The grouped merge is select-side work in the cost model; keep
          // the registry's select total aligned with per-query costs.
          pending_.dirty = true;
          pending_.select_micros += merge_elapsed;
          pending_.merge_micros += merge_elapsed;
        }
      }
      break;
    }
    case ConsumeKind::kForEach: {
      // Stream the per-partition materializations through the visitor in
      // partition order, sequentially, on the calling thread, outside
      // every lock — the cross-partition concatenation never happens.
      Timer visit_timer;
      std::vector<Value> row(spec.projections.size());
      for (const ShardResult& shard : shards) {
        for (size_t r = 0; r < shard.num_rows; ++r) {
          for (size_t c = 0; c < shard.columns.size(); ++c) {
            row[c] = shard.columns[c][r];
          }
          consume.visitor(row);
        }
        result.count += shard.num_rows;
      }
      const double visit_elapsed = visit_timer.ElapsedMicros();
      result.cost.reconstruct_micros += visit_elapsed;
      {
        std::lock_guard<std::mutex> lock(cost_mu_);
        cost_.reconstruct_micros += visit_elapsed;
        if (obs::MetricsEnabled()) {
          pending_.dirty = true;
          pending_.reconstruct_micros += visit_elapsed;
          pending_.merge_micros += visit_elapsed;
        }
      }
      break;
    }
    case ConsumeKind::kMaterialize: {
      Timer merge_timer;
      result.rows = MergeShards(spec, std::move(shards));  // charges cost_
      result.count = result.rows.num_rows;
      const double merge_elapsed = merge_timer.ElapsedMicros();
      result.cost.reconstruct_micros += merge_elapsed;
      if (obs::MetricsEnabled()) {
        std::lock_guard<std::mutex> lock(cost_mu_);
        pending_.dirty = true;
        pending_.reconstruct_micros += merge_elapsed;
        pending_.merge_micros += merge_elapsed;
      }
      break;
    }
  }
  if (trace != nullptr) {
    trace->AddSpan(obs::QueryTrace::kRootSpan, /*partition=*/-1, "merge",
                   merge_t0, trace->NowMicros() - merge_t0);
  }
  return result;
}

ExecuteResult ShardedEngine::Execute(const QuerySpec& spec,
                                     const ConsumeSpec& consume) {
  return Execute(spec, consume, nullptr);
}

ExecuteResult ShardedEngine::Execute(const QuerySpec& spec,
                                     const ConsumeSpec& consume,
                                     obs::QueryTrace* trace) {
  obs::QueryTrace* const traces[1] = {trace};
  std::vector<ExecuteResult> results =
      ExecuteMany({&spec, 1}, {&consume, 1},
                  trace == nullptr ? std::span<obs::QueryTrace* const>{}
                                   : std::span<obs::QueryTrace* const>(
                                         traces, 1));
  return std::move(results.front());
}

std::vector<ExecuteResult> ShardedEngine::ExecuteMany(
    std::span<const QuerySpec> specs, std::span<const ConsumeSpec> consumes,
    std::span<obs::QueryTrace* const> traces) {
  BatchOutput batch = ExecuteBatch(specs, consumes, traces);
  static const ConsumeSpec kMaterializeAll = ConsumeSpec::Materialize();
  std::vector<ExecuteResult> results;
  results.reserve(specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    const ConsumeSpec& consume =
        consumes.empty() ? kMaterializeAll : consumes[s];
    results.push_back(MergeExecute(
        specs[s], consume, std::move(batch.results[s]),
        traces.empty() ? nullptr : traces[s], batch.num_partitions));
  }
  return results;
}

QueryResult ShardedEngine::Run(const QuerySpec& spec) {
  return std::move(Execute(spec, ConsumeSpec::Materialize()).rows);
}

std::vector<QueryResult> ShardedEngine::RunBatch(
    std::span<const QuerySpec> specs) {
  std::vector<ExecuteResult> executed = ExecuteMany(specs, {});
  std::vector<QueryResult> results;
  results.reserve(executed.size());
  for (ExecuteResult& result : executed) {
    results.push_back(std::move(result.rows));
  }
  return results;
}

CostBreakdown ShardedEngine::CostSnapshot() const {
  std::lock_guard<std::mutex> lock(cost_mu_);
  FlushMetricsLocked();
  return cost_;
}

}  // namespace crackdb
