#ifndef CRACKDB_ENGINE_SHARDED_ENGINE_H_
#define CRACKDB_ENGINE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "adaptive/workload_histogram.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/engine_factory.h"
#include "engine/query.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/partitioner.h"

namespace crackdb {

/// Partitioned execution over any engine kind: owns one per-partition
/// engine instance (stamped out by an EngineFactory) and evaluates a
/// QuerySpec by fanning partition-local sub-queries out across a
/// ThreadPool, then merging the per-partition results and summing the
/// per-partition CostBreakdowns.
///
/// All execution — single query or batch, pooled or inline — funnels
/// through one path, ExecuteBatch: the sub-queries of every spec in a
/// batch are grouped *by partition*, and each partition's group runs as
/// one task submitted with the partition index as its ThreadPool affinity
/// key, under a single acquisition of that partition's lock. A batch of k
/// selective queries on one partition therefore costs one lock round-trip
/// and one scheduling hop instead of k, and the partition's cracked
/// structures stay on their home worker across batches.
///
/// Concurrency contract — this is the one engine that IS safe to call from
/// many client threads at once:
///  - cracking engines reorganize their auxiliary structures *during
///    reads*, so every partition sub-query runs under that partition's
///    exclusive lock (PartitionedRelation::partition_mutex); two clients
///    touching disjoint partitions proceed in parallel, two clients
///    cracking the same partition serialize;
///  - all projected attributes are materialized inside the lock (the spec's
///    `projections` declaration is binding, as for the chunk-wise engines),
///    so the returned SelectionHandle owns plain value vectors and stays
///    valid however long the caller holds it — result *merging* happens
///    outside every lock;
///  - writers (the Database facade's insert/delete paths) take the same
///    per-partition locks exclusively, statistics snapshots take them
///    shared. See docs/ARCHITECTURE.md, "Locking discipline";
///  - the partition map itself may be reorganized online (adaptive
///    hot-split/cold-merge): every execution path holds the relation's
///    map_gate() shared while it resolves partition indexes, and the
///    Repartitioner swaps new shards in under the gate held exclusively.
///
/// Range sharding on the organizing attribute additionally prunes
/// partitions whose slice cannot intersect a conjunctive selection on that
/// attribute (hash sharding prunes point predicates), so a converged
/// sharded cracker answers a selective query by locking a single
/// partition.
class ShardedEngine : public Engine {
 public:
  /// `pool` may be null: partition sub-queries then run sequentially on
  /// the calling thread (still under the per-partition locks, so
  /// multi-client safety is unchanged; this is the throughput-serving
  /// configuration where client threads themselves are the parallelism).
  ShardedEngine(const PartitionedRelation& relation, EngineFactory factory,
                ThreadPool* pool = nullptr);

  /// Drains any pending (batched) registry increments — see FlushMetrics.
  ~ShardedEngine() override;

  std::string name() const override;

  std::unique_ptr<SelectionHandle> Select(const QuerySpec& spec) override;
  QueryResult Run(const QuerySpec& spec) override;

  /// Consumption-mode execution with the pushdown below the partition
  /// merge: Count/Aggregate queries compute partial scalars inside each
  /// partition's lock and the merge combines scalars, GroupBy queries
  /// build partial hash-aggregation tables inside the locks and the merge
  /// combines partial tables — no tuple data crosses the merge at all,
  /// and the result's CostBreakdown attributes exactly zero
  /// reconstruction. ForEach materializes per partition
  /// inside the locks (the sharded lifetime contract) but skips the
  /// cross-partition concatenation: the visitor walks the per-partition
  /// columns in partition order, sequentially, on the calling thread.
  ExecuteResult Execute(const QuerySpec& spec,
                        const ConsumeSpec& consume) override;

  /// Traced variant: when `trace` is non-null the batch pipeline records
  /// a span per phase into it — per-partition affine task (queue wait,
  /// lock wait, kernel time) plus the shard merge — all parented on the
  /// trace's root span. Also stamps partitions_touched/pruned on the
  /// result. Null behaves exactly like the untraced overload.
  ExecuteResult Execute(const QuerySpec& spec, const ConsumeSpec& consume,
                        obs::QueryTrace* trace);

  /// Batch variant of Execute: one scheduled batch (one lock acquisition
  /// per target partition), one tagged result per spec. `consumes` is
  /// parallel to `specs`; empty means materialize everything. `traces`
  /// is parallel to `specs` when non-empty (null entries = untraced).
  std::vector<ExecuteResult> ExecuteMany(std::span<const QuerySpec> specs,
                                         std::span<const ConsumeSpec> consumes,
                                         std::span<obs::QueryTrace* const>
                                             traces = {});

  /// Executes many specs as one scheduled batch: sub-queries are grouped
  /// by partition and each partition's group runs under a single lock
  /// acquisition, in batch order. Returns one QueryResult per spec,
  /// row-for-row identical to running the same specs through Run one by
  /// one (each partition sees the same sub-query sequence either way).
  /// Thin wrapper over ExecuteMany with all-Materialize consumption.
  std::vector<QueryResult> RunBatch(std::span<const QuerySpec> specs);

  /// The partition a spec's first sub-query targets (0 when it targets
  /// none) — the affinity key async callers use to schedule the whole
  /// query next to its data.
  size_t HomePartition(const QuerySpec& spec) const;

  size_t num_partitions() const { return engines_.size(); }
  Engine& partition_engine(size_t i) { return *engines_[i]; }

  /// Partitions a conjunctive/disjunctive spec cannot rule out; exposed
  /// for tests and the bench reporting. Callers racing with adaptive
  /// repartitioning must hold the relation's map gate (ExecuteBatch and
  /// HomePartition do); quiescent callers need nothing.
  std::vector<size_t> TargetPartitions(const QuerySpec& spec) const;

  /// Thread-safe copy of the summed cost breakdown. (The inherited cost()
  /// reference is only safe to read when no query is in flight.) Also
  /// drains pending registry increments, so a snapshot point doubles as a
  /// metrics sync point.
  CostBreakdown CostSnapshot() const;

  /// Drains the engine's batched registry increments into the global
  /// MetricsRegistry. Per-batch counters accumulate as plain fields under
  /// cost_mu_ (a lock every batch already takes) and flush every
  /// kMetricsFlushBatches batches — plus here, in CostSnapshot, in
  /// SpliceEngines, and at destruction — so the registry lags traffic by
  /// at most a few dozen batches while the hot path pays ~zero atomics.
  /// Readers that compare registry values against per-query costs
  /// (system.metrics fills, the concurrency storm test) call this first.
  void FlushMetrics() const;

  /// Points the execution path at a workload histogram: each partition
  /// group then charges its accesses/latency (and the organizing
  /// predicate boundaries, the split-point candidates) to it. Null
  /// detaches. Set at registration time, before traffic.
  void SetHistogram(WorkloadHistogram* histogram) { histogram_ = histogram; }

  /// The per-partition engine constructor this engine was built with; the
  /// Repartitioner uses it to stamp out engines for fresh shards.
  const EngineFactory& factory() const { return factory_; }

  /// Online repartitioning splice, mirroring
  /// PartitionedRelation::SpliceRange: replaces the engines of partitions
  /// [first, first+removed) with `added` (built over the new shard
  /// relations). Caller holds the relation's map gate exclusively.
  void SpliceEngines(size_t first, size_t removed,
                     std::vector<std::unique_ptr<Engine>> added);

  /// Stamps a fresh engine for partition `p`, dropping every auxiliary
  /// structure (cracker copies, map sets) the old one accumulated. Used
  /// by the compression layer right before a partition's base columns are
  /// compressed — the partition must still be raw, since eager engine
  /// kinds (row) read the base columns at construction. Caller holds the
  /// map gate (shared suffices) and partition `p`'s lock exclusively.
  void ResetPartitionEngine(size_t p);

  /// Compression-path observability: sub-queries answered entirely in the
  /// encoded domain, and crack-on-touch decompressions triggered by
  /// sub-queries the encoded domain could not serve.
  uint64_t encoded_queries() const {
    return encoded_queries_.load(std::memory_order_relaxed);
  }
  uint64_t crack_decompressions() const {
    return crack_decompressions_.load(std::memory_order_relaxed);
  }

 private:
  struct ShardResult {
    std::vector<std::vector<Value>> columns;  // aligned with projections
    size_t num_rows = 0;
    /// Scalar consumption partials (kCount/kAggregate sub-queries).
    Value aggregate = 0;
    bool aggregate_valid = false;
    /// Grouped consumption partial (kGroupBy sub-queries): this
    /// partition's local hash-aggregation table, built under its lock; the
    /// merge combines partials on the caller thread.
    GroupedTable groups;
    /// This sub-query's cost attribution on its partition.
    CostBreakdown cost;
  };

  /// ExecuteBatch's return: per spec, one ShardResult per target
  /// partition in partition order, plus the partition count the batch
  /// ran against (gate-stable, so pruning stats don't race the
  /// repartitioner).
  struct BatchOutput {
    std::vector<std::vector<ShardResult>> results;
    size_t num_partitions = 0;
  };

  /// The one execution path. Groups the sub-queries of `specs` by target
  /// partition, runs each partition's group as one affine task under a
  /// single partition-lock acquisition (materializing every declared
  /// projection — or, for scalar consumption, folding partials — inside
  /// the lock), and sums the cost deltas into cost_. `consumes` is
  /// parallel to `specs` (empty = materialize everything), as is
  /// `traces` when non-empty (null entries = untraced). Falls
  /// back to inline execution without a pool, with a single target group,
  /// or when called from a pool worker (an async query's own task must
  /// not block on the pool).
  BatchOutput ExecuteBatch(std::span<const QuerySpec> specs,
                           std::span<const ConsumeSpec> consumes,
                           std::span<obs::QueryTrace* const> traces = {});

  /// Single-spec convenience over ExecuteBatch (materialize consumption).
  std::vector<ShardResult> ExecuteShards(const QuerySpec& spec);

  /// Concatenates a spec's per-partition materializations (outside every
  /// lock) and charges the merge to reconstruct cost.
  QueryResult MergeShards(const QuerySpec& spec,
                          std::vector<ShardResult> shards);

  /// Combines a spec's per-partition ShardResults per its consumption
  /// mode, outside every lock: scalar modes merge counts/aggregates (no
  /// tuple data moves), ForEach walks the per-partition columns through
  /// the visitor, Materialize defers to MergeShards. Sums the per-shard
  /// cost attributions into the result's cost, stamps
  /// partitions_touched/pruned from `num_partitions`, and (when `trace`
  /// is non-null) records the merge span.
  ExecuteResult MergeExecute(const QuerySpec& spec, const ConsumeSpec& consume,
                             std::vector<ShardResult> shards,
                             obs::QueryTrace* trace, size_t num_partitions);

  /// Rebuilds the per-partition registry counter family
  /// (`engine_partition_subqueries_total{table=...,partition=...}`) to
  /// match engines_.size(). Constructor, and SpliceEngines under the
  /// exclusively-held map gate (readers hold it shared).
  void RefreshPartitionCounters();

  /// Registry increments batched between flushes; guarded by cost_mu_.
  /// Mutable (with FlushMetricsLocked const) so const snapshot paths can
  /// drain it.
  struct PendingMetrics {
    bool dirty = false;  // anything below nonzero since the last flush
    uint64_t batches = 0;
    uint64_t subqueries = 0;
    uint64_t groups = 0;
    uint64_t pruned = 0;
    double select_micros = 0.0;
    double reconstruct_micros = 0.0;
    double prepare_micros = 0.0;
    double merge_micros = 0.0;
    /// Sub-queries served per partition since the last flush; sized to
    /// engines_.size() lazily (SpliceEngines flushes before indexes
    /// shift, so entries never survive a partition-map change).
    std::vector<uint64_t> per_partition;
  };

  /// FlushMetrics with cost_mu_ already held.
  void FlushMetricsLocked() const;

  const PartitionedRelation* relation_;
  EngineFactory factory_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<obs::Counter*> partition_counters_;
  ThreadPool* pool_;
  WorkloadHistogram* histogram_ = nullptr;
  mutable std::mutex cost_mu_;
  mutable PendingMetrics pending_;
  /// Batch sequence for the 1-in-64 sampling of the group-latency
  /// histogram (engine_group_micros); relaxed — ordering is irrelevant.
  std::atomic<uint64_t> group_seq_{0};
  std::atomic<uint64_t> encoded_queries_{0};
  std::atomic<uint64_t> crack_decompressions_{0};
};

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_SHARDED_ENGINE_H_
