#ifndef CRACKDB_ENGINE_SHARDED_ENGINE_H_
#define CRACKDB_ENGINE_SHARDED_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/engine_factory.h"
#include "storage/partitioner.h"

namespace crackdb {

/// Partitioned execution over any engine kind: owns one per-partition
/// engine instance (stamped out by an EngineFactory) and evaluates a
/// QuerySpec by fanning partition-local sub-queries out across a
/// ThreadPool, then merging the per-partition results and summing the
/// per-partition CostBreakdowns.
///
/// Concurrency contract — this is the one engine that IS safe to call from
/// many client threads at once:
///  - cracking engines reorganize their auxiliary structures *during
///    reads*, so every partition sub-query runs under that partition's
///    exclusive lock (PartitionedRelation::partition_mutex); two clients
///    touching disjoint partitions proceed in parallel, two clients
///    cracking the same partition serialize;
///  - all projected attributes are materialized inside the lock (the spec's
///    `projections` declaration is binding, as for the chunk-wise engines),
///    so the returned SelectionHandle owns plain value vectors and stays
///    valid however long the caller holds it — result *merging* happens
///    outside every lock;
///  - writers (the Database facade's insert/delete paths) take the same
///    per-partition locks exclusively, statistics snapshots take them
///    shared. See docs/ARCHITECTURE.md, "Locking discipline".
///
/// Range sharding on the organizing attribute additionally prunes
/// partitions whose slice cannot intersect a conjunctive selection on that
/// attribute (hash sharding prunes point predicates), so a converged
/// sharded cracker answers a selective query by locking a single
/// partition.
class ShardedEngine : public Engine {
 public:
  /// `pool` may be null: partition sub-queries then run sequentially on
  /// the calling thread (still under the per-partition locks, so
  /// multi-client safety is unchanged; this is the throughput-serving
  /// configuration where client threads themselves are the parallelism).
  ShardedEngine(const PartitionedRelation& relation, EngineFactory factory,
                ThreadPool* pool = nullptr);

  std::string name() const override;

  std::unique_ptr<SelectionHandle> Select(const QuerySpec& spec) override;
  QueryResult Run(const QuerySpec& spec) override;

  size_t num_partitions() const { return engines_.size(); }
  Engine& partition_engine(size_t i) { return *engines_[i]; }

  /// Partitions a conjunctive/disjunctive spec cannot rule out; exposed
  /// for tests and the bench reporting.
  std::vector<size_t> TargetPartitions(const QuerySpec& spec) const;

  /// Thread-safe copy of the summed cost breakdown. (The inherited cost()
  /// reference is only safe to read when no query is in flight.)
  CostBreakdown CostSnapshot() const;

 private:
  struct ShardResult {
    std::vector<std::vector<Value>> columns;  // aligned with projections
    size_t num_rows = 0;
  };

  /// Runs the per-partition sub-queries (locked, materialized) and sums
  /// their cost deltas into cost_. Returns one ShardResult per target
  /// partition.
  std::vector<ShardResult> ExecuteShards(const QuerySpec& spec);

  const PartitionedRelation* relation_;
  std::vector<std::unique_ptr<Engine>> engines_;
  ThreadPool* pool_;
  mutable std::mutex cost_mu_;
};

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_SHARDED_ENGINE_H_
