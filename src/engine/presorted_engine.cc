#include "engine/presorted_engine.h"

#include <algorithm>
#include <numeric>

#include "common/bitvector.h"
#include "common/timer.h"

namespace crackdb {

namespace {

/// Contiguous [begin, end) row range of `sorted` whose values satisfy
/// `pred` (binary search).
PositionRange SortedRange(const std::vector<Value>& sorted,
                          const RangePredicate& pred) {
  auto lower = std::partition_point(
      sorted.begin(), sorted.end(), [&](Value v) {
        return v < pred.low || (v == pred.low && !pred.low_inclusive);
      });
  auto upper = std::partition_point(
      lower, sorted.end(), [&](Value v) {
        return v < pred.high || (v == pred.high && pred.high_inclusive);
      });
  return {static_cast<size_t>(lower - sorted.begin()),
          static_cast<size_t>(upper - sorted.begin())};
}

class PresortedHandle : public SelectionHandle {
 public:
  PresortedHandle(const Relation& relation,
                  const std::vector<std::vector<Value>>* columns,
                  std::vector<uint32_t> rows)
      : relation_(&relation), columns_(columns), rows_(std::move(rows)) {}

  /// Marks the qualifying rows as one contiguous range of the copy
  /// (single-predicate selections): fetches become zero-copy views.
  void SetContiguous(PositionRange range) {
    contiguous_ = true;
    range_ = range;
  }

  size_t NumRows() override { return rows_.size(); }

  std::span<const Value> FetchView(const std::string& attr,
                                   std::vector<Value>* storage) override {
    if (contiguous_) {
      const std::vector<Value>& column =
          (*columns_)[relation_->ColumnOrdinal(attr)];
      return {column.data() + range_.begin, range_.size()};
    }
    *storage = Fetch(attr);
    return {storage->data(), storage->size()};
  }

  std::vector<Value> Fetch(const std::string& attr) override {
    const std::vector<Value>& column =
        (*columns_)[relation_->ColumnOrdinal(attr)];
    std::vector<Value> out;
    out.reserve(rows_.size());
    // rows_ ascend within the copy's clustered range: focused access.
    for (uint32_t r : rows_) out.push_back(column[r]);
    return out;
  }

  std::vector<Value> FetchAt(const std::string& attr,
                             std::span<const uint32_t> ordinals) override {
    const std::vector<Value>& column =
        (*columns_)[relation_->ColumnOrdinal(attr)];
    std::vector<Value> out;
    out.reserve(ordinals.size());
    // Scattered, but confined to the clustered qualifying range — the
    // post-join advantage shared with sideways cracking (Figure 5(c)).
    for (uint32_t ord : ordinals) out.push_back(column[rows_[ord]]);
    return out;
  }

 private:
  const Relation* relation_;
  const std::vector<std::vector<Value>>* columns_;
  std::vector<uint32_t> rows_;
  bool contiguous_ = false;
  PositionRange range_{0, 0};
};

}  // namespace

PresortedEngine::SortedCopy& PresortedEngine::GetOrCreate(
    const std::string& attr) {
  auto it = copies_.find(attr);
  if (it != copies_.end()) {
    if (it->second.log_version == relation_->log_version()) {
      return it->second;
    }
    copies_.erase(it);  // stale under updates: full re-sort required
  }

  Timer prepare_timer;
  SortedCopy copy;
  copy.sorted_attr = attr;
  const Column& key_column = relation_->column(attr);
  std::vector<uint32_t> perm;
  perm.reserve(relation_->num_live_rows());
  for (size_t i = 0; i < relation_->num_rows(); ++i) {
    if (!relation_->IsDeleted(static_cast<Key>(i))) {
      perm.push_back(static_cast<uint32_t>(i));
    }
  }
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    return key_column[a] < key_column[b];
  });
  copy.columns.resize(relation_->num_columns());
  for (size_t c = 0; c < relation_->num_columns(); ++c) {
    const Column& source = relation_->column(c);
    copy.columns[c].reserve(perm.size());
    for (uint32_t r : perm) copy.columns[c].push_back(source[r]);
  }
  copy.log_version = relation_->log_version();
  it = copies_.emplace(attr, std::move(copy)).first;
  it->second.sorted_column =
      &it->second.columns[relation_->ColumnOrdinal(attr)];
  cost_.prepare_micros += prepare_timer.ElapsedMicros();
  return it->second;
}

void PresortedEngine::Prepare(const std::string& attr) { GetOrCreate(attr); }

std::unique_ptr<SelectionHandle> PresortedEngine::Select(
    const QuerySpec& spec) {
  if (spec.selections.empty()) {
    const size_t n = relation_->num_live_rows();
    std::vector<uint32_t> rows(n);
    std::iota(rows.begin(), rows.end(), 0u);
    // An arbitrary copy works; cluster on the first projection if none.
    const std::string& attr =
        spec.projections.empty() ? relation_->column_names()[0]
                                 : spec.projections[0];
    SortedCopy& copy = GetOrCreate(attr);
    auto handle = std::make_unique<PresortedHandle>(*relation_, &copy.columns,
                                                    std::move(rows));
    handle->SetContiguous({0, n});
    return handle;
  }

  const QuerySpec::Selection& primary = spec.selections[0];
  SortedCopy& copy = GetOrCreate(primary.attr);

  if (!spec.disjunctive) {
    const PositionRange range = SortedRange(*copy.sorted_column, primary.pred);
    std::vector<uint32_t> rows;
    rows.reserve(range.size());
    if (spec.selections.size() == 1) {
      for (size_t r = range.begin; r < range.end; ++r) {
        rows.push_back(static_cast<uint32_t>(r));
      }
      auto handle = std::make_unique<PresortedHandle>(*relation_,
                                                      &copy.columns,
                                                      std::move(rows));
      handle->SetContiguous(range);
      return handle;
    }
    {
      for (size_t r = range.begin; r < range.end; ++r) {
        bool ok = true;
        for (size_t s = 1; s < spec.selections.size() && ok; ++s) {
          const auto& col =
              copy.columns[relation_->ColumnOrdinal(spec.selections[s].attr)];
          ok = spec.selections[s].pred.Matches(col[r]);
        }
        if (ok) rows.push_back(static_cast<uint32_t>(r));
      }
    }
    return std::make_unique<PresortedHandle>(*relation_, &copy.columns,
                                             std::move(rows));
  }

  // Disjunction: the clustered range qualifies wholesale for the primary
  // predicate; the remaining predicates scan the copy outside it.
  const PositionRange range = SortedRange(*copy.sorted_column, primary.pred);
  const size_t n = copy.sorted_column->size();
  BitVector bv(n, false);
  for (size_t r = range.begin; r < range.end; ++r) bv.Set(r);
  for (size_t s = 1; s < spec.selections.size(); ++s) {
    const auto& col =
        copy.columns[relation_->ColumnOrdinal(spec.selections[s].attr)];
    const RangePredicate& pred = spec.selections[s].pred;
    for (size_t r = 0; r < n; ++r) {
      if (!bv.Get(r) && pred.Matches(col[r])) bv.Set(r);
    }
  }
  std::vector<uint32_t> rows;
  bv.AppendSetPositions(&rows, 0);
  return std::make_unique<PresortedHandle>(*relation_, &copy.columns,
                                           std::move(rows));
}

}  // namespace crackdb
