#include "engine/sideways_engine.h"

#include <limits>

#include "core/sideways.h"

namespace crackdb {

namespace {

class SidewaysHandle : public SelectionHandle {
 public:
  SidewaysHandle(MapSet& set, const RangePredicate& head_pred,
                 bool disjunctive, const std::string& head_attr)
      : head_attr_(head_attr), query_(set, head_pred, disjunctive) {}

  SidewaysQuery& query() { return query_; }

  size_t NumRows() override { return query_.NumQualifying(); }

  std::vector<Value> Fetch(const std::string& attr) override {
    if (attr == head_attr_) return query_.FetchHead();
    return query_.FetchTail(attr);
  }

  std::vector<Value> FetchAt(const std::string& attr,
                             std::span<const uint32_t> ordinals) override {
    if (attr == head_attr_) return query_.FetchHeadAt(ordinals);
    return query_.FetchTailAt(attr, ordinals);
  }

  // The scalar and grouped fold pushdowns (SelectionHandle::Consume) ride
  // these views: for single-head-predicate queries the group key and every
  // aggregate attribute are contiguous areas of aligned cracker maps, so a
  // GroupBy folds straight off the map pair with zero copies.
  std::span<const Value> FetchView(const std::string& attr,
                                   std::vector<Value>* storage) override {
    bool ok = false;
    const std::span<const Value> view = attr == head_attr_
                                            ? query_.HeadView(&ok)
                                            : query_.TailView(attr, &ok);
    if (ok) return view;
    *storage = Fetch(attr);
    return {storage->data(), storage->size()};
  }

 private:
  std::string head_attr_;
  SidewaysQuery query_;
};

}  // namespace

SidewaysEngine::SidewaysEngine(const Relation& relation,
                               size_t storage_budget_tuples)
    : relation_(&relation), storage_(storage_budget_tuples * 2) {}

MapSet& SidewaysEngine::GetOrCreateSet(const std::string& head_attr) {
  auto it = sets_.find(head_attr);
  if (it == sets_.end()) {
    it = sets_.emplace(head_attr, std::make_unique<MapSet>(*relation_,
                                                           head_attr))
             .first;
  }
  return *it->second;
}

bool SidewaysEngine::HasSet(const std::string& head_attr) const {
  return sets_.count(head_attr) != 0;
}

CrackerMap& SidewaysEngine::ObtainMap(MapSet& set,
                                      const std::string& tail_attr) {
  const auto key = std::make_pair(set.head_attr(), tail_attr);
  if (set.HasMap(tail_attr)) {
    CrackerMap& map = set.GetOrCreateMap(tail_attr);
    auto id_it = map_ids_.find(key);
    if (id_it != map_ids_.end()) {
      storage_.Pin(id_it->second);
      storage_.RecordAccess(id_it->second);
    }
    return map;
  }
  const size_t cost = 2 * set.snapshot_size();
  storage_.EnsureRoom(cost);
  CrackerMap& map = set.GetOrCreateMap(tail_attr);
  MapSet* set_ptr = &set;
  auto* ids = &map_ids_;
  const uint64_t id =
      storage_.Register(cost, [set_ptr, tail_attr, key, ids]() {
        set_ptr->DropMap(tail_attr);
        ids->erase(key);
      });
  map_ids_[key] = id;
  storage_.Pin(id);
  storage_.RecordAccess(id);
  return map;
}

size_t SidewaysEngine::ChooseHeadSelection(const QuerySpec& spec) {
  if (spec.selections.size() <= 1) return 0;
  size_t best = std::numeric_limits<size_t>::max();
  double best_est = 0;
  for (size_t i = 0; i < spec.selections.size(); ++i) {
    auto it = sets_.find(spec.selections[i].attr);
    if (it == sets_.end()) continue;  // no histogram knowledge yet
    const double est =
        it->second->EstimateMatches(spec.selections[i].pred).interpolated;
    const bool better = best == std::numeric_limits<size_t>::max() ||
                        (spec.disjunctive ? est > best_est : est < best_est);
    if (better) {
      best = i;
      best_est = est;
    }
  }
  // Cold start: no set has knowledge — trust the caller's most-selective-
  // first ordering (least selective = last for disjunctions).
  if (best == std::numeric_limits<size_t>::max()) {
    return spec.disjunctive ? spec.selections.size() - 1 : 0;
  }
  return best;
}

std::unique_ptr<SelectionHandle> SidewaysEngine::Select(
    const QuerySpec& spec) {
  storage_.UnpinAll();
  if (spec.selections.empty()) {
    // Selection-free projection: scan-equivalent via a full-domain
    // predicate over the first projection's set.
    const std::string attr =
        spec.projections.empty() ? relation_->column_names()[0]
                                 : spec.projections[0];
    MapSet& set = GetOrCreateSet(attr);
    for (const std::string& proj : spec.projections) {
      ObtainMap(set, proj == attr ? attr : proj);
    }
    return std::make_unique<SidewaysHandle>(set, RangePredicate{}, false,
                                            attr);
  }

  const size_t head_idx = ChooseHeadSelection(spec);
  const QuerySpec::Selection& head = spec.selections[head_idx];
  MapSet& set = GetOrCreateSet(head.attr);
  if (spec.disjunctive) {
    // Disjunctions scan the whole map for unmarked qualifiers, so every
    // pending update is relevant regardless of the head predicate.
    set.PullUpdates(RangePredicate{});
  }

  // Materialize (under the budget) every map this query will touch.
  for (size_t i = 0; i < spec.selections.size(); ++i) {
    if (i == head_idx) continue;
    ObtainMap(set, spec.selections[i].attr);
  }
  for (const std::string& proj : spec.projections) {
    if (proj == head.attr) {
      // Head projections read the head column of any map; make sure at
      // least one exists.
      if (set.MapNames().empty()) ObtainMap(set, head.attr);
      continue;
    }
    ObtainMap(set, proj);
  }

  auto handle = std::make_unique<SidewaysHandle>(set, head.pred,
                                                 spec.disjunctive, head.attr);
  // Bit-vector pipeline over the remaining selections (Section 3.3).
  for (size_t i = 0; i < spec.selections.size(); ++i) {
    if (i == head_idx) continue;
    handle->query().AddTailSelection(spec.selections[i].attr,
                                     spec.selections[i].pred);
  }
  // Align and crack every map the plan declared (Section 3.2: a map is
  // first aligned, then cracked, as part of the selection pipeline). This
  // keeps reconstructions — including post-join scattered access — pure
  // clustered reads into already-aligned areas.
  if (spec.selections.size() == 1 && set.MapNames().empty()) {
    ObtainMap(set, head.attr);
  }
  for (const std::string& proj : spec.projections) {
    const std::string attr =
        (proj == head.attr && !set.MapNames().empty()) ? set.MapNames().front()
                                                       : proj;
    CrackerMap& map = set.GetOrCreateMap(attr);
    set.SidewaysSelect(map, head.pred);
  }
  if (spec.projections.empty() && spec.selections.size() == 1) {
    CrackerMap& map = set.GetOrCreateMap(set.MapNames().front());
    set.SidewaysSelect(map, head.pred);
  }
  return handle;
}

size_t SidewaysEngine::MapStorageTuples() const {
  size_t total = 0;
  for (const auto& [attr, set] : sets_) total += set->MapStorageTuples();
  return total;
}

}  // namespace crackdb
