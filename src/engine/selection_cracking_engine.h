#ifndef CRACKDB_ENGINE_SELECTION_CRACKING_ENGINE_H_
#define CRACKDB_ENGINE_SELECTION_CRACKING_ENGINE_H_

#include <map>
#include <memory>
#include <string>

#include "cracking/cracker_column.h"
#include "engine/engine.h"
#include "storage/relation.h"

namespace crackdb {

/// Selection cracking of [7] (paper Section 2.2): one cracker column per
/// selection attribute. Selections get continuously cheaper as cracking
/// refines the columns, but the returned keys are in cracked — not
/// insertion — order, so every tuple reconstruction degenerates into
/// randomly-ordered positional lookups on the base columns. This is the
/// baseline whose reconstruction cost sideways cracking eliminates
/// (Figures 4, 5).
class SelectionCrackingEngine : public Engine {
 public:
  explicit SelectionCrackingEngine(const Relation& relation)
      : relation_(&relation) {}

  std::string name() const override { return "selection-cracking"; }

  std::unique_ptr<SelectionHandle> Select(const QuerySpec& spec) override;

  /// The cracker column of `attr`, creating it if missing (tests).
  CrackerColumn& GetOrCreate(const std::string& attr);
  bool HasCrackerColumn(const std::string& attr) const;

 private:
  const Relation* relation_;
  std::map<std::string, std::unique_ptr<CrackerColumn>> columns_;
};

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_SELECTION_CRACKING_ENGINE_H_
