#include "engine/database.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

namespace crackdb {

namespace {

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "database: %s: %s\n", what, detail.c_str());
  std::abort();
}

}  // namespace

Database::Database(DatabaseOptions options) {
  size_t threads = options.pool_threads;
  if (threads == DatabaseOptions::kPoolAuto) {
    threads = std::thread::hardware_concurrency();
  }
  if (threads > 0) {
    pool_ = std::make_unique<ThreadPool>(threads, options.affine_scheduling);
  }
}

Database::~Database() {
  // Members destroy in reverse declaration order, which would tear the
  // tables down while queued async tasks still reference them; join the
  // pool first (its destructor drains the queues).
  pool_.reset();
}

void Database::RegisterSharded(const std::string& table,
                               const Relation& source,
                               const PartitionSpec& spec,
                               const std::string& engine_kind) {
  EngineFactory factory = MakeEngineFactory(engine_kind);
  if (!factory) Die("unknown engine kind", engine_kind);

  // Exclusive for the whole registration: partitioning creates relations
  // in the shared catalog, which in-flight registrations of other tables
  // would otherwise race on.
  std::unique_lock<std::shared_mutex> lock(tables_mu_);
  auto entry = std::make_unique<Table>(
      Partitioner::Partition(&catalog_, source, spec));
  entry->engine = std::make_unique<ShardedEngine>(
      entry->relation, std::move(factory), pool_.get());
  if (!tables_.emplace(table, std::move(entry)).second) {
    Die("duplicate table", table);
  }
}

QueryResult Database::Query(const std::string& table, const QuerySpec& spec) {
  Table& t = FindTable(table);
  t.queries.fetch_add(1, std::memory_order_relaxed);
  // No table-level lock: the sharded engine locks partition by partition
  // and merges outside the locks. Run is the batch pipeline with one spec.
  return t.engine->Run(spec);
}

std::future<QueryResult> Database::QueryAsync(const std::string& table,
                                              QuerySpec spec) {
  Table& t = FindTable(table);
  t.queries.fetch_add(1, std::memory_order_relaxed);
  // Compute the affinity key before the task construction moves the spec
  // away.
  const size_t home = t.engine->HomePartition(spec);
  auto task = std::make_shared<std::packaged_task<QueryResult()>>(
      [&t, spec = std::move(spec)] { return t.engine->Run(spec); });
  std::future<QueryResult> future = task->get_future();
  if (pool_ == nullptr) {
    (*task)();
    return future;
  }
  // Schedule the whole query next to its data: the home partition's index
  // is the affinity key. Inside the worker, Run detects it must not block
  // on the pool and executes its partition groups inline.
  pool_->Submit(home, [task] { (*task)(); });
  return future;
}

std::vector<QueryResult> Database::QueryBatch(
    const std::string& table, std::span<const QuerySpec> specs) {
  Table& t = FindTable(table);
  t.queries.fetch_add(specs.size(), std::memory_order_relaxed);
  return t.engine->RunBatch(specs);
}

void Database::ApplyViews(Table& t, std::span<const WriteView> ops,
                          WriteOutcome* outcomes) {
  if (ops.empty()) return;
  // One writer_mu acquisition commits the whole batch. Ops apply strictly
  // in order (so keys and delete outcomes match the one-op loop); the
  // partition lock is held across consecutive ops on the same partition
  // and re-acquired only on a switch, so clustered batches amortize it.
  std::unique_lock<std::shared_mutex> writer(t.writer_mu);
  std::unique_lock<std::shared_mutex> partition;
  size_t locked = t.relation.num_partitions();  // sentinel: none held
  uint64_t inserts = 0, deletes = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    const WriteView& op = ops[i];
    size_t target;
    if (op.kind == WriteOp::Kind::kInsert) {
      target =
          t.relation.PartitionOf(op.values[t.relation.organizing_ordinal()]);
    } else {
      const std::optional<PartitionedRelation::Location> loc =
          t.relation.Locate(op.key);
      if (!loc.has_value()) continue;  // outcome stays {false, kInvalidKey}
      target = loc->partition;
    }
    if (target != locked) {
      if (partition.owns_lock()) partition.unlock();
      partition = std::unique_lock<std::shared_mutex>(
          t.relation.partition_mutex(target));
      locked = target;
    }
    if (op.kind == WriteOp::Kind::kInsert) {
      outcomes[i] = {true, t.relation.AppendTo(target, op.values)};
      ++inserts;
    } else if (t.relation.Delete(op.key)) {
      outcomes[i] = {true, op.key};
      ++deletes;
    }
  }
  if (inserts > 0) t.inserts.fetch_add(inserts, std::memory_order_relaxed);
  if (deletes > 0) t.deletes.fetch_add(deletes, std::memory_order_relaxed);
}

std::vector<WriteOutcome> Database::ApplyBatch(const std::string& table,
                                               std::span<const WriteOp> ops) {
  Table& t = FindTable(table);
  std::vector<WriteOutcome> outcomes(ops.size());
  std::vector<WriteView> views;
  views.reserve(ops.size());
  for (const WriteOp& op : ops) {
    views.push_back({op.kind, op.values, op.key});
  }
  ApplyViews(t, views, outcomes.data());
  return outcomes;
}

Key Database::Insert(const std::string& table, std::span<const Value> values) {
  const WriteView view{WriteOp::Kind::kInsert, values, kInvalidKey};
  WriteOutcome outcome;
  ApplyViews(FindTable(table), {&view, 1}, &outcome);
  return outcome.key;
}

bool Database::Delete(const std::string& table, Key global_key) {
  const WriteView view{WriteOp::Kind::kDelete, {}, global_key};
  WriteOutcome outcome;
  ApplyViews(FindTable(table), {&view, 1}, &outcome);
  return outcome.ok;
}

TableStats Database::Stats(const std::string& table) const {
  Table& t = FindTable(table);
  TableStats stats;
  stats.engine = t.engine->name();
  stats.partitions = t.relation.num_partitions();
  for (size_t i = 0; i < t.relation.num_partitions(); ++i) {
    // Shared: consistent per-partition snapshot that excludes writers and
    // cracking readers but runs concurrently with other snapshots.
    std::shared_lock<std::shared_mutex> lock(t.relation.partition_mutex(i));
    const Relation& part = t.relation.partition(i);
    stats.rows += part.num_rows();
    stats.live_rows += part.num_live_rows();
    stats.deleted += part.num_deleted();
  }
  stats.queries = t.queries.load(std::memory_order_relaxed);
  stats.inserts = t.inserts.load(std::memory_order_relaxed);
  stats.deletes = t.deletes.load(std::memory_order_relaxed);
  stats.cost = t.engine->CostSnapshot();
  return stats;
}

std::vector<std::string> Database::table_names() const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

ShardedEngine& Database::engine(const std::string& table) {
  return *FindTable(table).engine;
}

PartitionedRelation& Database::partitions(const std::string& table) {
  return FindTable(table).relation;
}

Database::Table& Database::FindTable(const std::string& table) const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) Die("unknown table", table);
  return *it->second;
}

}  // namespace crackdb
