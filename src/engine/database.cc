#include "engine/database.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

#include "adaptive/repartitioner.h"

namespace crackdb {

namespace {

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "database: %s: %s\n", what, detail.c_str());
  std::abort();
}

}  // namespace

Database::Database(DatabaseOptions options) {
  size_t threads = options.pool_threads;
  if (threads == DatabaseOptions::kPoolAuto) {
    threads = std::thread::hardware_concurrency();
  }
  if (threads > 0) {
    pool_ = std::make_unique<ThreadPool>(threads, options.affine_scheduling);
  }
}

Database::~Database() {
  // In-flight background repartition ticks reference their tables and may
  // block on the pool (engine builds), so join them first, then the pool
  // (members destroy in reverse declaration order, which would otherwise
  // tear the tables down while queued async tasks still reference them).
  // Collect first, then join with tables_mu_ *released*: a tick thread's
  // catalog hooks take tables_mu_ exclusively, so joining under the lock
  // would deadlock. No one registers tables during destruction.
  std::vector<Table*> tables;
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    tables.reserve(tables_.size());
    for (auto& [name, t] : tables_) tables.push_back(t.get());
  }
  for (Table* t : tables) {
    std::lock_guard<std::mutex> tick_lock(t->tick_thread_mu);
    if (t->tick_thread.joinable()) t->tick_thread.join();
  }
  pool_.reset();
}

void Database::RegisterSharded(const std::string& table,
                               const Relation& source,
                               const PartitionSpec& spec,
                               const std::string& engine_kind,
                               const AdaptiveConfig& adaptive) {
  EngineFactory factory = MakeEngineFactory(engine_kind);
  if (!factory) Die("unknown engine kind", engine_kind);

  // Exclusive for the whole registration: partitioning creates relations
  // in the shared catalog, which in-flight registrations of other tables
  // would otherwise race on.
  std::unique_lock<std::shared_mutex> lock(tables_mu_);
  auto entry = std::make_unique<Table>(
      Partitioner::Partition(&catalog_, source, spec));
  entry->engine = std::make_unique<ShardedEngine>(
      entry->relation, std::move(factory), pool_.get());
  entry->columns = source.column_names();
  entry->adaptive = adaptive;
  // Only range-sharded tables adapt: hash sharding is balanced by
  // construction, and slices are the unit the repartitioner reshapes.
  if (adaptive.enabled && spec.kind == PartitionSpec::Kind::kRange) {
    entry->histogram = std::make_unique<WorkloadHistogram>(
        entry->relation.num_partitions(), adaptive.sketch_capacity);
    entry->policy = std::make_unique<RepartitionPolicy>(adaptive);
    entry->engine->SetHistogram(entry->histogram.get());
  }
  // Cold-start layout: compress every qualifying partition at load time.
  // The per-partition engines above are freshly constructed (no cracked
  // state to invalidate) and no traffic has arrived yet, so neither an
  // engine reset nor partition locking is needed here.
  if (adaptive.compression.enabled && adaptive.compression.compress_on_load) {
    for (size_t i = 0; i < entry->relation.num_partitions(); ++i) {
      if (entry->relation.partition(i).Compress(adaptive.compression) > 0) {
        entry->compressions.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!tables_.emplace(table, std::move(entry)).second) {
    Die("duplicate table", table);
  }
}

namespace {

/// Re-applies the builder's terminal compile step to a Query, so
/// hand-built Query aggregates (the struct is public) get the same
/// projection pushdown and terminal validation as Build() output —
/// idempotent on already-compiled queries. Returns "" or the failure.
std::string NormalizeTerminal(crackdb::Query& q) {
  switch (q.consume.kind) {
    case ConsumeKind::kCount:
      q.spec.projections.clear();
      break;
    case ConsumeKind::kAggregate:
      if (q.consume.attr.empty()) return "Aggregate() requires an attribute";
      if (q.consume.op == AggregateOp::kCount) {
        return "Aggregate(kCount) is grouped-only; use Count() for a scalar "
               "cardinality query or GroupBy().Aggregate(kCount, ...) for "
               "per-group counts";
      }
      q.spec.projections = {q.consume.attr};
      break;
    case ConsumeKind::kGroupBy: {
      if (q.consume.group_attr.empty()) {
        return "GroupBy() requires an attribute";
      }
      if (q.consume.group_aggs.empty()) {
        return "GroupBy() requires at least one Aggregate()";
      }
      for (const GroupAggregate& agg : q.consume.group_aggs) {
        if (agg.attr.empty()) return "Aggregate() requires an attribute";
        if (agg.attr == q.consume.group_attr) {
          return "aggregate attribute '" + agg.attr +
                 "' duplicates the group key; the key (and per-group counts "
                 "via kCount) are returned without folding it";
        }
      }
      std::vector<std::string> pushdown = {q.consume.group_attr};
      for (const GroupAggregate& agg : q.consume.group_aggs) {
        if (agg.op == AggregateOp::kCount) continue;
        if (std::find(pushdown.begin(), pushdown.end(), agg.attr) ==
            pushdown.end()) {
          pushdown.push_back(agg.attr);
        }
      }
      if (!q.spec.projections.empty() && q.spec.projections != pushdown) {
        return "Project('" + q.spec.projections.front() +
               "', ...) conflicts with GroupBy(): a grouped query returns "
               "the group key and aggregate columns only (remove Project())";
      }
      q.spec.projections = std::move(pushdown);
      break;
    }
    case ConsumeKind::kForEach:
      if (!q.consume.visitor) return "ForEach() requires a visitor";
      if (q.spec.projections.empty()) {
        return "ForEach() requires at least one projected attribute";
      }
      break;
    case ConsumeKind::kMaterialize:
      if (q.spec.projections.empty()) {
        return "Materialize() requires at least one projected attribute "
               "(use Count() for a projection-free cardinality query)";
      }
      break;
  }
  return "";
}

}  // namespace

std::string Database::ValidateQuery(const Table& t, const crackdb::Query& q) {
  const auto known = [&t](const std::string& attr) {
    for (const std::string& column : t.columns) {
      if (column == attr) return true;
    }
    return false;
  };
  const auto unknown_attr = [&q](const std::string& attr) {
    return "unknown attribute '" + attr + "' in table '" + q.table + "'";
  };
  for (const QuerySpec::Selection& sel : q.spec.selections) {
    if (!known(sel.attr)) return unknown_attr(sel.attr);
  }
  for (const std::string& attr : q.spec.projections) {
    if (!known(attr)) return unknown_attr(attr);
  }
  if (q.consume.kind == ConsumeKind::kAggregate && !known(q.consume.attr)) {
    return unknown_attr(q.consume.attr);
  }
  if (q.consume.kind == ConsumeKind::kGroupBy) {
    if (!known(q.consume.group_attr)) {
      return unknown_attr(q.consume.group_attr);
    }
    for (const GroupAggregate& agg : q.consume.group_aggs) {
      if (!known(agg.attr)) return unknown_attr(agg.attr);
    }
  }
  return "";
}

Expected<ExecuteResult> Database::Execute(crackdb::Query query) {
  if (!query.error.empty()) return QueryError{std::move(query.error)};
  Table* t = FindTableOrNull(query.table);
  if (t == nullptr) return QueryError{"unknown table '" + query.table + "'"};
  std::string invalid = NormalizeTerminal(query);
  if (invalid.empty()) invalid = ValidateQuery(*t, query);
  if (!invalid.empty()) return QueryError{std::move(invalid)};
  t->queries.fetch_add(1, std::memory_order_relaxed);
  ExecuteResult result = t->engine->Execute(query.spec, query.consume);
  NoteOps(*t, 1);
  return result;
}

std::vector<Expected<ExecuteResult>> Database::ExecuteBatch(
    std::span<const crackdb::Query> queries) {
  // Validate everything first, then run one engine batch per table (the
  // batch scheduler groups its sub-queries by partition, so each target
  // partition is locked once per table batch). Results scatter back into
  // query order.
  std::vector<std::optional<QueryError>> errors(queries.size());
  struct TableBatch {
    Table* table;
    std::vector<size_t> indexes;
    std::vector<QuerySpec> specs;
    std::vector<ConsumeSpec> consumes;
  };
  std::vector<TableBatch> batches;
  for (size_t i = 0; i < queries.size(); ++i) {
    crackdb::Query query = queries[i];
    if (!query.error.empty()) {
      errors[i] = QueryError{std::move(query.error)};
      continue;
    }
    Table* t = FindTableOrNull(query.table);
    if (t == nullptr) {
      errors[i] = QueryError{"unknown table '" + query.table + "'"};
      continue;
    }
    std::string invalid = NormalizeTerminal(query);
    if (invalid.empty()) invalid = ValidateQuery(*t, query);
    if (!invalid.empty()) {
      errors[i] = QueryError{std::move(invalid)};
      continue;
    }
    TableBatch* batch = nullptr;
    for (TableBatch& existing : batches) {
      if (existing.table == t) {
        batch = &existing;
        break;
      }
    }
    if (batch == nullptr) {
      batches.push_back({t, {}, {}, {}});
      batch = &batches.back();
    }
    batch->indexes.push_back(i);
    batch->specs.push_back(std::move(query.spec));
    batch->consumes.push_back(std::move(query.consume));
  }

  std::vector<std::optional<ExecuteResult>> executed(queries.size());
  for (TableBatch& batch : batches) {
    batch.table->queries.fetch_add(batch.specs.size(),
                                   std::memory_order_relaxed);
    std::vector<ExecuteResult> results =
        batch.table->engine->ExecuteMany(batch.specs, batch.consumes);
    for (size_t j = 0; j < batch.indexes.size(); ++j) {
      executed[batch.indexes[j]] = std::move(results[j]);
    }
    NoteOps(*batch.table, batch.specs.size());
  }

  std::vector<Expected<ExecuteResult>> out;
  out.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (errors[i].has_value()) {
      out.push_back(std::move(*errors[i]));
    } else {
      out.push_back(std::move(*executed[i]));
    }
  }
  return out;
}

QueryResult Database::Query(const std::string& table, const QuerySpec& spec) {
  Table& t = FindTable(table);
  t.queries.fetch_add(1, std::memory_order_relaxed);
  // No table-level lock: the sharded engine locks partition by partition
  // and merges outside the locks. Run is the batch pipeline with one spec.
  QueryResult result = t.engine->Run(spec);
  NoteOps(t, 1);
  return result;
}

std::future<QueryResult> Database::QueryAsync(const std::string& table,
                                              QuerySpec spec) {
  Table& t = FindTable(table);
  t.queries.fetch_add(1, std::memory_order_relaxed);
  // Compute the affinity key before the task construction moves the spec
  // away.
  const size_t home = t.engine->HomePartition(spec);
  auto task = std::make_shared<std::packaged_task<QueryResult()>>(
      [&t, spec = std::move(spec)] { return t.engine->Run(spec); });
  std::future<QueryResult> future = task->get_future();
  if (pool_ == nullptr) {
    (*task)();
    NoteOps(t, 1);
    return future;
  }
  // Schedule the whole query next to its data: the home partition's index
  // is the affinity key. Inside the worker, Run detects it must not block
  // on the pool and executes its partition groups inline.
  pool_->Submit(home, [task] { (*task)(); });
  NoteOps(t, 1);
  return future;
}

std::vector<QueryResult> Database::QueryBatch(
    const std::string& table, std::span<const QuerySpec> specs) {
  Table& t = FindTable(table);
  t.queries.fetch_add(specs.size(), std::memory_order_relaxed);
  std::vector<QueryResult> results = t.engine->RunBatch(specs);
  NoteOps(t, specs.size());
  return results;
}

void Database::ApplyViews(Table& t, std::span<const WriteView> ops,
                          WriteOutcome* outcomes) {
  if (ops.empty()) return;
  {
    // The partition map must be stable for the whole commit (routing,
    // mutexes, and the global-key router all live in it); writers enter
    // the gate as ordinary (non-urgent) readers — they run on client
    // threads and may wait out a pending swap.
    RwGate::SharedGuard map_guard(t.relation.map_gate());
    // One writer_mu acquisition commits the whole batch. Ops apply
    // strictly in order (so keys and delete outcomes match the one-op
    // loop); the partition lock is held across consecutive ops on the
    // same partition and re-acquired only on a switch, so clustered
    // batches amortize it.
    std::unique_lock<std::shared_mutex> writer(t.writer_mu);
    std::unique_lock<std::shared_mutex> partition;
    size_t locked = t.relation.num_partitions();  // sentinel: none held
    uint64_t inserts = 0, deletes = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      const WriteView& op = ops[i];
      size_t target;
      if (op.kind == WriteOp::Kind::kInsert) {
        target =
            t.relation.PartitionOf(op.values[t.relation.organizing_ordinal()]);
      } else {
        const std::optional<PartitionedRelation::Location> loc =
            t.relation.Locate(op.key);
        if (!loc.has_value()) continue;  // outcome stays {false, kInvalidKey}
        target = loc->partition;
      }
      if (target != locked) {
        if (partition.owns_lock()) partition.unlock();
        partition = std::unique_lock<std::shared_mutex>(
            t.relation.partition_mutex(target));
        locked = target;
      }
      // Writes land in raw partitions only: the encoded layouts are
      // immutable and tombstone-blind, so a write to a compressed
      // partition materializes it back to raw first. Its engine stayed
      // valid across the compressed phase (stamped fresh at compress
      // time); it absorbs this write lazily like any other.
      {
        const Relation& part = t.relation.partition(target);
        if (part.compressed()) {
          part.Decompress();
          t.decompressions.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (op.kind == WriteOp::Kind::kInsert) {
        outcomes[i] = {true, t.relation.AppendTo(target, op.values)};
        ++inserts;
      } else if (t.relation.Delete(op.key)) {
        outcomes[i] = {true, op.key};
        ++deletes;
      }
    }
    if (inserts > 0) t.inserts.fetch_add(inserts, std::memory_order_relaxed);
    if (deletes > 0) t.deletes.fetch_add(deletes, std::memory_order_relaxed);
  }
  // Outside every lock: a crossed trigger boundary may spawn a tick
  // thread, which re-enters the gate on its own.
  NoteOps(t, ops.size());
}

std::vector<WriteOutcome> Database::ApplyBatch(const std::string& table,
                                               std::span<const WriteOp> ops) {
  Table& t = FindTable(table);
  std::vector<WriteOutcome> outcomes(ops.size());
  std::vector<WriteView> views;
  views.reserve(ops.size());
  for (const WriteOp& op : ops) {
    views.push_back({op.kind, op.values, op.key});
  }
  ApplyViews(t, views, outcomes.data());
  return outcomes;
}

Key Database::Insert(const std::string& table, std::span<const Value> values) {
  const WriteView view{WriteOp::Kind::kInsert, values, kInvalidKey};
  WriteOutcome outcome;
  ApplyViews(FindTable(table), {&view, 1}, &outcome);
  return outcome.key;
}

bool Database::Delete(const std::string& table, Key global_key) {
  const WriteView view{WriteOp::Kind::kDelete, {}, global_key};
  WriteOutcome outcome;
  ApplyViews(FindTable(table), {&view, 1}, &outcome);
  return outcome.ok;
}

namespace {

/// Clears the tick-in-flight flag on every exit path: an exception
/// escaping a tick (e.g. bad_alloc building a shard engine) must not
/// permanently disable adaptivity for the table.
struct TickFlagClearer {
  std::atomic<bool>& flag;
  ~TickFlagClearer() { flag.store(false); }
};

}  // namespace

bool Database::MaybeRepartition(const std::string& table) {
  Table& t = FindTable(table);
  if (!t.adaptive.enabled || t.histogram == nullptr) return false;
  // At most one tick in flight per table, manual or background.
  if (t.tick_in_flight.exchange(true)) return false;
  TickFlagClearer clearer{t.tick_in_flight};
  return RunTick(t);
}

void Database::NoteOps(Table& t, size_t n) {
  if (n == 0 || !t.adaptive.enabled || t.histogram == nullptr ||
      t.adaptive.trigger_interval == 0) {
    return;
  }
  const uint64_t interval = t.adaptive.trigger_interval;
  const uint64_t before = t.ops_seen.fetch_add(n, std::memory_order_relaxed);
  if (before / interval == (before + n) / interval) return;  // no boundary
  if (t.tick_in_flight.exchange(true)) return;
  std::lock_guard<std::mutex> lock(t.tick_thread_mu);
  // The previous tick thread (if any) observedly finished: it cleared
  // tick_in_flight before exiting, so this join returns immediately.
  if (t.tick_thread.joinable()) t.tick_thread.join();
  t.tick_thread = std::thread([this, &t] {
    TickFlagClearer clearer{t.tick_in_flight};
    RunTick(t);
  });
}

bool Database::RunTick(Table& t) {
  // Sensor -> decision inputs. Covers and row counts are read under the
  // gate (shared) + per-partition shared locks, like Stats; the histogram
  // snapshot tolerates concurrent recorders.
  WorkloadHistogram::Snapshot snap = t.histogram->Snap();
  std::vector<RepartitionPolicy::PartitionInput> inputs;
  {
    RwGate::SharedGuard gate(t.relation.map_gate());
    const size_t n = t.relation.num_partitions();
    inputs.resize(n);
    for (size_t i = 0; i < n; ++i) {
      std::shared_lock<std::shared_mutex> lock(t.relation.partition_mutex(i));
      const Relation& part = t.relation.partition(i);
      inputs[i].live_rows = part.num_live_rows();
      inputs[i].cover_lo = t.relation.SliceCoverLo(i);
      inputs[i].cover_hi = t.relation.SliceCoverHi(i);
      if (t.adaptive.compression.enabled) {
        inputs[i].compressed = part.compressed();
        inputs[i].compressible =
            !inputs[i].compressed && part.num_deleted() == 0;
      }
      if (i < snap.partitions.size()) {
        inputs[i].accesses = snap.partitions[i].accesses;
        inputs[i].split_candidates = std::move(snap.partitions[i].boundaries);
      }
    }
  }
  const RepartitionDecision decision = t.policy->Tick(inputs);
  t.histogram->Decay(t.adaptive.decay);
  if (decision.kind == RepartitionDecision::Kind::kNone) return false;

  Repartitioner::Hooks hooks;
  hooks.relation = &t.relation;
  hooks.engine = t.engine.get();
  hooks.histogram = t.histogram.get();
  hooks.pool = pool_.get();
  hooks.create_relation = [this](const std::string& name) -> Relation& {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    return catalog_.CreateRelation(name);
  };
  hooks.drop_relation = [this](const std::string& name) {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    catalog_.DropRelation(name);
  };
  hooks.compression = t.adaptive.compression;
  Repartitioner repartitioner(std::move(hooks));
  if (!repartitioner.Execute(decision)) return false;
  t.policy->NoteExecuted(decision);
  switch (decision.kind) {
    case RepartitionDecision::Kind::kSplit:
      t.splits.fetch_add(1, std::memory_order_relaxed);
      break;
    case RepartitionDecision::Kind::kMerge:
      t.merges.fetch_add(1, std::memory_order_relaxed);
      break;
    case RepartitionDecision::Kind::kCompress:
      t.compressions.fetch_add(1, std::memory_order_relaxed);
      break;
    case RepartitionDecision::Kind::kDecompress:
      t.decompressions.fetch_add(1, std::memory_order_relaxed);
      break;
    case RepartitionDecision::Kind::kNone:
      break;
  }
  return true;
}

TableStats Database::Stats(const std::string& table) const {
  Table& t = FindTable(table);
  TableStats stats;
  {
    RwGate::SharedGuard gate(t.relation.map_gate());
    // Under the gate the histogram's partition count is stable and
    // matches the map (a swap resets it under the gate held exclusively).
    // Counters only: Stats never reads the boundary sketches.
    WorkloadHistogram::Snapshot hist;
    if (t.histogram != nullptr) {
      hist = t.histogram->Snap(/*with_boundaries=*/false);
    }
    stats.partitions = t.relation.num_partitions();
    const bool range = t.relation.spec().kind == PartitionSpec::Kind::kRange;
    stats.per_partition.resize(stats.partitions);
    for (size_t i = 0; i < stats.partitions; ++i) {
      // Shared: consistent per-partition snapshot that excludes writers
      // and cracking readers but runs concurrently with other snapshots.
      // Also excludes ResetPartitionEngine (exclusive), so the engine
      // name reads below never race a compression-layer engine swap.
      std::shared_lock<std::shared_mutex> lock(t.relation.partition_mutex(i));
      if (i == 0) stats.engine = t.engine->name();
      const Relation& part = t.relation.partition(i);
      PartitionStats& ps = stats.per_partition[i];
      ps.rows = part.num_rows();
      ps.live_rows = part.num_live_rows();
      ps.deleted = part.num_deleted();
      ps.engine = t.engine->partition_engine(i).name();
      ps.codec = part.CodecSummary();
      ps.resident_bytes = part.resident_column_bytes();
      if (range) {
        ps.cover_lo = t.relation.SliceCoverLo(i);
        ps.cover_hi = t.relation.SliceCoverHi(i);
      }
      if (i < hist.partitions.size()) {
        ps.accesses = hist.partitions[i].accesses;
        ps.access_micros = hist.partitions[i].micros;
      }
      stats.rows += ps.rows;
      stats.live_rows += ps.live_rows;
      stats.deleted += ps.deleted;
      stats.resident_column_bytes += ps.resident_bytes;
      if (part.compressed()) ++stats.compressed_partitions;
    }
  }
  stats.queries = t.queries.load(std::memory_order_relaxed);
  stats.inserts = t.inserts.load(std::memory_order_relaxed);
  stats.deletes = t.deletes.load(std::memory_order_relaxed);
  stats.splits = t.splits.load(std::memory_order_relaxed);
  stats.merges = t.merges.load(std::memory_order_relaxed);
  stats.compressions = t.compressions.load(std::memory_order_relaxed);
  stats.decompressions = t.decompressions.load(std::memory_order_relaxed) +
                         t.engine->crack_decompressions();
  stats.encoded_queries = t.engine->encoded_queries();
  stats.bytes_per_row =
      stats.rows == 0 ? 0.0
                      : static_cast<double>(stats.resident_column_bytes) /
                            static_cast<double>(stats.rows);
  stats.cost = t.engine->CostSnapshot();
  return stats;
}

std::vector<std::string> Database::table_names() const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

ShardedEngine& Database::engine(const std::string& table) {
  return *FindTable(table).engine;
}

PartitionedRelation& Database::partitions(const std::string& table) {
  return FindTable(table).relation;
}

Database::Table& Database::FindTable(const std::string& table) const {
  Table* t = FindTableOrNull(table);
  if (t == nullptr) Die("unknown table", table);
  return *t;
}

Database::Table* Database::FindTableOrNull(const std::string& table) const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.get();
}

}  // namespace crackdb
