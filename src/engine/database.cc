#include "engine/database.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

namespace crackdb {

namespace {

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "database: %s: %s\n", what, detail.c_str());
  std::abort();
}

}  // namespace

Database::Database(DatabaseOptions options) {
  size_t threads = options.pool_threads;
  if (threads == DatabaseOptions::kPoolAuto) {
    threads = std::thread::hardware_concurrency();
  }
  if (threads > 0) pool_ = std::make_unique<ThreadPool>(threads);
}

void Database::RegisterSharded(const std::string& table,
                               const Relation& source,
                               const PartitionSpec& spec,
                               const std::string& engine_kind) {
  EngineFactory factory = MakeEngineFactory(engine_kind);
  if (!factory) Die("unknown engine kind", engine_kind);

  // Exclusive for the whole registration: partitioning creates relations
  // in the shared catalog, which in-flight registrations of other tables
  // would otherwise race on.
  std::unique_lock<std::shared_mutex> lock(tables_mu_);
  auto entry = std::make_unique<Table>(
      Partitioner::Partition(&catalog_, source, spec));
  entry->engine = std::make_unique<ShardedEngine>(
      entry->relation, std::move(factory), pool_.get());
  if (!tables_.emplace(table, std::move(entry)).second) {
    Die("duplicate table", table);
  }
}

QueryResult Database::Query(const std::string& table, const QuerySpec& spec) {
  Table& t = FindTable(table);
  t.queries.fetch_add(1, std::memory_order_relaxed);
  // No table-level lock: the sharded engine locks partition by partition
  // and merges outside the locks.
  return t.engine->Run(spec);
}

Key Database::Insert(const std::string& table, std::span<const Value> values) {
  Table& t = FindTable(table);
  std::unique_lock<std::shared_mutex> writer(t.writer_mu);
  const size_t target =
      t.relation.PartitionOf(values[t.relation.organizing_ordinal()]);
  std::unique_lock<std::shared_mutex> partition(
      t.relation.partition_mutex(target));
  const Key key = t.relation.AppendTo(target, values);
  t.inserts.fetch_add(1, std::memory_order_relaxed);
  return key;
}

bool Database::Delete(const std::string& table, Key global_key) {
  Table& t = FindTable(table);
  std::unique_lock<std::shared_mutex> writer(t.writer_mu);
  const std::optional<PartitionedRelation::Location> loc =
      t.relation.Locate(global_key);
  if (!loc.has_value()) return false;
  std::unique_lock<std::shared_mutex> partition(
      t.relation.partition_mutex(loc->partition));
  if (!t.relation.Delete(global_key)) return false;
  t.deletes.fetch_add(1, std::memory_order_relaxed);
  return true;
}

TableStats Database::Stats(const std::string& table) const {
  Table& t = FindTable(table);
  TableStats stats;
  stats.engine = t.engine->name();
  stats.partitions = t.relation.num_partitions();
  for (size_t i = 0; i < t.relation.num_partitions(); ++i) {
    // Shared: consistent per-partition snapshot that excludes writers and
    // cracking readers but runs concurrently with other snapshots.
    std::shared_lock<std::shared_mutex> lock(t.relation.partition_mutex(i));
    const Relation& part = t.relation.partition(i);
    stats.rows += part.num_rows();
    stats.live_rows += part.num_live_rows();
    stats.deleted += part.num_deleted();
  }
  stats.queries = t.queries.load(std::memory_order_relaxed);
  stats.inserts = t.inserts.load(std::memory_order_relaxed);
  stats.deletes = t.deletes.load(std::memory_order_relaxed);
  stats.cost = t.engine->CostSnapshot();
  return stats;
}

std::vector<std::string> Database::table_names() const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

ShardedEngine& Database::engine(const std::string& table) {
  return *FindTable(table).engine;
}

PartitionedRelation& Database::partitions(const std::string& table) {
  return FindTable(table).relation;
}

Database::Table& Database::FindTable(const std::string& table) const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) Die("unknown table", table);
  return *it->second;
}

}  // namespace crackdb
