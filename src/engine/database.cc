#include "engine/database.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>

#include "adaptive/repartitioner.h"
#include "common/timer.h"
#include "engine/plain_engine.h"
#include "obs/metrics.h"

namespace crackdb {

namespace {

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "database: %s: %s\n", what, detail.c_str());
  std::abort();
}

/// Registry handles resolved once per process (docs/OBSERVABILITY.md).
struct DbMetrics {
  obs::Counter& queries =
      obs::MetricsRegistry::Global().GetCounter("db_queries_total");
  obs::Counter& query_errors =
      obs::MetricsRegistry::Global().GetCounter("db_query_errors_total");
  obs::Counter& system_queries =
      obs::MetricsRegistry::Global().GetCounter("db_system_queries_total");
  obs::Counter& writes =
      obs::MetricsRegistry::Global().GetCounter("db_writes_total");
  obs::Counter& write_decompress =
      obs::MetricsRegistry::Global().GetCounter("db_write_decompress_total");
  obs::Histogram& query_micros =
      obs::MetricsRegistry::Global().GetHistogram("db_query_micros");
  obs::Counter& ticks =
      obs::MetricsRegistry::Global().GetCounter("adaptive_ticks_total");
  obs::Counter& splits =
      obs::MetricsRegistry::Global().GetCounter("adaptive_splits_total");
  obs::Counter& merges =
      obs::MetricsRegistry::Global().GetCounter("adaptive_merges_total");
  obs::Counter& compressions =
      obs::MetricsRegistry::Global().GetCounter("adaptive_compressions_total");
  obs::Counter& decompressions = obs::MetricsRegistry::Global().GetCounter(
      "adaptive_decompressions_total");
  obs::Gauge& footprint_before = obs::MetricsRegistry::Global().GetGauge(
      "adaptive_footprint_before_bytes");
  obs::Gauge& footprint_after = obs::MetricsRegistry::Global().GetGauge(
      "adaptive_footprint_after_bytes");
};

DbMetrics& Metrics() {
  static DbMetrics* metrics = new DbMetrics();
  return *metrics;
}

/// Query-log sampling window: 1 in this many untraced queries pays the
/// full observability epilogue (histogram observe + ring append). Power
/// of two; the first query of a Database always samples (phase 0).
/// Traced and system.* queries always log, so the sparse sample only
/// thins steady-state untraced traffic.
constexpr uint64_t kQueryLogSampleEvery = 64;

/// Column schemas of the system.* virtual tables. Registered as empty
/// marker relations in the Catalog (schema discovery through the normal
/// catalog surface) and materialized as transient per-query snapshots by
/// ExecuteSystem. All cells are Values; string-ish columns (names, engine
/// and codec kinds) hold system-name dictionary codes — see
/// Database::SystemName.
struct SystemSchema {
  const char* name;
  std::vector<std::string> columns;
};

const std::vector<SystemSchema>& SystemSchemas() {
  static const std::vector<SystemSchema>* schemas =
      new std::vector<SystemSchema>{
          {"system.tables",
           {"name", "partitions", "rows", "live_rows", "deleted", "queries",
            "inserts", "deletes", "splits", "merges", "compressions",
            "decompressions", "encoded_queries", "resident_bytes"}},
          {"system.partitions",
           {"table", "partition", "rows", "live_rows", "deleted", "cover_lo",
            "cover_hi", "accesses", "engine", "codec", "resident_bytes"}},
          {"system.metrics", {"name", "kind", "value", "count", "max"}},
          {"system.query_log",
           {"query_id", "table", "kind", "rows", "engine_micros",
            "select_micros", "reconstruct_micros", "partitions_touched",
            "partitions_pruned", "traced"}},
      };
  return *schemas;
}

const SystemSchema* FindSystemSchema(const std::string& name) {
  for (const SystemSchema& schema : SystemSchemas()) {
    if (name == schema.name) return &schema;
  }
  return nullptr;
}

}  // namespace

Database::Database(DatabaseOptions options) {
  size_t threads = options.pool_threads;
  if (threads == DatabaseOptions::kPoolAuto) {
    threads = std::thread::hardware_concurrency();
  }
  if (threads > 0) {
    pool_ = std::make_unique<ThreadPool>(threads, options.affine_scheduling);
  }
  // Register the system.* schemas as empty marker relations:
  // catalog().relation("system.metrics").column_names() is the schema
  // discovery surface; rows are materialized per query (ExecuteSystem).
  for (const SystemSchema& schema : SystemSchemas()) {
    Relation& marker = catalog_.CreateRelation(schema.name);
    for (const std::string& column : schema.columns) marker.AddColumn(column);
  }
}

Database::~Database() {
  // In-flight background repartition ticks reference their tables and may
  // block on the pool (engine builds), so join them first, then the pool
  // (members destroy in reverse declaration order, which would otherwise
  // tear the tables down while queued async tasks still reference them).
  // Collect first, then join with tables_mu_ *released*: a tick thread's
  // catalog hooks take tables_mu_ exclusively, so joining under the lock
  // would deadlock. No one registers tables during destruction.
  std::vector<Table*> tables;
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    tables.reserve(tables_.size());
    for (auto& [name, t] : tables_) tables.push_back(t.get());
  }
  for (Table* t : tables) {
    std::lock_guard<std::mutex> tick_lock(t->tick_thread_mu);
    if (t->tick_thread.joinable()) t->tick_thread.join();
  }
  pool_.reset();
}

void Database::RegisterSharded(const std::string& table,
                               const Relation& source,
                               const PartitionSpec& spec,
                               const std::string& engine_kind,
                               const AdaptiveConfig& adaptive) {
  EngineFactory factory = MakeEngineFactory(engine_kind);
  if (!factory) Die("unknown engine kind", engine_kind);

  // Exclusive for the whole registration: partitioning creates relations
  // in the shared catalog, which in-flight registrations of other tables
  // would otherwise race on.
  std::unique_lock<std::shared_mutex> lock(tables_mu_);
  auto entry = std::make_unique<Table>(
      Partitioner::Partition(&catalog_, source, spec));
  entry->engine = std::make_unique<ShardedEngine>(
      entry->relation, std::move(factory), pool_.get());
  entry->columns = source.column_names();
  entry->adaptive = adaptive;
  // Only range-sharded tables adapt: hash sharding is balanced by
  // construction, and slices are the unit the repartitioner reshapes.
  if (adaptive.enabled && spec.kind == PartitionSpec::Kind::kRange) {
    entry->histogram = std::make_unique<WorkloadHistogram>(
        entry->relation.num_partitions(), adaptive.sketch_capacity);
    entry->policy = std::make_unique<RepartitionPolicy>(adaptive);
    entry->engine->SetHistogram(entry->histogram.get());
  }
  // Cold-start layout: compress every qualifying partition at load time.
  // The per-partition engines above are freshly constructed (no cracked
  // state to invalidate) and no traffic has arrived yet, so neither an
  // engine reset nor partition locking is needed here.
  if (adaptive.compression.enabled && adaptive.compression.compress_on_load) {
    for (size_t i = 0; i < entry->relation.num_partitions(); ++i) {
      if (entry->relation.partition(i).Compress(adaptive.compression) > 0) {
        entry->compressions.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (!tables_.emplace(table, std::move(entry)).second) {
    Die("duplicate table", table);
  }
}

namespace {

/// Re-applies the builder's terminal compile step to a Query, so
/// hand-built Query aggregates (the struct is public) get the same
/// projection pushdown and terminal validation as Build() output —
/// idempotent on already-compiled queries. Returns "" or the failure.
std::string NormalizeTerminal(crackdb::Query& q) {
  switch (q.consume.kind) {
    case ConsumeKind::kCount:
      q.spec.projections.clear();
      break;
    case ConsumeKind::kAggregate:
      if (q.consume.attr.empty()) return "Aggregate() requires an attribute";
      if (q.consume.op == AggregateOp::kCount) {
        return "Aggregate(kCount) is grouped-only; use Count() for a scalar "
               "cardinality query or GroupBy().Aggregate(kCount, ...) for "
               "per-group counts";
      }
      q.spec.projections = {q.consume.attr};
      break;
    case ConsumeKind::kGroupBy: {
      if (q.consume.group_attr.empty()) {
        return "GroupBy() requires an attribute";
      }
      if (q.consume.group_aggs.empty()) {
        return "GroupBy() requires at least one Aggregate()";
      }
      for (const GroupAggregate& agg : q.consume.group_aggs) {
        if (agg.attr.empty()) return "Aggregate() requires an attribute";
        if (agg.attr == q.consume.group_attr) {
          return "aggregate attribute '" + agg.attr +
                 "' duplicates the group key; the key (and per-group counts "
                 "via kCount) are returned without folding it";
        }
      }
      std::vector<std::string> pushdown = {q.consume.group_attr};
      for (const GroupAggregate& agg : q.consume.group_aggs) {
        if (agg.op == AggregateOp::kCount) continue;
        if (std::find(pushdown.begin(), pushdown.end(), agg.attr) ==
            pushdown.end()) {
          pushdown.push_back(agg.attr);
        }
      }
      if (!q.spec.projections.empty() && q.spec.projections != pushdown) {
        return "Project('" + q.spec.projections.front() +
               "', ...) conflicts with GroupBy(): a grouped query returns "
               "the group key and aggregate columns only (remove Project())";
      }
      q.spec.projections = std::move(pushdown);
      break;
    }
    case ConsumeKind::kForEach:
      if (!q.consume.visitor) return "ForEach() requires a visitor";
      if (q.spec.projections.empty()) {
        return "ForEach() requires at least one projected attribute";
      }
      break;
    case ConsumeKind::kMaterialize:
      if (q.spec.projections.empty()) {
        return "Materialize() requires at least one projected attribute "
               "(use Count() for a projection-free cardinality query)";
      }
      break;
  }
  return "";
}

}  // namespace

std::string Database::ValidateQuery(const Table& t, const crackdb::Query& q) {
  return ValidateQueryColumns(t.columns, q);
}

std::string Database::ValidateQueryColumns(
    std::span<const std::string> columns, const crackdb::Query& q) {
  const auto known = [columns](const std::string& attr) {
    for (const std::string& column : columns) {
      if (column == attr) return true;
    }
    return false;
  };
  const auto unknown_attr = [&q](const std::string& attr) {
    return "unknown attribute '" + attr + "' in table '" + q.table + "'";
  };
  for (const QuerySpec::Selection& sel : q.spec.selections) {
    if (!known(sel.attr)) return unknown_attr(sel.attr);
  }
  for (const std::string& attr : q.spec.projections) {
    if (!known(attr)) return unknown_attr(attr);
  }
  if (q.consume.kind == ConsumeKind::kAggregate && !known(q.consume.attr)) {
    return unknown_attr(q.consume.attr);
  }
  if (q.consume.kind == ConsumeKind::kGroupBy) {
    if (!known(q.consume.group_attr)) {
      return unknown_attr(q.consume.group_attr);
    }
    for (const GroupAggregate& agg : q.consume.group_aggs) {
      if (!known(agg.attr)) return unknown_attr(agg.attr);
    }
  }
  return "";
}

bool Database::IsSystemTable(const std::string& table) {
  return table.rfind("system.", 0) == 0;
}

Value Database::InternName(const std::string& name) {
  std::lock_guard<std::mutex> lock(system_names_mu_);
  return system_names_.Encode(name);
}

std::string Database::SystemName(Value id) const {
  std::lock_guard<std::mutex> lock(system_names_mu_);
  if (id < 0 || static_cast<size_t>(id) >= system_names_.size()) {
    Die("unknown system name id", std::to_string(id));
  }
  return system_names_.Decode(id);
}

void Database::LogQuery(const std::string& table, ConsumeKind kind,
                        const ExecuteResult& result, bool always) {
  if (!obs::MetricsEnabled()) return;
  const uint64_t seq = log_seq_.fetch_add(1, std::memory_order_relaxed);
  const bool sampled = (seq & (kQueryLogSampleEvery - 1)) == 0;
  if (!sampled && !always && result.trace == nullptr) return;
  // Fold the query-counter update into the sampled path too: report the
  // delta of sequence numbers allocated since the last report, so
  // db_queries_total stays *exact* at every sample point while the
  // unsampled path pays nothing. The CAS-max keeps concurrent reporters
  // from double-counting a window (each successful advance accounts
  // exactly its own delta).
  const uint64_t total = seq + 1;
  uint64_t prev = queries_reported_.load(std::memory_order_relaxed);
  while (total > prev && !queries_reported_.compare_exchange_weak(
                             prev, total, std::memory_order_relaxed)) {
  }
  if (total > prev) {
    Metrics().queries.Add(static_cast<double>(total - prev));
  }
  const double engine_micros = result.cost.select_micros +
                               result.cost.reconstruct_micros +
                               result.cost.prepare_micros;
  Metrics().query_micros.Observe(engine_micros);
  obs::QueryLogEntry entry;
  entry.table = table;
  entry.kind = static_cast<int32_t>(kind);
  entry.rows = result.count;
  entry.engine_micros = engine_micros;
  entry.select_micros = result.cost.select_micros;
  entry.reconstruct_micros = result.cost.reconstruct_micros;
  entry.partitions_touched = static_cast<uint32_t>(result.partitions_touched);
  entry.partitions_pruned = static_cast<uint32_t>(result.partitions_pruned);
  entry.traced = result.trace != nullptr;
  entry.trace = result.trace;
  query_log_.Append(std::move(entry));
}

void Database::FillSystemTables(Relation& out) {
  std::vector<std::string> names = table_names();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const TableStats s = Stats(name);
    const Value row[] = {InternName(name),
                         static_cast<Value>(s.partitions),
                         static_cast<Value>(s.rows),
                         static_cast<Value>(s.live_rows),
                         static_cast<Value>(s.deleted),
                         static_cast<Value>(s.queries),
                         static_cast<Value>(s.inserts),
                         static_cast<Value>(s.deletes),
                         static_cast<Value>(s.splits),
                         static_cast<Value>(s.merges),
                         static_cast<Value>(s.compressions),
                         static_cast<Value>(s.decompressions),
                         static_cast<Value>(s.encoded_queries),
                         static_cast<Value>(s.resident_column_bytes)};
    out.BulkLoadRow(row);
  }
}

void Database::FillSystemPartitions(Relation& out) {
  std::vector<std::string> names = table_names();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const TableStats s = Stats(name);
    const Value table_id = InternName(name);
    for (size_t i = 0; i < s.per_partition.size(); ++i) {
      const PartitionStats& ps = s.per_partition[i];
      const Value row[] = {table_id,
                           static_cast<Value>(i),
                           static_cast<Value>(ps.rows),
                           static_cast<Value>(ps.live_rows),
                           static_cast<Value>(ps.deleted),
                           ps.cover_lo,
                           ps.cover_hi,
                           static_cast<Value>(ps.accesses),
                           InternName(ps.engine),
                           InternName(ps.codec),
                           static_cast<Value>(ps.resident_bytes)};
      out.BulkLoadRow(row);
    }
  }
}

void Database::FillSystemMetrics(Relation& out) {
  // Engines batch their registry increments under their cost mutex; drain
  // them so the snapshot reflects all finished work (FlushMetrics is the
  // documented sync point).
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    for (const auto& [name, t] : tables_) t->engine->FlushMetrics();
  }
  for (const obs::MetricSample& s : obs::MetricsRegistry::Global().Snapshot()) {
    const Value row[] = {InternName(s.name),
                         static_cast<Value>(static_cast<int>(s.kind)),
                         static_cast<Value>(std::llround(s.value)),
                         static_cast<Value>(s.count),
                         static_cast<Value>(std::llround(s.max))};
    out.BulkLoadRow(row);
  }
}

void Database::FillSystemQueryLog(Relation& out) {
  for (const obs::QueryLogEntry& e : query_log_.Snapshot()) {
    const Value row[] = {static_cast<Value>(e.query_id),
                         InternName(e.table),
                         static_cast<Value>(e.kind),
                         static_cast<Value>(e.rows),
                         static_cast<Value>(std::llround(e.engine_micros)),
                         static_cast<Value>(std::llround(e.select_micros)),
                         static_cast<Value>(std::llround(e.reconstruct_micros)),
                         static_cast<Value>(e.partitions_touched),
                         static_cast<Value>(e.partitions_pruned),
                         e.traced ? 1 : 0};
    out.BulkLoadRow(row);
  }
}

Expected<ExecuteResult> Database::ExecuteSystem(crackdb::Query query) {
  const SystemSchema* schema = FindSystemSchema(query.table);
  if (schema == nullptr) {
    return QueryError{"unknown system table '" + query.table +
                      "' (available: system.tables, system.partitions, "
                      "system.metrics, system.query_log)"};
  }
  std::string invalid = NormalizeTerminal(query);
  if (invalid.empty()) invalid = ValidateQueryColumns(schema->columns, query);
  if (!invalid.empty()) {
    Metrics().query_errors.Add();
    return QueryError{std::move(invalid)};
  }
  // Materialize the snapshot, then answer from it through a PlainEngine —
  // the snapshot is immutable and query-local, so no locking discipline
  // applies past this point. The snapshot assembly (Stats calls, registry
  // walk) happens before the trace epoch: it is view construction, not
  // query execution.
  Relation snapshot(query.table);
  for (const std::string& column : schema->columns) {
    snapshot.AddColumn(column);
  }
  if (query.table == "system.tables") {
    FillSystemTables(snapshot);
  } else if (query.table == "system.partitions") {
    FillSystemPartitions(snapshot);
  } else if (query.table == "system.metrics") {
    FillSystemMetrics(snapshot);
  } else {
    FillSystemQueryLog(snapshot);
  }
  std::shared_ptr<obs::QueryTrace> trace;
  if (query.trace) trace = std::make_shared<obs::QueryTrace>();
  PlainEngine plain(snapshot);
  ExecuteResult result = plain.Execute(query.spec, query.consume);
  if (trace != nullptr) {
    trace->AddSpan(obs::QueryTrace::kRootSpan, -1, "select[plain]", 0.0,
                   trace->NowMicros());
    trace->SetDuration(obs::QueryTrace::kRootSpan, trace->NowMicros());
    result.trace = std::move(trace);
  }
  Metrics().system_queries.Add();
  // System queries are rare and are themselves the introspection surface,
  // so they bypass the log sampling.
  LogQuery(query.table, query.consume.kind, result, /*always=*/true);
  return result;
}

Expected<ExecuteResult> Database::Execute(crackdb::Query query) {
  if (!query.error.empty()) {
    Metrics().query_errors.Add();
    return QueryError{std::move(query.error)};
  }
  if (IsSystemTable(query.table)) return ExecuteSystem(std::move(query));
  Table* t = FindTableOrNull(query.table);
  if (t == nullptr) {
    Metrics().query_errors.Add();
    return QueryError{"unknown table '" + query.table + "'"};
  }
  std::string invalid = NormalizeTerminal(query);
  if (invalid.empty()) invalid = ValidateQuery(*t, query);
  if (!invalid.empty()) {
    Metrics().query_errors.Add();
    return QueryError{std::move(invalid)};
  }
  t->queries.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<obs::QueryTrace> trace;
  if (query.trace) {
    trace = std::make_shared<obs::QueryTrace>();
    // Admission: everything between the trace epoch and engine entry.
    trace->AddSpan(obs::QueryTrace::kRootSpan, -1, "admission", 0.0,
                   trace->NowMicros());
  }
  ExecuteResult result =
      t->engine->Execute(query.spec, query.consume, trace.get());
  if (trace != nullptr) {
    trace->SetDuration(obs::QueryTrace::kRootSpan, trace->NowMicros());
    result.trace = std::move(trace);
  }
  LogQuery(query.table, query.consume.kind, result);
  NoteOps(*t, 1);
  return result;
}

std::vector<Expected<ExecuteResult>> Database::ExecuteBatch(
    std::span<const crackdb::Query> queries) {
  // Validate everything first, then run one engine batch per table (the
  // batch scheduler groups its sub-queries by partition, so each target
  // partition is locked once per table batch). Results scatter back into
  // query order.
  std::vector<std::optional<QueryError>> errors(queries.size());
  std::vector<std::optional<ExecuteResult>> executed(queries.size());
  struct TableBatch {
    Table* table;
    std::string name;
    std::vector<size_t> indexes;
    std::vector<QuerySpec> specs;
    std::vector<ConsumeSpec> consumes;
    std::vector<std::shared_ptr<obs::QueryTrace>> traces;
    bool any_traced = false;
  };
  std::vector<TableBatch> batches;
  for (size_t i = 0; i < queries.size(); ++i) {
    crackdb::Query query = queries[i];
    if (!query.error.empty()) {
      Metrics().query_errors.Add();
      errors[i] = QueryError{std::move(query.error)};
      continue;
    }
    if (IsSystemTable(query.table)) {
      // System tables answer from per-query snapshots; there is nothing
      // to batch, so they run inline in batch order.
      Expected<ExecuteResult> r = ExecuteSystem(std::move(query));
      if (r.ok()) {
        executed[i] = std::move(r.value());
      } else {
        errors[i] = QueryError{r.error()};
      }
      continue;
    }
    Table* t = FindTableOrNull(query.table);
    if (t == nullptr) {
      Metrics().query_errors.Add();
      errors[i] = QueryError{"unknown table '" + query.table + "'"};
      continue;
    }
    std::string invalid = NormalizeTerminal(query);
    if (invalid.empty()) invalid = ValidateQuery(*t, query);
    if (!invalid.empty()) {
      Metrics().query_errors.Add();
      errors[i] = QueryError{std::move(invalid)};
      continue;
    }
    TableBatch* batch = nullptr;
    for (TableBatch& existing : batches) {
      if (existing.table == t) {
        batch = &existing;
        break;
      }
    }
    if (batch == nullptr) {
      batches.push_back({t, query.table, {}, {}, {}, {}, false});
      batch = &batches.back();
    }
    batch->indexes.push_back(i);
    batch->specs.push_back(std::move(query.spec));
    batch->consumes.push_back(std::move(query.consume));
    if (query.trace) {
      batch->traces.push_back(std::make_shared<obs::QueryTrace>());
      batch->any_traced = true;
    } else {
      batch->traces.push_back(nullptr);
    }
  }

  for (TableBatch& batch : batches) {
    batch.table->queries.fetch_add(batch.specs.size(),
                                   std::memory_order_relaxed);
    std::vector<obs::QueryTrace*> trace_ptrs;
    if (batch.any_traced) {
      trace_ptrs.reserve(batch.traces.size());
      for (const std::shared_ptr<obs::QueryTrace>& tr : batch.traces) {
        if (tr != nullptr) {
          // Admission for a batched query: validation plus its wait for
          // the batch to assemble and dispatch.
          tr->AddSpan(obs::QueryTrace::kRootSpan, -1, "admission", 0.0,
                      tr->NowMicros());
        }
        trace_ptrs.push_back(tr.get());
      }
    }
    std::vector<ExecuteResult> results = batch.table->engine->ExecuteMany(
        batch.specs, batch.consumes,
        batch.any_traced ? std::span<obs::QueryTrace* const>(trace_ptrs)
                         : std::span<obs::QueryTrace* const>{});
    for (size_t j = 0; j < batch.indexes.size(); ++j) {
      if (batch.traces[j] != nullptr) {
        batch.traces[j]->SetDuration(obs::QueryTrace::kRootSpan,
                                     batch.traces[j]->NowMicros());
        results[j].trace = batch.traces[j];
      }
      LogQuery(batch.name, batch.consumes[j].kind, results[j]);
      executed[batch.indexes[j]] = std::move(results[j]);
    }
    NoteOps(*batch.table, batch.specs.size());
  }

  std::vector<Expected<ExecuteResult>> out;
  out.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (errors[i].has_value()) {
      out.push_back(std::move(*errors[i]));
    } else {
      out.push_back(std::move(*executed[i]));
    }
  }
  return out;
}

QueryResult Database::Query(const std::string& table, const QuerySpec& spec) {
  Table& t = FindTable(table);
  t.queries.fetch_add(1, std::memory_order_relaxed);
  // No table-level lock: the sharded engine locks partition by partition
  // and merges outside the locks. Run is the batch pipeline with one spec.
  QueryResult result = t.engine->Run(spec);
  NoteOps(t, 1);
  return result;
}

std::future<QueryResult> Database::QueryAsync(const std::string& table,
                                              QuerySpec spec) {
  Table& t = FindTable(table);
  t.queries.fetch_add(1, std::memory_order_relaxed);
  // Compute the affinity key before the task construction moves the spec
  // away.
  const size_t home = t.engine->HomePartition(spec);
  auto task = std::make_shared<std::packaged_task<QueryResult()>>(
      [&t, spec = std::move(spec)] { return t.engine->Run(spec); });
  std::future<QueryResult> future = task->get_future();
  if (pool_ == nullptr) {
    (*task)();
    NoteOps(t, 1);
    return future;
  }
  // Schedule the whole query next to its data: the home partition's index
  // is the affinity key. Inside the worker, Run detects it must not block
  // on the pool and executes its partition groups inline.
  pool_->Submit(home, [task] { (*task)(); });
  NoteOps(t, 1);
  return future;
}

std::vector<QueryResult> Database::QueryBatch(
    const std::string& table, std::span<const QuerySpec> specs) {
  Table& t = FindTable(table);
  t.queries.fetch_add(specs.size(), std::memory_order_relaxed);
  std::vector<QueryResult> results = t.engine->RunBatch(specs);
  NoteOps(t, specs.size());
  return results;
}

void Database::ApplyViews(Table& t, std::span<const WriteView> ops,
                          WriteOutcome* outcomes) {
  if (ops.empty()) return;
  {
    // The partition map must be stable for the whole commit (routing,
    // mutexes, and the global-key router all live in it); writers enter
    // the gate as ordinary (non-urgent) readers — they run on client
    // threads and may wait out a pending swap.
    RwGate::SharedGuard map_guard(t.relation.map_gate());
    // One writer_mu acquisition commits the whole batch. Ops apply
    // strictly in order (so keys and delete outcomes match the one-op
    // loop); the partition lock is held across consecutive ops on the
    // same partition and re-acquired only on a switch, so clustered
    // batches amortize it.
    std::unique_lock<std::shared_mutex> writer(t.writer_mu);
    std::unique_lock<std::shared_mutex> partition;
    size_t locked = t.relation.num_partitions();  // sentinel: none held
    uint64_t inserts = 0, deletes = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      const WriteView& op = ops[i];
      size_t target;
      if (op.kind == WriteOp::Kind::kInsert) {
        target =
            t.relation.PartitionOf(op.values[t.relation.organizing_ordinal()]);
      } else {
        const std::optional<PartitionedRelation::Location> loc =
            t.relation.Locate(op.key);
        if (!loc.has_value()) continue;  // outcome stays {false, kInvalidKey}
        target = loc->partition;
      }
      if (target != locked) {
        if (partition.owns_lock()) partition.unlock();
        partition = std::unique_lock<std::shared_mutex>(
            t.relation.partition_mutex(target));
        locked = target;
      }
      // Writes land in raw partitions only: the encoded layouts are
      // immutable and tombstone-blind, so a write to a compressed
      // partition materializes it back to raw first. Its engine stayed
      // valid across the compressed phase (stamped fresh at compress
      // time); it absorbs this write lazily like any other.
      {
        const Relation& part = t.relation.partition(target);
        if (part.compressed()) {
          part.Decompress();
          t.decompressions.fetch_add(1, std::memory_order_relaxed);
          Metrics().write_decompress.Add();
        }
      }
      if (op.kind == WriteOp::Kind::kInsert) {
        outcomes[i] = {true, t.relation.AppendTo(target, op.values)};
        ++inserts;
      } else if (t.relation.Delete(op.key)) {
        outcomes[i] = {true, op.key};
        ++deletes;
      }
    }
    if (inserts > 0) t.inserts.fetch_add(inserts, std::memory_order_relaxed);
    if (deletes > 0) t.deletes.fetch_add(deletes, std::memory_order_relaxed);
    if (inserts + deletes > 0) {
      Metrics().writes.Add(static_cast<double>(inserts + deletes));
    }
  }
  // Outside every lock: a crossed trigger boundary may spawn a tick
  // thread, which re-enters the gate on its own.
  NoteOps(t, ops.size());
}

std::vector<WriteOutcome> Database::ApplyBatch(const std::string& table,
                                               std::span<const WriteOp> ops) {
  Table& t = FindTable(table);
  std::vector<WriteOutcome> outcomes(ops.size());
  std::vector<WriteView> views;
  views.reserve(ops.size());
  for (const WriteOp& op : ops) {
    views.push_back({op.kind, op.values, op.key});
  }
  ApplyViews(t, views, outcomes.data());
  return outcomes;
}

Key Database::Insert(const std::string& table, std::span<const Value> values) {
  const WriteView view{WriteOp::Kind::kInsert, values, kInvalidKey};
  WriteOutcome outcome;
  ApplyViews(FindTable(table), {&view, 1}, &outcome);
  return outcome.key;
}

bool Database::Delete(const std::string& table, Key global_key) {
  const WriteView view{WriteOp::Kind::kDelete, {}, global_key};
  WriteOutcome outcome;
  ApplyViews(FindTable(table), {&view, 1}, &outcome);
  return outcome.ok;
}

namespace {

/// Clears the tick-in-flight flag on every exit path: an exception
/// escaping a tick (e.g. bad_alloc building a shard engine) must not
/// permanently disable adaptivity for the table.
struct TickFlagClearer {
  std::atomic<bool>& flag;
  ~TickFlagClearer() { flag.store(false); }
};

}  // namespace

bool Database::MaybeRepartition(const std::string& table) {
  Table& t = FindTable(table);
  if (!t.adaptive.enabled || t.histogram == nullptr) return false;
  // At most one tick in flight per table, manual or background.
  if (t.tick_in_flight.exchange(true)) return false;
  TickFlagClearer clearer{t.tick_in_flight};
  return RunTick(t);
}

void Database::NoteOps(Table& t, size_t n) {
  if (n == 0 || !t.adaptive.enabled || t.histogram == nullptr ||
      t.adaptive.trigger_interval == 0) {
    return;
  }
  const uint64_t interval = t.adaptive.trigger_interval;
  const uint64_t before = t.ops_seen.fetch_add(n, std::memory_order_relaxed);
  if (before / interval == (before + n) / interval) return;  // no boundary
  if (t.tick_in_flight.exchange(true)) return;
  std::lock_guard<std::mutex> lock(t.tick_thread_mu);
  // The previous tick thread (if any) observedly finished: it cleared
  // tick_in_flight before exiting, so this join returns immediately.
  if (t.tick_thread.joinable()) t.tick_thread.join();
  t.tick_thread = std::thread([this, &t] {
    TickFlagClearer clearer{t.tick_in_flight};
    RunTick(t);
  });
}

bool Database::RunTick(Table& t) {
  Metrics().ticks.Add();
  // Sensor -> decision inputs. Covers and row counts are read under the
  // gate (shared) + per-partition shared locks, like Stats; the histogram
  // snapshot tolerates concurrent recorders.
  WorkloadHistogram::Snapshot snap = t.histogram->Snap();
  std::vector<RepartitionPolicy::PartitionInput> inputs;
  size_t before_bytes = 0;
  {
    RwGate::SharedGuard gate(t.relation.map_gate());
    const size_t n = t.relation.num_partitions();
    inputs.resize(n);
    for (size_t i = 0; i < n; ++i) {
      std::shared_lock<std::shared_mutex> lock(t.relation.partition_mutex(i));
      const Relation& part = t.relation.partition(i);
      before_bytes += part.resident_column_bytes();
      inputs[i].live_rows = part.num_live_rows();
      inputs[i].cover_lo = t.relation.SliceCoverLo(i);
      inputs[i].cover_hi = t.relation.SliceCoverHi(i);
      if (t.adaptive.compression.enabled) {
        inputs[i].compressed = part.compressed();
        inputs[i].compressible =
            !inputs[i].compressed && part.num_deleted() == 0;
      }
      if (i < snap.partitions.size()) {
        inputs[i].accesses = snap.partitions[i].accesses;
        inputs[i].split_candidates = std::move(snap.partitions[i].boundaries);
      }
    }
  }
  const RepartitionDecision decision = t.policy->Tick(inputs);
  t.histogram->Decay(t.adaptive.decay);
  if (decision.kind == RepartitionDecision::Kind::kNone) return false;

  Repartitioner::Hooks hooks;
  hooks.relation = &t.relation;
  hooks.engine = t.engine.get();
  hooks.histogram = t.histogram.get();
  hooks.pool = pool_.get();
  hooks.create_relation = [this](const std::string& name) -> Relation& {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    return catalog_.CreateRelation(name);
  };
  hooks.drop_relation = [this](const std::string& name) {
    std::unique_lock<std::shared_mutex> lock(tables_mu_);
    catalog_.DropRelation(name);
  };
  hooks.compression = t.adaptive.compression;
  Repartitioner repartitioner(std::move(hooks));
  if (!repartitioner.Execute(decision)) return false;
  t.policy->NoteExecuted(decision);
  switch (decision.kind) {
    case RepartitionDecision::Kind::kSplit:
      t.splits.fetch_add(1, std::memory_order_relaxed);
      Metrics().splits.Add();
      break;
    case RepartitionDecision::Kind::kMerge:
      t.merges.fetch_add(1, std::memory_order_relaxed);
      Metrics().merges.Add();
      break;
    case RepartitionDecision::Kind::kCompress:
      t.compressions.fetch_add(1, std::memory_order_relaxed);
      Metrics().compressions.Add();
      break;
    case RepartitionDecision::Kind::kDecompress:
      t.decompressions.fetch_add(1, std::memory_order_relaxed);
      Metrics().decompressions.Add();
      break;
    case RepartitionDecision::Kind::kNone:
      break;
  }
  // Footprint around the executed action, read like Stats reads layouts
  // (gate shared + per-partition shared locks). Gauges, not counters: the
  // pair answers "what did the last layout action do to the table".
  if (obs::MetricsEnabled()) {
    size_t after_bytes = 0;
    RwGate::SharedGuard gate(t.relation.map_gate());
    for (size_t i = 0; i < t.relation.num_partitions(); ++i) {
      std::shared_lock<std::shared_mutex> lock(t.relation.partition_mutex(i));
      after_bytes += t.relation.partition(i).resident_column_bytes();
    }
    Metrics().footprint_before.Set(static_cast<double>(before_bytes));
    Metrics().footprint_after.Set(static_cast<double>(after_bytes));
  }
  return true;
}

TableStats Database::Stats(const std::string& table) const {
  Table& t = FindTable(table);
  TableStats stats;
  {
    RwGate::SharedGuard gate(t.relation.map_gate());
    // Under the gate the histogram's partition count is stable and
    // matches the map (a swap resets it under the gate held exclusively).
    // Counters only: Stats never reads the boundary sketches.
    WorkloadHistogram::Snapshot hist;
    if (t.histogram != nullptr) {
      hist = t.histogram->Snap(/*with_boundaries=*/false);
    }
    stats.partitions = t.relation.num_partitions();
    const bool range = t.relation.spec().kind == PartitionSpec::Kind::kRange;
    stats.per_partition.resize(stats.partitions);
    for (size_t i = 0; i < stats.partitions; ++i) {
      // Shared: consistent per-partition snapshot that excludes writers
      // and cracking readers but runs concurrently with other snapshots.
      // Also excludes ResetPartitionEngine (exclusive), so the engine
      // name reads below never race a compression-layer engine swap.
      std::shared_lock<std::shared_mutex> lock(t.relation.partition_mutex(i));
      if (i == 0) stats.engine = t.engine->name();
      const Relation& part = t.relation.partition(i);
      PartitionStats& ps = stats.per_partition[i];
      ps.rows = part.num_rows();
      ps.live_rows = part.num_live_rows();
      ps.deleted = part.num_deleted();
      ps.engine = t.engine->partition_engine(i).name();
      ps.codec = part.CodecSummary();
      ps.resident_bytes = part.resident_column_bytes();
      if (range) {
        ps.cover_lo = t.relation.SliceCoverLo(i);
        ps.cover_hi = t.relation.SliceCoverHi(i);
      }
      if (i < hist.partitions.size()) {
        ps.accesses = hist.partitions[i].accesses;
        ps.access_micros = hist.partitions[i].micros;
      }
      stats.rows += ps.rows;
      stats.live_rows += ps.live_rows;
      stats.deleted += ps.deleted;
      stats.resident_column_bytes += ps.resident_bytes;
      if (part.compressed()) ++stats.compressed_partitions;
    }
  }
  stats.queries = t.queries.load(std::memory_order_relaxed);
  stats.inserts = t.inserts.load(std::memory_order_relaxed);
  stats.deletes = t.deletes.load(std::memory_order_relaxed);
  stats.splits = t.splits.load(std::memory_order_relaxed);
  stats.merges = t.merges.load(std::memory_order_relaxed);
  stats.compressions = t.compressions.load(std::memory_order_relaxed);
  stats.decompressions = t.decompressions.load(std::memory_order_relaxed) +
                         t.engine->crack_decompressions();
  stats.encoded_queries = t.engine->encoded_queries();
  stats.bytes_per_row =
      stats.rows == 0 ? 0.0
                      : static_cast<double>(stats.resident_column_bytes) /
                            static_cast<double>(stats.rows);
  stats.cost = t.engine->CostSnapshot();
  return stats;
}

std::vector<std::string> Database::table_names() const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

ShardedEngine& Database::engine(const std::string& table) {
  return *FindTable(table).engine;
}

PartitionedRelation& Database::partitions(const std::string& table) {
  return FindTable(table).relation;
}

Database::Table& Database::FindTable(const std::string& table) const {
  Table* t = FindTableOrNull(table);
  if (t == nullptr) Die("unknown table", table);
  return *t;
}

Database::Table* Database::FindTableOrNull(const std::string& table) const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.get();
}

}  // namespace crackdb
