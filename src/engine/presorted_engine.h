#ifndef CRACKDB_ENGINE_PRESORTED_ENGINE_H_
#define CRACKDB_ENGINE_PRESORTED_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "storage/relation.h"

namespace crackdb {

/// The "presorted MonetDB" baseline (paper Sections 1, 3.6): one full copy
/// of the relation per selection attribute, physically re-clustered on
/// that attribute. Selections are binary searches yielding a contiguous
/// row range; reconstructions read the copy's columns inside that range —
/// the ultimate access pattern sideways cracking converges to, bought with
/// a heavy presorting step (charged to CostBreakdown::prepare_micros, as
/// the paper reports presorting cost separately) and with no update story.
class PresortedEngine : public Engine {
 public:
  explicit PresortedEngine(const Relation& relation) : relation_(&relation) {}

  std::string name() const override { return "presorted"; }

  std::unique_ptr<SelectionHandle> Select(const QuerySpec& spec) override;

  /// Eagerly builds the copy clustered on `attr` (experiments call this to
  /// front-load preparation; otherwise copies appear on first use).
  void Prepare(const std::string& attr);

  /// Bytes-free metric: number of copies currently materialized.
  size_t num_copies() const { return copies_.size(); }

 private:
  /// A relation copy clustered on `sorted_attr`: every column permuted the
  /// same way, so positions align within the copy. `log_version` is the
  /// relation update-log version the copy reflects; updates force a full
  /// rebuild — the paper's point that there is no efficient way to
  /// maintain multiple sorted copies under updates (Section 3.6, Exp6).
  struct SortedCopy {
    std::string sorted_attr;
    std::vector<std::vector<Value>> columns;  // by relation column ordinal
    const std::vector<Value>* sorted_column = nullptr;
    size_t log_version = 0;
  };

  SortedCopy& GetOrCreate(const std::string& attr);

  const Relation* relation_;
  std::map<std::string, SortedCopy> copies_;
};

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_PRESORTED_ENGINE_H_
