#ifndef CRACKDB_ENGINE_REORDER_H_
#define CRACKDB_ENGINE_REORDER_H_

#include <vector>

#include "common/types.h"
#include "storage/column.h"

namespace crackdb {

/// Intermediate-result reordering strategies for tuple reconstruction over
/// unordered key lists — the paper's Exp3. Selection cracking produces
/// cracked-order keys; before reconstructing k attributes one can:
///   - do nothing (random access per reconstruction),
///   - sort the keys once (every reconstruction becomes in-order), or
///   - radix-cluster the keys into cache-sized base-column regions
///     (the cache-friendly middle ground of [10], "Cache-Conscious
///     Radix-Decluster Projections").

/// Random-access reconstruction, keys as-is.
std::vector<Value> ReconstructUnordered(const Column& base,
                                        const std::vector<Key>& keys);

/// Sorts `keys` ascending (in place) so subsequent reconstructions are
/// sequential. Returns the reconstruction for `base`.
std::vector<Value> ReconstructViaSort(const Column& base,
                                      std::vector<Key>* keys);

/// Partitions `keys` (in place, stable within partitions) such that each
/// partition addresses a contiguous base region of at most 2^`region_bits`
/// positions, then reconstructs partition by partition: random access
/// confined to a cache-resident region.
std::vector<Value> ReconstructViaRadixCluster(const Column& base,
                                              std::vector<Key>* keys,
                                              unsigned region_bits);

/// The clustering step alone (exposed for reuse and tests): reorders keys
/// by their high bits with a counting sort.
void RadixClusterKeys(std::vector<Key>* keys, unsigned region_bits,
                      size_t domain_size);

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_REORDER_H_
