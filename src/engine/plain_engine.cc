#include "engine/plain_engine.h"

#include <algorithm>

#include "engine/group_table.h"
#include "engine/query.h"
#include "kernels/kernels.h"

namespace crackdb {

namespace {

class PlainHandle : public SelectionHandle {
 public:
  PlainHandle(const Relation& relation, std::vector<Key> keys)
      : relation_(&relation), keys_(std::move(keys)) {}

  size_t NumRows() override { return keys_.size(); }

  std::vector<Value> Fetch(const std::string& attr) override {
    // keys_ ascend (order-preserving select), so this is the sequential
    // in-order positional gather of late tuple reconstruction.
    return relation_->column(attr).Reconstruct(keys_);
  }

  std::vector<Value> FetchAt(const std::string& attr,
                             std::span<const uint32_t> ordinals) override {
    const Column& column = relation_->column(attr);
    std::vector<Value> out;
    out.reserve(ordinals.size());
    // Post-join order: scattered lookups over the whole base column.
    for (uint32_t ord : ordinals) out.push_back(column[keys_[ord]]);
    return out;
  }

  ConsumeOutcome Consume(const ConsumeSpec& consume,
                         std::span<const std::string> projections) override {
    // Fast path: fold straight off the base column through the key list —
    // the default would first materialize the gather into a temp vector.
    if (consume.kind == ConsumeKind::kAggregate) {
      const Column& column = relation_->column(consume.attr);
      ConsumeOutcome out;
      out.count = keys_.size();
      kernels::FoldGather(ToFoldOp(consume.op), column.values().data(),
                          keys_.data(), keys_.size(), &out.aggregate,
                          &out.aggregate_valid);
      return out;
    }
    if (consume.kind == ConsumeKind::kGroupBy) {
      // Grouped fast path: the id pass and the grouped folds all gather
      // straight off the base columns through the key list.
      GroupAccumulator acc(consume);
      std::vector<const Value*> columns;
      columns.reserve(consume.group_aggs.size());
      for (const GroupAggregate& agg : consume.group_aggs) {
        columns.push_back(agg.op == AggregateOp::kCount
                              ? nullptr
                              : relation_->column(agg.attr).values().data());
      }
      acc.AddChunk(relation_->column(consume.group_attr).values().data(),
                   keys_.data(), keys_.size(), columns);
      ConsumeOutcome out;
      out.count = keys_.size();
      out.groups = acc.Take();
      return out;
    }
    return SelectionHandle::Consume(consume, projections);
  }

 private:
  const Relation* relation_;
  std::vector<Key> keys_;
};

}  // namespace

std::unique_ptr<SelectionHandle> PlainEngine::Select(const QuerySpec& spec) {
  const std::vector<bool>* deleted =
      relation_->num_deleted() > 0 ? &relation_->deleted() : nullptr;
  std::vector<Key> keys;
  if (spec.selections.empty()) {
    keys.reserve(relation_->num_live_rows());
    for (size_t i = 0; i < relation_->num_rows(); ++i) {
      if (deleted != nullptr && (*deleted)[i]) continue;
      keys.push_back(static_cast<Key>(i));
    }
  } else if (!spec.disjunctive) {
    keys = relation_->column(spec.selections[0].attr)
               .Select(spec.selections[0].pred, deleted);
    for (size_t s = 1; s < spec.selections.size(); ++s) {
      const Column& column = relation_->column(spec.selections[s].attr);
      const RangePredicate& pred = spec.selections[s].pred;
      // Kernel gather + test: refines the ascending key list in place.
      std::vector<Key> refined;
      kernels::FilterKeys(column.values().data(), keys.data(), keys.size(),
                          pred, &refined);
      keys = std::move(refined);
    }
  } else {
    // Disjunction: per-attribute scans, then a sorted merge-union of the
    // (already ascending) key lists.
    std::vector<std::vector<Key>> lists;
    lists.reserve(spec.selections.size());
    for (const QuerySpec::Selection& sel : spec.selections) {
      lists.push_back(relation_->column(sel.attr).Select(sel.pred, deleted));
    }
    for (const std::vector<Key>& list : lists) {
      std::vector<Key> merged;
      merged.reserve(keys.size() + list.size());
      std::set_union(keys.begin(), keys.end(), list.begin(), list.end(),
                     std::back_inserter(merged));
      keys = std::move(merged);
    }
  }
  return std::make_unique<PlainHandle>(*relation_, std::move(keys));
}

}  // namespace crackdb
