#include "engine/engine.h"

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "engine/group_table.h"
#include "engine/query.h"

namespace crackdb {

ConsumeOutcome SelectionHandle::Consume(
    const ConsumeSpec& consume, std::span<const std::string> projections) {
  ConsumeOutcome out;
  switch (consume.kind) {
    case ConsumeKind::kCount:
      out.count = NumRows();
      return out;
    case ConsumeKind::kAggregate: {
      // FetchView folds straight off the engine's own storage wherever a
      // contiguous view exists (sideways maps, presorted copies, chunk
      // materializations); scattered engines override Consume instead.
      std::vector<Value> storage;
      const std::span<const Value> view = FetchView(consume.attr, &storage);
      out.count = NumRows();
      FoldSpan(consume.op, view, &out.aggregate, &out.aggregate_valid);
      return out;
    }
    case ConsumeKind::kForEach: {
      std::vector<std::vector<Value>> storages(projections.size());
      std::vector<std::span<const Value>> views;
      views.reserve(projections.size());
      for (size_t c = 0; c < projections.size(); ++c) {
        views.push_back(FetchView(projections[c], &storages[c]));
      }
      const size_t rows = NumRows();
      std::vector<Value> row(projections.size());
      for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < views.size(); ++c) row[c] = views[c][r];
        consume.visitor(row);
      }
      out.count = rows;
      return out;
    }
    case ConsumeKind::kGroupBy: {
      // Same view-based shape as kAggregate: the group key and each
      // folded attribute come through FetchView (zero-copy on sideways
      // maps and presorted copies — for sideways the key and aggregates
      // are exactly an aligned cracker-map pair), then one dispatched
      // grouped fold per value aggregate. Scattered engines override
      // Consume and fold in place instead.
      GroupAccumulator acc(consume);
      const size_t num_aggs = consume.group_aggs.size();
      std::vector<Value> group_storage;
      const std::span<const Value> group_view =
          FetchView(consume.group_attr, &group_storage);
      std::vector<std::vector<Value>> storages(num_aggs);
      std::vector<std::span<const Value>> views(num_aggs);
      std::vector<const Value*> columns(num_aggs, nullptr);
      for (size_t a = 0; a < num_aggs; ++a) {
        const GroupAggregate& agg = consume.group_aggs[a];
        if (agg.op == AggregateOp::kCount) continue;  // no values fetched
        // Duplicate-aggregate-attr case: fetch each attribute once.
        for (size_t b = 0; b < a; ++b) {
          if (columns[b] != nullptr && consume.group_aggs[b].attr == agg.attr) {
            columns[a] = columns[b];
            break;
          }
        }
        if (columns[a] == nullptr) {
          views[a] = FetchView(agg.attr, &storages[a]);
          columns[a] = views[a].data();
        }
      }
      acc.AddChunk(group_view.data(), nullptr, group_view.size(), columns);
      out.count = NumRows();
      out.groups = acc.Take();
      return out;
    }
    case ConsumeKind::kMaterialize:
      break;
  }
  // Materialization is Engine::Execute's own path (it owns the result and
  // the cost attribution); reaching Consume with it is a caller bug.
  std::fprintf(stderr,
               "SelectionHandle::Consume called with kMaterialize; "
               "use Engine::Execute or Run\n");
  std::abort();
}

QueryResult Engine::Run(const QuerySpec& spec) {
  return std::move(Execute(spec, ConsumeSpec::Materialize()).rows);
}

ExecuteResult Engine::Execute(const QuerySpec& spec,
                              const ConsumeSpec& consume) {
  ExecuteResult result;
  result.kind = consume.kind;
  const double prepare_before = cost_.prepare_micros;

  Timer select_timer;
  std::unique_ptr<SelectionHandle> handle = Select(spec);
  const double select_elapsed = select_timer.ElapsedMicros();
  result.cost.prepare_micros = cost_.prepare_micros - prepare_before;
  result.cost.select_micros = select_elapsed;
  cost_.select_micros += select_elapsed;

  switch (consume.kind) {
    case ConsumeKind::kMaterialize: {
      Timer tr_timer;
      result.rows.columns.reserve(spec.projections.size());
      for (const std::string& attr : spec.projections) {
        result.rows.columns.push_back(handle->Fetch(attr));
      }
      result.rows.num_rows = handle->NumRows();
      result.count = result.rows.num_rows;
      const double tr_elapsed = tr_timer.ElapsedMicros();
      result.cost.reconstruct_micros = tr_elapsed;
      cost_.reconstruct_micros += tr_elapsed;
      break;
    }
    case ConsumeKind::kCount:
    case ConsumeKind::kAggregate:
    case ConsumeKind::kGroupBy: {
      // Scalar and grouped terminals: no tuple is reconstructed, so the
      // fold (and the grouped finalize) is selection-side work and
      // reconstruct_micros stays exactly 0.
      Timer fold_timer;
      ConsumeOutcome out = handle->Consume(consume, spec.projections);
      result.count = out.count;
      result.aggregate = out.aggregate;
      result.aggregate_valid = out.aggregate_valid;
      if (consume.kind == ConsumeKind::kGroupBy) {
        result.groups = FinalizeGrouped(consume, std::move(out.groups));
      }
      const double fold_elapsed = fold_timer.ElapsedMicros();
      result.cost.select_micros += fold_elapsed;
      cost_.select_micros += fold_elapsed;
      break;
    }
    case ConsumeKind::kForEach: {
      // Streaming still delivers real tuples (that is reconstruction);
      // what it skips is the materialized copy of the result.
      Timer visit_timer;
      const ConsumeOutcome out = handle->Consume(consume, spec.projections);
      result.count = out.count;
      const double visit_elapsed = visit_timer.ElapsedMicros();
      result.cost.reconstruct_micros = visit_elapsed;
      cost_.reconstruct_micros += visit_elapsed;
      break;
    }
  }
  return result;
}

}  // namespace crackdb
