#include "engine/engine.h"

#include "common/timer.h"

namespace crackdb {

QueryResult Engine::Run(const QuerySpec& spec) {
  QueryResult result;
  Timer select_timer;
  std::unique_ptr<SelectionHandle> handle = Select(spec);
  cost_.select_micros += select_timer.ElapsedMicros();

  Timer tr_timer;
  result.columns.reserve(spec.projections.size());
  for (const std::string& attr : spec.projections) {
    result.columns.push_back(handle->Fetch(attr));
  }
  result.num_rows = handle->NumRows();
  cost_.reconstruct_micros += tr_timer.ElapsedMicros();
  return result;
}

}  // namespace crackdb
