#ifndef CRACKDB_ENGINE_QUERY_H_
#define CRACKDB_ENGINE_QUERY_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "engine/engine.h"
#include "kernels/kernels.h"
#include "obs/trace.h"

namespace crackdb {

class Database;

/// The fluent query surface: a `QueryBuilder` compiles to the engine
/// layer's `QuerySpec` plus a `ConsumeSpec` describing *how* the result is
/// consumed. The consumption mode is what the paper's cost model calls the
/// tuple-reconstruction side of a query — declaring it up front lets the
/// engine skip reconstruction where it is skippable: a `Count()` never
/// fetches a single attribute value, an `Aggregate()` folds values where
/// they live instead of materializing them, and under the sharded layer
/// both merge *scalars* across partitions instead of row vectors.

/// How a query's qualifying tuples are consumed.
enum class ConsumeKind {
  /// Today's behavior: every projected attribute is materialized into a
  /// QueryResult (full tuple reconstruction + cross-partition row merge).
  kMaterialize,
  /// Only the number of qualifying tuples; no attribute is ever fetched
  /// and no tuple data crosses a partition merge.
  kCount,
  /// One scalar fold (sum/min/max) over a single attribute, pushed below
  /// the partition merge: partitions fold locally, the merge combines
  /// scalars.
  kAggregate,
  /// Stream every qualifying row through a visitor without building the
  /// merged result: per-partition columns are visited in partition order
  /// (sequentially, on the calling thread) and never concatenated.
  kForEach,
  /// Grouped aggregation: per-group folds keyed by one group attribute,
  /// pushed below the partition merge exactly like kAggregate — partitions
  /// build local hash tables under their own locks, the merge combines
  /// partial tables on the caller thread, and no tuple is reconstructed.
  kGroupBy,
};

/// kCount is grouped-only (per-group cardinality via
/// GroupBy().Aggregate(kCount, ...)); a scalar cardinality query is
/// Count(), and the builder rejects kCount in scalar position.
enum class AggregateOp { kSum, kMin, kMax, kCount };

/// One per-group aggregate of a grouped query: the fold op plus the
/// attribute it folds. kCount never fetches a value; its attribute is a
/// placeholder that must still name an existing column (and, like every
/// aggregate attribute, must not duplicate the group key).
struct GroupAggregate {
  AggregateOp op = AggregateOp::kSum;
  std::string attr;
};

/// Columnar result of a grouped aggregation: one entry per group. Inside
/// the engines this is an *unordered partial* (hash-table emission order);
/// the finalized ExecuteResult table is sorted by group key ascending so
/// answers compare across engines and partitionings regardless of row
/// order. `aggregates[a]` parallels ConsumeSpec::group_aggs[a]; kCount
/// columns are filled from `counts` at finalize time.
struct GroupedTable {
  std::vector<Value> keys;
  std::vector<uint64_t> counts;
  std::vector<std::vector<Value>> aggregates;

  size_t num_groups() const { return keys.size(); }
};

/// Receives one qualifying row; values align with the query's projections.
/// The span is only valid for the duration of the call.
using RowVisitor = std::function<void(std::span<const Value> row)>;

/// The terminal of a query: which ConsumeKind, plus its parameters.
struct ConsumeSpec {
  ConsumeKind kind = ConsumeKind::kMaterialize;
  AggregateOp op = AggregateOp::kSum;      // kAggregate
  std::string attr;                        // kAggregate: the folded attribute
  RowVisitor visitor;                      // kForEach
  std::string group_attr;                  // kGroupBy: the group key
  std::vector<GroupAggregate> group_aggs;  // kGroupBy: the per-group folds

  static ConsumeSpec Materialize() { return {}; }
  static ConsumeSpec Count() {
    ConsumeSpec c;
    c.kind = ConsumeKind::kCount;
    return c;
  }
  static ConsumeSpec Aggregate(AggregateOp op, std::string attr) {
    ConsumeSpec c;
    c.kind = ConsumeKind::kAggregate;
    c.op = op;
    c.attr = std::move(attr);
    return c;
  }
  static ConsumeSpec ForEach(RowVisitor visitor) {
    ConsumeSpec c;
    c.kind = ConsumeKind::kForEach;
    c.visitor = std::move(visitor);
    return c;
  }
  static ConsumeSpec GroupBy(std::string attr,
                             std::vector<GroupAggregate> aggs) {
    ConsumeSpec c;
    c.kind = ConsumeKind::kGroupBy;
    c.group_attr = std::move(attr);
    c.group_aggs = std::move(aggs);
    return c;
  }
};

/// Scalar outcome of a pushed-down consumption (SelectionHandle::Consume).
struct ConsumeOutcome {
  size_t count = 0;
  Value aggregate = 0;
  /// False iff no qualifying row contributed (min/max are undefined then;
  /// a sum over zero rows reports aggregate == 0 with valid == false).
  bool aggregate_valid = false;
  /// kGroupBy: the unordered partial table (hash emission order); the
  /// executor sorts it (or merges it across shards) into the final table.
  GroupedTable groups;
};

/// Kernel-layer fold op for an AggregateOp. The enums mirror each other;
/// the kernel layer redeclares its own so it stays a leaf below engine/.
inline kernels::FoldOp ToFoldOp(AggregateOp op) {
  switch (op) {
    case AggregateOp::kSum:
      return kernels::FoldOp::kSum;
    case AggregateOp::kMin:
      return kernels::FoldOp::kMin;
    case AggregateOp::kMax:
      return kernels::FoldOp::kMax;
    case AggregateOp::kCount:
      // Grouped-only: counts are tracked by the group accumulator's id
      // pass and never reach a fold kernel.
      break;
  }
  return kernels::FoldOp::kSum;
}

/// Folds one value into a running aggregate. Used for scalar-to-scalar
/// combination (the sharded merge); bulk folds go through the dispatched
/// kernels (contiguous spans and gathers) or FoldIndexed (strided access),
/// which hoist the op dispatch out of the loop so the fold vectorizes.
inline void FoldValue(AggregateOp op, Value v, Value* acc, bool* valid) {
  if (!*valid) {
    *acc = v;
    *valid = true;
    return;
  }
  switch (op) {
    case AggregateOp::kSum:
      // Unsigned add: sums wrap modulo 2^64 (same contract as the kernel
      // arms) instead of overflowing signed.
      *acc = static_cast<Value>(static_cast<uint64_t>(*acc) +
                                static_cast<uint64_t>(v));
      break;
    case AggregateOp::kMin:
      *acc = std::min(*acc, v);
      break;
    case AggregateOp::kMax:
      *acc = std::max(*acc, v);
      break;
    case AggregateOp::kCount:
      break;  // grouped-only; unreachable in scalar folds.
  }
}

/// Op-specialized bulk fold over `n` values addressed by `get(i)`: one
/// tight loop per op (a per-element FoldValue would pay a branch and a
/// switch per value and never vectorize — measurably slower than the
/// materialize-then-fold loop it is meant to beat). Combines into the
/// running (acc, valid) state.
template <typename GetFn>
void FoldIndexed(AggregateOp op, size_t n, GetFn get, Value* acc,
                 bool* valid) {
  if (n == 0) return;
  Value result = get(0);
  switch (op) {
    case AggregateOp::kSum: {
      uint64_t sum = static_cast<uint64_t>(result);
      for (size_t i = 1; i < n; ++i) sum += static_cast<uint64_t>(get(i));
      result = static_cast<Value>(sum);
      break;
    }
    case AggregateOp::kMin:
      for (size_t i = 1; i < n; ++i) result = std::min(result, get(i));
      break;
    case AggregateOp::kMax:
      for (size_t i = 1; i < n; ++i) result = std::max(result, get(i));
      break;
    case AggregateOp::kCount:
      return;  // grouped-only; unreachable in scalar folds.
  }
  FoldValue(op, result, acc, valid);
}

/// Contiguous-view fold through the dispatched kernel arm.
inline void FoldSpan(AggregateOp op, std::span<const Value> values,
                     Value* acc, bool* valid) {
  kernels::FoldSpan(ToFoldOp(op), values.data(), values.size(), acc, valid);
}

/// The tagged result of executing a query with a consumption mode.
struct ExecuteResult {
  ConsumeKind kind = ConsumeKind::kMaterialize;
  /// kMaterialize only; empty otherwise.
  QueryResult rows;
  /// Number of qualifying tuples, filled in every mode.
  size_t count = 0;
  /// kAggregate: the fold result. aggregate_valid is false when no row
  /// qualified (aggregate is 0 then).
  Value aggregate = 0;
  bool aggregate_valid = false;
  /// kGroupBy: the finalized grouped table, sorted by group key ascending.
  GroupedTable groups;
  /// This query's own cost delta. Count/Aggregate/GroupBy queries report
  /// reconstruct_micros == 0: they never reconstruct a tuple.
  CostBreakdown cost;
  /// Partition fan-out under the sharded layer: how many partitions the
  /// query actually ran on, and how many the organizing-attribute pruning
  /// ruled out. Both 0 for unsharded engines.
  size_t partitions_touched = 0;
  size_t partitions_pruned = 0;
  /// The span timeline, present iff the query was built with Trace().
  /// Shared so the query-log ring can retain it after the result dies.
  std::shared_ptr<const obs::QueryTrace> trace;

  /// The rendered span tree (obs::QueryTrace::Format), or a hint to call
  /// Trace() when the query was not traced.
  std::string Explain() const;
};

/// Error half of the Expected<> surface: one human-readable message.
struct QueryError {
  std::string message;
};

/// Aborts with a clear message: Expected::value() was called on an error.
[[noreturn]] void DieOnErrorAccess(const std::string& error);

/// Minimal std::expected stand-in (C++23 is not required by this repo):
/// either a value or a QueryError. `value()`/`operator*` die loudly when
/// called on an error — check `ok()` first.
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)), ok_(true) {}  // NOLINT
  Expected(QueryError error)                                  // NOLINT
      : error_(std::move(error.message)) {}

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

  const std::string& error() const { return error_; }

  T& value() {
    CheckOk();
    return value_;
  }
  const T& value() const {
    CheckOk();
    return value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!ok_) DieOnErrorAccess(error_);
  }

  T value_{};
  std::string error_;
  bool ok_ = false;
};

/// A compiled query: the table it targets (for Database::Execute), the
/// engine-layer spec, the consumption terminal, and the first validation
/// error the builder recorded (empty = valid so far; attribute/table
/// existence is checked by Database::Execute, which knows the schema).
struct Query {
  std::string table;
  QuerySpec spec;
  ConsumeSpec consume;
  std::string error;
  /// Record a span timeline for this query (QueryBuilder::Trace()).
  bool trace = false;
};

/// Fluent builder over QuerySpec + ConsumeSpec:
///
///   db.From("t").Where("a", lo, hi).Project("b", "c").Execute();
///   db.From("t").Where("a", lo, hi).Count().Execute();
///   db.From("t").Where("a", lo, hi)
///       .Aggregate(AggregateOp::kSum, "b").Execute();
///   db.From("t").Where("a", lo, hi).GroupBy("g")
///       .Aggregate(AggregateOp::kSum, "b")
///       .Aggregate(AggregateOp::kCount, "b").Execute();
///
/// Predicates are validated as they are added (inverted ranges, empty
/// attribute names, mixed Where/OrWhere connectives) and the terminal is
/// validated at Build time (empty projection with Materialize()/ForEach(),
/// aggregate without an attribute); the first error is carried in the
/// compiled Query and surfaced by Database::Execute as an Expected error —
/// nothing asserts deep inside an engine.
///
/// Unbound builders (no Database) compile to a bare QuerySpec via Spec()
/// for code that drives engines directly (the benches); Spec() dies with
/// the recorded message on an invalid build, since such call sites are
/// static code, not user input.
class QueryBuilder {
 public:
  QueryBuilder() = default;
  explicit QueryBuilder(std::string table, Database* db = nullptr)
      : db_(db) {
    q_.table = std::move(table);
  }

  /// Conjunctive range selection [lo, hi] (closed). Most-selective-first
  /// ordering is the caller's discipline, as for raw QuerySpecs.
  QueryBuilder& Where(std::string attr, Value lo, Value hi) {
    return Where(std::move(attr), RangePredicate::Closed(lo, hi));
  }
  QueryBuilder& Where(std::string attr, RangePredicate pred) {
    AddSelection(std::move(attr), pred, /*disjunct=*/false);
    return *this;
  }
  QueryBuilder& WherePoint(std::string attr, Value v) {
    return Where(std::move(attr), RangePredicate::Point(v));
  }

  /// Disjunctive selection: `sel1 OR sel2 OR ...`. The engine layer
  /// evaluates a spec either fully conjunctively or fully disjunctively,
  /// so mixing two-plus Where() with OrWhere() is a validation error.
  QueryBuilder& OrWhere(std::string attr, Value lo, Value hi) {
    return OrWhere(std::move(attr), RangePredicate::Closed(lo, hi));
  }
  QueryBuilder& OrWhere(std::string attr, RangePredicate pred) {
    AddSelection(std::move(attr), pred, /*disjunct=*/true);
    return *this;
  }

  /// Attributes the query returns (tuple reconstructions). Ignored by
  /// Count()/Aggregate(), whose compiled specs declare only what they
  /// touch — that is the pushdown.
  template <typename... Attrs>
  QueryBuilder& Project(Attrs... attrs) {
    (AddProjection(std::string(std::move(attrs))), ...);
    return *this;
  }
  QueryBuilder& Project(std::vector<std::string> attrs) {
    for (std::string& attr : attrs) AddProjection(std::move(attr));
    return *this;
  }

  /// Terminals (last call wins; Materialize() is the default).
  QueryBuilder& Count() {
    q_.consume = ConsumeSpec::Count();
    return *this;
  }
  /// After GroupBy(): appends one per-group fold (kCount|kSum|kMin|kMax)
  /// to the grouped terminal. Otherwise: the scalar fold terminal
  /// (kCount is rejected at Build time in scalar position — use Count()).
  QueryBuilder& Aggregate(AggregateOp op, std::string attr) {
    if (q_.consume.kind == ConsumeKind::kGroupBy) {
      q_.consume.group_aggs.push_back({op, std::move(attr)});
    } else {
      q_.consume = ConsumeSpec::Aggregate(op, std::move(attr));
    }
    return *this;
  }
  /// Grouped terminal: per-group hash aggregation keyed by `attr`. Follow
  /// with one Aggregate() per requested fold. Like every terminal, the
  /// last call wins — a later GroupBy() resets the aggregate list.
  QueryBuilder& GroupBy(std::string attr) {
    q_.consume = ConsumeSpec::GroupBy(std::move(attr), {});
    return *this;
  }
  QueryBuilder& ForEach(RowVisitor visitor) {
    q_.consume = ConsumeSpec::ForEach(std::move(visitor));
    return *this;
  }
  QueryBuilder& Materialize() {
    q_.consume = ConsumeSpec::Materialize();
    return *this;
  }

  /// Opts this query into span recording: the result (and the query-log
  /// entry) carries a QueryTrace whose tree Explain() renders. Orthogonal
  /// to the terminal; costs a handful of mutexed span appends per
  /// partition touched, nothing per row.
  QueryBuilder& Trace() {
    q_.trace = true;
    return *this;
  }

  /// First validation error recorded so far ("" = none).
  const std::string& error() const { return q_.error; }

  /// Compiles the builder into a Query: applies the terminal's projection
  /// pushdown (Count() drops the declared projections entirely —
  /// chunk-wise engines then materialize nothing; Aggregate() declares
  /// exactly its folded attribute) and runs the terminal validations.
  /// Consumes the builder (like Spec and Execute): the fluent chain ends
  /// here, the builder must not be reused afterwards.
  Query Build();

  /// Compiles to a bare QuerySpec for driving an Engine directly.
  /// Dies (with the recorded message) on an invalid build. Consuming.
  QuerySpec Spec();

  /// Executes on the Database this builder was created from
  /// (Database::From); error when the builder is unbound. Consuming.
  Expected<ExecuteResult> Execute();

 private:
  void AddSelection(std::string attr, RangePredicate pred, bool disjunct);
  void AddProjection(std::string attr);
  /// Records the first validation error; later ones are dropped (the
  /// first is almost always the root cause).
  void Fail(std::string message);

  Query q_;
  Database* db_ = nullptr;
  bool mixed_where_ = false;      // a 2nd+ conjunctive Where was used
  bool any_disjunctive_ = false;  // any OrWhere was used
};

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_QUERY_H_
