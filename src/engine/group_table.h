#ifndef CRACKDB_ENGINE_GROUP_TABLE_H_
#define CRACKDB_ENGINE_GROUP_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "engine/query.h"

namespace crackdb {

/// Open-addressing hash aggregation for the kGroupBy consumption mode —
/// the "local aggregate" half of the two-level local-aggregate-then-merge
/// shape. One accumulator lives per partition (built under that
/// partition's lock); the sharded merge combines the partial GroupedTables
/// on the caller thread via Merge(), and FinalizeGrouped() sorts the
/// result by group key so answers compare across engines and
/// partitionings.
///
/// The table is a linear-probe, power-of-two-capacity index from group-key
/// Value to a dense group id; the dense side (keys/counts/accumulator
/// columns) lives in a GroupedTable. The bulk path (AddChunk) assigns ids
/// in one scalar pass, then runs one dispatched `fold_group` kernel per
/// value aggregate — the key-gather + accumulate hot loop.
class GroupAccumulator {
 public:
  /// `consume` must outlive the accumulator (it is borrowed, not copied);
  /// kind must be kGroupBy.
  explicit GroupAccumulator(const ConsumeSpec& consume);

  /// Folds `n` rows whose group keys are `group_vals[keys ? keys[i] : i]`.
  /// `agg_columns` parallels consume.group_aggs: the base pointer each
  /// aggregate folds, addressed by the same `keys` indirection (nullptr
  /// for kCount entries, which fetch no values). Pass keys == nullptr for
  /// already-gathered contiguous views.
  void AddChunk(const Value* group_vals, const Key* keys, size_t n,
                const std::vector<const Value*>& agg_columns);

  /// Row-at-a-time path (row stores): find-or-insert the group, bump its
  /// count, return its dense id for FoldInto().
  uint32_t AddRowKey(Value key);

  /// Folds one value into aggregate column `agg` of group `id`.
  void FoldInto(size_t agg, uint32_t id, Value v);

  /// Merges a partial table produced by another accumulator built from the
  /// same ConsumeSpec (counts add; sums wrap-add; min/max combine).
  void Merge(const GroupedTable& partial);

  /// Extracts the unordered partial table; the accumulator is empty after.
  GroupedTable Take();

  size_t num_groups() const { return table_.keys.size(); }

 private:
  /// Find-or-insert: returns the dense id, creating the group with a zero
  /// count and op-specific initial accumulators on first sight.
  uint32_t IdFor(Value key);
  void Grow();

  const ConsumeSpec* consume_;
  GroupedTable table_;
  /// Slot array of dense ids (UINT32_MAX = empty); capacity is a power of
  /// two, grown at ~0.7 load.
  std::vector<uint32_t> slots_;
  /// Scratch group-id vector reused across AddChunk calls.
  std::vector<uint32_t> group_of_;
};

/// Sorts a partial table by group key ascending and fills kCount aggregate
/// columns from the counts — the finalize step shared by the single-engine
/// executor and the sharded merge.
GroupedTable FinalizeGrouped(const ConsumeSpec& consume, GroupedTable table);

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_GROUP_TABLE_H_
