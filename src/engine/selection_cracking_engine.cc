#include "engine/selection_cracking_engine.h"

#include <algorithm>

#include "engine/group_table.h"
#include "engine/query.h"
#include "kernels/kernels.h"

namespace crackdb {

namespace {

class CrackedKeysHandle : public SelectionHandle {
 public:
  CrackedKeysHandle(const Relation& relation, std::vector<Key> keys)
      : relation_(&relation), keys_(std::move(keys)) {}

  size_t NumRows() override { return keys_.size(); }

  std::vector<Value> Fetch(const std::string& attr) override {
    // Keys arrive in cracked order: randomly-ordered positional lookups
    // into the base column — no spatial or temporal locality (the paper's
    // Exp1 explanation).
    const Column& column = relation_->column(attr);
    std::vector<Value> out(keys_.size());
    kernels::Gather(column.values().data(), keys_.data(), keys_.size(),
                    out.data());
    return out;
  }

  std::vector<Value> FetchAt(const std::string& attr,
                             std::span<const uint32_t> ordinals) override {
    const Column& column = relation_->column(attr);
    std::vector<Value> out;
    out.reserve(ordinals.size());
    for (uint32_t ord : ordinals) out.push_back(column[keys_[ord]]);
    return out;
  }

  ConsumeOutcome Consume(const ConsumeSpec& consume,
                         std::span<const std::string> projections) override {
    // Fast path: the keys arrive in cracked (random) order, so Fetch is a
    // scattered gather either way — folding in place at least skips the
    // temp vector the default would materialize.
    if (consume.kind == ConsumeKind::kAggregate) {
      const Column& column = relation_->column(consume.attr);
      ConsumeOutcome out;
      out.count = keys_.size();
      kernels::FoldGather(ToFoldOp(consume.op), column.values().data(),
                          keys_.data(), keys_.size(), &out.aggregate,
                          &out.aggregate_valid);
      return out;
    }
    if (consume.kind == ConsumeKind::kGroupBy) {
      // Grouped fast path: gather the group keys and fold the aggregate
      // columns through the cracked-order key list in place.
      GroupAccumulator acc(consume);
      std::vector<const Value*> columns;
      columns.reserve(consume.group_aggs.size());
      for (const GroupAggregate& agg : consume.group_aggs) {
        columns.push_back(agg.op == AggregateOp::kCount
                              ? nullptr
                              : relation_->column(agg.attr).values().data());
      }
      acc.AddChunk(relation_->column(consume.group_attr).values().data(),
                   keys_.data(), keys_.size(), columns);
      ConsumeOutcome out;
      out.count = keys_.size();
      out.groups = acc.Take();
      return out;
    }
    return SelectionHandle::Consume(consume, projections);
  }

 private:
  const Relation* relation_;
  std::vector<Key> keys_;
};

}  // namespace

CrackerColumn& SelectionCrackingEngine::GetOrCreate(const std::string& attr) {
  auto it = columns_.find(attr);
  if (it == columns_.end()) {
    it = columns_
             .emplace(attr,
                      std::make_unique<CrackerColumn>(*relation_, attr))
             .first;
  }
  return *it->second;
}

bool SelectionCrackingEngine::HasCrackerColumn(const std::string& attr) const {
  return columns_.count(attr) != 0;
}

std::unique_ptr<SelectionHandle> SelectionCrackingEngine::Select(
    const QuerySpec& spec) {
  std::vector<Key> keys;
  if (spec.selections.empty()) {
    keys.reserve(relation_->num_live_rows());
    for (size_t i = 0; i < relation_->num_rows(); ++i) {
      if (!relation_->IsDeleted(static_cast<Key>(i))) {
        keys.push_back(static_cast<Key>(i));
      }
    }
  } else if (!spec.disjunctive) {
    // crackers.select on the first (most selective) predicate...
    CrackerColumn& cracker = GetOrCreate(spec.selections[0].attr);
    const std::span<const Value> raw =
        cracker.SelectKeys(spec.selections[0].pred);
    keys.reserve(raw.size());
    for (Value v : raw) keys.push_back(static_cast<Key>(v));
    // ...then crackers.rel_select for the rest: select + reconstruct in one
    // go over the unordered key list (paper Section 2.2).
    for (size_t s = 1; s < spec.selections.size(); ++s) {
      const Column& column = relation_->column(spec.selections[s].attr);
      const RangePredicate& pred = spec.selections[s].pred;
      std::vector<Key> refined;
      kernels::FilterKeys(column.values().data(), keys.data(), keys.size(),
                          pred, &refined);
      keys = std::move(refined);
    }
  } else {
    // Disjunction: every predicate cracks its own column; key lists are
    // unordered, so the union needs a sort + unique.
    for (const QuerySpec::Selection& sel : spec.selections) {
      CrackerColumn& cracker = GetOrCreate(sel.attr);
      for (Value v : cracker.SelectKeys(sel.pred)) {
        keys.push_back(static_cast<Key>(v));
      }
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  }
  return std::make_unique<CrackedKeysHandle>(*relation_, std::move(keys));
}

}  // namespace crackdb
