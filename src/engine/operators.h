#ifndef CRACKDB_ENGINE_OPERATORS_H_
#define CRACKDB_ENGINE_OPERATORS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace crackdb {

/// Generic relational operators over materialized value vectors. These are
/// shared by every engine: the paper's systems differ only in selection and
/// tuple reconstruction; joins, group-bys, and aggregations run on the
/// original column-store operators unchanged (Section 3.4).

/// Matching row-ordinal pairs of an equi-join.
struct JoinPairs {
  std::vector<uint32_t> left;
  std::vector<uint32_t> right;

  size_t size() const { return left.size(); }
};

/// Hash equi-join over two key vectors (build on the smaller side). The
/// output order follows the probe side, i.e., tuple order of the inner
/// input is lost — which is what forces the post-join reconstructions the
/// paper measures.
JoinPairs HashJoin(std::span<const Value> left_keys,
                   std::span<const Value> right_keys);

/// Left-semi join: ordinals of left rows having at least one match.
std::vector<uint32_t> SemiJoin(std::span<const Value> left_keys,
                               std::span<const Value> right_keys);

/// Left-anti join: ordinals of left rows having no match.
std::vector<uint32_t> AntiJoin(std::span<const Value> left_keys,
                               std::span<const Value> right_keys);

/// Group-by over one or more key columns (all spans row-aligned and of
/// equal length).
struct Groups {
  /// Group ordinal for each input row.
  std::vector<uint32_t> group_of_row;
  /// Distinct key tuples, one per group, in first-seen order.
  std::vector<std::vector<Value>> keys;

  size_t num_groups() const { return keys.size(); }
};
Groups GroupBy(std::span<const std::vector<Value>> key_columns);

/// View-based overload (zero-copy inputs from SelectionHandle::FetchView).
Groups GroupBySpans(std::span<const std::span<const Value>> key_columns);

/// Per-group sum of `values` under a precomputed grouping.
std::vector<Value> GroupedSum(const Groups& groups,
                              std::span<const Value> values);
std::vector<Value> GroupedCount(const Groups& groups);
std::vector<Value> GroupedMin(const Groups& groups,
                              std::span<const Value> values);
std::vector<Value> GroupedMax(const Groups& groups,
                              std::span<const Value> values);

/// Whole-column aggregates. Max/Min return kMinValue/kMaxValue on empty
/// input.
Value MaxOf(std::span<const Value> values);
Value MinOf(std::span<const Value> values);
Value SumOf(std::span<const Value> values);

/// Row ordinals sorted by the given columns (lexicographic; `ascending`
/// per column, defaulting to ascending when shorter than `columns`).
std::vector<uint32_t> SortRows(std::span<const std::vector<Value>> columns,
                               const std::vector<bool>& ascending);

/// First `k` row ordinals under the same ordering (partial sort).
std::vector<uint32_t> TopKRows(std::span<const std::vector<Value>> columns,
                               const std::vector<bool>& ascending, size_t k);

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_OPERATORS_H_
