#include "engine/row_engine.h"

#include "common/timer.h"
#include "engine/group_table.h"
#include "engine/query.h"

namespace crackdb {

namespace {

class RowHandle : public SelectionHandle {
 public:
  RowHandle(const RowStore& store, std::vector<uint32_t> rows)
      : store_(&store), rows_(std::move(rows)) {}

  size_t NumRows() override { return rows_.size(); }

  std::vector<Value> Fetch(const std::string& attr) override {
    const size_t col = store_->ColumnOrdinal(attr);
    std::vector<Value> out;
    out.reserve(rows_.size());
    for (uint32_t r : rows_) out.push_back(store_->At(r, col));
    return out;
  }

  std::vector<Value> FetchAt(const std::string& attr,
                             std::span<const uint32_t> ordinals) override {
    const size_t col = store_->ColumnOrdinal(attr);
    std::vector<Value> out;
    out.reserve(ordinals.size());
    for (uint32_t ord : ordinals) out.push_back(store_->At(rows_[ord], col));
    return out;
  }

  ConsumeOutcome Consume(const ConsumeSpec& consume,
                         std::span<const std::string> projections) override {
    // Fast path: fold per matching row straight out of the NSM records —
    // the one access pattern a row store is actually good at.
    if (consume.kind == ConsumeKind::kAggregate) {
      const size_t col = store_->ColumnOrdinal(consume.attr);
      ConsumeOutcome out;
      out.count = rows_.size();
      FoldIndexed(
          consume.op, rows_.size(),
          [this, col](size_t i) { return store_->At(rows_[i], col); },
          &out.aggregate, &out.aggregate_valid);
      return out;
    }
    if (consume.kind == ConsumeKind::kGroupBy) {
      // Grouped fast path: one record visit per matching row folds the
      // key and every aggregate — NSM's whole-tuple locality at work.
      GroupAccumulator acc(consume);
      const size_t gcol = store_->ColumnOrdinal(consume.group_attr);
      std::vector<size_t> acols(consume.group_aggs.size(), 0);
      for (size_t a = 0; a < consume.group_aggs.size(); ++a) {
        if (consume.group_aggs[a].op == AggregateOp::kCount) continue;
        acols[a] = store_->ColumnOrdinal(consume.group_aggs[a].attr);
      }
      for (uint32_t r : rows_) {
        const uint32_t id = acc.AddRowKey(store_->At(r, gcol));
        for (size_t a = 0; a < consume.group_aggs.size(); ++a) {
          if (consume.group_aggs[a].op == AggregateOp::kCount) continue;
          acc.FoldInto(a, id, store_->At(r, acols[a]));
        }
      }
      ConsumeOutcome out;
      out.count = rows_.size();
      out.groups = acc.Take();
      return out;
    }
    return SelectionHandle::Consume(consume, projections);
  }

 private:
  const RowStore* store_;
  std::vector<uint32_t> rows_;
};

}  // namespace

RowEngine::RowEngine(const Relation& relation, bool presorted)
    : relation_(&relation), presorted_(presorted) {
  BuildBase();
}

void RowEngine::RefreshIfStale() {
  if (log_version_ == relation_->log_version()) return;
  BuildBase();
  sorted_copies_.clear();
}

void RowEngine::BuildBase() {
  log_version_ = relation_->log_version();
  base_ = std::make_unique<RowStore>(relation_->column_names());
  base_->Reserve(relation_->num_live_rows());
  std::vector<Value> row(relation_->num_columns());
  for (size_t r = 0; r < relation_->num_rows(); ++r) {
    if (relation_->IsDeleted(static_cast<Key>(r))) continue;
    for (size_t c = 0; c < relation_->num_columns(); ++c) {
      row[c] = relation_->column(c)[r];
    }
    base_->AppendRow(row);
  }
}

RowStore& RowEngine::GetOrCreateSorted(const std::string& attr) {
  auto it = sorted_copies_.find(attr);
  if (it != sorted_copies_.end()) return *it->second;
  Timer prepare_timer;
  auto copy = std::make_unique<RowStore>(relation_->column_names());
  copy->Reserve(base_->num_rows());
  for (size_t r = 0; r < base_->num_rows(); ++r) copy->AppendRow(base_->Row(r));
  copy->SortBy(copy->ColumnOrdinal(attr));
  it = sorted_copies_.emplace(attr, std::move(copy)).first;
  cost_.prepare_micros += prepare_timer.ElapsedMicros();
  return *it->second;
}

std::unique_ptr<SelectionHandle> RowEngine::Select(const QuerySpec& spec) {
  RefreshIfStale();
  // Resolve predicate column ordinals once.
  const RowStore* store = base_.get();
  size_t scan_begin = 0;
  size_t scan_end = base_->num_rows();
  size_t skip_predicate = static_cast<size_t>(-1);

  if (presorted_ && !spec.selections.empty() && !spec.disjunctive) {
    RowStore& sorted = GetOrCreateSorted(spec.selections[0].attr);
    store = &sorted;
    const PositionRange range = sorted.EqualRange(spec.selections[0].pred);
    scan_begin = range.begin;
    scan_end = range.end;
    skip_predicate = 0;
  }

  std::vector<size_t> cols;
  cols.reserve(spec.selections.size());
  for (const QuerySpec::Selection& sel : spec.selections) {
    cols.push_back(store->ColumnOrdinal(sel.attr));
  }

  std::vector<uint32_t> rows;
  for (size_t r = scan_begin; r < scan_end; ++r) {
    bool keep = spec.disjunctive ? spec.selections.empty() : true;
    for (size_t s = 0; s < spec.selections.size(); ++s) {
      if (s == skip_predicate) continue;
      const bool match = spec.selections[s].pred.Matches(store->At(r, cols[s]));
      if (spec.disjunctive) {
        if (match) {
          keep = true;
          break;
        }
      } else if (!match) {
        keep = false;
        break;
      }
    }
    if (keep) rows.push_back(static_cast<uint32_t>(r));
  }
  return std::make_unique<RowHandle>(*store, std::move(rows));
}

}  // namespace crackdb
