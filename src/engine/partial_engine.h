#ifndef CRACKDB_ENGINE_PARTIAL_ENGINE_H_
#define CRACKDB_ENGINE_PARTIAL_ENGINE_H_

#include <map>
#include <memory>
#include <string>

#include "core/partial_sideways.h"
#include "core/storage_manager.h"
#include "engine/engine.h"
#include "storage/relation.h"

namespace crackdb {

/// Partial sideways cracking (paper Section 4): map sets materialize only
/// the chunks the workload demands, under a storage budget shared across
/// all sets of the engine. Queries execute chunk-wise.
///
/// Scope note: partial maps accelerate conjunctive queries — the paper
/// evaluates them on conjunctive workloads (Figures 9-13), and a
/// disjunction has no single head range to chunk on. Disjunctive specs are
/// answered correctly via a base-column scan (plain-engine path) instead
/// of through the maps, so the engine is drop-in safe behind the serving
/// facade, which routes arbitrary query shapes.
class PartialSidewaysEngine : public Engine {
 public:
  explicit PartialSidewaysEngine(const Relation& relation,
                                 PartialConfig config = {});

  std::string name() const override { return "partial-sideways"; }

  std::unique_ptr<SelectionHandle> Select(const QuerySpec& spec) override;

  PartialMapSet& GetOrCreateSet(const std::string& head_attr);
  bool HasSet(const std::string& head_attr) const;

  /// Chunk storage across all sets, in tuples (Figure 9(d) series).
  size_t ChunkStorageTuples() const { return storage_.used_half_tuples() / 2; }

  const StorageManager& storage() const { return storage_; }
  const PartialConfig& config() const { return config_; }

 private:
  size_t ChooseHeadSelection(const QuerySpec& spec);

  const Relation* relation_;
  PartialConfig config_;
  StorageManager storage_;
  std::map<std::string, std::unique_ptr<PartialMapSet>> sets_;
};

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_PARTIAL_ENGINE_H_
