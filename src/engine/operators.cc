#include "engine/operators.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace crackdb {

JoinPairs HashJoin(std::span<const Value> left_keys,
                   std::span<const Value> right_keys) {
  JoinPairs out;
  const bool build_left = left_keys.size() <= right_keys.size();
  std::span<const Value> build = build_left ? left_keys : right_keys;
  std::span<const Value> probe = build_left ? right_keys : left_keys;
  std::unordered_multimap<Value, uint32_t> table;
  table.reserve(build.size());
  for (uint32_t i = 0; i < build.size(); ++i) table.emplace(build[i], i);
  for (uint32_t j = 0; j < probe.size(); ++j) {
    auto [lo, hi] = table.equal_range(probe[j]);
    for (auto it = lo; it != hi; ++it) {
      if (build_left) {
        out.left.push_back(it->second);
        out.right.push_back(j);
      } else {
        out.left.push_back(j);
        out.right.push_back(it->second);
      }
    }
  }
  return out;
}

std::vector<uint32_t> SemiJoin(std::span<const Value> left_keys,
                               std::span<const Value> right_keys) {
  std::unordered_set<Value> present(right_keys.begin(), right_keys.end());
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < left_keys.size(); ++i) {
    if (present.count(left_keys[i]) != 0) out.push_back(i);
  }
  return out;
}

std::vector<uint32_t> AntiJoin(std::span<const Value> left_keys,
                               std::span<const Value> right_keys) {
  std::unordered_set<Value> present(right_keys.begin(), right_keys.end());
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < left_keys.size(); ++i) {
    if (present.count(left_keys[i]) == 0) out.push_back(i);
  }
  return out;
}

namespace {
struct TupleHash {
  size_t operator()(const std::vector<Value>& v) const {
    size_t h = 0xcbf29ce484222325ull;
    for (Value x : v) {
      h ^= static_cast<size_t>(x);
      h *= 0x100000001b3ull;
    }
    return h;
  }
};
}  // namespace

Groups GroupBySpans(std::span<const std::span<const Value>> key_columns) {
  Groups g;
  if (key_columns.empty()) return g;
  const size_t n = key_columns[0].size();
  g.group_of_row.resize(n);
  std::unordered_map<std::vector<Value>, uint32_t, TupleHash> ids;
  std::vector<Value> key(key_columns.size());
  for (size_t row = 0; row < n; ++row) {
    for (size_t c = 0; c < key_columns.size(); ++c) {
      key[c] = key_columns[c][row];
    }
    auto [it, inserted] =
        ids.emplace(key, static_cast<uint32_t>(g.keys.size()));
    if (inserted) g.keys.push_back(key);
    g.group_of_row[row] = it->second;
  }
  return g;
}

Groups GroupBy(std::span<const std::vector<Value>> key_columns) {
  std::vector<std::span<const Value>> spans;
  spans.reserve(key_columns.size());
  for (const std::vector<Value>& col : key_columns) {
    spans.emplace_back(col.data(), col.size());
  }
  return GroupBySpans(spans);
}

std::vector<Value> GroupedSum(const Groups& groups,
                              std::span<const Value> values) {
  std::vector<Value> out(groups.num_groups(), 0);
  for (size_t row = 0; row < values.size(); ++row) {
    out[groups.group_of_row[row]] += values[row];
  }
  return out;
}

std::vector<Value> GroupedCount(const Groups& groups) {
  std::vector<Value> out(groups.num_groups(), 0);
  for (uint32_t gid : groups.group_of_row) ++out[gid];
  return out;
}

std::vector<Value> GroupedMin(const Groups& groups,
                              std::span<const Value> values) {
  std::vector<Value> out(groups.num_groups(), kMaxValue);
  for (size_t row = 0; row < values.size(); ++row) {
    out[groups.group_of_row[row]] =
        std::min(out[groups.group_of_row[row]], values[row]);
  }
  return out;
}

std::vector<Value> GroupedMax(const Groups& groups,
                              std::span<const Value> values) {
  std::vector<Value> out(groups.num_groups(), kMinValue);
  for (size_t row = 0; row < values.size(); ++row) {
    out[groups.group_of_row[row]] =
        std::max(out[groups.group_of_row[row]], values[row]);
  }
  return out;
}

Value MaxOf(std::span<const Value> values) {
  Value m = kMinValue;
  for (Value v : values) m = std::max(m, v);
  return m;
}

Value MinOf(std::span<const Value> values) {
  Value m = kMaxValue;
  for (Value v : values) m = std::min(m, v);
  return m;
}

Value SumOf(std::span<const Value> values) {
  Value s = 0;
  for (Value v : values) s += v;
  return s;
}

namespace {
std::vector<uint32_t> SortedOrdinals(
    std::span<const std::vector<Value>> columns,
    const std::vector<bool>& ascending) {
  const size_t n = columns.empty() ? 0 : columns[0].size();
  std::vector<uint32_t> ordinals(n);
  std::iota(ordinals.begin(), ordinals.end(), 0u);
  auto less = [&](uint32_t a, uint32_t b) {
    for (size_t c = 0; c < columns.size(); ++c) {
      const bool asc = c < ascending.size() ? ascending[c] : true;
      const Value va = columns[c][a];
      const Value vb = columns[c][b];
      if (va != vb) return asc ? va < vb : va > vb;
    }
    return a < b;  // stable tiebreak
  };
  std::sort(ordinals.begin(), ordinals.end(), less);
  return ordinals;
}
}  // namespace

std::vector<uint32_t> SortRows(std::span<const std::vector<Value>> columns,
                               const std::vector<bool>& ascending) {
  return SortedOrdinals(columns, ascending);
}

std::vector<uint32_t> TopKRows(std::span<const std::vector<Value>> columns,
                               const std::vector<bool>& ascending, size_t k) {
  std::vector<uint32_t> all = SortedOrdinals(columns, ascending);
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace crackdb
