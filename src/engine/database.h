#ifndef CRACKDB_ENGINE_DATABASE_H_
#define CRACKDB_ENGINE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/sharded_engine.h"
#include "storage/catalog.h"
#include "storage/partitioner.h"

namespace crackdb {

struct DatabaseOptions {
  /// Pool auto-size sentinel: one worker per hardware thread.
  static constexpr size_t kPoolAuto = static_cast<size_t>(-1);

  /// Workers in the shared fan-out pool. kPoolAuto = hardware concurrency;
  /// 0 = no pool, partition sub-queries run sequentially on the client
  /// thread — the throughput-serving configuration where many client
  /// threads are themselves the parallelism (see bench_concurrent_
  /// throughput).
  size_t pool_threads = kPoolAuto;
};

/// View of one table. Each partition is read under its shared lock, so no
/// value reflects a half-applied write or mid-crack state; partitions are
/// visited one at a time, though, so under live traffic the totals (and
/// the op counters, which are read without locks) are not one global
/// atomic snapshot — `rows == initial + inserts` holds exactly only in
/// quiescence.
struct TableStats {
  std::string engine;
  size_t partitions = 0;
  size_t rows = 0;       // global keys ever issued
  size_t live_rows = 0;  // minus tombstones
  size_t deleted = 0;
  uint64_t queries = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  /// Summed per-partition cost breakdown (select/reconstruct/prepare).
  CostBreakdown cost;
};

/// The thread-safe serving facade over the partitioned execution layer:
/// owns the Catalog, the shared ThreadPool, and per table a
/// PartitionedRelation plus a ShardedEngine of the chosen kind.
///
/// Every public method is safe to call from any number of client threads
/// concurrently. The discipline (documented in docs/ARCHITECTURE.md):
///
///   - queries take no table-level lock at all; the ShardedEngine locks
///     each partition exclusively only while cracking it and merges
///     results outside the locks;
///   - writers (Insert/Delete) serialize per table on `writer_mu` (which
///     also guards the global-key router) and then take only the target
///     partition's exclusive lock, so a writer never blocks queries on
///     the other partitions;
///   - Stats takes the per-partition locks *shared*, giving concurrent,
///     consistent snapshots that exclude writers and cracking readers.
///
/// Lock order is always: tables map -> writer_mu -> partition mutex, and
/// queries skip the first two levels, so the hierarchy is cycle-free.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Shards `source` into `spec.num_partitions` partition relations
  /// registered in catalog() (named `<source>#p<i>`) and serves `table`
  /// from one `engine_kind` engine per partition (any engine_factory.h
  /// kind). Global keys equal source keys; tombstones are replicated.
  /// Dies on duplicate table names or unknown engine kinds. Not
  /// thread-safe against in-flight operations on the same table name;
  /// registration is expected at startup (concurrent registration of
  /// *different* tables is fine).
  void RegisterSharded(const std::string& table, const Relation& source,
                       const PartitionSpec& spec,
                       const std::string& engine_kind);

  /// Evaluates `spec` across the table's partitions; results merge outside
  /// the partition locks. Identical rows (as a multiset) to running the
  /// same spec on an unsharded engine over the source relation.
  QueryResult Query(const std::string& table, const QuerySpec& spec);

  /// Routes one tuple to its partition by the organizing attribute and
  /// appends it; returns the global key. Per-partition engines merge the
  /// insert lazily on their next relevant query (pending/ripple).
  Key Insert(const std::string& table, std::span<const Value> values);

  /// Tombstones the row with this global key. False if unknown or already
  /// dead.
  bool Delete(const std::string& table, Key global_key);

  TableStats Stats(const std::string& table) const;

  std::vector<std::string> table_names() const;

  /// Direct access to the table's engine and partitions, for tests and
  /// benches. The caller must follow the locking discipline when touching
  /// them concurrently with serving traffic.
  ShardedEngine& engine(const std::string& table);
  PartitionedRelation& partitions(const std::string& table);

  Catalog& catalog() { return catalog_; }
  ThreadPool* pool() { return pool_.get(); }

 private:
  struct Table {
    explicit Table(PartitionedRelation r) : relation(std::move(r)) {}

    PartitionedRelation relation;
    std::unique_ptr<ShardedEngine> engine;
    /// Serializes writers per table and guards the global-key router
    /// (Append/Delete/Locate on `relation`).
    mutable std::shared_mutex writer_mu;
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> deletes{0};
  };

  Table& FindTable(const std::string& table) const;

  Catalog catalog_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::shared_mutex tables_mu_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_DATABASE_H_
