#ifndef CRACKDB_ENGINE_DATABASE_H_
#define CRACKDB_ENGINE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "adaptive/adaptive_config.h"
#include "adaptive/repartition_policy.h"
#include "adaptive/workload_histogram.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/query.h"
#include "engine/sharded_engine.h"
#include "obs/query_log.h"
#include "storage/catalog.h"
#include "storage/dictionary.h"
#include "storage/partitioner.h"

namespace crackdb {

struct DatabaseOptions {
  /// Pool auto-size sentinel: one worker per hardware thread.
  static constexpr size_t kPoolAuto = static_cast<size_t>(-1);

  /// Workers in the shared fan-out pool. kPoolAuto = hardware concurrency;
  /// 0 = no pool, partition sub-queries run sequentially on the client
  /// thread — the throughput-serving configuration where many client
  /// threads are themselves the parallelism (see bench_concurrent_
  /// throughput).
  size_t pool_threads = kPoolAuto;

  /// Partition-affine scheduling: partition p's sub-query groups (and
  /// async queries whose home partition is p) are routed to pool worker
  /// p % pool_threads, so a partition's cracked structures stay core-
  /// local across queries. Off = round-robin spreading (the bench's
  /// control arm). Ignored without a pool.
  bool affine_scheduling = true;
};

/// One write of a mixed Insert/Delete batch (Database::ApplyBatch).
struct WriteOp {
  enum class Kind { kInsert, kDelete };

  static WriteOp MakeInsert(std::vector<Value> values) {
    WriteOp op;
    op.kind = Kind::kInsert;
    op.values = std::move(values);
    return op;
  }
  static WriteOp MakeDelete(Key global_key) {
    WriteOp op;
    op.kind = Kind::kDelete;
    op.key = global_key;
    return op;
  }

  Kind kind = Kind::kInsert;
  std::vector<Value> values;  // kInsert: the row to append
  Key key = kInvalidKey;      // kDelete: the global key to tombstone
};

/// Per-op result of ApplyBatch, in op order. Inserts always succeed and
/// carry the new global key; a delete fails (ok = false) when the key is
/// unknown or the row is already dead — exactly as Delete would.
struct WriteOutcome {
  bool ok = false;
  Key key = kInvalidKey;
};

/// One partition's slice of a TableStats snapshot: tuple counts plus —
/// when adaptive repartitioning is enabled — the workload histogram's view
/// of the partition, so benches and tests can observe skew (and watch a
/// hot partition split) without poking internals.
struct PartitionStats {
  size_t rows = 0;
  size_t live_rows = 0;
  size_t deleted = 0;
  /// Range sharding: the domain values this slice covers.
  Value cover_lo = 0;
  Value cover_hi = 0;
  /// Workload histogram counters (zero when adaptivity is off): decayed
  /// access count and partition-local execution micros.
  uint64_t accesses = 0;
  double access_micros = 0;
  /// This partition's engine kind (per-partition engines can be reset by
  /// the compression layer, so the table-level name is not the whole
  /// story) and physical layout: "raw", or the distinct codecs of its
  /// compressed columns ("for", "rle+dict", ...), plus the bytes its
  /// columns occupy in that layout.
  std::string engine;
  std::string codec;
  size_t resident_bytes = 0;
};

/// View of one table. Each partition is read under its shared lock, so no
/// value reflects a half-applied write or mid-crack state; partitions are
/// visited one at a time, though, so under live traffic the totals (and
/// the op counters, which are read without locks) are not one global
/// atomic snapshot — `rows == initial + inserts` holds exactly only in
/// quiescence.
struct TableStats {
  std::string engine;
  size_t partitions = 0;
  size_t rows = 0;       // global keys ever issued
  size_t live_rows = 0;  // minus tombstones
  size_t deleted = 0;
  uint64_t queries = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  /// Adaptive repartitioning actions executed so far.
  uint64_t splits = 0;
  uint64_t merges = 0;
  /// Compression layer: partitions currently compressed, layout actions
  /// executed (decompressions counts adaptive + write-path + query-driven
  /// crack-on-touch), queries answered in the encoded domain, and the
  /// resident footprint of all base columns in their current layouts —
  /// `bytes_per_row` is that footprint over the row-slot count (raw
  /// storage is num_columns * 8).
  size_t compressed_partitions = 0;
  uint64_t compressions = 0;
  uint64_t decompressions = 0;
  uint64_t encoded_queries = 0;
  size_t resident_column_bytes = 0;
  double bytes_per_row = 0;
  /// Summed per-partition cost breakdown (select/reconstruct/prepare).
  CostBreakdown cost;
  /// Per-partition breakdown, in partition order (see PartitionStats).
  std::vector<PartitionStats> per_partition;
};

/// The thread-safe serving facade over the partitioned execution layer:
/// owns the Catalog, the shared ThreadPool, and per table a
/// PartitionedRelation plus a ShardedEngine of the chosen kind.
///
/// Every public method is safe to call from any number of client threads
/// concurrently. The discipline (documented in docs/ARCHITECTURE.md):
///
///   - queries take no table-level *lock*; the ShardedEngine holds the
///     relation's map gate shared (one uncontended mutex round-trip, only
///     ever contended by an adaptive repartition swap), locks each
///     partition exclusively only while cracking it, and merges results
///     outside the locks;
///   - writers (Insert/Delete) hold the map gate shared, serialize per
///     table on `writer_mu` (which also guards the global-key router),
///     and then take only the target partition's exclusive lock, so a
///     writer never blocks queries on the other partitions;
///   - Stats holds the gate shared and takes the per-partition locks
///     *shared*, giving concurrent, consistent snapshots that exclude
///     writers and cracking readers;
///   - adaptive repartitioning (src/adaptive) swaps new shards into the
///     map under the gate held exclusively — see docs/ARCHITECTURE.md,
///     "Adaptive repartitioning".
///
/// Lock order is always: tables map -> map gate -> writer_mu -> partition
/// mutex; queries skip the tables map and writer_mu, so the hierarchy is
/// cycle-free. Partition locks are never nested, including inside
/// ApplyBatch (one is released before the next is taken).
///
/// There is exactly one execution path: Query, QueryAsync, and QueryBatch
/// all funnel into the ShardedEngine batch scheduler, and Insert/Delete
/// are one-op ApplyBatch calls — the batch/async surface is the system,
/// the synchronous methods are its degenerate case.
class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  /// Joins the pool before any table is torn down, so in-flight async
  /// queries never touch a dead table. Queued QueryAsync tasks whose
  /// futures were dropped still run to completion first.
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Shards `source` into `spec.num_partitions` partition relations
  /// registered in catalog() (named `<source>#p<i>`) and serves `table`
  /// from one `engine_kind` engine per partition (any engine_factory.h
  /// kind). Global keys equal source keys; tombstones are replicated.
  /// Dies on duplicate table names or unknown engine kinds. Not
  /// thread-safe against in-flight operations on the same table name;
  /// registration is expected at startup (concurrent registration of
  /// *different* tables is fine).
  ///
  /// `adaptive` (off by default) arms workload-aware repartitioning for
  /// this table: queries feed a WorkloadHistogram, and each tick — manual
  /// MaybeRepartition() or, with `trigger_interval > 0`, an automatic
  /// background tick every that many ops — may hot-split or cold-merge
  /// partitions online (see src/adaptive/ and docs/ARCHITECTURE.md,
  /// "Adaptive repartitioning"). Range sharding only; on hash-sharded
  /// tables ticks are no-ops.
  void RegisterSharded(const std::string& table, const Relation& source,
                       const PartitionSpec& spec,
                       const std::string& engine_kind,
                       const AdaptiveConfig& adaptive = {});

  /// One adaptive-repartitioning tick, run inline on the calling (client)
  /// thread: consults the workload histogram and policy, and executes at
  /// most one hot-split or cold-merge. Returns true iff an action was
  /// executed. No-op (false) when adaptivity is off for the table, the
  /// table is hash-sharded, or another tick is already in flight. Must
  /// not be called from a pool worker of this database's pool (the
  /// rebuild blocks on engine-construction futures).
  bool MaybeRepartition(const std::string& table);

  /// Entry point of the fluent query surface: a builder pre-bound to
  /// `table` and to this database, so the terminal reads
  ///
  ///   auto n = db.From("R").Where("a", lo, hi).Count().Execute();
  ///   auto s = db.From("R").Where("a", lo, hi)
  ///                .Aggregate(AggregateOp::kSum, "b").Execute();
  ///   auto r = db.From("R").Where("a", lo, hi).Project("b", "c").Execute();
  ///
  /// Predicates are validated as they are added; names are validated
  /// against the table schema by Execute. See engine/query.h.
  QueryBuilder From(std::string table) {
    return QueryBuilder(std::move(table), this);
  }

  /// Executes a compiled query with its declared consumption mode.
  /// Validation errors — the builder's recorded error, an unknown table,
  /// an unknown selection/projection/aggregate attribute — come back as
  /// an Expected error with a clear message; nothing asserts inside an
  /// engine. Count/Aggregate queries push their scalars below the
  /// partition merge (zero reconstruction, no tuple data crossing the
  /// merge); ForEach streams rows sequentially on the calling thread.
  Expected<ExecuteResult> Execute(crackdb::Query query);

  /// Batch variant: queries may target different tables; per table they
  /// run as one scheduled engine batch (one lock acquisition per target
  /// partition per batch). Results come back in query order; invalid
  /// queries yield their error without executing and without disturbing
  /// the rest of the batch.
  std::vector<Expected<ExecuteResult>> ExecuteBatch(
      std::span<const crackdb::Query> queries);

  /// Evaluates `spec` across the table's partitions; results merge outside
  /// the partition locks. Identical rows (as a multiset) to running the
  /// same spec on an unsharded engine over the source relation. Thin
  /// wrapper over the batch pipeline (a batch of one) with Materialize
  /// consumption — the fluent surface's default terminal.
  QueryResult Query(const std::string& table, const QuerySpec& spec);

  /// Schedules `spec` on the pool with its home partition as the affinity
  /// key and returns immediately; the future yields the same result Query
  /// would. Without a pool the query runs inline and the future is ready
  /// on return. Futures may outlive the caller's frame but not the
  /// Database; dropping one without waiting is allowed.
  std::future<QueryResult> QueryAsync(const std::string& table,
                                      QuerySpec spec);

  /// Executes many specs as one pipelined batch: their partition
  /// sub-queries are grouped so each target partition is locked once per
  /// batch (not once per query), and partition groups fan out across the
  /// pool with partition affinity. Returns one result per spec, in order,
  /// row-for-row identical to calling Query in a loop.
  std::vector<QueryResult> QueryBatch(const std::string& table,
                                      std::span<const QuerySpec> specs);

  /// Group commit of a mixed Insert/Delete batch: takes `writer_mu` ONCE
  /// for the whole batch and re-acquires a partition lock only when
  /// consecutive ops target different partitions. Ops apply in order, so
  /// outcomes (keys included) are identical to the equivalent
  /// Insert/Delete loop; partition-clustered batches (bulk loads, range
  /// ingest) pay one lock acquisition per cluster.
  std::vector<WriteOutcome> ApplyBatch(const std::string& table,
                                       std::span<const WriteOp> ops);

  /// Routes one tuple to its partition by the organizing attribute and
  /// appends it; returns the global key. Per-partition engines merge the
  /// insert lazily on their next relevant query (pending/ripple). Thin
  /// wrapper over ApplyBatch (a batch of one).
  Key Insert(const std::string& table, std::span<const Value> values);

  /// Tombstones the row with this global key. False if unknown or already
  /// dead. Thin wrapper over ApplyBatch (a batch of one).
  bool Delete(const std::string& table, Key global_key);

  TableStats Stats(const std::string& table) const;

  std::vector<std::string> table_names() const;

  /// Direct access to the table's engine and partitions, for tests and
  /// benches. The caller must follow the locking discipline when touching
  /// them concurrently with serving traffic.
  ShardedEngine& engine(const std::string& table);
  PartitionedRelation& partitions(const std::string& table);

  Catalog& catalog() { return catalog_; }
  ThreadPool* pool() { return pool_.get(); }

  /// True iff `table` names a built-in system.* virtual table
  /// (system.tables, system.partitions, system.metrics, system.query_log).
  /// Such queries are answered from a per-query snapshot (see
  /// docs/OBSERVABILITY.md) through the normal fluent surface.
  static bool IsSystemTable(const std::string& table);

  /// The ring of recently finished fluent-path queries; also queryable as
  /// the system.query_log virtual table.
  const obs::QueryLog& query_log() const { return query_log_; }

  /// Decodes a name id from a system.* snapshot (table, metric, engine,
  /// and codec names are dictionary codes there, since system tables carry
  /// only Value cells) back to its string. Dies on ids never issued.
  std::string SystemName(Value id) const;

 private:
  struct Table {
    explicit Table(PartitionedRelation r) : relation(std::move(r)) {}

    PartitionedRelation relation;
    std::unique_ptr<ShardedEngine> engine;
    /// Schema snapshot for lock-free name validation (Execute): columns
    /// are fixed at registration, before any traffic.
    std::vector<std::string> columns;
    /// Serializes writers per table and guards the global-key router
    /// (Append/Delete/Locate on `relation`).
    mutable std::shared_mutex writer_mu;
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> deletes{0};

    /// Adaptive repartitioning state (histogram/policy null when the
    /// table does not adapt — disabled or hash-sharded).
    AdaptiveConfig adaptive;
    std::unique_ptr<WorkloadHistogram> histogram;
    std::unique_ptr<RepartitionPolicy> policy;
    std::atomic<uint64_t> splits{0};
    std::atomic<uint64_t> merges{0};
    /// Layout actions: adaptive/load-time compressions, and adaptive +
    /// write-path decompressions (the engine's crack-on-touch counter is
    /// added at Stats time).
    std::atomic<uint64_t> compressions{0};
    std::atomic<uint64_t> decompressions{0};
    /// Background-trigger bookkeeping: ops served since registration, an
    /// at-most-one-tick-in-flight flag, and the (joinable) tick thread.
    /// Ticks run on their own thread, never on a pool worker: the swap
    /// blocks until gate readers drain, and a worker must stay free to
    /// run the group tasks those readers are waiting on.
    std::atomic<uint64_t> ops_seen{0};
    std::atomic<bool> tick_in_flight{false};
    std::mutex tick_thread_mu;
    std::thread tick_thread;
  };

  /// Non-owning view of one write: the group-commit core works on views
  /// so ApplyBatch borrows from the caller's WriteOps and Insert/Delete
  /// borrow straight from their arguments (no per-op row copy).
  struct WriteView {
    WriteOp::Kind kind = WriteOp::Kind::kInsert;
    std::span<const Value> values;  // kInsert
    Key key = kInvalidKey;          // kDelete
  };

  /// The one write path: applies `ops` in order under a single writer_mu
  /// acquisition, filling `outcomes[i]` per op (see ApplyBatch).
  void ApplyViews(Table& t, std::span<const WriteView> ops,
                  WriteOutcome* outcomes);

  /// Counts served ops toward the table's background repartition trigger
  /// and, when a trigger boundary is crossed, starts a tick thread
  /// (unless one is already in flight).
  void NoteOps(Table& t, size_t n);

  /// The tick body: histogram snapshot -> policy -> Repartitioner.
  /// Returns true iff an action was executed. Caller holds the table's
  /// tick_in_flight flag.
  bool RunTick(Table& t);

  Table& FindTable(const std::string& table) const;
  /// Non-dying lookup for the validated Execute path.
  Table* FindTableOrNull(const std::string& table) const;

  /// "" when valid; otherwise the first unknown-attribute failure. The
  /// caller checks the query's builder-recorded error first and runs the
  /// terminal normalization (NormalizeTerminal in database.cc, which
  /// re-applies the builder's compile step so hand-built Query structs
  /// are as safe as Build() output) before this name check.
  static std::string ValidateQuery(const Table& t, const crackdb::Query& q);

  /// The schema-agnostic core of ValidateQuery: checks every referenced
  /// attribute against an explicit column list (regular tables pass the
  /// registration snapshot, system.* tables their fixed schemas).
  static std::string ValidateQueryColumns(std::span<const std::string> columns,
                                          const crackdb::Query& q);

  /// Serves a query on a system.* virtual table: materializes a transient
  /// Relation snapshot of the requested view and answers it through a
  /// PlainEngine, so predicates, projections, every terminal, and the
  /// Expected validation errors behave exactly as on a regular table.
  Expected<ExecuteResult> ExecuteSystem(crackdb::Query query);

  /// Snapshot builders for the system.* views; `out` is an empty relation
  /// carrying the view's schema.
  void FillSystemTables(Relation& out);
  void FillSystemPartitions(Relation& out);
  void FillSystemMetrics(Relation& out);
  void FillSystemQueryLog(Relation& out);

  /// Encodes a string into the system-name dictionary (thread-safe); the
  /// inverse of SystemName.
  Value InternName(const std::string& name);

  /// Per-query observability epilogue: bumps the registry's query
  /// counter/latency histogram and appends to the query-log ring. The
  /// unsampled path is one relaxed increment; the heavy work (histogram,
  /// ring append) runs for every traced query, every `always` caller
  /// (system.* queries), and a 1-in-64 sample of the untraced rest.
  /// Micros are engine-attributed (the result's CostBreakdown), so the
  /// epilogue is clock-free. No-op when metrics are disabled
  /// (obs::SetMetricsEnabled(false)).
  void LogQuery(const std::string& table, ConsumeKind kind,
                const ExecuteResult& result, bool always = false);

  Catalog catalog_;
  obs::QueryLog query_log_;
  /// Queries that passed through LogQuery; doubles as the sampling phase.
  std::atomic<uint64_t> log_seq_{0};
  /// High-water mark of log_seq_ already folded into db_queries_total.
  std::atomic<uint64_t> queries_reported_{0};
  /// Codes for every string surfaced through a system.* snapshot.
  mutable std::mutex system_names_mu_;
  Dictionary system_names_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::shared_mutex tables_mu_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_DATABASE_H_
