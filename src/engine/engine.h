#ifndef CRACKDB_ENGINE_ENGINE_H_
#define CRACKDB_ENGINE_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace crackdb {

/// A single-relation selection/projection query — the shape of the paper's
/// experiment queries (q1/q3, the Qi batches, and the per-relation legs of
/// join plans). Engines evaluate `selections` conjunctively unless
/// `disjunctive` is set. Callers order selections most-selective-first
/// (the paper applies the same discipline to every system; self-organizing
/// engines may additionally reorder using their histograms).
struct QuerySpec {
  struct Selection {
    std::string attr;
    RangePredicate pred;
  };

  std::vector<Selection> selections;
  bool disjunctive = false;
  /// Attributes whose values the query returns (tuple reconstructions).
  std::vector<std::string> projections;
};

/// Row-aligned result columns: columns[i] belongs to projections[i].
struct QueryResult {
  std::vector<std::vector<Value>> columns;
  size_t num_rows = 0;
};

/// Per-query cost decomposition matching the paper's breakdown tables:
/// selection work vs tuple-reconstruction work. `prepare_micros` charges
/// one-off physical-design work (presorting a copy) that the paper reports
/// separately from query time.
struct CostBreakdown {
  double select_micros = 0;
  double reconstruct_micros = 0;
  double prepare_micros = 0;

  double total_micros() const { return select_micros + reconstruct_micros; }
  void Reset() { *this = CostBreakdown{}; }
};

// The consumption-mode surface (engine/query.h): how a query's qualifying
// tuples are consumed (materialize / count / aggregate / streaming
// visitor), the scalar outcome of a pushed-down consumption, and the
// tagged result of Engine::Execute.
struct ConsumeSpec;
struct ConsumeOutcome;
struct ExecuteResult;

/// A prepared selection over one relation: the set of qualifying tuples,
/// with engine-specific access paths for reconstructing further attributes.
///
/// `Fetch` reads an attribute for every qualifying tuple in the handle's
/// row order (the pre-join reconstruction of the paper's Exp4).
/// `FetchAt` reads at arbitrary row ordinals — the post-join access pattern
/// where tuple order is lost; engines differ exactly here (scattered base
/// column lookups vs clustered map/copy areas, Figure 5(c)).
class SelectionHandle {
 public:
  virtual ~SelectionHandle() = default;

  virtual size_t NumRows() = 0;
  virtual std::vector<Value> Fetch(const std::string& attr) = 0;
  virtual std::vector<Value> FetchAt(const std::string& attr,
                                     std::span<const uint32_t> ordinals) = 0;

  /// Push-based consumption of the qualifying tuples: count them, fold
  /// one attribute (sum/min/max), or stream rows of `projections` through
  /// the spec's visitor — without building a QueryResult. The default
  /// works for every engine via Fetch/FetchView (zero-copy wherever
  /// FetchView serves a real view); handles whose qualifying tuples are
  /// scattered positional lookups (plain scans, selection cracking, row
  /// stores) override it to fold in place and skip the materialization.
  /// Not called with ConsumeSpec::Materialize (that is Execute's path).
  /// For handles whose projection declaration is binding (chunk-wise,
  /// sharded), an aggregate's attribute must have been declared — the
  /// builder's compile step guarantees this.
  virtual ConsumeOutcome Consume(const ConsumeSpec& consume,
                                 std::span<const std::string> projections);

  /// Zero-copy variant of Fetch where the engine can expose the qualifying
  /// values as a contiguous view — the paper's "non-materialized view of
  /// the tail of w" (Section 3.1 step 8). Sideways cracking and presorted
  /// copies return spans into their own storage; engines whose qualifying
  /// tuples are scattered (plain scans, selection cracking) materialize
  /// into `*storage` — that asymmetry is precisely the reconstruction cost
  /// the paper measures. The view is valid while the handle lives and no
  /// further query runs on the engine.
  virtual std::span<const Value> FetchView(const std::string& attr,
                                           std::vector<Value>* storage) {
    *storage = Fetch(attr);
    return {storage->data(), storage->size()};
  }
};

/// A query engine bound to one relation. Implementations: Plain (MonetDB-
/// like scans), Presorted (per-attribute sorted copies), SelectionCracking
/// ([7]), Sideways (full maps, Section 3), PartialSideways (Section 4),
/// and Row (NSM stand-in for the paper's MySQL baseline).
class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string name() const = 0;

  /// Evaluates the selections of `spec` and returns a handle over the
  /// qualifying tuples. `spec.projections` is a *declaration* of the
  /// attributes the caller may fetch (chunk-wise engines materialize per
  /// chunk and need the full working set up front).
  virtual std::unique_ptr<SelectionHandle> Select(const QuerySpec& spec) = 0;

  /// Convenience: Select + Fetch of every projection, with generic cost
  /// attribution (Select = selection cost, Fetch = reconstruction cost).
  /// Virtual so composite engines (sharding) can fan the whole query out
  /// and attribute per-partition costs precisely. Equivalent to
  /// Execute(spec, ConsumeSpec::Materialize()).rows.
  virtual QueryResult Run(const QuerySpec& spec);

  /// Evaluates `spec` and consumes the qualifying tuples per `consume`
  /// (engine/query.h): materialize, count, aggregate, or stream through a
  /// visitor. Cost attribution rule: reconstruct_micros charges only work
  /// that reconstructs tuples into the caller's hands (materialization,
  /// merges, visitor delivery) — Count/Aggregate queries therefore report
  /// reconstruct_micros == 0 and charge their selection + fold to
  /// select_micros. The returned result carries this query's own cost
  /// delta in addition to the accumulation in cost().
  virtual ExecuteResult Execute(const QuerySpec& spec,
                                const ConsumeSpec& consume);

  CostBreakdown& cost() { return cost_; }
  const CostBreakdown& cost() const { return cost_; }

 protected:
  CostBreakdown cost_;
};

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_ENGINE_H_
