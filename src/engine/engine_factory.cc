#include "engine/engine_factory.h"

namespace crackdb {

std::unique_ptr<Engine> MakeEngine(const std::string& kind,
                                   const Relation& relation) {
  for (const EngineKindEntry& entry : kEngineKinds) {
    if (kind == entry.name) return entry.make(relation);
  }
  return nullptr;
}

EngineFactory MakeEngineFactory(const std::string& kind) {
  for (const EngineKindEntry& entry : kEngineKinds) {
    if (kind == entry.name) {
      return [make = entry.make](const Relation& relation) {
        return make(relation);
      };
    }
  }
  return nullptr;
}

}  // namespace crackdb
