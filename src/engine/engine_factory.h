#ifndef CRACKDB_ENGINE_ENGINE_FACTORY_H_
#define CRACKDB_ENGINE_ENGINE_FACTORY_H_

#include <functional>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "engine/partial_engine.h"
#include "engine/plain_engine.h"
#include "engine/presorted_engine.h"
#include "engine/row_engine.h"
#include "engine/selection_cracking_engine.h"
#include "engine/sideways_engine.h"
#include "storage/relation.h"

namespace crackdb {

/// The one table every engine kind lives in: MakeEngine dispatches over it,
/// build_sanity_test and sharded_engine_test iterate it, and the sharded
/// execution layer instantiates per-partition engines through it — adding a
/// kind here is the only way to make it reachable, and doing so
/// automatically puts it under test (unsharded and sharded).
struct EngineKindEntry {
  const char* name;
  std::unique_ptr<Engine> (*make)(const Relation&);
};

inline constexpr EngineKindEntry kEngineKinds[] = {
    {"plain",
     [](const Relation& r) -> std::unique_ptr<Engine> {
       return std::make_unique<PlainEngine>(r);
     }},
    {"presorted",
     [](const Relation& r) -> std::unique_ptr<Engine> {
       return std::make_unique<PresortedEngine>(r);
     }},
    {"selection-cracking",
     [](const Relation& r) -> std::unique_ptr<Engine> {
       return std::make_unique<SelectionCrackingEngine>(r);
     }},
    {"sideways",
     [](const Relation& r) -> std::unique_ptr<Engine> {
       return std::make_unique<SidewaysEngine>(r);
     }},
    {"partial",
     [](const Relation& r) -> std::unique_ptr<Engine> {
       return std::make_unique<PartialSidewaysEngine>(r);
     }},
    {"row",
     [](const Relation& r) -> std::unique_ptr<Engine> {
       return std::make_unique<RowEngine>(r, false);
     }},
    {"row-presorted",
     [](const Relation& r) -> std::unique_ptr<Engine> {
       return std::make_unique<RowEngine>(r, true);
     }},
};

/// Builds an engine of `kind` over `relation`; nullptr for unknown kinds.
std::unique_ptr<Engine> MakeEngine(const std::string& kind,
                                   const Relation& relation);

/// Per-partition constructor used by the sharded layer: binds `kind` so a
/// ShardedEngine can stamp out one instance per partition relation. Null
/// (empty std::function) for unknown kinds.
using EngineFactory = std::function<std::unique_ptr<Engine>(const Relation&)>;
EngineFactory MakeEngineFactory(const std::string& kind);

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_ENGINE_FACTORY_H_
