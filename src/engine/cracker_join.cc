#include "engine/cracker_join.h"

#include <unordered_map>
#include <vector>

namespace crackdb {

JoinPairs CrackerHeadJoin(const CrackPairs& left,
                          const CrackerIndex& left_index,
                          const CrackPairs& right,
                          const CrackerIndex& right_index) {
  JoinPairs out;
  std::unordered_multimap<Value, uint32_t> table;
  for (const CrackerIndex::Piece& piece : left_index.Pieces(left.size())) {
    if (piece.begin >= piece.end) continue;
    // The right-store area that can contain this piece's value interval:
    // translate the piece's cut bounds into a predicate for FindArea.
    RangePredicate range;
    if (piece.has_lower) {
      range.low = piece.lower.value;
      range.low_inclusive = piece.lower.inclusive;
    }
    if (piece.has_upper) {
      // Piece values do NOT satisfy the upper split: v < upper (inclusive
      // split) or v <= upper (exclusive split).
      range.high = piece.upper.value;
      range.high_inclusive = !piece.upper.inclusive;
    }
    const PositionRange right_area =
        right_index.FindArea(range, right.size());
    if (right_area.empty()) continue;

    // Piece-sized hash build, probe the (bounded) right area.
    table.clear();
    table.reserve(piece.end - piece.begin);
    for (size_t i = piece.begin; i < piece.end; ++i) {
      table.emplace(left.head[i], static_cast<uint32_t>(i));
    }
    for (size_t j = right_area.begin; j < right_area.end; ++j) {
      auto [lo, hi] = table.equal_range(right.head[j]);
      for (auto it = lo; it != hi; ++it) {
        out.left.push_back(it->second);
        out.right.push_back(static_cast<uint32_t>(j));
      }
    }
  }
  return out;
}

namespace {

/// Pieces of `index` restricted to the qualifying area of `pred`, in
/// value order.
std::vector<CrackerIndex::Piece> AreaPieces(const CrackerIndex& index,
                                            const RangePredicate& pred,
                                            size_t store_size) {
  const PositionRange area = index.FindArea(pred, store_size);
  std::vector<CrackerIndex::Piece> pieces;
  for (const CrackerIndex::Piece& p : index.Pieces(store_size)) {
    if (p.begin >= area.begin && p.end <= area.end && p.begin < p.end) {
      pieces.push_back(p);
    }
  }
  return pieces;
}

}  // namespace

Value HeadMaxInArea(const CrackPairs& store, const CrackerIndex& index,
                    const RangePredicate& pred) {
  const std::vector<CrackerIndex::Piece> pieces =
      AreaPieces(index, pred, store.size());
  // Walk pieces from the highest value range down; the first piece that
  // yields any matching value decides (all lower pieces are bounded below
  // its lower split).
  Value best = kMinValue;
  for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
    for (size_t i = it->begin; i < it->end; ++i) {
      const Value v = store.head[i];
      if (pred.Matches(v) && v > best) best = v;
    }
    if (best != kMinValue) break;
  }
  return best;
}

Value HeadMinInArea(const CrackPairs& store, const CrackerIndex& index,
                    const RangePredicate& pred) {
  const std::vector<CrackerIndex::Piece> pieces =
      AreaPieces(index, pred, store.size());
  Value best = kMaxValue;
  for (const CrackerIndex::Piece& piece : pieces) {
    for (size_t i = piece.begin; i < piece.end; ++i) {
      const Value v = store.head[i];
      if (pred.Matches(v) && v < best) best = v;
    }
    if (best != kMaxValue) break;
  }
  return best;
}

}  // namespace crackdb
