#ifndef CRACKDB_ENGINE_CRACKER_JOIN_H_
#define CRACKDB_ENGINE_CRACKER_JOIN_H_

#include "common/types.h"
#include "cracking/crack.h"
#include "cracking/cracker_index.h"
#include "engine/operators.h"

namespace crackdb {

/// Extensions sketched in the paper's Section 3.4 / research agenda
/// ("a join can be performed in a partitioned like way exploiting disjoint
/// ranges in the input maps", "a max can consider only the last piece"):
/// operators that read the cracker index's partitioning knowledge instead
/// of treating cracked stores as opaque arrays.

/// Equi-join over the *head* values of two cracked stores, partition-wise:
/// every piece of the left store joins only against the right-store area
/// that can contain its value range (via the right index), so hash tables
/// stay piece-sized and cache-resident instead of table-sized. Returns
/// matching (left position, right position) pairs; exact same pair set as
/// a flat HashJoin of the two head columns.
///
/// The more cracked the inputs are, the smaller the partitions — the join
/// gets faster as a side effect of earlier selections, with zero
/// preparation. Uncracked inputs degrade gracefully to one flat hash join.
JoinPairs CrackerHeadJoin(const CrackPairs& left,
                          const CrackerIndex& left_index,
                          const CrackPairs& right,
                          const CrackerIndex& right_index);

/// Max/min of head values inside the qualifying area of `pred`, reading
/// only the extreme piece(s) of the area rather than scanning it: the
/// index bounds prove every other piece cannot contain the extremum.
/// `store` must already be cracked on `pred` (area boundaries exist);
/// returns kMinValue / kMaxValue respectively on an empty area.
Value HeadMaxInArea(const CrackPairs& store, const CrackerIndex& index,
                    const RangePredicate& pred);
Value HeadMinInArea(const CrackPairs& store, const CrackerIndex& index,
                    const RangePredicate& pred);

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_CRACKER_JOIN_H_
