#include "engine/query.h"

#include <cstdio>
#include <cstdlib>

#include "engine/database.h"

namespace crackdb {

[[noreturn]] void DieOnErrorAccess(const std::string& error) {
  std::fprintf(stderr, "query: value() called on an error result: %s\n",
               error.c_str());
  std::abort();
}

std::string ExecuteResult::Explain() const {
  if (trace == nullptr) {
    return "(not traced; build the query with .Trace() to record spans)\n";
  }
  return trace->Format();
}

void QueryBuilder::Fail(std::string message) {
  if (q_.error.empty()) q_.error = std::move(message);
}

void QueryBuilder::AddSelection(std::string attr, RangePredicate pred,
                                bool disjunct) {
  if (attr.empty()) {
    Fail("empty attribute name in selection");
    return;
  }
  if (pred.low > pred.high) {
    Fail("inverted range on '" + attr + "': low " + std::to_string(pred.low) +
         " > high " + std::to_string(pred.high));
    return;
  }
  if (disjunct) {
    any_disjunctive_ = true;
  } else if (!q_.spec.selections.empty()) {
    mixed_where_ = true;
  }
  if (mixed_where_ && any_disjunctive_) {
    Fail("cannot mix a multi-predicate Where() conjunction with OrWhere(); "
         "a query is either fully conjunctive or fully disjunctive");
    return;
  }
  q_.spec.disjunctive = any_disjunctive_;
  q_.spec.selections.push_back({std::move(attr), pred});
}

void QueryBuilder::AddProjection(std::string attr) {
  if (attr.empty()) {
    Fail("empty attribute name in projection");
    return;
  }
  q_.spec.projections.push_back(std::move(attr));
}

Query QueryBuilder::Build() {
  switch (q_.consume.kind) {
    case ConsumeKind::kCount:
      // The pushdown: a count touches no attribute at all, so the
      // compiled spec declares none — chunk-wise engines then skip their
      // per-chunk materialization entirely.
      q_.spec.projections.clear();
      break;
    case ConsumeKind::kAggregate:
      if (q_.consume.attr.empty()) {
        Fail("Aggregate() requires an attribute");
        break;
      }
      if (q_.consume.op == AggregateOp::kCount) {
        Fail("Aggregate(kCount) is grouped-only; use Count() for a scalar "
             "cardinality query or GroupBy().Aggregate(kCount, ...) for "
             "per-group counts");
        break;
      }
      // Declare exactly the folded attribute: engines whose handles serve
      // only declared projections (partial, sharded) can then fold it,
      // and nothing else is ever materialized. Terminals are last-call-
      // wins, so an earlier Project() list is simply superseded.
      q_.spec.projections = {q_.consume.attr};
      break;
    case ConsumeKind::kGroupBy: {
      if (q_.consume.group_attr.empty()) {
        Fail("GroupBy() requires an attribute");
        break;
      }
      if (q_.consume.group_aggs.empty()) {
        Fail("GroupBy() requires at least one Aggregate()");
        break;
      }
      bool agg_error = false;
      for (const GroupAggregate& agg : q_.consume.group_aggs) {
        if (agg.attr.empty()) {
          Fail("Aggregate() requires an attribute");
          agg_error = true;
          break;
        }
        if (agg.attr == q_.consume.group_attr) {
          Fail("aggregate attribute '" + agg.attr +
               "' duplicates the group key; the key (and per-group counts "
               "via kCount) are returned without folding it");
          agg_error = true;
          break;
        }
      }
      if (agg_error) break;
      // The pushdown: declare the group key plus every *folded* attribute
      // (kCount fetches no values), deduplicated — engines whose handles
      // serve only declared projections then fold exactly these columns.
      std::vector<std::string> pushdown = {q_.consume.group_attr};
      for (const GroupAggregate& agg : q_.consume.group_aggs) {
        if (agg.op == AggregateOp::kCount) continue;
        if (std::find(pushdown.begin(), pushdown.end(), agg.attr) ==
            pushdown.end()) {
          pushdown.push_back(agg.attr);
        }
      }
      // An explicit Project() list would be silently replaced by the
      // pushdown — reject it (unless it *is* the pushdown, which keeps
      // re-normalizing an already-built query idempotent).
      if (!q_.spec.projections.empty() && q_.spec.projections != pushdown) {
        Fail("Project('" + q_.spec.projections.front() +
             "', ...) conflicts with GroupBy(): a grouped query returns "
             "the group key and aggregate columns only (remove Project())");
        break;
      }
      q_.spec.projections = std::move(pushdown);
      break;
    }
    case ConsumeKind::kForEach:
      if (!q_.consume.visitor) {
        Fail("ForEach() requires a visitor");
      } else if (q_.spec.projections.empty()) {
        Fail("ForEach() requires at least one projected attribute");
      }
      break;
    case ConsumeKind::kMaterialize:
      if (q_.spec.projections.empty()) {
        Fail("Materialize() requires at least one projected attribute "
             "(use Count() for a projection-free cardinality query)");
      }
      break;
  }
  return std::move(q_);
}

QuerySpec QueryBuilder::Spec() {
  Query q = Build();
  if (!q.error.empty()) {
    std::fprintf(stderr, "query builder: invalid query: %s\n",
                 q.error.c_str());
    std::abort();
  }
  return std::move(q.spec);
}

Expected<ExecuteResult> QueryBuilder::Execute() {
  if (db_ == nullptr) {
    return QueryError{
        "Execute() on an unbound builder (create it via Database::From)"};
  }
  return db_->Execute(Build());
}

}  // namespace crackdb
