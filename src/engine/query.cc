#include "engine/query.h"

#include <cstdio>
#include <cstdlib>

#include "engine/database.h"

namespace crackdb {

[[noreturn]] void DieOnErrorAccess(const std::string& error) {
  std::fprintf(stderr, "query: value() called on an error result: %s\n",
               error.c_str());
  std::abort();
}

void QueryBuilder::Fail(std::string message) {
  if (q_.error.empty()) q_.error = std::move(message);
}

void QueryBuilder::AddSelection(std::string attr, RangePredicate pred,
                                bool disjunct) {
  if (attr.empty()) {
    Fail("empty attribute name in selection");
    return;
  }
  if (pred.low > pred.high) {
    Fail("inverted range on '" + attr + "': low " + std::to_string(pred.low) +
         " > high " + std::to_string(pred.high));
    return;
  }
  if (disjunct) {
    any_disjunctive_ = true;
  } else if (!q_.spec.selections.empty()) {
    mixed_where_ = true;
  }
  if (mixed_where_ && any_disjunctive_) {
    Fail("cannot mix a multi-predicate Where() conjunction with OrWhere(); "
         "a query is either fully conjunctive or fully disjunctive");
    return;
  }
  q_.spec.disjunctive = any_disjunctive_;
  q_.spec.selections.push_back({std::move(attr), pred});
}

void QueryBuilder::AddProjection(std::string attr) {
  if (attr.empty()) {
    Fail("empty attribute name in projection");
    return;
  }
  q_.spec.projections.push_back(std::move(attr));
}

Query QueryBuilder::Build() {
  switch (q_.consume.kind) {
    case ConsumeKind::kCount:
      // The pushdown: a count touches no attribute at all, so the
      // compiled spec declares none — chunk-wise engines then skip their
      // per-chunk materialization entirely.
      q_.spec.projections.clear();
      break;
    case ConsumeKind::kAggregate:
      if (q_.consume.attr.empty()) {
        Fail("Aggregate() requires an attribute");
        break;
      }
      // Declare exactly the folded attribute: engines whose handles serve
      // only declared projections (partial, sharded) can then fold it,
      // and nothing else is ever materialized.
      q_.spec.projections = {q_.consume.attr};
      break;
    case ConsumeKind::kForEach:
      if (!q_.consume.visitor) {
        Fail("ForEach() requires a visitor");
      } else if (q_.spec.projections.empty()) {
        Fail("ForEach() requires at least one projected attribute");
      }
      break;
    case ConsumeKind::kMaterialize:
      if (q_.spec.projections.empty()) {
        Fail("Materialize() requires at least one projected attribute "
             "(use Count() for a projection-free cardinality query)");
      }
      break;
  }
  return std::move(q_);
}

QuerySpec QueryBuilder::Spec() {
  Query q = Build();
  if (!q.error.empty()) {
    std::fprintf(stderr, "query builder: invalid query: %s\n",
                 q.error.c_str());
    std::abort();
  }
  return std::move(q.spec);
}

Expected<ExecuteResult> QueryBuilder::Execute() {
  if (db_ == nullptr) {
    return QueryError{
        "Execute() on an unbound builder (create it via Database::From)"};
  }
  return db_->Execute(Build());
}

}  // namespace crackdb
