#ifndef CRACKDB_ENGINE_SIDEWAYS_ENGINE_H_
#define CRACKDB_ENGINE_SIDEWAYS_ENGINE_H_

#include <map>
#include <memory>
#include <string>

#include "core/map_set.h"
#include "core/storage_manager.h"
#include "engine/engine.h"
#include "storage/relation.h"

namespace crackdb {

/// Sideways cracking with fully materialized maps (paper Section 3).
///
/// One MapSet per head attribute, created on demand. For a conjunctive
/// query the engine picks the map set of the *most selective* predicate
/// using the cracker indices as self-organizing histograms (Section 3.3);
/// disjunctive queries symmetrically pick the *least* selective. All other
/// predicates run as bit-vector refinements over the chosen set's aligned
/// maps, and projections are map-tail reconstructions.
///
/// An optional storage threshold (tuples across all maps) reproduces the
/// storage-restricted full-map behaviour of Section 4.2: before a new map
/// is materialized, least-frequently-accessed maps are dropped to make
/// room; recreation replays the set tape.
class SidewaysEngine : public Engine {
 public:
  /// `storage_budget_tuples` of 0 = unlimited.
  explicit SidewaysEngine(const Relation& relation,
                          size_t storage_budget_tuples = 0);

  std::string name() const override { return "sideways"; }

  std::unique_ptr<SelectionHandle> Select(const QuerySpec& spec) override;

  MapSet& GetOrCreateSet(const std::string& head_attr);
  bool HasSet(const std::string& head_attr) const;

  /// Auxiliary map storage in tuples (for the Figure 9(d) storage series).
  size_t MapStorageTuples() const;

  const StorageManager& storage() const { return storage_; }

 private:
  /// Materializes M_{head,tail} under the storage budget and pins it.
  CrackerMap& ObtainMap(MapSet& set, const std::string& tail_attr);

  /// Index into spec.selections of the head predicate per Section 3.3's
  /// map-set-choice rule.
  size_t ChooseHeadSelection(const QuerySpec& spec);

  const Relation* relation_;
  StorageManager storage_;
  std::map<std::string, std::unique_ptr<MapSet>> sets_;
  /// StorageManager ids of live maps, keyed by (head, tail).
  std::map<std::pair<std::string, std::string>, uint64_t> map_ids_;
};

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_SIDEWAYS_ENGINE_H_
