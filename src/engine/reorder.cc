#include "engine/reorder.h"

#include <algorithm>

namespace crackdb {

std::vector<Value> ReconstructUnordered(const Column& base,
                                        const std::vector<Key>& keys) {
  std::vector<Value> out;
  out.reserve(keys.size());
  for (Key k : keys) out.push_back(base[k]);
  return out;
}

std::vector<Value> ReconstructViaSort(const Column& base,
                                      std::vector<Key>* keys) {
  std::sort(keys->begin(), keys->end());
  return ReconstructUnordered(base, *keys);
}

void RadixClusterKeys(std::vector<Key>* keys, unsigned region_bits,
                      size_t domain_size) {
  if (keys->empty() || domain_size == 0) return;
  const size_t num_regions = (domain_size >> region_bits) + 1;
  if (num_regions <= 1) return;
  // Counting sort on the region id (key >> region_bits): one pass to
  // count, one to scatter — the out-of-place radix-cluster of [10].
  std::vector<size_t> counts(num_regions + 1, 0);
  for (Key k : *keys) ++counts[(k >> region_bits) + 1];
  for (size_t i = 1; i <= num_regions; ++i) counts[i] += counts[i - 1];
  std::vector<Key> clustered(keys->size());
  for (Key k : *keys) clustered[counts[k >> region_bits]++] = k;
  *keys = std::move(clustered);
}

std::vector<Value> ReconstructViaRadixCluster(const Column& base,
                                              std::vector<Key>* keys,
                                              unsigned region_bits) {
  RadixClusterKeys(keys, region_bits, base.size());
  return ReconstructUnordered(base, *keys);
}

}  // namespace crackdb
