#include "engine/group_table.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "kernels/kernels.h"

namespace crackdb {

namespace {

constexpr uint32_t kEmptySlot = UINT32_MAX;
constexpr size_t kInitialCapacity = 16;

/// splitmix64 finalizer: cheap, well-mixed bits for power-of-two masking.
uint64_t HashKey(Value key) {
  uint64_t x = static_cast<uint64_t>(key);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Fold-neutral starting accumulator: every group that exists has at least
/// one contributing row, so no per-group validity flag is needed — folding
/// into the neutral element yields the row's value, on every kernel arm.
Value InitialAccumulator(AggregateOp op) {
  switch (op) {
    case AggregateOp::kSum:
      return 0;
    case AggregateOp::kMin:
      return kMaxValue;
    case AggregateOp::kMax:
      return kMinValue;
    case AggregateOp::kCount:
      return 0;  // never folded; filled from counts at finalize.
  }
  return 0;
}

}  // namespace

GroupAccumulator::GroupAccumulator(const ConsumeSpec& consume)
    : consume_(&consume), slots_(kInitialCapacity, kEmptySlot) {
  table_.aggregates.resize(consume.group_aggs.size());
}

uint32_t GroupAccumulator::IdFor(Value key) {
  const size_t mask = slots_.size() - 1;
  size_t slot = static_cast<size_t>(HashKey(key)) & mask;
  while (true) {
    const uint32_t id = slots_[slot];
    if (id == kEmptySlot) break;
    if (table_.keys[id] == key) return id;
    slot = (slot + 1) & mask;
  }
  const uint32_t id = static_cast<uint32_t>(table_.keys.size());
  slots_[slot] = id;
  table_.keys.push_back(key);
  table_.counts.push_back(0);
  for (size_t a = 0; a < consume_->group_aggs.size(); ++a) {
    table_.aggregates[a].push_back(
        InitialAccumulator(consume_->group_aggs[a].op));
  }
  if (table_.keys.size() * 10 >= slots_.size() * 7) Grow();
  return id;
}

void GroupAccumulator::Grow() {
  std::vector<uint32_t> fresh(slots_.size() * 2, kEmptySlot);
  const size_t mask = fresh.size() - 1;
  for (uint32_t id = 0; id < table_.keys.size(); ++id) {
    size_t slot = static_cast<size_t>(HashKey(table_.keys[id])) & mask;
    while (fresh[slot] != kEmptySlot) slot = (slot + 1) & mask;
    fresh[slot] = id;
  }
  slots_ = std::move(fresh);
}

void GroupAccumulator::AddChunk(const Value* group_vals, const Key* keys,
                                size_t n,
                                const std::vector<const Value*>& agg_columns) {
  if (n == 0) return;
  group_of_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Value key = group_vals[keys != nullptr ? keys[i] : i];
    const uint32_t id = IdFor(key);
    ++table_.counts[id];
    group_of_[i] = id;
  }
  for (size_t a = 0; a < agg_columns.size(); ++a) {
    const Value* column = agg_columns[a];
    if (column == nullptr) continue;  // kCount: no values to fold.
    kernels::FoldGroup(ToFoldOp(consume_->group_aggs[a].op), column, keys,
                       group_of_.data(), n, table_.aggregates[a].data());
  }
}

uint32_t GroupAccumulator::AddRowKey(Value key) {
  const uint32_t id = IdFor(key);
  ++table_.counts[id];
  return id;
}

void GroupAccumulator::FoldInto(size_t agg, uint32_t id, Value v) {
  Value& acc = table_.aggregates[agg][id];
  switch (consume_->group_aggs[agg].op) {
    case AggregateOp::kSum:
      // Unsigned add: sums wrap modulo 2^64, same contract as the arms.
      acc = static_cast<Value>(static_cast<uint64_t>(acc) +
                               static_cast<uint64_t>(v));
      break;
    case AggregateOp::kMin:
      acc = std::min(acc, v);
      break;
    case AggregateOp::kMax:
      acc = std::max(acc, v);
      break;
    case AggregateOp::kCount:
      break;  // counts are bumped by AddRowKey/Merge, never folded.
  }
}

void GroupAccumulator::Merge(const GroupedTable& partial) {
  for (size_t g = 0; g < partial.keys.size(); ++g) {
    const uint32_t id = IdFor(partial.keys[g]);
    table_.counts[id] += partial.counts[g];
    for (size_t a = 0; a < partial.aggregates.size(); ++a) {
      FoldInto(a, id, partial.aggregates[a][g]);
    }
  }
}

GroupedTable GroupAccumulator::Take() {
  GroupedTable out = std::move(table_);
  table_ = GroupedTable{};
  table_.aggregates.resize(consume_->group_aggs.size());
  slots_.assign(kInitialCapacity, kEmptySlot);
  return out;
}

GroupedTable FinalizeGrouped(const ConsumeSpec& consume, GroupedTable table) {
  const size_t n = table.keys.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&table](uint32_t a, uint32_t b) {
    return table.keys[a] < table.keys[b];
  });
  GroupedTable out;
  out.keys.reserve(n);
  out.counts.reserve(n);
  out.aggregates.resize(table.aggregates.size());
  for (uint32_t id : order) {
    out.keys.push_back(table.keys[id]);
    out.counts.push_back(table.counts[id]);
  }
  for (size_t a = 0; a < table.aggregates.size(); ++a) {
    out.aggregates[a].reserve(n);
    if (consume.group_aggs[a].op == AggregateOp::kCount) {
      for (uint32_t id : order) {
        out.aggregates[a].push_back(static_cast<Value>(table.counts[id]));
      }
    } else {
      for (uint32_t id : order) {
        out.aggregates[a].push_back(table.aggregates[a][id]);
      }
    }
  }
  return out;
}

}  // namespace crackdb
