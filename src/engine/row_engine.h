#ifndef CRACKDB_ENGINE_ROW_ENGINE_H_
#define CRACKDB_ENGINE_ROW_ENGINE_H_

#include <map>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "storage/relation.h"
#include "storage/row_store.h"

namespace crackdb {

/// N-ary row-store engine — the stand-in for the paper's MySQL baseline in
/// the TPC-H experiment (Figure 14). Tuples are evaluated one at a time
/// against *all* predicates in a single pass, so multi-predicate queries
/// (e.g., Q19's disjunctions) cost one scan regardless of how many
/// attributes they touch; the trade is that every scan reads full tuples.
///
/// With `presorted` enabled the engine keeps one clustered copy per
/// primary selection attribute (built lazily, charged to prepare cost) and
/// binary-searches it, mirroring "MySQL presorted".
class RowEngine : public Engine {
 public:
  RowEngine(const Relation& relation, bool presorted);

  std::string name() const override {
    return presorted_ ? "row-presorted" : "row";
  }

  std::unique_ptr<SelectionHandle> Select(const QuerySpec& spec) override;

 private:
  RowStore& GetOrCreateSorted(const std::string& attr);
  void BuildBase();
  /// Rebuilds all row storage when the relation's update log advanced
  /// (NSM stores have no incremental maintenance here; like the presorted
  /// column copies, updates force reconstruction).
  void RefreshIfStale();

  const Relation* relation_;
  bool presorted_;
  std::unique_ptr<RowStore> base_;
  std::map<std::string, std::unique_ptr<RowStore>> sorted_copies_;
  size_t log_version_ = 0;
};

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_ROW_ENGINE_H_
