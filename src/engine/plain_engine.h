#ifndef CRACKDB_ENGINE_PLAIN_ENGINE_H_
#define CRACKDB_ENGINE_PLAIN_ENGINE_H_

#include <memory>
#include <string>

#include "engine/engine.h"
#include "storage/relation.h"

namespace crackdb {

/// The non-cracking column-store baseline ("plain MonetDB"): selections
/// scan base columns producing key lists in insertion order, conjunctions
/// refine the key list with in-order positional lookups, and tuple
/// reconstruction is a cache-friendly sequential positional gather (paper
/// Section 2.1). No auxiliary structures, no learning across queries.
class PlainEngine : public Engine {
 public:
  explicit PlainEngine(const Relation& relation) : relation_(&relation) {}

  std::string name() const override { return "plain"; }

  std::unique_ptr<SelectionHandle> Select(const QuerySpec& spec) override;

 private:
  const Relation* relation_;
};

}  // namespace crackdb

#endif  // CRACKDB_ENGINE_PLAIN_ENGINE_H_
