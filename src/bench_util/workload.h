#ifndef CRACKDB_BENCH_UTIL_WORKLOAD_H_
#define CRACKDB_BENCH_UTIL_WORKLOAD_H_

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "engine/engine.h"
#include "storage/catalog.h"
#include "storage/relation.h"

namespace crackdb::bench {

/// Builders and generators for the paper's synthetic workloads
/// (Sections 3.6 and 4.2): relations of k integer attributes with values
/// uniform in [1, domain], random range queries of fixed selectivity,
/// skewed hot-set variants, and random update streams.

/// Creates relation `name` with attributes A1..A`num_attrs`, `num_rows`
/// rows, values uniform in [1, domain].
Relation& CreateUniformRelation(Catalog* catalog, const std::string& name,
                                size_t num_attrs, size_t num_rows,
                                Value domain, Rng* rng);

/// Attribute name "A<i>" (1-based), as produced by CreateUniformRelation.
std::string AttrName(size_t i);

/// A random range within [lo, hi] selecting ~`selectivity` of a uniform
/// domain; `selectivity` 0 yields a point query.
RangePredicate RandomRange(Rng* rng, Value lo, Value hi, double selectivity);

/// The paper's skewed generator (Exp5 / Figure 10(b)): with probability
/// `hot_probability` the range falls inside the hot fraction of the
/// domain, otherwise in the rest. Selectivity is relative to the full
/// domain size.
struct SkewedRangeGen {
  Value domain_lo = 1;
  Value domain_hi = 10'000'000;
  double hot_fraction = 0.5;
  double hot_probability = 0.9;
  double selectivity = 0.2;

  RangePredicate Next(Rng* rng) const;
};

/// A *shifting* hotspot (the adaptive-repartitioning stress shape): a hot
/// window of `hot_fraction` of the domain receives `hot_probability` of
/// the queries, and the window slides by `drift_step` of the domain every
/// `queries_per_phase` calls (wrapping around), so any partition map tuned
/// to the current hotspot goes stale a few thousand queries later. Used by
/// bench_adaptive_repartition and bench_concurrent_throughput --drift.
class DriftingHotspotGen {
 public:
  Value domain_lo = 1;
  Value domain_hi = 10'000'000;
  double hot_fraction = 0.10;
  double hot_probability = 0.95;
  /// Query width relative to the full domain.
  double selectivity = 0.01;
  size_t queries_per_phase = 2'000;
  /// Window advance per phase, as a fraction of the domain.
  double drift_step = 0.15;

  /// The next query's range; advances the phase clock.
  RangePredicate Next(Rng* rng);

  /// Completed phases (window moves) so far.
  size_t phase() const { return issued_ / queries_per_phase; }
  /// Current hot window, for reporting.
  RangePredicate HotWindow() const;

 private:
  size_t issued_ = 0;
};

/// A zoom-in session (the paper's drifting-analyst shape, sharpened): the
/// queried window starts as the whole domain and shrinks by `shrink`
/// around a fixed focus point every `queries_per_level` queries, down to
/// `max_levels`. Early queries are broad scans; late queries hammer an
/// ever-narrower value region — the workload that rewards recursively
/// splitting the focus partition.
class ZoomInGen {
 public:
  Value domain_lo = 1;
  Value domain_hi = 10'000'000;
  /// Focus position as a fraction of the domain.
  double focus_fraction = 0.7;
  double shrink = 0.5;
  /// Query width relative to the *current* window.
  double selectivity = 0.2;
  size_t queries_per_level = 1'000;
  size_t max_levels = 8;

  RangePredicate Next(Rng* rng);

  size_t level() const {
    return std::min(issued_ / queries_per_level, max_levels);
  }
  /// Current zoom window, for reporting.
  RangePredicate Window() const;

 private:
  size_t issued_ = 0;
};

/// Applies `count` random updates: alternating inserts of fresh uniform
/// rows and deletes of random live rows (an update = delete + insert per
/// the paper's model). Returns the number of events logged.
size_t ApplyRandomUpdates(Relation* relation, Value domain, size_t count,
                          Rng* rng);

/// A result's rows as an order-insensitive multiset — the standard
/// cross-engine comparison form used throughout the tests and benches
/// (engines legitimately return rows in different physical orders).
std::multiset<std::vector<Value>> ZipRows(const QueryResult& r);

}  // namespace crackdb::bench

#endif  // CRACKDB_BENCH_UTIL_WORKLOAD_H_
