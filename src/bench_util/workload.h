#ifndef CRACKDB_BENCH_UTIL_WORKLOAD_H_
#define CRACKDB_BENCH_UTIL_WORKLOAD_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "engine/engine.h"
#include "storage/catalog.h"
#include "storage/relation.h"

namespace crackdb::bench {

/// Builders and generators for the paper's synthetic workloads
/// (Sections 3.6 and 4.2): relations of k integer attributes with values
/// uniform in [1, domain], random range queries of fixed selectivity,
/// skewed hot-set variants, and random update streams.

/// Creates relation `name` with attributes A1..A`num_attrs`, `num_rows`
/// rows, values uniform in [1, domain].
Relation& CreateUniformRelation(Catalog* catalog, const std::string& name,
                                size_t num_attrs, size_t num_rows,
                                Value domain, Rng* rng);

/// Attribute name "A<i>" (1-based), as produced by CreateUniformRelation.
std::string AttrName(size_t i);

/// A random range within [lo, hi] selecting ~`selectivity` of a uniform
/// domain; `selectivity` 0 yields a point query.
RangePredicate RandomRange(Rng* rng, Value lo, Value hi, double selectivity);

/// The paper's skewed generator (Exp5 / Figure 10(b)): with probability
/// `hot_probability` the range falls inside the hot fraction of the
/// domain, otherwise in the rest. Selectivity is relative to the full
/// domain size.
struct SkewedRangeGen {
  Value domain_lo = 1;
  Value domain_hi = 10'000'000;
  double hot_fraction = 0.5;
  double hot_probability = 0.9;
  double selectivity = 0.2;

  RangePredicate Next(Rng* rng) const;
};

/// Applies `count` random updates: alternating inserts of fresh uniform
/// rows and deletes of random live rows (an update = delete + insert per
/// the paper's model). Returns the number of events logged.
size_t ApplyRandomUpdates(Relation* relation, Value domain, size_t count,
                          Rng* rng);

/// A result's rows as an order-insensitive multiset — the standard
/// cross-engine comparison form used throughout the tests and benches
/// (engines legitimately return rows in different physical orders).
std::multiset<std::vector<Value>> ZipRows(const QueryResult& r);

}  // namespace crackdb::bench

#endif  // CRACKDB_BENCH_UTIL_WORKLOAD_H_
