#include "bench_util/workload.h"

#include <algorithm>

namespace crackdb::bench {

std::string AttrName(size_t i) {
  // Built with += rather than operator+(const char*, string&&): the
  // latter trips a GCC 12 -Wrestrict false positive at -O3, breaking
  // -DCMAKE_BUILD_TYPE=Release under -Werror.
  std::string name = "A";
  name += std::to_string(i);
  return name;
}

Relation& CreateUniformRelation(Catalog* catalog, const std::string& name,
                                size_t num_attrs, size_t num_rows,
                                Value domain, Rng* rng) {
  Relation& rel = catalog->CreateRelation(name);
  for (size_t a = 1; a <= num_attrs; ++a) rel.AddColumn(AttrName(a));
  std::vector<Value> row(num_attrs);
  for (size_t r = 0; r < num_rows; ++r) {
    for (size_t a = 0; a < num_attrs; ++a) row[a] = rng->Uniform(1, domain);
    rel.BulkLoadRow(row);
  }
  return rel;
}

RangePredicate RandomRange(Rng* rng, Value lo, Value hi, double selectivity) {
  const Value span = hi - lo + 1;
  const Value width =
      std::max<Value>(0, static_cast<Value>(selectivity *
                                            static_cast<double>(span)) - 1);
  const Value start = rng->Uniform(lo, std::max(lo, hi - width));
  if (width == 0) return RangePredicate::Point(start);
  return RangePredicate::Closed(start, start + width);
}

RangePredicate SkewedRangeGen::Next(Rng* rng) const {
  const Value span = domain_hi - domain_lo + 1;
  const Value hot_end =
      domain_lo + static_cast<Value>(hot_fraction *
                                     static_cast<double>(span)) - 1;
  const Value width =
      std::max<Value>(0, static_cast<Value>(selectivity *
                                            static_cast<double>(span)) - 1);
  if (rng->Bernoulli(hot_probability)) {
    const Value hi = std::max(domain_lo, hot_end - width);
    const Value start = rng->Uniform(domain_lo, hi);
    return RangePredicate::Closed(start, start + width);
  }
  const Value lo = std::min(hot_end + 1, domain_hi);
  const Value start = rng->Uniform(lo, std::max(lo, domain_hi - width));
  return RangePredicate::Closed(start, start + width);
}

RangePredicate DriftingHotspotGen::HotWindow() const {
  const Value span = domain_hi - domain_lo + 1;
  const Value window = std::max<Value>(
      1, static_cast<Value>(hot_fraction * static_cast<double>(span)));
  const Value step = std::max<Value>(
      1, static_cast<Value>(drift_step * static_cast<double>(span)));
  const Value travel = std::max<Value>(1, span - window + 1);
  const Value offset = static_cast<Value>(
      (static_cast<uint64_t>(phase()) * static_cast<uint64_t>(step)) %
      static_cast<uint64_t>(travel));
  const Value lo = domain_lo + offset;
  return RangePredicate::Closed(lo, std::min(domain_hi, lo + window - 1));
}

RangePredicate DriftingHotspotGen::Next(Rng* rng) {
  const RangePredicate hot = HotWindow();
  ++issued_;
  const Value span = domain_hi - domain_lo + 1;
  const Value width =
      std::max<Value>(0, static_cast<Value>(selectivity *
                                            static_cast<double>(span)) - 1);
  if (rng->Bernoulli(hot_probability)) {
    const Value hi = std::max(hot.low, hot.high - width);
    const Value start = rng->Uniform(hot.low, hi);
    return RangePredicate::Closed(start,
                                  std::min(domain_hi, start + width));
  }
  // Cold tail: anywhere in the domain, same width.
  const Value start = rng->Uniform(domain_lo, std::max(domain_lo,
                                                       domain_hi - width));
  return RangePredicate::Closed(start, start + width);
}

RangePredicate ZoomInGen::Window() const {
  const Value span = domain_hi - domain_lo + 1;
  double fraction = 1.0;
  for (size_t l = 0; l < level(); ++l) fraction *= shrink;
  const Value width = std::max<Value>(
      1, static_cast<Value>(fraction * static_cast<double>(span)));
  const Value focus =
      domain_lo + static_cast<Value>(focus_fraction *
                                     static_cast<double>(span - 1));
  const Value lo =
      std::clamp(focus - width / 2, domain_lo, domain_hi - width + 1);
  return RangePredicate::Closed(lo, lo + width - 1);
}

RangePredicate ZoomInGen::Next(Rng* rng) {
  const RangePredicate window = Window();
  ++issued_;
  const Value window_span = window.high - window.low + 1;
  const Value width = std::max<Value>(
      0, static_cast<Value>(selectivity *
                            static_cast<double>(window_span)) - 1);
  const Value start =
      rng->Uniform(window.low, std::max(window.low, window.high - width));
  return RangePredicate::Closed(start, std::min(window.high, start + width));
}

size_t ApplyRandomUpdates(Relation* relation, Value domain, size_t count,
                          Rng* rng) {
  std::vector<Value> row(relation->num_columns());
  size_t applied = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      for (auto& v : row) v = rng->Uniform(1, domain);
      relation->AppendRow(row);
      ++applied;
    } else {
      // Delete a random live row (bounded retry against tombstones).
      for (int attempt = 0; attempt < 64; ++attempt) {
        const Key k = static_cast<Key>(
            rng->Uniform(0, static_cast<Value>(relation->num_rows()) - 1));
        if (!relation->IsDeleted(k)) {
          relation->DeleteRow(k);
          ++applied;
          break;
        }
      }
    }
  }
  return applied;
}

std::multiset<std::vector<Value>> ZipRows(const QueryResult& r) {
  std::multiset<std::vector<Value>> out;
  for (size_t i = 0; i < r.num_rows; ++i) {
    std::vector<Value> row;
    row.reserve(r.columns.size());
    for (const std::vector<Value>& col : r.columns) row.push_back(col[i]);
    out.insert(row);
  }
  return out;
}

}  // namespace crackdb::bench
