#include "bench_util/runner.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util/report.h"
#include "common/timer.h"
#include "engine/operators.h"

namespace crackdb::bench {

RunOutcome RunTimed(Engine* engine, const QuerySpec& spec, bool keep_result) {
  RunOutcome outcome;
  const CostBreakdown before = engine->cost();
  Timer timer;
  QueryResult result = engine->Run(spec);
  // One-off physical-design preparation (presorting) is reported separately
  // from query response time, as throughout the paper's figures.
  const double prepare_delta =
      engine->cost().prepare_micros - before.prepare_micros;
  outcome.timing.total_micros = timer.ElapsedMicros() - prepare_delta;
  outcome.timing.select_micros = engine->cost().select_micros -
                                 before.select_micros - prepare_delta;
  outcome.timing.reconstruct_micros =
      engine->cost().reconstruct_micros - before.reconstruct_micros;
  outcome.column_max.reserve(result.columns.size());
  for (const std::vector<Value>& col : result.columns) {
    outcome.column_max.push_back(MaxOf(col));
  }
  if (keep_result) outcome.result = std::move(result);
  return outcome;
}

namespace {

/// The standard flags every bench binary accepts; PrintHelp generates the
/// `--help` table from this plus the binary's own BenchFlag span, so the
/// table can never drift from what Parse accepts.
struct StandardFlag {
  const char* name;
  const char* help;
};

constexpr StandardFlag kStandardFlags[] = {
    {"--rows=N", "relation size in tuples (default: per-binary)"},
    {"--queries=N", "query-sequence length (default: per-binary)"},
    {"--seed=N", "workload RNG seed (default: 42)"},
    {"--sf=F", "TPC-H scale factor (TPC-H benches only)"},
    {"--paper-scale", "the paper's full experiment sizes"},
    {"--smoke",
     "CI fast path: tiny sizes for unset flags, same code paths"},
    {"--help", "this generated flags table"},
};

}  // namespace

void BenchArgs::PrintHelp(const char* argv0, std::span<const BenchFlag> extra,
                          std::FILE* out) {
  std::fprintf(out, "usage: %s [flags]\n\nflags:\n", argv0);
  size_t width = 0;
  for (const StandardFlag& flag : kStandardFlags) {
    width = std::max(width, std::strlen(flag.name));
  }
  for (const BenchFlag& flag : extra) {
    width = std::max(width, std::strlen(flag.name));
  }
  for (const StandardFlag& flag : kStandardFlags) {
    std::fprintf(out, "  %-*s  %s\n", static_cast<int>(width), flag.name,
                 flag.help);
  }
  if (!extra.empty()) {
    std::fprintf(out, "\nthis binary only:\n");
    for (const BenchFlag& flag : extra) {
      std::fprintf(out, "  %-*s  %s\n", static_cast<int>(width), flag.name,
                   flag.help);
    }
  }
}

BenchArgs BenchArgs::Parse(int argc, char** argv,
                           std::span<const BenchFlag> extra) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--rows=", 7) == 0) {
      args.rows = static_cast<size_t>(std::atoll(a + 7));
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      args.queries = static_cast<size_t>(std::atoll(a + 10));
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(a + 7));
    } else if (std::strcmp(a, "--paper-scale") == 0) {
      args.paper_scale = true;
    } else if (std::strcmp(a, "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strncmp(a, "--sf=", 5) == 0) {
      args.scale_factor = std::atof(a + 5);
    } else if (std::strcmp(a, "--help") == 0) {
      PrintHelp(argv[0], extra, stdout);
      std::exit(0);
    } else {
      bool consumed = false;
      for (const BenchFlag& flag : extra) {
        if (flag.parse(a)) {
          consumed = true;
          break;
        }
      }
      if (!consumed) {
        std::fprintf(stderr, "unknown flag: %s\n\n", a);
        PrintHelp(argv[0], extra, stderr);
        std::exit(2);
      }
    }
  }
  // Smoke mode rides the existing "explicit flags beat binary defaults"
  // mechanism: it fills in tiny sizes wherever the caller left the default.
  if (args.smoke) {
    if (args.rows == 0) args.rows = kSmokeRows;
    if (args.queries == 0) args.queries = kSmokeQueries;
    if (args.scale_factor <= 0) args.scale_factor = kSmokeScaleFactor;
  }
  // Every bench run ends with a one-line metrics-registry snapshot, so the
  // BENCH_* JSON logs carry the engine-internal counters alongside the
  // figures without per-binary wiring. (--help and bad-flag exits above
  // return before this registration.)
  std::atexit(PrintMetricsSnapshotLine);
  return args;
}

std::vector<size_t> ParseSizeList(const char* flag, const char* s) {
  std::vector<size_t> out;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p || v == 0 || (*end != ',' && *end != '\0')) {
      std::fprintf(stderr,
                   "%s wants a comma list of positive counts, got '%s'\n",
                   flag, s);
      std::exit(2);
    }
    out.push_back(static_cast<size_t>(v));
    if (*end == '\0') break;
    p = end + 1;
  }
  return out;
}

bool SmokeRequested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

}  // namespace crackdb::bench
