#ifndef CRACKDB_BENCH_UTIL_REPORT_H_
#define CRACKDB_BENCH_UTIL_REPORT_H_

#include <string>
#include <vector>

namespace crackdb::bench {

/// Plain-text emitters for the bench binaries. Every figure/table of the
/// paper is regenerated as a labelled block of rows that can be diffed,
/// plotted, or grepped:
///
///   # figure <id>: <title>
///   # series <name>
///   x y [y2 ...]
///
/// plus aligned tables for the paper's cost-breakdown tables.

void FigureHeader(const std::string& id, const std::string& title,
                  const std::string& x_label, const std::string& y_label);
void SeriesHeader(const std::string& name);
void Point(double x, double y);
void Point(double x, double y, double y2);

/// Aligned-column table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string Fmt(double v, int precision = 2);

// Latency percentile rows are printed from crackdb::Summarize
// (common/stats.h) — the repo's one series summarizer.

/// One-line snapshot of the process-wide metrics registry, emitted at the
/// end of every bench run so an overnight log carries the counters next
/// to the figures: `# metrics name=value ...` for every non-zero counter
/// and gauge (histograms contribute `name_count`/`name_sum`).
void PrintMetricsSnapshotLine();

}  // namespace crackdb::bench

#endif  // CRACKDB_BENCH_UTIL_REPORT_H_
