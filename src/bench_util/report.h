#ifndef CRACKDB_BENCH_UTIL_REPORT_H_
#define CRACKDB_BENCH_UTIL_REPORT_H_

#include <string>
#include <vector>

namespace crackdb::bench {

/// Plain-text emitters for the bench binaries. Every figure/table of the
/// paper is regenerated as a labelled block of rows that can be diffed,
/// plotted, or grepped:
///
///   # figure <id>: <title>
///   # series <name>
///   x y [y2 ...]
///
/// plus aligned tables for the paper's cost-breakdown tables.

void FigureHeader(const std::string& id, const std::string& title,
                  const std::string& x_label, const std::string& y_label);
void SeriesHeader(const std::string& name);
void Point(double x, double y);
void Point(double x, double y, double y2);

/// Aligned-column table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string Fmt(double v, int precision = 2);

/// Percentile summary of per-op latency samples, for printing alongside
/// aggregate throughput (bench_concurrent_throughput, bench_batch_
/// pipeline). Percentiles are nearest-rank over the sorted samples.
struct LatencySummary {
  size_t count = 0;
  double mean_micros = 0;
  double p50_micros = 0;
  double p95_micros = 0;
  double p99_micros = 0;
  double max_micros = 0;
};

/// Sorts `samples_micros` in place and summarizes it. An empty sample set
/// yields an all-zero summary.
LatencySummary SummarizeLatencies(std::vector<double>& samples_micros);

}  // namespace crackdb::bench

#endif  // CRACKDB_BENCH_UTIL_REPORT_H_
