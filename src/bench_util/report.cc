#include "bench_util/report.h"

#include <cstdio>

#include "obs/metrics.h"

namespace crackdb::bench {

void FigureHeader(const std::string& id, const std::string& title,
                  const std::string& x_label, const std::string& y_label) {
  std::printf("\n# figure %s: %s\n# x=%s y=%s\n", id.c_str(), title.c_str(),
              x_label.c_str(), y_label.c_str());
}

void SeriesHeader(const std::string& name) {
  std::printf("# series %s\n", name.c_str());
}

void Point(double x, double y) { std::printf("%.6g %.6g\n", x, y); }

void Point(double x, double y, double y2) {
  std::printf("%.6g %.6g %.6g\n", x, y, y2);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void PrintMetricsSnapshotLine() {
  std::printf("# metrics");
  for (const obs::MetricSample& s : obs::MetricsRegistry::Global().Snapshot()) {
    switch (s.kind) {
      case obs::MetricKind::kCounter:
      case obs::MetricKind::kGauge:
        if (s.value != 0.0) std::printf(" %s=%.6g", s.name.c_str(), s.value);
        break;
      case obs::MetricKind::kHistogram:
        if (s.count != 0) {
          std::printf(" %s_count=%llu %s_sum=%.6g", s.name.c_str(),
                      static_cast<unsigned long long>(s.count),
                      s.name.c_str(), s.value);
        }
        break;
    }
  }
  std::printf("\n");
}

}  // namespace crackdb::bench
