#include "bench_util/report.h"

#include <algorithm>
#include <cstdio>

namespace crackdb::bench {

void FigureHeader(const std::string& id, const std::string& title,
                  const std::string& x_label, const std::string& y_label) {
  std::printf("\n# figure %s: %s\n# x=%s y=%s\n", id.c_str(), title.c_str(),
              x_label.c_str(), y_label.c_str());
}

void SeriesHeader(const std::string& name) {
  std::printf("# series %s\n", name.c_str());
}

void Point(double x, double y) { std::printf("%.6g %.6g\n", x, y); }

void Point(double x, double y, double y2) {
  std::printf("%.6g %.6g %.6g\n", x, y, y2);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

LatencySummary SummarizeLatencies(std::vector<double>& samples_micros) {
  LatencySummary summary;
  if (samples_micros.empty()) return summary;
  std::sort(samples_micros.begin(), samples_micros.end());
  const size_t n = samples_micros.size();
  auto nearest_rank = [&](double pct) {
    // Nearest-rank: the smallest sample with at least pct of the mass at
    // or below it.
    size_t rank = static_cast<size_t>(pct * static_cast<double>(n) + 0.5);
    if (rank == 0) rank = 1;
    if (rank > n) rank = n;
    return samples_micros[rank - 1];
  };
  summary.count = n;
  double sum = 0;
  for (double v : samples_micros) sum += v;
  summary.mean_micros = sum / static_cast<double>(n);
  summary.p50_micros = nearest_rank(0.50);
  summary.p95_micros = nearest_rank(0.95);
  summary.p99_micros = nearest_rank(0.99);
  summary.max_micros = samples_micros.back();
  return summary;
}

}  // namespace crackdb::bench
