#ifndef CRACKDB_BENCH_UTIL_RUNNER_H_
#define CRACKDB_BENCH_UTIL_RUNNER_H_

#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace crackdb::bench {

/// Wall-clock and cost-breakdown timing of one query on one engine.
struct QueryTiming {
  double total_micros = 0;
  double select_micros = 0;
  double reconstruct_micros = 0;
};

/// Runs `spec` on `engine`, returning timing plus the result (for
/// cross-engine verification). Aggregate results are summed per column to
/// avoid holding large materializations when `aggregate_only` is set.
struct RunOutcome {
  QueryTiming timing;
  QueryResult result;
  /// Per-projection max aggregate (the experiments' q1/q3 shape).
  std::vector<Value> column_max;
};
RunOutcome RunTimed(Engine* engine, const QuerySpec& spec,
                    bool keep_result = false);

/// One row of the generated `--help` flags table. Binaries with flags
/// beyond the standard set pass a BenchFlag span to Parse: `name` is the
/// grammar shown in the table ("--threads=LIST"), `help` the one-line
/// description, and `parse` returns true iff it consumed the argv entry.
struct BenchFlag {
  const char* name;
  const char* help;
  std::function<bool(const char* arg)> parse;
};

/// Command-line parsing for the bench binaries: --rows=N --queries=N
/// --paper-scale --smoke --seed=N etc. `--help` prints a generated table
/// of every flag (standard plus per-bench `extra`) and exits 0; unknown
/// flags print the same table to stderr and exit 2.
struct BenchArgs {
  size_t rows = 0;        // 0 = binary default
  size_t queries = 0;     // 0 = binary default
  uint64_t seed = 42;
  bool paper_scale = false;
  bool smoke = false;       // CI fast path: tiny sizes, same code paths
  double scale_factor = 0;  // TPC-H benches

  static BenchArgs Parse(int argc, char** argv,
                         std::span<const BenchFlag> extra = {});

  /// The generated flags table behind `--help`.
  static void PrintHelp(const char* argv0, std::span<const BenchFlag> extra,
                        std::FILE* out);
};

/// Sizes `--smoke` substitutes for unset --rows/--queries/--sf: large enough
/// to exercise cracking, reconstruction, and eviction paths, small enough
/// that every bench binary doubles as a sub-second CTest smoke test.
inline constexpr size_t kSmokeRows = 5'000;
inline constexpr size_t kSmokeQueries = 5;
inline constexpr double kSmokeScaleFactor = 0.01;

/// Whether `--smoke` appears on the command line. For binaries (the
/// examples) that take no other flags and so skip BenchArgs::Parse.
bool SmokeRequested(int argc, char** argv);

/// Parses a comma list of positive counts ("1,2,8") for sweep flags like
/// --threads / --batch. `flag` names the flag in the error message; exits
/// 2 on malformed input.
std::vector<size_t> ParseSizeList(const char* flag, const char* s);

}  // namespace crackdb::bench

#endif  // CRACKDB_BENCH_UTIL_RUNNER_H_
