#ifndef CRACKDB_KERNELS_KERNEL_IMPL_H_
#define CRACKDB_KERNELS_KERNEL_IMPL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

/// Internal helpers shared by the implementation arms (kernels_*.cc).
/// Not part of the public kernel API.
namespace crackdb::kernels::detail {

/// A Bound normalized to "v satisfies iff v >= threshold". `none` marks
/// the one unrepresentable case (value == kMaxValue, exclusive): nothing
/// satisfies, threshold is meaningless.
struct UpperThreshold {
  Value threshold = 0;
  bool none = false;
};

inline UpperThreshold ThresholdOf(const Bound& b) {
  if (!b.inclusive && b.value == kMaxValue) return {0, true};
  return {b.inclusive ? b.value : b.value + 1, false};
}

/// A RangePredicate normalized to the closed interval [lo, hi] (`empty`
/// when no value can match). Branch-free arms test `lo <= v && v <= hi`;
/// identical to RangePredicate::Matches for every input.
struct ClosedRange {
  Value lo = kMinValue;
  Value hi = kMaxValue;
  bool empty = false;
};

inline ClosedRange NormalizeRange(const RangePredicate& p) {
  ClosedRange r{p.low, p.high, false};
  if (!p.low_inclusive) {
    if (r.lo == kMaxValue) {
      r.empty = true;
      return r;
    }
    ++r.lo;
  }
  if (!p.high_inclusive) {
    if (r.hi == kMinValue) {
      r.empty = true;
      return r;
    }
    --r.hi;
  }
  if (r.lo > r.hi) r.empty = true;
  return r;
}

/// Per-thread scratch for the out-of-place crack arms. Cracks run under
/// partition locks but different threads crack different partitions
/// concurrently, so the scratch is thread-local; it grows to the largest
/// piece a thread has cracked and is reused across cracks.
struct CrackScratch {
  std::vector<Value> mid_head, mid_tail;
  std::vector<Value> up_head, up_tail;

  void EnsureUpper(size_t n) {
    if (up_head.size() < n) {
      up_head.resize(n);
      up_tail.resize(n);
    }
  }
  void EnsureMiddle(size_t n) {
    if (mid_head.size() < n) {
      mid_head.resize(n);
      mid_tail.resize(n);
    }
  }
};

inline CrackScratch& TlsCrackScratch() {
  thread_local CrackScratch scratch;
  return scratch;
}

}  // namespace crackdb::kernels::detail

#endif  // CRACKDB_KERNELS_KERNEL_IMPL_H_
