// The portable branch-free arm (Isa::kSse2). No intrinsics: every loop is
// written predicated — data-dependent branches become arithmetic on the
// comparison result — so the compiler can auto-vectorize under the x86-64
// baseline (SSE2) and branch mispredictions vanish even where it can't.
// Cracks are out-of-place dual-writes: the lower class is written back in
// place (its cursor never passes the read index), upper classes stream
// into thread-local scratch and are copied back after the pass. The
// resulting intra-piece order differs from the scalar arm's swap-based
// partition but is deterministic; the contract (split position + per-side
// multisets) is identical.

#include <algorithm>
#include <cstring>

#include "kernels/kernel_arms.h"
#include "kernels/kernel_impl.h"

namespace crackdb::kernels::detail {

size_t CrackInTwo_Sse2(Value* head, Value* tail, size_t n, Bound bound) {
  const UpperThreshold th = ThresholdOf(bound);
  if (th.none) return n;
  const Value t = th.threshold;
  CrackScratch& s = TlsCrackScratch();
  s.EnsureUpper(n);
  Value* uh = s.up_head.data();
  Value* ut = s.up_tail.data();
  size_t lo = 0;
  size_t up = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value v = head[i];
    const Value w = tail[i];
    const bool is_up = v >= t;
    // Dual write: both destinations written unconditionally, one cursor
    // advances. lo <= i always, so the in-place write never clobbers an
    // unread entry.
    head[lo] = v;
    tail[lo] = w;
    uh[up] = v;
    ut[up] = w;
    lo += static_cast<size_t>(!is_up);
    up += static_cast<size_t>(is_up);
  }
  if (up != 0) {
    std::memcpy(head + lo, uh, up * sizeof(Value));
    std::memcpy(tail + lo, ut, up * sizeof(Value));
  }
  return lo;
}

void CrackInThree_Sse2(Value* head, Value* tail, size_t n, Bound lo,
                       Bound hi, size_t* mid_begin, size_t* hi_begin) {
  const UpperThreshold th_lo = ThresholdOf(lo);
  const UpperThreshold th_hi = ThresholdOf(hi);
  if (th_lo.none) {
    *mid_begin = n;
    *hi_begin = n;
    return;
  }
  if (th_hi.none) {
    *mid_begin = CrackInTwo_Sse2(head, tail, n, lo);
    *hi_begin = n;
    return;
  }
  const Value t_lo = th_lo.threshold;
  const Value t_hi = th_hi.threshold;
  CrackScratch& s = TlsCrackScratch();
  s.EnsureUpper(n);
  s.EnsureMiddle(n);
  Value* mh = s.mid_head.data();
  Value* mt = s.mid_tail.data();
  Value* uh = s.up_head.data();
  Value* ut = s.up_tail.data();
  size_t nlo = 0;
  size_t nmid = 0;
  size_t nup = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value v = head[i];
    const Value w = tail[i];
    const bool ge_lo = v >= t_lo;
    const bool ge_hi = v >= t_hi;
    head[nlo] = v;
    tail[nlo] = w;
    mh[nmid] = v;
    mt[nmid] = w;
    uh[nup] = v;
    ut[nup] = w;
    nlo += static_cast<size_t>(!ge_lo);
    nmid += static_cast<size_t>(ge_lo & !ge_hi);
    nup += static_cast<size_t>(ge_hi);
  }
  if (nmid != 0) {
    std::memcpy(head + nlo, mh, nmid * sizeof(Value));
    std::memcpy(tail + nlo, mt, nmid * sizeof(Value));
  }
  if (nup != 0) {
    std::memcpy(head + nlo + nmid, uh, nup * sizeof(Value));
    std::memcpy(tail + nlo + nmid, ut, nup * sizeof(Value));
  }
  *mid_begin = nlo;
  *hi_begin = nlo + nmid;
}

size_t CountRange_Sse2(const Value* values, size_t n,
                       const RangePredicate& pred) {
  const ClosedRange r = NormalizeRange(pred);
  if (r.empty) return 0;
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value v = values[i];
    count += static_cast<size_t>((v >= r.lo) & (v <= r.hi));
  }
  return count;
}

void SelectRange_Sse2(const Value* values, size_t n,
                      const RangePredicate& pred, Key base,
                      std::vector<Key>* out) {
  const ClosedRange r = NormalizeRange(pred);
  if (r.empty || n == 0) return;
  // Over-allocate to n appended keys, write with a predicated cursor,
  // shrink to the matched count. The cursor never passes i, so every
  // unconditional write lands in the reserved region.
  const size_t old = out->size();
  out->resize(old + n);
  Key* dst = out->data() + old;
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value v = values[i];
    dst[c] = base + static_cast<Key>(i);
    c += static_cast<size_t>((v >= r.lo) & (v <= r.hi));
  }
  out->resize(old + c);
}

void FilterKeys_Sse2(const Value* values, const Key* keys, size_t n,
                     const RangePredicate& pred, std::vector<Key>* out) {
  const ClosedRange r = NormalizeRange(pred);
  if (r.empty || n == 0) return;
  const size_t old = out->size();
  out->resize(old + n);
  Key* dst = out->data() + old;
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    const Key k = keys[i];
    const Value v = values[k];
    dst[c] = k;
    c += static_cast<size_t>((v >= r.lo) & (v <= r.hi));
  }
  out->resize(old + c);
}

void MatchBitmap_Sse2(const Value* values, size_t begin, size_t end,
                      const RangePredicate& pred, uint64_t* words,
                      BitmapMode mode) {
  const ClosedRange r = NormalizeRange(pred);
  size_t i = begin;
  while (i < end) {
    // Build this word's covered bits branch-free, then combine once.
    const size_t w = i >> 6;
    const size_t word_end = std::min(end, (w + 1) << 6);
    const unsigned first_bit = static_cast<unsigned>(i & 63);
    uint64_t built = 0;
    for (; i < word_end; ++i) {
      const Value v = values[i];
      const uint64_t match =
          static_cast<uint64_t>(!r.empty & (v >= r.lo) & (v <= r.hi));
      built |= match << (i & 63);
    }
    const unsigned last_bit = static_cast<unsigned>((word_end - 1) & 63);
    uint64_t mask = ~uint64_t{0} << first_bit;
    if (last_bit != 63) mask &= (uint64_t{1} << (last_bit + 1)) - 1;
    switch (mode) {
      case BitmapMode::kAssign:
        words[w] = (words[w] & ~mask) | built;
        break;
      case BitmapMode::kAnd:
        words[w] &= built | ~mask;
        break;
      case BitmapMode::kOr:
        words[w] |= built;
        break;
    }
  }
}

// The fold and gather loops in the scalar arm are already branch-free and
// auto-vectorize under the baseline ISA; the portable arm shares them.

void FoldSpan_Sse2(FoldOp op, const Value* values, size_t n, Value* acc,
                   bool* valid) {
  FoldSpan_Scalar(op, values, n, acc, valid);
}

void FoldGather_Sse2(FoldOp op, const Value* values, const Key* keys,
                     size_t n, Value* acc, bool* valid) {
  FoldGather_Scalar(op, values, keys, n, acc, valid);
}

void Gather_Sse2(const Value* values, const Key* keys, size_t n, Value* out) {
  Gather_Scalar(values, keys, n, out);
}

void FoldGroup_Sse2(FoldOp op, const Value* values, const Key* keys,
                    const uint32_t* group_of, size_t n, Value* accs) {
  FoldGroup_Scalar(op, values, keys, group_of, n, accs);
}

namespace {

/// Branch-free unpack against the pad-word guarantee (PackedWordCount
/// allocates one trailing word): both words are read unconditionally; the
/// double shift keeps `off == 0` defined (a single >> 64-off would be UB)
/// and the mask drops the second word's contribution when the code does
/// not straddle.
inline uint64_t PackedGetPadded(const uint64_t* words, unsigned bits,
                                size_t i, uint64_t mask) {
  const size_t bit = i * static_cast<size_t>(bits);
  const size_t w = bit >> 6;
  const unsigned off = static_cast<unsigned>(bit & 63);
  const uint64_t lo = words[w] >> off;
  const uint64_t hi = (words[w + 1] << 1) << (63 - off);
  return (lo | hi) & mask;
}

}  // namespace

size_t CountPacked_Sse2(const uint64_t* words, unsigned bits, size_t n,
                        uint64_t lo_code, uint64_t hi_code) {
  if (bits == 0) return lo_code == 0 ? n : 0;
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t c = PackedGetPadded(words, bits, i, mask);
    count += static_cast<size_t>((c >= lo_code) & (c <= hi_code));
  }
  return count;
}

void SelectPacked_Sse2(const uint64_t* words, unsigned bits, size_t n,
                       uint64_t lo_code, uint64_t hi_code, Key base,
                       std::vector<Key>* out) {
  if (n == 0) return;
  if (bits == 0) {
    if (lo_code != 0) return;
    const size_t old = out->size();
    out->resize(old + n);
    Key* dst = out->data() + old;
    for (size_t i = 0; i < n; ++i) dst[i] = base + static_cast<Key>(i);
    return;
  }
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  const size_t old = out->size();
  out->resize(old + n);
  Key* dst = out->data() + old;
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t code = PackedGetPadded(words, bits, i, mask);
    dst[c] = base + static_cast<Key>(i);
    c += static_cast<size_t>((code >= lo_code) & (code <= hi_code));
  }
  out->resize(old + c);
}

void FoldPacked_Sse2(FoldOp op, const uint64_t* words, unsigned bits,
                     size_t n, Value value_base, uint64_t lo_code,
                     uint64_t hi_code, Value* acc, bool* valid) {
  if (bits == 0) {
    if (lo_code != 0 || n == 0) return;
    // Every value decodes to the frame base.
    if (op == FoldOp::kSum) {
      const Value total = static_cast<Value>(
          static_cast<uint64_t>(value_base) * static_cast<uint64_t>(n));
      FoldSpan_Scalar(op, &total, 1, acc, valid);
    } else {
      FoldSpan_Scalar(op, &value_base, 1, acc, valid);
    }
    return;
  }
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  size_t matched = 0;
  Value result = 0;
  switch (op) {
    case FoldOp::kSum: {
      uint64_t sum = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t c = PackedGetPadded(words, bits, i, mask);
        const uint64_t match =
            static_cast<uint64_t>((c >= lo_code) & (c <= hi_code));
        sum += (static_cast<uint64_t>(value_base) + c) * match;
        matched += match;
      }
      result = static_cast<Value>(sum);
      break;
    }
    case FoldOp::kMin: {
      // Predicated with the fold identity: a non-match contributes
      // kMaxValue, which can never lower the minimum.
      Value best = kMaxValue;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t c = PackedGetPadded(words, bits, i, mask);
        const bool match = (c >= lo_code) & (c <= hi_code);
        const Value v = static_cast<Value>(
            static_cast<uint64_t>(value_base) + c);
        best = std::min(best, match ? v : kMaxValue);
        matched += static_cast<size_t>(match);
      }
      result = best;
      break;
    }
    case FoldOp::kMax: {
      Value best = kMinValue;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t c = PackedGetPadded(words, bits, i, mask);
        const bool match = (c >= lo_code) & (c <= hi_code);
        const Value v = static_cast<Value>(
            static_cast<uint64_t>(value_base) + c);
        best = std::max(best, match ? v : kMinValue);
        matched += static_cast<size_t>(match);
      }
      result = best;
      break;
    }
  }
  if (matched != 0) FoldSpan_Scalar(op, &result, 1, acc, valid);
}

size_t CountRle_Sse2(const Value* run_values, const uint32_t* run_starts,
                     size_t num_runs, const RangePredicate& pred) {
  const ClosedRange r = NormalizeRange(pred);
  if (r.empty) return 0;
  size_t count = 0;
  for (size_t i = 0; i < num_runs; ++i) {
    const Value v = run_values[i];
    const size_t len = run_starts[i + 1] - run_starts[i];
    count += len * static_cast<size_t>((v >= r.lo) & (v <= r.hi));
  }
  return count;
}

void SelectRle_Sse2(const Value* run_values, const uint32_t* run_starts,
                    size_t num_runs, const RangePredicate& pred, Key base,
                    std::vector<Key>* out) {
  // Variable-length run emission has no useful predicated form; the
  // run-granular scalar loop is already one test per run.
  SelectRle_Scalar(run_values, run_starts, num_runs, pred, base, out);
}

void FoldRle_Sse2(FoldOp op, const Value* run_values,
                  const uint32_t* run_starts, size_t num_runs,
                  const RangePredicate& pred, Value* acc, bool* valid) {
  const ClosedRange r = NormalizeRange(pred);
  if (r.empty || num_runs == 0) return;
  size_t matched = 0;
  Value result = 0;
  switch (op) {
    case FoldOp::kSum: {
      uint64_t sum = 0;
      for (size_t i = 0; i < num_runs; ++i) {
        const Value v = run_values[i];
        const uint64_t len = run_starts[i + 1] - run_starts[i];
        const uint64_t match =
            static_cast<uint64_t>((v >= r.lo) & (v <= r.hi));
        sum += static_cast<uint64_t>(v) * len * match;
        matched += match * len;
      }
      result = static_cast<Value>(sum);
      break;
    }
    case FoldOp::kMin: {
      Value best = kMaxValue;
      for (size_t i = 0; i < num_runs; ++i) {
        const Value v = run_values[i];
        const bool nonempty = run_starts[i + 1] != run_starts[i];
        const bool match = (v >= r.lo) & (v <= r.hi) & nonempty;
        best = std::min(best, match ? v : kMaxValue);
        matched += static_cast<size_t>(match);
      }
      result = best;
      break;
    }
    case FoldOp::kMax: {
      Value best = kMinValue;
      for (size_t i = 0; i < num_runs; ++i) {
        const Value v = run_values[i];
        const bool nonempty = run_starts[i + 1] != run_starts[i];
        const bool match = (v >= r.lo) & (v <= r.hi) & nonempty;
        best = std::max(best, match ? v : kMinValue);
        matched += static_cast<size_t>(match);
      }
      result = best;
      break;
    }
  }
  if (matched != 0) FoldSpan_Scalar(op, &result, 1, acc, valid);
}

}  // namespace crackdb::kernels::detail
