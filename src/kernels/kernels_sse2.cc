// The portable branch-free arm (Isa::kSse2). No intrinsics: every loop is
// written predicated — data-dependent branches become arithmetic on the
// comparison result — so the compiler can auto-vectorize under the x86-64
// baseline (SSE2) and branch mispredictions vanish even where it can't.
// Cracks are out-of-place dual-writes: the lower class is written back in
// place (its cursor never passes the read index), upper classes stream
// into thread-local scratch and are copied back after the pass. The
// resulting intra-piece order differs from the scalar arm's swap-based
// partition but is deterministic; the contract (split position + per-side
// multisets) is identical.

#include <algorithm>
#include <cstring>

#include "kernels/kernel_arms.h"
#include "kernels/kernel_impl.h"

namespace crackdb::kernels::detail {

size_t CrackInTwo_Sse2(Value* head, Value* tail, size_t n, Bound bound) {
  const UpperThreshold th = ThresholdOf(bound);
  if (th.none) return n;
  const Value t = th.threshold;
  CrackScratch& s = TlsCrackScratch();
  s.EnsureUpper(n);
  Value* uh = s.up_head.data();
  Value* ut = s.up_tail.data();
  size_t lo = 0;
  size_t up = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value v = head[i];
    const Value w = tail[i];
    const bool is_up = v >= t;
    // Dual write: both destinations written unconditionally, one cursor
    // advances. lo <= i always, so the in-place write never clobbers an
    // unread entry.
    head[lo] = v;
    tail[lo] = w;
    uh[up] = v;
    ut[up] = w;
    lo += static_cast<size_t>(!is_up);
    up += static_cast<size_t>(is_up);
  }
  if (up != 0) {
    std::memcpy(head + lo, uh, up * sizeof(Value));
    std::memcpy(tail + lo, ut, up * sizeof(Value));
  }
  return lo;
}

void CrackInThree_Sse2(Value* head, Value* tail, size_t n, Bound lo,
                       Bound hi, size_t* mid_begin, size_t* hi_begin) {
  const UpperThreshold th_lo = ThresholdOf(lo);
  const UpperThreshold th_hi = ThresholdOf(hi);
  if (th_lo.none) {
    *mid_begin = n;
    *hi_begin = n;
    return;
  }
  if (th_hi.none) {
    *mid_begin = CrackInTwo_Sse2(head, tail, n, lo);
    *hi_begin = n;
    return;
  }
  const Value t_lo = th_lo.threshold;
  const Value t_hi = th_hi.threshold;
  CrackScratch& s = TlsCrackScratch();
  s.EnsureUpper(n);
  s.EnsureMiddle(n);
  Value* mh = s.mid_head.data();
  Value* mt = s.mid_tail.data();
  Value* uh = s.up_head.data();
  Value* ut = s.up_tail.data();
  size_t nlo = 0;
  size_t nmid = 0;
  size_t nup = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value v = head[i];
    const Value w = tail[i];
    const bool ge_lo = v >= t_lo;
    const bool ge_hi = v >= t_hi;
    head[nlo] = v;
    tail[nlo] = w;
    mh[nmid] = v;
    mt[nmid] = w;
    uh[nup] = v;
    ut[nup] = w;
    nlo += static_cast<size_t>(!ge_lo);
    nmid += static_cast<size_t>(ge_lo & !ge_hi);
    nup += static_cast<size_t>(ge_hi);
  }
  if (nmid != 0) {
    std::memcpy(head + nlo, mh, nmid * sizeof(Value));
    std::memcpy(tail + nlo, mt, nmid * sizeof(Value));
  }
  if (nup != 0) {
    std::memcpy(head + nlo + nmid, uh, nup * sizeof(Value));
    std::memcpy(tail + nlo + nmid, ut, nup * sizeof(Value));
  }
  *mid_begin = nlo;
  *hi_begin = nlo + nmid;
}

size_t CountRange_Sse2(const Value* values, size_t n,
                       const RangePredicate& pred) {
  const ClosedRange r = NormalizeRange(pred);
  if (r.empty) return 0;
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value v = values[i];
    count += static_cast<size_t>((v >= r.lo) & (v <= r.hi));
  }
  return count;
}

void SelectRange_Sse2(const Value* values, size_t n,
                      const RangePredicate& pred, Key base,
                      std::vector<Key>* out) {
  const ClosedRange r = NormalizeRange(pred);
  if (r.empty || n == 0) return;
  // Over-allocate to n appended keys, write with a predicated cursor,
  // shrink to the matched count. The cursor never passes i, so every
  // unconditional write lands in the reserved region.
  const size_t old = out->size();
  out->resize(old + n);
  Key* dst = out->data() + old;
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    const Value v = values[i];
    dst[c] = base + static_cast<Key>(i);
    c += static_cast<size_t>((v >= r.lo) & (v <= r.hi));
  }
  out->resize(old + c);
}

void FilterKeys_Sse2(const Value* values, const Key* keys, size_t n,
                     const RangePredicate& pred, std::vector<Key>* out) {
  const ClosedRange r = NormalizeRange(pred);
  if (r.empty || n == 0) return;
  const size_t old = out->size();
  out->resize(old + n);
  Key* dst = out->data() + old;
  size_t c = 0;
  for (size_t i = 0; i < n; ++i) {
    const Key k = keys[i];
    const Value v = values[k];
    dst[c] = k;
    c += static_cast<size_t>((v >= r.lo) & (v <= r.hi));
  }
  out->resize(old + c);
}

void MatchBitmap_Sse2(const Value* values, size_t begin, size_t end,
                      const RangePredicate& pred, uint64_t* words,
                      BitmapMode mode) {
  const ClosedRange r = NormalizeRange(pred);
  size_t i = begin;
  while (i < end) {
    // Build this word's covered bits branch-free, then combine once.
    const size_t w = i >> 6;
    const size_t word_end = std::min(end, (w + 1) << 6);
    const unsigned first_bit = static_cast<unsigned>(i & 63);
    uint64_t built = 0;
    for (; i < word_end; ++i) {
      const Value v = values[i];
      const uint64_t match =
          static_cast<uint64_t>(!r.empty & (v >= r.lo) & (v <= r.hi));
      built |= match << (i & 63);
    }
    const unsigned last_bit = static_cast<unsigned>((word_end - 1) & 63);
    uint64_t mask = ~uint64_t{0} << first_bit;
    if (last_bit != 63) mask &= (uint64_t{1} << (last_bit + 1)) - 1;
    switch (mode) {
      case BitmapMode::kAssign:
        words[w] = (words[w] & ~mask) | built;
        break;
      case BitmapMode::kAnd:
        words[w] &= built | ~mask;
        break;
      case BitmapMode::kOr:
        words[w] |= built;
        break;
    }
  }
}

// The fold and gather loops in the scalar arm are already branch-free and
// auto-vectorize under the baseline ISA; the portable arm shares them.

void FoldSpan_Sse2(FoldOp op, const Value* values, size_t n, Value* acc,
                   bool* valid) {
  FoldSpan_Scalar(op, values, n, acc, valid);
}

void FoldGather_Sse2(FoldOp op, const Value* values, const Key* keys,
                     size_t n, Value* acc, bool* valid) {
  FoldGather_Scalar(op, values, keys, n, acc, valid);
}

void Gather_Sse2(const Value* values, const Key* keys, size_t n, Value* out) {
  Gather_Scalar(values, keys, n, out);
}

void FoldGroup_Sse2(FoldOp op, const Value* values, const Key* keys,
                    const uint32_t* group_of, size_t n, Value* accs) {
  FoldGroup_Scalar(op, values, keys, group_of, n, accs);
}

}  // namespace crackdb::kernels::detail
