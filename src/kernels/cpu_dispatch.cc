#include "kernels/cpu_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace crackdb::kernels {

namespace {

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define CRACKDB_X86_DISPATCH 1
#endif

Isa Detect() {
#ifdef CRACKDB_X86_DISPATCH
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Isa::kSse2;
#endif
  return Isa::kScalar;
}

/// The installed arm. -1 = not yet resolved; resolution happens once, at
/// the first ActiveIsa() call, so every kernel table lookup after startup
/// is one relaxed atomic load.
std::atomic<int> g_active{-1};

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool ParseIsa(const char* name, Isa* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = Isa::kScalar;
  } else if (std::strcmp(name, "sse2") == 0) {
    *out = Isa::kSse2;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = Isa::kAvx2;
  } else if (std::strcmp(name, "auto") == 0) {
    *out = DetectedIsa();
  } else {
    return false;
  }
  return true;
}

Isa DetectedIsa() {
  static const Isa detected = Detect();
  return detected;
}

Isa ResolveIsa(const char* env, Isa detected) {
  if (env == nullptr || env[0] == '\0') return detected;
  Isa requested;
  if (!ParseIsa(env, &requested)) {
    std::fprintf(stderr,
                 "crackdb kernels: unknown CRACKDB_KERNEL_ISA '%s' "
                 "(want scalar|sse2|avx2|auto); using %s\n",
                 env, IsaName(detected));
    return detected;
  }
  if (static_cast<int>(requested) > static_cast<int>(detected)) {
    std::fprintf(stderr,
                 "crackdb kernels: CRACKDB_KERNEL_ISA=%s unsupported by "
                 "this CPU; clamping to %s\n",
                 env, IsaName(detected));
    return detected;
  }
  return requested;
}

Isa ActiveIsa() {
  int active = g_active.load(std::memory_order_relaxed);
  if (active < 0) {
    const Isa resolved =
        ResolveIsa(std::getenv("CRACKDB_KERNEL_ISA"), DetectedIsa());
    // Racing first calls resolve to the same value (env + cpuid are
    // stable), so a plain store is fine either way.
    g_active.store(static_cast<int>(resolved), std::memory_order_relaxed);
    return resolved;
  }
  return static_cast<Isa>(active);
}

Isa ForceIsa(Isa isa) {
  Isa installed = isa;
  if (static_cast<int>(installed) > static_cast<int>(DetectedIsa())) {
    installed = DetectedIsa();
  }
  g_active.store(static_cast<int>(installed), std::memory_order_relaxed);
  return installed;
}

}  // namespace crackdb::kernels
