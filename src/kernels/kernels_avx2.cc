// The AVX2 intrinsic arm. Compiled with function-level
// __attribute__((target("avx2"))) so the rest of the library keeps the
// baseline ISA and no -mavx2 build flag is needed; the dispatch layer
// guarantees these entry points only run on CPUs reporting AVX2.
//
// Techniques:
//  - 4x64-bit range tests via _mm256_cmpgt_epi64 (v >= t  <=>  v > t-1,
//    with the t == kMinValue wraparound special-cased),
//  - compress-store emulation (AVX2 has no vpcompress): a 16-entry
//    dword-index table drives _mm256_permutevar8x32_epi32 for 64-bit
//    lanes, and a 16-entry byte-shuffle table drives _mm_shuffle_epi8
//    for 32-bit keys,
//  - positional loads via _mm256_i32gather_epi64 (hence the documented
//    positions < 2^31 contract),
//  - 64-bit min/max via compare + _mm256_blendv_epi8 (AVX2 has no
//    _mm256_min_epi64).
//
// On non-x86 targets (or compilers without the target attribute) every
// entry point forwards to the portable arm and HasAvx2Arm() is false.

#include "kernels/kernel_arms.h"
#include "kernels/kernel_impl.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define CRACKDB_AVX2_ARM 1
#endif

#ifdef CRACKDB_AVX2_ARM

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#define CRACKDB_AVX2 __attribute__((target("avx2")))

namespace crackdb::kernels::detail {

bool HasAvx2Arm() { return true; }

namespace {

// Compress tables for the 4-bit lane masks movemask_pd produces. Row m
// lists, in lane order, the source positions of the lanes whose mask bit
// is set; the rest is padding (stores write a full vector, but only the
// first popcount(m) lanes are live and the padding is overwritten by the
// next compress store at the advanced cursor).

// 64-bit lanes as dword-index pairs for _mm256_permutevar8x32_epi32.
alignas(32) constexpr int32_t kCompress64[16][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0}, {0, 1, 0, 0, 0, 0, 0, 0},
    {2, 3, 0, 0, 0, 0, 0, 0}, {0, 1, 2, 3, 0, 0, 0, 0},
    {4, 5, 0, 0, 0, 0, 0, 0}, {0, 1, 4, 5, 0, 0, 0, 0},
    {2, 3, 4, 5, 0, 0, 0, 0}, {0, 1, 2, 3, 4, 5, 0, 0},
    {6, 7, 0, 0, 0, 0, 0, 0}, {0, 1, 6, 7, 0, 0, 0, 0},
    {2, 3, 6, 7, 0, 0, 0, 0}, {0, 1, 2, 3, 6, 7, 0, 0},
    {4, 5, 6, 7, 0, 0, 0, 0}, {0, 1, 4, 5, 6, 7, 0, 0},
    {2, 3, 4, 5, 6, 7, 0, 0}, {0, 1, 2, 3, 4, 5, 6, 7},
};

// 32-bit keys as byte shuffles for _mm_shuffle_epi8 (-1 = zero the byte).
alignas(16) constexpr int8_t kCompress32[16][16] = {
    {-1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1},
    {0, 1, 2, 3, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1},
    {4, 5, 6, 7, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1},
    {0, 1, 2, 3, 4, 5, 6, 7, -1, -1, -1, -1, -1, -1, -1, -1},
    {8, 9, 10, 11, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1},
    {0, 1, 2, 3, 8, 9, 10, 11, -1, -1, -1, -1, -1, -1, -1, -1},
    {4, 5, 6, 7, 8, 9, 10, 11, -1, -1, -1, -1, -1, -1, -1, -1},
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, -1, -1, -1, -1},
    {12, 13, 14, 15, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1},
    {0, 1, 2, 3, 12, 13, 14, 15, -1, -1, -1, -1, -1, -1, -1, -1},
    {4, 5, 6, 7, 12, 13, 14, 15, -1, -1, -1, -1, -1, -1, -1, -1},
    {0, 1, 2, 3, 4, 5, 6, 7, 12, 13, 14, 15, -1, -1, -1, -1},
    {8, 9, 10, 11, 12, 13, 14, 15, -1, -1, -1, -1, -1, -1, -1, -1},
    {0, 1, 2, 3, 8, 9, 10, 11, 12, 13, 14, 15, -1, -1, -1, -1},
    {4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, -1, -1, -1, -1},
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
};

inline long long MinusOneWrapping(Value v) {
  return static_cast<long long>(static_cast<uint64_t>(v) - 1);
}

/// 4-bit mask (bit j = lane j) from a 4x64-bit all-ones/all-zeros vector.
CRACKDB_AVX2 inline int MoveMask4(__m256i m) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(m));
}

/// Splatted constants for the closed-range test lo <= v <= hi.
struct RangeVec {
  __m256i lo_m1;   // lo - 1 (wrapping; dead when lo_all is set)
  __m256i lo_all;  // all-ones when lo == kMinValue (v >= lo trivially true)
  __m256i hi;
};

CRACKDB_AVX2 inline RangeVec MakeRangeVec(const ClosedRange& r) {
  RangeVec rv;
  rv.lo_m1 = _mm256_set1_epi64x(MinusOneWrapping(r.lo));
  rv.lo_all = _mm256_set1_epi64x(r.lo == kMinValue ? -1 : 0);
  rv.hi = _mm256_set1_epi64x(static_cast<long long>(r.hi));
  return rv;
}

CRACKDB_AVX2 inline __m256i RangeMatch(__m256i v, const RangeVec& rv) {
  const __m256i ge =
      _mm256_or_si256(_mm256_cmpgt_epi64(v, rv.lo_m1), rv.lo_all);
  const __m256i gt = _mm256_cmpgt_epi64(v, rv.hi);
  return _mm256_andnot_si256(gt, ge);
}

CRACKDB_AVX2 inline __m256i LoadValues(const Value* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

CRACKDB_AVX2 inline void StoreValues(Value* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

CRACKDB_AVX2 inline __m256i CompressLanes(__m256i v, int mask4) {
  const __m256i idx = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kCompress64[mask4]));
  return _mm256_permutevar8x32_epi32(v, idx);
}

CRACKDB_AVX2 inline __m128i CompressKeys(__m128i keys, int mask4) {
  const __m128i shuf =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kCompress32[mask4]));
  return _mm_shuffle_epi8(keys, shuf);
}

CRACKDB_AVX2 inline __m256i GatherValues(const Value* values, __m128i keys) {
  return _mm256_i32gather_epi64(reinterpret_cast<const long long*>(values),
                                keys, 8);
}

CRACKDB_AVX2 inline uint64_t HSumLanes(__m256i v) {
  alignas(32) int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return static_cast<uint64_t>(lanes[0]) + static_cast<uint64_t>(lanes[1]) +
         static_cast<uint64_t>(lanes[2]) + static_cast<uint64_t>(lanes[3]);
}

}  // namespace

CRACKDB_AVX2 size_t CrackInTwo_Avx2(Value* head, Value* tail, size_t n,
                                    Bound bound) {
  const UpperThreshold th = ThresholdOf(bound);
  if (th.none) return n;
  const Value t = th.threshold;
  // Every value satisfies v >= kMinValue: the whole piece is the upper
  // part and no element moves (matching the scalar arm).
  if (t == kMinValue) return 0;
  CrackScratch& s = TlsCrackScratch();
  s.EnsureUpper(n);
  Value* uh = s.up_head.data();
  Value* ut = s.up_tail.data();
  const __m256i t_m1 = _mm256_set1_epi64x(MinusOneWrapping(t));
  size_t lo = 0;
  size_t up = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vh = LoadValues(head + i);
    const __m256i vt = LoadValues(tail + i);
    const int up_mask = MoveMask4(_mm256_cmpgt_epi64(vh, t_m1));
    const int lo_mask = ~up_mask & 0xF;
    // Compress stores write a full vector; only the first popcount lanes
    // are live. In place is safe: lo <= i, so the store never reaches
    // past head[i + 3], all of which is already loaded.
    StoreValues(head + lo, CompressLanes(vh, lo_mask));
    StoreValues(tail + lo, CompressLanes(vt, lo_mask));
    StoreValues(uh + up, CompressLanes(vh, up_mask));
    StoreValues(ut + up, CompressLanes(vt, up_mask));
    lo += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(lo_mask)));
    up += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(up_mask)));
  }
  for (; i < n; ++i) {
    const Value v = head[i];
    const Value w = tail[i];
    if (v >= t) {
      uh[up] = v;
      ut[up] = w;
      ++up;
    } else {
      head[lo] = v;
      tail[lo] = w;
      ++lo;
    }
  }
  if (up != 0) {
    std::memcpy(head + lo, uh, up * sizeof(Value));
    std::memcpy(tail + lo, ut, up * sizeof(Value));
  }
  return lo;
}

CRACKDB_AVX2 void CrackInThree_Avx2(Value* head, Value* tail, size_t n,
                                    Bound lo, Bound hi, size_t* mid_begin,
                                    size_t* hi_begin) {
  const UpperThreshold th_lo = ThresholdOf(lo);
  const UpperThreshold th_hi = ThresholdOf(hi);
  if (th_lo.none) {
    *mid_begin = n;
    *hi_begin = n;
    return;
  }
  if (th_hi.none) {
    *mid_begin = CrackInTwo_Avx2(head, tail, n, lo);
    *hi_begin = n;
    return;
  }
  if (th_lo.threshold == kMinValue) {
    // No lower part: a two-way split on the upper bound remains.
    *mid_begin = 0;
    *hi_begin = CrackInTwo_Avx2(head, tail, n, hi);
    return;
  }
  const Value t_lo = th_lo.threshold;
  const Value t_hi = th_hi.threshold;
  CrackScratch& s = TlsCrackScratch();
  s.EnsureUpper(n);
  s.EnsureMiddle(n);
  Value* mh = s.mid_head.data();
  Value* mt = s.mid_tail.data();
  Value* uh = s.up_head.data();
  Value* ut = s.up_tail.data();
  const __m256i tlo_m1 = _mm256_set1_epi64x(MinusOneWrapping(t_lo));
  const __m256i thi_m1 = _mm256_set1_epi64x(MinusOneWrapping(t_hi));
  size_t nlo = 0;
  size_t nmid = 0;
  size_t nup = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vh = LoadValues(head + i);
    const __m256i vt = LoadValues(tail + i);
    const int ge_lo = MoveMask4(_mm256_cmpgt_epi64(vh, tlo_m1));
    const int up_mask = MoveMask4(_mm256_cmpgt_epi64(vh, thi_m1));
    const int lo_mask = ~ge_lo & 0xF;
    const int mid_mask = ge_lo & ~up_mask & 0xF;
    StoreValues(head + nlo, CompressLanes(vh, lo_mask));
    StoreValues(tail + nlo, CompressLanes(vt, lo_mask));
    StoreValues(mh + nmid, CompressLanes(vh, mid_mask));
    StoreValues(mt + nmid, CompressLanes(vt, mid_mask));
    StoreValues(uh + nup, CompressLanes(vh, up_mask));
    StoreValues(ut + nup, CompressLanes(vt, up_mask));
    nlo += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(lo_mask)));
    nmid += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mid_mask)));
    nup += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(up_mask)));
  }
  for (; i < n; ++i) {
    const Value v = head[i];
    const Value w = tail[i];
    if (v >= t_hi) {
      uh[nup] = v;
      ut[nup] = w;
      ++nup;
    } else if (v >= t_lo) {
      mh[nmid] = v;
      mt[nmid] = w;
      ++nmid;
    } else {
      head[nlo] = v;
      tail[nlo] = w;
      ++nlo;
    }
  }
  if (nmid != 0) {
    std::memcpy(head + nlo, mh, nmid * sizeof(Value));
    std::memcpy(tail + nlo, mt, nmid * sizeof(Value));
  }
  if (nup != 0) {
    std::memcpy(head + nlo + nmid, uh, nup * sizeof(Value));
    std::memcpy(tail + nlo + nmid, ut, nup * sizeof(Value));
  }
  *mid_begin = nlo;
  *hi_begin = nlo + nmid;
}

CRACKDB_AVX2 size_t CountRange_Avx2(const Value* values, size_t n,
                                    const RangePredicate& pred) {
  const ClosedRange r = NormalizeRange(pred);
  if (r.empty) return 0;
  const RangeVec rv = MakeRangeVec(r);
  __m256i cnt = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Matching lanes are all-ones (-1); subtracting adds 1 per match.
    cnt = _mm256_sub_epi64(cnt, RangeMatch(LoadValues(values + i), rv));
  }
  size_t count = static_cast<size_t>(HSumLanes(cnt));
  for (; i < n; ++i) {
    const Value v = values[i];
    count += static_cast<size_t>((v >= r.lo) & (v <= r.hi));
  }
  return count;
}

CRACKDB_AVX2 void SelectRange_Avx2(const Value* values, size_t n,
                                   const RangePredicate& pred, Key base,
                                   std::vector<Key>* out) {
  const ClosedRange r = NormalizeRange(pred);
  if (r.empty || n == 0) return;
  const size_t old = out->size();
  out->resize(old + n);
  Key* dst = out->data() + old;
  const RangeVec rv = MakeRangeVec(r);
  __m128i pos = _mm_add_epi32(_mm_set1_epi32(static_cast<int>(base)),
                              _mm_setr_epi32(0, 1, 2, 3));
  const __m128i four = _mm_set1_epi32(4);
  size_t c = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int m = MoveMask4(RangeMatch(LoadValues(values + i), rv));
    // Full 16-byte store; c <= i keeps it inside the n keys reserved.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + c),
                     CompressKeys(pos, m));
    c += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(m)));
    pos = _mm_add_epi32(pos, four);
  }
  for (; i < n; ++i) {
    const Value v = values[i];
    dst[c] = base + static_cast<Key>(i);
    c += static_cast<size_t>((v >= r.lo) & (v <= r.hi));
  }
  out->resize(old + c);
}

CRACKDB_AVX2 void FilterKeys_Avx2(const Value* values, const Key* keys,
                                  size_t n, const RangePredicate& pred,
                                  std::vector<Key>* out) {
  const ClosedRange r = NormalizeRange(pred);
  if (r.empty || n == 0) return;
  const size_t old = out->size();
  out->resize(old + n);
  Key* dst = out->data() + old;
  const RangeVec rv = MakeRangeVec(r);
  size_t c = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i kv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    const int m = MoveMask4(RangeMatch(GatherValues(values, kv), rv));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + c),
                     CompressKeys(kv, m));
    c += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(m)));
  }
  for (; i < n; ++i) {
    const Key k = keys[i];
    const Value v = values[k];
    dst[c] = k;
    c += static_cast<size_t>((v >= r.lo) & (v <= r.hi));
  }
  out->resize(old + c);
}

CRACKDB_AVX2 void MatchBitmap_Avx2(const Value* values, size_t begin,
                                   size_t end, const RangePredicate& pred,
                                   uint64_t* words, BitmapMode mode) {
  if (begin >= end) return;
  size_t i = begin;
  // Partial leading word: portable arm (identical bit semantics).
  if ((i & 63) != 0) {
    const size_t stop = std::min(end, ((i >> 6) + 1) << 6);
    MatchBitmap_Sse2(values, i, stop, pred, words, mode);
    i = stop;
  }
  const ClosedRange r = NormalizeRange(pred);
  const RangeVec rv = MakeRangeVec(r);
  const __m256i empty_kill =
      _mm256_set1_epi64x(r.empty ? 0 : -1);
  for (; i + 64 <= end; i += 64) {
    uint64_t built = 0;
    for (size_t k = 0; k < 64; k += 4) {
      const __m256i match = _mm256_and_si256(
          RangeMatch(LoadValues(values + i + k), rv), empty_kill);
      built |= static_cast<uint64_t>(MoveMask4(match)) << k;
    }
    uint64_t& word = words[i >> 6];
    switch (mode) {
      case BitmapMode::kAssign:
        word = built;
        break;
      case BitmapMode::kAnd:
        word &= built;
        break;
      case BitmapMode::kOr:
        word |= built;
        break;
    }
  }
  if (i < end) MatchBitmap_Sse2(values, i, end, pred, words, mode);
}

CRACKDB_AVX2 void FoldSpan_Avx2(FoldOp op, const Value* values, size_t n,
                                Value* acc, bool* valid) {
  if (n < 8) {
    FoldSpan_Scalar(op, values, n, acc, valid);
    return;
  }
  Value result = 0;
  size_t i;
  switch (op) {
    case FoldOp::kSum: {
      __m256i s = _mm256_setzero_si256();
      for (i = 0; i + 4 <= n; i += 4) {
        s = _mm256_add_epi64(s, LoadValues(values + i));
      }
      uint64_t sum = HSumLanes(s);
      for (; i < n; ++i) sum += static_cast<uint64_t>(values[i]);
      result = static_cast<Value>(sum);
      break;
    }
    case FoldOp::kMin: {
      __m256i m = LoadValues(values);
      for (i = 4; i + 4 <= n; i += 4) {
        const __m256i v = LoadValues(values + i);
        m = _mm256_blendv_epi8(m, v, _mm256_cmpgt_epi64(m, v));
      }
      alignas(32) int64_t lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), m);
      result = std::min(std::min(lanes[0], lanes[1]),
                        std::min(lanes[2], lanes[3]));
      for (; i < n; ++i) result = std::min(result, values[i]);
      break;
    }
    case FoldOp::kMax: {
      __m256i m = LoadValues(values);
      for (i = 4; i + 4 <= n; i += 4) {
        const __m256i v = LoadValues(values + i);
        m = _mm256_blendv_epi8(m, v, _mm256_cmpgt_epi64(v, m));
      }
      alignas(32) int64_t lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), m);
      result = std::max(std::max(lanes[0], lanes[1]),
                        std::max(lanes[2], lanes[3]));
      for (; i < n; ++i) result = std::max(result, values[i]);
      break;
    }
  }
  FoldSpan_Scalar(op, &result, 1, acc, valid);
}

CRACKDB_AVX2 void FoldGather_Avx2(FoldOp op, const Value* values,
                                  const Key* keys, size_t n, Value* acc,
                                  bool* valid) {
  if (n < 8) {
    FoldGather_Scalar(op, values, keys, n, acc, valid);
    return;
  }
  Value result = 0;
  size_t i;
  switch (op) {
    case FoldOp::kSum: {
      __m256i s = _mm256_setzero_si256();
      for (i = 0; i + 4 <= n; i += 4) {
        const __m128i kv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
        s = _mm256_add_epi64(s, GatherValues(values, kv));
      }
      uint64_t sum = HSumLanes(s);
      for (; i < n; ++i) sum += static_cast<uint64_t>(values[keys[i]]);
      result = static_cast<Value>(sum);
      break;
    }
    case FoldOp::kMin: {
      __m256i m = GatherValues(
          values, _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys)));
      for (i = 4; i + 4 <= n; i += 4) {
        const __m128i kv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
        const __m256i v = GatherValues(values, kv);
        m = _mm256_blendv_epi8(m, v, _mm256_cmpgt_epi64(m, v));
      }
      alignas(32) int64_t lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), m);
      result = std::min(std::min(lanes[0], lanes[1]),
                        std::min(lanes[2], lanes[3]));
      for (; i < n; ++i) result = std::min(result, values[keys[i]]);
      break;
    }
    case FoldOp::kMax: {
      __m256i m = GatherValues(
          values, _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys)));
      for (i = 4; i + 4 <= n; i += 4) {
        const __m128i kv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
        const __m256i v = GatherValues(values, kv);
        m = _mm256_blendv_epi8(m, v, _mm256_cmpgt_epi64(v, m));
      }
      alignas(32) int64_t lanes[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), m);
      result = std::max(std::max(lanes[0], lanes[1]),
                        std::max(lanes[2], lanes[3]));
      for (; i < n; ++i) result = std::max(result, values[keys[i]]);
      break;
    }
  }
  FoldSpan_Scalar(op, &result, 1, acc, valid);
}

CRACKDB_AVX2 void Gather_Avx2(const Value* values, const Key* keys, size_t n,
                              Value* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i kv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    StoreValues(out + i, GatherValues(values, kv));
  }
  for (; i < n; ++i) out[i] = values[keys[i]];
}

CRACKDB_AVX2 void FoldGroup_Avx2(FoldOp op, const Value* values,
                                 const Key* keys, const uint32_t* group_of,
                                 size_t n, Value* accs) {
  if (keys == nullptr || n < 8) {
    // Contiguous inputs gain nothing over the auto-vectorized scalar loop
    // (the accumulate side scatters either way); tiny inputs skip setup.
    FoldGroup_Scalar(op, values, keys, group_of, n, accs);
    return;
  }
  // The win is the 4-wide value gather; accumulator updates scatter
  // scalar-wise because group ids may repeat within one vector (a SIMD
  // scatter would lose all but the last conflicting lane).
  alignas(32) int64_t lanes[4];
  size_t i = 0;
  switch (op) {
    case FoldOp::kSum:
      for (; i + 4 <= n; i += 4) {
        const __m128i kv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                           GatherValues(values, kv));
        for (size_t l = 0; l < 4; ++l) {
          Value& acc = accs[group_of[i + l]];
          acc = static_cast<Value>(static_cast<uint64_t>(acc) +
                                   static_cast<uint64_t>(lanes[l]));
        }
      }
      break;
    case FoldOp::kMin:
      for (; i + 4 <= n; i += 4) {
        const __m128i kv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                           GatherValues(values, kv));
        for (size_t l = 0; l < 4; ++l) {
          Value& acc = accs[group_of[i + l]];
          acc = std::min(acc, lanes[l]);
        }
      }
      break;
    case FoldOp::kMax:
      for (; i + 4 <= n; i += 4) {
        const __m128i kv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                           GatherValues(values, kv));
        for (size_t l = 0; l < 4; ++l) {
          Value& acc = accs[group_of[i + l]];
          acc = std::max(acc, lanes[l]);
        }
      }
      break;
  }
  FoldGroup_Scalar(op, values, keys + i, group_of + i, n - i, accs);
}

namespace {

/// Codes decoded per block for the packed kernels: big enough to amortize
/// the unpack, small enough to stay L1-resident (8 KiB of stack).
constexpr size_t kPackedBlock = 1024;

/// Unpacks codes [start, start + len) into out[0..len), adding `base` with
/// wrapping uint64 arithmetic (pass 0 to get raw codes). Reads the pad
/// word unconditionally (PackedWordCount guarantees it); the double shift
/// keeps off == 0 defined.
CRACKDB_AVX2 inline void UnpackBlock(const uint64_t* words, unsigned bits,
                                     uint64_t mask, size_t start, size_t len,
                                     uint64_t base, Value* out) {
  for (size_t j = 0; j < len; ++j) {
    const size_t bit = (start + j) * static_cast<size_t>(bits);
    const size_t w = bit >> 6;
    const unsigned off = static_cast<unsigned>(bit & 63);
    const uint64_t c =
        ((words[w] >> off) | ((words[w + 1] << 1) << (63 - off))) & mask;
    out[j] = static_cast<Value>(base + c);
  }
}

}  // namespace

CRACKDB_AVX2 size_t CountPacked_Avx2(const uint64_t* words, unsigned bits,
                                     size_t n, uint64_t lo_code,
                                     uint64_t hi_code) {
  if (bits == 0) return lo_code == 0 ? n : 0;
  // Codes fit int64 (bits <= 63), so the signed SIMD range core applies to
  // the decoded block directly.
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  const RangePredicate pred = RangePredicate::Closed(
      static_cast<Value>(lo_code), static_cast<Value>(hi_code));
  alignas(32) Value block[kPackedBlock];
  size_t count = 0;
  for (size_t i = 0; i < n; i += kPackedBlock) {
    const size_t len = std::min(kPackedBlock, n - i);
    UnpackBlock(words, bits, mask, i, len, 0, block);
    count += CountRange_Avx2(block, len, pred);
  }
  return count;
}

CRACKDB_AVX2 void SelectPacked_Avx2(const uint64_t* words, unsigned bits,
                                    size_t n, uint64_t lo_code,
                                    uint64_t hi_code, Key base,
                                    std::vector<Key>* out) {
  if (bits == 0) {
    SelectPacked_Sse2(words, bits, n, lo_code, hi_code, base, out);
    return;
  }
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  const RangePredicate pred = RangePredicate::Closed(
      static_cast<Value>(lo_code), static_cast<Value>(hi_code));
  alignas(32) Value block[kPackedBlock];
  for (size_t i = 0; i < n; i += kPackedBlock) {
    const size_t len = std::min(kPackedBlock, n - i);
    UnpackBlock(words, bits, mask, i, len, 0, block);
    // Per-block position base keeps the emitted keys globally ascending.
    SelectRange_Avx2(block, len, pred, base + static_cast<Key>(i), out);
  }
}

CRACKDB_AVX2 void FoldPacked_Avx2(FoldOp op, const uint64_t* words,
                                  unsigned bits, size_t n, Value value_base,
                                  uint64_t lo_code, uint64_t hi_code,
                                  Value* acc, bool* valid) {
  const uint64_t mask = bits == 0 ? 0 : (uint64_t{1} << bits) - 1;
  if (bits == 0 || lo_code != 0 || hi_code != mask) {
    // Filtered folds stay in the predicated portable loop; the SIMD win
    // below is for the common unfiltered decode-and-fold.
    FoldPacked_Sse2(op, words, bits, n, value_base, lo_code, hi_code, acc,
                    valid);
    return;
  }
  alignas(32) Value block[kPackedBlock];
  for (size_t i = 0; i < n; i += kPackedBlock) {
    const size_t len = std::min(kPackedBlock, n - i);
    UnpackBlock(words, bits, mask, i, len,
                static_cast<uint64_t>(value_base), block);
    FoldSpan_Avx2(op, block, len, acc, valid);
  }
}

size_t CountRle_Avx2(const Value* run_values, const uint32_t* run_starts,
                     size_t num_runs, const RangePredicate& pred) {
  // Run arrays are short (one entry per run, not per row); the predicated
  // portable loop is already bandwidth-bound on them.
  return CountRle_Sse2(run_values, run_starts, num_runs, pred);
}

void SelectRle_Avx2(const Value* run_values, const uint32_t* run_starts,
                    size_t num_runs, const RangePredicate& pred, Key base,
                    std::vector<Key>* out) {
  SelectRle_Sse2(run_values, run_starts, num_runs, pred, base, out);
}

void FoldRle_Avx2(FoldOp op, const Value* run_values,
                  const uint32_t* run_starts, size_t num_runs,
                  const RangePredicate& pred, Value* acc, bool* valid) {
  FoldRle_Sse2(op, run_values, run_starts, num_runs, pred, acc, valid);
}

}  // namespace crackdb::kernels::detail

#else  // !CRACKDB_AVX2_ARM

namespace crackdb::kernels::detail {

bool HasAvx2Arm() { return false; }

size_t CrackInTwo_Avx2(Value* head, Value* tail, size_t n, Bound bound) {
  return CrackInTwo_Sse2(head, tail, n, bound);
}
void CrackInThree_Avx2(Value* head, Value* tail, size_t n, Bound lo,
                       Bound hi, size_t* mid_begin, size_t* hi_begin) {
  CrackInThree_Sse2(head, tail, n, lo, hi, mid_begin, hi_begin);
}
size_t CountRange_Avx2(const Value* values, size_t n,
                       const RangePredicate& pred) {
  return CountRange_Sse2(values, n, pred);
}
void SelectRange_Avx2(const Value* values, size_t n,
                      const RangePredicate& pred, Key base,
                      std::vector<Key>* out) {
  SelectRange_Sse2(values, n, pred, base, out);
}
void FilterKeys_Avx2(const Value* values, const Key* keys, size_t n,
                     const RangePredicate& pred, std::vector<Key>* out) {
  FilterKeys_Sse2(values, keys, n, pred, out);
}
void MatchBitmap_Avx2(const Value* values, size_t begin, size_t end,
                      const RangePredicate& pred, uint64_t* words,
                      BitmapMode mode) {
  MatchBitmap_Sse2(values, begin, end, pred, words, mode);
}
void FoldSpan_Avx2(FoldOp op, const Value* values, size_t n, Value* acc,
                   bool* valid) {
  FoldSpan_Sse2(op, values, n, acc, valid);
}
void FoldGather_Avx2(FoldOp op, const Value* values, const Key* keys,
                     size_t n, Value* acc, bool* valid) {
  FoldGather_Sse2(op, values, keys, n, acc, valid);
}
void Gather_Avx2(const Value* values, const Key* keys, size_t n, Value* out) {
  Gather_Sse2(values, keys, n, out);
}
void FoldGroup_Avx2(FoldOp op, const Value* values, const Key* keys,
                    const uint32_t* group_of, size_t n, Value* accs) {
  FoldGroup_Sse2(op, values, keys, group_of, n, accs);
}
size_t CountPacked_Avx2(const uint64_t* words, unsigned bits, size_t n,
                        uint64_t lo_code, uint64_t hi_code) {
  return CountPacked_Sse2(words, bits, n, lo_code, hi_code);
}
void SelectPacked_Avx2(const uint64_t* words, unsigned bits, size_t n,
                       uint64_t lo_code, uint64_t hi_code, Key base,
                       std::vector<Key>* out) {
  SelectPacked_Sse2(words, bits, n, lo_code, hi_code, base, out);
}
void FoldPacked_Avx2(FoldOp op, const uint64_t* words, unsigned bits,
                     size_t n, Value value_base, uint64_t lo_code,
                     uint64_t hi_code, Value* acc, bool* valid) {
  FoldPacked_Sse2(op, words, bits, n, value_base, lo_code, hi_code, acc,
                  valid);
}
size_t CountRle_Avx2(const Value* run_values, const uint32_t* run_starts,
                     size_t num_runs, const RangePredicate& pred) {
  return CountRle_Sse2(run_values, run_starts, num_runs, pred);
}
void SelectRle_Avx2(const Value* run_values, const uint32_t* run_starts,
                    size_t num_runs, const RangePredicate& pred, Key base,
                    std::vector<Key>* out) {
  SelectRle_Sse2(run_values, run_starts, num_runs, pred, base, out);
}
void FoldRle_Avx2(FoldOp op, const Value* run_values,
                  const uint32_t* run_starts, size_t num_runs,
                  const RangePredicate& pred, Value* acc, bool* valid) {
  FoldRle_Sse2(op, run_values, run_starts, num_runs, pred, acc, valid);
}

}  // namespace crackdb::kernels::detail

#endif  // CRACKDB_AVX2_ARM
