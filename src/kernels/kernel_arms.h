#ifndef CRACKDB_KERNELS_KERNEL_ARMS_H_
#define CRACKDB_KERNELS_KERNEL_ARMS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "kernels/kernels.h"

/// Internal: the per-arm kernel entry points the dispatch tables
/// (kernels.cc) are built from. Each arm implements the identical
/// contract documented on KernelTable; the scalar arm is the reference.
namespace crackdb::kernels::detail {

#define CRACKDB_DECLARE_ARM(arm)                                            \
  size_t CrackInTwo_##arm(Value* head, Value* tail, size_t n, Bound bound); \
  void CrackInThree_##arm(Value* head, Value* tail, size_t n, Bound lo,     \
                          Bound hi, size_t* mid_begin, size_t* hi_begin);   \
  size_t CountRange_##arm(const Value* values, size_t n,                    \
                          const RangePredicate& pred);                      \
  void SelectRange_##arm(const Value* values, size_t n,                     \
                         const RangePredicate& pred, Key base,              \
                         std::vector<Key>* out);                            \
  void FilterKeys_##arm(const Value* values, const Key* keys, size_t n,     \
                        const RangePredicate& pred, std::vector<Key>* out); \
  void MatchBitmap_##arm(const Value* values, size_t begin, size_t end,     \
                         const RangePredicate& pred, uint64_t* words,       \
                         BitmapMode mode);                                  \
  void FoldSpan_##arm(FoldOp op, const Value* values, size_t n, Value* acc, \
                      bool* valid);                                         \
  void FoldGather_##arm(FoldOp op, const Value* values, const Key* keys,    \
                        size_t n, Value* acc, bool* valid);                 \
  void Gather_##arm(const Value* values, const Key* keys, size_t n,         \
                    Value* out);                                            \
  void FoldGroup_##arm(FoldOp op, const Value* values, const Key* keys,     \
                       const uint32_t* group_of, size_t n, Value* accs);    \
  size_t CountPacked_##arm(const uint64_t* words, unsigned bits, size_t n,  \
                           uint64_t lo_code, uint64_t hi_code);             \
  void SelectPacked_##arm(const uint64_t* words, unsigned bits, size_t n,   \
                          uint64_t lo_code, uint64_t hi_code, Key base,     \
                          std::vector<Key>* out);                           \
  void FoldPacked_##arm(FoldOp op, const uint64_t* words, unsigned bits,    \
                        size_t n, Value value_base, uint64_t lo_code,       \
                        uint64_t hi_code, Value* acc, bool* valid);         \
  size_t CountRle_##arm(const Value* run_values, const uint32_t* run_starts,\
                        size_t num_runs, const RangePredicate& pred);       \
  void SelectRle_##arm(const Value* run_values, const uint32_t* run_starts, \
                       size_t num_runs, const RangePredicate& pred,         \
                       Key base, std::vector<Key>* out);                    \
  void FoldRle_##arm(FoldOp op, const Value* run_values,                    \
                     const uint32_t* run_starts, size_t num_runs,           \
                     const RangePredicate& pred, Value* acc, bool* valid)

CRACKDB_DECLARE_ARM(Scalar);
CRACKDB_DECLARE_ARM(Sse2);

/// True when this build carries the AVX2 intrinsic arm (x86 + a compiler
/// with function-level target support). When false, Table(kAvx2) aliases
/// the portable arm.
bool HasAvx2Arm();
CRACKDB_DECLARE_ARM(Avx2);

#undef CRACKDB_DECLARE_ARM

}  // namespace crackdb::kernels::detail

#endif  // CRACKDB_KERNELS_KERNEL_ARMS_H_
