// The scalar reference arm: the spec every SIMD arm is property-tested
// against (tests/kernel_test.cc, docs/KERNELS.md). The loops here are the
// pre-kernel hot-path implementations, preserved verbatim in behavior:
// crack-in-two is the Hoare-style partition and crack-in-three the
// Dutch-national-flag pass that cracking has always used, so a forced
// scalar run (CRACKDB_KERNEL_ISA=scalar) reproduces historical layouts
// bit for bit.

#include <algorithm>
#include <utility>

#include "kernels/kernel_arms.h"
#include "kernels/kernel_impl.h"

namespace crackdb::kernels::detail {

namespace {

inline void SwapPair(Value* head, Value* tail, size_t i, size_t j) {
  std::swap(head[i], head[j]);
  std::swap(tail[i], tail[j]);
}

}  // namespace

size_t CrackInTwo_Scalar(Value* head, Value* tail, size_t n, Bound bound) {
  const UpperThreshold th = ThresholdOf(bound);
  if (th.none) return n;
  const Value t = th.threshold;
  size_t i = 0;
  size_t j = n;
  // Hoare-style partition: i scans for entries belonging to the upper
  // part (v >= t), j for entries belonging to the lower part.
  while (true) {
    while (i < j && head[i] < t) ++i;
    while (i < j && head[j - 1] >= t) --j;
    if (i + 1 >= j) break;
    SwapPair(head, tail, i, j - 1);
    ++i;
    --j;
  }
  return i;
}

void CrackInThree_Scalar(Value* head, Value* tail, size_t n, Bound lo,
                         Bound hi, size_t* mid_begin, size_t* hi_begin) {
  const UpperThreshold th_lo = ThresholdOf(lo);
  const UpperThreshold th_hi = ThresholdOf(hi);
  if (th_lo.none) {  // nothing satisfies lo: everything is the lower part
    *mid_begin = n;
    *hi_begin = n;
    return;
  }
  if (th_hi.none) {  // no upper part: reduces to crack-in-two on lo
    *mid_begin = CrackInTwo_Scalar(head, tail, n, lo);
    *hi_begin = n;
    return;
  }
  const Value t_lo = th_lo.threshold;
  const Value t_hi = th_hi.threshold;
  // Dutch-national-flag partition: [0, lo_end) below, [lo_end, mid)
  // middle, [hb, n) above.
  size_t lo_end = 0;
  size_t mid = 0;
  size_t hb = n;
  while (mid < hb) {
    const Value v = head[mid];
    if (v < t_lo) {
      SwapPair(head, tail, lo_end, mid);
      ++lo_end;
      ++mid;
    } else if (v >= t_hi) {
      --hb;
      SwapPair(head, tail, mid, hb);
    } else {
      ++mid;
    }
  }
  *mid_begin = lo_end;
  *hi_begin = hb;
}

size_t CountRange_Scalar(const Value* values, size_t n,
                         const RangePredicate& pred) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (pred.Matches(values[i])) ++count;
  }
  return count;
}

void SelectRange_Scalar(const Value* values, size_t n,
                        const RangePredicate& pred, Key base,
                        std::vector<Key>* out) {
  for (size_t i = 0; i < n; ++i) {
    if (pred.Matches(values[i])) {
      out->push_back(base + static_cast<Key>(i));
    }
  }
}

void FilterKeys_Scalar(const Value* values, const Key* keys, size_t n,
                       const RangePredicate& pred, std::vector<Key>* out) {
  for (size_t i = 0; i < n; ++i) {
    if (pred.Matches(values[keys[i]])) out->push_back(keys[i]);
  }
}

void MatchBitmap_Scalar(const Value* values, size_t begin, size_t end,
                        const RangePredicate& pred, uint64_t* words,
                        BitmapMode mode) {
  for (size_t i = begin; i < end; ++i) {
    const bool match = pred.Matches(values[i]);
    const uint64_t bit = uint64_t{1} << (i & 63);
    uint64_t& word = words[i >> 6];
    switch (mode) {
      case BitmapMode::kAssign:
        word = match ? (word | bit) : (word & ~bit);
        break;
      case BitmapMode::kAnd:
        if (!match) word &= ~bit;
        break;
      case BitmapMode::kOr:
        if (match) word |= bit;
        break;
    }
  }
}

void FoldSpan_Scalar(FoldOp op, const Value* values, size_t n, Value* acc,
                     bool* valid) {
  if (n == 0) return;
  Value result = values[0];
  switch (op) {
    case FoldOp::kSum: {
      // Unsigned accumulation: wraparound is defined and arm-identical.
      uint64_t sum = static_cast<uint64_t>(result);
      for (size_t i = 1; i < n; ++i) {
        sum += static_cast<uint64_t>(values[i]);
      }
      result = static_cast<Value>(sum);
      break;
    }
    case FoldOp::kMin:
      for (size_t i = 1; i < n; ++i) result = std::min(result, values[i]);
      break;
    case FoldOp::kMax:
      for (size_t i = 1; i < n; ++i) result = std::max(result, values[i]);
      break;
  }
  if (!*valid) {
    *acc = result;
    *valid = true;
    return;
  }
  switch (op) {
    case FoldOp::kSum:
      *acc = static_cast<Value>(static_cast<uint64_t>(*acc) +
                                static_cast<uint64_t>(result));
      break;
    case FoldOp::kMin:
      *acc = std::min(*acc, result);
      break;
    case FoldOp::kMax:
      *acc = std::max(*acc, result);
      break;
  }
}

void FoldGather_Scalar(FoldOp op, const Value* values, const Key* keys,
                       size_t n, Value* acc, bool* valid) {
  if (n == 0) return;
  Value result = values[keys[0]];
  switch (op) {
    case FoldOp::kSum: {
      uint64_t sum = static_cast<uint64_t>(result);
      for (size_t i = 1; i < n; ++i) {
        sum += static_cast<uint64_t>(values[keys[i]]);
      }
      result = static_cast<Value>(sum);
      break;
    }
    case FoldOp::kMin:
      for (size_t i = 1; i < n; ++i) {
        result = std::min(result, values[keys[i]]);
      }
      break;
    case FoldOp::kMax:
      for (size_t i = 1; i < n; ++i) {
        result = std::max(result, values[keys[i]]);
      }
      break;
  }
  FoldSpan_Scalar(op, &result, 1, acc, valid);
}

void Gather_Scalar(const Value* values, const Key* keys, size_t n,
                   Value* out) {
  for (size_t i = 0; i < n; ++i) out[i] = values[keys[i]];
}

size_t CountPacked_Scalar(const uint64_t* words, unsigned bits, size_t n,
                          uint64_t lo_code, uint64_t hi_code) {
  if (bits == 0) return lo_code == 0 ? n : 0;
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t c = PackedGet(words, bits, i);
    if (c >= lo_code && c <= hi_code) ++count;
  }
  return count;
}

void SelectPacked_Scalar(const uint64_t* words, unsigned bits, size_t n,
                         uint64_t lo_code, uint64_t hi_code, Key base,
                         std::vector<Key>* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t c = bits == 0 ? 0 : PackedGet(words, bits, i);
    if (c >= lo_code && c <= hi_code) {
      out->push_back(base + static_cast<Key>(i));
    }
  }
}

void FoldPacked_Scalar(FoldOp op, const uint64_t* words, unsigned bits,
                       size_t n, Value value_base, uint64_t lo_code,
                       uint64_t hi_code, Value* acc, bool* valid) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t c = bits == 0 ? 0 : PackedGet(words, bits, i);
    if (c < lo_code || c > hi_code) continue;
    // The FOR decode: codes are offsets from the frame base, added with
    // wrapping uint64 arithmetic so INT64_MIN-based frames round-trip.
    const Value v =
        static_cast<Value>(static_cast<uint64_t>(value_base) + c);
    FoldSpan_Scalar(op, &v, 1, acc, valid);
  }
}

size_t CountRle_Scalar(const Value* run_values, const uint32_t* run_starts,
                       size_t num_runs, const RangePredicate& pred) {
  size_t count = 0;
  for (size_t r = 0; r < num_runs; ++r) {
    if (pred.Matches(run_values[r])) {
      count += run_starts[r + 1] - run_starts[r];
    }
  }
  return count;
}

void SelectRle_Scalar(const Value* run_values, const uint32_t* run_starts,
                      size_t num_runs, const RangePredicate& pred, Key base,
                      std::vector<Key>* out) {
  for (size_t r = 0; r < num_runs; ++r) {
    if (!pred.Matches(run_values[r])) continue;
    for (uint32_t pos = run_starts[r]; pos < run_starts[r + 1]; ++pos) {
      out->push_back(base + pos);
    }
  }
}

void FoldRle_Scalar(FoldOp op, const Value* run_values,
                    const uint32_t* run_starts, size_t num_runs,
                    const RangePredicate& pred, Value* acc, bool* valid) {
  for (size_t r = 0; r < num_runs; ++r) {
    if (!pred.Matches(run_values[r])) continue;
    const uint64_t len = run_starts[r + 1] - run_starts[r];
    if (len == 0) continue;
    Value v = run_values[r];
    if (op == FoldOp::kSum) {
      // One multiply per run instead of len adds; wrapping keeps it
      // arm-identical with the positional sum.
      v = static_cast<Value>(static_cast<uint64_t>(v) * len);
    }
    FoldSpan_Scalar(op, &v, 1, acc, valid);
  }
}

void FoldGroup_Scalar(FoldOp op, const Value* values, const Key* keys,
                      const uint32_t* group_of, size_t n, Value* accs) {
  switch (op) {
    case FoldOp::kSum:
      for (size_t i = 0; i < n; ++i) {
        const Value v = values[keys != nullptr ? keys[i] : i];
        Value& acc = accs[group_of[i]];
        // Unsigned accumulation: wraparound is defined and arm-identical.
        acc = static_cast<Value>(static_cast<uint64_t>(acc) +
                                 static_cast<uint64_t>(v));
      }
      break;
    case FoldOp::kMin:
      for (size_t i = 0; i < n; ++i) {
        const Value v = values[keys != nullptr ? keys[i] : i];
        Value& acc = accs[group_of[i]];
        acc = std::min(acc, v);
      }
      break;
    case FoldOp::kMax:
      for (size_t i = 0; i < n; ++i) {
        const Value v = values[keys != nullptr ? keys[i] : i];
        Value& acc = accs[group_of[i]];
        acc = std::max(acc, v);
      }
      break;
  }
}

}  // namespace crackdb::kernels::detail
