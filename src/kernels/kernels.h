#ifndef CRACKDB_KERNELS_KERNELS_H_
#define CRACKDB_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "kernels/cpu_dispatch.h"

/// Branch-free data-parallel kernels for the four hot-path families of the
/// engine layer (docs/KERNELS.md is the full contract):
///
///   1. crack partitioning  — crack-in-two / crack-in-three over a
///      (head, tail) pair store,
///   2. predicate evaluation — range count / position-list select /
///      key-list refine / bitmap build over a base column,
///   3. folds               — sum/min/max over contiguous spans and over
///      positional gathers,
///   4. gather              — positional fetch for tuple reconstruction.
///
/// Every kernel has a scalar reference implementation ("the spec") plus
/// branch-free portable (kSse2) and AVX2-intrinsic (kAvx2) arms; the arm
/// is picked once at startup by the dispatch layer (cpu_dispatch.h) and
/// all call sites go through the resolved table. SIMD arms are
/// property-tested against the scalar arm (tests/kernel_test.cc):
/// bit-identical results for families 2-4, and for the crack family an
/// identical split position + identical per-side (head, tail) multisets —
/// intra-piece order is arm-specific but deterministic, which preserves
/// the paper's tape-replay alignment guarantee within a process.
///
/// Layering: this directory depends only on common/; engines, cracking
/// structures, and storage call down into it, never the reverse.
namespace crackdb::kernels {

/// Fold operator. Mirrors engine/query.h's AggregateOp, redeclared here so
/// the kernel layer stays a leaf (query.h maps between the two). Sums wrap
/// modulo 2^64 (accumulated as uint64_t, so overflow is defined and
/// arm-identical); min/max are exact.
enum class FoldOp { kSum, kMin, kMax };

/// How a match bitmap combines with the destination words: overwrite
/// (select_create_bv), intersect (select_refine_bv), or union (the
/// disjunctive widen step). Bits outside [begin, end) are never touched.
enum class BitmapMode { kAssign, kAnd, kOr };

// ---------------------------------------------------------------------------
// Bit-packed code layout, shared by the codec layer (storage/codec.h) and
// the encoded kernels below. Code i occupies bits [i*bits, (i+1)*bits)
// little-endian across the word array; `bits` is at most 63 so a code never
// spans more than two words. Arrays sized with PackedWordCount carry one
// trailing pad word, so arms may read words[w + 1] unconditionally.
// ---------------------------------------------------------------------------

/// Words needed to pack `n` codes of `bits` bits, plus one pad word.
inline size_t PackedWordCount(unsigned bits, size_t n) {
  return (n * static_cast<size_t>(bits) + 63) / 64 + 1;
}

/// Code i of a packed array; bits must be in [1, 63].
inline uint64_t PackedGet(const uint64_t* words, unsigned bits, size_t i) {
  const size_t bit = i * static_cast<size_t>(bits);
  const size_t w = bit >> 6;
  const unsigned off = static_cast<unsigned>(bit & 63);
  uint64_t code = words[w] >> off;
  if (off + bits > 64) code |= words[w + 1] << (64 - off);
  return code & ((uint64_t{1} << bits) - 1);
}

/// Writes code i into a zero-initialized packed array (encoder side; codes
/// must be written at most once per slot). bits in [1, 63], code < 2^bits.
inline void PackedSet(uint64_t* words, unsigned bits, size_t i,
                      uint64_t code) {
  const size_t bit = i * static_cast<size_t>(bits);
  const size_t w = bit >> 6;
  const unsigned off = static_cast<unsigned>(bit & 63);
  words[w] |= code << off;
  if (off + bits > 64) words[w + 1] |= code >> (64 - off);
}

/// One implementation arm: per-kernel function pointers. The dispatch
/// layer resolves which table Active() returns once at startup; benches
/// and property tests address specific arms via Table(isa).
///
/// Contracts common to every arm:
///  - `n` elements starting at the given pointers; no alignment
///    requirement (arms handle misaligned heads/tails internally).
///  - Gather-style kernels (gather, fold_gather, filter_keys) require
///    positions < 2^31: AVX2 gathers consume signed 32-bit indices. Key
///    is the tuple position of a row in one relation, far below that.
///  - Appending kernels (select_range, filter_keys) only ever append to
///    `out`; existing contents are preserved.
struct KernelTable {
  /// Partitions the pair store [0, n) in place: entries NOT on the upper
  /// side of `bound` (v < threshold) first, upper entries last; head and
  /// tail permute together. Returns the first upper position.
  size_t (*crack_in_two)(Value* head, Value* tail, size_t n, Bound bound);

  /// Three-way partition of [0, n): below `lo` / satisfying `lo` but not
  /// `hi` / satisfying `hi`. Requires cut(lo) <= cut(hi) (the caller's
  /// CrackOnPredicate guarantees it). Writes the start of the middle and
  /// upper parts.
  void (*crack_in_three)(Value* head, Value* tail, size_t n, Bound lo,
                         Bound hi, size_t* mid_begin, size_t* hi_begin);

  /// Number of values in [0, n) matching `pred`.
  size_t (*count_range)(const Value* values, size_t n,
                        const RangePredicate& pred);

  /// Appends `base + i` for every i with pred.Matches(values[i]), in
  /// ascending i order (order-preserving select over a base column).
  void (*select_range)(const Value* values, size_t n,
                       const RangePredicate& pred, Key base,
                       std::vector<Key>* out);

  /// Appends every keys[i] with pred.Matches(values[keys[i]]), preserving
  /// key-list order (the conjunction-refinement step: gather + test).
  void (*filter_keys)(const Value* values, const Key* keys, size_t n,
                      const RangePredicate& pred, std::vector<Key>* out);

  /// Evaluates `pred` over values[i] for i in [begin, end) and combines
  /// the match bit into bit i of `words` per `mode`. Bit i lives at
  /// words[i >> 6] bit (i & 63); bits outside [begin, end) are untouched.
  void (*match_bitmap)(const Value* values, size_t begin, size_t end,
                       const RangePredicate& pred, uint64_t* words,
                       BitmapMode mode);

  /// Folds values[0..n) into (*acc, *valid) with FoldValue semantics:
  /// a fold over zero values leaves both untouched.
  void (*fold_span)(FoldOp op, const Value* values, size_t n, Value* acc,
                    bool* valid);

  /// Folds values[keys[0..n)] into (*acc, *valid).
  void (*fold_gather)(FoldOp op, const Value* values, const Key* keys,
                      size_t n, Value* acc, bool* valid);

  /// out[i] = values[keys[i]] for i in [0, n). `out` must hold n values
  /// and must not alias `values`.
  void (*gather)(const Value* values, const Key* keys, size_t n, Value* out);

  /// Grouped fold (key-gather + accumulate): folds
  /// values[keys ? keys[i] : i] into accs[group_of[i]] for i in [0, n).
  /// The caller pre-initializes accs (0 for sums, kMaxValue/kMinValue for
  /// min/max) and guarantees every group_of[i] indexes a valid slot;
  /// repeated group ids within any distance are folded correctly (the
  /// AVX2 arm scatters accumulator updates scalar-wise, so intra-vector
  /// group-id conflicts cannot lose updates).
  void (*fold_group)(FoldOp op, const Value* values, const Key* keys,
                     const uint32_t* group_of, size_t n, Value* accs);

  // --- Encoded-domain kernels (the codec fast paths, storage/codec.h) ---
  //
  // Packed kernels operate on the bit-packed code layout above: `n` codes
  // of `bits` bits each (bits in [0, 63]; bits == 0 means every code is 0
  // and `words` may be null). The predicate arrives pre-translated into
  // the code domain as the closed interval [lo_code, hi_code] with
  // lo_code <= hi_code (the codec layer handles empty ranges before
  // dispatching); because a FOR/dictionary encoding is monotone, unsigned
  // code order equals value order. RLE kernels operate on `num_runs` runs:
  // run i holds run_values[i] over positions [run_starts[i],
  // run_starts[i+1]) — run_starts has num_runs + 1 entries.

  /// Number of codes in [lo_code, hi_code].
  size_t (*count_packed)(const uint64_t* words, unsigned bits, size_t n,
                         uint64_t lo_code, uint64_t hi_code);

  /// Appends `base + i` for every code i in [lo_code, hi_code], ascending.
  void (*select_packed)(const uint64_t* words, unsigned bits, size_t n,
                        uint64_t lo_code, uint64_t hi_code, Key base,
                        std::vector<Key>* out);

  /// Folds `value_base + code` (wrapping uint64 add, the FOR decode) over
  /// every code in [lo_code, hi_code] into (*acc, *valid); untouched when
  /// nothing matches. Pass [0, 2^bits - 1] for an unfiltered fold.
  void (*fold_packed)(FoldOp op, const uint64_t* words, unsigned bits,
                      size_t n, Value value_base, uint64_t lo_code,
                      uint64_t hi_code, Value* acc, bool* valid);

  /// Number of positions covered by runs whose value matches `pred` —
  /// run-granular: one predicate test per run, never per position.
  size_t (*count_rle)(const Value* run_values, const uint32_t* run_starts,
                      size_t num_runs, const RangePredicate& pred);

  /// Appends `base + pos` for every position in a matching run, ascending.
  void (*select_rle)(const Value* run_values, const uint32_t* run_starts,
                     size_t num_runs, const RangePredicate& pred, Key base,
                     std::vector<Key>* out);

  /// Folds matching runs into (*acc, *valid): sums add value * run_length
  /// (wrapping mod 2^64), min/max fold each matching run's value once.
  void (*fold_rle)(FoldOp op, const Value* run_values,
                   const uint32_t* run_starts, size_t num_runs,
                   const RangePredicate& pred, Value* acc, bool* valid);
};

/// The named arm's table. Always valid: on CPUs (or builds) without an
/// arm's ISA, the entry aliases the widest arm that *is* executable, so
/// addressing Table(kAvx2) on an SSE2-only machine is safe.
const KernelTable& Table(Isa isa);

/// The table every library call site dispatches through: Table(ActiveIsa()).
const KernelTable& Active();

// ---------------------------------------------------------------------------
// Call-site wrappers: one-liners through the resolved table, so the hot
// paths read as kernel invocations rather than table plumbing.
// ---------------------------------------------------------------------------

inline size_t CrackInTwoPairs(Value* head, Value* tail, size_t n,
                              const Bound& bound) {
  return Active().crack_in_two(head, tail, n, bound);
}

inline void CrackInThreePairs(Value* head, Value* tail, size_t n,
                              const Bound& lo, const Bound& hi,
                              size_t* mid_begin, size_t* hi_begin) {
  Active().crack_in_three(head, tail, n, lo, hi, mid_begin, hi_begin);
}

inline size_t CountRange(const Value* values, size_t n,
                         const RangePredicate& pred) {
  return Active().count_range(values, n, pred);
}

inline void SelectRange(const Value* values, size_t n,
                        const RangePredicate& pred, Key base,
                        std::vector<Key>* out) {
  Active().select_range(values, n, pred, base, out);
}

inline void FilterKeys(const Value* values, const Key* keys, size_t n,
                       const RangePredicate& pred, std::vector<Key>* out) {
  Active().filter_keys(values, keys, n, pred, out);
}

inline void MatchBitmap(const Value* values, size_t begin, size_t end,
                        const RangePredicate& pred, uint64_t* words,
                        BitmapMode mode) {
  Active().match_bitmap(values, begin, end, pred, words, mode);
}

inline void FoldSpan(FoldOp op, const Value* values, size_t n, Value* acc,
                     bool* valid) {
  Active().fold_span(op, values, n, acc, valid);
}

inline void FoldGather(FoldOp op, const Value* values, const Key* keys,
                       size_t n, Value* acc, bool* valid) {
  Active().fold_gather(op, values, keys, n, acc, valid);
}

inline void Gather(const Value* values, const Key* keys, size_t n,
                   Value* out) {
  Active().gather(values, keys, n, out);
}

inline void FoldGroup(FoldOp op, const Value* values, const Key* keys,
                      const uint32_t* group_of, size_t n, Value* accs) {
  Active().fold_group(op, values, keys, group_of, n, accs);
}

inline size_t CountPacked(const uint64_t* words, unsigned bits, size_t n,
                          uint64_t lo_code, uint64_t hi_code) {
  return Active().count_packed(words, bits, n, lo_code, hi_code);
}

inline void SelectPacked(const uint64_t* words, unsigned bits, size_t n,
                         uint64_t lo_code, uint64_t hi_code, Key base,
                         std::vector<Key>* out) {
  Active().select_packed(words, bits, n, lo_code, hi_code, base, out);
}

inline void FoldPacked(FoldOp op, const uint64_t* words, unsigned bits,
                       size_t n, Value value_base, uint64_t lo_code,
                       uint64_t hi_code, Value* acc, bool* valid) {
  Active().fold_packed(op, words, bits, n, value_base, lo_code, hi_code, acc,
                       valid);
}

inline size_t CountRle(const Value* run_values, const uint32_t* run_starts,
                       size_t num_runs, const RangePredicate& pred) {
  return Active().count_rle(run_values, run_starts, num_runs, pred);
}

inline void SelectRle(const Value* run_values, const uint32_t* run_starts,
                      size_t num_runs, const RangePredicate& pred, Key base,
                      std::vector<Key>* out) {
  Active().select_rle(run_values, run_starts, num_runs, pred, base, out);
}

inline void FoldRle(FoldOp op, const Value* run_values,
                    const uint32_t* run_starts, size_t num_runs,
                    const RangePredicate& pred, Value* acc, bool* valid) {
  Active().fold_rle(op, run_values, run_starts, num_runs, pred, acc, valid);
}

}  // namespace crackdb::kernels

#endif  // CRACKDB_KERNELS_KERNELS_H_
