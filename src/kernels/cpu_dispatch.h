#ifndef CRACKDB_KERNELS_CPU_DISPATCH_H_
#define CRACKDB_KERNELS_CPU_DISPATCH_H_

/// Runtime CPU dispatch for the hot-path kernels (docs/KERNELS.md).
///
/// One binary carries every implementation arm; the widest ISA the CPU
/// supports is picked once, at first kernel use, and every call site then
/// goes through the resolved kernel table (kernels.h). The resolution
/// order is:
///
///   1. detect the widest supported arm (cpuid via
///      __builtin_cpu_supports; non-x86 builds detect kScalar),
///   2. apply the CRACKDB_KERNEL_ISA environment override
///      ("scalar" | "sse2" | "avx2" | "auto", read once),
///   3. clamp the override to what the CPU supports — asking for avx2 on
///      an sse2-only machine degrades (with a stderr note), never crashes.
///
/// The scalar arm is always available and is the behavioral reference the
/// SIMD arms are property-tested against ("the scalar reference is the
/// spec", docs/KERNELS.md).

namespace crackdb::kernels {

/// Implementation arms, narrowest first. Ordering is meaningful: a CPU
/// that supports arm X supports every arm below it, so "clamp" means
/// std::min. kSse2 is the branch-free portable arm (baseline x86-64 already
/// guarantees SSE2, so it is written as auto-vectorizable straight-line
/// code rather than intrinsics); kAvx2 uses AVX2 intrinsics behind a
/// function-level target attribute.
enum class Isa : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Human-readable arm name ("scalar", "sse2", "avx2").
const char* IsaName(Isa isa);

/// Parses an arm name (or "auto"); returns false on unknown spellings.
/// "auto" yields the detected ISA.
bool ParseIsa(const char* name, Isa* out);

/// Widest arm this CPU can execute. Pure detection: no env override.
Isa DetectedIsa();

/// Pure resolution rule (unit-testable): the arm a process with detected
/// arm `detected` and CRACKDB_KERNEL_ISA value `env` (nullptr/"" = unset)
/// ends up on. Unknown spellings and arms wider than `detected` clamp to
/// `detected` — a bad override must never disable dispatch entirely.
Isa ResolveIsa(const char* env, Isa detected);

/// The arm the kernel table currently dispatches to. Resolved once at
/// first use from DetectedIsa() + CRACKDB_KERNEL_ISA; ForceIsa re-points
/// it afterwards.
Isa ActiveIsa();

/// Re-points dispatch at `isa` (clamped to DetectedIsa()), returning the
/// arm actually installed. Test/bench hook for in-process A/B arms — call
/// it only at quiescent points (no concurrent kernel calls): the swap is
/// atomic, but half a query on one arm and half on another voids the
/// layout-determinism contract of the crack kernels (docs/KERNELS.md).
Isa ForceIsa(Isa isa);

}  // namespace crackdb::kernels

#endif  // CRACKDB_KERNELS_CPU_DISPATCH_H_
