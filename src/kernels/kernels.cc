#include "kernels/kernels.h"

#include "kernels/kernel_arms.h"

namespace crackdb::kernels {

namespace {

#define CRACKDB_ARM_TABLE(arm)                                           \
  {                                                                      \
    detail::CrackInTwo_##arm, detail::CrackInThree_##arm,                \
        detail::CountRange_##arm, detail::SelectRange_##arm,             \
        detail::FilterKeys_##arm, detail::MatchBitmap_##arm,             \
        detail::FoldSpan_##arm, detail::FoldGather_##arm,                \
        detail::Gather_##arm, detail::FoldGroup_##arm,                   \
        detail::CountPacked_##arm, detail::SelectPacked_##arm,           \
        detail::FoldPacked_##arm, detail::CountRle_##arm,                \
        detail::SelectRle_##arm, detail::FoldRle_##arm                   \
  }

constexpr KernelTable kScalarTable = CRACKDB_ARM_TABLE(Scalar);
constexpr KernelTable kSse2Table = CRACKDB_ARM_TABLE(Sse2);
constexpr KernelTable kAvx2Table = CRACKDB_ARM_TABLE(Avx2);

#undef CRACKDB_ARM_TABLE

}  // namespace

const KernelTable& Table(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return kScalarTable;
    case Isa::kSse2:
      return kSse2Table;
    case Isa::kAvx2:
      // Alias the widest executable arm: the AVX2 table is only safe to
      // call when the build carries the intrinsic arm AND the CPU
      // reports AVX2.
      if (detail::HasAvx2Arm() && DetectedIsa() >= Isa::kAvx2) {
        return kAvx2Table;
      }
      return kSse2Table;
  }
  return kScalarTable;
}

const KernelTable& Active() { return Table(ActiveIsa()); }

}  // namespace crackdb::kernels
