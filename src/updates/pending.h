#ifndef CRACKDB_UPDATES_PENDING_H_
#define CRACKDB_UPDATES_PENDING_H_

#include <vector>

#include "common/types.h"
#include "storage/relation.h"

namespace crackdb {

/// One update waiting to be merged into a cracked structure. `head_value`
/// is the organizing attribute's value for the affected row, which decides
/// whether a given query's value range makes the update "relevant" (paper
/// Section 3.5: updates are applied only when a query needs the data).
struct PendingUpdate {
  UpdateEvent::Kind kind = UpdateEvent::Kind::kInsert;
  Key key = kInvalidKey;
  Value head_value = 0;
};

/// Per-structure queue of updates not yet merged. A structure (cracker
/// column, map set, chunk map) owns one queue per organizing attribute;
/// the queue lazily pulls the suffix of the relation's update log past its
/// watermark and hands out the subset relevant to the running query.
class PendingQueue {
 public:
  /// Creates a queue whose watermark is the relation's current log version
  /// (the structure was just built from current base data).
  PendingQueue(const Relation& relation, size_t organizing_column);

  /// Ingests log entries past the watermark, resolving head values through
  /// the organizing base column.
  void Pull();

  /// Removes and returns, in arrival order, all pending updates whose head
  /// value matches `pred`. (An insert and a later delete of the same row
  /// share the head value, so they are always extracted together, keeping
  /// replay order consistent.) Call Pull() first.
  std::vector<PendingUpdate> ExtractMatching(const RangePredicate& pred);

  /// Removes and returns everything pending.
  std::vector<PendingUpdate> ExtractAll();

  size_t pending_count() const { return pending_.size(); }
  size_t watermark() const { return watermark_; }

 private:
  const Relation* relation_;
  size_t organizing_column_;
  size_t watermark_;
  std::vector<PendingUpdate> pending_;
};

}  // namespace crackdb

#endif  // CRACKDB_UPDATES_PENDING_H_
