#include "updates/pending.h"

namespace crackdb {

PendingQueue::PendingQueue(const Relation& relation, size_t organizing_column)
    : relation_(&relation),
      organizing_column_(organizing_column),
      watermark_(relation.log_version()) {}

void PendingQueue::Pull() {
  const size_t version = relation_->log_version();
  const Column& organizing = relation_->column(organizing_column_);
  for (; watermark_ < version; ++watermark_) {
    const UpdateEvent& ev = relation_->log_entry(watermark_);
    pending_.push_back({ev.kind, ev.key, organizing[ev.key]});
  }
}

std::vector<PendingUpdate> PendingQueue::ExtractMatching(
    const RangePredicate& pred) {
  std::vector<PendingUpdate> extracted;
  std::vector<PendingUpdate> kept;
  kept.reserve(pending_.size());
  for (const PendingUpdate& u : pending_) {
    if (pred.Matches(u.head_value)) {
      extracted.push_back(u);
    } else {
      kept.push_back(u);
    }
  }
  pending_ = std::move(kept);
  return extracted;
}

std::vector<PendingUpdate> PendingQueue::ExtractAll() {
  std::vector<PendingUpdate> extracted = std::move(pending_);
  pending_.clear();
  return extracted;
}

}  // namespace crackdb
