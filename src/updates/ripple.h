#ifndef CRACKDB_UPDATES_RIPPLE_H_
#define CRACKDB_UPDATES_RIPPLE_H_

#include <cstddef>
#include <optional>

#include "common/types.h"
#include "cracking/crack.h"
#include "cracking/cracker_index.h"

namespace crackdb {

/// The Ripple algorithm (paper [8], "Updating a Cracked Database"): merges
/// pending insertions and deletions into a cracked store without destroying
/// the knowledge in its cracker index. An insertion ripples a hole from the
/// end of the store down to the piece the new value belongs to, shifting
/// each intervening piece by one position while keeping every piece
/// value-consistent; a deletion ripples the hole out to the end.
///
/// Both operations are deterministic functions of (store, index, operands),
/// so they can be logged in cracker tapes and replayed on every map of a
/// set in the same order (paper Section 3.5).

/// Inserts (head_value, tail_value) into its value-correct piece.
/// Positions of all pieces after the target shift by +1 (reflected in the
/// index).
void RippleInsert(CrackPairs& store, CrackerIndex& index, Value head_value,
                  Value tail_value);

/// Removes the entry at `pos`; pieces after the containing piece shift by
/// -1 (reflected in the index). `pos` must be < store.size().
void RippleDeleteAt(CrackPairs& store, CrackerIndex& index, size_t pos);

/// Locates the entry with the given head and tail values by narrowing to
/// the piece that can contain `head_value` and scanning it. Returns the
/// position, or nullopt if absent.
std::optional<size_t> FindEntry(const CrackPairs& store,
                                const CrackerIndex& index, Value head_value,
                                Value tail_value);

}  // namespace crackdb

#endif  // CRACKDB_UPDATES_RIPPLE_H_
