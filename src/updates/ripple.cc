#include "updates/ripple.h"

#include <cassert>
#include <vector>

namespace crackdb {

void RippleInsert(CrackPairs& store, CrackerIndex& index, Value head_value,
                  Value tail_value) {
  assert(!store.head_dropped);
  const size_t old_size = store.size();
  const CrackerIndex::Piece target =
      index.FindPiece(Bound{head_value, true}, old_size);
  store.PushBack(0, 0);  // hole at position old_size
  size_t hole = old_size;
  // Walk the pieces after the target from the back; each donates its first
  // entry to the hole at its end, effectively shifting by one.
  const std::vector<CrackerIndex::Piece> pieces = index.Pieces(old_size);
  for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
    if (it->begin < target.end) break;  // reached the target piece
    if (it->begin == it->end) continue;  // empty piece: hole passes through
    store.MoveEntry(it->begin, hole);
    hole = it->begin;
  }
  assert(hole == target.end);
  store.SetEntry(hole, head_value, tail_value);
  // Bound-based shift: splits of empty pieces can sit at `target.end` with
  // bounds the new value satisfies; only splits strictly above the value
  // move.
  index.ShiftPositionsAfterBound(Bound{head_value, true}, +1);
}

void RippleDeleteAt(CrackPairs& store, CrackerIndex& index, size_t pos) {
  assert(!store.head_dropped);
  const size_t old_size = store.size();
  assert(pos < old_size);
  const std::vector<CrackerIndex::Piece> pieces = index.Pieces(old_size);
  // Find the piece containing pos.
  size_t target_idx = pieces.size();
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (pos >= pieces[i].begin && pos < pieces[i].end) {
      target_idx = i;
      break;
    }
  }
  assert(target_idx < pieces.size());
  const CrackerIndex::Piece& target = pieces[target_idx];
  // Fill the hole with the target piece's last entry, then let every later
  // piece donate its last entry to the hole at its (new) start.
  store.MoveEntry(target.end - 1, pos);
  size_t hole = target.end - 1;
  for (size_t i = target_idx + 1; i < pieces.size(); ++i) {
    const CrackerIndex::Piece& p = pieces[i];
    if (p.begin == p.end) continue;
    store.MoveEntry(p.end - 1, hole);
    hole = p.end - 1;
  }
  assert(hole == old_size - 1);
  store.PopBack();
  index.ShiftPositions(target.end, -1);
}

std::optional<size_t> FindEntry(const CrackPairs& store,
                                const CrackerIndex& index, Value head_value,
                                Value tail_value) {
  const CrackerIndex::Piece piece =
      index.FindPiece(Bound{head_value, true}, store.size());
  for (size_t i = piece.begin; i < piece.end; ++i) {
    if (store.tail[i] == tail_value && store.head[i] == head_value) return i;
  }
  return std::nullopt;
}

}  // namespace crackdb
