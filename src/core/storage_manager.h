#ifndef CRACKDB_CORE_STORAGE_MANAGER_H_
#define CRACKDB_CORE_STORAGE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace crackdb {

/// Storage accounting and eviction for auxiliary cracking structures
/// (paper Section 4.1 "Storage Management"): enforces a tuple budget over
/// all registered chunks/maps, evicting the least frequently accessed
/// unpinned entry when room is needed. Chunks currently used by the
/// running query are pinned and never evicted mid-query.
///
/// Costs are counted in *half-tuples* (head and tail columns separately)
/// so that dropping a chunk's head column halves its cost; the paper's
/// tuple counts are half-tuples / 2.
class StorageManager {
 public:
  /// `budget_half_tuples` of 0 means unlimited.
  explicit StorageManager(size_t budget_half_tuples)
      : budget_(budget_half_tuples) {}

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  bool unlimited() const { return budget_ == 0; }
  size_t budget_half_tuples() const { return budget_; }
  size_t used_half_tuples() const { return used_; }
  size_t num_entries() const { return entries_.size(); }

  /// Registers a new entry; `dropper` is invoked (exactly once) if the
  /// entry is evicted. Returns the entry's id.
  uint64_t Register(size_t cost_half_tuples, std::function<void()> dropper);

  /// Adjusts an entry's cost (chunk grew through inserts, or halved
  /// through a head drop).
  void UpdateCost(uint64_t id, size_t cost_half_tuples);

  /// Removes an entry without invoking its dropper (the owner already
  /// dropped the structure itself).
  void Unregister(uint64_t id);

  void RecordAccess(uint64_t id);

  void Pin(uint64_t id) { pinned_.insert(id); }
  void UnpinAll() { pinned_.clear(); }

  /// Evicts least-frequently-accessed unpinned entries until `extra`
  /// half-tuples fit in the budget. Returns false if pinned entries made
  /// full reclamation impossible (the caller proceeds over budget — the
  /// running query's working set takes precedence).
  bool EnsureRoom(size_t extra_half_tuples);

  /// Evictions performed so far (experiment metric).
  size_t eviction_count() const { return evictions_; }

 private:
  struct Entry {
    size_t cost = 0;
    size_t accesses = 0;
    std::function<void()> dropper;
  };

  std::optional<uint64_t> PickVictim() const;

  size_t budget_;
  size_t used_ = 0;
  uint64_t next_id_ = 1;
  size_t evictions_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;
  std::unordered_set<uint64_t> pinned_;
};

}  // namespace crackdb

#endif  // CRACKDB_CORE_STORAGE_MANAGER_H_
