#ifndef CRACKDB_CORE_PARTIAL_SIDEWAYS_H_
#define CRACKDB_CORE_PARTIAL_SIDEWAYS_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/chunk_map.h"
#include "core/partial_map.h"
#include "core/storage_manager.h"
#include "storage/relation.h"

namespace crackdb {

/// Tuning knobs of partial sideways cracking (paper Section 4.1).
struct PartialConfig {
  /// Storage threshold T in tuples over all chunks of all partial maps
  /// sharing the StorageManager; 0 = unlimited.
  size_t storage_budget_tuples = 0;
  /// Pieces at or below this entry count are treated as "fits in the CPU
  /// cache": they are sorted (tape-logged) before cracking, and a chunk
  /// whose pieces are all this small is a head-drop candidate (policy 1).
  size_t sort_piece_threshold = 2048;
  /// Enables head-column dropping.
  bool enable_head_drop = false;
  /// Policy 2: drop the head once a chunk has been accessed this many
  /// times without being cracked.
  size_t head_drop_idle_accesses = 16;
};

/// One conjunctive multi-selection / multi-projection query against a
/// partial map set.
struct PartialQueryRequest {
  RangePredicate head_pred;
  /// Additional selections on tail attributes (bit-vector refinement).
  std::vector<std::pair<std::string, RangePredicate>> tail_selections;
  /// Attributes to return for qualifying tuples; the head attribute itself
  /// is allowed.
  std::vector<std::string> projections;
};

struct PartialQueryResult {
  /// columns[i] holds the values of projections[i], row-aligned.
  std::vector<std::vector<Value>> columns;
  size_t num_rows = 0;
};

/// The partial map set S_A (paper Section 4): a chunk map H_A plus one
/// PartialMap per requested tail attribute, executing queries chunk-wise —
/// load/create/align/crack one area's chunks, run the operators over them,
/// emit, move to the next area.
class PartialMapSet {
 public:
  /// `manager` and `config` are shared across the sets of an engine and
  /// must outlive it.
  PartialMapSet(const Relation& relation, const std::string& head_attr,
                StorageManager* manager, const PartialConfig* config);

  PartialMapSet(const PartialMapSet&) = delete;
  PartialMapSet& operator=(const PartialMapSet&) = delete;

  const std::string& head_attr() const { return head_attr_; }

  PartialQueryResult Execute(const PartialQueryRequest& request);

  /// Self-organizing histogram for map-set choice.
  CrackerIndex::Estimate EstimateMatches(const RangePredicate& pred);

  ChunkMap& chunk_map() { return chunk_map_; }
  PartialMap& GetOrCreateMap(const std::string& tail_attr);
  bool HasMap(const std::string& tail_attr) const;

  /// Chunk storage of this set in half-tuples (chunk map excluded, as in
  /// the paper's storage accounting).
  size_t StorageHalfTuples() const;

 private:
  /// Materializes (or finds) the chunk of `map` for `area`, enforcing the
  /// storage budget; pins it for the rest of the query.
  MapChunk& ObtainChunk(PartialMap& map, ChunkMapArea& area);

  void ApplyHeadDropPolicies(MapChunk& chunk);
  void DropChunkHead(MapChunk& chunk);

  const Relation* relation_;
  std::string head_attr_;
  StorageManager* manager_;
  const PartialConfig* config_;
  ChunkMap chunk_map_;
  std::map<std::string, std::unique_ptr<PartialMap>> maps_;
};

}  // namespace crackdb

#endif  // CRACKDB_CORE_PARTIAL_SIDEWAYS_H_
