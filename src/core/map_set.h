#ifndef CRACKDB_CORE_MAP_SET_H_
#define CRACKDB_CORE_MAP_SET_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/cracker_map.h"
#include "core/tape.h"
#include "storage/relation.h"
#include "updates/pending.h"

namespace crackdb {

/// The map set S_A of relation attribute A (paper Section 3.1): all fully
/// materialized cracker maps with head A, the cracker tape T_A, and the
/// per-set deletion map M_A,key (Section 3.5).
///
/// Alignment protocol (Section 3.2): the set snapshots the (A, key) layout
/// at creation; every map starts from that snapshot and advances by
/// replaying tape entries through deterministic operations. Maps whose
/// cursors are equal are positionally aligned. New maps created later also
/// start from the snapshot and replay the whole tape, which reproduces the
/// map-creation-plus-alignment peaks of the paper's Figure 9.
class MapSet {
 public:
  MapSet(const Relation& relation, const std::string& head_attr);

  MapSet(const MapSet&) = delete;
  MapSet& operator=(const MapSet&) = delete;

  const std::string& head_attr() const { return head_attr_; }
  const Relation& relation() const { return *relation_; }

  bool HasMap(const std::string& tail_attr) const;

  /// Returns M_{A,tail_attr}, creating it from the set snapshot (cursor 0,
  /// unaligned) if absent. `created` (optional) reports whether a new map
  /// was materialized.
  CrackerMap& GetOrCreateMap(const std::string& tail_attr,
                             bool* created = nullptr);

  /// Drops a map entirely (storage-restricted operation). The tape keeps
  /// the set's knowledge, so a recreated map re-learns by replay.
  void DropMap(const std::string& tail_attr);

  /// The sideways.select core (Section 3.2 steps 1-8): pulls pending
  /// updates relevant to `pred` into the tape, aligns `map`, cracks it on
  /// `pred` (logging the crack), and returns the contiguous qualifying
  /// area. Tail values of the area are the operator's non-materialized
  /// view.
  PositionRange SidewaysSelect(CrackerMap& map, const RangePredicate& pred);

  /// Replays tape entries from map.cursor() to the tape end.
  void Align(CrackerMap& map);

  /// Replays tape entries up to `target_cursor` only (partial alignment is
  /// a partial-map concept, but full maps reuse the mechanism in tests).
  void AlignTo(CrackerMap& map, size_t target_cursor);

  /// Self-organizing histogram (Section 3.3): estimates how many tuples
  /// match `pred` using the cracker index of the most aligned map of the
  /// set; falls back to [0, n] when the set has no knowledge.
  CrackerIndex::Estimate EstimateMatches(const RangePredicate& pred) const;

  const CrackerTape& tape() const { return tape_; }

  /// Ingests relation-log updates relevant to `pred` as tape entries
  /// (insertions logged directly; deletions resolved to aligned positions
  /// through M_A,key). Exposed for engines that must sync before
  /// estimation.
  void PullUpdates(const RangePredicate& pred);

  /// Total auxiliary tuples held by the set's maps (M_A,key excluded, as
  /// in the paper's storage accounting).
  size_t MapStorageTuples() const;

  std::vector<std::string> MapNames() const;

  /// Number of live rows the snapshot holds (initial map size).
  size_t snapshot_size() const { return snapshot_head_.size(); }

 private:
  void ReplayEntry(CrackerMap& map, const TapeEntry& entry);
  Value TailValueForKey(const CrackerMap& map, Key key) const;
  std::unique_ptr<CrackerMap> BuildFromSnapshot(const std::string& tail_attr) const;

  const Relation* relation_;
  std::string head_attr_;
  /// Creation-time (A value, key) pairs of live rows in insertion order —
  /// the deterministic starting state every map replays from.
  std::vector<Value> snapshot_head_;
  std::vector<Key> snapshot_keys_;
  CrackerTape tape_;
  PendingQueue pending_;
  /// M_A,key: resolves deletion keys to aligned positions (Section 3.5).
  std::unique_ptr<CrackerMap> key_map_;
  std::map<std::string, std::unique_ptr<CrackerMap>> maps_;
};

/// Sentinel tail-attribute name of the per-set deletion map.
inline constexpr char kKeyMapAttr[] = "__key__";

}  // namespace crackdb

#endif  // CRACKDB_CORE_MAP_SET_H_
