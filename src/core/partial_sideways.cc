#include "core/partial_sideways.h"

#include <algorithm>
#include <cassert>

#include "common/bitvector.h"
#include "kernels/kernels.h"

namespace crackdb {

PartialMapSet::PartialMapSet(const Relation& relation,
                             const std::string& head_attr,
                             StorageManager* manager,
                             const PartialConfig* config)
    : relation_(&relation),
      head_attr_(head_attr),
      manager_(manager),
      config_(config),
      chunk_map_(relation, head_attr) {}

PartialMap& PartialMapSet::GetOrCreateMap(const std::string& tail_attr) {
  auto it = maps_.find(tail_attr);
  if (it == maps_.end()) {
    it = maps_
             .emplace(tail_attr, std::make_unique<PartialMap>(
                                     *relation_, head_attr_, tail_attr))
             .first;
  }
  return *it->second;
}

bool PartialMapSet::HasMap(const std::string& tail_attr) const {
  return maps_.count(tail_attr) != 0;
}

MapChunk& PartialMapSet::ObtainChunk(PartialMap& map, ChunkMapArea& area) {
  if (MapChunk* existing = map.FindChunk(area.start)) {
    manager_->Pin(existing->sm_id);
    return *existing;
  }
  const size_t cost = 2 * area.size();
  manager_->EnsureRoom(cost);
  chunk_map_.FetchArea(area);
  MapChunk& chunk = map.CreateChunk(area);
  PartialMap* map_ptr = &map;
  ChunkMap* cm = &chunk_map_;
  const AreaStart start = area.start;
  chunk.sm_id = manager_->Register(cost, [map_ptr, cm, start]() {
    if (ChunkMapArea* a = cm->AreaByStart(start)) cm->ReleaseArea(*a);
    map_ptr->DropChunk(start);
  });
  manager_->Pin(chunk.sm_id);
  return chunk;
}

void PartialMapSet::ApplyHeadDropPolicies(MapChunk& chunk) {
  if (!config_->enable_head_drop || chunk.store.head_dropped) return;
  if (chunk.size() == 0) return;
  // Policy 1: every piece fits in the CPU cache (paper Section 4.1) — the
  // chunk is cracked finely enough that future cracks degrade to cheap
  // in-cache sorts.
  if (!chunk.index.empty()) {
    bool all_small = true;
    for (const CrackerIndex::Piece& p : chunk.index.Pieces(chunk.size())) {
      if (p.end - p.begin > config_->sort_piece_threshold) {
        all_small = false;
        break;
      }
    }
    if (all_small) {
      DropChunkHead(chunk);
      return;
    }
  }
  // Policy 2: not cracked recently — queries use its pieces "as is".
  if (chunk.accesses - chunk.last_crack_access >=
      config_->head_drop_idle_accesses) {
    DropChunkHead(chunk);
  }
}

void PartialMapSet::DropChunkHead(MapChunk& chunk) {
  chunk.store.DropHead();
  manager_->UpdateCost(chunk.sm_id, chunk.StorageHalfTuples());
}

PartialQueryResult PartialMapSet::Execute(const PartialQueryRequest& req) {
  // Working set of tail attributes: selections first, then projections.
  std::vector<std::string> attrs;
  auto add_attr = [&](const std::string& a) {
    if (a == head_attr_) return;
    if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
      attrs.push_back(a);
    }
  };
  for (const auto& [attr, pred] : req.tail_selections) add_attr(attr);
  for (const std::string& attr : req.projections) add_attr(attr);

  PartialQueryResult result;
  result.columns.resize(req.projections.size());

  const RangePredicate& pred = req.head_pred;
  const Bound b_lo{pred.low, pred.low_inclusive};
  const Bound b_hi{pred.high, !pred.high_inclusive};

  std::vector<ChunkMap::ResolvedArea> cover = chunk_map_.ResolveAreas(pred);

  for (const ChunkMap::ResolvedArea& ra : cover) {
    ChunkMapArea& area = *ra.area;
    const bool is_boundary = ra.crack_low || ra.crack_high;

    if (attrs.empty()) {
      // Head-only query: the chunk map's own (A,key) store answers it.
      if (is_boundary) {
        if (area.fetched) {
          chunk_map_.AlignArea(area);
          if (ra.crack_low && !area.index.FindSplit(b_lo).has_value()) {
            area.tape.AppendCrackBound(b_lo);
          }
          if (ra.crack_high && !area.index.FindSplit(b_hi).has_value()) {
            area.tape.AppendCrackBound(b_hi);
          }
          chunk_map_.AlignArea(area);
        } else {
          // No chunks derive from an unfetched area: crack in place.
          TapeEntry e;
          e.kind = TapeEntry::Kind::kCrackBound;
          if (ra.crack_low) {
            e.bound = b_lo;
            ReplayOnKeyStore(area.store, area.index, e);
          }
          if (ra.crack_high) {
            e.bound = b_hi;
            ReplayOnKeyStore(area.store, area.index, e);
          }
        }
      }
      const PositionRange r =
          is_boundary ? area.index.FindArea(pred, area.size())
                      : PositionRange{0, area.size()};
      for (size_t pi = 0; pi < req.projections.size(); ++pi) {
        assert(req.projections[pi] == head_attr_);
        result.columns[pi].insert(result.columns[pi].end(),
                                  area.store.head.begin() + r.begin,
                                  area.store.head.begin() + r.end);
      }
      result.num_rows += r.size();
      continue;
    }

    // Chunk-wise processing (paper Section 4.1): obtain every needed chunk
    // for this area, align mutually, crack boundaries, run operators.
    std::vector<PartialMap*> chunk_owners;
    std::vector<MapChunk*> chunks;
    chunk_owners.reserve(attrs.size());
    chunks.reserve(attrs.size());
    for (const std::string& attr : attrs) {
      PartialMap& pm = GetOrCreateMap(attr);
      chunk_owners.push_back(&pm);
      chunks.push_back(&ObtainChunk(pm, area));
    }
    PartialMap& ref_map = *chunk_owners.front();
    MapChunk& ref = *chunks.front();

    // Partial alignment (paper Section 4.1): interior chunks only align up
    // to the highest cursor among the chunks this query uses; boundary
    // chunks can also stop early if the needed bound shows up on the way.
    size_t target = area.min_replay_cursor;  // updates are never skippable
    for (MapChunk* c : chunks) target = std::max(target, c->cursor);
    // Head recovery for a chunk the area store has overtaken uses the
    // rebuild path, which lands the chunk at the area's cursor. Fold that
    // cursor into the target so every sibling aligns to the same point and
    // recovery can never desynchronize the query's chunks.
    for (MapChunk* c : chunks) {
      if (c->store.head_dropped && area.h_cursor > c->cursor) {
        target = std::max(target, area.h_cursor);
      }
    }
    bool cracked_now = false;
    if (is_boundary) {
      ref_map.AlignChunk(ref, area, target);
      const bool miss_at_partial =
          (ra.crack_low && !ref.index.FindSplit(b_lo).has_value()) ||
          (ra.crack_high && !ref.index.FindSplit(b_hi).has_value());
      if (miss_at_partial) {
        ref_map.AlignChunk(ref, area, area.tape.size());
        const bool miss_lo =
            ra.crack_low && !ref.index.FindSplit(b_lo).has_value();
        const bool miss_hi =
            ra.crack_high && !ref.index.FindSplit(b_hi).has_value();
        if (miss_lo || miss_hi) {
          // Optionally sort cache-sized pieces before cracking them so the
          // head can be dropped later (Section 4.1).
          auto maybe_sort = [&](const Bound& b) {
            if (!config_->enable_head_drop) return;
            const CrackerIndex::Piece piece =
                ref.index.FindPiece(b, ref.size());
            const size_t len = piece.end - piece.begin;
            if (len > 1 && len <= config_->sort_piece_threshold) {
              area.tape.AppendSort(piece.has_lower
                                       ? std::optional<Bound>(piece.lower)
                                       : std::nullopt);
            }
          };
          if (miss_lo) {
            maybe_sort(b_lo);
            area.tape.AppendCrackBound(b_lo);
          }
          if (miss_hi) {
            maybe_sort(b_hi);
            area.tape.AppendCrackBound(b_hi);
          }
          ref_map.AlignChunk(ref, area, area.tape.size());
          cracked_now = true;
        }
        target = area.tape.size();
      }
    }
    for (size_t i = 0; i < chunks.size(); ++i) {
      chunk_owners[i]->AlignChunk(*chunks[i], area, target);
    }

    const PositionRange r = is_boundary
                                ? ref.index.FindArea(pred, ref.size())
                                : PositionRange{0, ref.size()};

    // Conjunctive bit-vector pipeline over the aligned chunk slices.
    BitVector bv;
    bool bv_valid = false;
    for (const auto& [attr, tail_pred] : req.tail_selections) {
      const size_t ai = static_cast<size_t>(
          std::find(attrs.begin(), attrs.end(), attr) - attrs.begin());
      const std::vector<Value>& tail = chunks[ai]->store.tail;
      // Bit i of bv corresponds to tail[r.begin + i]; run the kernel over
      // the shifted pointer to keep the indices aligned.
      if (!bv_valid) {
        bv = BitVector(r.size(), false);
        bv_valid = true;
        kernels::MatchBitmap(tail.data() + r.begin, 0, r.size(), tail_pred,
                             bv.word_data(), kernels::BitmapMode::kAssign);
      } else {
        kernels::MatchBitmap(tail.data() + r.begin, 0, r.size(), tail_pred,
                             bv.word_data(), kernels::BitmapMode::kAnd);
      }
    }

    // Gather projections.
    for (size_t pi = 0; pi < req.projections.size(); ++pi) {
      const std::string& proj = req.projections[pi];
      const std::vector<Value>* source = nullptr;
      if (proj == head_attr_) {
        if (ref.store.head_dropped) ref_map.RecoverHead(ref, area);
        source = &ref.store.head;
      } else {
        const size_t ai = static_cast<size_t>(
            std::find(attrs.begin(), attrs.end(), proj) - attrs.begin());
        source = &chunks[ai]->store.tail;
      }
      std::vector<Value>& out = result.columns[pi];
      if (!bv_valid) {
        out.insert(out.end(), source->begin() + r.begin,
                   source->begin() + r.end);
      } else {
        for (size_t i = 0; i < r.size(); ++i) {
          if (bv.Get(i)) out.push_back((*source)[r.begin + i]);
        }
      }
    }
    result.num_rows += bv_valid ? bv.Count() : r.size();

    // Access statistics and head-drop policies.
    for (MapChunk* c : chunks) {
      ++c->accesses;
      if (cracked_now) c->last_crack_access = c->accesses;
      manager_->RecordAccess(c->sm_id);
      ApplyHeadDropPolicies(*c);
      manager_->UpdateCost(c->sm_id, c->StorageHalfTuples());
    }
  }

  // End of query: nothing stays pinned, and the budget is re-enforced —
  // a query whose working set transiently exceeded T (pinned chunks are
  // never evicted mid-query) sheds the excess now.
  manager_->UnpinAll();
  manager_->EnsureRoom(0);
  return result;
}

CrackerIndex::Estimate PartialMapSet::EstimateMatches(
    const RangePredicate& pred) {
  return chunk_map_.EstimateMatches(pred);
}

size_t PartialMapSet::StorageHalfTuples() const {
  size_t total = 0;
  for (const auto& [attr, map] : maps_) total += map->StorageHalfTuples();
  return total;
}

}  // namespace crackdb
