#ifndef CRACKDB_CORE_SIDEWAYS_H_
#define CRACKDB_CORE_SIDEWAYS_H_

#include <span>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "common/types.h"
#include "core/map_set.h"

namespace crackdb {

/// Orchestrates one multi-selection / multi-projection query over a single
/// map set S_A — the paper's Section 3.2/3.3 operator pipeline:
///
///   sideways.select_create_bv(A, v1, v2, B, v3, v4)   -> AddTailSelection
///   sideways.select_refine_bv(A, v1, v2, C, v5, v6)   -> AddTailSelection
///   sideways.reconstruct(A, v1, v2, D, bv)            -> FetchTail
///
/// All maps touched are aligned through the set's tape, so the bit vector
/// indexes the same tuple at the same offset in every map. Conjunctive
/// queries keep the bit vector as small as the head-predicate area;
/// disjunctive queries size it to the whole map and scan outside the
/// cracked area for unmarked qualifiers (Section 3.3, "Disjunctive
/// Queries").
class SidewaysQuery {
 public:
  SidewaysQuery(MapSet& set, const RangePredicate& head_pred,
                bool disjunctive = false);

  /// Applies a range predicate on tail attribute `attr`
  /// (select_create_bv on first call, select_refine_bv afterwards).
  void AddTailSelection(const std::string& attr, const RangePredicate& pred);

  /// Number of tuples currently qualifying (bit count, or area size when
  /// no tail selection was added).
  size_t NumQualifying();

  /// Values of tail attribute `attr` for all qualifying tuples, in aligned
  /// map order (sideways.reconstruct).
  std::vector<Value> FetchTail(const std::string& attr);

  /// Values of the head attribute A for all qualifying tuples.
  std::vector<Value> FetchHead();

  /// Non-materialized view of the qualifying tail area (Section 3.2 step
  /// 8). Only available when no bit vector filters the area (single
  /// head-predicate queries); returns an empty span with `*ok == false`
  /// otherwise. Valid until the map is next reorganized.
  std::span<const Value> TailView(const std::string& attr, bool* ok);
  std::span<const Value> HeadView(bool* ok);

  /// Scattered access after a non-order-preserving operator (join):
  /// `ordinals` index the qualifying-tuple sequence (0-based, as produced
  /// by FetchTail). Access stays clustered inside the map's qualifying
  /// area — the post-join reconstruction advantage of Figure 5(c).
  std::vector<Value> FetchTailAt(const std::string& attr,
                                 std::span<const uint32_t> ordinals);
  std::vector<Value> FetchHeadAt(std::span<const uint32_t> ordinals);

  /// The qualifying area of the head predicate (valid after the first
  /// operator ran).
  PositionRange area() const { return area_; }

  const BitVector* bit_vector() const { return bv_valid_ ? &bv_ : nullptr; }

 private:
  /// Ensures `map` is aligned & cracked for the head predicate; fixes the
  /// query's area on first use.
  CrackerMap& PrepareMap(const std::string& attr);
  void EnsureQualifyingPositions();

  MapSet* set_;
  RangePredicate head_pred_;
  bool disjunctive_;
  PositionRange area_{0, 0};
  bool area_valid_ = false;
  BitVector bv_;
  bool bv_valid_ = false;
  /// Map positions of qualifying tuples (built lazily for *_At access).
  std::vector<uint32_t> qualifying_positions_;
  bool positions_valid_ = false;
};

}  // namespace crackdb

#endif  // CRACKDB_CORE_SIDEWAYS_H_
