#ifndef CRACKDB_CORE_PARTIAL_MAP_H_
#define CRACKDB_CORE_PARTIAL_MAP_H_

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/chunk_map.h"
#include "core/tape.h"
#include "cracking/crack.h"
#include "cracking/cracker_index.h"
#include "storage/relation.h"

namespace crackdb {

/// One chunk of a partial map M_AB: the (A, B) pairs of one chunk-map area,
/// cracked independently with its own index and its own cursor into the
/// area's tape (paper Section 4.1). Chunks are the unit of materialization,
/// alignment, eviction, and head dropping.
struct MapChunk {
  AreaStart area_start;
  CrackPairs store;  // head = A values (droppable), tail = B values
  CrackerIndex index;
  size_t cursor = 0;
  size_t accesses = 0;
  /// `accesses` value when this chunk last physically cracked; feeds the
  /// "not cracked recently" head-drop policy.
  size_t last_crack_access = 0;
  /// StorageManager entry id (0 = not registered).
  uint64_t sm_id = 0;

  size_t size() const { return store.size(); }

  /// Storage in half-tuples (head and tail counted separately so a dropped
  /// head halves the cost).
  size_t StorageHalfTuples() const { return store.NumStoredValues(); }
};

/// A partial sideways-cracking map M_AB: a dynamic collection of chunks,
/// materialized, aligned, dropped, and recreated independently per area
/// (paper Section 4.1).
class PartialMap {
 public:
  PartialMap(const Relation& relation, std::string head_attr,
             std::string tail_attr);

  PartialMap(const PartialMap&) = delete;
  PartialMap& operator=(const PartialMap&) = delete;

  const std::string& tail_attr() const { return tail_attr_; }

  MapChunk* FindChunk(const AreaStart& start);
  bool HasChunk(const AreaStart& start) const;

  /// Materializes the chunk for `area` from the chunk map: the caller must
  /// have called ChunkMap::FetchArea (which aligns the area), so the new
  /// chunk is born at the tape end with an exact clone of the area's
  /// index — the precondition for deterministic replay alongside older
  /// sibling chunks.
  MapChunk& CreateChunk(ChunkMapArea& area);

  /// Drops a chunk (storage reclamation). The caller releases the area
  /// reference through ChunkMap::ReleaseArea.
  void DropChunk(const AreaStart& start);

  /// Replays the area tape on `chunk` up to `target_cursor` (partial
  /// alignment when below the tape end). Recovers or rebuilds the head if
  /// it was dropped and replay needs it.
  void AlignChunk(MapChunk& chunk, ChunkMapArea& area, size_t target_cursor);

  /// Drops the head column of `chunk`, halving its storage (paper
  /// Section 4.1 "Dropping the Head Column").
  void DropHead(MapChunk& chunk);

  /// Reinstates the head of a head-dropped chunk, aligned at the chunk's
  /// cursor: replayed from the area's own store when the area is at or
  /// behind the chunk (scratch replay), otherwise the chunk is rebuilt
  /// from the area's current state (tail values refetched from base).
  void RecoverHead(MapChunk& chunk, ChunkMapArea& area);

  /// Total storage across chunks, in half-tuples.
  size_t StorageHalfTuples() const;

  std::map<AreaStart, MapChunk, AreaStartLess>& chunks() { return chunks_; }
  const std::map<AreaStart, MapChunk, AreaStartLess>& chunks() const {
    return chunks_;
  }

 private:
  Value TailForKey(Key key) const { return (*tail_column_)[key]; }
  void ReplayEntry(MapChunk& chunk, const TapeEntry& entry);

  const Relation* relation_;
  std::string head_attr_;
  std::string tail_attr_;
  const Column* tail_column_;
  std::map<AreaStart, MapChunk, AreaStartLess> chunks_;
};

}  // namespace crackdb

#endif  // CRACKDB_CORE_PARTIAL_MAP_H_
