#ifndef CRACKDB_CORE_CHUNK_MAP_H_
#define CRACKDB_CORE_CHUNK_MAP_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/tape.h"
#include "cracking/crack.h"
#include "cracking/cracker_index.h"
#include "storage/relation.h"
#include "updates/pending.h"

namespace crackdb {

/// Identifier of a chunk-map area: the cut bound where the area starts in
/// value space (nullopt = the first area, starting at -infinity). Area
/// starts are stable once a boundary exists, which makes them the natural
/// key joining H_A areas with the chunks materialized from them.
using AreaStart = std::optional<Bound>;

/// Cut order over area starts; nullopt sorts first.
struct AreaStartLess {
  bool operator()(const AreaStart& a, const AreaStart& b) const {
    if (!a.has_value()) return b.has_value();
    if (!b.has_value()) return false;
    return BoundLess(*a, *b);
  }
};

/// One area `w` of a chunk map H_A (paper Section 4.1). The area owns its
/// own (A value, key) store — areas are physically independent so updates
/// rippling inside one area never disturb the layouts other chunks copied.
///
/// A *fetched* area has at least one chunk materialized from it and a tape
/// logging every crack/update/sort its chunks perform; `h_cursor` is the
/// area store's own replay position in that tape (H_A lags lazily like any
/// other structure). An *unfetched* area has an empty tape and is updated
/// physically in place.
struct ChunkMapArea {
  AreaStart start;
  CrackPairs store;    // head = A values, tail = tuple keys
  CrackerIndex index;  // interior splits, kept in lockstep with `store`
  CrackerTape tape;
  size_t h_cursor = 0;
  /// Tape position past the last *update* entry. Partial alignment may
  /// stop early for cracks (they only trade performance), but chunks must
  /// replay at least this far before answering — updates change results.
  size_t min_replay_cursor = 0;
  bool fetched = false;
  int refs = 0;

  size_t size() const { return store.size(); }
};

/// The chunk map H_A of a partial map set (paper Section 4.1): provides
/// partial maps with any missing chunks, remembers which value ranges are
/// fetched, and carries each area's tape. It is the set-level authority
/// for update positions (playing the role M_A,key plays for full maps).
class ChunkMap {
 public:
  ChunkMap(const Relation& relation, const std::string& head_attr);

  ChunkMap(const ChunkMap&) = delete;
  ChunkMap& operator=(const ChunkMap&) = delete;

  const Relation& relation() const { return *relation_; }
  const std::string& head_attr() const { return head_attr_; }

  /// One area of a resolved predicate cover, annotated with which
  /// predicate edges fall strictly inside it (those require chunk-level
  /// cracking; only boundary areas can carry them).
  struct ResolvedArea {
    ChunkMapArea* area = nullptr;
    bool crack_low = false;
    bool crack_high = false;
  };

  /// Applies pending updates relevant to `pred`, then returns the
  /// consecutive areas covering `pred` in value order. Unfetched boundary
  /// areas are split at the predicate's bounds so only the relevant value
  /// range need ever be materialized; fetched areas are returned whole
  /// (they must not be re-cut, Section 4.1 "Creating Chunks") and flagged
  /// for chunk-level boundary cracking.
  std::vector<ResolvedArea> ResolveAreas(const RangePredicate& pred);

  /// Replays the area's tape onto its own (A,key) store up to the end.
  void AlignArea(ChunkMapArea& area);

  /// Marks the area fetched and bumps its reference count (a chunk is
  /// being materialized from it). The area is aligned first so the new
  /// chunk is born at the tape end.
  void FetchArea(ChunkMapArea& area);

  /// Releases one chunk reference. When the last chunk of an area is
  /// dropped the area is marked unfetched again and its tape is removed
  /// (Section 4.1): pending tape knowledge is drained into the store
  /// first, interior splits persist as lazily retained knowledge.
  void ReleaseArea(ChunkMapArea& area);

  /// Area containing value `v` (for update routing).
  ChunkMapArea& AreaContaining(Value v);

  /// Area with exactly this start, or null.
  ChunkMapArea* AreaByStart(const AreaStart& start);

  /// All areas in value order (tests, storage reports).
  std::vector<const ChunkMapArea*> Areas() const;
  std::vector<ChunkMapArea*> MutableAreas();

  /// Self-organizing histogram over the area directory plus interior
  /// splits.
  CrackerIndex::Estimate EstimateMatches(const RangePredicate& pred) const;

  size_t total_rows() const;

  /// Pulls and applies pending updates whose head value matches `pred`
  /// (exposed so engines can sync before estimating).
  void PullUpdates(const RangePredicate& pred);

 private:
  void ApplyUpdate(const PendingUpdate& update);

  /// Splits an unfetched area at `bound`, creating a new area starting at
  /// `bound`. No-op if the bound already is an area start.
  void SplitAreaAt(ChunkMapArea& area, const Bound& bound);

  const Relation* relation_;
  std::string head_attr_;
  std::map<AreaStart, ChunkMapArea, AreaStartLess> areas_;
  PendingQueue pending_;
};

/// Replays one tape entry onto a key-tailed store (H_A areas and scratch
/// head-recovery replicas): tail values for inserts are the keys
/// themselves.
void ReplayOnKeyStore(CrackPairs& store, CrackerIndex& index,
                      const TapeEntry& entry);

}  // namespace crackdb

#endif  // CRACKDB_CORE_CHUNK_MAP_H_
