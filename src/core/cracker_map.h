#ifndef CRACKDB_CORE_CRACKER_MAP_H_
#define CRACKDB_CORE_CRACKER_MAP_H_

#include <string>

#include "cracking/crack.h"
#include "cracking/cracker_index.h"

namespace crackdb {

/// A fully-materialized cracker map M_AB (paper Section 3.1): head holds
/// values of the set's head attribute A, tail holds values of `tail_attr`
/// B (or tuple keys for the per-set deletion map M_A,key). The map's
/// `cursor` points at the first tape entry it has not yet replayed; the
/// MapSet owns tape and replay logic.
class CrackerMap {
 public:
  explicit CrackerMap(std::string tail_attr)
      : tail_attr_(std::move(tail_attr)) {}

  CrackerMap(const CrackerMap&) = delete;
  CrackerMap& operator=(const CrackerMap&) = delete;
  CrackerMap(CrackerMap&&) = default;
  CrackerMap& operator=(CrackerMap&&) = default;

  const std::string& tail_attr() const { return tail_attr_; }

  CrackPairs& store() { return store_; }
  const CrackPairs& store() const { return store_; }
  CrackerIndex& index() { return index_; }
  const CrackerIndex& index() const { return index_; }

  size_t cursor() const { return cursor_; }
  void set_cursor(size_t c) { cursor_ = c; }

  size_t size() const { return store_.size(); }

  /// Tuples of auxiliary storage this map occupies (one per (A,B) pair),
  /// the unit of the paper's storage-threshold experiments.
  size_t StorageTuples() const { return store_.size(); }

  /// Access statistics for the least-frequently-used map-drop policy of
  /// the storage-restricted experiments (paper Section 4.2).
  size_t accesses() const { return accesses_; }
  void RecordAccess() { ++accesses_; }

 private:
  std::string tail_attr_;
  CrackPairs store_;
  CrackerIndex index_;
  size_t cursor_ = 0;
  size_t accesses_ = 0;
};

}  // namespace crackdb

#endif  // CRACKDB_CORE_CRACKER_MAP_H_
