#include "core/partial_map.h"

#include <cassert>

#include "updates/ripple.h"

namespace crackdb {

PartialMap::PartialMap(const Relation& relation, std::string head_attr,
                       std::string tail_attr)
    : relation_(&relation),
      head_attr_(std::move(head_attr)),
      tail_attr_(std::move(tail_attr)),
      tail_column_(&relation.column(tail_attr_)) {}

MapChunk* PartialMap::FindChunk(const AreaStart& start) {
  auto it = chunks_.find(start);
  return it == chunks_.end() ? nullptr : &it->second;
}

bool PartialMap::HasChunk(const AreaStart& start) const {
  return chunks_.count(start) != 0;
}

MapChunk& PartialMap::CreateChunk(ChunkMapArea& area) {
  assert(area.h_cursor == area.tape.size() && "area must be aligned");
  MapChunk chunk;
  chunk.area_start = area.start;
  const size_t n = area.store.size();
  chunk.store.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    chunk.store.PushBack(area.store.head[i],
                         TailForKey(static_cast<Key>(area.store.tail[i])));
  }
  chunk.index = area.index.CloneLive();
  chunk.cursor = area.tape.size();
  auto [it, inserted] = chunks_.insert_or_assign(area.start, std::move(chunk));
  (void)inserted;
  return it->second;
}

void PartialMap::DropChunk(const AreaStart& start) { chunks_.erase(start); }

void PartialMap::ReplayEntry(MapChunk& chunk, const TapeEntry& entry) {
  switch (entry.kind) {
    case TapeEntry::Kind::kCrack:
      CrackOnPredicate(chunk.store, chunk.index, entry.pred);
      break;
    case TapeEntry::Kind::kCrackBound: {
      if (!chunk.index.FindSplit(entry.bound).has_value()) {
        const CrackerIndex::Piece piece =
            chunk.index.FindPiece(entry.bound, chunk.store.size());
        const size_t split =
            CrackInTwo(chunk.store, piece.begin, piece.end, entry.bound);
        chunk.index.AddSplit(entry.bound, split);
      }
      break;
    }
    case TapeEntry::Kind::kInsert:
      RippleInsert(chunk.store, chunk.index, entry.head_value,
                   TailForKey(entry.key));
      break;
    case TapeEntry::Kind::kDelete:
      RippleDeleteAt(chunk.store, chunk.index, entry.pos);
      break;
    case TapeEntry::Kind::kSort:
      SortPiece(chunk.store, chunk.index, entry.piece_lower);
      break;
  }
}

void PartialMap::AlignChunk(MapChunk& chunk, ChunkMapArea& area,
                            size_t target_cursor) {
  assert(target_cursor <= area.tape.size());
  if (chunk.cursor >= target_cursor) return;
  if (chunk.store.head_dropped) RecoverHead(chunk, area);
  while (chunk.cursor < target_cursor) {
    ReplayEntry(chunk, area.tape.at(chunk.cursor));
    ++chunk.cursor;
  }
}

void PartialMap::DropHead(MapChunk& chunk) {
  if (chunk.store.head_dropped) return;
  chunk.store.DropHead();
}

void PartialMap::RecoverHead(MapChunk& chunk, ChunkMapArea& area) {
  if (!chunk.store.head_dropped) return;
  if (area.h_cursor <= chunk.cursor) {
    // Scratch replay (the paper's head-recovery from a less-aligned source;
    // here the chunk map's own area store is that source): copy the area's
    // (A,key) state, replay forward to the chunk's cursor — determinism
    // makes the resulting head column exactly the chunk's layout.
    CrackPairs scratch;
    scratch.head = area.store.head;
    scratch.tail = area.store.tail;
    CrackerIndex scratch_index = area.index.CloneLive();
    for (size_t c = area.h_cursor; c < chunk.cursor; ++c) {
      ReplayOnKeyStore(scratch, scratch_index, area.tape.at(c));
    }
    assert(scratch.head.size() == chunk.store.tail.size());
    chunk.store.RestoreHead(std::move(scratch.head));
    return;
  }
  // The area has replayed past this chunk — rebuild the chunk from the
  // area's current state instead (tail values refetched from base).
  MapChunk rebuilt;
  rebuilt.area_start = chunk.area_start;
  const size_t n = area.store.size();
  rebuilt.store.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rebuilt.store.PushBack(area.store.head[i],
                           TailForKey(static_cast<Key>(area.store.tail[i])));
  }
  rebuilt.index = area.index.CloneLive();
  rebuilt.cursor = area.h_cursor;
  rebuilt.accesses = chunk.accesses;
  rebuilt.last_crack_access = chunk.last_crack_access;
  rebuilt.sm_id = chunk.sm_id;  // keep the storage-manager identity
  chunk = std::move(rebuilt);
}

size_t PartialMap::StorageHalfTuples() const {
  size_t total = 0;
  for (const auto& [start, chunk] : chunks_) {
    total += chunk.StorageHalfTuples();
  }
  return total;
}

}  // namespace crackdb
