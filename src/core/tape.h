#ifndef CRACKDB_CORE_TAPE_H_
#define CRACKDB_CORE_TAPE_H_

#include <optional>
#include <vector>

#include "common/types.h"

namespace crackdb {

/// One replayable event in a cracker tape. Alignment (paper Section 3.2)
/// works because every entry is applied through deterministic operations:
/// two structures that replay the same entry prefix from the same initial
/// state are byte-identical.
struct TapeEntry {
  enum class Kind {
    /// Physical reorganization on a selection predicate
    /// (full-map tapes log whole predicates).
    kCrack,
    /// Physical reorganization at a single bound (area-local tapes of
    /// partial maps log one bound per boundary crack).
    kCrackBound,
    /// Ripple-insert of the row `key` with organizing value `head_value`;
    /// each map resolves its own tail value through the base columns.
    kInsert,
    /// Ripple-delete at position `pos` (a position in the aligned layout at
    /// this tape point); `key` is kept so a chunk map can drain the entry
    /// physically by key when a tape is removed.
    kDelete,
    /// Stable sort of the piece whose lower split is `piece_lower`
    /// (absent = first piece); logged when a head column is dropped after
    /// full cracking (paper Section 4.1).
    kSort,
  };

  Kind kind = Kind::kCrack;
  RangePredicate pred;                 // kCrack
  Bound bound;                         // kCrackBound
  Key key = kInvalidKey;               // kInsert, kDelete
  Value head_value = 0;                // kInsert, kDelete
  size_t pos = 0;                      // kDelete
  std::optional<Bound> piece_lower;    // kSort
};

/// The cracker tape T_A of a map set S_A (or of one chunk-map area): an
/// append-only log of every crack/update/sort applied to any structure of
/// the set, in occurrence order. Every structure keeps a cursor into the
/// tape; aligning a structure means replaying entries from its cursor to
/// the end (paper Section 3.2).
class CrackerTape {
 public:
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const TapeEntry& at(size_t i) const { return entries_[i]; }

  void AppendCrack(const RangePredicate& pred) {
    TapeEntry e;
    e.kind = TapeEntry::Kind::kCrack;
    e.pred = pred;
    entries_.push_back(e);
  }

  void AppendCrackBound(const Bound& bound) {
    TapeEntry e;
    e.kind = TapeEntry::Kind::kCrackBound;
    e.bound = bound;
    entries_.push_back(e);
  }

  void AppendInsert(Key key, Value head_value) {
    TapeEntry e;
    e.kind = TapeEntry::Kind::kInsert;
    e.key = key;
    e.head_value = head_value;
    entries_.push_back(e);
  }

  void AppendDelete(size_t pos, Key key, Value head_value) {
    TapeEntry e;
    e.kind = TapeEntry::Kind::kDelete;
    e.pos = pos;
    e.key = key;
    e.head_value = head_value;
    entries_.push_back(e);
  }

  void AppendSort(const std::optional<Bound>& piece_lower) {
    TapeEntry e;
    e.kind = TapeEntry::Kind::kSort;
    e.piece_lower = piece_lower;
    entries_.push_back(e);
  }

  void Clear() { entries_.clear(); }

 private:
  std::vector<TapeEntry> entries_;
};

}  // namespace crackdb

#endif  // CRACKDB_CORE_TAPE_H_
