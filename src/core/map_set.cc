#include "core/map_set.h"

#include <cassert>

#include "updates/ripple.h"

namespace crackdb {

MapSet::MapSet(const Relation& relation, const std::string& head_attr)
    : relation_(&relation),
      head_attr_(head_attr),
      pending_(relation, relation.ColumnOrdinal(head_attr)) {
  const Column& head = relation.column(head_attr);
  const size_t n = head.size();
  snapshot_head_.reserve(relation.num_live_rows());
  snapshot_keys_.reserve(relation.num_live_rows());
  for (size_t i = 0; i < n; ++i) {
    if (relation.IsDeleted(static_cast<Key>(i))) continue;
    snapshot_head_.push_back(head[i]);
    snapshot_keys_.push_back(static_cast<Key>(i));
  }
  key_map_ = BuildFromSnapshot(kKeyMapAttr);
}

std::unique_ptr<CrackerMap> MapSet::BuildFromSnapshot(
    const std::string& tail_attr) const {
  auto map = std::make_unique<CrackerMap>(tail_attr);
  const size_t n = snapshot_head_.size();
  map->store().head = snapshot_head_;  // bulk copy of the head column
  std::vector<Value>& tail_out = map->store().tail;
  tail_out.resize(n);
  if (tail_attr == kKeyMapAttr) {
    for (size_t i = 0; i < n; ++i) {
      tail_out[i] = static_cast<Value>(snapshot_keys_[i]);
    }
  } else {
    const Column& tail = relation_->column(tail_attr);
    for (size_t i = 0; i < n; ++i) {
      tail_out[i] = tail[snapshot_keys_[i]];
    }
  }
  return map;
}

bool MapSet::HasMap(const std::string& tail_attr) const {
  return maps_.count(tail_attr) != 0;
}

CrackerMap& MapSet::GetOrCreateMap(const std::string& tail_attr,
                                   bool* created) {
  auto it = maps_.find(tail_attr);
  if (it != maps_.end()) {
    if (created != nullptr) *created = false;
    return *it->second;
  }
  if (created != nullptr) *created = true;
  auto map = BuildFromSnapshot(tail_attr);
  CrackerMap& ref = *map;
  maps_.emplace(tail_attr, std::move(map));
  return ref;
}

void MapSet::DropMap(const std::string& tail_attr) { maps_.erase(tail_attr); }

Value MapSet::TailValueForKey(const CrackerMap& map, Key key) const {
  if (map.tail_attr() == kKeyMapAttr) return static_cast<Value>(key);
  return relation_->column(map.tail_attr())[key];
}

void MapSet::ReplayEntry(CrackerMap& map, const TapeEntry& entry) {
  switch (entry.kind) {
    case TapeEntry::Kind::kCrack:
      CrackOnPredicate(map.store(), map.index(), entry.pred);
      break;
    case TapeEntry::Kind::kCrackBound: {
      if (!map.index().FindSplit(entry.bound).has_value()) {
        const CrackerIndex::Piece piece =
            map.index().FindPiece(entry.bound, map.size());
        const size_t split =
            CrackInTwo(map.store(), piece.begin, piece.end, entry.bound);
        map.index().AddSplit(entry.bound, split);
      }
      break;
    }
    case TapeEntry::Kind::kInsert:
      RippleInsert(map.store(), map.index(), entry.head_value,
                   TailValueForKey(map, entry.key));
      break;
    case TapeEntry::Kind::kDelete:
      RippleDeleteAt(map.store(), map.index(), entry.pos);
      break;
    case TapeEntry::Kind::kSort:
      SortPiece(map.store(), map.index(), entry.piece_lower);
      break;
  }
}

void MapSet::AlignTo(CrackerMap& map, size_t target_cursor) {
  assert(target_cursor <= tape_.size());
  while (map.cursor() < target_cursor) {
    ReplayEntry(map, tape_.at(map.cursor()));
    map.set_cursor(map.cursor() + 1);
  }
}

void MapSet::Align(CrackerMap& map) { AlignTo(map, tape_.size()); }

void MapSet::PullUpdates(const RangePredicate& pred) {
  pending_.Pull();
  if (pending_.pending_count() == 0) return;
  const std::vector<PendingUpdate> batch = pending_.ExtractMatching(pred);
  for (const PendingUpdate& u : batch) {
    if (u.kind == UpdateEvent::Kind::kInsert) {
      // Logged once; every map (including M_A,key) applies it during its
      // own alignment, resolving the tail value through the base columns.
      tape_.AppendInsert(u.key, u.head_value);
    } else {
      // Deletions need an aligned position: bring M_A,key to the tape end,
      // locate the key, then log position + key (Section 3.5).
      Align(*key_map_);
      const std::optional<size_t> pos =
          FindEntry(key_map_->store(), key_map_->index(), u.head_value,
                    static_cast<Value>(u.key));
      if (!pos.has_value()) continue;  // row never reached this set
      tape_.AppendDelete(*pos, u.key, u.head_value);
      Align(*key_map_);  // apply the delete we just logged
    }
  }
}

PositionRange MapSet::SidewaysSelect(CrackerMap& map,
                                     const RangePredicate& pred) {
  PullUpdates(pred);
  Align(map);
  const CrackResult result = CrackOnPredicate(map.store(), map.index(), pred);
  if (result.reorganized) {
    tape_.AppendCrack(pred);
  }
  map.set_cursor(tape_.size());
  map.RecordAccess();
  return result.area;
}

CrackerIndex::Estimate MapSet::EstimateMatches(
    const RangePredicate& pred) const {
  // Pick the most aligned map: largest cursor = smallest distance to the
  // tape end = most accurate histogram (Section 3.3).
  const CrackerMap* best = key_map_.get();
  for (const auto& [attr, map] : maps_) {
    if (best == nullptr || map->cursor() > best->cursor()) best = map.get();
  }
  if (best == nullptr || best->index().empty()) {
    CrackerIndex::Estimate est;
    est.lower_bound = 0;
    est.upper_bound = snapshot_head_.size();
    est.interpolated = static_cast<double>(est.upper_bound);
    return est;
  }
  return best->index().EstimateMatches(pred, best->size());
}

size_t MapSet::MapStorageTuples() const {
  size_t total = 0;
  for (const auto& [attr, map] : maps_) total += map->StorageTuples();
  return total;
}

std::vector<std::string> MapSet::MapNames() const {
  std::vector<std::string> names;
  names.reserve(maps_.size());
  for (const auto& [attr, map] : maps_) names.push_back(attr);
  return names;
}

}  // namespace crackdb
