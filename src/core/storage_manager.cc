#include "core/storage_manager.h"

namespace crackdb {

uint64_t StorageManager::Register(size_t cost_half_tuples,
                                  std::function<void()> dropper) {
  const uint64_t id = next_id_++;
  entries_[id] = Entry{cost_half_tuples, 0, std::move(dropper)};
  used_ += cost_half_tuples;
  return id;
}

void StorageManager::UpdateCost(uint64_t id, size_t cost_half_tuples) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  used_ -= it->second.cost;
  it->second.cost = cost_half_tuples;
  used_ += cost_half_tuples;
}

void StorageManager::Unregister(uint64_t id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  used_ -= it->second.cost;
  entries_.erase(it);
  pinned_.erase(id);
}

void StorageManager::RecordAccess(uint64_t id) {
  auto it = entries_.find(id);
  if (it != entries_.end()) ++it->second.accesses;
}

std::optional<uint64_t> StorageManager::PickVictim() const {
  std::optional<uint64_t> victim;
  size_t victim_accesses = 0;
  for (const auto& [id, entry] : entries_) {
    if (pinned_.count(id) != 0) continue;
    if (!victim.has_value() || entry.accesses < victim_accesses ||
        (entry.accesses == victim_accesses && id < *victim)) {
      victim = id;
      victim_accesses = entry.accesses;
    }
  }
  return victim;
}

bool StorageManager::EnsureRoom(size_t extra_half_tuples) {
  if (unlimited()) return true;
  while (used_ + extra_half_tuples > budget_) {
    const std::optional<uint64_t> victim = PickVictim();
    if (!victim.has_value()) return false;
    // Detach the entry first: the dropper may mutate owner containers but
    // must not observe a half-removed registry entry.
    auto it = entries_.find(*victim);
    Entry entry = std::move(it->second);
    used_ -= entry.cost;
    entries_.erase(it);
    ++evictions_;
    if (entry.dropper) entry.dropper();
  }
  return true;
}

}  // namespace crackdb
