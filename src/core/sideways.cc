#include "core/sideways.h"

#include <cassert>

#include "kernels/kernels.h"

namespace crackdb {

SidewaysQuery::SidewaysQuery(MapSet& set, const RangePredicate& head_pred,
                             bool disjunctive)
    : set_(&set), head_pred_(head_pred), disjunctive_(disjunctive) {}

CrackerMap& SidewaysQuery::PrepareMap(const std::string& attr) {
  CrackerMap& map = set_->GetOrCreateMap(attr);
  const PositionRange area = set_->SidewaysSelect(map, head_pred_);
  if (!area_valid_) {
    area_ = area;
    area_valid_ = true;
  } else {
    // No updates run mid-query, so every map of the aligned set reports
    // the same qualifying area for the same head predicate.
    assert(area.begin == area_.begin && area.end == area_.end);
  }
  return map;
}

void SidewaysQuery::AddTailSelection(const std::string& attr,
                                     const RangePredicate& pred) {
  CrackerMap& map = PrepareMap(attr);
  positions_valid_ = false;
  if (disjunctive_) {
    // Bit vector spans the whole map; the cracked area qualifies wholesale
    // on the first (least selective) predicate, later predicates only need
    // to inspect still-unmarked tuples outside it.
    if (!bv_valid_) {
      bv_ = BitVector(map.size(), false);
      bv_valid_ = true;
      for (size_t i = area_.begin; i < area_.end; ++i) bv_.Set(i);
      // fall through: this call's tail predicate still applies outside.
    }
    const std::vector<Value>& tail = map.store().tail;
    kernels::MatchBitmap(tail.data(), 0, area_.begin, pred, bv_.word_data(),
                         kernels::BitmapMode::kOr);
    kernels::MatchBitmap(tail.data(), area_.end, map.size(), pred,
                         bv_.word_data(), kernels::BitmapMode::kOr);
    return;
  }
  // Conjunctive: bit vector spans only the head-predicate area, so bit i
  // of the vector corresponds to tail[area_.begin + i] — the kernels run
  // over the shifted value pointer to keep bit and value indices aligned.
  const std::vector<Value>& tail = map.store().tail;
  if (!bv_valid_) {
    // select_create_bv
    bv_ = BitVector(area_.size(), false);
    bv_valid_ = true;
    kernels::MatchBitmap(tail.data() + area_.begin, 0, area_.size(), pred,
                         bv_.word_data(), kernels::BitmapMode::kAssign);
  } else {
    // select_refine_bv
    kernels::MatchBitmap(tail.data() + area_.begin, 0, area_.size(), pred,
                         bv_.word_data(), kernels::BitmapMode::kAnd);
  }
}

size_t SidewaysQuery::NumQualifying() {
  if (!area_valid_) {
    // Pure head-predicate query where nothing was fetched yet: run the
    // head crack through any map of the set (materializing M_{A,A} as a
    // last resort) so the area exists.
    std::vector<std::string> names = set_->MapNames();
    PrepareMap(names.empty() ? set_->head_attr() : names.front());
  }
  if (!bv_valid_) return area_.size();
  return bv_.Count();
}

void SidewaysQuery::EnsureQualifyingPositions() {
  if (positions_valid_) return;
  qualifying_positions_.clear();
  if (!bv_valid_) {
    qualifying_positions_.reserve(area_.size());
    for (size_t i = area_.begin; i < area_.end; ++i) {
      qualifying_positions_.push_back(static_cast<uint32_t>(i));
    }
  } else if (disjunctive_) {
    bv_.AppendSetPositions(&qualifying_positions_, 0);
  } else {
    bv_.AppendSetPositions(&qualifying_positions_,
                           static_cast<uint32_t>(area_.begin));
  }
  positions_valid_ = true;
}

std::vector<Value> SidewaysQuery::FetchTail(const std::string& attr) {
  CrackerMap& map = PrepareMap(attr);
  const std::vector<Value>& tail = map.store().tail;
  std::vector<Value> out;
  if (!bv_valid_) {
    out.assign(tail.begin() + static_cast<ptrdiff_t>(area_.begin),
               tail.begin() + static_cast<ptrdiff_t>(area_.end));
    return out;
  }
  EnsureQualifyingPositions();
  out.resize(qualifying_positions_.size());
  kernels::Gather(tail.data(), qualifying_positions_.data(),
                  qualifying_positions_.size(), out.data());
  return out;
}

std::vector<Value> SidewaysQuery::FetchHead() {
  // Any map of the set carries the head; reuse (or create) the first one
  // the query touched by fetching through the head attribute name itself:
  // the set's maps are keyed by tail attribute, so use an existing map if
  // available, else materialize M_{A,A}.
  std::vector<std::string> names = set_->MapNames();
  const std::string attr = names.empty() ? set_->head_attr() : names.front();
  CrackerMap& map = PrepareMap(attr);
  const std::vector<Value>& head = map.store().head;
  std::vector<Value> out;
  if (!bv_valid_) {
    out.assign(head.begin() + static_cast<ptrdiff_t>(area_.begin),
               head.begin() + static_cast<ptrdiff_t>(area_.end));
    return out;
  }
  EnsureQualifyingPositions();
  out.resize(qualifying_positions_.size());
  kernels::Gather(head.data(), qualifying_positions_.data(),
                  qualifying_positions_.size(), out.data());
  return out;
}

std::span<const Value> SidewaysQuery::TailView(const std::string& attr,
                                               bool* ok) {
  if (bv_valid_) {
    *ok = false;
    return {};
  }
  CrackerMap& map = PrepareMap(attr);
  *ok = true;
  return {map.store().tail.data() + area_.begin, area_.size()};
}

std::span<const Value> SidewaysQuery::HeadView(bool* ok) {
  if (bv_valid_) {
    *ok = false;
    return {};
  }
  std::vector<std::string> names = set_->MapNames();
  const std::string attr = names.empty() ? set_->head_attr() : names.front();
  CrackerMap& map = PrepareMap(attr);
  *ok = true;
  return {map.store().head.data() + area_.begin, area_.size()};
}

std::vector<Value> SidewaysQuery::FetchTailAt(
    const std::string& attr, std::span<const uint32_t> ordinals) {
  CrackerMap& map = PrepareMap(attr);
  EnsureQualifyingPositions();
  const std::vector<Value>& tail = map.store().tail;
  std::vector<Value> out;
  out.reserve(ordinals.size());
  for (uint32_t ord : ordinals) out.push_back(tail[qualifying_positions_[ord]]);
  return out;
}

std::vector<Value> SidewaysQuery::FetchHeadAt(
    std::span<const uint32_t> ordinals) {
  std::vector<std::string> names = set_->MapNames();
  const std::string attr = names.empty() ? set_->head_attr() : names.front();
  CrackerMap& map = PrepareMap(attr);
  EnsureQualifyingPositions();
  const std::vector<Value>& head = map.store().head;
  std::vector<Value> out;
  out.reserve(ordinals.size());
  for (uint32_t ord : ordinals) out.push_back(head[qualifying_positions_[ord]]);
  return out;
}

}  // namespace crackdb
