#include "core/chunk_map.h"

#include <cassert>

#include "updates/ripple.h"

namespace crackdb {

void ReplayOnKeyStore(CrackPairs& store, CrackerIndex& index,
                      const TapeEntry& entry) {
  switch (entry.kind) {
    case TapeEntry::Kind::kCrack:
      CrackOnPredicate(store, index, entry.pred);
      break;
    case TapeEntry::Kind::kCrackBound: {
      if (!index.FindSplit(entry.bound).has_value()) {
        const CrackerIndex::Piece piece =
            index.FindPiece(entry.bound, store.size());
        const size_t split =
            CrackInTwo(store, piece.begin, piece.end, entry.bound);
        index.AddSplit(entry.bound, split);
      }
      break;
    }
    case TapeEntry::Kind::kInsert:
      RippleInsert(store, index, entry.head_value,
                   static_cast<Value>(entry.key));
      break;
    case TapeEntry::Kind::kDelete:
      RippleDeleteAt(store, index, entry.pos);
      break;
    case TapeEntry::Kind::kSort:
      SortPiece(store, index, entry.piece_lower);
      break;
  }
}

ChunkMap::ChunkMap(const Relation& relation, const std::string& head_attr)
    : relation_(&relation),
      head_attr_(head_attr),
      pending_(relation, relation.ColumnOrdinal(head_attr)) {
  const Column& head = relation.column(head_attr);
  ChunkMapArea area;
  area.start = std::nullopt;
  area.store.Reserve(relation.num_live_rows());
  const size_t n = head.size();
  for (size_t i = 0; i < n; ++i) {
    if (relation.IsDeleted(static_cast<Key>(i))) continue;
    area.store.PushBack(head[i], static_cast<Value>(i));
  }
  areas_.emplace(std::nullopt, std::move(area));
}

ChunkMapArea& ChunkMap::AreaContaining(Value v) {
  // Greatest area start <= cut(Bound{v, inclusive}): the area whose value
  // range contains v.
  auto it = areas_.upper_bound(AreaStart(Bound{v, true}));
  assert(it != areas_.begin());
  --it;
  return it->second;
}

ChunkMapArea* ChunkMap::AreaByStart(const AreaStart& start) {
  auto it = areas_.find(start);
  return it == areas_.end() ? nullptr : &it->second;
}

void ChunkMap::AlignArea(ChunkMapArea& area) {
  while (area.h_cursor < area.tape.size()) {
    ReplayOnKeyStore(area.store, area.index, area.tape.at(area.h_cursor));
    ++area.h_cursor;
  }
}

void ChunkMap::FetchArea(ChunkMapArea& area) {
  AlignArea(area);
  area.fetched = true;
  ++area.refs;
}

void ChunkMap::ReleaseArea(ChunkMapArea& area) {
  assert(area.refs > 0);
  if (--area.refs == 0) {
    // Last chunk gone: drain remaining tape knowledge into the store, then
    // remove the tape and mark unfetched (paper Section 4.1). Interior
    // splits remain — the learning is retained, lazy-deletion style.
    AlignArea(area);
    area.tape.Clear();
    area.h_cursor = 0;
    area.min_replay_cursor = 0;
    area.fetched = false;
  }
}

void ChunkMap::ApplyUpdate(const PendingUpdate& update) {
  ChunkMapArea& area = AreaContaining(update.head_value);
  if (!area.fetched) {
    // No chunks derive from this area: apply physically, no logging.
    if (update.kind == UpdateEvent::Kind::kInsert) {
      RippleInsert(area.store, area.index, update.head_value,
                   static_cast<Value>(update.key));
    } else if (auto pos = FindEntry(area.store, area.index, update.head_value,
                                    static_cast<Value>(update.key))) {
      RippleDeleteAt(area.store, area.index, *pos);
    }
    return;
  }
  // Fetched: updates go through the area tape so every chunk replays them
  // in the same order relative to cracks.
  AlignArea(area);
  if (update.kind == UpdateEvent::Kind::kInsert) {
    area.tape.AppendInsert(update.key, update.head_value);
  } else {
    const std::optional<size_t> pos =
        FindEntry(area.store, area.index, update.head_value,
                  static_cast<Value>(update.key));
    if (!pos.has_value()) return;  // row never reached this set
    area.tape.AppendDelete(*pos, update.key, update.head_value);
  }
  area.min_replay_cursor = area.tape.size();
  AlignArea(area);  // apply the entry we just logged
}

void ChunkMap::PullUpdates(const RangePredicate& pred) {
  pending_.Pull();
  if (pending_.pending_count() == 0) return;
  for (const PendingUpdate& u : pending_.ExtractMatching(pred)) {
    ApplyUpdate(u);
  }
}

void ChunkMap::SplitAreaAt(ChunkMapArea& area, const Bound& bound) {
  assert(!area.fetched);
  assert(area.tape.empty());
  // Locate (or create) the split inside the area.
  size_t split;
  if (std::optional<size_t> pos = area.index.FindSplit(bound)) {
    split = *pos;
  } else {
    const CrackerIndex::Piece piece =
        area.index.FindPiece(bound, area.store.size());
    split = CrackInTwo(area.store, piece.begin, piece.end, bound);
  }
  // Carve off the upper part into a new area starting at `bound`.
  ChunkMapArea upper;
  upper.start = bound;
  const size_t n = area.store.size();
  upper.store.Reserve(n - split);
  for (size_t i = split; i < n; ++i) {
    upper.store.PushBack(area.store.head[i], area.store.tail[i]);
  }
  area.store.head.resize(split);
  area.store.tail.resize(split);
  // Partition interior splits: strictly below `bound` stay, strictly above
  // move (rebased); a split equal to `bound` becomes the area boundary.
  CrackerIndex lower_index;
  for (const auto& [b, pos] : area.index.LiveSplits()) {
    if (BoundLess(b, bound)) {
      lower_index.AddSplit(b, pos);
    } else if (BoundLess(bound, b)) {
      upper.index.AddSplit(b, pos - split);
    }
  }
  area.index = std::move(lower_index);
  areas_.emplace(AreaStart(bound), std::move(upper));
}

std::vector<ChunkMap::ResolvedArea> ChunkMap::ResolveAreas(
    const RangePredicate& pred) {
  PullUpdates(pred);
  const bool need_lo = !(pred.low == kMinValue && pred.low_inclusive);
  const bool need_hi = !(pred.high == kMaxValue && pred.high_inclusive);
  const Bound b_lo{pred.low, pred.low_inclusive};
  const Bound b_hi{pred.high, !pred.high_inclusive};

  if (need_lo) {
    auto it = areas_.upper_bound(AreaStart(b_lo));
    assert(it != areas_.begin());
    --it;
    ChunkMapArea& area = it->second;
    const bool at_boundary =
        area.start.has_value() && !BoundLess(*area.start, b_lo) &&
        !BoundLess(b_lo, *area.start);
    if (!at_boundary && !area.fetched) SplitAreaAt(area, b_lo);
  }
  if (need_hi && (!need_lo || BoundLess(b_lo, b_hi))) {
    auto it = areas_.upper_bound(AreaStart(b_hi));
    assert(it != areas_.begin());
    --it;
    ChunkMapArea& area = it->second;
    const bool at_boundary =
        area.start.has_value() && !BoundLess(*area.start, b_hi) &&
        !BoundLess(b_hi, *area.start);
    if (!at_boundary && !area.fetched) SplitAreaAt(area, b_hi);
  }

  // Collect the covering areas: from the area containing cut(b_lo) through
  // the area containing the last value below cut(b_hi).
  std::vector<ResolvedArea> covering;
  auto begin_it = areas_.begin();
  if (need_lo) {
    begin_it = areas_.upper_bound(AreaStart(b_lo));
    assert(begin_it != areas_.begin());
    --begin_it;
  }
  for (auto it = begin_it; it != areas_.end(); ++it) {
    if (need_hi && it->second.start.has_value() &&
        !BoundLess(*it->second.start, b_hi)) {
      break;  // area starts at or beyond the predicate's upper cut
    }
    ResolvedArea ra;
    ra.area = &it->second;
    // Low edge strictly inside: this can only be the first covering area.
    ra.crack_low = need_lo && covering.empty() &&
                   (!it->second.start.has_value() ||
                    BoundLess(*it->second.start, b_lo));
    // High edge strictly inside: cut(b_hi) below this area's upper cut.
    auto next = std::next(it);
    const bool upper_unbounded =
        next == areas_.end() || !next->first.has_value();
    ra.crack_high = need_hi && (upper_unbounded ||
                                BoundLess(b_hi, *next->first));
    covering.push_back(ra);
  }
  return covering;
}

std::vector<const ChunkMapArea*> ChunkMap::Areas() const {
  std::vector<const ChunkMapArea*> out;
  out.reserve(areas_.size());
  for (const auto& [start, area] : areas_) out.push_back(&area);
  return out;
}

std::vector<ChunkMapArea*> ChunkMap::MutableAreas() {
  std::vector<ChunkMapArea*> out;
  out.reserve(areas_.size());
  for (auto& [start, area] : areas_) out.push_back(&area);
  return out;
}

CrackerIndex::Estimate ChunkMap::EstimateMatches(
    const RangePredicate& pred) const {
  // Assemble a directory-level histogram: each area is one piece bounded
  // by its start and its successor's start; interior splits refine the
  // boundary areas.
  CrackerIndex::Estimate total;
  const Bound pred_lo{pred.low, pred.low_inclusive};
  const Bound pred_hi{pred.high, !pred.high_inclusive};
  const bool lo_unbounded = pred.low == kMinValue && pred.low_inclusive;
  const bool hi_unbounded = pred.high == kMaxValue && pred.high_inclusive;
  for (auto it = areas_.begin(); it != areas_.end(); ++it) {
    const ChunkMapArea& area = it->second;
    auto next = std::next(it);
    const AreaStart upper = next == areas_.end() ? AreaStart{} : next->first;
    // Disjoint checks in cut space.
    if (!lo_unbounded && next != areas_.end() && upper.has_value() &&
        !BoundLess(pred_lo, *upper)) {
      continue;  // area entirely below the predicate
    }
    if (!hi_unbounded && area.start.has_value() &&
        !BoundLess(*area.start, pred_hi)) {
      continue;  // area entirely above
    }
    // Fully inside: the area's lower cut is at/after the predicate's lower
    // cut, and its upper cut at/before the predicate's upper cut.
    const bool low_inside = lo_unbounded || (area.start.has_value() &&
                                             !BoundLess(*area.start, pred_lo));
    const bool high_inside =
        hi_unbounded ||
        (next != areas_.end() && upper.has_value() &&
         !BoundLess(pred_hi, *upper));
    if (low_inside && high_inside) {
      total.lower_bound += area.size();
      total.upper_bound += area.size();
      total.interpolated += static_cast<double>(area.size());
    } else {
      const CrackerIndex::Estimate e =
          area.index.EstimateMatches(pred, area.size());
      total.lower_bound += e.lower_bound;
      total.upper_bound += e.upper_bound;
      total.interpolated += e.interpolated;
    }
  }
  return total;
}

size_t ChunkMap::total_rows() const {
  size_t n = 0;
  for (const auto& [start, area] : areas_) n += area.size();
  return n;
}

}  // namespace crackdb
