#include "storage/codec.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <unordered_set>

namespace crackdb {

namespace {

using kernels::FoldOp;

/// Closed-bounds normalization of a RangePredicate in the value domain.
/// (kernel_impl.h has an equivalent for the arms; the codec layer keeps
/// its own copy rather than reaching into kernel internals.)
struct ClosedValues {
  Value lo = 0;
  Value hi = 0;
  bool empty = false;
};

ClosedValues NormalizeValues(const RangePredicate& pred) {
  ClosedValues r{pred.low, pred.high, false};
  if (!pred.low_inclusive) {
    if (r.lo == kMaxValue) return {0, 0, true};
    ++r.lo;
  }
  if (!pred.high_inclusive) {
    if (r.hi == kMinValue) return {0, 0, true};
    --r.hi;
  }
  if (r.lo > r.hi) return {0, 0, true};
  return r;
}

/// A predicate translated into the encoded (code) domain: a closed
/// unsigned range with lo <= hi, or empty.
struct CodeRange {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool empty = false;
};

/// FOR translation: code = value - for_base as wrapping uint64, so the
/// value range [lo, hi] clipped to the frame [for_base, for_base +
/// for_range] maps to codes. The frame endpoints came from real data, so
/// for_base + for_range is a representable Value.
CodeRange TranslateFor(const EncodedColumn& enc, const RangePredicate& pred) {
  const ClosedValues r = NormalizeValues(pred);
  if (r.empty) return {0, 0, true};
  const Value frame_max = static_cast<Value>(
      static_cast<uint64_t>(enc.for_base) + enc.for_range);
  if (r.hi < enc.for_base || r.lo > frame_max) return {0, 0, true};
  CodeRange out;
  out.lo = r.lo <= enc.for_base
               ? 0
               : static_cast<uint64_t>(r.lo) -
                     static_cast<uint64_t>(enc.for_base);
  out.hi = r.hi >= frame_max
               ? enc.for_range
               : static_cast<uint64_t>(r.hi) -
                     static_cast<uint64_t>(enc.for_base);
  return out;
}

/// Dictionary translation: the dict is sorted, so the matching codes are
/// the contiguous index range [lower_bound(lo), upper_bound(hi)).
CodeRange TranslateDict(const EncodedColumn& enc, const RangePredicate& pred) {
  const ClosedValues r = NormalizeValues(pred);
  if (r.empty) return {0, 0, true};
  const auto first =
      std::lower_bound(enc.dict.begin(), enc.dict.end(), r.lo);
  const auto last = std::upper_bound(first, enc.dict.end(), r.hi);
  if (first == last) return {0, 0, true};
  return {static_cast<uint64_t>(first - enc.dict.begin()),
          static_cast<uint64_t>(last - enc.dict.begin()) - 1, false};
}

CodeRange Translate(const EncodedColumn& enc, const RangePredicate& pred) {
  return enc.kind == CodecKind::kFor ? TranslateFor(enc, pred)
                                     : TranslateDict(enc, pred);
}

/// Dictionary folds walk a per-code occurrence histogram: each distinct
/// value folds hist[c] times in one step, which is bit-identical to the
/// positional fold (sums are mod-2^64 commutative, min/max
/// order-independent) and O(|dict|) after the histogram is in hand. The
/// encode-time code_hist supplies it for free; near-distinct dictionaries
/// (no stored histogram) rebuild it with one pass over the packed codes.
size_t DictFold(const EncodedColumn& enc, uint64_t lo_code, uint64_t hi_code,
                FoldOp op, Value* acc, bool* valid) {
  hi_code = std::min(hi_code, static_cast<uint64_t>(enc.dict.size()) - 1);
  std::vector<uint32_t> local;
  const uint32_t* hist = enc.code_hist.data();
  if (enc.code_hist.empty()) {
    local.assign(enc.dict.size(), 0);
    for (size_t i = 0; i < enc.n; ++i) {
      ++local[enc.bits == 0
                  ? 0
                  : kernels::PackedGet(enc.words.data(), enc.bits, i)];
    }
    hist = local.data();
  }
  size_t matched = 0;
  bool any = false;
  Value result = 0;
  uint64_t sum = 0;
  for (uint64_t c = lo_code; c <= hi_code; ++c) {
    const uint64_t count = hist[c];
    if (count == 0) continue;
    matched += count;
    const Value v = enc.dict[c];
    switch (op) {
      case FoldOp::kSum:
        sum += static_cast<uint64_t>(v) * count;
        break;
      case FoldOp::kMin:
        result = any ? std::min(result, v) : v;
        break;
      case FoldOp::kMax:
        result = any ? std::max(result, v) : v;
        break;
    }
    any = true;
  }
  if (!any) return 0;
  if (op == FoldOp::kSum) result = static_cast<Value>(sum);
  kernels::FoldSpan(op, &result, 1, acc, valid);
  return matched;
}

/// Bit-packs `codes` (one per input value) into out->words and
/// accumulates out->code_sum (wrapping mod 2^64).
void Pack(std::span<const Value> values, Value base, unsigned bits,
          EncodedColumn* out) {
  out->bits = bits;
  out->words.assign(kernels::PackedWordCount(bits, values.size()), 0);
  if (bits == 0) return;
  for (size_t i = 0; i < values.size(); ++i) {
    const uint64_t code = static_cast<uint64_t>(values[i]) -
                          static_cast<uint64_t>(base);
    kernels::PackedSet(out->words.data(), bits, i, code);
    out->code_sum += code;
  }
}

bool EncodeFor(std::span<const Value> values, EncodedColumn* out) {
  const auto [min_it, max_it] =
      std::minmax_element(values.begin(), values.end());
  const Value min = *min_it;
  const uint64_t range = static_cast<uint64_t>(*max_it) -
                         static_cast<uint64_t>(min);
  const unsigned bits =
      range == 0 ? 0 : static_cast<unsigned>(std::bit_width(range));
  if (bits > 63) return false;
  out->for_base = min;
  out->for_range = range;
  Pack(values, min, bits, out);
  return true;
}

bool EncodeDict(std::span<const Value> values, EncodedColumn* out) {
  std::vector<Value> dict(values.begin(), values.end());
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  const uint64_t max_code = static_cast<uint64_t>(dict.size()) - 1;
  const unsigned bits =
      max_code == 0 ? 0 : static_cast<unsigned>(std::bit_width(max_code));
  out->bits = bits;
  out->words.assign(kernels::PackedWordCount(bits, values.size()), 0);
  // The occurrence histogram pays for itself only when each entry covers
  // many rows; on near-distinct dictionaries it would rival the packed
  // payload, so the encoded kernels fall back to scanning codes instead.
  const bool keep_hist = dict.size() * 16 <= values.size();
  if (keep_hist) out->code_hist.assign(dict.size(), 0);
  if (bits != 0) {
    for (size_t i = 0; i < values.size(); ++i) {
      const uint64_t code = static_cast<uint64_t>(
          std::lower_bound(dict.begin(), dict.end(), values[i]) -
          dict.begin());
      kernels::PackedSet(out->words.data(), bits, i, code);
      if (keep_hist) ++out->code_hist[code];
    }
  } else if (keep_hist) {
    out->code_hist[0] = static_cast<uint32_t>(values.size());
  }
  out->dict = std::move(dict);
  return true;
}

bool EncodeRle(std::span<const Value> values, EncodedColumn* out) {
  out->run_starts.push_back(0);
  for (size_t i = 0; i < values.size();) {
    const Value v = values[i];
    size_t j = i + 1;
    while (j < values.size() && values[j] == v) ++j;
    out->run_values.push_back(v);
    out->run_starts.push_back(static_cast<uint32_t>(j));
    i = j;
  }
  return true;
}

}  // namespace

const char* CodecName(CodecKind kind) {
  switch (kind) {
    case CodecKind::kRaw:
      return "raw";
    case CodecKind::kFor:
      return "for";
    case CodecKind::kRle:
      return "rle";
    case CodecKind::kDict:
      return "dict";
  }
  return "raw";
}

CodecKind ChooseCodec(std::span<const Value> values,
                      const CompressionConfig& config) {
  const size_t n = values.size();
  if (n < config.min_rows || n == 0) return CodecKind::kRaw;
  if (n > std::numeric_limits<uint32_t>::max()) return CodecKind::kRaw;
  Value min = values[0];
  Value max = values[0];
  size_t num_runs = 1;
  for (size_t i = 1; i < n; ++i) {
    const Value v = values[i];
    min = std::min(min, v);
    max = std::max(max, v);
    num_runs += static_cast<size_t>(v != values[i - 1]);
  }
  if (static_cast<double>(n) >=
      config.min_avg_run * static_cast<double>(num_runs)) {
    return CodecKind::kRle;
  }
  // Bounded distinct count with early exit: one hash insert per element
  // until the dictionary budget is exceeded.
  if (config.max_dict_card > 0) {
    std::unordered_set<Value> distinct;
    distinct.reserve(config.max_dict_card + 1);
    bool fits = true;
    for (size_t i = 0; i < n; ++i) {
      distinct.insert(values[i]);
      if (distinct.size() > config.max_dict_card) {
        fits = false;
        break;
      }
    }
    if (fits) return CodecKind::kDict;
  }
  const uint64_t range =
      static_cast<uint64_t>(max) - static_cast<uint64_t>(min);
  const unsigned bits =
      range == 0 ? 0 : static_cast<unsigned>(std::bit_width(range));
  if (bits <= config.max_for_bits) return CodecKind::kFor;
  return CodecKind::kRaw;
}

bool EncodeColumn(std::span<const Value> values, CodecKind kind,
                  EncodedColumn* out) {
  if (kind == CodecKind::kRaw) return false;
  if (values.size() > std::numeric_limits<uint32_t>::max()) return false;
  *out = EncodedColumn{};
  out->kind = kind;
  out->n = values.size();
  if (values.empty()) return true;
  switch (kind) {
    case CodecKind::kFor:
      return EncodeFor(values, out);
    case CodecKind::kDict:
      return EncodeDict(values, out);
    case CodecKind::kRle:
      return EncodeRle(values, out);
    case CodecKind::kRaw:
      break;
  }
  return false;
}

std::vector<Value> DecodeColumn(const EncodedColumn& enc) {
  std::vector<Value> out(enc.n);
  switch (enc.kind) {
    case CodecKind::kFor:
      for (size_t i = 0; i < enc.n; ++i) {
        const uint64_t c =
            enc.bits == 0
                ? 0
                : kernels::PackedGet(enc.words.data(), enc.bits, i);
        out[i] =
            static_cast<Value>(static_cast<uint64_t>(enc.for_base) + c);
      }
      break;
    case CodecKind::kDict:
      for (size_t i = 0; i < enc.n; ++i) {
        const uint64_t c =
            enc.bits == 0
                ? 0
                : kernels::PackedGet(enc.words.data(), enc.bits, i);
        out[i] = enc.dict[c];
      }
      break;
    case CodecKind::kRle:
      for (size_t r = 0; r < enc.num_runs(); ++r) {
        std::fill(out.begin() + enc.run_starts[r],
                  out.begin() + enc.run_starts[r + 1], enc.run_values[r]);
      }
      break;
    case CodecKind::kRaw:
      assert(false && "DecodeColumn on a raw column");
      break;
  }
  return out;
}

Value DecodeAt(const EncodedColumn& enc, size_t i) {
  assert(i < enc.n);
  switch (enc.kind) {
    case CodecKind::kFor: {
      const uint64_t c =
          enc.bits == 0 ? 0
                        : kernels::PackedGet(enc.words.data(), enc.bits, i);
      return static_cast<Value>(static_cast<uint64_t>(enc.for_base) + c);
    }
    case CodecKind::kDict: {
      const uint64_t c =
          enc.bits == 0 ? 0
                        : kernels::PackedGet(enc.words.data(), enc.bits, i);
      return enc.dict[c];
    }
    case CodecKind::kRle: {
      const auto it = std::upper_bound(enc.run_starts.begin(),
                                       enc.run_starts.end(),
                                       static_cast<uint32_t>(i));
      return enc.run_values[(it - enc.run_starts.begin()) - 1];
    }
    case CodecKind::kRaw:
      break;
  }
  assert(false && "DecodeAt on a raw column");
  return 0;
}

size_t EncodedBytes(const EncodedColumn& enc) {
  return enc.words.size() * sizeof(uint64_t) +
         enc.dict.size() * sizeof(Value) +
         enc.run_values.size() * sizeof(Value) +
         enc.run_starts.size() * sizeof(uint32_t) +
         enc.code_hist.size() * sizeof(uint32_t);
}

size_t EncodedCount(const EncodedColumn& enc, const RangePredicate& pred) {
  if (enc.n == 0) return 0;
  if (enc.kind == CodecKind::kRle) {
    return kernels::CountRle(enc.run_values.data(), enc.run_starts.data(),
                             enc.num_runs(), pred);
  }
  const CodeRange r = Translate(enc, pred);
  if (r.empty) return 0;
  if (enc.kind == CodecKind::kDict && !enc.code_hist.empty()) {
    // The encode-time histogram answers dictionary counts in O(|dict|).
    const uint64_t hi =
        std::min(r.hi, static_cast<uint64_t>(enc.code_hist.size()) - 1);
    size_t total = 0;
    for (uint64_t c = r.lo; c <= hi; ++c) total += enc.code_hist[c];
    return total;
  }
  return kernels::CountPacked(enc.words.data(), enc.bits, enc.n, r.lo, r.hi);
}

void EncodedSelect(const EncodedColumn& enc, const RangePredicate& pred,
                   Key base, std::vector<Key>* out) {
  if (enc.n == 0) return;
  if (enc.kind == CodecKind::kRle) {
    kernels::SelectRle(enc.run_values.data(), enc.run_starts.data(),
                       enc.num_runs(), pred, base, out);
    return;
  }
  const CodeRange r = Translate(enc, pred);
  if (r.empty) return;
  kernels::SelectPacked(enc.words.data(), enc.bits, enc.n, r.lo, r.hi, base,
                        out);
}

void EncodedFold(const EncodedColumn& enc, kernels::FoldOp op, Value* acc,
                 bool* valid) {
  if (enc.n == 0) return;
  switch (enc.kind) {
    case CodecKind::kFor: {
      // Unfiltered folds come straight from the frame metadata: the sum of
      // n wrapping (base + code) terms is n * base + code_sum mod 2^64,
      // and the frame endpoints are the exact min/max of the data.
      Value result = 0;
      switch (op) {
        case FoldOp::kSum:
          result = static_cast<Value>(
              static_cast<uint64_t>(enc.for_base) *
                  static_cast<uint64_t>(enc.n) +
              enc.code_sum);
          break;
        case FoldOp::kMin:
          result = enc.for_base;
          break;
        case FoldOp::kMax:
          result = static_cast<Value>(static_cast<uint64_t>(enc.for_base) +
                                      enc.for_range);
          break;
      }
      kernels::FoldSpan(op, &result, 1, acc, valid);
      break;
    }
    case CodecKind::kDict:
      DictFold(enc, 0, static_cast<uint64_t>(enc.dict.size()) - 1, op, acc,
               valid);
      break;
    case CodecKind::kRle:
      kernels::FoldRle(op, enc.run_values.data(), enc.run_starts.data(),
                       enc.num_runs(), RangePredicate{}, acc, valid);
      break;
    case CodecKind::kRaw:
      assert(false && "EncodedFold on a raw column");
      break;
  }
}

size_t EncodedFoldFiltered(const EncodedColumn& enc,
                           const RangePredicate& pred, kernels::FoldOp op,
                           Value* acc, bool* valid) {
  if (enc.n == 0) return 0;
  switch (enc.kind) {
    case CodecKind::kFor: {
      const CodeRange r = Translate(enc, pred);
      if (r.empty) return 0;
      kernels::FoldPacked(op, enc.words.data(), enc.bits, enc.n,
                          enc.for_base, r.lo, r.hi, acc, valid);
      return kernels::CountPacked(enc.words.data(), enc.bits, enc.n, r.lo,
                                  r.hi);
    }
    case CodecKind::kDict: {
      const CodeRange r = Translate(enc, pred);
      if (r.empty) return 0;
      return DictFold(enc, r.lo, r.hi, op, acc, valid);
    }
    case CodecKind::kRle: {
      kernels::FoldRle(op, enc.run_values.data(), enc.run_starts.data(),
                       enc.num_runs(), pred, acc, valid);
      return kernels::CountRle(enc.run_values.data(), enc.run_starts.data(),
                               enc.num_runs(), pred);
    }
    case CodecKind::kRaw:
      break;
  }
  assert(false && "EncodedFoldFiltered on a raw column");
  return 0;
}

void EncodedGatherFold(const EncodedColumn& enc,
                       std::span<const Key> positions, kernels::FoldOp op,
                       Value* acc, bool* valid) {
  if (positions.empty()) return;
  // Ascending selection vectors walk RLE runs forward instead of paying a
  // binary search per position; non-ascending input restarts the walk.
  size_t run = 0;
  const auto value_at = [&](Key k) -> Value {
    if (enc.kind != CodecKind::kRle) return DecodeAt(enc, k);
    if (k < enc.run_starts[run]) run = 0;
    while (enc.run_starts[run + 1] <= k) ++run;
    return enc.run_values[run];
  };
  Value result = value_at(positions[0]);
  switch (op) {
    case FoldOp::kSum: {
      uint64_t sum = static_cast<uint64_t>(result);
      for (size_t i = 1; i < positions.size(); ++i) {
        sum += static_cast<uint64_t>(value_at(positions[i]));
      }
      result = static_cast<Value>(sum);
      break;
    }
    case FoldOp::kMin:
      for (size_t i = 1; i < positions.size(); ++i) {
        result = std::min(result, value_at(positions[i]));
      }
      break;
    case FoldOp::kMax:
      for (size_t i = 1; i < positions.size(); ++i) {
        result = std::max(result, value_at(positions[i]));
      }
      break;
  }
  kernels::FoldSpan(op, &result, 1, acc, valid);
}

}  // namespace crackdb
